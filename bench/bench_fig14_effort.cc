// Figure 14 (paper §V-B): development effort and end-to-end processing time,
// TiMR vs hand-written custom reducers — plus the in-text "Fragment
// Optimization" experiment (Example 3: one {UserId} fragment vs the naive
// {UserId,Keyword} + {UserId} plan; the paper measured 2.27x).
//
// Paper reference points: 360 lines of custom reducer code vs 20 temporal
// queries; 3.73h custom vs 4.07h TiMR (< 10% overhead) on 150 machines.
// We report simulated-parallel seconds on the modeled cluster; the *ratio*
// is the reproduced quantity.

#include <fstream>

#include "bench/bench_util.h"
#include "bt/custom_reducers.h"
#include "common/stopwatch.h"
#include "mr/cluster.h"
#include "temporal/convert.h"
#include "timr/timr.h"

namespace {

using namespace timr;
namespace T = timr::temporal;

// Count code lines (statements, ';') of the custom implementation, as the
// paper does ("we use lines (semicolons) of code as a proxy").
int CountSemicolons(const std::string& path) {
  std::ifstream f(path);
  if (!f.good()) return -1;
  int n = 0;
  char c;
  while (f.get(c)) {
    if (c == ';') ++n;
  }
  return n;
}

// Number of temporal query statements in the BT pipeline: one per logical
// operator the analyst writes (the plan's node count is an upper bound; the
// paper counts LINQ statements, which group several operators each).
int CountQueryStatements(const T::PlanNodePtr& root) {
  int n = 0;
  for (T::PlanNode* node : T::CollectNodes(root)) {
    // Count the operators an analyst writes explicitly; exchanges are
    // annotations and inputs are free.
    if (node->kind != T::OpKind::kExchange && node->kind != T::OpKind::kInput &&
        node->kind != T::OpKind::kSubplanInput) {
      ++n;
    }
  }
  return n;
}

}  // namespace

int main() {
  using benchutil::Header;
  Header("Figure 14: development effort and processing time (TiMR vs custom)");

  auto log = workload::GenerateBtLog(benchutil::BenchWorkload());
  bt::BtQueryConfig cfg = benchutil::BenchBtConfig();
  std::printf("workload: %zu events (%zu impressions, %zu clicks)\n",
              log.events.size(), log.CountStream(0), log.CountStream(1));

  // --- Effort (Figure 14 left). ---
  const int custom_loc = CountSemicolons(std::string(TIMR_SOURCE_DIR) +
                                         "/src/bt/custom_reducers.cc");
  auto plan = bt::BtFeaturePipeline(cfg, bt::Annotation::kStandard).node();
  const int cq_ops = CountQueryStatements(plan);
  std::printf("\n%-28s %10s\n", "", "this repro   (paper)");
  std::printf("%-28s %6d ops (20 queries)\n", "TiMR temporal queries", cq_ops);
  std::printf("%-28s %6d LoC (360 LoC)\n", "custom reducers", custom_loc);

  // --- Processing time (Figure 14 right). ---
  mr::LocalCluster cluster(/*num_machines=*/16);
  std::map<std::string, mr::Dataset> store;
  auto rows = T::RowsFromEvents(log.events, false).ValueOrDie();
  store[bt::kBtInput] =
      mr::Dataset::FromRows(T::PointRowSchema(bt::UnifiedSchema()), rows);

  Stopwatch host;
  auto custom = bt::RunCustomBtJob(&cluster, &store, cfg);
  const double custom_wall = host.ElapsedSeconds();
  TIMR_CHECK(custom.ok()) << custom.status().ToString();
  const double custom_s = custom.ValueOrDie().job_stats.TotalSimulatedSeconds();

  host.Restart();
  auto timr_run = framework::RunPlan(&cluster, plan, &store);
  const double timr_wall = host.ElapsedSeconds();
  TIMR_CHECK(timr_run.ok()) << timr_run.status().ToString();
  const double timr_s = timr_run.ValueOrDie().job_stats.TotalSimulatedSeconds();

  std::printf("\nend-to-end simulated parallel time (16 machines)\n");
  std::printf("%-28s %8.2f s   (paper: 3.73 h)\n", "custom reducers", custom_s);
  std::printf("%-28s %8.2f s   (paper: 4.07 h)\n", "TiMR", timr_s);
  std::printf("%-28s %8.1f %%  (paper: < 10%%; generality overhead)\n",
              "TiMR overhead", (timr_s / custom_s - 1.0) * 100.0);
  std::printf("\nhost wall-clock: custom %.2f s, TiMR %.2f s\n", custom_wall,
              timr_wall);
  std::printf("\nTiMR per-stage phase breakdown (host wall-clock)\n");
  benchutil::PrintPhaseTable(timr_run.ValueOrDie().job_stats);
  benchutil::AppendJobStatsJson("bench_fig14_effort",
                                timr_run.ValueOrDie().job_stats);
  benchutil::JsonLine("bench_fig14_effort")
      .Str("stage", "summary")
      .Int("rows_in", rows.size())
      .Num("wall_seconds", timr_wall)
      .Num("custom_wall_seconds", custom_wall)
      .Num("simulated_seconds", timr_s)
      .Num("custom_simulated_seconds", custom_s)
      .Append();

  // --- Fragment optimization (Example 3 / §V-B). ---
  Header("Fragment optimization (Example 3): GenTrainData annotations");
  auto run_ann = [&](bt::Annotation ann) {
    std::map<std::string, mr::Dataset> s2;
    s2[bt::kBtInput] =
        mr::Dataset::FromRows(T::PointRowSchema(bt::UnifiedSchema()), rows);
    auto q = bt::GenTrainData(bt::BtInput(), cfg, ann);
    auto r = framework::RunPlan(&cluster, q.node(), &s2);
    TIMR_CHECK(r.ok()) << r.status().ToString();
    return r.ValueOrDie();
  };
  auto naive = run_ann(bt::Annotation::kNaive);
  auto standard = run_ann(bt::Annotation::kStandard);
  const double naive_s = naive.job_stats.TotalSimulatedSeconds();
  const double std_s = standard.job_stats.TotalSimulatedSeconds();
  std::printf("naive    {UserId,Keyword} then {UserId}: %2zu fragments, %8.2f s\n",
              naive.fragments.fragments.size(), naive_s);
  std::printf("optimized single {UserId} fragment     : %2zu fragments, %8.2f s\n",
              standard.fragments.fragments.size(), std_s);
  std::printf("speedup: %.2fx   (paper: 2.27x)\n", naive_s / std_s);
  return 0;
}
