// Figure 15 (paper §V-B): per-machine engine event rates for each BT
// sub-query. The paper plots events/sec of the embedded DSMS inside one
// reducer; we run each sub-query single-node over the bench log and report
// engine events consumed per second of engine time.

#include "bench/bench_util.h"
#include "bt/model.h"
#include "common/stopwatch.h"
#include "temporal/convert.h"
#include "temporal/executor.h"
#include "timr/timr.h"

namespace {

using namespace timr;
namespace T = timr::temporal;

struct SubQuery {
  const char* name;
  T::PlanNodePtr plan;
};

}  // namespace

int main() {
  benchutil::Header("Figure 15: per-machine engine throughput per BT sub-query");
  auto log = workload::GenerateBtLog(benchutil::BenchWorkload());
  bt::BtQueryConfig cfg = benchutil::BenchBtConfig();

  // Reconstruct the paper's sub-query list (§IV-B): BotElim, GenTrainData,
  // TotalCount+PerKWCount+CalcScore (= FeatureScores), and Model+Scoring.
  T::Query input = bt::BtInput();
  T::Query clean = bt::BotElimination(input, cfg);
  T::Query train = bt::GenTrainData(clean, cfg);
  T::Query scores = bt::FeatureScores(clean, train, cfg);
  T::Query model = bt::ModelBuildQuery(train, 8 * T::kDay, 8 * T::kDay);
  T::Query scoring = bt::ScoringQuery(train, model);

  std::vector<SubQuery> subqueries = {
      {"BotElim", clean.node()},
      {"GenTrainData", train.node()},
      {"FeatureSelection", scores.node()},
      {"ModelBuild+Score", scoring.node()},
  };

  std::printf("%-18s %12s %12s %12s\n", "sub-query", "input rows",
              "engine evts", "evts/sec");
  for (const auto& sq : subqueries) {
    auto exec = T::Executor::Create(sq.plan);
    TIMR_CHECK(exec.ok()) << exec.status().ToString();
    Stopwatch sw;
    auto out = exec.ValueOrDie()->RunBatch({{bt::kBtInput, log.events}});
    const double secs = sw.ElapsedSeconds();
    TIMR_CHECK(out.ok()) << out.status().ToString();
    const uint64_t consumed = exec.ValueOrDie()->TotalEventsConsumed();
    std::printf("%-18s %12zu %12llu %12.0f\n", sq.name, log.events.size(),
                static_cast<unsigned long long>(consumed),
                static_cast<double>(consumed) / secs);
    benchutil::JsonLine("bench_fig15_throughput")
        .Str("stage", sq.name)
        .Int("rows_in", log.events.size())
        .Int("engine_events", static_cast<long long>(consumed))
        .Num("wall_seconds", secs)
        .Num("events_per_second", static_cast<double>(consumed) / secs)
        .Append();
  }

  // The same pipeline through TiMR on the LocalCluster: host wall-clock with
  // the per-phase breakdown, so shuffle scaling with threads is visible
  // (threads default to the hardware count).
  benchutil::Header("Figure 15 addendum: TiMR-on-cluster host wall-clock");
  mr::LocalCluster cluster(/*num_machines=*/16);
  Stopwatch host;
  auto run = framework::RunPlanOnEvents(
      &cluster, bt::BtFeaturePipeline(cfg, bt::Annotation::kStandard).node(),
      {{bt::kBtInput, {bt::UnifiedSchema(), log.events}}});
  const double cluster_wall = host.ElapsedSeconds();
  TIMR_CHECK(run.ok()) << run.status().ToString();
  benchutil::PrintPhaseTable(run.ValueOrDie().job_stats);
  std::printf("total host wall-clock: %.2f s\n", cluster_wall);
  benchutil::AppendJobStatsJson("bench_fig15_throughput",
                                run.ValueOrDie().job_stats);
  benchutil::JsonLine("bench_fig15_throughput")
      .Str("stage", "cluster_total")
      .Int("rows_in", log.events.size())
      .Num("wall_seconds", cluster_wall)
      .Num("simulated_seconds",
           run.ValueOrDie().job_stats.TotalSimulatedSeconds())
      .Append();

  benchutil::Note(
      "\npaper shape: all sub-queries sustain high per-machine rates and the\n"
      "pipeline scales with machines since every stage is partitionable.");
  return 0;
}
