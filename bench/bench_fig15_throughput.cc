// Figure 15 (paper §V-B): per-machine engine event rates for each BT
// sub-query. The paper plots events/sec of the embedded DSMS inside one
// reducer; we run each sub-query single-node over the bench log and report
// engine events consumed per second of engine time.

#include "bench/bench_util.h"
#include "bt/model.h"
#include "common/stopwatch.h"
#include "temporal/executor.h"

namespace {

using namespace timr;
namespace T = timr::temporal;

struct SubQuery {
  const char* name;
  T::PlanNodePtr plan;
};

}  // namespace

int main() {
  benchutil::Header("Figure 15: per-machine engine throughput per BT sub-query");
  auto log = workload::GenerateBtLog(benchutil::BenchWorkload());
  bt::BtQueryConfig cfg = benchutil::BenchBtConfig();

  // Reconstruct the paper's sub-query list (§IV-B): BotElim, GenTrainData,
  // TotalCount+PerKWCount+CalcScore (= FeatureScores), and Model+Scoring.
  T::Query input = bt::BtInput();
  T::Query clean = bt::BotElimination(input, cfg);
  T::Query train = bt::GenTrainData(clean, cfg);
  T::Query scores = bt::FeatureScores(clean, train, cfg);
  T::Query model = bt::ModelBuildQuery(train, 8 * T::kDay, 8 * T::kDay);
  T::Query scoring = bt::ScoringQuery(train, model);

  std::vector<SubQuery> subqueries = {
      {"BotElim", clean.node()},
      {"GenTrainData", train.node()},
      {"FeatureSelection", scores.node()},
      {"ModelBuild+Score", scoring.node()},
  };

  std::printf("%-18s %12s %12s %12s\n", "sub-query", "input rows",
              "engine evts", "evts/sec");
  for (const auto& sq : subqueries) {
    auto exec = T::Executor::Create(sq.plan);
    TIMR_CHECK(exec.ok()) << exec.status().ToString();
    Stopwatch sw;
    auto out = exec.ValueOrDie()->RunBatch({{bt::kBtInput, log.events}});
    const double secs = sw.ElapsedSeconds();
    TIMR_CHECK(out.ok()) << out.status().ToString();
    const uint64_t consumed = exec.ValueOrDie()->TotalEventsConsumed();
    std::printf("%-18s %12zu %12llu %12.0f\n", sq.name, log.events.size(),
                static_cast<unsigned long long>(consumed),
                static_cast<double>(consumed) / secs);
  }
  benchutil::Note(
      "\npaper shape: all sub-queries sustain high per-machine rates and the\n"
      "pipeline scales with machines since every stage is partitionable.");
  return 0;
}
