// Fault-machinery bench: cost of the robustness layer when nothing fails.
// "On" runs the full BT feature pipeline with the whole fault-tolerance
// apparatus armed — per-stage checkpointing (in-memory CheckpointStore), a
// ChaosInjector probed at every reduce attempt (all probabilities zero, so no
// fault ever fires), and speculative-execution monitoring — against a plain
// run with none of it. The guard exists so that "fault tolerance always on"
// stays affordable: target < 5% end-to-end overhead. Numbers land in
// EXPERIMENTS.md.

#include <algorithm>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "mr/checkpoint.h"
#include "mr/cluster.h"
#include "mr/driver.h"
#include "mr/fault.h"
#include "temporal/convert.h"
#include "timr/timr.h"

namespace {

using namespace timr;
namespace T = timr::temporal;

struct Measurement {
  double wall_seconds = 0;
  double simulated_seconds = 0;
  size_t output_rows = 0;
};

Measurement RunOnce(mr::LocalCluster* cluster, const T::PlanNodePtr& plan,
                    const std::vector<Row>& rows, bool armed,
                    int process_workers = 0) {
  std::map<std::string, mr::Dataset> store;
  store[bt::kBtInput] =
      mr::Dataset::FromRows(T::PointRowSchema(bt::UnifiedSchema()), rows);

  framework::TimrOptions options;
  options.process.workers = process_workers;
  mr::CheckpointStore checkpoint;  // in-memory: snapshots every stage output
  mr::ChaosInjector injector(mr::FaultPlan{});  // all probabilities zero
  if (armed) {
    const char* arm = std::getenv("TIMR_BENCH_ARM");
    const std::string which = arm ? arm : "all";
    if (which == "all" || which == "ckpt") options.checkpoint = &checkpoint;
    if (which == "all" || which == "spec") {
      options.fault_tolerance.speculative_execution = true;
      // High enough that the monitor never actually launches a backup on this
      // workload; we are pricing the monitoring, not the backups.
      options.fault_tolerance.min_straggler_seconds = 60.0;
    }
    if (which == "all" || which == "chaos") cluster->set_fault_injector(&injector);
  } else {
    cluster->set_fault_injector(nullptr);
  }

  Stopwatch host;
  auto run = framework::RunPlan(cluster, plan, &store, options);
  Measurement m;
  m.wall_seconds = host.ElapsedSeconds();
  TIMR_CHECK(run.ok()) << run.status().ToString();
  TIMR_CHECK(injector.total_injected() == 0);
  m.simulated_seconds = run.ValueOrDie().job_stats.TotalSimulatedSeconds();
  m.output_rows = run.ValueOrDie().output.size();
  cluster->set_fault_injector(nullptr);
  return m;
}

}  // namespace

int main() {
  using benchutil::Header;
  Header("Fault machinery: checkpoint + chaos probe + speculation monitor,"
         " armed vs off (BT pipeline, zero faults injected)");

  auto log = workload::GenerateBtLog(benchutil::BenchWorkload());
  bt::BtQueryConfig cfg = benchutil::BenchBtConfig();
  auto plan = bt::BtFeaturePipeline(cfg, bt::Annotation::kStandard).node();
  auto rows = T::RowsFromEvents(log.events, false).ValueOrDie();
  std::printf("workload: %zu events, full BT feature pipeline (kStandard)\n",
              log.events.size());

  mr::LocalCluster cluster(/*num_machines=*/16);

  // Warm-up run, then alternate off/armed pairs so drift hits both equally.
  // Overhead is computed from the *minimum* wall per mode: on a shared host
  // the minimum is the least-interfered run, so it isolates the machinery's
  // own cost from scheduler noise.
  RunOnce(&cluster, plan, rows, false);
  constexpr int kRounds = 5;
  double off_wall = 1e300, on_wall = 1e300, off_sim = 0, on_sim = 0;
  size_t off_rows = 0, on_rows = 0;
  for (int i = 0; i < kRounds; ++i) {
    Measurement off = RunOnce(&cluster, plan, rows, false);
    Measurement on = RunOnce(&cluster, plan, rows, true);
    off_wall = std::min(off_wall, off.wall_seconds);
    on_wall = std::min(on_wall, on.wall_seconds);
    off_sim = off.simulated_seconds;
    on_sim = on.simulated_seconds;
    off_rows = off.output_rows;
    on_rows = on.output_rows;
    std::printf("round %d: off %.3f s, armed %.3f s\n", i + 1,
                off.wall_seconds, on.wall_seconds);
  }
  TIMR_CHECK(off_rows == on_rows)
      << "fault machinery changed the output: " << off_rows << " vs "
      << on_rows;

  // Process-mode column: the same fault-free pipeline on a gang of forked
  // workers over RPC. Prices the fork + serialization + heartbeat tax when
  // nothing fails; target < 10% idle overhead vs threads.
  constexpr int kProcWorkers = 4;
  double procs_wall = 1e300, procs_sim = 0;
  size_t procs_rows = 0;
  const bool procs_supported = mr::ProcessModeSupported();
  if (procs_supported) {
    for (int i = 0; i < kRounds; ++i) {
      Measurement procs = RunOnce(&cluster, plan, rows, false, kProcWorkers);
      procs_wall = std::min(procs_wall, procs.wall_seconds);
      procs_sim = procs.simulated_seconds;
      procs_rows = procs.output_rows;
      std::printf("round %d: procs(%d) %.3f s\n", i + 1, kProcWorkers,
                  procs.wall_seconds);
    }
    TIMR_CHECK(procs_rows == off_rows)
        << "process mode changed the output: " << off_rows << " vs "
        << procs_rows;
  }

  const double overhead_pct = (on_wall / off_wall - 1.0) * 100.0;
  const double procs_overhead_pct =
      procs_supported ? (procs_wall / off_wall - 1.0) * 100.0 : 0.0;
  std::printf("\n%-34s %10s %10s\n", "", "wall (s)", "sim (s)");
  std::printf("%-34s %10.3f %10.3f\n", "fault machinery off", off_wall,
              off_sim);
  std::printf("%-34s %10.3f %10.3f\n", "checkpoint + chaos + speculation",
              on_wall, on_sim);
  std::printf("%-34s %9.1f %%  (target < 5%%)\n", "overhead", overhead_pct);
  if (procs_supported) {
    std::printf("%-34s %10.3f %10.3f\n", "multi-process (4 workers, idle)",
                procs_wall, procs_sim);
    std::printf("%-34s %9.1f %%  (target < 10%%)\n", "process-mode overhead",
                procs_overhead_pct);
  } else {
    std::printf("%-34s %10s\n", "multi-process (4 workers, idle)",
                "skipped (unsupported build)");
  }
  std::printf("output rows (identical both modes): %zu\n", off_rows);

  benchutil::JsonLine("bench_fault_overhead")
      .Str("stage", "summary")
      .Int("rows_in", rows.size())
      .Int("output_rows", off_rows)
      .Num("wall_seconds_off", off_wall)
      .Num("wall_seconds_on", on_wall)
      .Num("wall_seconds_procs", procs_supported ? procs_wall : -1.0)
      .Num("simulated_seconds_off", off_sim)
      .Num("simulated_seconds_on", on_sim)
      .Num("overhead_pct", overhead_pct)
      .Num("procs_overhead_pct", procs_overhead_pct)
      .Int("procs_workers", static_cast<long long>(
               procs_supported ? kProcWorkers : 0))
      .Append();
  return 0;
}
