// Figures 17-19 (paper §V-C): the most positively / negatively z-scored
// keywords for three ad classes (deodorant, laptop, cellphone). The planted
// vocabulary reuses the paper's words, so the recovered tables read like the
// originals — and the ground-truth column shows whether each keyword was
// actually planted with that sign.

#include <algorithm>

#include "bench/bench_util.h"
#include "bt/reduction.h"
#include "common/stopwatch.h"
#include "temporal/executor.h"

int main() {
  using namespace timr;
  namespace T = timr::temporal;

  benchutil::Header("Figures 17-19: keyword z-scores per ad class");
  auto log = workload::GenerateBtLog(benchutil::BenchWorkload());
  bt::BtQueryConfig cfg = benchutil::BenchBtConfig();

  Stopwatch sw;
  auto out = T::Executor::Execute(
      bt::BtFeaturePipeline(cfg, bt::Annotation::kNone).node(),
      {{bt::kBtInput, log.events}});
  const double pipeline_s = sw.ElapsedSeconds();
  TIMR_CHECK(out.ok()) << out.status().ToString();
  auto scores = bt::ScoresFromEvents(out.ValueOrDie());
  benchutil::JsonLine("bench_fig17_19_keywords")
      .Str("stage", "feature_pipeline")
      .Int("rows_in", log.events.size())
      .Int("scores", scores.size())
      .Num("wall_seconds", pipeline_s)
      .Append();

  auto truth_mark = [&](int64_t ad, int64_t kw) {
    const auto& cls = log.truth.ad_classes[ad];
    if (cls.pos_keywords.count(kw)) return "planted+";
    if (cls.neg_keywords.count(kw)) return "planted-";
    return "";
  };

  for (int64_t ad : {int64_t{0}, int64_t{1}, int64_t{2}}) {
    std::vector<bt::FeatureScore> rows;
    for (const auto& s : scores) {
      if (s.ad == ad && s.HasSupport()) rows.push_back(s);
    }
    std::sort(rows.begin(), rows.end(),
              [](const auto& a, const auto& b) { return a.z > b.z; });
    std::printf("\n--- ad class '%s' (Figure %d analogue) ---\n",
                log.truth.ad_classes[ad].name.c_str(), 17 + static_cast<int>(ad));
    std::printf("%-14s %8s %-9s | %-14s %8s %-9s\n", "positive kw", "z", "truth",
                "negative kw", "z", "truth");
    const size_t n = std::min<size_t>(8, rows.size());
    for (size_t i = 0; i < n; ++i) {
      const auto& hi = rows[i];
      const auto& lo = rows[rows.size() - 1 - i];
      std::printf("%-14s %8.1f %-9s | %-14s %8.1f %-9s\n",
                  log.truth.KeywordName(hi.keyword).c_str(), hi.z,
                  truth_mark(ad, hi.keyword),
                  log.truth.KeywordName(lo.keyword).c_str(), lo.z,
                  truth_mark(ad, lo.keyword));
    }
  }
  benchutil::Note(
      "\npaper shape: planted interests dominate the positive column (icarly,\n"
      "celebrity... for deodorant; dell, laptops... for laptop), planted\n"
      "distractors the negative column; popular-but-uncorrelated keywords\n"
      "(facebook-alikes) appear in neither despite high raw frequency.");
  return 0;
}
