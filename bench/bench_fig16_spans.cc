// Figure 16 (paper §III-B / §V-B): temporal partitioning — runtime of a
// 30-minute sliding-window count (no payload partitioning key) as a function
// of the span width. Small spans duplicate work at overlaps; huge spans lose
// parallelism; the paper's optimum gave ~18x over single-node execution.

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "mr/cluster.h"
#include "temporal/executor.h"
#include "timr/timr.h"

int main() {
  using namespace timr;
  namespace T = timr::temporal;

  benchutil::Header(
      "Figure 16: temporal partitioning, 30-min sliding count, no payload key");

  auto log = workload::GenerateBtLog(benchutil::BenchWorkload());
  const T::Timestamp w = 30 * T::kMinute;
  const int machines = 32;

  // Single-node reference.
  T::Query plain = bt::BtInput().Window(w).Count();
  Stopwatch sw;
  auto single = T::Executor::Execute(plain.node(), {{bt::kBtInput, log.events}});
  TIMR_CHECK(single.ok()) << single.status().ToString();
  const double single_s = sw.ElapsedSeconds();
  std::printf("single-node execution: %.2f s (%zu output snapshots)\n\n",
              single_s, single.ValueOrDie().size());

  std::printf("%-18s %8s %14s %10s %10s %10s\n", "span width", "spans",
              "simulated (s)", "speedup", "shuffle x", "wall (s)");
  mr::LocalCluster cluster(machines);
  for (T::Timestamp span : {w / 8, w / 4, w / 2, w, 4 * w, 12 * w, 24 * w,
                            48 * w, 96 * w, 168 * w, 336 * w}) {
    T::Query q = bt::BtInput()
                     .Exchange(T::PartitionSpec::ByTime(span, w))
                     .Window(w)
                     .Count();
    sw.Restart();
    auto run = framework::RunPlanOnEvents(
        &cluster, q.node(),
        {{bt::kBtInput, {bt::UnifiedSchema(), log.events}}});
    const double span_wall = sw.ElapsedSeconds();
    TIMR_CHECK(run.ok()) << run.status().ToString();
    const auto& st = run.ValueOrDie().job_stats.stages[0];
    const double sim = run.ValueOrDie().job_stats.TotalSimulatedSeconds();
    TIMR_CHECK(T::SameTemporalRelation(run.ValueOrDie().output,
                                       single.ValueOrDie()))
        << "span width " << span << " produced wrong output";
    std::printf("%7lld min %8d %14.3f %9.1fx %9.2fx %10.3f\n",
                static_cast<long long>(span / T::kMinute), st.partitions, sim,
                single_s / sim,
                static_cast<double>(st.rows_shuffled) / st.rows_in, span_wall);
    benchutil::JsonLine("bench_fig16_spans")
        .Str("stage", "span_" + std::to_string(span / T::kMinute) + "min")
        .Int("rows_in", st.rows_in)
        .Int("rows_shuffled", st.rows_shuffled)
        .Int("partitions", static_cast<long long>(st.partitions))
        .Num("wall_seconds", span_wall)
        .Num("map_shuffle_seconds", st.map_shuffle_seconds)
        .Num("sort_seconds", st.sort_seconds)
        .Num("reduce_seconds", st.reduce_seconds)
        .Num("simulated_seconds", sim)
        .Append();
  }
  benchutil::Note(
      "\npaper shape: an interior optimum — tiny spans pay overlap duplication\n"
      "(shuffle factor), huge spans leave machines idle; optimum ~18x there.");
  return 0;
}
