// Figure 20 (paper §V-C): dimensionality reduction — number of keywords
// retained per ad class as the z threshold grows, against the F-Ex constant
// (~2000 categories from the static concept hierarchy).

#include "bench/bench_util.h"
#include "bt/reduction.h"
#include "common/stopwatch.h"
#include "temporal/executor.h"

int main() {
  using namespace timr;
  namespace T = timr::temporal;

  benchutil::Header("Figure 20: dimensionality reduction (keywords retained)");
  auto log = workload::GenerateBtLog(benchutil::BenchWorkload());
  bt::BtQueryConfig cfg = benchutil::BenchBtConfig();

  Stopwatch sw;
  auto out = T::Executor::Execute(
      bt::BtFeaturePipeline(cfg, bt::Annotation::kNone).node(),
      {{bt::kBtInput, log.events}});
  const double pipeline_s = sw.ElapsedSeconds();
  TIMR_CHECK(out.ok()) << out.status().ToString();
  auto scores = bt::ScoresFromEvents(out.ValueOrDie());
  benchutil::JsonLine("bench_fig20_dimred")
      .Str("stage", "feature_pipeline")
      .Int("rows_in", log.events.size())
      .Num("wall_seconds", pipeline_s)
      .Append();

  // Distinct keywords ever seen in any profile, per ad (the raw dimension).
  std::map<int64_t, size_t> raw;
  {
    std::map<int64_t, std::set<int64_t>> seen;
    for (const auto& s : scores) seen[s.ad].insert(s.keyword);
    // `scores` only carries click-associated keywords; the true raw dimension
    // is the vocabulary size.
    for (auto& [ad, kws] : seen) raw[ad] = kws.size();
  }
  std::printf("source vocabulary: %d keywords (paper: ~50M)\n\n",
              benchutil::BenchWorkload().vocab_size);

  const std::vector<double> thresholds = {0, 1.28, 1.96, 2.56, 3.29};
  std::printf("%-12s", "ad class");
  for (double z : thresholds) std::printf("  KE-%-5.2f", z);
  std::printf("  %8s %8s\n", "F-Ex", "raw-clk");
  for (int64_t ad = 0; ad < 4; ++ad) {
    std::printf("%-12s", log.truth.ad_classes[ad].name.c_str());
    for (double z : thresholds) {
      auto sel = bt::SelectKeZ(scores, z);
      const size_t n = sel.count(ad) ? sel.at(ad).size() : 0;
      std::printf("  %8zu", n);
    }
    std::printf("  %8d %8zu\n", 2000, raw[ad]);
  }
  benchutil::Note(
      "\npaper shape: the support requirement alone (z=0) collapses the\n"
      "dimensionality by orders of magnitude vs the raw vocabulary; higher z\n"
      "thresholds shrink it further (up to ~10x), while F-Ex is pinned at\n"
      "~2000 by the static hierarchy.");
  return 0;
}
