// Shared-fragment suite bench (ROADMAP 5a): the 20-CQ BT catalog run as one
// merged job with common sub-plans executed once (timr/suite.h) versus every
// CQ run independently through RunPlan. Reports total wall per mode, the
// speedup, and what was shared; asserts the per-query outputs are identical
// before printing anything. Target: >= 1.3x total-wall speedup. Numbers land
// in EXPERIMENTS.md / BENCH_sharing.json.

#include <algorithm>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "bt/suite_runner.h"
#include "common/stopwatch.h"
#include "mr/cluster.h"
#include "temporal/convert.h"
#include "timr/suite.h"
#include "timr/timr.h"

namespace {

using namespace timr;
namespace T = timr::temporal;

struct ModeResult {
  double wall_seconds = 0;
  double simulated_seconds = 0;
  size_t stages = 0;
  std::vector<std::vector<T::Event>> outputs;  // canonically sorted per query
};

std::map<std::string, mr::Dataset> FreshStore(const std::vector<Row>& rows) {
  std::map<std::string, mr::Dataset> store;
  store[bt::kBtInput] =
      mr::Dataset::FromRows(T::PointRowSchema(bt::UnifiedSchema()), rows);
  return store;
}

/// Every CQ as its own TiMR job: fresh store each (the per-plan "frag_N"
/// dataset names collide across jobs), total wall = sum over queries. Store
/// construction stays outside the timer — both modes pay it identically.
ModeResult RunIndependent(
    mr::LocalCluster* cluster,
    const std::vector<std::pair<std::string, T::PlanNodePtr>>& queries,
    const std::vector<Row>& rows) {
  ModeResult m;
  for (const auto& [name, plan] : queries) {
    auto store = FreshStore(rows);
    Stopwatch host;
    auto run = framework::RunPlan(cluster, plan, &store, {});
    m.wall_seconds += host.ElapsedSeconds();
    TIMR_CHECK(run.ok()) << name << ": " << run.status().ToString();
    m.simulated_seconds += run.ValueOrDie().job_stats.TotalSimulatedSeconds();
    m.stages += run.ValueOrDie().job_stats.stages.size();
    std::vector<T::Event> out = std::move(run.ValueOrDie().output);
    T::SortEventsCanonical(&out);
    m.outputs.push_back(std::move(out));
  }
  return m;
}

ModeResult RunShared(
    mr::LocalCluster* cluster,
    const std::vector<std::pair<std::string, T::PlanNodePtr>>& queries,
    const std::vector<Row>& rows, framework::SuiteRunResult* details) {
  auto store = FreshStore(rows);
  Stopwatch host;
  auto run = framework::RunPlanSuite(cluster, queries, &store, {});
  ModeResult m;
  m.wall_seconds = host.ElapsedSeconds();
  TIMR_CHECK(run.ok()) << run.status().ToString();
  framework::SuiteRunResult& res = run.ValueOrDie();
  m.simulated_seconds = res.job_stats.TotalSimulatedSeconds();
  m.stages = res.num_stages;
  m.outputs = std::move(res.outputs);
  if (details != nullptr) {
    details->shared = res.shared;
    details->rows_executed_once = res.rows_executed_once;
    details->query_names = res.query_names;
  }
  return m;
}

}  // namespace

int main() {
  using benchutil::Header;
  Header("Shared-fragment suite: 20-CQ BT catalog, merged job vs independent"
         " runs (identical outputs asserted)");

  auto log = workload::GenerateBtLog(benchutil::BenchWorkload());
  const bt::BtQueryConfig cfg = benchutil::BenchBtConfig();
  const auto queries = bt::BtCqSuite(cfg);
  const auto rows = T::RowsFromEvents(log.events, false).ValueOrDie();
  std::printf("workload: %zu events, %zu continuous queries\n",
              log.events.size(), queries.size());

  mr::LocalCluster cluster(/*num_machines=*/16);

  // Warm-up, then alternate modes; keep the minimum wall per mode (the
  // least-interfered run) so host scheduling noise cancels out.
  framework::SuiteRunResult details;
  RunShared(&cluster, queries, rows, nullptr);
  constexpr int kRounds = 3;
  ModeResult best_ind, best_sh;
  best_ind.wall_seconds = 1e300;
  best_sh.wall_seconds = 1e300;
  for (int i = 0; i < kRounds; ++i) {
    ModeResult ind = RunIndependent(&cluster, queries, rows);
    ModeResult sh = RunShared(&cluster, queries, rows, &details);

    TIMR_CHECK(ind.outputs.size() == sh.outputs.size());
    for (size_t q = 0; q < ind.outputs.size(); ++q) {
      const auto& a = ind.outputs[q];
      const auto& b = sh.outputs[q];
      TIMR_CHECK(a.size() == b.size())
          << "output size mismatch for query " << details.query_names[q];
      for (size_t e = 0; e < a.size(); ++e) {
        TIMR_CHECK(a[e].le == b[e].le && a[e].re == b[e].re &&
                   a[e].payload == b[e].payload)
            << "output mismatch for query " << details.query_names[q]
            << " at event " << e;
      }
    }
    std::printf("round %d: independent %.3f s (%zu stages), merged %.3f s"
                " (%zu stages)\n",
                i + 1, ind.wall_seconds, ind.stages, sh.wall_seconds,
                sh.stages);
    if (ind.wall_seconds < best_ind.wall_seconds) best_ind = std::move(ind);
    if (sh.wall_seconds < best_sh.wall_seconds) best_sh = std::move(sh);
  }

  size_t shared_multi = 0, occurrences = 0;
  for (const auto& s : details.shared) {
    if (s.num_consumers >= 2) ++shared_multi;
    occurrences += s.occurrences;
  }
  const double speedup = best_ind.wall_seconds / best_sh.wall_seconds;
  std::printf("\n%-28s %10s %10s %8s\n", "", "wall (s)", "sim (s)", "stages");
  std::printf("%-28s %10.3f %10.3f %8zu\n", "independent (20 jobs)",
              best_ind.wall_seconds, best_ind.simulated_seconds,
              best_ind.stages);
  std::printf("%-28s %10.3f %10.3f %8zu\n", "merged shared-fragment job",
              best_sh.wall_seconds, best_sh.simulated_seconds, best_sh.stages);
  std::printf("%-28s %9.2fx  (target >= 1.3x)\n", "speedup", speedup);
  std::printf("shared fragments: %zu (%zu with >= 2 consumers), replacing %zu"
              " occurrence sites; %zu rows executed once instead of per"
              " consumer\n",
              details.shared.size(), shared_multi, occurrences,
              details.rows_executed_once);
  for (const auto& s : details.shared) {
    std::printf("  %-14s ops=%-3zu sites=%-3zu consumers=%-3zu rows=%zu\n",
                s.dataset.c_str(), s.num_ops, s.occurrences, s.num_consumers,
                s.rows_out);
  }

  benchutil::JsonLine("bench_shared_suite")
      .Str("mode", "independent")
      .Num("wall_seconds", best_ind.wall_seconds)
      .Num("simulated_seconds", best_ind.simulated_seconds)
      .Int("stages", best_ind.stages)
      .Int("queries", queries.size())
      .Append();
  benchutil::JsonLine("bench_shared_suite")
      .Str("mode", "shared")
      .Num("wall_seconds", best_sh.wall_seconds)
      .Num("simulated_seconds", best_sh.simulated_seconds)
      .Int("stages", best_sh.stages)
      .Int("queries", queries.size())
      .Int("shared_fragments", details.shared.size())
      .Int("shared_occurrences", occurrences)
      .Int("rows_executed_once", details.rows_executed_once)
      .Num("speedup", speedup)
      .Append();
  return 0;
}
