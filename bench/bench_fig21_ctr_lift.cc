// Figure 21 (paper §V-C): impact of z-scored keywords on CTR — the CTR of
// test-example subsets selected by presence of positive / negative keywords
// (z > 1.28, 80% confidence), for two ad classes. Also reports the §V-D
// memory (avg UBP entries) and LR learning-time comparison.

#include "bench/bench_util.h"
#include "bt/evaluation.h"
#include "common/stopwatch.h"
#include "temporal/executor.h"

int main() {
  using namespace timr;
  namespace T = timr::temporal;

  benchutil::Header("Figure 21: keyword elimination and CTR (z > 1.28)");
  auto log = workload::GenerateBtLog(benchutil::BenchWorkload());
  bt::BtQueryConfig cfg = benchutil::BenchBtConfig();
  auto [train_events, test_events] = workload::SplitByTime(log.events);

  Stopwatch sw;
  auto train_rows_q = bt::GenTrainData(
      bt::BotElimination(bt::BtInput(), cfg), cfg);
  auto scores_out = T::Executor::Execute(
      bt::BtFeaturePipeline(cfg, bt::Annotation::kNone).node(),
      {{bt::kBtInput, train_events}});
  benchutil::JsonLine("bench_fig21_ctr_lift")
      .Str("stage", "feature_pipeline")
      .Int("rows_in", train_events.size())
      .Num("wall_seconds", sw.ElapsedSeconds())
      .Append();
  auto test_out =
      T::Executor::Execute(train_rows_q.node(), {{bt::kBtInput, test_events}});
  auto train_out =
      T::Executor::Execute(train_rows_q.node(), {{bt::kBtInput, train_events}});
  TIMR_CHECK(scores_out.ok()) << scores_out.status().ToString();
  TIMR_CHECK(test_out.ok()) << test_out.status().ToString();
  TIMR_CHECK(train_out.ok()) << train_out.status().ToString();

  auto scores = bt::ScoresFromEvents(scores_out.ValueOrDie());
  auto test_examples = bt::ExamplesFromTrainRows(test_out.ValueOrDie());
  auto train_examples = bt::ExamplesFromTrainRows(train_out.ValueOrDie());

  auto pos = bt::SelectKeZSigned(scores, 1.28, /*positive=*/true);
  auto neg = bt::SelectKeZSigned(scores, 1.28, /*positive=*/false);

  for (int64_t ad : {int64_t{1}, int64_t{3}}) {  // laptop & movies classes
    std::printf("\n--- ad class '%s' ---\n", log.truth.ad_classes[ad].name.c_str());
    std::printf("%-14s %8s %8s %8s %9s\n", "examples", "#click", "#impr", "CTR",
                "lift (%)");
    for (const auto& row :
         bt::ComputeKeywordImpact(pos, neg, test_examples, ad)) {
      std::printf("%-14s %8lld %8lld %8.4f %+9.1f\n", row.subset.c_str(),
                  static_cast<long long>(row.clicks),
                  static_cast<long long>(row.impressions), row.ctr,
                  row.lift_pct);
    }
  }
  benchutil::Note(
      "\npaper shape: positive-keyword subsets show large positive lift,\n"
      "only-negative subsets negative lift (milder: negatives are plentiful).");

  // --- §V-D memory and learning time. ---
  benchutil::Header("§V-D: memory (avg UBP entries) and LR learning time");
  const std::vector<int64_t> ads = {1, 4};  // laptop, dieting
  struct SchemeSpec {
    const char* name;
    bt::ReductionScheme scheme;
  };
  std::vector<SchemeSpec> schemes;
  schemes.push_back({"none", bt::ReductionScheme::Identity("none")});
  schemes.push_back({"F-Ex", bt::ReductionScheme::FEx("F-Ex")});
  schemes.push_back({"KE-1.28", bt::ReductionScheme::KeZ("KE-1.28", scores, 1.28)});
  schemes.push_back({"KE-2.56", bt::ReductionScheme::KeZ("KE-2.56", scores, 2.56)});

  std::printf("%-10s", "scheme");
  for (int64_t ad : ads) {
    std::printf("  %s: entries/UBP  learn(ms)",
                log.truth.ad_classes[ad].name.c_str());
  }
  std::printf("\n");
  for (const auto& spec : schemes) {
    auto eval = bt::EvaluateScheme(spec.scheme, train_examples, test_examples, ads);
    std::printf("%-10s", spec.name);
    for (int64_t ad : ads) {
      const auto& e = eval.per_ad.at(ad);
      std::printf("  %10.2f %16.1f  ", e.avg_entries_per_ubp,
                  e.learn_seconds * 1e3);
    }
    std::printf("\n");
  }
  benchutil::Note(
      "\npaper shape: F-Ex inflates UBPs (1 keyword -> up to 3 categories) and\n"
      "learns slowest; KE-z shrinks UBPs below the unreduced size and learning\n"
      "time drops with the z threshold (paper: 31s F-Ex, 18s KE-1.28, 5s\n"
      "KE-2.56 for the dieting ad).");
  return 0;
}
