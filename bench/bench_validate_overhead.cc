// Verification-guard bench: cost of TimrOptions::validate_streams on the full
// BT feature pipeline. With validation on, every fragment runs the static
// analysis passes (analysis/plan_checks.h, analysis/fragment_checks.h) before
// execution and a ConformanceCheck operator at each stage input/output during
// execution. The guard exists so that "validation on by default" stays cheap:
// target < 10% end-to-end overhead. Numbers land in EXPERIMENTS.md.

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "mr/cluster.h"
#include "temporal/convert.h"
#include "timr/timr.h"

namespace {

using namespace timr;
namespace T = timr::temporal;

struct Measurement {
  double wall_seconds = 0;
  double simulated_seconds = 0;
  size_t output_rows = 0;
};

Measurement RunOnce(mr::LocalCluster* cluster, const T::PlanNodePtr& plan,
                    const std::vector<Row>& rows, bool validate) {
  std::map<std::string, mr::Dataset> store;
  store[bt::kBtInput] =
      mr::Dataset::FromRows(T::PointRowSchema(bt::UnifiedSchema()), rows);
  framework::TimrOptions options;
  options.validate_streams = validate;
  Stopwatch host;
  auto run = framework::RunPlan(cluster, plan, &store, options);
  Measurement m;
  m.wall_seconds = host.ElapsedSeconds();
  TIMR_CHECK(run.ok()) << run.status().ToString();
  m.simulated_seconds = run.ValueOrDie().job_stats.TotalSimulatedSeconds();
  m.output_rows = run.ValueOrDie().output.size();
  return m;
}

}  // namespace

int main() {
  using benchutil::Header;
  Header("Verification guard: validate_streams on vs off (BT pipeline)");

  auto log = workload::GenerateBtLog(benchutil::BenchWorkload());
  bt::BtQueryConfig cfg = benchutil::BenchBtConfig();
  auto plan = bt::BtFeaturePipeline(cfg, bt::Annotation::kStandard).node();
  auto rows = T::RowsFromEvents(log.events, false).ValueOrDie();
  std::printf("workload: %zu events, full BT feature pipeline (kStandard)\n",
              log.events.size());

  mr::LocalCluster cluster(/*num_machines=*/16);

  // Warm-up run (page in the log, settle the thread pool), then alternate
  // off/on pairs so drift hits both sides equally.
  RunOnce(&cluster, plan, rows, false);
  constexpr int kRounds = 3;
  double off_wall = 0, on_wall = 0, off_sim = 0, on_sim = 0;
  size_t off_rows = 0, on_rows = 0;
  for (int i = 0; i < kRounds; ++i) {
    Measurement off = RunOnce(&cluster, plan, rows, false);
    Measurement on = RunOnce(&cluster, plan, rows, true);
    off_wall += off.wall_seconds;
    on_wall += on.wall_seconds;
    off_sim += off.simulated_seconds;
    on_sim += on.simulated_seconds;
    off_rows = off.output_rows;
    on_rows = on.output_rows;
    std::printf("round %d: off %.3f s, on %.3f s\n", i + 1, off.wall_seconds,
                on.wall_seconds);
  }
  off_wall /= kRounds;
  on_wall /= kRounds;
  off_sim /= kRounds;
  on_sim /= kRounds;
  TIMR_CHECK(off_rows == on_rows)
      << "validation changed the output: " << off_rows << " vs " << on_rows;

  const double overhead_pct = (on_wall / off_wall - 1.0) * 100.0;
  std::printf("\n%-34s %10s %10s\n", "", "wall (s)", "sim (s)");
  std::printf("%-34s %10.3f %10.3f\n", "validate_streams = false", off_wall,
              off_sim);
  std::printf("%-34s %10.3f %10.3f\n", "validate_streams = true", on_wall,
              on_sim);
  std::printf("%-34s %9.1f %%  (target < 10%%)\n", "overhead", overhead_pct);
  std::printf("output rows (identical both modes): %zu\n", off_rows);

  benchutil::JsonLine("bench_validate_overhead")
      .Str("stage", "summary")
      .Int("rows_in", rows.size())
      .Int("output_rows", off_rows)
      .Num("wall_seconds_off", off_wall)
      .Num("wall_seconds_on", on_wall)
      .Num("simulated_seconds_off", off_sim)
      .Num("simulated_seconds_on", on_sim)
      .Num("overhead_pct", overhead_pct)
      .Append();
  return 0;
}
