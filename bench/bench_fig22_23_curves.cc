// Figures 22-23 (paper §V-D): CTR lift vs coverage for the end-to-end BT
// solution — KE-z variants against the F-Ex and KE-pop baselines, for two ad
// classes (the paper shows movies and dieting).

#include "bench/bench_util.h"
#include "bt/evaluation.h"
#include "common/stopwatch.h"
#include "temporal/executor.h"

int main() {
  using namespace timr;
  namespace T = timr::temporal;

  benchutil::Header("Figures 22-23: CTR lift vs coverage per reduction scheme");
  auto log = workload::GenerateBtLog(benchutil::BenchWorkload());
  bt::BtQueryConfig cfg = benchutil::BenchBtConfig();
  auto [train_events, test_events] = workload::SplitByTime(log.events);

  Stopwatch sw;
  auto rows_q = bt::GenTrainData(bt::BotElimination(bt::BtInput(), cfg), cfg);
  auto scores_out = T::Executor::Execute(
      bt::BtFeaturePipeline(cfg, bt::Annotation::kNone).node(),
      {{bt::kBtInput, train_events}});
  benchutil::JsonLine("bench_fig22_23_curves")
      .Str("stage", "feature_pipeline")
      .Int("rows_in", train_events.size())
      .Num("wall_seconds", sw.ElapsedSeconds())
      .Append();
  auto train_out =
      T::Executor::Execute(rows_q.node(), {{bt::kBtInput, train_events}});
  auto test_out =
      T::Executor::Execute(rows_q.node(), {{bt::kBtInput, test_events}});
  TIMR_CHECK(scores_out.ok() && train_out.ok() && test_out.ok());

  auto scores = bt::ScoresFromEvents(scores_out.ValueOrDie());
  auto train_ex = bt::ExamplesFromTrainRows(train_out.ValueOrDie());
  auto test_ex = bt::ExamplesFromTrainRows(test_out.ValueOrDie());
  std::printf("train examples: %zu, test examples: %zu\n", train_ex.size(),
              test_ex.size());

  std::vector<bt::ReductionScheme> schemes;
  schemes.push_back(bt::ReductionScheme::KeZ("KE-1.28", scores, 1.28));
  schemes.push_back(bt::ReductionScheme::KeZ("KE-1.96", scores, 1.96));
  schemes.push_back(bt::ReductionScheme::KeZ("KE-2.56", scores, 2.56));
  schemes.push_back(bt::ReductionScheme::KePop("KE-pop", scores, 20));
  schemes.push_back(bt::ReductionScheme::FEx("F-Ex"));

  const std::vector<int64_t> ads = {3, 4};  // movies, dieting (paper's classes)
  for (int64_t ad : ads) {
    std::printf("\n--- ad class '%s' (base CTR and lift vs coverage) ---\n",
                log.truth.ad_classes[ad].name.c_str());
    std::printf("%-10s", "coverage");
    for (const auto& s : schemes) std::printf(" %9s", s.name().c_str());
    std::printf("\n");

    std::vector<bt::SchemeEvaluation> evals;
    for (const auto& s : schemes) {
      evals.push_back(bt::EvaluateScheme(s, train_ex, test_ex, {ad}));
    }
    // All schemes share the coverage grid (quantile sweep of equal length).
    const auto& ref = evals[0].per_ad.at(ad);
    std::printf("(base CTR V0 = %.4f)\n", ref.base_ctr);
    for (size_t i = 0; i < ref.curve.size(); ++i) {
      std::printf("%9.2f ", ref.curve[i].coverage);
      for (const auto& ev : evals) {
        const auto& e = ev.per_ad.at(ad);
        std::printf(" %9.2f", i < e.curve.size() ? e.curve[i].lift : 0.0);
      }
      std::printf("\n");
    }
  }
  benchutil::Note(
      "\npaper shape: KE-z curves dominate F-Ex and KE-pop at low coverage\n"
      "(0-20%), by up to several x lift; KE-pop trails because raw popularity\n"
      "ignores click correlation; all curves meet lift=1 at coverage=1.");
  return 0;
}
