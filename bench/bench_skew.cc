// Adaptive skew-aware repartitioning bench (ROADMAP 5(b)): a keyed stage
// whose input plants several heavy keys colliding in one partition, run with
// the SkewPolicy off vs on, plus the full BT pipeline on a Zipf-skewed log.
// Byte-identical outputs are asserted in-bench *before* anything is timed.
//
// Because this host has far fewer cores than the modeled cluster, the speedup
// is taken on the simulated parallel makespan for the 16-machine model (see
// mr/cluster.h — benches report that simulated time); host wall is printed
// alongside. Targets: unmitigated partition skew >= 4x (rows and seconds,
// max/median), <= 2x after splitting, and >= 1.3x simulated-makespan speedup
// on the hot stage. Numbers land in EXPERIMENTS.md / BENCH_skew.json.

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "common/hash.h"
#include "common/stopwatch.h"
#include "mr/cluster.h"
#include "mr/stage.h"
#include "temporal/convert.h"
#include "temporal/event.h"
#include "timr/timr.h"

namespace {

using namespace timr;
namespace T = timr::temporal;

constexpr int kParts = 16;
constexpr int kFanout = 8;
constexpr char kStageName[] = "skew_groupby";

Schema SkewSchema() {
  return Schema::Of({{"Time", ValueType::kInt64},
                     {"Key", ValueType::kInt64},
                     {"Val", ValueType::kInt64}});
}

mr::SkewPolicy BenchSkewPolicy() {
  mr::SkewPolicy policy;
  policy.adaptive_repartition = true;
  policy.skew_ratio_threshold = 3.0;
  policy.hot_key_fanout = kFanout;
  policy.min_partition_rows = 4096;
  policy.sample_shift = 5;
  return policy;
}

/// Hot keys probed through the real routing hash AND the real virtual-slot
/// salt: all land in partition 0 of kParts, each in a distinct virtual slot
/// of kFanout. The collision is the scenario that matters — one hot key can
/// only move whole, but several colliding hot keys are exactly what the
/// salted split spreads across machines.
std::vector<int64_t> ProbeHotKeys(int num_hot) {
  auto hasher = mr::MakeKeyHasher({{1}});
  const uint64_t salt = HashBytes(kStageName, sizeof(kStageName) - 1);
  std::vector<bool> slot_used(kFanout, false);
  std::vector<int64_t> hot;
  for (int64_t k = 0; static_cast<int>(hot.size()) < num_hot; ++k) {
    Row probe = {Value(int64_t{0}), Value(k), Value(int64_t{0})};
    const uint64_t h = hasher(0, probe);
    if (h % static_cast<uint64_t>(kParts) != 0) continue;
    const int slot =
        static_cast<int>(HashMix(h ^ salt) % static_cast<uint64_t>(kFanout));
    if (slot_used[slot]) continue;
    slot_used[slot] = true;
    hot.push_back(k);
  }
  return hot;
}

/// num_hot heavy keys (rows_per_hot rows each, all routed to partition 0)
/// interleaved in time with a uniform background of singleton keys.
mr::Dataset MakeSkewedInput(int num_hot, int rows_per_hot,
                            int background_rows) {
  const std::vector<int64_t> hot = ProbeHotKeys(num_hot);
  std::vector<Row> rows;
  rows.reserve(static_cast<size_t>(num_hot) * rows_per_hot + background_rows);
  int64_t t = 0;
  for (int i = 0; i < rows_per_hot; ++i) {
    for (int64_t k : hot) {
      rows.push_back({Value(t++), Value(k), Value(static_cast<int64_t>(i))});
    }
  }
  for (int i = 0; i < background_rows; ++i) {
    rows.push_back({Value(t++), Value(static_cast<int64_t>(1000000 + i)),
                    Value(int64_t{0})});
  }
  return mr::Dataset::FromRows(SkewSchema(), std::move(rows));
}

mr::MRStage SkewStage(bool adaptive) {
  mr::MRStage stage;
  stage.name = kStageName;
  stage.inputs = {"in"};
  stage.output = "out";
  stage.output_schema = SkewSchema();
  stage.num_partitions = kParts;
  stage.partition_fn = mr::HashPartitioner({{1}});
  stage.key_hash_fn = mr::MakeKeyHasher({{1}});
  if (adaptive) stage.skew = BenchSkewPolicy();
  // Order-preserving per-row transform over the canonically sorted input
  // (~a feature hash per row — enough CPU for the makespan model to see);
  // sorted in, sorted out, so the split-run coalesce must reproduce the
  // unsplit run byte for byte.
  stage.reducer = [](int, const std::vector<std::vector<Row>>& inputs,
                     std::vector<Row>* output) {
    output->reserve(inputs[0].size());
    for (const Row& r : inputs[0]) {
      uint64_t acc = static_cast<uint64_t>(r[1].AsInt64());
      for (int i = 0; i < 64; ++i) acc = HashMix(acc + static_cast<uint64_t>(i));
      output->push_back(
          {r[0], r[1], Value(static_cast<int64_t>(acc & 0x7fffffff))});
    }
    return Status::OK();
  };
  return stage;
}

struct StageRun {
  mr::StageStats stats;
  double host_wall = 0;
};

StageRun RunOnce(const mr::Dataset& input, bool adaptive,
                 std::map<std::string, mr::Dataset>* keep_store = nullptr) {
  mr::LocalCluster cluster(kParts);
  std::map<std::string, mr::Dataset> store;
  store["in"] = input;
  StageRun r;
  Stopwatch host;
  Status s = cluster.RunStage(SkewStage(adaptive), &store, &r.stats);
  r.host_wall = host.ElapsedSeconds();
  TIMR_CHECK(s.ok()) << s.ToString();
  if (keep_store != nullptr) *keep_store = std::move(store);
  return r;
}

double RowsRatio(const mr::StageStats& s) {
  return s.partition_rows_median > 0
             ? static_cast<double>(s.partition_rows_max) /
                   s.partition_rows_median
             : 0;
}

double SecondsRatio(const mr::StageStats& s) {
  return s.partition_seconds_median > 0
             ? s.partition_seconds_max / s.partition_seconds_median
             : 0;
}

void AppendStageJson(const char* mode, const StageRun& run, double speedup) {
  benchutil::JsonLine("bench_skew")
      .Str("section", "hot_stage")
      .Str("mode", mode)
      .Num("host_wall_seconds", run.host_wall)
      .Num("simulated_seconds", run.stats.simulated_parallel_seconds)
      .Int("partition_rows_max", run.stats.partition_rows_max)
      .Num("partition_rows_median", run.stats.partition_rows_median)
      .Num("partition_rows_ratio", RowsRatio(run.stats))
      .Num("partition_seconds_max", run.stats.partition_seconds_max)
      .Num("partition_seconds_median", run.stats.partition_seconds_median)
      .Num("partition_seconds_ratio", SecondsRatio(run.stats))
      .Int("hot_keys_detected",
           static_cast<long long>(run.stats.hot_keys_detected))
      .Int("partitions_split",
           static_cast<long long>(run.stats.partitions_split))
      .Int("virtual_partitions",
           static_cast<long long>(run.stats.virtual_partitions))
      .Num("post_split_rows_ratio", run.stats.post_split_rows_ratio)
      .Num("simulated_speedup", speedup)
      .Append();
}

/// Part 1: the gated microbench. Eight heavy keys colliding in one partition
/// of sixteen; splitting spreads them across distinct virtual slots.
void HotStageSection() {
  const double scale = benchutil::BenchScale();
  const int rows_per_hot = static_cast<int>(12000 * scale);
  const int background = static_cast<int>(240000 * scale);
  const mr::Dataset input = MakeSkewedInput(8, rows_per_hot, background);
  std::printf("input: %zu rows, %d partitions, 8 hot keys x %d rows all in"
              " partition 0\n",
              input.TotalRows(), kParts, rows_per_hot);

  // Correctness first, before any timing: the split run's coalesced output
  // must be byte-identical, partition by partition, to the unsplit run's.
  std::map<std::string, mr::Dataset> off_store, on_store;
  StageRun off = RunOnce(input, false, &off_store);
  StageRun on = RunOnce(input, true, &on_store);
  TIMR_CHECK(on.stats.partitions_split >= 1);
  TIMR_CHECK(on.stats.hot_keys_detected >= 8);
  const mr::Dataset& a = off_store.at("out");
  const mr::Dataset& b = on_store.at("out");
  TIMR_CHECK(a.num_partitions() == b.num_partitions());
  for (size_t p = 0; p < a.num_partitions(); ++p) {
    TIMR_CHECK(a.partition(p) == b.partition(p))
        << "output partition " << p << " differs between split and unsplit";
  }
  benchutil::Note("outputs byte-identical (asserted per partition)");

  // The row-count gates are pure functions of the input — check them hard.
  TIMR_CHECK(RowsRatio(off.stats) >= 4.0)
      << "unmitigated rows skew " << RowsRatio(off.stats) << " < 4x";
  TIMR_CHECK(on.stats.post_split_rows_ratio <= 2.0)
      << "post-split rows skew " << on.stats.post_split_rows_ratio << " > 2x";

  // Timed rounds: keep the minimum per mode so host scheduling noise cancels.
  constexpr int kRounds = 3;
  for (int i = 0; i < kRounds; ++i) {
    StageRun o = RunOnce(input, false);
    StageRun s = RunOnce(input, true);
    std::printf("round %d: off sim %.4f s (host %.3f s), on sim %.4f s"
                " (host %.3f s)\n",
                i + 1, o.stats.simulated_parallel_seconds, o.host_wall,
                s.stats.simulated_parallel_seconds, s.host_wall);
    if (o.stats.simulated_parallel_seconds <
        off.stats.simulated_parallel_seconds) {
      o.host_wall = std::min(o.host_wall, off.host_wall);
      off = o;
    }
    if (s.stats.simulated_parallel_seconds <
        on.stats.simulated_parallel_seconds) {
      s.host_wall = std::min(s.host_wall, on.host_wall);
      on = s;
    }
  }

  const double speedup = off.stats.simulated_parallel_seconds /
                         on.stats.simulated_parallel_seconds;
  std::printf("\n%-26s %12s %12s %11s %11s\n", "", "sim (s)", "host (s)",
              "rows ratio", "sec ratio");
  std::printf("%-26s %12.4f %12.3f %11.2f %11.2f\n", "policy off",
              off.stats.simulated_parallel_seconds, off.host_wall,
              RowsRatio(off.stats), SecondsRatio(off.stats));
  std::printf("%-26s %12.4f %12.3f %11.2f %11.2f\n", "policy on (split)",
              on.stats.simulated_parallel_seconds, on.host_wall,
              on.stats.post_split_rows_ratio, SecondsRatio(on.stats));
  std::printf("%-26s %11.2fx  (target >= 1.3x on the simulated makespan)\n",
              "speedup", speedup);
  std::printf("detected %d hot keys, split %d partition(s) into %d virtual"
              " partitions\n",
              on.stats.hot_keys_detected, on.stats.partitions_split,
              on.stats.virtual_partitions);

  AppendStageJson("off", off, 1.0);
  AppendStageJson("on", on, speedup);
}

/// Part 2: end-to-end. The full BT feature pipeline over a Zipf-skewed log
/// (user_activity_zipf, bot multipliers neutralized), adaptive repartitioning
/// off vs on through TimrOptions — identical relations asserted, per-stage
/// split decisions reported. A single dominant user key can only move whole,
/// so this section is reported, not gated; the stats show what the splitter
/// found and did on a realistic keyed workload.
void BtPipelineSection() {
  workload::GeneratorConfig cfg = benchutil::BenchWorkload();
  cfg.user_activity_zipf = 1.2;
  cfg.bot_activity_multiplier = 1.0;
  cfg.bot_impression_multiplier = 1.0;
  auto log = workload::GenerateBtLog(cfg);
  const auto rows = T::RowsFromEvents(log.events, false).ValueOrDie();
  const auto plan =
      bt::BtFeaturePipeline(benchutil::BenchBtConfig(), bt::Annotation::kStandard)
          .node();
  std::printf("workload: %zu events, zipf_s=%.2f over %d users\n",
              log.events.size(), cfg.user_activity_zipf, cfg.num_users);

  struct BtRun {
    double host_wall = 0;
    mr::JobStats stats;
    std::vector<T::Event> output;
  };
  auto run_mode = [&](bool adaptive) {
    mr::LocalCluster cluster(/*num_machines=*/kParts);
    std::map<std::string, mr::Dataset> store;
    store[bt::kBtInput] =
        mr::Dataset::FromRows(T::PointRowSchema(bt::UnifiedSchema()), rows);
    framework::TimrOptions options;
    if (adaptive) options.skew = BenchSkewPolicy();
    BtRun r;
    Stopwatch host;
    auto run = framework::RunPlan(&cluster, plan, &store, options);
    r.host_wall = host.ElapsedSeconds();
    TIMR_CHECK(run.ok()) << run.status().ToString();
    r.stats = std::move(run.ValueOrDie().job_stats);
    r.output = std::move(run.ValueOrDie().output);
    T::SortEventsCanonical(&r.output);
    return r;
  };

  BtRun off = run_mode(false);
  BtRun on = run_mode(true);
  TIMR_CHECK(off.output.size() == on.output.size());
  for (size_t i = 0; i < off.output.size(); ++i) {
    TIMR_CHECK(off.output[i].le == on.output[i].le &&
               off.output[i].re == on.output[i].re &&
               off.output[i].payload == on.output[i].payload)
        << "BT output event " << i << " differs with splitting on";
  }
  benchutil::Note("BT outputs identical with splitting on vs off (asserted)");

  int splits = 0, hot_keys = 0;
  for (const auto& s : on.stats.stages) {
    splits += s.partitions_split;
    hot_keys += s.hot_keys_detected;
    if (s.partitions_split > 0) {
      std::printf("  %-22s rows ratio %5.2f -> %5.2f  (%d hot key(s), +%d"
                  " virtual)\n",
                  s.name.c_str(),
                  s.partition_rows_median > 0
                      ? static_cast<double>(s.partition_rows_max) /
                            s.partition_rows_median
                      : 0,
                  s.post_split_rows_ratio, s.hot_keys_detected,
                  s.virtual_partitions);
    }
  }
  TIMR_CHECK(splits >= 1) << "the Zipf-skewed BT job split nothing";
  std::printf("BT pipeline: off sim %.4f s, on sim %.4f s; %d partition(s)"
              " split, %d hot key(s)\n",
              off.stats.TotalSimulatedSeconds(),
              on.stats.TotalSimulatedSeconds(), splits, hot_keys);

  benchutil::JsonLine("bench_skew")
      .Str("section", "bt_pipeline")
      .Str("mode", "off")
      .Num("host_wall_seconds", off.host_wall)
      .Num("simulated_seconds", off.stats.TotalSimulatedSeconds())
      .Append();
  benchutil::JsonLine("bench_skew")
      .Str("section", "bt_pipeline")
      .Str("mode", "on")
      .Num("host_wall_seconds", on.host_wall)
      .Num("simulated_seconds", on.stats.TotalSimulatedSeconds())
      .Int("partitions_split", static_cast<long long>(splits))
      .Int("hot_keys_detected", static_cast<long long>(hot_keys))
      .Append();
  benchutil::AppendJobStatsJson("bench_skew_bt_on", on.stats);
}

}  // namespace

int main() {
  benchutil::Header(
      "Adaptive skew-aware repartitioning: hot keyed stage, policy off vs on"
      " (identical outputs asserted)");
  HotStageSection();
  benchutil::Header(
      "BT feature pipeline on a Zipf-skewed log, splitting off vs on");
  BtPipelineSection();
  return 0;
}
