// Shared helpers for the figure-reproduction harnesses.
//
// Each bench binary regenerates one table/figure of the paper's §V and prints
// it in a comparable layout. Scale with TIMR_BENCH_SCALE (default 1.0): the
// synthetic log grows linearly with it.
//
// Machine-readable mode: setting TIMR_BENCH_JSON=path makes every bench
// append one JSON object per measured line to that file, so a perf
// trajectory (BENCH_*.json) can be tracked across commits.

#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "bt/queries.h"
#include "mr/cluster.h"
#include "workload/generator.h"

namespace timr::benchutil {

inline double BenchScale() {
  const char* s = std::getenv("TIMR_BENCH_SCALE");
  if (s == nullptr) return 1.0;
  const double v = std::atof(s);
  return v > 0 ? v : 1.0;
}

/// The "one week of logs" stand-in used by every BT bench (paper §V-A).
inline workload::GeneratorConfig BenchWorkload() {
  workload::GeneratorConfig cfg;
  cfg.num_users = static_cast<int>(2000 * BenchScale());
  cfg.vocab_size = 20000;
  cfg.duration = 7 * temporal::kDay;
  cfg.num_ad_classes = 10;
  return cfg;
}

inline bt::BtQueryConfig BenchBtConfig() {
  bt::BtQueryConfig cfg;
  cfg.selection_period = 8 * temporal::kDay;  // covers the whole log
  // Thresholds tuned to the generator's bot intensity (~25x search rate).
  cfg.bot_search_threshold = 60;
  cfg.bot_click_threshold = 30;
  return cfg;
}

inline void Header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void Note(const std::string& text) { std::printf("%s\n", text.c_str()); }

// ---------- Machine-readable bench output (TIMR_BENCH_JSON) ----------

/// One JSON line, appended to $TIMR_BENCH_JSON (no-op when unset). Usage:
///   JsonLine("bench_fig15").Str("stage", name).Num("wall_seconds", s).Append();
class JsonLine {
 public:
  explicit JsonLine(const std::string& bench) {
    os_ << "{\"bench\":";
    Quote(bench);
    Num("scale", BenchScale());
  }

  JsonLine& Str(const std::string& key, const std::string& value) {
    Key(key);
    Quote(value);
    return *this;
  }

  JsonLine& Num(const std::string& key, double value) {
    Key(key);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.9g", value);
    os_ << buf;
    return *this;
  }

  JsonLine& Int(const std::string& key, long long value) {
    Key(key);
    os_ << value;
    return *this;
  }

  JsonLine& Int(const std::string& key, size_t value) {
    return Int(key, static_cast<long long>(value));
  }

  void Append() {
    const char* path = std::getenv("TIMR_BENCH_JSON");
    if (path == nullptr || *path == '\0') return;
    std::ofstream f(path, std::ios::app);
    f << os_.str() << "}\n";
  }

 private:
  void Key(const std::string& key) {
    os_ << ',';
    Quote(key);
    os_ << ':';
  }

  void Quote(const std::string& s) {
    os_ << '"';
    for (char c : s) {
      if (c == '"' || c == '\\') os_ << '\\';
      os_ << c;
    }
    os_ << '"';
  }

  std::ostringstream os_;
};

/// One JSON line per stage of a cluster job: row counts, host wall time, and
/// the per-phase breakdown (map/shuffle, sort, reduce) from StageStats.
inline void AppendJobStatsJson(const std::string& bench,
                               const mr::JobStats& stats) {
  for (const auto& s : stats.stages) {
    JsonLine(bench)
        .Str("stage", s.name)
        .Int("rows_in", s.rows_in)
        .Int("rows_shuffled", s.rows_shuffled)
        .Int("rows_out", s.rows_out)
        .Int("partitions", static_cast<long long>(s.partitions))
        .Num("wall_seconds", s.wall_seconds)
        .Num("map_shuffle_seconds", s.map_shuffle_seconds)
        .Num("sort_seconds", s.sort_seconds)
        .Num("reduce_seconds", s.reduce_seconds)
        .Num("simulated_seconds", s.simulated_parallel_seconds)
        .Num("partition_seconds_max", s.partition_seconds_max)
        .Num("partition_seconds_median", s.partition_seconds_median)
        .Int("partition_rows_max", s.partition_rows_max)
        .Num("partition_rows_median", s.partition_rows_median)
        .Int("hot_keys_detected", static_cast<long long>(s.hot_keys_detected))
        .Int("partitions_split", static_cast<long long>(s.partitions_split))
        .Int("virtual_partitions",
             static_cast<long long>(s.virtual_partitions))
        .Num("post_split_rows_ratio", s.post_split_rows_ratio)
        .Int("task_attempts", static_cast<long long>(s.task_attempts))
        .Int("retried_tasks", static_cast<long long>(s.retried_tasks))
        .Int("speculative_tasks", static_cast<long long>(s.speculative_tasks))
        .Int("speculative_won", static_cast<long long>(s.speculative_won))
        .Int("quarantined_rows", s.quarantined_rows)
        .Int("workers", static_cast<long long>(s.workers))
        .Int("worker_restarts", static_cast<long long>(s.worker_restarts))
        .Int("rpc_retries", static_cast<long long>(s.rpc_retries))
        .Int("heartbeat_timeouts",
             static_cast<long long>(s.heartbeat_timeouts))
        .Append();
  }
}

/// Print the per-phase wall-time table benches use to attribute stage cost.
inline void PrintPhaseTable(const mr::JobStats& stats) {
  std::printf("%-22s %10s %10s %10s %10s %12s\n", "stage", "wall (s)",
              "map (s)", "sort (s)", "reduce (s)", "rows shuffled");
  for (const auto& s : stats.stages) {
    std::printf("%-22s %10.4f %10.4f %10.4f %10.4f %12zu\n", s.name.c_str(),
                s.wall_seconds, s.map_shuffle_seconds, s.sort_seconds,
                s.reduce_seconds, s.rows_shuffled);
  }
}

}  // namespace timr::benchutil
