// Shared helpers for the figure-reproduction harnesses.
//
// Each bench binary regenerates one table/figure of the paper's §V and prints
// it in a comparable layout. Scale with TIMR_BENCH_SCALE (default 1.0): the
// synthetic log grows linearly with it.

#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "bt/queries.h"
#include "workload/generator.h"

namespace timr::benchutil {

inline double BenchScale() {
  const char* s = std::getenv("TIMR_BENCH_SCALE");
  if (s == nullptr) return 1.0;
  const double v = std::atof(s);
  return v > 0 ? v : 1.0;
}

/// The "one week of logs" stand-in used by every BT bench (paper §V-A).
inline workload::GeneratorConfig BenchWorkload() {
  workload::GeneratorConfig cfg;
  cfg.num_users = static_cast<int>(2000 * BenchScale());
  cfg.vocab_size = 20000;
  cfg.duration = 7 * temporal::kDay;
  cfg.num_ad_classes = 10;
  return cfg;
}

inline bt::BtQueryConfig BenchBtConfig() {
  bt::BtQueryConfig cfg;
  cfg.selection_period = 8 * temporal::kDay;  // covers the whole log
  // Thresholds tuned to the generator's bot intensity (~25x search rate).
  cfg.bot_search_threshold = 60;
  cfg.bot_click_threshold = 30;
  return cfg;
}

inline void Header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void Note(const std::string& text) { std::printf("%s\n", text.c_str()); }

}  // namespace timr::benchutil
