// §II-C strawman (paper): the SCOPE-style relational formulation of
// RunningClickCount is a self equi-join on AdId with a time-band predicate —
// quadratic in events per ad — while the temporal formulation is a windowed
// count — near-linear. We execute both at growing scales to show the blow-up
// (the paper calls the relational plan "intractable" at production scale).

#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "temporal/executor.h"
#include "temporal/query.h"

namespace {

using namespace timr;
namespace T = timr::temporal;

// OUT1/OUT2 of the paper's SCOPE query, evaluated the way a set-oriented
// engine without temporal operators must: per-AdId nested band join, then a
// group-by count. (A real M-R plan hashes by AdId first; the per-ad cost is
// what explodes.)
size_t RelationalRunningClickCount(const std::vector<T::Event>& clicks,
                                   T::Timestamp window) {
  std::unordered_map<int64_t, std::vector<T::Timestamp>> by_ad;
  for (const auto& e : clicks) by_ad[e.payload[1].AsInt64()].push_back(e.le);
  size_t result_rows = 0;
  for (auto& [ad, times] : by_ad) {
    for (T::Timestamp a : times) {
      for (T::Timestamp b : times) {  // the self equi-join
        if (b > a - window && b <= a) ++result_rows;
      }
    }
  }
  return result_rows;
}

std::vector<T::Event> MakeClicks(int n, int ads, uint64_t seed) {
  Rng rng(seed);
  std::vector<T::Event> events;
  for (int i = 0; i < n; ++i) {
    events.push_back(T::Event::Point(
        rng.UniformInt(0, 7 * T::kDay),
        {Value(rng.UniformInt(0, 100000)), Value(rng.UniformInt(0, ads - 1))}));
  }
  std::sort(events.begin(), events.end(),
            [](const T::Event& a, const T::Event& b) { return a.le < b.le; });
  return events;
}

}  // namespace

int main() {
  benchutil::Header(
      "Strawman (paper II-C): relational self-join vs temporal windowed count");
  const T::Timestamp w = 6 * T::kHour;
  Schema s =
      Schema::Of({{"UserId", ValueType::kInt64}, {"AdId", ValueType::kInt64}});
  T::Query temporal_q =
      T::Query::Input("ClickLog", s).GroupApply({"AdId"}, [&](T::Query g) {
        return g.Window(w).Count();
      });

  std::printf("%10s %6s %16s %16s %9s\n", "clicks", "ads", "relational (s)",
              "temporal (s)", "ratio");
  for (int n : {2000, 8000, 32000, 128000}) {
    auto clicks = MakeClicks(n, 10, 7);
    Stopwatch sw;
    const size_t join_rows = RelationalRunningClickCount(clicks, w);
    const double rel_s = sw.ElapsedSeconds();
    sw.Restart();
    auto out = T::Executor::Execute(temporal_q.node(), {{"ClickLog", clicks}});
    const double tmp_s = sw.ElapsedSeconds();
    TIMR_CHECK(out.ok());
    std::printf("%10d %6d %16.3f %16.3f %8.1fx   (join rows: %zu)\n", n, 10,
                rel_s, tmp_s, rel_s / tmp_s, join_rows);
    benchutil::JsonLine("bench_strawman")
        .Str("stage", "clicks_" + std::to_string(n))
        .Int("rows_in", static_cast<size_t>(n))
        .Num("wall_seconds", tmp_s)
        .Num("relational_wall_seconds", rel_s)
        .Append();
  }
  benchutil::Note(
      "\npaper shape: the relational plan's cost grows quadratically with\n"
      "clicks-per-ad and becomes intractable; the temporal plan stays\n"
      "near-linear. This motivates TiMR's temporal surface language.");
  return 0;
}
