// Multi-process runtime bench (ROADMAP 2): the full BT feature pipeline on
// the driver + forked-worker-gang runtime (mr/driver.h) vs thread mode.
// Reports per-worker-count wall time with the RPC/heartbeat counters from
// StageStats, and the recovery cost of a real mid-job SIGKILL (a scripted
// worker death between map-commit and reduce-fetch, absorbed by respawn +
// requeue). Byte-identical outputs are asserted in-bench before anything is
// reported. Numbers land in EXPERIMENTS.md / BENCH_procs.json.

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "mr/cluster.h"
#include "mr/driver.h"
#include "mr/fault.h"
#include "temporal/convert.h"
#include "timr/timr.h"

namespace {

using namespace timr;
namespace T = timr::temporal;

struct Measurement {
  double wall_seconds = 0;
  std::vector<T::Event> output;
  mr::JobStats stats;
};

bool EventsIdentical(const std::vector<T::Event>& a,
                     const std::vector<T::Event>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].le != b[i].le || a[i].re != b[i].re ||
        a[i].payload != b[i].payload) {
      return false;
    }
  }
  return true;
}

Measurement RunOnce(mr::LocalCluster* cluster, const T::PlanNodePtr& plan,
                    const std::vector<Row>& rows,
                    const mr::ProcessOptions& process) {
  std::map<std::string, mr::Dataset> store;
  store[bt::kBtInput] =
      mr::Dataset::FromRows(T::PointRowSchema(bt::UnifiedSchema()), rows);
  framework::TimrOptions options;
  options.process = process;
  Stopwatch host;
  auto run = framework::RunPlan(cluster, plan, &store, options);
  TIMR_CHECK(run.ok()) << run.status().ToString();
  Measurement m;
  m.wall_seconds = host.ElapsedSeconds();
  m.output = run.ValueOrDie().output;
  m.stats = run.ValueOrDie().job_stats;
  return m;
}

size_t Sum(const mr::JobStats& stats, int mr::StageStats::*field) {
  size_t n = 0;
  for (const auto& s : stats.stages) n += static_cast<size_t>(s.*field);
  return n;
}

}  // namespace

int main() {
  using benchutil::Header;
  Header("Multi-process runtime: BT pipeline on a forked worker gang over "
         "RPC, vs threads; plus recovery from a real mid-job SIGKILL");

  if (!mr::ProcessModeSupported()) {
    std::printf("process mode unsupported in this build (sanitizer); "
                "nothing to measure\n");
    return 0;
  }

  auto log = workload::GenerateBtLog(benchutil::BenchWorkload());
  bt::BtQueryConfig cfg = benchutil::BenchBtConfig();
  auto plan = bt::BtFeaturePipeline(cfg, bt::Annotation::kStandard).node();
  auto rows = T::RowsFromEvents(log.events, false).ValueOrDie();
  std::printf("workload: %zu events, full BT feature pipeline (kStandard)\n",
              log.events.size());

  mr::LocalCluster cluster(/*num_machines=*/16);

  // Thread-mode baseline (min of 3: least-interfered run on a shared host).
  constexpr int kRounds = 3;
  Measurement base = RunOnce(&cluster, plan, rows, mr::ProcessOptions{});
  for (int i = 1; i < kRounds; ++i) {
    Measurement m = RunOnce(&cluster, plan, rows, mr::ProcessOptions{});
    if (m.wall_seconds < base.wall_seconds) base.wall_seconds = m.wall_seconds;
  }

  std::printf("\n%-26s %10s %8s %9s %8s %8s\n", "mode", "wall (s)", "vs thr",
              "restarts", "rpc_rtr", "hb_to");
  std::printf("%-26s %10.3f %8s %9s %8s %8s\n", "threads", base.wall_seconds,
              "1.00x", "-", "-", "-");

  for (int workers : {1, 2, 4}) {
    mr::ProcessOptions process;
    process.workers = workers;
    Measurement m = RunOnce(&cluster, plan, rows, process);
    for (int i = 1; i < kRounds; ++i) {
      Measurement r = RunOnce(&cluster, plan, rows, process);
      if (r.wall_seconds < m.wall_seconds) m.wall_seconds = r.wall_seconds;
    }
    TIMR_CHECK(EventsIdentical(m.output, base.output))
        << "process mode (" << workers << " workers) changed the output";
    char label[32];
    std::snprintf(label, sizeof(label), "procs(%d)", workers);
    std::printf("%-26s %10.3f %7.2fx %9zu %8zu %8zu\n", label, m.wall_seconds,
                m.wall_seconds / base.wall_seconds,
                Sum(m.stats, &mr::StageStats::worker_restarts),
                Sum(m.stats, &mr::StageStats::rpc_retries),
                Sum(m.stats, &mr::StageStats::heartbeat_timeouts));
    benchutil::JsonLine("bench_procs")
        .Str("stage", "summary")
        .Int("workers", static_cast<long long>(workers))
        .Num("wall_seconds", m.wall_seconds)
        .Num("wall_seconds_threads", base.wall_seconds)
        .Int("worker_restarts",
             static_cast<long long>(Sum(m.stats, &mr::StageStats::worker_restarts)))
        .Int("rpc_retries",
             static_cast<long long>(Sum(m.stats, &mr::StageStats::rpc_retries)))
        .Int("heartbeat_timeouts",
             static_cast<long long>(Sum(m.stats, &mr::StageStats::heartbeat_timeouts)))
        .Append();
    benchutil::AppendJobStatsJson("bench_procs_w" + std::to_string(workers),
                                  m.stats);
  }

  // Recovery cost: one scripted SIGKILL of worker 0 between map-commit and
  // reduce-fetch (the window where committed map output must survive the
  // death). The driver detects the EOF, respawns the slot, and requeues the
  // in-flight reduce task; recovery time is the wall delta vs the clean
  // 2-worker run.
  mr::ProcessOptions clean2;
  clean2.workers = 2;
  Measurement clean = RunOnce(&cluster, plan, rows, clean2);
  for (int i = 1; i < kRounds; ++i) {
    Measurement r = RunOnce(&cluster, plan, rows, clean2);
    if (r.wall_seconds < clean.wall_seconds) clean.wall_seconds = r.wall_seconds;
  }
  mr::ProcessOptions killed = clean2;
  killed.heartbeat_interval_seconds = 0.02;
  killed.heartbeat_deadline_seconds = 1.0;
  mr::ScriptedProcessKill kill;
  kill.stage = "*";
  kill.window = mr::ScriptedProcessKill::Window::kOnReduceRequest;
  kill.worker_index = 0;
  killed.chaos.scripted.push_back(kill);
  Measurement hurt = RunOnce(&cluster, plan, rows, killed);
  TIMR_CHECK(EventsIdentical(hurt.output, base.output))
      << "output changed across a mid-job SIGKILL";
  const size_t restarts = Sum(hurt.stats, &mr::StageStats::worker_restarts);
  TIMR_CHECK(restarts > 0) << "scripted kill did not fire";
  const double recovery =
      std::max(0.0, hurt.wall_seconds - clean.wall_seconds);
  std::printf("\nmid-job SIGKILL (2 workers): clean %.3f s, killed %.3f s, "
              "recovery %.3f s, restarts %zu (output identical)\n",
              clean.wall_seconds, hurt.wall_seconds, recovery, restarts);
  benchutil::JsonLine("bench_procs")
      .Str("stage", "sigkill_recovery")
      .Int("workers", static_cast<long long>(2))
      .Num("wall_seconds_clean", clean.wall_seconds)
      .Num("wall_seconds_killed", hurt.wall_seconds)
      .Num("recovery_seconds", recovery)
      .Int("worker_restarts", static_cast<long long>(restarts))
      .Append();
  return 0;
}
