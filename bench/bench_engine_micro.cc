// Engine micro-benchmarks (google-benchmark): per-operator throughput of the
// temporal engine. Not a paper figure — these guard the substrate's
// performance so the figure benches stay meaningful.
//
// With TIMR_BENCH_JSON=path set, one JSON line per benchmark run is appended
// to that file (events/sec trajectory; see bench_util.h) — CI's bench-smoke
// job uploads it as the BENCH_engine.json artifact.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "bt/model.h"
#include "bt/queries.h"
#include "common/rng.h"
#include "temporal/executor.h"
#include "temporal/query.h"
#include "workload/generator.h"

namespace {

using namespace timr;
namespace T = timr::temporal;

Schema TwoColSchema() {
  return Schema::Of({{"Key", ValueType::kInt64}, {"Val", ValueType::kInt64}});
}

std::vector<T::Event> MakeEvents(int64_t n, int64_t keys, uint64_t seed) {
  Rng rng(seed);
  std::vector<T::Event> events;
  events.reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    events.push_back(T::Event::Point(
        i, {Value(rng.UniformInt(0, keys - 1)), Value(rng.UniformInt(0, 100))}));
  }
  return events;
}

// Times the engine run only: the per-iteration input copy (one Row clone per
// event) is real work but not *engine* work, so it happens under PauseTiming.
void RunPlan(benchmark::State& state, const T::PlanNodePtr& plan,
             const std::vector<T::Event>& events) {
  for (auto _ : state) {
    state.PauseTiming();
    auto exec = T::Executor::Create(plan);
    TIMR_CHECK(exec.ok());
    std::map<std::string, std::vector<T::Event>> inputs;
    inputs.emplace("S", events);
    state.ResumeTiming();
    auto out = exec.ValueOrDie()->RunBatch(std::move(inputs));
    TIMR_CHECK(out.ok());
    benchmark::DoNotOptimize(out.ValueOrDie().size());
  }
  state.SetItemsProcessed(state.iterations() * events.size());
}

void BM_Select(benchmark::State& state) {
  auto events = MakeEvents(state.range(0), 100, 1);
  auto plan = T::Query::Input("S", TwoColSchema())
                  .Where([](const Row& r) { return r[1].AsInt64() > 50; })
                  .node();
  RunPlan(state, plan, events);
}
BENCHMARK(BM_Select)->Arg(1 << 14)->Arg(1 << 17);

// The acceptance pipeline for the batched execution path: a fused
// Select→Project→AlterLifetime chain, the hot stateless shape of every BT
// fragment prefix.
void BM_StatelessPipeline(benchmark::State& state) {
  auto events = MakeEvents(state.range(0), 100, 8);
  auto plan = T::Query::Input("S", TwoColSchema())
                  .Where([](const Row& r) { return r[1].AsInt64() > 10; })
                  .Project([](const Row& r) { return Row{r[0], r[1]}; },
                           TwoColSchema())
                  .Window(512)
                  .node();
  RunPlan(state, plan, events);
}
BENCHMARK(BM_StatelessPipeline)->Arg(1 << 14)->Arg(1 << 17);

void BM_WindowedCount(benchmark::State& state) {
  auto events = MakeEvents(state.range(0), 100, 2);
  auto plan = T::Query::Input("S", TwoColSchema()).Window(512).Count().node();
  RunPlan(state, plan, events);
}
BENCHMARK(BM_WindowedCount)->Arg(1 << 14)->Arg(1 << 17);

void BM_GroupedCount(benchmark::State& state) {
  auto events = MakeEvents(1 << 15, state.range(0), 3);
  auto plan = T::Query::Input("S", TwoColSchema())
                  .GroupApply({"Key"},
                              [](T::Query g) { return g.Window(512).Count(); })
                  .node();
  RunPlan(state, plan, events);
}
BENCHMARK(BM_GroupedCount)->Arg(16)->Arg(256)->Arg(4096);

void BM_TemporalJoin(benchmark::State& state) {
  auto left = MakeEvents(state.range(0), 256, 4);
  auto right = MakeEvents(state.range(0), 256, 5);
  Schema s = TwoColSchema();
  auto plan = T::Query::TemporalJoin(T::Query::Input("S", s).Window(64),
                                     T::Query::Input("R", s).Window(64), {"Key"},
                                     {"Key"})
                  .node();
  for (auto _ : state) {
    state.PauseTiming();
    auto exec = T::Executor::Create(plan);
    TIMR_CHECK(exec.ok());
    std::map<std::string, std::vector<T::Event>> inputs;
    inputs.emplace("S", left);
    inputs.emplace("R", right);
    state.ResumeTiming();
    auto out = exec.ValueOrDie()->RunBatch(std::move(inputs));
    TIMR_CHECK(out.ok());
    benchmark::DoNotOptimize(out.ValueOrDie().size());
  }
  state.SetItemsProcessed(state.iterations() * 2 * left.size());
}
BENCHMARK(BM_TemporalJoin)->Arg(1 << 13)->Arg(1 << 15);

void BM_AntiSemiJoin(benchmark::State& state) {
  auto left = MakeEvents(state.range(0), 256, 6);
  auto right = MakeEvents(state.range(0) / 4, 256, 7);
  Schema s = TwoColSchema();
  auto plan = T::Query::AntiSemiJoin(T::Query::Input("S", s),
                                     T::Query::Input("R", s).Window(64), {"Key"},
                                     {"Key"})
                  .node();
  for (auto _ : state) {
    state.PauseTiming();
    auto exec = T::Executor::Create(plan);
    TIMR_CHECK(exec.ok());
    std::map<std::string, std::vector<T::Event>> inputs;
    inputs.emplace("S", left);
    inputs.emplace("R", right);
    state.ResumeTiming();
    auto out = exec.ValueOrDie()->RunBatch(std::move(inputs));
    TIMR_CHECK(out.ok());
    benchmark::DoNotOptimize(out.ValueOrDie().size());
  }
  state.SetItemsProcessed(state.iterations() * left.size());
}
BENCHMARK(BM_AntiSemiJoin)->Arg(1 << 13)->Arg(1 << 15);

// Full BT pipeline, engine-only (the Figure 15 multiplier): the feature
// pipeline over a scaled-down week log through one embedded engine. items =
// engine events consumed, matching the paper's per-machine metric.
void BM_BtPipeline(benchmark::State& state) {
  workload::GeneratorConfig wcfg;
  wcfg.num_users = 300;
  wcfg.vocab_size = 20000;
  wcfg.duration = 7 * T::kDay;
  wcfg.num_ad_classes = 10;
  auto log = workload::GenerateBtLog(wcfg);
  bt::BtQueryConfig cfg = benchutil::BenchBtConfig();
  auto plan = bt::GenTrainData(bt::BotElimination(bt::BtInput(), cfg), cfg).node();
  uint64_t consumed = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto exec = T::Executor::Create(plan);
    TIMR_CHECK(exec.ok());
    std::map<std::string, std::vector<T::Event>> inputs;
    inputs.emplace(bt::kBtInput, log.events);
    state.ResumeTiming();
    auto out = exec.ValueOrDie()->RunBatch(std::move(inputs));
    TIMR_CHECK(out.ok());
    consumed = exec.ValueOrDie()->TotalEventsConsumed();
    benchmark::DoNotOptimize(out.ValueOrDie().size());
  }
  state.SetItemsProcessed(state.iterations() * consumed);
}
BENCHMARK(BM_BtPipeline)->Unit(benchmark::kMillisecond);

/// Console output as usual, plus one TIMR_BENCH_JSON line per run.
class JsonLineReporter : public benchmark::ConsoleReporter {
 public:
  bool ReportContext(const Context& context) override {
    return ConsoleReporter::ReportContext(context);
  }
  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      auto it = run.counters.find("items_per_second");
      const double items_per_second =
          it != run.counters.end() ? static_cast<double>(it->second) : 0.0;
      benchutil::JsonLine("bench_engine_micro")
          .Str("stage", run.benchmark_name())
          .Num("wall_seconds", run.GetAdjustedRealTime() * 1e-9)
          .Num("events_per_second", items_per_second)
          .Append();
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonLineReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
