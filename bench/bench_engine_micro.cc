// Engine micro-benchmarks (google-benchmark): per-operator throughput of the
// temporal engine. Not a paper figure — these guard the substrate's
// performance so the figure benches stay meaningful.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "temporal/executor.h"
#include "temporal/query.h"

namespace {

using namespace timr;
namespace T = timr::temporal;

Schema TwoColSchema() {
  return Schema::Of({{"Key", ValueType::kInt64}, {"Val", ValueType::kInt64}});
}

std::vector<T::Event> MakeEvents(int64_t n, int64_t keys, uint64_t seed) {
  Rng rng(seed);
  std::vector<T::Event> events;
  events.reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    events.push_back(T::Event::Point(
        i, {Value(rng.UniformInt(0, keys - 1)), Value(rng.UniformInt(0, 100))}));
  }
  return events;
}

void RunPlan(benchmark::State& state, const T::PlanNodePtr& plan,
             const std::vector<T::Event>& events) {
  for (auto _ : state) {
    auto out = T::Executor::Execute(plan, {{"S", events}});
    TIMR_CHECK(out.ok());
    benchmark::DoNotOptimize(out.ValueOrDie().size());
  }
  state.SetItemsProcessed(state.iterations() * events.size());
}

void BM_Select(benchmark::State& state) {
  auto events = MakeEvents(state.range(0), 100, 1);
  auto plan = T::Query::Input("S", TwoColSchema())
                  .Where([](const Row& r) { return r[1].AsInt64() > 50; })
                  .node();
  RunPlan(state, plan, events);
}
BENCHMARK(BM_Select)->Arg(1 << 14)->Arg(1 << 17);

void BM_WindowedCount(benchmark::State& state) {
  auto events = MakeEvents(state.range(0), 100, 2);
  auto plan = T::Query::Input("S", TwoColSchema()).Window(512).Count().node();
  RunPlan(state, plan, events);
}
BENCHMARK(BM_WindowedCount)->Arg(1 << 14)->Arg(1 << 17);

void BM_GroupedCount(benchmark::State& state) {
  auto events = MakeEvents(1 << 15, state.range(0), 3);
  auto plan = T::Query::Input("S", TwoColSchema())
                  .GroupApply({"Key"},
                              [](T::Query g) { return g.Window(512).Count(); })
                  .node();
  RunPlan(state, plan, events);
}
BENCHMARK(BM_GroupedCount)->Arg(16)->Arg(256)->Arg(4096);

void BM_TemporalJoin(benchmark::State& state) {
  auto left = MakeEvents(state.range(0), 256, 4);
  auto right = MakeEvents(state.range(0), 256, 5);
  Schema s = TwoColSchema();
  auto plan = T::Query::TemporalJoin(T::Query::Input("S", s).Window(64),
                                     T::Query::Input("R", s).Window(64), {"Key"},
                                     {"Key"})
                  .node();
  for (auto _ : state) {
    auto out = T::Executor::Execute(plan, {{"S", left}, {"R", right}});
    TIMR_CHECK(out.ok());
    benchmark::DoNotOptimize(out.ValueOrDie().size());
  }
  state.SetItemsProcessed(state.iterations() * 2 * left.size());
}
BENCHMARK(BM_TemporalJoin)->Arg(1 << 13)->Arg(1 << 15);

void BM_AntiSemiJoin(benchmark::State& state) {
  auto left = MakeEvents(state.range(0), 256, 6);
  auto right = MakeEvents(state.range(0) / 4, 256, 7);
  Schema s = TwoColSchema();
  auto plan = T::Query::AntiSemiJoin(T::Query::Input("S", s),
                                     T::Query::Input("R", s).Window(64), {"Key"},
                                     {"Key"})
                  .node();
  for (auto _ : state) {
    auto out = T::Executor::Execute(plan, {{"S", left}, {"R", right}});
    TIMR_CHECK(out.ok());
    benchmark::DoNotOptimize(out.ValueOrDie().size());
  }
  state.SetItemsProcessed(state.iterations() * left.size());
}
BENCHMARK(BM_AntiSemiJoin)->Arg(1 << 13)->Arg(1 << 15);

}  // namespace

BENCHMARK_MAIN();
