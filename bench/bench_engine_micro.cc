// Engine micro-benchmarks (google-benchmark): per-operator throughput of the
// temporal engine. Not a paper figure — these guard the substrate's
// performance so the figure benches stay meaningful.
//
// With TIMR_BENCH_JSON=path set, one JSON line per benchmark run is appended
// to that file (events/sec trajectory; see bench_util.h) — CI's bench-smoke
// job uploads it as the BENCH_engine.json artifact.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "bt/model.h"
#include "bt/queries.h"
#include "common/rng.h"
#include "temporal/executor.h"
#include "temporal/query.h"
#include "workload/generator.h"

namespace {

using namespace timr;
namespace T = timr::temporal;

Schema TwoColSchema() {
  return Schema::Of({{"Key", ValueType::kInt64}, {"Val", ValueType::kInt64}});
}

std::vector<T::Event> MakeEvents(int64_t n, int64_t keys, uint64_t seed) {
  Rng rng(seed);
  std::vector<T::Event> events;
  events.reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    events.push_back(T::Event::Point(
        i, {Value(rng.UniformInt(0, keys - 1)), Value(rng.UniformInt(0, 100))}));
  }
  return events;
}

// Times the engine run only: the per-iteration input copy (one Row clone per
// event) is real work but not *engine* work, so it happens under PauseTiming.
void RunPlan(benchmark::State& state, const T::PlanNodePtr& plan,
             const std::vector<T::Event>& events) {
  for (auto _ : state) {
    state.PauseTiming();
    auto exec = T::Executor::Create(plan);
    TIMR_CHECK(exec.ok());
    std::map<std::string, std::vector<T::Event>> inputs;
    inputs.emplace("S", events);
    state.ResumeTiming();
    auto out = exec.ValueOrDie()->RunBatch(std::move(inputs));
    TIMR_CHECK(out.ok());
    benchmark::DoNotOptimize(out.ValueOrDie().size());
  }
  state.SetItemsProcessed(state.iterations() * events.size());
}

// ---- Per-kernel rows/s: row batches (columnar=0, the PR 3 row-batch path)
// vs columnar batches with vectorized kernels (columnar=1), same structured
// plans. Batches are pre-built outside the timed region so the numbers are
// operator throughput given the delivered representation, not ingest
// conversion. These are the acceptance numbers for the columnar layout (see
// EXPERIMENTS.md / BENCH_columnar.json).

T::EventBatch BuildBatch(const std::vector<T::Event>& events, size_t lo,
                         size_t hi, bool columnar, const Schema& schema) {
  T::EventBatch batch;
  if (columnar) batch.BeginColumnar(schema);
  for (size_t i = lo; i < hi; ++i) {
    if ((i - lo) % 64 == 0) batch.AddCti(events[i].le);
    if (columnar) {
      TIMR_CHECK(
          batch.TryAppendColumnar(events[i].le, events[i].re, events[i].payload));
    } else {
      batch.Add(events[i]);
    }
  }
  return batch;
}

using Feed = std::vector<std::pair<std::string, T::EventBatch>>;

void PushKernel(benchmark::State& state, const T::PlanNodePtr& plan,
                const std::function<Feed()>& make_feed, int64_t items) {
  for (auto _ : state) {
    state.PauseTiming();
    auto exec = T::Executor::Create(plan);
    TIMR_CHECK(exec.ok());
    Feed feed = make_feed();
    state.ResumeTiming();
    for (auto& [source, batch] : feed) {
      TIMR_CHECK_OK(exec.ValueOrDie()->PushBatch(source, std::move(batch)));
    }
    exec.ValueOrDie()->Finish();
    benchmark::DoNotOptimize(exec.ValueOrDie()->TotalEventsConsumed());
  }
  state.SetItemsProcessed(state.iterations() * items);
}

void BM_KernelSelect(benchmark::State& state) {
  auto events = MakeEvents(state.range(0), 100, 11);
  const bool columnar = state.range(1) != 0;
  auto plan = T::Query::Input("S", TwoColSchema())
                  .WhereCmp("Val", T::CmpOp::kGt, Value(int64_t{50}))
                  .node();
  PushKernel(state, plan, [&] {
    Feed feed;
    feed.emplace_back(
        "S", BuildBatch(events, 0, events.size(), columnar, TwoColSchema()));
    return feed;
  }, events.size());
}
BENCHMARK(BM_KernelSelect)
    ->ArgNames({"n", "columnar"})
    ->Args({1 << 17, 0})
    ->Args({1 << 17, 1});

void BM_KernelProject(benchmark::State& state) {
  auto events = MakeEvents(state.range(0), 100, 12);
  const bool columnar = state.range(1) != 0;
  T::ProjectSpec spec;
  spec.exprs.push_back(
      T::ProjectExpr::Arith("Score", 0, T::ProjectExpr::ArithOp::kAdd, 1));
  spec.exprs.push_back(T::ProjectExpr::Column("Val", 1));
  auto plan = T::Query::Input("S", TwoColSchema()).Project(spec).node();
  PushKernel(state, plan, [&] {
    Feed feed;
    feed.emplace_back(
        "S", BuildBatch(events, 0, events.size(), columnar, TwoColSchema()));
    return feed;
  }, events.size());
}
BENCHMARK(BM_KernelProject)
    ->ArgNames({"n", "columnar"})
    ->Args({1 << 17, 0})
    ->Args({1 << 17, 1});

void BM_KernelAlterLifetime(benchmark::State& state) {
  auto events = MakeEvents(state.range(0), 100, 13);
  const bool columnar = state.range(1) != 0;
  auto plan = T::Query::Input("S", TwoColSchema()).Window(512).node();
  PushKernel(state, plan, [&] {
    Feed feed;
    feed.emplace_back(
        "S", BuildBatch(events, 0, events.size(), columnar, TwoColSchema()));
    return feed;
  }, events.size());
}
BENCHMARK(BM_KernelAlterLifetime)
    ->ArgNames({"n", "columnar"})
    ->Args({1 << 17, 0})
    ->Args({1 << 17, 1});

void BM_KernelSnapshotAgg(benchmark::State& state) {
  auto events = MakeEvents(state.range(0), 100, 14);
  const bool columnar = state.range(1) != 0;
  auto plan =
      T::Query::Input("S", TwoColSchema()).Window(512).Sum("Val").node();
  PushKernel(state, plan, [&] {
    Feed feed;
    feed.emplace_back(
        "S", BuildBatch(events, 0, events.size(), columnar, TwoColSchema()));
    return feed;
  }, events.size());
}
BENCHMARK(BM_KernelSnapshotAgg)
    ->ArgNames({"n", "columnar"})
    ->Args({1 << 17, 0})
    ->Args({1 << 17, 1});

void BM_KernelJoinProbe(benchmark::State& state) {
  auto left = MakeEvents(state.range(0), 256, 15);
  auto right = MakeEvents(state.range(0), 256, 16);
  const bool columnar = state.range(1) != 0;
  Schema s = TwoColSchema();
  auto plan = T::Query::TemporalJoin(T::Query::Input("S", s).Window(64),
                                     T::Query::Input("R", s).Window(64),
                                     {"Key"}, {"Key"})
                  .node();
  // Interleave 4096-event chunks so the merge ports drain as they would in a
  // real pipelined run instead of buffering one whole side.
  PushKernel(state, plan, [&] {
    Feed feed;
    constexpr size_t kChunk = 4096;
    for (size_t lo = 0; lo < left.size(); lo += kChunk) {
      const size_t hi = std::min(lo + kChunk, left.size());
      feed.emplace_back("S", BuildBatch(left, lo, hi, columnar, s));
      feed.emplace_back("R", BuildBatch(right, lo, hi, columnar, s));
    }
    return feed;
  }, 2 * left.size());
}
BENCHMARK(BM_KernelJoinProbe)
    ->ArgNames({"n", "columnar"})
    ->Args({1 << 15, 0})
    ->Args({1 << 15, 1});

// End-to-end BT pipeline, engine only, both modes — the >1.2x acceptance
// check lives on this pair.
void BM_BtPipelineMode(benchmark::State& state) {
  workload::GeneratorConfig wcfg;
  wcfg.num_users = 300;
  wcfg.vocab_size = 20000;
  wcfg.duration = 7 * T::kDay;
  wcfg.num_ad_classes = 10;
  auto log = workload::GenerateBtLog(wcfg);
  bt::BtQueryConfig cfg = benchutil::BenchBtConfig();
  auto plan = bt::GenTrainData(bt::BotElimination(bt::BtInput(), cfg), cfg).node();
  const bool columnar = state.range(0) != 0;
  uint64_t consumed = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto exec = T::Executor::Create(plan);
    TIMR_CHECK(exec.ok());
    exec.ValueOrDie()->set_columnar(columnar);
    std::map<std::string, std::vector<T::Event>> inputs;
    inputs.emplace(bt::kBtInput, log.events);
    state.ResumeTiming();
    auto out = exec.ValueOrDie()->RunBatch(std::move(inputs));
    TIMR_CHECK(out.ok());
    consumed = exec.ValueOrDie()->TotalEventsConsumed();
    benchmark::DoNotOptimize(out.ValueOrDie().size());
  }
  state.SetItemsProcessed(state.iterations() * consumed);
}
BENCHMARK(BM_BtPipelineMode)
    ->ArgNames({"columnar"})
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_Select(benchmark::State& state) {
  auto events = MakeEvents(state.range(0), 100, 1);
  auto plan = T::Query::Input("S", TwoColSchema())
                  .Where([](const Row& r) { return r[1].AsInt64() > 50; })
                  .node();
  RunPlan(state, plan, events);
}
BENCHMARK(BM_Select)->Arg(1 << 14)->Arg(1 << 17);

// The acceptance pipeline for the batched execution path: a fused
// Select→Project→AlterLifetime chain, the hot stateless shape of every BT
// fragment prefix.
void BM_StatelessPipeline(benchmark::State& state) {
  auto events = MakeEvents(state.range(0), 100, 8);
  auto plan = T::Query::Input("S", TwoColSchema())
                  .Where([](const Row& r) { return r[1].AsInt64() > 10; })
                  .Project([](const Row& r) { return Row{r[0], r[1]}; },
                           TwoColSchema())
                  .Window(512)
                  .node();
  RunPlan(state, plan, events);
}
BENCHMARK(BM_StatelessPipeline)->Arg(1 << 14)->Arg(1 << 17);

void BM_WindowedCount(benchmark::State& state) {
  auto events = MakeEvents(state.range(0), 100, 2);
  auto plan = T::Query::Input("S", TwoColSchema()).Window(512).Count().node();
  RunPlan(state, plan, events);
}
BENCHMARK(BM_WindowedCount)->Arg(1 << 14)->Arg(1 << 17);

void BM_GroupedCount(benchmark::State& state) {
  auto events = MakeEvents(1 << 15, state.range(0), 3);
  auto plan = T::Query::Input("S", TwoColSchema())
                  .GroupApply({"Key"},
                              [](T::Query g) { return g.Window(512).Count(); })
                  .node();
  RunPlan(state, plan, events);
}
BENCHMARK(BM_GroupedCount)->Arg(16)->Arg(256)->Arg(4096);

void BM_TemporalJoin(benchmark::State& state) {
  auto left = MakeEvents(state.range(0), 256, 4);
  auto right = MakeEvents(state.range(0), 256, 5);
  Schema s = TwoColSchema();
  auto plan = T::Query::TemporalJoin(T::Query::Input("S", s).Window(64),
                                     T::Query::Input("R", s).Window(64), {"Key"},
                                     {"Key"})
                  .node();
  for (auto _ : state) {
    state.PauseTiming();
    auto exec = T::Executor::Create(plan);
    TIMR_CHECK(exec.ok());
    std::map<std::string, std::vector<T::Event>> inputs;
    inputs.emplace("S", left);
    inputs.emplace("R", right);
    state.ResumeTiming();
    auto out = exec.ValueOrDie()->RunBatch(std::move(inputs));
    TIMR_CHECK(out.ok());
    benchmark::DoNotOptimize(out.ValueOrDie().size());
  }
  state.SetItemsProcessed(state.iterations() * 2 * left.size());
}
BENCHMARK(BM_TemporalJoin)->Arg(1 << 13)->Arg(1 << 15);

void BM_AntiSemiJoin(benchmark::State& state) {
  auto left = MakeEvents(state.range(0), 256, 6);
  auto right = MakeEvents(state.range(0) / 4, 256, 7);
  Schema s = TwoColSchema();
  auto plan = T::Query::AntiSemiJoin(T::Query::Input("S", s),
                                     T::Query::Input("R", s).Window(64), {"Key"},
                                     {"Key"})
                  .node();
  for (auto _ : state) {
    state.PauseTiming();
    auto exec = T::Executor::Create(plan);
    TIMR_CHECK(exec.ok());
    std::map<std::string, std::vector<T::Event>> inputs;
    inputs.emplace("S", left);
    inputs.emplace("R", right);
    state.ResumeTiming();
    auto out = exec.ValueOrDie()->RunBatch(std::move(inputs));
    TIMR_CHECK(out.ok());
    benchmark::DoNotOptimize(out.ValueOrDie().size());
  }
  state.SetItemsProcessed(state.iterations() * left.size());
}
BENCHMARK(BM_AntiSemiJoin)->Arg(1 << 13)->Arg(1 << 15);

// Full BT pipeline, engine-only (the Figure 15 multiplier): the feature
// pipeline over a scaled-down week log through one embedded engine. items =
// engine events consumed, matching the paper's per-machine metric.
void BM_BtPipeline(benchmark::State& state) {
  workload::GeneratorConfig wcfg;
  wcfg.num_users = 300;
  wcfg.vocab_size = 20000;
  wcfg.duration = 7 * T::kDay;
  wcfg.num_ad_classes = 10;
  auto log = workload::GenerateBtLog(wcfg);
  bt::BtQueryConfig cfg = benchutil::BenchBtConfig();
  auto plan = bt::GenTrainData(bt::BotElimination(bt::BtInput(), cfg), cfg).node();
  uint64_t consumed = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto exec = T::Executor::Create(plan);
    TIMR_CHECK(exec.ok());
    std::map<std::string, std::vector<T::Event>> inputs;
    inputs.emplace(bt::kBtInput, log.events);
    state.ResumeTiming();
    auto out = exec.ValueOrDie()->RunBatch(std::move(inputs));
    TIMR_CHECK(out.ok());
    consumed = exec.ValueOrDie()->TotalEventsConsumed();
    benchmark::DoNotOptimize(out.ValueOrDie().size());
  }
  state.SetItemsProcessed(state.iterations() * consumed);
}
BENCHMARK(BM_BtPipeline)->Unit(benchmark::kMillisecond);

/// Console output as usual, plus one TIMR_BENCH_JSON line per run.
class JsonLineReporter : public benchmark::ConsoleReporter {
 public:
  bool ReportContext(const Context& context) override {
    return ConsoleReporter::ReportContext(context);
  }
  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      auto it = run.counters.find("items_per_second");
      const double items_per_second =
          it != run.counters.end() ? static_cast<double>(it->second) : 0.0;
      benchutil::JsonLine("bench_engine_micro")
          .Str("stage", run.benchmark_name())
          .Num("wall_seconds", run.GetAdjustedRealTime() * 1e-9)
          .Num("events_per_second", items_per_second)
          .Append();
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonLineReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
