file(REMOVE_RECURSE
  "libtimr_workload.a"
)
