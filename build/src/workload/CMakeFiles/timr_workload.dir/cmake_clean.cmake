file(REMOVE_RECURSE
  "CMakeFiles/timr_workload.dir/generator.cc.o"
  "CMakeFiles/timr_workload.dir/generator.cc.o.d"
  "libtimr_workload.a"
  "libtimr_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timr_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
