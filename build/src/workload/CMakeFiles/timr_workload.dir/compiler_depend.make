# Empty compiler generated dependencies file for timr_workload.
# This may be replaced when dependencies are built.
