file(REMOVE_RECURSE
  "CMakeFiles/timr_common.dir/row.cc.o"
  "CMakeFiles/timr_common.dir/row.cc.o.d"
  "CMakeFiles/timr_common.dir/status.cc.o"
  "CMakeFiles/timr_common.dir/status.cc.o.d"
  "CMakeFiles/timr_common.dir/thread_pool.cc.o"
  "CMakeFiles/timr_common.dir/thread_pool.cc.o.d"
  "libtimr_common.a"
  "libtimr_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timr_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
