file(REMOVE_RECURSE
  "libtimr_common.a"
)
