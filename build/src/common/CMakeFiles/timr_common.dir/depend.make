# Empty dependencies file for timr_common.
# This may be replaced when dependencies are built.
