# Empty dependencies file for timr_temporal.
# This may be replaced when dependencies are built.
