
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/temporal/aggregate.cc" "src/temporal/CMakeFiles/timr_temporal.dir/aggregate.cc.o" "gcc" "src/temporal/CMakeFiles/timr_temporal.dir/aggregate.cc.o.d"
  "/root/repo/src/temporal/convert.cc" "src/temporal/CMakeFiles/timr_temporal.dir/convert.cc.o" "gcc" "src/temporal/CMakeFiles/timr_temporal.dir/convert.cc.o.d"
  "/root/repo/src/temporal/event.cc" "src/temporal/CMakeFiles/timr_temporal.dir/event.cc.o" "gcc" "src/temporal/CMakeFiles/timr_temporal.dir/event.cc.o.d"
  "/root/repo/src/temporal/executor.cc" "src/temporal/CMakeFiles/timr_temporal.dir/executor.cc.o" "gcc" "src/temporal/CMakeFiles/timr_temporal.dir/executor.cc.o.d"
  "/root/repo/src/temporal/plan.cc" "src/temporal/CMakeFiles/timr_temporal.dir/plan.cc.o" "gcc" "src/temporal/CMakeFiles/timr_temporal.dir/plan.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/timr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
