file(REMOVE_RECURSE
  "libtimr_temporal.a"
)
