file(REMOVE_RECURSE
  "CMakeFiles/timr_temporal.dir/aggregate.cc.o"
  "CMakeFiles/timr_temporal.dir/aggregate.cc.o.d"
  "CMakeFiles/timr_temporal.dir/convert.cc.o"
  "CMakeFiles/timr_temporal.dir/convert.cc.o.d"
  "CMakeFiles/timr_temporal.dir/event.cc.o"
  "CMakeFiles/timr_temporal.dir/event.cc.o.d"
  "CMakeFiles/timr_temporal.dir/executor.cc.o"
  "CMakeFiles/timr_temporal.dir/executor.cc.o.d"
  "CMakeFiles/timr_temporal.dir/plan.cc.o"
  "CMakeFiles/timr_temporal.dir/plan.cc.o.d"
  "libtimr_temporal.a"
  "libtimr_temporal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timr_temporal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
