file(REMOVE_RECURSE
  "libtimr_bt.a"
)
