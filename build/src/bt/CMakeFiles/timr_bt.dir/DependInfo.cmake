
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bt/custom_reducers.cc" "src/bt/CMakeFiles/timr_bt.dir/custom_reducers.cc.o" "gcc" "src/bt/CMakeFiles/timr_bt.dir/custom_reducers.cc.o.d"
  "/root/repo/src/bt/evaluation.cc" "src/bt/CMakeFiles/timr_bt.dir/evaluation.cc.o" "gcc" "src/bt/CMakeFiles/timr_bt.dir/evaluation.cc.o.d"
  "/root/repo/src/bt/model.cc" "src/bt/CMakeFiles/timr_bt.dir/model.cc.o" "gcc" "src/bt/CMakeFiles/timr_bt.dir/model.cc.o.d"
  "/root/repo/src/bt/queries.cc" "src/bt/CMakeFiles/timr_bt.dir/queries.cc.o" "gcc" "src/bt/CMakeFiles/timr_bt.dir/queries.cc.o.d"
  "/root/repo/src/bt/reduction.cc" "src/bt/CMakeFiles/timr_bt.dir/reduction.cc.o" "gcc" "src/bt/CMakeFiles/timr_bt.dir/reduction.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/timr/CMakeFiles/timr_timr.dir/DependInfo.cmake"
  "/root/repo/build/src/temporal/CMakeFiles/timr_temporal.dir/DependInfo.cmake"
  "/root/repo/build/src/mr/CMakeFiles/timr_mr.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/timr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
