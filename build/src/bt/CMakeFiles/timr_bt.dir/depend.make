# Empty dependencies file for timr_bt.
# This may be replaced when dependencies are built.
