file(REMOVE_RECURSE
  "CMakeFiles/timr_bt.dir/custom_reducers.cc.o"
  "CMakeFiles/timr_bt.dir/custom_reducers.cc.o.d"
  "CMakeFiles/timr_bt.dir/evaluation.cc.o"
  "CMakeFiles/timr_bt.dir/evaluation.cc.o.d"
  "CMakeFiles/timr_bt.dir/model.cc.o"
  "CMakeFiles/timr_bt.dir/model.cc.o.d"
  "CMakeFiles/timr_bt.dir/queries.cc.o"
  "CMakeFiles/timr_bt.dir/queries.cc.o.d"
  "CMakeFiles/timr_bt.dir/reduction.cc.o"
  "CMakeFiles/timr_bt.dir/reduction.cc.o.d"
  "libtimr_bt.a"
  "libtimr_bt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timr_bt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
