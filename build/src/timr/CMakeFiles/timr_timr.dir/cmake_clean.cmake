file(REMOVE_RECURSE
  "CMakeFiles/timr_timr.dir/fragments.cc.o"
  "CMakeFiles/timr_timr.dir/fragments.cc.o.d"
  "CMakeFiles/timr_timr.dir/live_pipeline.cc.o"
  "CMakeFiles/timr_timr.dir/live_pipeline.cc.o.d"
  "CMakeFiles/timr_timr.dir/optimizer.cc.o"
  "CMakeFiles/timr_timr.dir/optimizer.cc.o.d"
  "CMakeFiles/timr_timr.dir/timr.cc.o"
  "CMakeFiles/timr_timr.dir/timr.cc.o.d"
  "CMakeFiles/timr_timr.dir/vanilla.cc.o"
  "CMakeFiles/timr_timr.dir/vanilla.cc.o.d"
  "libtimr_timr.a"
  "libtimr_timr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timr_timr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
