# Empty dependencies file for timr_timr.
# This may be replaced when dependencies are built.
