file(REMOVE_RECURSE
  "libtimr_timr.a"
)
