file(REMOVE_RECURSE
  "libtimr_mr.a"
)
