# Empty compiler generated dependencies file for timr_mr.
# This may be replaced when dependencies are built.
