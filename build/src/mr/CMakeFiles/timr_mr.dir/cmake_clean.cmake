file(REMOVE_RECURSE
  "CMakeFiles/timr_mr.dir/cluster.cc.o"
  "CMakeFiles/timr_mr.dir/cluster.cc.o.d"
  "CMakeFiles/timr_mr.dir/stage.cc.o"
  "CMakeFiles/timr_mr.dir/stage.cc.o.d"
  "libtimr_mr.a"
  "libtimr_mr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timr_mr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
