file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_spans.dir/bench_fig16_spans.cc.o"
  "CMakeFiles/bench_fig16_spans.dir/bench_fig16_spans.cc.o.d"
  "bench_fig16_spans"
  "bench_fig16_spans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_spans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
