# Empty dependencies file for bench_fig20_dimred.
# This may be replaced when dependencies are built.
