
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig20_dimred.cc" "bench/CMakeFiles/bench_fig20_dimred.dir/bench_fig20_dimred.cc.o" "gcc" "bench/CMakeFiles/bench_fig20_dimred.dir/bench_fig20_dimred.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bt/CMakeFiles/timr_bt.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/timr_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/timr/CMakeFiles/timr_timr.dir/DependInfo.cmake"
  "/root/repo/build/src/mr/CMakeFiles/timr_mr.dir/DependInfo.cmake"
  "/root/repo/build/src/temporal/CMakeFiles/timr_temporal.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/timr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
