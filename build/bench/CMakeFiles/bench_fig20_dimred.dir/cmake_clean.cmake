file(REMOVE_RECURSE
  "CMakeFiles/bench_fig20_dimred.dir/bench_fig20_dimred.cc.o"
  "CMakeFiles/bench_fig20_dimred.dir/bench_fig20_dimred.cc.o.d"
  "bench_fig20_dimred"
  "bench_fig20_dimred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_dimred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
