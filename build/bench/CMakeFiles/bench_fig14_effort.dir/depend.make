# Empty dependencies file for bench_fig14_effort.
# This may be replaced when dependencies are built.
