file(REMOVE_RECURSE
  "CMakeFiles/bench_strawman.dir/bench_strawman.cc.o"
  "CMakeFiles/bench_strawman.dir/bench_strawman.cc.o.d"
  "bench_strawman"
  "bench_strawman.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_strawman.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
