file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_19_keywords.dir/bench_fig17_19_keywords.cc.o"
  "CMakeFiles/bench_fig17_19_keywords.dir/bench_fig17_19_keywords.cc.o.d"
  "bench_fig17_19_keywords"
  "bench_fig17_19_keywords.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_19_keywords.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
