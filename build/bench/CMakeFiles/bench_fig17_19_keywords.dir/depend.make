# Empty dependencies file for bench_fig17_19_keywords.
# This may be replaced when dependencies are built.
