file(REMOVE_RECURSE
  "CMakeFiles/bench_fig21_ctr_lift.dir/bench_fig21_ctr_lift.cc.o"
  "CMakeFiles/bench_fig21_ctr_lift.dir/bench_fig21_ctr_lift.cc.o.d"
  "bench_fig21_ctr_lift"
  "bench_fig21_ctr_lift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig21_ctr_lift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
