# Empty dependencies file for bench_fig21_ctr_lift.
# This may be replaced when dependencies are built.
