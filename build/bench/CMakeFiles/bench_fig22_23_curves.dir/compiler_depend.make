# Empty compiler generated dependencies file for bench_fig22_23_curves.
# This may be replaced when dependencies are built.
