# Empty dependencies file for mr_cluster_test.
# This may be replaced when dependencies are built.
