file(REMOVE_RECURSE
  "CMakeFiles/mr_cluster_test.dir/mr_cluster_test.cc.o"
  "CMakeFiles/mr_cluster_test.dir/mr_cluster_test.cc.o.d"
  "mr_cluster_test"
  "mr_cluster_test.pdb"
  "mr_cluster_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mr_cluster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
