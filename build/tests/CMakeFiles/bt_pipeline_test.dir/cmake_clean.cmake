file(REMOVE_RECURSE
  "CMakeFiles/bt_pipeline_test.dir/bt_pipeline_test.cc.o"
  "CMakeFiles/bt_pipeline_test.dir/bt_pipeline_test.cc.o.d"
  "bt_pipeline_test"
  "bt_pipeline_test.pdb"
  "bt_pipeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bt_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
