# Empty dependencies file for bt_pipeline_test.
# This may be replaced when dependencies are built.
