file(REMOVE_RECURSE
  "CMakeFiles/temporal_operator_test.dir/temporal_operator_test.cc.o"
  "CMakeFiles/temporal_operator_test.dir/temporal_operator_test.cc.o.d"
  "temporal_operator_test"
  "temporal_operator_test.pdb"
  "temporal_operator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temporal_operator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
