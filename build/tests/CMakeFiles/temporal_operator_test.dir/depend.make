# Empty dependencies file for temporal_operator_test.
# This may be replaced when dependencies are built.
