file(REMOVE_RECURSE
  "CMakeFiles/timr_test.dir/timr_test.cc.o"
  "CMakeFiles/timr_test.dir/timr_test.cc.o.d"
  "timr_test"
  "timr_test.pdb"
  "timr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
