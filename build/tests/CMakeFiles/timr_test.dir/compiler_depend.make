# Empty compiler generated dependencies file for timr_test.
# This may be replaced when dependencies are built.
