file(REMOVE_RECURSE
  "CMakeFiles/temporal_smoke_test.dir/temporal_smoke_test.cc.o"
  "CMakeFiles/temporal_smoke_test.dir/temporal_smoke_test.cc.o.d"
  "temporal_smoke_test"
  "temporal_smoke_test.pdb"
  "temporal_smoke_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temporal_smoke_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
