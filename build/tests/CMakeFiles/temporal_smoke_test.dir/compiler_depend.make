# Empty compiler generated dependencies file for temporal_smoke_test.
# This may be replaced when dependencies are built.
