# Empty compiler generated dependencies file for bt_model_test.
# This may be replaced when dependencies are built.
