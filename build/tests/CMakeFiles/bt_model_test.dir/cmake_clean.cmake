file(REMOVE_RECURSE
  "CMakeFiles/bt_model_test.dir/bt_model_test.cc.o"
  "CMakeFiles/bt_model_test.dir/bt_model_test.cc.o.d"
  "bt_model_test"
  "bt_model_test.pdb"
  "bt_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bt_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
