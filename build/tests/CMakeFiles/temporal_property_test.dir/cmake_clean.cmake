file(REMOVE_RECURSE
  "CMakeFiles/temporal_property_test.dir/temporal_property_test.cc.o"
  "CMakeFiles/temporal_property_test.dir/temporal_property_test.cc.o.d"
  "temporal_property_test"
  "temporal_property_test.pdb"
  "temporal_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temporal_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
