# Empty dependencies file for vanilla_test.
# This may be replaced when dependencies are built.
