file(REMOVE_RECURSE
  "CMakeFiles/vanilla_test.dir/vanilla_test.cc.o"
  "CMakeFiles/vanilla_test.dir/vanilla_test.cc.o.d"
  "vanilla_test"
  "vanilla_test.pdb"
  "vanilla_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vanilla_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
