# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/temporal_smoke_test[1]_include.cmake")
include("/root/repo/build/tests/timr_test[1]_include.cmake")
include("/root/repo/build/tests/bt_pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/temporal_operator_test[1]_include.cmake")
include("/root/repo/build/tests/temporal_property_test[1]_include.cmake")
include("/root/repo/build/tests/mr_cluster_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/bt_model_test[1]_include.cmake")
include("/root/repo/build/tests/live_pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/vanilla_test[1]_include.cmake")
