file(REMOVE_RECURSE
  "CMakeFiles/behavioral_targeting.dir/behavioral_targeting.cpp.o"
  "CMakeFiles/behavioral_targeting.dir/behavioral_targeting.cpp.o.d"
  "behavioral_targeting"
  "behavioral_targeting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/behavioral_targeting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
