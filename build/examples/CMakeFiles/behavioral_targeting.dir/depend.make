# Empty dependencies file for behavioral_targeting.
# This may be replaced when dependencies are built.
