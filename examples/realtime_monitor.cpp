// Closing the M3 loop (paper §I, §III-C.1): the exact same temporal queries
// that TiMR ran over offline logs are deployed, unmodified, against a live
// feed — here a bot monitor and a running click counter consuming events
// pushed one at a time, with output delivered by callback as it is produced.
//
// Because the engine computes over application time only, the live run's
// output is byte-identical to the offline replay — demonstrated at the end.
//
//   build/examples/realtime_monitor

#include <cstdio>

#include "bt/queries.h"
#include "temporal/executor.h"
#include "workload/generator.h"

using namespace timr;
namespace T = timr::temporal;

int main() {
  // A small day of traffic to "stream".
  workload::GeneratorConfig gen;
  gen.num_users = 150;
  gen.duration = 1 * T::kDay;
  gen.bot_fraction = 0.02;
  auto log = workload::GenerateBtLog(gen);

  bt::BtQueryConfig cfg;
  cfg.bot_search_threshold = 40;
  cfg.bot_click_threshold = 25;

  // The same BotStream CQ used inside the offline pipeline.
  T::Query bots = bt::BotStream(bt::BtInput(), cfg);

  // --- Live deployment: push events as they "arrive". ---
  auto exec = T::Executor::Create(bots.node());
  TIMR_CHECK_OK(exec.status());
  int alerts = 0;
  T::CallbackSink alert_sink([&](const T::Event& e) {
    if (alerts < 8) {
      std::printf("[live] t=%6llds: user %lld flagged as bot (count %lld in "
                  "window ending %llds)\n",
                  static_cast<long long>(e.le),
                  static_cast<long long>(e.payload[0].AsInt64()),
                  static_cast<long long>(e.payload[1].AsInt64()),
                  static_cast<long long>(e.re));
    }
    ++alerts;
  });
  exec.ValueOrDie()->AddOutputSink(&alert_sink);

  for (const T::Event& e : log.events) {
    // In production these pushes come from the event bus; CTIs ride on the
    // feed's progress marks.
    exec.ValueOrDie()->PushCtiAll(e.le);
    TIMR_CHECK_OK(exec.ValueOrDie()->PushEvent(bt::kBtInput, e));
  }
  exec.ValueOrDie()->Finish();
  std::printf("[live] total bot-interval alerts: %d\n", alerts);

  // --- The offline replay of the same query gives identical results. ---
  auto offline = T::Executor::Execute(bots.node(), {{bt::kBtInput, log.events}});
  TIMR_CHECK_OK(offline.status());
  const bool identical = T::SameTemporalRelation(
      offline.ValueOrDie(), exec.ValueOrDie()->TakeOutput());
  std::printf("[check] live output == offline replay: %s\n",
              identical ? "yes" : "NO (bug!)");
  TIMR_CHECK(identical);

  // --- A second live query: RunningClickCount over the same feed. ---
  T::Query counter =
      bt::BtInput()
          .WhereEq(bt::kColStreamId, Value(bt::kStreamClick))
          .GroupApply({bt::kColKwAdId}, [](T::Query g) {
            return g.Window(6 * T::kHour).Count("clicks_6h");
          });
  auto exec2 = T::Executor::Create(counter.node());
  TIMR_CHECK_OK(exec2.status());
  int64_t peak = 0, peak_ad = -1;
  T::CallbackSink peak_sink([&](const T::Event& e) {
    if (e.payload[1].AsInt64() > peak) {
      peak = e.payload[1].AsInt64();
      peak_ad = e.payload[0].AsInt64();
    }
  });
  exec2.ValueOrDie()->AddOutputSink(&peak_sink);
  for (const T::Event& e : log.events) {
    exec2.ValueOrDie()->PushCtiAll(e.le);
    TIMR_CHECK_OK(exec2.ValueOrDie()->PushEvent(bt::kBtInput, e));
  }
  exec2.ValueOrDie()->Finish();
  std::printf("[live] peak 6h click rate: ad class %lld with %lld clicks\n",
              static_cast<long long>(peak_ad), static_cast<long long>(peak));
  return 0;
}
