// Quickstart: the paper's Example 1 (RunningClickCount).
//
// A data analyst wants the number of clicks per ad over a sliding 6-hour
// window, across a large click log. The temporal query is four lines; TiMR
// runs the same, unmodified query on the map-reduce substrate.
//
//   build/examples/quickstart

#include <cstdio>

#include "common/rng.h"
#include "mr/cluster.h"
#include "temporal/executor.h"
#include "temporal/query.h"
#include "timr/timr.h"

using namespace timr;
namespace T = timr::temporal;

int main() {
  // --- A toy click log: [UserId, AdId] point events over two days. ---
  Schema click_schema =
      Schema::Of({{"UserId", ValueType::kInt64}, {"AdId", ValueType::kInt64}});
  Rng rng(1);
  std::vector<T::Event> clicks;
  for (int i = 0; i < 5000; ++i) {
    clicks.push_back(T::Event::Point(
        rng.UniformInt(0, 2 * T::kDay),
        {Value(rng.UniformInt(1, 200)), Value(rng.UniformInt(1, 5))}));
  }

  // --- The temporal query (paper §III-A; compare the LINQ in the paper). ---
  T::Query running_click_count =
      T::Query::Input("ClickLog", click_schema)
          .GroupApply({"AdId"}, [](T::Query per_ad) {
            return per_ad.Window(6 * T::kHour).Count("ClickCount");
          });

  // --- Run it single-node (what a DSMS would do over a live feed). ---
  auto single =
      T::Executor::Execute(running_click_count.node(), {{"ClickLog", clicks}});
  TIMR_CHECK_OK(single.status());
  std::printf("single-node: %zu count-change events\n",
              single.ValueOrDie().size());
  std::printf("first few snapshots (ad, count, valid interval):\n");
  for (size_t i = 0; i < 5 && i < single.ValueOrDie().size(); ++i) {
    const T::Event& e = single.ValueOrDie()[i];
    std::printf("  ad=%lld count=%lld over [%llds, %llds)\n",
                static_cast<long long>(e.payload[0].AsInt64()),
                static_cast<long long>(e.payload[1].AsInt64()),
                static_cast<long long>(e.le), static_cast<long long>(e.re));
  }

  // --- Run the SAME query through TiMR on the map-reduce cluster. The only
  // change is one annotation: partition by AdId (paper Figure 7). ---
  T::Query annotated =
      T::Query::Input("ClickLog", click_schema)
          .Exchange(T::PartitionSpec::ByKeys({"AdId"}))
          .GroupApply({"AdId"}, [](T::Query per_ad) {
            return per_ad.Window(6 * T::kHour).Count("ClickCount");
          });
  mr::LocalCluster cluster(/*num_machines=*/8);
  auto dist = framework::RunPlanOnEvents(
      &cluster, annotated.node(), {{"ClickLog", {click_schema, clicks}}});
  TIMR_CHECK_OK(dist.status());

  std::printf("\nTiMR on %d machines: %zu events across %d partitions\n",
              cluster.num_machines(), dist.ValueOrDie().output.size(),
              dist.ValueOrDie().job_stats.stages[0].partitions);
  std::printf("outputs identical to single-node: %s\n",
              T::SameTemporalRelation(single.ValueOrDie(),
                                      dist.ValueOrDie().output)
                  ? "yes"
                  : "NO (bug!)");
  return 0;
}
