// End-to-end Behavioral Targeting (paper §IV): generate an ad log, eliminate
// bots, build behavior profiles, select keywords by z-test, train a logistic
// model, and measure CTR lift on a held-out half — all through the public
// temporal-query API, executed at scale by TiMR.
//
//   build/examples/behavioral_targeting

#include <cstdio>

#include "bt/evaluation.h"
#include "bt/queries.h"
#include "mr/cluster.h"
#include "temporal/executor.h"
#include "timr/timr.h"
#include "workload/generator.h"

using namespace timr;
namespace T = timr::temporal;

int main() {
  workload::GeneratorConfig gen;
  gen.num_users = 1200;
  auto log = workload::GenerateBtLog(gen);
  std::printf("generated %zu events: %zu impressions, %zu clicks, %zu searches\n",
              log.events.size(), log.CountStream(bt::kStreamImpression),
              log.CountStream(bt::kStreamClick),
              log.CountStream(bt::kStreamKeyword));

  bt::BtQueryConfig cfg;
  cfg.selection_period = 8 * T::kDay;
  cfg.bot_search_threshold = 60;
  cfg.bot_click_threshold = 30;

  auto [train_events, test_events] = workload::SplitByTime(log.events);

  // --- Feature pipeline on the training half, on the TiMR cluster. ---
  mr::LocalCluster cluster(16);
  auto scores_run = framework::RunPlanOnEvents(
      &cluster, bt::BtFeaturePipeline(cfg, bt::Annotation::kStandard).node(),
      {{bt::kBtInput, {bt::UnifiedSchema(), train_events}}});
  TIMR_CHECK_OK(scores_run.status());
  auto scores = bt::ScoresFromEvents(scores_run.ValueOrDie().output);
  std::printf("\nTiMR ran %zu fragments; %zu (ad, keyword) scores\n",
              scores_run.ValueOrDie().fragments.fragments.size(), scores.size());

  // --- Top keywords for one ad class. ---
  const int64_t ad = 0;
  std::printf("\nstrongest keywords for '%s':\n",
              log.truth.ad_classes[ad].name.c_str());
  std::vector<bt::FeatureScore> ad_scores;
  for (const auto& s : scores) {
    if (s.ad == ad && s.HasSupport()) ad_scores.push_back(s);
  }
  std::sort(ad_scores.begin(), ad_scores.end(),
            [](const auto& a, const auto& b) { return a.z > b.z; });
  for (size_t i = 0; i < 5 && i < ad_scores.size(); ++i) {
    std::printf("  +%5.1f  %s\n", ad_scores[i].z,
                log.truth.KeywordName(ad_scores[i].keyword).c_str());
  }
  for (size_t i = ad_scores.size() >= 5 ? ad_scores.size() - 5 : 0;
       i < ad_scores.size(); ++i) {
    std::printf("  %6.1f  %s\n", ad_scores[i].z,
                log.truth.KeywordName(ad_scores[i].keyword).c_str());
  }

  // --- Train on reduced features, evaluate lift on the held-out half. ---
  auto rows_q = bt::GenTrainData(bt::BotElimination(bt::BtInput(), cfg), cfg);
  auto train_rows =
      T::Executor::Execute(rows_q.node(), {{bt::kBtInput, train_events}});
  auto test_rows =
      T::Executor::Execute(rows_q.node(), {{bt::kBtInput, test_events}});
  TIMR_CHECK_OK(train_rows.status());
  TIMR_CHECK_OK(test_rows.status());

  auto scheme = bt::ReductionScheme::KeZ("KE-1.28", scores, 1.28);
  auto eval = bt::EvaluateScheme(
      scheme, bt::ExamplesFromTrainRows(train_rows.ValueOrDie()),
      bt::ExamplesFromTrainRows(test_rows.ValueOrDie()), {ad});
  const auto& e = eval.per_ad.at(ad);
  std::printf("\nheld-out evaluation for '%s' (base CTR %.4f):\n",
              log.truth.ad_classes[ad].name.c_str(), e.base_ctr);
  std::printf("  %-10s %-8s %s\n", "coverage", "CTR", "lift");
  for (const auto& pt : e.curve) {
    if (pt.coverage <= 0.31) {
      std::printf("  %-10.2f %-8.4f %.2fx\n", pt.coverage, pt.ctr, pt.lift);
    }
  }
  return 0;
}
