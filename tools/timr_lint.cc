// timr_lint: run the static analysis passes (analysis/analyzer.h,
// analysis/properties.h, analysis/fingerprint.h) over a registry of named
// plans and print the diagnostics.
//
//   timr_lint                 lint every registered plan, print a summary
//   timr_lint <name>...       lint the named plans, print full reports
//   timr_lint --list          list registered plans
//   timr_lint --json          machine-readable per-target results on stdout
//   timr_lint --share-report  cross-query CSE report over the BT CQ suite
//                             (analysis/sharing.h) as JSON on stdout
//   timr_lint --skew-report   per-query skew-mitigation audit over the BT CQ
//                             suite: every keyed exchange, whether it opts
//                             into adaptive splitting, and a note for the
//                             ones a hot key could stall; JSON on stdout
//   timr_lint --runtime-report
//                             exchanges of the BT CQ suite ranked by
//                             estimated inter-process shuffle cost: wire
//                             bytes per input row under the mr/rpc.h
//                             tagged-cell row encoding, times the temporal
//                             replication factor; JSON on stdout
//   timr_lint --columnar-allowlist <file>
//                             override the expected-warning allowlist
//                             (default: columnar_allowlist.txt next to the
//                             binary; missing file = empty allowlist)
//
// Exit status (CI gates on it):
//   0  every target behaved as expected, no unexpected warnings
//   1  residual warnings on clean plans that are not allowlisted
//   2  errors: a clean plan drew an error, a seeded corruption was NOT
//      rejected, or a shipped plan regressed to the columnar row fallback
//      without an allowlist entry
//
// The corrupt_* entries are deliberately broken plans/artifacts that must be
// rejected with a diagnostic naming the offending node; everything else
// (including the full BT pipeline in all annotation modes) must pass.
//
// The allowlist file holds one "<target>:<subject>" entry per line ('#'
// comments); it acknowledges known row-path fallbacks (e.g. the z-score
// Project, which needs TwoProportionZ) so any *new* degradation fails CI.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/fingerprint.h"
#include "analysis/properties.h"
#include "analysis/sharing.h"
#include "bt/queries.h"
#include "bt/schema.h"
#include "mr/checkpoint.h"
#include "temporal/conformance.h"
#include "temporal/query.h"
#include "timr/fragments.h"
#include "timr/optimizer.h"

namespace {

using timr::Schema;
using timr::ValueType;
using timr::analysis::AnalysisReport;
using timr::analysis::Severity;
using timr::temporal::kHour;
using timr::temporal::OpKind;
using timr::temporal::PartitionSpec;
using timr::temporal::PlanNode;
using timr::temporal::PlanNodePtr;
using timr::temporal::Query;

struct LintTarget {
  std::string name;
  std::string description;
  bool expect_errors;
  std::function<AnalysisReport()> run;
};

const Schema kClickSchema = Schema::Of({{"UserId", ValueType::kInt64},
                                        {"AdId", ValueType::kInt64}});

Query ClickInput() { return Query::Input("Clicks", kClickSchema); }

/// Paper Example 1: per-ad running click count over a 6h window, annotated
/// with the {AdId} exchange of §III-A step 2.
PlanNodePtr RunningClickCount() {
  return ClickInput()
      .Exchange(PartitionSpec::ByKeys({"AdId"}))
      .GroupApply({"AdId"},
                  [](Query g) { return g.Window(6 * kHour).Count("Cnt"); })
      .node();
}

/// Two keyed fragments: {UserId, AdId} then coarser... deliberately the
/// *valid* direction (finer first is the one that breaks). The second
/// exchange is provably redundant (its input is already {UserId}-partitioned)
/// and property-driven elision collapses this to a single fragment.
PlanNodePtr TwoFragmentPipeline() {
  return ClickInput()
      .Exchange(PartitionSpec::ByKeys({"UserId"}))
      .GroupApply({"UserId", "AdId"},
                  [](Query g) { return g.Window(kHour).Count("PerAd"); })
      .Exchange(PartitionSpec::ByKeys({"UserId"}))
      .GroupApply({"UserId"},
                  [](Query g) { return g.Window(kHour).Count("Total"); })
      .node();
}

/// Seeded corruption 1: the exchange partitions by {AdId} but the downstream
/// GroupApply groups by {UserId} — a partition would see only a slice of each
/// user's events (violates paper §III-A step 2).
PlanNodePtr CorruptExchangeKey() {
  return ClickInput()
      .Exchange(PartitionSpec::ByKeys({"AdId"}))
      .GroupApply({"UserId"},
                  [](Query g) { return g.Window(kHour).Count("Cnt"); })
      .node();
}

/// Seeded corruption 2: temporal partitioning whose overlap (30min) is
/// narrower than the 6h window applied downstream — span-boundary events
/// would be lost (violates paper §III-B).
PlanNodePtr CorruptNarrowSpan() {
  return ClickInput()
      .Exchange(PartitionSpec::ByTime(12 * kHour, kHour / 2))
      .Window(6 * kHour)
      .Aggregate(timr::temporal::AggregateSpec::Count("Cnt"))
      .node();
}

/// Seeded corruption 3: a hand-built FragmentedPlan whose fragment order is
/// inverted — frag_1 reads frag_0's output, but frag_0 is listed *after* it
/// (an unordered/cyclic fragment DAG the cutter could never emit).
timr::framework::FragmentedPlan CorruptCyclicFragments() {
  using timr::framework::Fragment;
  auto input_leaf = [](const std::string& dataset) {
    auto n = std::make_shared<PlanNode>();
    n->kind = OpKind::kInput;
    n->name = dataset;
    n->input_schema = kClickSchema;
    return n;
  };
  Fragment consumer;
  consumer.name = "frag_1";
  consumer.root = input_leaf("frag_0");
  consumer.key = PartitionSpec::ByKeys({});
  consumer.inputs = {"frag_0"};
  consumer.input_is_external = {false};
  Fragment producer;
  producer.name = "frag_0";
  producer.root = input_leaf("Clicks");
  producer.key = PartitionSpec::ByKeys({});
  producer.inputs = {"Clicks"};
  producer.input_is_external = {true};
  timr::framework::FragmentedPlan plan;
  plan.fragments = {consumer, producer};  // wrong order on purpose
  plan.output_dataset = "frag_0";
  return plan;
}

/// Seeded corruption: adaptive hot-key splitting requested on a temporal
/// exchange. Overlapping spans replicate boundary rows, so sub-partitioned
/// hot keys have no lossless coalesce — analysis::CheckSplitExchange must
/// reject the placement before the job runs.
PlanNodePtr CorruptSplitExchange() {
  PartitionSpec spec = PartitionSpec::ByTime(12 * kHour, 6 * kHour);
  spec.adaptive_split = true;
  return ClickInput()
      .Exchange(spec)
      .Window(6 * kHour)
      .Aggregate(timr::temporal::AggregateSpec::Count("Cnt"))
      .node();
}

/// Seeded corruption 4: a stream whose CTI regresses and whose events travel
/// back before the last CTI, fed straight through a ConformanceCheck operator
/// (the runtime half of validate_streams).
AnalysisReport LintCtiRegression() {
  timr::temporal::ConformanceCheckOp check("corrupt/input:Clicks");
  timr::temporal::CollectorSink sink;
  check.AddOutput(&sink);
  check.OnEvent(timr::temporal::Event(1, 10, {}));
  check.OnCti(8);
  check.OnEvent(timr::temporal::Event(5, 12, {}));  // LE 5 < CTI 8
  check.OnCti(3);                                   // CTI regression
  AnalysisReport report;
  for (const std::string& v : check.violations()) {
    timr::analysis::Diagnostic d;
    d.severity = Severity::kError;
    d.check = "conformance";
    d.message = v;  // already prefixed with the checked edge's label
    report.diagnostics.push_back(std::move(d));
  }
  return report;
}

/// Seeded corruption 5: a claimed fingerprint equality between two plans that
/// are NOT structurally equivalent — a simulated hash collision. The deep
/// comparator (the collision guard behind every fingerprint-based sharing
/// decision) must refute the claim.
AnalysisReport LintFingerprintCollision() {
  using timr::analysis::ComputeFingerprints;
  using timr::analysis::StructurallyEquivalent;
  const PlanNodePtr a =
      ClickInput().WhereCmp("AdId", timr::temporal::CmpOp::kEq, timr::Value(int64_t{7})).node();
  const PlanNodePtr b =
      ClickInput().WhereCmp("AdId", timr::temporal::CmpOp::kEq, timr::Value(int64_t{8})).node();
  const auto fa = ComputeFingerprints(a);
  const auto fb = ComputeFingerprints(b);
  AnalysisReport report;
  auto reject = [&report](const char* subject, std::string message) {
    report.diagnostics.push_back(timr::analysis::Diagnostic{
        Severity::kError, nullptr, subject, "fingerprint", std::move(message)});
  };
  // The corruption: assert the two fingerprints are interchangeable. Every
  // consumer must vet such a claim with the structural comparator, which
  // rejects it here (different literals).
  if (!StructurallyEquivalent(a.get(), b.get())) {
    reject("Select(AdId==7) vs Select(AdId==8)",
           "claimed fingerprint equality refuted by structural comparison: "
           "the plans differ in the compare literal");
  }
  // Sanity the other way: if the honest hashes also collided, that would be a
  // real hash-function failure worth its own error.
  if (fa.at(a.get()).hash == fb.at(b.get()).hash) {
    reject("Select(AdId==7) vs Select(AdId==8)",
           "distinct plans produced identical fingerprints (hash collision)");
  }
  return report;
}

/// Seeded corruption 6: a PropertyMap cached across a plan mutation. The
/// window is widened after inference, so the cached lifetime/max-window facts
/// are stale and ValidatePropertySnapshot must say so.
AnalysisReport LintStaleProperties() {
  const PlanNodePtr plan =
      ClickInput().Window(kHour).Count("Cnt").node();
  const timr::analysis::PropertyMap cached =
      timr::analysis::InferProperties(plan);
  // The corruption: mutate the plan while keeping the old map.
  PlanNode* alter = plan->children[0].get();
  alter->alter = timr::temporal::AlterLifetimeSpec::Window(2 * kHour);
  return timr::analysis::ValidatePropertySnapshot(plan, cached);
}

/// Estimated wire bytes per row crossing `exchange`, under the tagged-cell
/// row encoding workers ship shuffle partitions with (mr/rpc.h): an 8-byte
/// cell count, a 1-byte type tag per cell, 8 bytes per scalar, and
/// length-prefixed bytes for strings (16 assumed — the BT vocabulary's
/// typical keyword length). Rows on the wire carry the two interval
/// timestamps alongside the payload columns (temporal/convert.h's
/// IntervalRowSchema layout), so those are costed as two extra int64 cells.
timr::Result<size_t> EstimateWireRowBytes(const PlanNode* exchange) {
  if (exchange->children.empty()) {
    return timr::Status::Invalid(
        "runtime-report: exchange node has no input to cost");
  }
  const auto schema = exchange->children[0]->OutputSchema();
  if (!schema.ok()) return schema.status();
  size_t bytes = 8 + 2 * 9;  // cell count + Vs/Ve interval cells
  for (const auto& field : schema.ValueOrDie().fields()) {
    bytes += field.type == ValueType::kString ? size_t{25} : size_t{9};
  }
  return bytes;
}

/// Seeded corruption: the runtime-cost estimator pointed at an exchange with
/// no input — there is no schema to cost, and silently pricing it at zero
/// would rank a real shuffle below nothing. The estimator must refuse.
AnalysisReport LintCorruptRuntimeCost() {
  auto orphan = std::make_shared<PlanNode>();
  orphan->kind = OpKind::kExchange;
  orphan->exchange = PartitionSpec::ByKeys({"UserId"});
  AnalysisReport report;
  const auto est = EstimateWireRowBytes(orphan.get());
  if (!est.ok()) {
    report.diagnostics.push_back(timr::analysis::Diagnostic{
        Severity::kError, nullptr, "Exchange{UserId} (no input)",
        "runtime-report", est.status().ToString()});
  }
  return report;
}

/// Seeded corruption 7: a checkpoint whose cut does not match the resuming
/// plan — stage 0 released the dataset a post-resume fragment still reads,
/// and stage 1 was recorded under a different cut's name.
AnalysisReport LintCorruptCheckpointCut() {
  auto fragmented = timr::framework::MakeFragments(TwoFragmentPipeline());
  TIMR_CHECK(fragmented.ok()) << fragmented.status().ToString();
  const timr::framework::FragmentedPlan plan = fragmented.ValueOrDie();
  TIMR_CHECK(plan.fragments.size() == 2);
  timr::mr::CheckpointStore store;
  // Stage 0 claims to have released its own output — which fragment 1 (past
  // the resume point) still reads.
  TIMR_CHECK(store
                 .SaveStage(0, plan.fragments[0].name, {},
                            {plan.fragments[0].name})
                 .ok());
  // Stage 1 was checkpointed under a name from some other plan's cut.
  TIMR_CHECK(store.SaveStage(1, "some_other_cut", {}, {}).ok());
  AnalysisReport report =
      timr::analysis::CheckCheckpointCut(plan, store, /*resume_from=*/1);
  report.Absorb(
      timr::analysis::CheckCheckpointCut(plan, store, /*resume_from=*/2));
  return report;
}

/// Static passes plus the property/fingerprint layer plus fragment extraction
/// and fragment checks, i.e. everything Timr::RunPlan would verify before
/// touching data — and, when the plan carries exchanges, the property-driven
/// elision path (whose internal placement cross-check turns a property-
/// inference bug into a hard error here rather than a wrong plan at run time).
AnalysisReport LintPlanAndFragments(const PlanNodePtr& plan) {
  AnalysisReport report = timr::analysis::AnalyzePlan(plan);
  if (report.HasErrors()) return report;

  // Property-layer passes: a freshly inferred snapshot must validate against
  // itself (pass self-test), and the warning-level audits run on every plan.
  report.Absorb(timr::analysis::ValidatePropertySnapshot(
      plan, timr::analysis::InferProperties(plan)));
  report.Absorb(timr::analysis::CheckColumnarDegradation(plan));
  report.Absorb(timr::analysis::CheckUdoConsistency(plan));

  auto lint_fragments = [&report](const PlanNodePtr& root) {
    auto fragmented = timr::framework::MakeFragments(root);
    if (!fragmented.ok()) {
      timr::analysis::Diagnostic d;
      d.subject = "<plan>";
      d.check = "fragment-cut";
      d.message =
          "fragment extraction failed: " + fragmented.status().ToString();
      report.diagnostics.push_back(std::move(d));
      return;
    }
    report.Absorb(timr::analysis::CheckFragments(fragmented.ValueOrDie()));
  };
  lint_fragments(plan);

  auto elided = timr::framework::ElideRedundantExchanges(plan);
  if (!elided.ok()) {
    timr::analysis::Diagnostic d;
    d.subject = "<plan>";
    d.check = "exchange-placement";
    d.message = "exchange elision failed: " + elided.status().ToString();
    report.diagnostics.push_back(std::move(d));
  } else if (!elided.ValueOrDie().elided.empty()) {
    lint_fragments(elided.ValueOrDie().plan);
  }
  return report;
}

PlanNodePtr BtPipeline(timr::bt::Annotation annotation) {
  return timr::bt::BtFeaturePipeline(timr::bt::BtQueryConfig(), annotation)
      .node();
}

PlanNodePtr BtOptimized() {
  auto plan = BtPipeline(timr::bt::Annotation::kNone);
  auto result = timr::framework::OptimizeAnnotation(
      plan, timr::framework::PlanStats(), timr::framework::OptimizerOptions());
  TIMR_CHECK(result.ok()) << result.status().ToString();
  return result.ValueOrDie().annotated_plan;
}

std::vector<LintTarget> Registry() {
  std::vector<LintTarget> targets;
  auto add_plan = [&](std::string name, std::string description,
                      bool expect_errors, std::function<PlanNodePtr()> make) {
    targets.push_back(LintTarget{
        std::move(name), std::move(description), expect_errors,
        [make = std::move(make)] { return LintPlanAndFragments(make()); }});
  };
  add_plan("running_click_count", "paper Example 1 with its {AdId} exchange",
           false, RunningClickCount);
  add_plan("two_fragment", "two stacked keyed fragments", false,
           TwoFragmentPipeline);
  add_plan("bt_standard", "full BT pipeline, optimizer-style annotation",
           false, [] { return BtPipeline(timr::bt::Annotation::kStandard); });
  add_plan("bt_naive", "full BT pipeline, Example 3's naive annotation", false,
           [] { return BtPipeline(timr::bt::Annotation::kNaive); });
  add_plan("bt_unannotated", "full BT pipeline, single-node form", false,
           [] { return BtPipeline(timr::bt::Annotation::kNone); });
  add_plan("bt_optimized", "full BT pipeline annotated by Algorithm 1", false,
           BtOptimized);
  add_plan("corrupt_exchange_key",
           "exchange keys disjoint from downstream grouping key", true,
           CorruptExchangeKey);
  add_plan("corrupt_narrow_span",
           "temporal overlap narrower than the downstream window", true,
           CorruptNarrowSpan);
  add_plan("corrupt_split_exchange",
           "adaptive_split on a temporal exchange (no lossless coalesce)",
           true, CorruptSplitExchange);
  targets.push_back(LintTarget{
      "corrupt_cyclic_fragments", "fragment DAG not in topological order",
      true, [] {
        return timr::analysis::CheckFragments(CorruptCyclicFragments());
      }});
  targets.push_back(LintTarget{"corrupt_cti_regression",
                               "stream with a regressing CTI", true,
                               LintCtiRegression});
  targets.push_back(LintTarget{"corrupt_fingerprint_collision",
                               "claimed fingerprint equality between "
                               "structurally different plans",
                               true, LintFingerprintCollision});
  targets.push_back(LintTarget{"corrupt_stale_properties",
                               "property snapshot cached across a plan "
                               "mutation",
                               true, LintStaleProperties});
  targets.push_back(LintTarget{"corrupt_checkpoint_cut",
                               "checkpoint misaligned with the resuming "
                               "plan's fragment cuts",
                               true, LintCorruptCheckpointCut});
  targets.push_back(LintTarget{"corrupt_runtime_cost",
                               "shuffle-cost estimate requested for an "
                               "exchange with no input",
                               true, LintCorruptRuntimeCost});
  return targets;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// "<target>:<subject>" entries acknowledging known warnings, one per line.
std::set<std::string> LoadAllowlist(const std::string& path) {
  std::set<std::string> allow;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    while (!line.empty() && (line.back() == ' ' || line.back() == '\r')) {
      line.pop_back();
    }
    size_t start = line.find_first_not_of(' ');
    if (start == std::string::npos) continue;
    allow.insert(line.substr(start));
  }
  return allow;
}

struct TargetOutcome {
  bool as_expected = true;        // errors iff expected
  size_t residual_warnings = 0;   // warnings not in the allowlist
  size_t gate_failures = 0;       // unallowlisted columnar degradations
};

TargetOutcome Assess(const LintTarget& target, const AnalysisReport& report,
                     const std::set<std::string>& allowlist) {
  TargetOutcome out;
  out.as_expected = report.HasErrors() == target.expect_errors;
  if (target.expect_errors) return out;  // corruption targets: only the flip
  for (const auto& d : report.diagnostics) {
    if (d.severity != Severity::kWarning) continue;
    if (allowlist.count(target.name + ":" + d.subject) > 0) continue;
    if (d.check == "columnar-degradation") {
      ++out.gate_failures;  // shipped plan fell off the columnar path
    } else {
      ++out.residual_warnings;
    }
  }
  return out;
}

void PrintTargetJson(std::ostream& os, const LintTarget& target,
                     const AnalysisReport& report, const TargetOutcome& out,
                     bool last) {
  os << "  {\"name\": \"" << JsonEscape(target.name) << "\", "
     << "\"expect_errors\": " << (target.expect_errors ? "true" : "false")
     << ", \"as_expected\": " << (out.as_expected ? "true" : "false")
     << ", \"errors\": " << report.error_count()
     << ", \"warnings\": " << report.warning_count()
     << ", \"unallowlisted_columnar\": " << out.gate_failures
     << ", \"diagnostics\": [";
  for (size_t i = 0; i < report.diagnostics.size(); ++i) {
    const auto& d = report.diagnostics[i];
    if (i > 0) os << ", ";
    os << "{\"severity\": \"" << timr::analysis::SeverityName(d.severity)
       << "\", \"check\": \"" << JsonEscape(d.check) << "\", \"subject\": \""
       << JsonEscape(d.subject) << "\", \"message\": \""
       << JsonEscape(d.message) << "\"}";
  }
  os << "]}" << (last ? "" : ",") << "\n";
}

/// --skew-report: per-query audit of the shipped BT CQ suite for skew
/// exposure. Lists every keyed exchange and whether it opts into adaptive
/// skew-aware splitting; keyed exchanges without a split policy get a note —
/// they are exactly the shuffles one hot key can stall, and enabling
/// TimrOptions::skew (job-wide) or PartitionSpec::adaptive_split (per
/// exchange) mitigates that without changing output bytes.
std::string BuildSkewReportJson() {
  std::ostringstream os;
  size_t keyed = 0, with_policy = 0;
  os << "{\"queries\": [\n";
  const auto suite = timr::bt::BtCqSuite();
  for (size_t q = 0; q < suite.size(); ++q) {
    const auto& [name, plan] = suite[q];
    os << "  {\"query\": \"" << JsonEscape(name)
       << "\", \"keyed_exchanges\": [";
    bool first = true;
    for (const PlanNode* node : timr::temporal::CollectNodes(plan)) {
      if (node->kind != OpKind::kExchange) continue;
      if (node->exchange.kind != PartitionSpec::Kind::kKeys ||
          node->exchange.keys.empty()) {
        continue;
      }
      ++keyed;
      if (node->exchange.adaptive_split) ++with_policy;
      if (!first) os << ", ";
      first = false;
      os << "{\"spec\": \"" << JsonEscape(node->exchange.ToString())
         << "\", \"adaptive_split\": "
         << (node->exchange.adaptive_split ? "true" : "false");
      if (!node->exchange.adaptive_split) {
        os << ", \"note\": \"keyed exchange without a split policy: one hot "
              "key serializes this shuffle; enable TimrOptions::skew or "
              "PartitionSpec::adaptive_split to mitigate\"";
      }
      os << "}";
    }
    os << "]}" << (q + 1 == suite.size() ? "" : ",") << "\n";
  }
  os << "],\n\"keyed_exchanges\": " << keyed
     << ", \"with_split_policy\": " << with_policy << "}";
  return os.str();
}

/// --runtime-report: the BT CQ suite's exchanges ranked by estimated
/// inter-process shuffle cost. In multi-process mode (mr/driver.h) every
/// exchange ships its rows through the driver↔worker RPC twice — map buckets
/// up, reduce output back — so the ranking says which stages dominate the
/// wire and deserve partitioning attention first. Cost per input row is the
/// tagged-cell wire width times the temporal replication factor
/// ((span+overlap)/span for overlapping spans, 1 for keyed exchanges).
std::string BuildRuntimeReportJson() {
  struct Entry {
    std::string query;
    std::string spec;
    size_t row_bytes = 0;
    double replication = 1.0;
    double cost = 0.0;
  };
  std::vector<Entry> entries;
  size_t unestimated = 0;
  const auto suite = timr::bt::BtCqSuite();
  for (const auto& [name, plan] : suite) {
    for (const PlanNode* node : timr::temporal::CollectNodes(plan)) {
      if (node->kind != OpKind::kExchange) continue;
      const auto est = EstimateWireRowBytes(node);
      if (!est.ok()) {
        ++unestimated;
        continue;
      }
      Entry e;
      e.query = name;
      e.spec = node->exchange.ToString();
      e.row_bytes = est.ValueOrDie();
      if (node->exchange.kind == PartitionSpec::Kind::kTemporal &&
          node->exchange.span_width > 0) {
        e.replication =
            static_cast<double>(node->exchange.span_width +
                                node->exchange.overlap) /
            static_cast<double>(node->exchange.span_width);
      }
      e.cost = static_cast<double>(e.row_bytes) * e.replication;
      entries.push_back(std::move(e));
    }
  }
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    if (a.cost != b.cost) return a.cost > b.cost;
    if (a.query != b.query) return a.query < b.query;
    return a.spec < b.spec;
  });
  std::ostringstream os;
  os << "{\"stages\": [\n";
  for (size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    os << "  {\"query\": \"" << JsonEscape(e.query) << "\", \"exchange\": \""
       << JsonEscape(e.spec) << "\", \"wire_bytes_per_row\": " << e.row_bytes
       << ", \"replication\": " << e.replication
       << ", \"bytes_per_input_row\": " << e.cost << "}"
       << (i + 1 == entries.size() ? "" : ",") << "\n";
  }
  os << "],\n\"exchanges\": " << entries.size()
     << ", \"unestimated\": " << unestimated << "}";
  return os.str();
}

/// `extra_sections`, when non-empty, are folded into the JSON output as
/// siblings of the lint results — one well-formed document, not several
/// concatenated top-level values.
int RunTargets(const std::vector<LintTarget>& targets,
               const std::vector<std::string>& names,
               const std::set<std::string>& allowlist, bool json,
               const std::vector<std::pair<std::string, std::string>>&
                   extra_sections = {}) {
  std::vector<const LintTarget*> selected;
  for (const auto& target : targets) {
    if (names.empty() ||
        std::find(names.begin(), names.end(), target.name) != names.end()) {
      selected.push_back(&target);
    }
  }
  if (selected.empty()) {
    std::cerr << "no such plan; use --list\n";
    return 2;
  }

  size_t mismatches = 0, gate_failures = 0, residual_warnings = 0;
  if (json) {
    if (!extra_sections.empty()) {
      std::cout << "{\n";
      for (const auto& [key, value] : extra_sections) {
        std::cout << "\"" << key << "\": " << value << ",\n";
      }
      std::cout << "\"targets\": [\n";
    } else {
      std::cout << "[\n";
    }
  }
  for (size_t i = 0; i < selected.size(); ++i) {
    const LintTarget& target = *selected[i];
    const AnalysisReport report = target.run();
    const TargetOutcome out = Assess(target, report, allowlist);
    mismatches += out.as_expected ? 0 : 1;
    gate_failures += out.gate_failures;
    residual_warnings += out.residual_warnings;
    if (json) {
      PrintTargetJson(std::cout, target, report, out,
                      i + 1 == selected.size());
      continue;
    }
    const bool ok =
        out.as_expected && out.gate_failures == 0 && out.residual_warnings == 0;
    std::cout << (ok ? "PASS" : "FAIL") << "  " << target.name << " ("
              << report.error_count() << " error(s), "
              << report.warning_count() << " warning(s)"
              << (target.expect_errors ? ", errors expected" : "") << ")\n";
    if (!names.empty() || !ok) {
      for (const auto& d : report.diagnostics) {
        const bool allowed =
            d.severity == Severity::kWarning &&
            allowlist.count(target.name + ":" + d.subject) > 0;
        std::cout << "      " << d.ToString()
                  << (allowed ? "  [allowlisted]" : "") << "\n";
      }
    }
  }
  if (json) std::cout << (extra_sections.empty() ? "]\n" : "]\n}\n");

  if (mismatches > 0 && !json) {
    std::cout << mismatches << " plan(s) did not lint as expected\n";
  }
  if (gate_failures > 0 && !json) {
    std::cout << gate_failures
              << " columnar degradation(s) without an allowlist entry (add "
                 "\"<plan>:<subject>\" to the allowlist only if the row "
                 "fallback is intended)\n";
  }
  if (mismatches > 0 || gate_failures > 0) return 2;
  return residual_warnings > 0 ? 1 : 0;
}

std::string DefaultAllowlistPath(const char* argv0) {
  const std::string self(argv0);
  const size_t slash = self.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "." : self.substr(0, slash);
  return dir + "/columnar_allowlist.txt";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> names;
  std::string allowlist_path = DefaultAllowlistPath(argv[0]);
  bool json = false;
  bool list = false;
  bool share_report = false;
  bool skew_report = false;
  bool runtime_report = false;
  // Two passes: flags first, so flag order never changes behavior
  // (--share-report --json and --json --share-report are the same request).
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--list") == 0) {
      list = true;
    } else if (std::strcmp(arg, "--share-report") == 0) {
      share_report = true;
    } else if (std::strcmp(arg, "--skew-report") == 0) {
      skew_report = true;
    } else if (std::strcmp(arg, "--runtime-report") == 0) {
      runtime_report = true;
    } else if (std::strcmp(arg, "--json") == 0) {
      json = true;
    } else if (std::strcmp(arg, "--columnar-allowlist") == 0) {
      if (i + 1 >= argc) {
        std::cerr << "--columnar-allowlist needs a file argument\n";
        return 2;
      }
      allowlist_path = argv[++i];
    } else {
      names.emplace_back(arg);
    }
  }
  if (list) {
    for (const auto& t : Registry()) {
      std::cout << t.name << "  -  " << t.description
                << (t.expect_errors ? " [seeded corruption]" : "") << "\n";
    }
    return 0;
  }
  std::vector<std::pair<std::string, std::string>> extra_sections;
  if (share_report) {
    // The cross-query CSE report over every shipped BT CQ, as JSON (the CI
    // artifact; the input RunPlanSuite consumes via SelectSharedFragments).
    extra_sections.emplace_back(
        "share_report",
        timr::analysis::BuildShareReport(timr::bt::BtCqSuite()).ToJson());
  }
  if (skew_report) {
    extra_sections.emplace_back("skew_report", BuildSkewReportJson());
  }
  if (runtime_report) {
    extra_sections.emplace_back("runtime_report", BuildRuntimeReportJson());
  }
  if (!extra_sections.empty() && !json) {
    // Bare report(s): always exit 0 — an empty-but-clean report is a valid
    // answer, not a lint failure.
    for (const auto& [key, value] : extra_sections) {
      std::cout << value << "\n";
    }
    return 0;
  }
  return RunTargets(Registry(), names, LoadAllowlist(allowlist_path), json,
                    extra_sections);
}
