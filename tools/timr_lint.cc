// timr_lint: run the static analysis passes (analysis/analyzer.h) over a
// registry of named plans and print the diagnostics.
//
//   timr_lint                 lint every registered plan, print a summary
//   timr_lint <name>...       lint the named plans, print full reports
//   timr_lint --list          list registered plans
//
// Exit status is 1 if any *well-formed* plan draws an error or any seeded
// corruption fails to draw one — so the tool doubles as a self-test of the
// verifier: the corrupt_* entries are deliberately broken plans that must be
// rejected with a diagnostic naming the offending node, and everything else
// (including the full BT pipeline in all annotation modes) must pass.

#include <algorithm>
#include <cstring>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "bt/queries.h"
#include "bt/schema.h"
#include "temporal/conformance.h"
#include "temporal/query.h"
#include "timr/fragments.h"
#include "timr/optimizer.h"

namespace {

using timr::Schema;
using timr::ValueType;
using timr::analysis::AnalysisReport;
using timr::analysis::Severity;
using timr::temporal::kHour;
using timr::temporal::OpKind;
using timr::temporal::PartitionSpec;
using timr::temporal::PlanNode;
using timr::temporal::PlanNodePtr;
using timr::temporal::Query;

struct LintTarget {
  std::string name;
  std::string description;
  bool expect_errors;
  std::function<AnalysisReport()> run;
};

const Schema kClickSchema = Schema::Of({{"UserId", ValueType::kInt64},
                                        {"AdId", ValueType::kInt64}});

Query ClickInput() { return Query::Input("Clicks", kClickSchema); }

/// Paper Example 1: per-ad running click count over a 6h window, annotated
/// with the {AdId} exchange of §III-A step 2.
PlanNodePtr RunningClickCount() {
  return ClickInput()
      .Exchange(PartitionSpec::ByKeys({"AdId"}))
      .GroupApply({"AdId"},
                  [](Query g) { return g.Window(6 * kHour).Count("Cnt"); })
      .node();
}

/// Two keyed fragments: {UserId, AdId} then coarser... deliberately the
/// *valid* direction (finer first is the one that breaks).
PlanNodePtr TwoFragmentPipeline() {
  return ClickInput()
      .Exchange(PartitionSpec::ByKeys({"UserId"}))
      .GroupApply({"UserId", "AdId"},
                  [](Query g) { return g.Window(kHour).Count("PerAd"); })
      .Exchange(PartitionSpec::ByKeys({"UserId"}))
      .GroupApply({"UserId"},
                  [](Query g) { return g.Window(kHour).Count("Total"); })
      .node();
}

/// Seeded corruption 1: the exchange partitions by {AdId} but the downstream
/// GroupApply groups by {UserId} — a partition would see only a slice of each
/// user's events (violates paper §III-A step 2).
PlanNodePtr CorruptExchangeKey() {
  return ClickInput()
      .Exchange(PartitionSpec::ByKeys({"AdId"}))
      .GroupApply({"UserId"},
                  [](Query g) { return g.Window(kHour).Count("Cnt"); })
      .node();
}

/// Seeded corruption 2: temporal partitioning whose overlap (30min) is
/// narrower than the 6h window applied downstream — span-boundary events
/// would be lost (violates paper §III-B).
PlanNodePtr CorruptNarrowSpan() {
  return ClickInput()
      .Exchange(PartitionSpec::ByTime(12 * kHour, kHour / 2))
      .Window(6 * kHour)
      .Aggregate(timr::temporal::AggregateSpec::Count("Cnt"))
      .node();
}

/// Seeded corruption 3: a hand-built FragmentedPlan whose fragment order is
/// inverted — frag_1 reads frag_0's output, but frag_0 is listed *after* it
/// (an unordered/cyclic fragment DAG the cutter could never emit).
timr::framework::FragmentedPlan CorruptCyclicFragments() {
  using timr::framework::Fragment;
  auto input_leaf = [](const std::string& dataset) {
    auto n = std::make_shared<PlanNode>();
    n->kind = OpKind::kInput;
    n->name = dataset;
    n->input_schema = kClickSchema;
    return n;
  };
  Fragment consumer;
  consumer.name = "frag_1";
  consumer.root = input_leaf("frag_0");
  consumer.key = PartitionSpec::ByKeys({});
  consumer.inputs = {"frag_0"};
  consumer.input_is_external = {false};
  Fragment producer;
  producer.name = "frag_0";
  producer.root = input_leaf("Clicks");
  producer.key = PartitionSpec::ByKeys({});
  producer.inputs = {"Clicks"};
  producer.input_is_external = {true};
  timr::framework::FragmentedPlan plan;
  plan.fragments = {consumer, producer};  // wrong order on purpose
  plan.output_dataset = "frag_0";
  return plan;
}

/// Seeded corruption 4: a stream whose CTI regresses and whose events travel
/// back before the last CTI, fed straight through a ConformanceCheck operator
/// (the runtime half of validate_streams).
AnalysisReport LintCtiRegression() {
  timr::temporal::ConformanceCheckOp check("corrupt/input:Clicks");
  timr::temporal::CollectorSink sink;
  check.AddOutput(&sink);
  check.OnEvent(timr::temporal::Event(1, 10, {}));
  check.OnCti(8);
  check.OnEvent(timr::temporal::Event(5, 12, {}));  // LE 5 < CTI 8
  check.OnCti(3);                                   // CTI regression
  AnalysisReport report;
  for (const std::string& v : check.violations()) {
    timr::analysis::Diagnostic d;
    d.severity = Severity::kError;
    d.check = "conformance";
    d.message = v;  // already prefixed with the checked edge's label
    report.diagnostics.push_back(std::move(d));
  }
  return report;
}

/// Static passes plus fragment extraction + fragment checks, i.e. everything
/// Timr::RunPlan would verify before touching data.
AnalysisReport LintPlanAndFragments(const PlanNodePtr& plan) {
  AnalysisReport report = timr::analysis::AnalyzePlan(plan);
  if (report.HasErrors()) return report;
  auto fragmented = timr::framework::MakeFragments(plan);
  if (!fragmented.ok()) {
    timr::analysis::Diagnostic d;
    d.subject = "<plan>";
    d.check = "fragment-cut";
    d.message = "fragment extraction failed: " + fragmented.status().ToString();
    report.diagnostics.push_back(std::move(d));
    return report;
  }
  report.Absorb(timr::analysis::CheckFragments(fragmented.ValueOrDie()));
  return report;
}

PlanNodePtr BtPipeline(timr::bt::Annotation annotation) {
  return timr::bt::BtFeaturePipeline(timr::bt::BtQueryConfig(), annotation)
      .node();
}

PlanNodePtr BtOptimized() {
  auto plan = BtPipeline(timr::bt::Annotation::kNone);
  auto result = timr::framework::OptimizeAnnotation(
      plan, timr::framework::PlanStats(), timr::framework::OptimizerOptions());
  TIMR_CHECK(result.ok()) << result.status().ToString();
  return result.ValueOrDie().annotated_plan;
}

std::vector<LintTarget> Registry() {
  std::vector<LintTarget> targets;
  auto add_plan = [&](std::string name, std::string description,
                      bool expect_errors, std::function<PlanNodePtr()> make) {
    targets.push_back(LintTarget{
        std::move(name), std::move(description), expect_errors,
        [make = std::move(make)] { return LintPlanAndFragments(make()); }});
  };
  add_plan("running_click_count", "paper Example 1 with its {AdId} exchange",
           false, RunningClickCount);
  add_plan("two_fragment", "two stacked keyed fragments", false,
           TwoFragmentPipeline);
  add_plan("bt_standard", "full BT pipeline, optimizer-style annotation",
           false, [] { return BtPipeline(timr::bt::Annotation::kStandard); });
  add_plan("bt_naive", "full BT pipeline, Example 3's naive annotation", false,
           [] { return BtPipeline(timr::bt::Annotation::kNaive); });
  add_plan("bt_unannotated", "full BT pipeline, single-node form", false,
           [] { return BtPipeline(timr::bt::Annotation::kNone); });
  add_plan("bt_optimized", "full BT pipeline annotated by Algorithm 1", false,
           BtOptimized);
  add_plan("corrupt_exchange_key",
           "exchange keys disjoint from downstream grouping key", true,
           CorruptExchangeKey);
  add_plan("corrupt_narrow_span",
           "temporal overlap narrower than the downstream window", true,
           CorruptNarrowSpan);
  targets.push_back(LintTarget{
      "corrupt_cyclic_fragments", "fragment DAG not in topological order",
      true, [] {
        return timr::analysis::CheckFragments(CorruptCyclicFragments());
      }});
  targets.push_back(LintTarget{"corrupt_cti_regression",
                               "stream with a regressing CTI", true,
                               LintCtiRegression});
  return targets;
}

int RunTarget(const LintTarget& target, bool verbose) {
  const AnalysisReport report = target.run();
  const bool ok = report.HasErrors() == target.expect_errors;
  std::cout << (ok ? "PASS" : "FAIL") << "  " << target.name << " ("
            << report.error_count() << " error(s), " << report.warning_count()
            << " warning(s)"
            << (target.expect_errors ? ", errors expected" : "") << ")\n";
  if (verbose || !ok) {
    for (const auto& d : report.diagnostics) {
      std::cout << "      " << d.ToString() << "\n";
    }
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<LintTarget> targets = Registry();
  std::vector<std::string> names;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--list") == 0) {
      for (const auto& t : targets) {
        std::cout << t.name << "  -  " << t.description
                  << (t.expect_errors ? " [seeded corruption]" : "") << "\n";
      }
      return 0;
    }
    names.emplace_back(argv[i]);
  }

  int failures = 0;
  bool matched_any = false;
  for (const auto& target : targets) {
    if (!names.empty() &&
        std::find(names.begin(), names.end(), target.name) == names.end()) {
      continue;
    }
    matched_any = true;
    failures += RunTarget(target, /*verbose=*/!names.empty());
  }
  if (!matched_any) {
    std::cerr << "no such plan; use --list\n";
    return 2;
  }
  if (failures > 0) {
    std::cout << failures << " plan(s) did not lint as expected\n";
  }
  return failures > 0 ? 1 : 0;
}
