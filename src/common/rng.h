// Seeded pseudo-random generation for the synthetic workload. All experiment
// results must be reproducible, so every random draw goes through an explicitly
// seeded Rng (never std::random_device or global state).

#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace timr {

/// \brief xoshiro256** generator with convenience distributions.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& si : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      si = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, n).
  uint64_t UniformU64(uint64_t n) {
    TIMR_DCHECK(n > 0);
    return Next() % n;  // modulo bias is negligible for our n << 2^64
  }

  /// Uniform integer in [lo, hi].
  int64_t UniformInt(int64_t lo, int64_t hi) {
    TIMR_DCHECK(hi >= lo);
    return lo + static_cast<int64_t>(UniformU64(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform in [0, 1).
  double UniformDouble() { return (Next() >> 11) * 0x1.0p-53; }

  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Exponential with the given mean (> 0).
  double Exponential(double mean) {
    double u = UniformDouble();
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

/// \brief Zipf(s) sampler over {0, ..., n-1} using a precomputed CDF and
/// binary search. O(n) setup, O(log n) per draw.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double exponent) : cdf_(n) {
    TIMR_CHECK(n > 0);
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
      cdf_[i] = total;
    }
    for (auto& c : cdf_) c /= total;
  }

  size_t Sample(Rng* rng) const {
    double u = rng->UniformDouble();
    size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace timr
