// Fixed-size thread pool used by the LocalCluster to run reducer tasks. Tasks
// are fire-and-forget std::function<void()>; callers synchronize with WaitIdle.

#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace timr {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Block until every submitted task has finished running.
  void WaitIdle();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace timr
