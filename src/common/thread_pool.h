// Fixed-size thread pool used by the LocalCluster to run shuffle and reducer
// tasks. Tasks are fire-and-forget std::function<void()>; callers synchronize
// with WaitIdle. ParallelFor is the bulk-submit primitive the cluster's
// parallel pipeline is built on.

#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace timr {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Block until every submitted task has finished running.
  void WaitIdle();

  /// Run `body(i)` for every i in [0, n), spreading iterations over the pool
  /// workers plus the calling thread, and return once all n iterations have
  /// finished. Iterations are claimed dynamically (morsel stealing), so
  /// uneven per-index cost balances automatically.
  ///
  /// Exception-safe: if any body throws, remaining un-started iterations are
  /// skipped and the first exception (by completion order) is rethrown on the
  /// calling thread once the batch has drained. With a single-threaded pool
  /// (or n == 1) the body runs inline on the caller, so single-thread
  /// execution is exactly the serial loop.
  void ParallelFor(size_t n, const std::function<void(size_t)>& body);

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace timr
