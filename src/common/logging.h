// Minimal CHECK / DCHECK macros in the Arrow/glog style.

#pragma once

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace timr::internal {

/// Collects a message and aborts the process on destruction. Used only by the
/// TIMR_CHECK family below; never by recoverable error paths (those use Status).
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line) {
    stream_ << "[FATAL] " << file << ":" << line << ": ";
  }
  [[noreturn]] ~FatalLogMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace timr::internal

#define TIMR_CHECK(cond)                                      \
  if (!(cond))                                                \
  ::timr::internal::FatalLogMessage(__FILE__, __LINE__).stream() \
      << "Check failed: " #cond " "

#define TIMR_CHECK_OK(expr)                                   \
  do {                                                        \
    ::timr::Status _st = (expr);                              \
    TIMR_CHECK(_st.ok()) << _st.ToString();                   \
  } while (0)

#ifdef NDEBUG
#define TIMR_DCHECK(cond) TIMR_CHECK(true || (cond))
#else
#define TIMR_DCHECK(cond) TIMR_CHECK(cond)
#endif
