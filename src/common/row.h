// Dynamic row representation shared by the temporal engine and the map-reduce
// substrate. TiMR serializes events across stage boundaries and builds reducers
// generically, so payloads are schema-described rows of variant values (the same
// altitude SCOPE rows sit at).

#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"

namespace timr {

enum class ValueType : uint8_t { kInt64 = 0, kDouble = 1, kString = 2 };

/// \brief One cell of a row: 64-bit integer, double, or string.
class Value {
 public:
  Value() : repr_(int64_t{0}) {}
  Value(int64_t v) : repr_(v) {}            // NOLINT implicit
  Value(int v) : repr_(int64_t{v}) {}       // NOLINT implicit
  Value(double v) : repr_(v) {}             // NOLINT implicit
  Value(std::string v) : repr_(std::move(v)) {}  // NOLINT implicit
  Value(const char* v) : repr_(std::string(v)) {}  // NOLINT implicit

  ValueType type() const { return static_cast<ValueType>(repr_.index()); }

  bool is_int64() const { return std::holds_alternative<int64_t>(repr_); }
  bool is_double() const { return std::holds_alternative<double>(repr_); }
  bool is_string() const { return std::holds_alternative<std::string>(repr_); }

  int64_t AsInt64() const { return std::get<int64_t>(repr_); }
  double AsDouble() const { return std::get<double>(repr_); }
  const std::string& AsString() const { return std::get<std::string>(repr_); }

  /// Numeric view: int64 widened to double; dies on string.
  double AsNumeric() const {
    return is_int64() ? static_cast<double>(AsInt64()) : AsDouble();
  }

  bool operator==(const Value& other) const { return repr_ == other.repr_; }
  bool operator!=(const Value& other) const { return !(*this == other); }
  bool operator<(const Value& other) const { return repr_ < other.repr_; }

  std::string ToString() const;
  size_t Hash() const;

 private:
  std::variant<int64_t, double, std::string> repr_;
};

using Row = std::vector<Value>;

std::string RowToString(const Row& row);
size_t HashRow(const Row& row);

/// \brief Ordered list of named, typed columns.
class Schema {
 public:
  struct Field {
    std::string name;
    ValueType type;
  };

  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  static Schema Of(std::initializer_list<Field> fields) {
    return Schema(std::vector<Field>(fields));
  }

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the column with the given name, or KeyError.
  Result<int> IndexOf(std::string_view name) const;

  /// Indices for several names, in order; KeyError if any is missing.
  Result<std::vector<int>> IndicesOf(const std::vector<std::string>& names) const;

  bool HasField(std::string_view name) const;

  /// New schema that appends `other`'s fields after this one's. Collisions get
  /// a numeric suffix so the result stays unambiguous.
  Schema Concat(const Schema& other) const;

  /// Schema consisting of the fields at `indices`, in that order.
  Schema Select(const std::vector<int>& indices) const;

  bool operator==(const Schema& other) const;
  bool operator!=(const Schema& other) const { return !(*this == other); }

  std::string ToString() const;

 private:
  std::vector<Field> fields_;
};

/// Extract the values of `indices` from `row` as a key vector.
Row ExtractKey(const Row& row, const std::vector<int>& indices);

}  // namespace timr
