// Dynamic row representation shared by the temporal engine and the map-reduce
// substrate. TiMR serializes events across stage boundaries and builds reducers
// generically, so payloads are schema-described rows of variant values (the same
// altitude SCOPE rows sit at).

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/hash.h"
#include "common/status.h"

namespace timr {

enum class ValueType : uint8_t { kInt64 = 0, kDouble = 1, kString = 2 };

/// \brief One cell of a row: 64-bit integer, double, or string.
///
/// Strings come in two storage forms with identical semantics: an owned
/// std::string (SSO covers short payloads) or an *interned* shared string
/// (`Value::Interned`), where equal strings share one allocation through a
/// process-wide table. Interned values copy by refcount bump instead of heap
/// allocation, and equality hits a pointer-comparison fast path — both matter
/// on the engine's payload hot path (multicast Emit, group-key probes, join
/// probes). Both forms report ValueType::kString and compare/hash by content.
class Value {
 public:
  Value() : repr_(int64_t{0}) {}
  Value(int64_t v) : repr_(v) {}            // NOLINT implicit
  Value(int v) : repr_(int64_t{v}) {}       // NOLINT implicit
  Value(double v) : repr_(v) {}             // NOLINT implicit
  Value(std::string v) : repr_(std::move(v)) {}  // NOLINT implicit
  Value(const char* v) : repr_(std::string(v)) {}  // NOLINT implicit

  /// A string value backed by the process-wide intern table: equal contents
  /// share one immutable allocation (thread-safe).
  static Value Interned(std::string s);

  ValueType type() const {
    const size_t i = repr_.index();
    return i >= kInternedIndex ? ValueType::kString
                               : static_cast<ValueType>(i);
  }

  bool is_int64() const { return std::holds_alternative<int64_t>(repr_); }
  bool is_double() const { return std::holds_alternative<double>(repr_); }
  bool is_string() const { return type() == ValueType::kString; }
  bool is_interned() const { return repr_.index() == kInternedIndex; }

  int64_t AsInt64() const { return std::get<int64_t>(repr_); }
  double AsDouble() const { return std::get<double>(repr_); }
  const std::string& AsString() const {
    if (repr_.index() == kInternedIndex) {
      return *std::get<kInternedIndex>(repr_);
    }
    return std::get<std::string>(repr_);
  }

  /// Numeric view: int64 widened to double; dies on string.
  double AsNumeric() const {
    return is_int64() ? static_cast<double>(AsInt64()) : AsDouble();
  }

  bool operator==(const Value& other) const {
    const size_t a = repr_.index();
    const size_t b = other.repr_.index();
    if (a == b && a < kInternedIndex) return repr_ == other.repr_;
    if (!is_string() || !other.is_string()) return false;
    if (a == kInternedIndex && b == kInternedIndex &&
        std::get<kInternedIndex>(repr_) ==
            std::get<kInternedIndex>(other.repr_)) {
      return true;  // interned fast path: same shared allocation
    }
    return AsString() == other.AsString();
  }
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Total order: by type (int64 < double < string), then by value. Interned
  /// and plain strings interleave by content.
  bool operator<(const Value& other) const {
    const int ra = static_cast<int>(type());
    const int rb = static_cast<int>(other.type());
    if (ra != rb) return ra < rb;
    switch (type()) {
      case ValueType::kInt64: return AsInt64() < other.AsInt64();
      case ValueType::kDouble: return AsDouble() < other.AsDouble();
      case ValueType::kString: return AsString() < other.AsString();
    }
    return false;
  }

  std::string ToString() const;

  /// Inline: called a handful of times per event on the group/join probe
  /// paths, so the scalar cases must not pay an out-of-line call.
  size_t Hash() const {
    switch (repr_.index()) {
      case 0:
        return HashMix(static_cast<uint64_t>(std::get<int64_t>(repr_)) +
                       0x9e3779b97f4a7c15ULL);
      case 1: {
        const double d = std::get<double>(repr_);
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(d));
        __builtin_memcpy(&bits, &d, sizeof(bits));
        return HashMix(bits ^ 0xc2b2ae3d27d4eb4fULL);
      }
      default:
        return HashBytes(AsString().data(), AsString().size());
    }
  }

 private:
  static constexpr size_t kInternedIndex = 3;

  std::variant<int64_t, double, std::string,
               std::shared_ptr<const std::string>>
      repr_;
};

using Row = std::vector<Value>;

std::string RowToString(const Row& row);

inline size_t HashRow(const Row& row) {
  size_t h = 0x51ed270b0a1f3c49ULL;
  for (const Value& v : row) h = HashCombine(h, v.Hash());
  return h;
}

/// Hash of the key row formed by `row[indices]`; by construction equal to
/// `HashRow(ExtractKey(row, indices))` without materializing the key. Used by
/// the heterogeneous group/join probes.
inline size_t HashKeyOf(const Row& row, const std::vector<int>& indices) {
  size_t h = 0x51ed270b0a1f3c49ULL;
  for (int i : indices) h = HashCombine(h, row[i].Hash());
  return h;
}

/// \brief Ordered list of named, typed columns.
class Schema {
 public:
  struct Field {
    std::string name;
    ValueType type;
  };

  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  static Schema Of(std::initializer_list<Field> fields) {
    return Schema(std::vector<Field>(fields));
  }

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the column with the given name, or KeyError.
  Result<int> IndexOf(std::string_view name) const;

  /// Indices for several names, in order; KeyError if any is missing.
  Result<std::vector<int>> IndicesOf(const std::vector<std::string>& names) const;

  bool HasField(std::string_view name) const;

  /// New schema that appends `other`'s fields after this one's. Collisions get
  /// a numeric suffix so the result stays unambiguous.
  Schema Concat(const Schema& other) const;

  /// Schema consisting of the fields at `indices`, in that order.
  Schema Select(const std::vector<int>& indices) const;

  bool operator==(const Schema& other) const;
  bool operator!=(const Schema& other) const { return !(*this == other); }

  std::string ToString() const;

 private:
  std::vector<Field> fields_;
};

/// Extract the values of `indices` from `row` as a key vector.
Row ExtractKey(const Row& row, const std::vector<int>& indices);

/// Schema/decode check for untrusted rows: arity must match the schema and
/// every cell's dynamic type must equal its column's declared type. Used by
/// the map-reduce substrate's poison-row quarantine and its chaos
/// corrupt-read detection (mr/fault.h). Returns Invalid naming the first
/// offending column.
Status ValidateRowSchema(const Schema& schema, const Row& row);

}  // namespace timr
