#include "common/thread_pool.h"

#include "common/logging.h"

namespace timr {

ThreadPool::ThreadPool(size_t num_threads) {
  TIMR_CHECK(num_threads > 0);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (shutdown_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace timr
