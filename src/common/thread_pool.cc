#include "common/thread_pool.h"

#include <atomic>
#include <memory>

#include "common/logging.h"

namespace timr {

namespace {

/// Shared state of one ParallelFor batch. Owned by shared_ptr so helper tasks
/// that outlive the caller's wait (by a few bookkeeping instructions) keep it
/// alive.
struct Batch {
  Batch(size_t n_in, const std::function<void(size_t)>& body_in)
      : n(n_in), body(&body_in) {}

  void Run() {
    while (true) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      if (!failed.load(std::memory_order_relaxed)) {
        try {
          (*body)(i);
        } catch (...) {
          failed.store(true, std::memory_order_relaxed);
          std::lock_guard<std::mutex> lock(mu);
          if (error == nullptr) error = std::current_exception();
        }
      }
      if (completed.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_all();
      }
    }
  }

  const size_t n;
  // The caller blocks until all n iterations complete, so pointing at its
  // std::function is safe and avoids a copy.
  const std::function<void(size_t)>* body;
  std::atomic<size_t> next{0};
  std::atomic<size_t> completed{0};
  std::atomic<bool> failed{false};
  std::mutex mu;
  std::condition_variable cv;
  std::exception_ptr error;
};

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  TIMR_CHECK(num_threads > 0);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& body) {
  if (n == 0) return;
  if (n == 1 || threads_.size() == 1) {
    // Inline serial path: no scheduling overhead, exceptions propagate as-is.
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  auto batch = std::make_shared<Batch>(n, body);
  // n - 1 helpers at most: the caller claims iterations too, so a batch
  // smaller than the pool doesn't enqueue tasks that find nothing to do.
  const size_t helpers = std::min(threads_.size(), n - 1);
  for (size_t i = 0; i < helpers; ++i) {
    Submit([batch] { batch->Run(); });
  }
  batch->Run();
  {
    std::unique_lock<std::mutex> lock(batch->mu);
    batch->cv.wait(lock, [&] {
      return batch->completed.load(std::memory_order_acquire) == n;
    });
  }
  if (batch->error != nullptr) std::rethrow_exception(batch->error);
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (shutdown_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace timr
