// Hashing helpers. Deterministic across runs and platforms (never use
// std::hash for anything that feeds data partitioning: its value is
// implementation-defined, and TiMR's repeatability guarantee requires a stable
// partition function).

#pragma once

#include <cstddef>
#include <cstdint>

namespace timr {

/// 64-bit finalizer (splitmix64); good avalanche for integer keys.
inline uint64_t HashMix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// FNV-1a over raw bytes.
inline uint64_t HashBytes(const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline uint64_t HashCombine(uint64_t seed, uint64_t v) {
  return seed ^ (HashMix(v) + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace timr
