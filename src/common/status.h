// Status / Result error model, in the style of Apache Arrow and RocksDB.
//
// Core library code does not throw exceptions; fallible operations return a
// Status (or Result<T> when they produce a value). Callers either handle the
// error or propagate it with TIMR_RETURN_NOT_OK / TIMR_ASSIGN_OR_RETURN.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace timr {

enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalid = 1,        // caller passed something malformed
  kKeyError = 2,       // lookup of a name/key failed
  kNotImplemented = 3,
  kExecutionError = 4,  // runtime failure inside an operator / task
  kIOError = 5,
  kTaskFailed = 6,  // a task exhausted its retry budget (message names
                    // stage, partition, and attempt count)
  kDataError = 7,   // input rows failed schema/decode checks beyond the
                    // configured tolerance (poison-row quarantine)
  kRpcError = 8,    // a driver<->worker RPC frame was malformed, truncated,
                    // or timed out (mr/rpc.h); transport-level, retryable
};

/// \brief Outcome of a fallible operation: a code plus a human-readable message.
///
/// The OK status carries no allocation; error statuses hold their message on
/// the heap so that Status stays one pointer wide.
class Status {
 public:
  Status() = default;  // OK

  static Status OK() { return Status(); }
  static Status Invalid(std::string msg) {
    return Status(StatusCode::kInvalid, std::move(msg));
  }
  static Status KeyError(std::string msg) {
    return Status(StatusCode::kKeyError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status TaskFailed(std::string msg) {
    return Status(StatusCode::kTaskFailed, std::move(msg));
  }
  static Status DataError(std::string msg) {
    return Status(StatusCode::kDataError, std::move(msg));
  }
  static Status RpcError(std::string msg) {
    return Status(StatusCode::kRpcError, std::move(msg));
  }
  /// Rebuild a status with the same taxonomy but a new message — for adding
  /// context (stage/partition/attempt) at a task boundary without collapsing
  /// every error into kExecutionError.
  static Status FromCode(StatusCode code, std::string msg) {
    if (code == StatusCode::kOk) return Status();
    return Status(code, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }

  const std::string& message() const {
    static const std::string kEmpty;
    return ok() ? kEmpty : state_->msg;
  }

  std::string ToString() const {
    if (ok()) return "OK";
    return CodeName(code()) + ": " + state_->msg;
  }

  static std::string CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalid: return "Invalid";
      case StatusCode::kKeyError: return "KeyError";
      case StatusCode::kNotImplemented: return "NotImplemented";
      case StatusCode::kExecutionError: return "ExecutionError";
      case StatusCode::kIOError: return "IOError";
      case StatusCode::kTaskFailed: return "TaskFailed";
      case StatusCode::kDataError: return "DataError";
      case StatusCode::kRpcError: return "RpcError";
    }
    return "Unknown";
  }

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };

  Status(StatusCode code, std::string msg)
      : state_(std::make_shared<State>(State{code, std::move(msg)})) {}

  std::shared_ptr<State> state_;  // nullptr means OK
};

/// \brief Either a value of type T or an error Status.
template <typename T>
class Result {
 public:
  Result(T value) : repr_(std::move(value)) {}  // NOLINT implicit
  Result(Status status) : repr_(std::move(status)) {}  // NOLINT implicit

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(repr_);
  }

  T& ValueOrDie() & {
    AbortIfError();
    return std::get<T>(repr_);
  }
  const T& ValueOrDie() const& {
    AbortIfError();
    return std::get<T>(repr_);
  }
  T ValueOrDie() && {
    AbortIfError();
    return std::move(std::get<T>(repr_));
  }

  /// Move the contained value out; undefined if !ok().
  T MoveValue() { return std::move(std::get<T>(repr_)); }

 private:
  void AbortIfError() const;
  std::variant<T, Status> repr_;
};

namespace internal {
[[noreturn]] void DieOnBadStatus(const Status& st);
}  // namespace internal

template <typename T>
void Result<T>::AbortIfError() const {
  if (!ok()) internal::DieOnBadStatus(status());
}

#define TIMR_RETURN_NOT_OK(expr)                \
  do {                                          \
    ::timr::Status _st = (expr);                \
    if (!_st.ok()) return _st;                  \
  } while (0)

#define TIMR_CONCAT_IMPL(a, b) a##b
#define TIMR_CONCAT(a, b) TIMR_CONCAT_IMPL(a, b)

#define TIMR_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).MoveValue();

/// Evaluate `expr` (a Result<T>); on error propagate, otherwise bind to `lhs`.
#define TIMR_ASSIGN_OR_RETURN(lhs, expr) \
  TIMR_ASSIGN_OR_RETURN_IMPL(TIMR_CONCAT(_res_, __COUNTER__), lhs, expr)

}  // namespace timr
