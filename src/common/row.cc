#include "common/row.h"

#include <functional>
#include <mutex>
#include <sstream>
#include <unordered_set>

#include "common/hash.h"

namespace timr {

Value Value::Interned(std::string s) {
  struct PtrHash {
    size_t operator()(const std::shared_ptr<const std::string>& p) const {
      return HashBytes(p->data(), p->size());
    }
  };
  struct PtrEq {
    bool operator()(const std::shared_ptr<const std::string>& a,
                    const std::shared_ptr<const std::string>& b) const {
      return *a == *b;
    }
  };
  static std::mutex mu;
  static std::unordered_set<std::shared_ptr<const std::string>, PtrHash, PtrEq>
      table;
  auto entry = std::make_shared<const std::string>(std::move(s));
  std::lock_guard<std::mutex> lock(mu);
  Value v;
  v.repr_ = *table.insert(std::move(entry)).first;
  return v;
}

std::string Value::ToString() const {
  std::ostringstream os;
  switch (type()) {
    case ValueType::kInt64:
      os << AsInt64();
      break;
    case ValueType::kDouble:
      os << AsDouble();
      break;
    case ValueType::kString:
      os << '"' << AsString() << '"';
      break;
  }
  return os.str();
}

std::string RowToString(const Row& row) {
  std::ostringstream os;
  os << '[';
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) os << ", ";
    os << row[i].ToString();
  }
  os << ']';
  return os.str();
}

Result<int> Schema::IndexOf(std::string_view name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return Status::KeyError("no column named '" + std::string(name) + "' in " +
                          ToString());
}

Result<std::vector<int>> Schema::IndicesOf(
    const std::vector<std::string>& names) const {
  std::vector<int> out;
  out.reserve(names.size());
  for (const auto& n : names) {
    TIMR_ASSIGN_OR_RETURN(int idx, IndexOf(n));
    out.push_back(idx);
  }
  return out;
}

bool Schema::HasField(std::string_view name) const { return IndexOf(name).ok(); }

Schema Schema::Concat(const Schema& other) const {
  std::vector<Field> fields = fields_;
  for (const Field& f : other.fields_) {
    Field g = f;
    int suffix = 1;
    while (true) {
      bool clash = false;
      for (const Field& existing : fields) {
        if (existing.name == g.name) {
          clash = true;
          break;
        }
      }
      if (!clash) break;
      g.name = f.name + "_" + std::to_string(++suffix);
    }
    fields.push_back(g);
  }
  return Schema(std::move(fields));
}

Schema Schema::Select(const std::vector<int>& indices) const {
  std::vector<Field> fields;
  fields.reserve(indices.size());
  for (int i : indices) fields.push_back(fields_[i]);
  return Schema(std::move(fields));
}

bool Schema::operator==(const Schema& other) const {
  if (fields_.size() != other.fields_.size()) return false;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name != other.fields_[i].name ||
        fields_[i].type != other.fields_[i].type) {
      return false;
    }
  }
  return true;
}

std::string Schema::ToString() const {
  std::ostringstream os;
  os << '{';
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) os << ", ";
    os << fields_[i].name << ':';
    switch (fields_[i].type) {
      case ValueType::kInt64: os << "int64"; break;
      case ValueType::kDouble: os << "double"; break;
      case ValueType::kString: os << "string"; break;
    }
  }
  os << '}';
  return os.str();
}

Row ExtractKey(const Row& row, const std::vector<int>& indices) {
  Row key;
  key.reserve(indices.size());
  for (int i : indices) key.push_back(row[i]);
  return key;
}

namespace {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kInt64: return "int64";
    case ValueType::kDouble: return "double";
    case ValueType::kString: return "string";
  }
  return "unknown";
}

}  // namespace

Status ValidateRowSchema(const Schema& schema, const Row& row) {
  if (row.size() != schema.num_fields()) {
    return Status::Invalid("row has " + std::to_string(row.size()) +
                           " cells but schema " + schema.ToString() + " has " +
                           std::to_string(schema.num_fields()) + " fields");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].type() != schema.field(i).type) {
      return Status::Invalid("column '" + schema.field(i).name +
                             "': expected " +
                             ValueTypeName(schema.field(i).type) + ", got " +
                             ValueTypeName(row[i].type()));
    }
  }
  return Status::OK();
}

}  // namespace timr
