#include "common/status.h"

#include <cstdlib>
#include <iostream>

namespace timr::internal {

void DieOnBadStatus(const Status& st) {
  std::cerr << "[FATAL] ValueOrDie on error status: " << st.ToString() << std::endl;
  std::abort();
}

}  // namespace timr::internal
