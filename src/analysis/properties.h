// Property inference over temporal::PlanNode DAGs: the dataflow pass that
// turns the checkers of plan_checks.h into an *optimization-grade* analysis.
//
// For every node the pass derives:
//  - partitioning: how the stream's events are distributed across physical
//    partitions at this point of the plan (the lattice below);
//  - ordering: the strongest delivery-order guarantee (LE order is the engine
//    invariant everywhere; the shuffle additionally delivers canonical
//    (le, re, payload) order across exchange boundaries);
//  - lifetime bounds: min/max event duration after each windowing operator,
//    the fact behind temporal-partitioning overlap (paper §III-B);
//  - max_window_below / statefulness: which sub-DAGs hold operator state;
//  - determinism class: pure spec-driven ops < opaque-but-deterministic
//    closures < order-sensitive UDOs (paper §III-C.1);
//  - columnar eligibility: whether the node consumes columnar batches
//    natively or hits the EnsureRows row fallback — copied verbatim from the
//    executor's own build-time gating (temporal::PlanColumnarIngest), so the
//    prediction cannot drift from the runtime decision.
//
// The partitioning facts license exchange elision (timr/optimizer.h
// ElideRedundantExchanges): an exchange whose input is already partitioned by
// a subset of its keys is provably redundant, because the placement invariant
// (exchange keys ⊆ downstream grouping keys, §III-A step 2) then holds
// transitively for the coarser upstream partitioning.

#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/diagnostic.h"
#include "temporal/plan.h"
#include "temporal/time.h"

namespace timr::analysis {

/// \brief Where a stream's events physically live, as a lattice:
///
///   kArbitrary (no fact)  <  kKeys / kTemporal / kSingleton
///
/// kKeys(K): all events agreeing on columns K are in the same partition.
/// Weakening is sound along subsets: a stream partitioned by K is also
/// "partitioned by" any K' ⊇ K for placement purposes (equal-K' rows agree on
/// K, hence co-locate), which is exactly the elision rule.
struct Partitioning {
  enum class Kind : uint8_t {
    kArbitrary,  // nothing known: events may be spread arbitrarily
    kKeys,       // co-located by equality on `keys`
    kSingleton,  // the whole stream is in one partition
    kTemporal,   // span-partitioned by time with `overlap` (paper §III-B)
  };

  Kind kind = Kind::kArbitrary;
  std::vector<std::string> keys;        // kKeys
  temporal::Timestamp span_width = 0;   // kTemporal
  temporal::Timestamp overlap = 0;      // kTemporal

  static Partitioning Arbitrary() { return {}; }
  static Partitioning Keys(std::vector<std::string> k) {
    Partitioning p;
    p.kind = Kind::kKeys;
    p.keys = std::move(k);
    return p;
  }
  static Partitioning Singleton() {
    Partitioning p;
    p.kind = Kind::kSingleton;
    return p;
  }
  static Partitioning TemporalSpans(temporal::Timestamp span_width,
                                    temporal::Timestamp overlap) {
    Partitioning p;
    p.kind = Kind::kTemporal;
    p.span_width = span_width;
    p.overlap = overlap;
    return p;
  }

  bool operator==(const Partitioning& o) const {
    return kind == o.kind && keys == o.keys && span_width == o.span_width &&
           overlap == o.overlap;
  }
  bool operator!=(const Partitioning& o) const { return !(*this == o); }

  std::string ToString() const;
};

/// Delivery-order guarantee of a stream edge. Every stream in the engine is
/// LE-ordered (the operator contract); the shuffle's per-partition sort
/// additionally guarantees the canonical (le, re, payload) order across
/// exchange boundaries — the fact that lets TiMR reducers skip the
/// executor's defensive re-sort (Executor::set_assume_sorted_inputs).
enum class Ordering : uint8_t { kLeOrdered, kCanonical };

const char* OrderingName(Ordering o);

/// Determinism class of the computation at-or-below a node, ordered by how
/// much the replay/determinism argument (paper §III-C.1) must assume:
/// structured specs are replayable by construction; opaque closures are
/// assumed deterministic functions of their input; order-sensitive UDOs
/// additionally depend on the arrival order of same-timestamp events.
enum class DeterminismClass : uint8_t {
  kPure,
  kOpaqueDeterministic,
  kOrderSensitive,
};

const char* DeterminismClassName(DeterminismClass d);

/// Inclusive bounds on event duration (re - le) of a stream. `max` of
/// temporal::kMaxTime means unbounded.
struct LifetimeBounds {
  temporal::Timestamp min = temporal::kTick;
  temporal::Timestamp max = temporal::kMaxTime;

  bool operator==(const LifetimeBounds& o) const {
    return min == o.min && max == o.max;
  }
  std::string ToString() const;
};

/// \brief Everything the pass knows about one plan node's output stream (and
/// the sub-DAG producing it).
struct NodeProperties {
  Partitioning partitioning;
  Ordering ordering = Ordering::kLeOrdered;
  LifetimeBounds lifetime;
  /// Largest window any AlterLifetime/UDO at-or-below applies (mirrors
  /// PlanNode::MaxWindow, but available per node).
  temporal::Timestamp max_window_below = temporal::kTick;
  /// Whether this operator itself holds cross-event state (synopses, merge
  /// buffers, window contents).
  bool stateful = false;
  /// Whether any operator at-or-below holds state.
  bool stateful_below = false;
  DeterminismClass determinism = DeterminismClass::kPure;
  /// Whether the physical operator consumes columnar batches natively
  /// (otherwise it EnsureRows-materializes). Executor-exact: copied from
  /// temporal::PlanColumnarIngest.
  bool consumes_columnar = false;

  bool operator==(const NodeProperties& o) const {
    return partitioning == o.partitioning && ordering == o.ordering &&
           lifetime == o.lifetime && max_window_below == o.max_window_below &&
           stateful == o.stateful && stateful_below == o.stateful_below &&
           determinism == o.determinism &&
           consumes_columnar == o.consumes_columnar;
  }
  bool operator!=(const NodeProperties& o) const { return !(*this == o); }

  std::string ToString() const;
};

struct PropertyOptions {
  /// Sources are fed in canonical (le, re, payload) order — true for TiMR
  /// reducer inputs (the shuffle contract, mr/stage.h), false for arbitrary
  /// live sources that only promise LE order.
  bool canonical_inputs = false;
};

/// \brief The result of one inference run over a plan DAG.
struct PropertyMap {
  /// Properties for every node reachable from the root, including group
  /// sub-plan bodies.
  std::unordered_map<const temporal::PlanNode*, NodeProperties> nodes;
  /// For kInput nodes: whether the executor will build columnar morsels for
  /// the source (temporal::PlanColumnarIngest's ingest decision).
  std::unordered_map<const temporal::PlanNode*, bool> columnar_ingest;

  /// Properties of `node`; dies if the node was not part of the analyzed
  /// plan (callers hold the same DAG the map was computed over).
  const NodeProperties& at(const temporal::PlanNode* node) const;
};

/// Run the dataflow pass over `root` (entering group sub-plans).
PropertyMap InferProperties(const temporal::PlanNodePtr& root,
                            const PropertyOptions& opts = {});

/// Invariant "stale-properties": recompute properties for `root` and report
/// an error for every node whose cached entry disagrees (or is missing /
/// left over). Guards consumers that cache a PropertyMap across plan
/// mutations.
AnalysisReport ValidatePropertySnapshot(const temporal::PlanNodePtr& root,
                                        const PropertyMap& cached,
                                        const PropertyOptions& opts = {});

/// Invariant "columnar-degradation" (warnings only): places where the plan
/// silently falls back to row-at-a-time execution — opaque Select/Project
/// closures forcing EnsureRows where a structured spec would vectorize, and
/// sources demoted to row ingest by mixed consumer fan-out.
AnalysisReport CheckColumnarDegradation(const temporal::PlanNodePtr& root);

}  // namespace timr::analysis
