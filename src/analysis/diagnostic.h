// Structured diagnostics produced by the static plan/fragment verifiers
// (plan_checks.h, fragment_checks.h) and surfaced by Timr::RunPlan and the
// timr_lint tool. A diagnostic names the offending node (or fragment), the
// invariant that was violated, and a human-readable explanation.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "temporal/plan.h"

namespace timr::analysis {

enum class Severity : uint8_t {
  kWarning,  // suspicious but not provably wrong; reported, never fatal
  kError,    // violates a correctness invariant; fails RunPlan validation
};

const char* SeverityName(Severity severity);

/// \brief One finding. `node` is an optional pointer into the analyzed plan
/// (null for fragment-/stage-level findings); `subject` is its stable
/// rendering so diagnostics stay meaningful after the plan is gone.
struct Diagnostic {
  Severity severity = Severity::kError;
  const temporal::PlanNode* node = nullptr;
  std::string subject;  // e.g. "Exchange {AdId}" or "fragment frag_2"
  std::string check;    // invariant id: "schema", "exchange-keys",
                        // "temporal-span", "fragment-cut", "determinism", ...
  std::string message;

  std::string ToString() const;
};

/// \brief Accumulated findings of one analysis run.
struct AnalysisReport {
  std::vector<Diagnostic> diagnostics;

  bool HasErrors() const;
  size_t error_count() const;
  size_t warning_count() const;

  /// Findings for one invariant id (used by tests and targeted asserts).
  std::vector<Diagnostic> ForCheck(const std::string& check) const;

  /// Merge another report's findings into this one.
  void Absorb(AnalysisReport other);

  /// OK when there are no errors (warnings tolerated); otherwise an Invalid
  /// status whose message lists every error.
  Status ToStatus() const;

  /// Multi-line rendering of all findings, errors first.
  std::string ToString() const;
};

/// One-line rendering of a plan node for diagnostic subjects: kind plus the
/// most identifying parameter (input name, keys, exchange spec, ...).
std::string DescribeNode(const temporal::PlanNode* node);

}  // namespace timr::analysis
