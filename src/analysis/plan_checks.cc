#include "analysis/plan_checks.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "temporal/convert.h"

namespace timr::analysis {

using temporal::OpKind;
using temporal::PartitionSpec;
using temporal::PlanNode;
using temporal::PlanNodePtr;
using temporal::Timestamp;

namespace {

Diagnostic Make(Severity severity, const PlanNode* node, std::string check,
                std::string message) {
  Diagnostic d;
  d.severity = severity;
  d.node = node;
  d.subject = DescribeNode(node);
  d.check = std::move(check);
  d.message = std::move(message);
  return d;
}

std::string ColumnList(const std::vector<std::string>& cols) {
  std::string s = "{";
  for (size_t i = 0; i < cols.size(); ++i) {
    if (i > 0) s += ",";
    s += cols[i];
  }
  return s + "}";
}

std::vector<std::string> Sorted(std::vector<std::string> cols) {
  std::sort(cols.begin(), cols.end());
  return cols;
}

/// `a` subset of `b`, both sorted.
bool IsSubset(const std::vector<std::string>& a,
              const std::vector<std::string>& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

bool SpecsEqual(const PartitionSpec& a, const PartitionSpec& b) {
  if (a.kind != b.kind) return false;
  if (a.kind == PartitionSpec::Kind::kKeys) return a.keys == b.keys;
  return a.span_width == b.span_width && a.overlap == b.overlap;
}

const char* TypeName(ValueType t) {
  switch (t) {
    case ValueType::kInt64: return "int64";
    case ValueType::kDouble: return "double";
    case ValueType::kString: return "string";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// "schema": arity, schema resolution, column references, types, callbacks.
// ---------------------------------------------------------------------------

class SchemaChecker {
 public:
  AnalysisReport Run(const PlanNodePtr& root) {
    if (root == nullptr) {
      Diagnostic d;
      d.check = "schema";
      d.subject = "<plan>";
      d.message = "plan root is null";
      report_.diagnostics.push_back(std::move(d));
      return std::move(report_);
    }
    // Pass 1: arity / structure. If any node is malformed, schema resolution
    // below could dereference missing children, so bail out with just these.
    CheckArity(root);
    if (report_.HasErrors()) return std::move(report_);
    // Pass 2: per-node schema rules, post-order-ish via CollectNodes.
    CheckNodes(root);
    return std::move(report_);
  }

 private:
  void Error(const PlanNode* node, std::string message) {
    report_.diagnostics.push_back(
        Make(Severity::kError, node, "schema", std::move(message)));
  }
  void Warn(const PlanNode* node, std::string message) {
    report_.diagnostics.push_back(
        Make(Severity::kWarning, node, "schema", std::move(message)));
  }

  static size_t ExpectedChildren(OpKind kind) {
    switch (kind) {
      case OpKind::kInput:
      case OpKind::kSubplanInput:
        return 0;
      case OpKind::kUnion:
      case OpKind::kTemporalJoin:
      case OpKind::kAntiSemiJoin:
        return 2;
      default:
        return 1;
    }
  }

  void CheckArity(const PlanNodePtr& root) {
    for (const PlanNode* node : temporal::CollectNodes(root)) {
      const size_t expected = ExpectedChildren(node->kind);
      if (node->children.size() != expected) {
        std::ostringstream os;
        os << "expects " << expected << " input(s) but has "
           << node->children.size();
        Error(node, os.str());
        continue;
      }
      for (const PlanNodePtr& child : node->children) {
        if (child == nullptr) Error(node, "has a null child");
      }
      if (node->kind == OpKind::kGroupApply) {
        if (node->subplan == nullptr) {
          Error(node, "has no sub-plan");
        } else {
          size_t leaves = 0;
          for (const PlanNode* sub : temporal::CollectNodes(node->subplan)) {
            if (sub->kind == OpKind::kSubplanInput) ++leaves;
          }
          if (leaves != 1) {
            std::ostringstream os;
            os << "sub-plan must have exactly one SubplanInput leaf, found "
               << leaves;
            Error(node, os.str());
          }
        }
      }
    }
  }

  void CheckNodes(const PlanNodePtr& root) {
    for (const PlanNode* node : temporal::CollectNodes(root)) {
      // Report schema-resolution failures only where they originate: the
      // node's own schema fails while every child's resolves.
      auto schema = node->OutputSchema();
      if (!schema.ok()) {
        bool children_ok = true;
        for (const PlanNodePtr& child : node->children) {
          if (!child->OutputSchema().ok()) children_ok = false;
        }
        if (node->kind == OpKind::kGroupApply && node->subplan != nullptr &&
            !node->subplan->OutputSchema().ok()) {
          children_ok = false;
        }
        if (children_ok) {
          Error(node, "output schema does not resolve: " +
                          schema.status().ToString());
        }
        continue;
      }
      CheckDeclaredSchema(node, schema.ValueOrDie());
      CheckOperatorRules(node);
    }
  }

  /// Duplicate and reserved column names in a node's output schema. Only
  /// schema-*introducing* kinds are checked — pass-through kinds would just
  /// repeat their child's finding.
  void CheckDeclaredSchema(const PlanNode* node, const Schema& schema) {
    switch (node->kind) {
      case OpKind::kInput:
      case OpKind::kSubplanInput:
      case OpKind::kProject:
      case OpKind::kUdo:
      case OpKind::kTemporalJoin:
        break;
      default:
        return;
    }
    std::set<std::string> seen;
    for (const Schema::Field& f : schema.fields()) {
      if (!seen.insert(f.name).second) {
        Error(node, "output schema has duplicate column \"" + f.name + "\"");
      }
      if (f.name == temporal::kTimeColumn || f.name == temporal::kREndColumn) {
        Warn(node, "output column \"" + f.name +
                       "\" shadows the reserved row-layout column used at "
                       "stage boundaries");
      }
    }
  }

  void CheckOperatorRules(const PlanNode* node) {
    switch (node->kind) {
      case OpKind::kSelect:
        if (!node->pred) Error(node, "has no predicate");
        break;
      case OpKind::kProject:
        if (!node->project_fn) Error(node, "has no projection function");
        break;
      case OpKind::kAggregate:
        CheckAggregate(node);
        break;
      case OpKind::kTemporalJoin:
      case OpKind::kAntiSemiJoin:
        CheckJoinKeys(node);
        break;
      case OpKind::kUdo:
        if (node->udo_window <= 0) {
          Error(node, "window must be positive");
        }
        if (node->udo_hop <= 0) {
          Error(node, "hop must be positive");
        }
        if (!node->udo_fn) Error(node, "has no UDO function");
        break;
      case OpKind::kExchange:
        CheckExchangeSpec(node);
        break;
      default:
        break;
    }
  }

  /// AggregateSpec::ComputeSchema does not look up value_column (the value
  /// index is resolved later, at executor build time) — catch dangling or
  /// non-numeric references here.
  void CheckAggregate(const PlanNode* node) {
    if (node->agg.kind == temporal::AggKind::kCount) return;
    auto child = node->children[0]->OutputSchema();
    if (!child.ok()) return;
    const Schema& in = child.ValueOrDie();
    auto idx = in.IndexOf(node->agg.value_column);
    if (!idx.ok()) {
      Error(node, "aggregates column \"" + node->agg.value_column +
                      "\" which does not exist in input schema " +
                      in.ToString());
      return;
    }
    const ValueType type = in.field(static_cast<size_t>(idx.ValueOrDie())).type;
    if (type == ValueType::kString) {
      Error(node, "aggregates string column \"" + node->agg.value_column +
                      "\"; aggregates require a numeric column");
    }
  }

  /// ComputeSchema only resolves key names; key-count and pairwise-type
  /// mismatches would surface at runtime as silently-empty joins (Value
  /// equality across types is always false).
  void CheckJoinKeys(const PlanNode* node) {
    if (node->left_keys.size() != node->right_keys.size()) {
      std::ostringstream os;
      os << "has " << node->left_keys.size() << " left key(s) but "
         << node->right_keys.size() << " right key(s)";
      Error(node, os.str());
      return;
    }
    auto ls = node->children[0]->OutputSchema();
    auto rs = node->children[1]->OutputSchema();
    if (!ls.ok() || !rs.ok()) return;
    for (size_t i = 0; i < node->left_keys.size(); ++i) {
      auto li = ls.ValueOrDie().IndexOf(node->left_keys[i]);
      auto ri = rs.ValueOrDie().IndexOf(node->right_keys[i]);
      if (!li.ok() || !ri.ok()) continue;  // ComputeSchema reported this
      const ValueType lt =
          ls.ValueOrDie().field(static_cast<size_t>(li.ValueOrDie())).type;
      const ValueType rt =
          rs.ValueOrDie().field(static_cast<size_t>(ri.ValueOrDie())).type;
      if (lt != rt) {
        Error(node, "joins " + node->left_keys[i] + " (" + TypeName(lt) +
                        ") with " + node->right_keys[i] + " (" + TypeName(rt) +
                        "); mismatched key types never compare equal");
      }
    }
  }

  void CheckExchangeSpec(const PlanNode* node) {
    const PartitionSpec& spec = node->exchange;
    if (spec.kind == PartitionSpec::Kind::kKeys) {
      auto child = node->children[0]->OutputSchema();
      if (!child.ok()) return;
      for (const std::string& key : spec.keys) {
        if (!child.ValueOrDie().HasField(key)) {
          Error(node, "partitions on column \"" + key +
                          "\" which does not exist in input schema " +
                          child.ValueOrDie().ToString());
        }
      }
    } else {
      if (spec.span_width <= 0) {
        Error(node, "temporal partitioning span width must be positive");
      }
      if (spec.overlap < 0) {
        Error(node, "temporal partitioning overlap must be non-negative");
      }
    }
  }

  AnalysisReport report_;
};

// ---------------------------------------------------------------------------
// "exchange-placement" / "temporal-span".
// ---------------------------------------------------------------------------

/// Top-down DFS. Each exchange's child starts a new *region* (the data that
/// will live inside one map-reduce fragment after cutting); within a region we
/// carry the grouping-key constraints imposed by the stateful operators above,
/// the max window applied on the path, and whether a global (ungrouped)
/// operator sits above. At each exchange the spec is validated against that
/// context, mirroring how FragmentCutter + CompileFragment will actually
/// partition the data.
class ExchangeChecker {
 public:
  AnalysisReport Run(const PlanNodePtr& root) {
    if (root == nullptr || !root->OutputSchema().ok()) {
      return std::move(report_);  // schema pass owns these findings
    }
    if (root->kind == OpKind::kExchange) {
      report_.diagnostics.push_back(
          Make(Severity::kError, root.get(), "exchange-placement",
               "plan root is an exchange; the final fragment's output is "
               "consumed as-is and must not be repartitioned"));
    }
    Ctx ctx;
    ctx.region = 0;
    Visit(root.get(), ctx);
    return std::move(report_);
  }

 private:
  /// A grouping-key requirement imposed by `source`, expressed in the column
  /// names of the stream currently being visited (sorted).
  struct Constraint {
    const PlanNode* source;
    std::vector<std::string> cols;
  };

  struct Ctx {
    int region = 0;
    std::vector<Constraint> constraints;
    /// Nearest ungrouped Aggregate/UDO above (treats the whole stream as one
    /// group, so any keyed split below it changes results).
    const PlanNode* global_op = nullptr;
    /// Largest window applied between here and the region top, and the node
    /// applying it. Matches PlanNode::MaxWindow's max-not-sum convention.
    Timestamp max_window = 0;
    const PlanNode* window_source = nullptr;
  };

  void Error(const PlanNode* node, const std::string& check,
             std::string message) {
    report_.diagnostics.push_back(
        Make(Severity::kError, node, check, std::move(message)));
  }

  void NoteWindow(Ctx* ctx, const PlanNode* source, Timestamp window) {
    if (window > ctx->max_window) {
      ctx->max_window = window;
      ctx->window_source = source;
    }
  }

  /// Keep only constraints whose columns all survive into child `idx` of
  /// `node`, translating across join renames. Same conservative name
  /// provenance the optimizer uses: a column that keeps its name is assumed to
  /// keep its values.
  std::vector<Constraint> ConstraintsForChild(
      const PlanNode* node, size_t idx, const std::vector<Constraint>& in) {
    std::vector<Constraint> out;
    auto child_schema = node->children[idx]->OutputSchema();
    if (!child_schema.ok()) return out;
    const Schema& schema = child_schema.ValueOrDie();
    const bool translate_join_keys =
        (node->kind == OpKind::kTemporalJoin ||
         node->kind == OpKind::kAntiSemiJoin) &&
        idx == 1;
    for (Constraint c : in) {
      if (translate_join_keys) {
        // Right-side columns only relate to parent names through the
        // equi-join: left_keys[i] == right_keys[i]. Untranslatable columns
        // are dropped (weakening the constraint is conservative: it can only
        // make the check more permissive, never reject a valid plan).
        std::vector<std::string> translated;
        for (const std::string& col : c.cols) {
          for (size_t k = 0; k < node->left_keys.size(); ++k) {
            if (node->left_keys[k] == col) {
              translated.push_back(node->right_keys[k]);
              break;
            }
          }
        }
        if (translated.empty()) continue;
        c.cols = Sorted(std::move(translated));
      }
      bool present = true;
      for (const std::string& col : c.cols) {
        if (!schema.HasField(col)) {
          present = false;
          break;
        }
      }
      if (present) out.push_back(std::move(c));
    }
    return out;
  }

  void Descend(const PlanNode* node, size_t idx, Ctx ctx) {
    ctx.constraints = ConstraintsForChild(node, idx, ctx.constraints);
    Visit(node->children[idx].get(), ctx);
  }

  void Visit(const PlanNode* node, Ctx ctx) {
    if (++visits_ > kMaxVisits) {
      if (!capped_) {
        capped_ = true;
        report_.diagnostics.push_back(Make(
            Severity::kWarning, node, "exchange-placement",
            "analysis visit budget exhausted; remaining paths not checked"));
      }
      return;
    }
    switch (node->kind) {
      case OpKind::kExchange:
        CheckExchange(node, ctx);
        return;
      case OpKind::kGroupApply: {
        if (node->subplan != nullptr) {
          NoteWindow(&ctx, node, node->subplan->MaxWindow());
          FlagSubplanExchanges(node);
        }
        Ctx child = ctx;
        child.constraints =
            ConstraintsForChild(node, 0, ctx.constraints);
        child.constraints.push_back(
            Constraint{node, Sorted(node->group_keys)});
        Visit(node->children[0].get(), child);
        return;
      }
      case OpKind::kTemporalJoin:
      case OpKind::kAntiSemiJoin: {
        Ctx left = ctx;
        left.constraints = ConstraintsForChild(node, 0, ctx.constraints);
        left.constraints.push_back(Constraint{node, Sorted(node->left_keys)});
        Visit(node->children[0].get(), left);
        Ctx right = ctx;
        right.constraints = ConstraintsForChild(node, 1, ctx.constraints);
        right.constraints.push_back(
            Constraint{node, Sorted(node->right_keys)});
        Visit(node->children[1].get(), right);
        return;
      }
      case OpKind::kAggregate:
        ctx.global_op = node;
        Descend(node, 0, std::move(ctx));
        return;
      case OpKind::kUdo:
        ctx.global_op = node;
        NoteWindow(&ctx, node, node->udo_window + node->udo_hop);
        Descend(node, 0, std::move(ctx));
        return;
      case OpKind::kAlterLifetime:
        NoteWindow(&ctx, node, node->alter.MaxWindow());
        Descend(node, 0, std::move(ctx));
        return;
      case OpKind::kUnion:
        Descend(node, 0, ctx);
        Descend(node, 1, std::move(ctx));
        return;
      case OpKind::kInput:
      case OpKind::kSubplanInput:
        return;
      default:  // kSelect, kProject, kConformanceCheck: transparent
        Descend(node, 0, std::move(ctx));
        return;
    }
  }

  void CheckExchange(const PlanNode* node, const Ctx& ctx) {
    // Footnote 1: every exchange feeding one fragment must carry the same
    // spec, or the cutter cannot pick a single partitioning for the stage.
    auto [it, inserted] = region_spec_.try_emplace(ctx.region, node);
    if (!inserted && !SpecsEqual(it->second->exchange, node->exchange)) {
      Error(node, "exchange-placement",
            "conflicts with " + DescribeNode(it->second) +
                " feeding the same fragment; all exchanges into one fragment "
                "must share a partitioning spec (paper footnote 1)");
    }
    const PartitionSpec& spec = node->exchange;
    if (spec.kind == PartitionSpec::Kind::kKeys && !spec.keys.empty()) {
      if (ctx.global_op != nullptr) {
        Error(node, "exchange-placement",
              "partitions by " + ColumnList(spec.keys) + " beneath global " +
                  DescribeNode(ctx.global_op) +
                  ", which aggregates the whole stream; use a singleton or "
                  "temporal partitioning instead");
      } else {
        const std::vector<std::string> spec_cols = Sorted(spec.keys);
        for (const Constraint& c : ctx.constraints) {
          if (!IsSubset(spec_cols, c.cols)) {
            Error(node, "exchange-placement",
                  "keys " + ColumnList(spec.keys) +
                      " are not a subset of the grouping key " +
                      ColumnList(c.cols) + " required by downstream " +
                      DescribeNode(c.source) +
                      " (paper §III-A step 2: a partition must contain "
                      "every event of each group it touches)");
          }
        }
      }
    } else if (spec.kind == PartitionSpec::Kind::kTemporal) {
      if (ctx.max_window > spec.overlap) {
        std::ostringstream os;
        os << "overlap " << spec.overlap << " is smaller than the window "
           << ctx.max_window << " applied by downstream "
           << DescribeNode(ctx.window_source)
           << "; partition boundaries would lose events (paper §III-B "
              "requires overlap >= max window)";
        Error(node, "temporal-span", os.str());
      }
    }
    // The exchange's child begins a new region. Shared children (multicast
    // into several exchanges) keep one region id so footnote-1 conflicts on
    // the *downstream* fragment are caught via region_spec_ above.
    const PlanNode* child = node->children[0].get();
    auto [rit, fresh] = child_region_.try_emplace(child, next_region_);
    if (fresh) ++next_region_;
    Ctx below;
    below.region = rit->second;
    Visit(child, below);
  }

  /// FragmentCutter never descends into group sub-plans, so an exchange there
  /// would silently execute as a passthrough instead of a shuffle.
  void FlagSubplanExchanges(const PlanNode* group) {
    for (const PlanNode* sub : temporal::CollectNodes(group->subplan)) {
      if (sub->kind == OpKind::kExchange &&
          flagged_subplan_nodes_.insert(sub).second) {
        Error(sub, "exchange-placement",
              "exchange inside a GroupApply sub-plan; fragment extraction "
              "does not cut sub-plans, so this shuffle would never happen");
      }
    }
  }

  static constexpr size_t kMaxVisits = 200000;

  AnalysisReport report_;
  std::unordered_map<int, const PlanNode*> region_spec_;
  std::unordered_map<const PlanNode*, int> child_region_;
  std::set<const PlanNode*> flagged_subplan_nodes_;
  int next_region_ = 1;
  size_t visits_ = 0;
  bool capped_ = false;
};

// ---------------------------------------------------------------------------
// "determinism".
// ---------------------------------------------------------------------------

/// True if the exchange-free subtree under `node` contains an operator that
/// merges streams (Union, joins, GroupApply's per-group reassembly). Stops at
/// exchanges: a shuffle re-sorts rows into the canonical order, so ordering
/// below it cannot leak through.
bool HasMergeBelow(const PlanNode* node, const PlanNode** merge) {
  switch (node->kind) {
    case OpKind::kUnion:
    case OpKind::kTemporalJoin:
    case OpKind::kAntiSemiJoin:
    case OpKind::kGroupApply:
      *merge = node;
      return true;
    case OpKind::kExchange:
    case OpKind::kInput:
    case OpKind::kSubplanInput:
      return false;
    default:
      for (const PlanNodePtr& child : node->children) {
        if (child != nullptr && HasMergeBelow(child.get(), merge)) return true;
      }
      return false;
  }
}

}  // namespace

AnalysisReport CheckPlanSchemas(const PlanNodePtr& root) {
  return SchemaChecker().Run(root);
}

AnalysisReport CheckExchangePlacement(const PlanNodePtr& root) {
  return ExchangeChecker().Run(root);
}

AnalysisReport CheckSplitExchange(const PlanNodePtr& root) {
  AnalysisReport report;
  if (root == nullptr) return report;
  for (const PlanNode* node : temporal::CollectNodes(root)) {
    if (node->kind != OpKind::kExchange || !node->exchange.adaptive_split) {
      continue;
    }
    if (node->exchange.kind == PartitionSpec::Kind::kTemporal) {
      report.diagnostics.push_back(
          Make(Severity::kError, node, "split-exchange",
               "adaptive_split on a temporal exchange: overlapping spans "
               "replicate boundary rows, so hot-key sub-partitioning has no "
               "lossless coalesce; only keyed exchanges may opt in"));
    } else if (node->exchange.keys.empty()) {
      report.diagnostics.push_back(
          Make(Severity::kError, node, "split-exchange",
               "adaptive_split on an exchange with no keys: a singleton "
               "exchange has one partition and no key hash to split on"));
    }
  }
  return report;
}

AnalysisReport CheckDeterminism(const PlanNodePtr& root) {
  AnalysisReport report;
  if (root == nullptr) return report;
  for (const PlanNode* node : temporal::CollectNodes(root)) {
    if (node->kind != OpKind::kUdo || node->udo_order_insensitive) continue;
    if (node->children.size() != 1 || node->children[0] == nullptr) continue;
    const PlanNode* merge = nullptr;
    if (HasMergeBelow(node->children[0].get(), &merge)) {
      report.diagnostics.push_back(Make(
          Severity::kWarning, node, "determinism",
          "consumes the merged output of " + DescribeNode(merge) +
              " but is not declared order-insensitive; same-timestamp merge "
              "order is engine-defined, so results may differ across runs "
              "(declare the UDO order-insensitive or sort inside it)"));
    }
  }
  return report;
}

}  // namespace timr::analysis
