#include "analysis/fingerprint.h"

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/hash.h"

namespace timr::analysis {

using temporal::OpKind;
using temporal::PlanNode;
using temporal::PlanNodePtr;

namespace {

uint64_t HashString(const std::string& s) {
  return HashBytes(s.data(), s.size());
}

uint64_t HashSchema(const Schema& schema) {
  uint64_t h = 0x5c6d2e3a917bd4f1ULL;
  for (const auto& f : schema.fields()) {
    h = HashCombine(h, HashString(f.name));
    h = HashCombine(h, static_cast<uint64_t>(f.type));
  }
  return h;
}

uint64_t HashKeys(const std::vector<std::string>& keys) {
  uint64_t h = 0x7ae2d1c94b83f650ULL;
  for (const auto& k : keys) h = HashCombine(h, HashString(k));
  return h;
}

/// Canonical order for select conjuncts: conjunction commutes, so
/// `a == 1 && b == 2` and `b == 2 && a == 1` must fingerprint equal.
std::vector<const temporal::ColumnCompare*> CanonicalConjuncts(
    const temporal::SelectSpec& spec) {
  std::vector<const temporal::ColumnCompare*> out;
  out.reserve(spec.conjuncts.size());
  for (const auto& c : spec.conjuncts) out.push_back(&c);
  std::sort(out.begin(), out.end(),
            [](const temporal::ColumnCompare* a,
               const temporal::ColumnCompare* b) {
              if (a->column != b->column) return a->column < b->column;
              if (a->op != b->op) return a->op < b->op;
              return a->literal < b->literal;
            });
  return out;
}

uint64_t HashSelectSpec(const temporal::SelectSpec& spec) {
  uint64_t h = 0x93b1a6c7250df84eULL;
  for (const auto* c : CanonicalConjuncts(spec)) {
    h = HashCombine(h, static_cast<uint64_t>(c->column));
    h = HashCombine(h, static_cast<uint64_t>(c->op));
    h = HashCombine(h, c->literal.Hash());
  }
  return h;
}

uint64_t HashProjectSpec(const temporal::ProjectSpec& spec) {
  // Output-column order defines the schema: order-significant, in order.
  uint64_t h = 0x1f4c8ad06be29375ULL;
  for (const auto& e : spec.exprs) {
    h = HashCombine(h, static_cast<uint64_t>(e.kind));
    h = HashCombine(h, HashString(e.name));
    h = HashCombine(h, static_cast<uint64_t>(e.column));
    h = HashCombine(h, e.literal.Hash());
    h = HashCombine(h, static_cast<uint64_t>(e.op));
    h = HashCombine(h, static_cast<uint64_t>(e.rhs_column));
  }
  return h;
}

bool SameConjuncts(const temporal::SelectSpec& a,
                   const temporal::SelectSpec& b) {
  if (a.conjuncts.size() != b.conjuncts.size()) return false;
  const auto ca = CanonicalConjuncts(a);
  const auto cb = CanonicalConjuncts(b);
  for (size_t i = 0; i < ca.size(); ++i) {
    if (ca[i]->column != cb[i]->column || ca[i]->op != cb[i]->op ||
        !(ca[i]->literal == cb[i]->literal)) {
      return false;
    }
  }
  return true;
}

bool SameProjectSpec(const temporal::ProjectSpec& a,
                     const temporal::ProjectSpec& b) {
  if (a.exprs.size() != b.exprs.size()) return false;
  for (size_t i = 0; i < a.exprs.size(); ++i) {
    const auto& x = a.exprs[i];
    const auto& y = b.exprs[i];
    if (x.kind != y.kind || x.name != y.name || x.column != y.column ||
        !(x.literal == y.literal) || x.op != y.op ||
        x.rhs_column != y.rhs_column) {
      return false;
    }
  }
  return true;
}

/// Whether this node's own parameters include an opaque closure the
/// canonicalizer cannot look into.
bool HasOpaqueParams(const PlanNode* n) {
  switch (n->kind) {
    case OpKind::kSelect:
      return !n->select_spec.has_value();
    case OpKind::kProject:
      return !n->project_spec.has_value();
    case OpKind::kTemporalJoin:
      return static_cast<bool>(n->join_pred) ||
             static_cast<bool>(n->join_project);
    case OpKind::kUdo:
      return true;
    default:
      return false;
  }
}

/// Hash of the node's normalized own parameters (children excluded).
uint64_t HashParams(const PlanNode* n) {
  uint64_t h = HashMix(static_cast<uint64_t>(n->kind) + 0x243f6a8885a308d3ULL);
  switch (n->kind) {
    case OpKind::kInput:
      h = HashCombine(h, HashString(n->name));
      h = HashCombine(h, HashSchema(n->input_schema));
      break;
    case OpKind::kSubplanInput:
      h = HashCombine(h, HashSchema(n->input_schema));
      break;
    case OpKind::kSelect:
      if (n->select_spec.has_value()) {
        h = HashCombine(h, HashSelectSpec(*n->select_spec));
      }
      break;
    case OpKind::kProject:
      if (n->project_spec.has_value()) {
        h = HashCombine(h, HashProjectSpec(*n->project_spec));
      }
      h = HashCombine(h, HashSchema(n->project_schema));
      break;
    case OpKind::kAlterLifetime:
      h = HashCombine(h, static_cast<uint64_t>(n->alter.mode));
      h = HashCombine(h, static_cast<uint64_t>(n->alter.shift));
      h = HashCombine(h, static_cast<uint64_t>(n->alter.window));
      h = HashCombine(h, static_cast<uint64_t>(n->alter.hop));
      break;
    case OpKind::kAggregate:
      h = HashCombine(h, static_cast<uint64_t>(n->agg.kind));
      h = HashCombine(h, HashString(n->agg.value_column));
      h = HashCombine(h, HashString(n->agg.output_name));
      break;
    case OpKind::kGroupApply:
      h = HashCombine(h, HashKeys(n->group_keys));
      break;
    case OpKind::kTemporalJoin:
    case OpKind::kAntiSemiJoin:
      h = HashCombine(h, HashKeys(n->left_keys));
      h = HashCombine(h, HashKeys(n->right_keys));
      break;
    case OpKind::kUdo:
      h = HashCombine(h, static_cast<uint64_t>(n->udo_window));
      h = HashCombine(h, static_cast<uint64_t>(n->udo_hop));
      h = HashCombine(h, HashSchema(n->udo_schema));
      h = HashCombine(h, n->udo_order_insensitive ? 1u : 0u);
      break;
    case OpKind::kExchange:
      h = HashCombine(h, static_cast<uint64_t>(n->exchange.kind));
      h = HashCombine(h, HashKeys(n->exchange.keys));
      h = HashCombine(h, static_cast<uint64_t>(n->exchange.span_width));
      h = HashCombine(h, static_cast<uint64_t>(n->exchange.overlap));
      break;
    case OpKind::kConformanceCheck:
      h = HashCombine(h, HashString(n->name));
      break;
    case OpKind::kUnion:
      break;
  }
  return h;
}

/// Normalized comparison of own parameters, mirroring HashParams exactly.
/// Only called when neither node is opaque.
bool SameParams(const PlanNode* a, const PlanNode* b) {
  if (a->kind != b->kind) return false;
  switch (a->kind) {
    case OpKind::kInput:
      return a->name == b->name && a->input_schema == b->input_schema;
    case OpKind::kSubplanInput:
      return a->input_schema == b->input_schema;
    case OpKind::kSelect:
      return SameConjuncts(*a->select_spec, *b->select_spec);
    case OpKind::kProject:
      return SameProjectSpec(*a->project_spec, *b->project_spec) &&
             a->project_schema == b->project_schema;
    case OpKind::kAlterLifetime:
      return a->alter.mode == b->alter.mode && a->alter.shift == b->alter.shift &&
             a->alter.window == b->alter.window && a->alter.hop == b->alter.hop;
    case OpKind::kAggregate:
      return a->agg.kind == b->agg.kind &&
             a->agg.value_column == b->agg.value_column &&
             a->agg.output_name == b->agg.output_name;
    case OpKind::kGroupApply:
      return a->group_keys == b->group_keys;
    case OpKind::kTemporalJoin:
    case OpKind::kAntiSemiJoin:
      return a->left_keys == b->left_keys && a->right_keys == b->right_keys;
    case OpKind::kUdo:
      return false;  // opaque; unreachable via the purity gate
    case OpKind::kExchange:
      return a->exchange.kind == b->exchange.kind &&
             a->exchange.keys == b->exchange.keys &&
             a->exchange.span_width == b->exchange.span_width &&
             a->exchange.overlap == b->exchange.overlap;
    case OpKind::kConformanceCheck:
      return a->name == b->name;
    case OpKind::kUnion:
      return true;
  }
  return false;
}

class Fingerprinter {
 public:
  FingerprintMap Run(const PlanNode* root) {
    Compute(root);
    return std::move(map_);
  }

 private:
  const Fingerprint& Compute(const PlanNode* n) {
    auto it = map_.find(n);
    if (it != map_.end()) return it->second;
    Fingerprint fp;
    fp.hash = HashParams(n);
    fp.num_ops = 1;
    fp.pure = !HasOpaqueParams(n);
    for (const auto& c : n->children) {
      const Fingerprint& cf = Compute(c.get());
      fp.hash = HashCombine(fp.hash, cf.hash);
      fp.num_ops += cf.num_ops;
      fp.pure = fp.pure && cf.pure;
    }
    if (n->subplan) {
      const Fingerprint& sf = Compute(n->subplan.get());
      fp.hash = HashCombine(fp.hash, HashMix(sf.hash ^ 0x452821e638d01377ULL));
      fp.num_ops += sf.num_ops;
      fp.pure = fp.pure && sf.pure;
    }
    if (!fp.pure) {
      // Identity salt: an opaque sub-DAG equals only itself, so a shared
      // node still matches across its parents while two independently built
      // closures never spuriously merge.
      fp.hash = HashCombine(fp.hash, reinterpret_cast<uintptr_t>(n));
    }
    return map_.emplace(n, fp).first->second;
  }

  FingerprintMap map_;
};

}  // namespace

FingerprintMap ComputeFingerprints(const PlanNodePtr& root) {
  return Fingerprinter().Run(root.get());
}

bool StructurallyEquivalent(const PlanNode* a, const PlanNode* b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  if (a->kind != b->kind) return false;
  // Opaque closures are equivalent only by identity (handled above).
  if (HasOpaqueParams(a) || HasOpaqueParams(b)) return false;
  if (!SameParams(a, b)) return false;
  if (a->children.size() != b->children.size()) return false;
  for (size_t i = 0; i < a->children.size(); ++i) {
    if (!StructurallyEquivalent(a->children[i].get(), b->children[i].get())) {
      return false;
    }
  }
  return StructurallyEquivalent(a->subplan.get(), b->subplan.get());
}

AnalysisReport CheckUdoConsistency(const PlanNodePtr& root) {
  AnalysisReport report;
  const FingerprintMap fps = ComputeFingerprints(root);
  std::vector<const PlanNode*> udos;
  for (PlanNode* n : temporal::CollectNodes(root)) {
    if (n->kind == OpKind::kUdo) udos.push_back(n);
  }
  for (size_t i = 0; i < udos.size(); ++i) {
    for (size_t j = i + 1; j < udos.size(); ++j) {
      const PlanNode* a = udos[i];
      const PlanNode* b = udos[j];
      if (a->udo_window != b->udo_window || a->udo_hop != b->udo_hop ||
          a->udo_schema != b->udo_schema ||
          a->udo_order_insensitive == b->udo_order_insensitive) {
        continue;
      }
      const Fingerprint& fa = fps.at(a->children[0].get());
      const Fingerprint& fb = fps.at(b->children[0].get());
      if (fa.hash != fb.hash ||
          !StructurallyEquivalent(a->children[0].get(), b->children[0].get())) {
        continue;
      }
      report.diagnostics.push_back(Diagnostic{
          Severity::kWarning, b, DescribeNode(b), "udo-consistency",
          "UDO over an input structurally equivalent to " + DescribeNode(a) +
              "'s disagrees on order-insensitivity (" +
              (a->udo_order_insensitive ? "insensitive" : "sensitive") +
              " there): one declaration is wrong, and the determinism audit "
              "is being selectively bypassed"});
    }
  }
  return report;
}

}  // namespace timr::analysis
