// Canonical subplan fingerprinting: a Merkle-style bottom-up hash of
// normalized operator specs, so structurally-equivalent sub-DAGs — within one
// plan or across independently built queries — get equal fingerprints.
//
// Normalization rules (the canonical form):
//  - SelectSpec conjuncts are order-canonicalized (conjunction is
//    commutative) by (column, op, literal);
//  - everything order-significant is hashed in order: Project output columns
//    (they define the schema), group keys (they define the key row layout),
//    join key lists (positional pairing), Union children (merge identity);
//  - schemas hash as (name, type) sequences; literals via Value::Hash (stable
//    across platforms and runs: splitmix64 / FNV-1a, common/hash.h).
//
// Opaque closures (Select predicates, Project/Join/UDO functions) cannot be
// compared, so a node holding one gets an *impure* fingerprint salted with
// the node's identity: it never equals another node's fingerprint (no false
// sharing), while a genuinely shared node — one sub-DAG reached from several
// parents — still matches itself. The impurity propagates to ancestors.
//
// Consumers: the cross-query CSE report (analysis/sharing.h, ROADMAP item
// 5(a)) and the UDO order-insensitivity consistency check below.

#pragma once

#include <cstdint>
#include <unordered_map>

#include "analysis/diagnostic.h"
#include "temporal/plan.h"

namespace timr::analysis {

struct Fingerprint {
  /// Merkle hash of the normalized sub-DAG rooted at the node.
  uint64_t hash = 0;
  /// Operator count of the sub-DAG's expansion, including group sub-plan
  /// bodies (a sub-DAG shared via multicast counts once per reference) — the
  /// "size" a sharing decision weighs.
  size_t num_ops = 0;
  /// False when the sub-DAG contains an opaque closure anywhere; impure
  /// fingerprints are identity-salted and never collide across nodes.
  bool pure = true;
};

using FingerprintMap =
    std::unordered_map<const temporal::PlanNode*, Fingerprint>;

/// Fingerprint every node reachable from `root` (entering group sub-plans).
FingerprintMap ComputeFingerprints(const temporal::PlanNodePtr& root);

/// Deep structural equivalence of two sub-DAGs under the same normalization
/// the fingerprint hashes: the collision guard behind every fingerprint-based
/// equality decision. Nodes with opaque closures are equivalent only to
/// themselves.
bool StructurallyEquivalent(const temporal::PlanNode* a,
                            const temporal::PlanNode* b);

/// Invariant "udo-consistency" (warnings only): two UDO nodes computing over
/// structurally-equivalent inputs with the same window/hop/schema must agree
/// on the order-insensitivity declaration — a disagreement means one of the
/// declarations is wrong, and the determinism audit (plan_checks.h) is being
/// selectively bypassed.
AnalysisReport CheckUdoConsistency(const temporal::PlanNodePtr& root);

}  // namespace timr::analysis
