#include "analysis/fragment_checks.h"

#include <map>
#include <set>
#include <sstream>

namespace timr::analysis {

using framework::Fragment;
using framework::FragmentedPlan;
using temporal::OpKind;
using temporal::PartitionSpec;
using temporal::PlanNode;
using temporal::Timestamp;

namespace {

void Report(AnalysisReport* report, Severity severity, std::string subject,
            std::string message) {
  Diagnostic d;
  d.severity = severity;
  d.subject = std::move(subject);
  d.check = "fragment-cut";
  d.message = std::move(message);
  report->diagnostics.push_back(std::move(d));
}

std::string FragmentSubject(const Fragment& frag) {
  return "fragment " + frag.name;
}

void CheckOneFragment(const FragmentedPlan& plan, size_t index,
                      const std::map<std::string, size_t>& producer_index,
                      AnalysisReport* report) {
  const Fragment& frag = plan.fragments[index];
  const std::string subject = FragmentSubject(frag);
  auto error = [&](std::string message) {
    Report(report, Severity::kError, subject, std::move(message));
  };

  if (frag.root == nullptr) {
    error("has no plan");
    return;
  }
  if (frag.inputs.size() != frag.input_is_external.size()) {
    std::ostringstream os;
    os << "declares " << frag.inputs.size() << " input(s) but "
       << frag.input_is_external.size() << " external-source flag(s)";
    error(os.str());
    return;
  }

  // The cut must be complete: a kExchange left inside a fragment body means a
  // shuffle boundary the cutter missed — it would execute as a passthrough.
  std::set<std::string> leaf_names;
  for (const PlanNode* node : temporal::CollectNodes(frag.root)) {
    if (node->kind == OpKind::kExchange) {
      error("contains " + DescribeNode(node) +
            "; fragment bodies must be exchange-free (cut boundaries "
            "coincide with exchanges)");
    } else if (node->kind == OpKind::kInput) {
      leaf_names.insert(node->name);
    }
  }

  // Declared inputs and plan leaves must agree exactly.
  std::set<std::string> declared;
  for (size_t i = 0; i < frag.inputs.size(); ++i) {
    const std::string& name = frag.inputs[i];
    if (!declared.insert(name).second) {
      error("declares input dataset \"" + name + "\" more than once");
      continue;
    }
    if (leaf_names.count(name) == 0) {
      error("declares input \"" + name + "\" that its plan never reads");
    }
    auto produced = producer_index.find(name);
    if (frag.input_is_external[i]) {
      if (produced != producer_index.end()) {
        error("marks input \"" + name +
              "\" as an external source, but it is fragment " +
              std::to_string(produced->second) + "'s output");
      }
    } else {
      if (produced == producer_index.end()) {
        error("reads intermediate dataset \"" + name +
              "\" that no fragment produces");
      } else if (produced->second >= index) {
        error("reads \"" + name + "\" produced by fragment " +
              std::to_string(produced->second) +
              ", which runs at or after it; the fragment DAG is cyclic or "
              "not in topological order");
      }
    }
  }
  for (const std::string& leaf : leaf_names) {
    if (declared.count(leaf) == 0) {
      error("reads dataset \"" + leaf + "\" not declared among its inputs");
    }
  }

  // Partitioning key sanity (paper §III-B for temporal keys).
  if (frag.key.kind == PartitionSpec::Kind::kTemporal) {
    if (frag.key.span_width <= 0) {
      error("temporal partitioning span width must be positive, got " +
            std::to_string(frag.key.span_width));
    }
    const Timestamp window = frag.root->MaxWindow();
    if (frag.key.overlap < window) {
      std::ostringstream os;
      os << "temporal partitioning overlap " << frag.key.overlap
         << " is smaller than the fragment's max window " << window
         << "; span boundaries would lose events (paper §III-B)";
      error(os.str());
    }
  }
}

}  // namespace

AnalysisReport CheckFragments(const FragmentedPlan& plan) {
  AnalysisReport report;
  if (plan.fragments.empty()) {
    Report(&report, Severity::kError, "<plan>", "has no fragments");
    return report;
  }

  // name -> index, and duplicate-name detection. Names double as dataset
  // names, so a duplicate would make one fragment overwrite another's output.
  std::map<std::string, size_t> producer_index;
  for (size_t i = 0; i < plan.fragments.size(); ++i) {
    const std::string& name = plan.fragments[i].name;
    if (!producer_index.emplace(name, i).second) {
      Report(&report, Severity::kError, FragmentSubject(plan.fragments[i]),
             "duplicates the name of fragment " +
                 std::to_string(producer_index.at(name)));
    }
  }
  if (plan.output_dataset != plan.fragments.back().name) {
    Report(&report, Severity::kError, "<plan>",
           "output dataset \"" + plan.output_dataset +
               "\" is not the final fragment's output (\"" +
               plan.fragments.back().name + "\")");
  }

  for (size_t i = 0; i < plan.fragments.size(); ++i) {
    CheckOneFragment(plan, i, producer_index, &report);
  }
  return report;
}

AnalysisReport CheckStage(const FragmentedPlan& plan, size_t fragment_index,
                          const mr::MRStage& stage) {
  return CheckStage(plan, fragment_index, stage, {plan.output_dataset});
}

AnalysisReport CheckStage(const FragmentedPlan& plan, size_t fragment_index,
                          const mr::MRStage& stage,
                          const std::set<std::string>& protected_outputs) {
  AnalysisReport report;
  const std::string subject = "stage " + stage.name;
  auto error = [&](std::string message) {
    Report(&report, Severity::kError, subject, std::move(message));
  };

  if (fragment_index >= plan.fragments.size()) {
    error("compiled for fragment index " + std::to_string(fragment_index) +
          " but the plan has only " + std::to_string(plan.fragments.size()) +
          " fragment(s)");
    return report;
  }
  const Fragment& frag = plan.fragments[fragment_index];

  if (stage.name != frag.name) {
    error("implements fragment \"" + frag.name + "\" under a different name");
  }
  if (stage.inputs != frag.inputs) {
    error("input datasets do not match fragment " + frag.name + "'s inputs");
  }
  if (stage.output != frag.name) {
    error("writes dataset \"" + stage.output + "\" instead of the fragment's "
          "output dataset \"" + frag.name + "\"");
  }
  if (stage.num_partitions < 0) {
    error("has negative partition count " +
          std::to_string(stage.num_partitions));
  }
  if (frag.key.kind == PartitionSpec::Kind::kTemporal &&
      stage.num_partitions < 1) {
    error("temporal partitioning requires an explicit span count, got " +
          std::to_string(stage.num_partitions));
  }
  if (!stage.partition_fn) error("has no partition function");
  if (!stage.reducer) error("has no reducer");

  // Consumable-inputs annotation = a last-use claim; verify it against the
  // whole fragment DAG, since a wrong claim releases rows a later stage needs.
  std::set<int> seen;
  for (int idx : stage.consumable_inputs) {
    if (idx < 0 || static_cast<size_t>(idx) >= stage.inputs.size()) {
      error("marks out-of-range input index " + std::to_string(idx) +
            " as consumable");
      continue;
    }
    if (!seen.insert(idx).second) {
      error("marks input index " + std::to_string(idx) +
            " as consumable more than once");
      continue;
    }
    const std::string& name = stage.inputs[static_cast<size_t>(idx)];
    if (static_cast<size_t>(idx) < frag.input_is_external.size() &&
        frag.input_is_external[static_cast<size_t>(idx)]) {
      error("marks external source \"" + name +
            "\" as consumable; only intermediate datasets may be released");
    }
    if (protected_outputs.count(name)) {
      error("marks the job output dataset \"" + name + "\" as consumable");
    }
    for (size_t later = fragment_index + 1; later < plan.fragments.size();
         ++later) {
      for (const std::string& later_input : plan.fragments[later].inputs) {
        if (later_input == name) {
          error("consumes \"" + name + "\" which fragment " +
                plan.fragments[later].name +
                " still reads; this is not its last use");
        }
      }
    }
  }
  return report;
}

AnalysisReport CheckCheckpointCut(const framework::FragmentedPlan& plan,
                                  const mr::CheckpointStore& store,
                                  size_t resume_from) {
  return CheckCheckpointCut(plan, store, resume_from, {plan.output_dataset});
}

AnalysisReport CheckCheckpointCut(
    const framework::FragmentedPlan& plan, const mr::CheckpointStore& store,
    size_t resume_from, const std::set<std::string>& protected_outputs) {
  AnalysisReport report;
  auto error = [&report](const std::string& subject, std::string msg) {
    report.diagnostics.push_back(Diagnostic{Severity::kError, nullptr, subject,
                                            "checkpoint-cut", std::move(msg)});
  };
  if (resume_from > store.num_stages()) {
    error("checkpoint",
          "resume index " + std::to_string(resume_from) + " exceeds the " +
              std::to_string(store.num_stages()) + " checkpointed stages");
    return report;
  }
  if (resume_from > plan.fragments.size()) {
    error("checkpoint",
          "resume index " + std::to_string(resume_from) +
              " exceeds the plan's " + std::to_string(plan.fragments.size()) +
              " fragments");
    return report;
  }
  for (size_t i = 0; i < resume_from; ++i) {
    // Stage boundaries must coincide with the plan's fragment cuts: a
    // checkpoint taken at a different cut would splice half-computed state
    // into this plan's dataflow.
    if (store.stage_name(i) != plan.fragments[i].name) {
      error("checkpoint stage " + std::to_string(i),
            "checkpointed stage \"" + store.stage_name(i) +
                "\" does not align with fragment \"" + plan.fragments[i].name +
                "\" at the same cut");
      continue;
    }
    for (const std::string& released : store.released(i)) {
      if (protected_outputs.count(released)) {
        error("checkpoint stage " + std::to_string(i),
              "releases the job output dataset \"" + released + "\"");
      }
      for (size_t later = resume_from; later < plan.fragments.size();
           ++later) {
        const framework::Fragment& frag = plan.fragments[later];
        for (const std::string& input : frag.inputs) {
          if (input == released) {
            error("checkpoint stage " + std::to_string(i),
                  "releases dataset \"" + released + "\" which fragment \"" +
                      frag.name +
                      "\" past the resume point still reads; resuming here "
                      "would replay into a missing dataset");
          }
        }
      }
    }
  }
  return report;
}

}  // namespace timr::analysis
