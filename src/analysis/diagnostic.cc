#include "analysis/diagnostic.h"

#include <algorithm>
#include <sstream>

namespace timr::analysis {

using temporal::OpKind;
using temporal::PlanNode;

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

std::string Diagnostic::ToString() const {
  std::string out = SeverityName(severity);
  out += " [";
  out += check;
  out += "] ";
  if (!subject.empty()) {
    out += subject;
    out += ": ";
  }
  out += message;
  return out;
}

bool AnalysisReport::HasErrors() const { return error_count() > 0; }

size_t AnalysisReport::error_count() const {
  return static_cast<size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [](const Diagnostic& d) {
                      return d.severity == Severity::kError;
                    }));
}

size_t AnalysisReport::warning_count() const {
  return diagnostics.size() - error_count();
}

std::vector<Diagnostic> AnalysisReport::ForCheck(
    const std::string& check) const {
  std::vector<Diagnostic> out;
  for (const Diagnostic& d : diagnostics) {
    if (d.check == check) out.push_back(d);
  }
  return out;
}

void AnalysisReport::Absorb(AnalysisReport other) {
  diagnostics.insert(diagnostics.end(),
                     std::make_move_iterator(other.diagnostics.begin()),
                     std::make_move_iterator(other.diagnostics.end()));
}

Status AnalysisReport::ToStatus() const {
  if (!HasErrors()) return Status::OK();
  std::ostringstream os;
  os << "plan verification failed (" << error_count() << " error(s)):";
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::kError) os << "\n  " << d.ToString();
  }
  return Status::Invalid(os.str());
}

std::string AnalysisReport::ToString() const {
  std::ostringstream os;
  os << error_count() << " error(s), " << warning_count() << " warning(s)";
  for (Severity severity : {Severity::kError, Severity::kWarning}) {
    for (const Diagnostic& d : diagnostics) {
      if (d.severity == severity) os << "\n  " << d.ToString();
    }
  }
  return os.str();
}

std::string DescribeNode(const PlanNode* node) {
  if (node == nullptr) return "<null>";
  std::string out = temporal::OpKindName(node->kind);
  auto key_list = [](const std::vector<std::string>& keys) {
    std::string s = "{";
    for (size_t i = 0; i < keys.size(); ++i) {
      if (i > 0) s += ",";
      s += keys[i];
    }
    return s + "}";
  };
  switch (node->kind) {
    case OpKind::kInput:
    case OpKind::kConformanceCheck:
      out += "(" + node->name + ")";
      break;
    case OpKind::kGroupApply:
      out += key_list(node->group_keys);
      break;
    case OpKind::kTemporalJoin:
    case OpKind::kAntiSemiJoin:
      out += key_list(node->left_keys) + "=" + key_list(node->right_keys);
      break;
    case OpKind::kAggregate:
      out += "(" + node->agg.output_name + ")";
      break;
    case OpKind::kExchange:
      out += " " + node->exchange.ToString();
      break;
    default:
      if (!node->name.empty()) out += "(" + node->name + ")";
      break;
  }
  return out;
}

}  // namespace timr::analysis
