// Cross-query common-subexpression detection over fingerprinted plans: the
// input ROADMAP item 5(a)'s multi-plan optimizer needs. Given a set of
// independently built queries (the BT pipeline's ~20 CQs), the report names
// every maximal sub-DAG that appears — structurally equivalent, per
// analysis/fingerprint.h — in more than one query, i.e. the fragments a
// shared-execution runtime (per Sharon's shared online aggregation) would
// compute once and fan out.
//
// Only *pure* fingerprints participate: a sub-DAG containing an opaque
// closure can never be proven equivalent to another, so it can never be
// shared. Every fingerprint group is re-verified with the deep structural
// comparator before it is reported (hash collisions must not fabricate
// sharing opportunities).

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "temporal/plan.h"

namespace timr::analysis {

/// \brief One shareable sub-DAG found in several queries.
struct SharedFragment {
  uint64_t hash = 0;       // canonical fingerprint (analysis/fingerprint.h)
  size_t num_ops = 0;      // operator count of the fragment's expansion
  std::string rendering;   // plan rendering of one representative occurrence
  /// Distinct queries containing the fragment, sorted; always >= 2.
  std::vector<std::string> queries;
  /// Total occurrence sites across all queries (>= queries.size(); a query
  /// may instantiate the same sub-DAG several times, e.g. the standard BT
  /// plan re-embedding bot elimination per downstream fragment).
  size_t occurrences = 0;
};

/// \brief The cross-query CSE report: multi-query maximal shared fragments,
/// largest first.
struct ShareReport {
  size_t num_queries = 0;  // how many queries the report was built over
  std::vector<SharedFragment> fragments;

  /// Human-readable rendering (one block per fragment).
  std::string ToString() const;
  /// Machine-readable JSON: {"queries": N, "shared_fragments": [...]} — the
  /// artifact timr_lint --share-report emits for CI.
  std::string ToJson() const;
};

/// Build the report over named queries. A fragment is *maximal* when it is
/// not wholly contained in a larger reported fragment with the same query
/// set (sub-fragments of a shared prefix add no new sharing opportunity).
/// Single-operator fragments (bare source leaves) are omitted: trivially
/// shared, never worth materializing.
ShareReport BuildShareReport(
    const std::vector<std::pair<std::string, temporal::PlanNodePtr>>& queries);

/// \brief One substitutable occurrence site of a shared fragment.
struct SharedOccurrence {
  size_t query_index = 0;                   // index into the input query list
  const temporal::PlanNode* node = nullptr; // the site to replace with a read
};

/// \brief A shared fragment the suite runtime will execute once.
///
/// Unlike the report's SharedFragment this carries the concrete plan nodes a
/// rewrite substitutes: `rep` is the sub-DAG to instantiate as the shared
/// plan, `occurrences` are every *top-context* site (not inside a GroupApply
/// sub-plan — a kInput read spliced inside a per-group instance would be
/// meaningless) proven structurally equivalent to it.
struct ExecutableFragment {
  uint64_t hash = 0;
  size_t num_ops = 0;
  const temporal::PlanNode* rep = nullptr;
  std::vector<SharedOccurrence> occurrences;  // sorted (query, preorder)
  std::vector<size_t> query_indices;          // distinct, sorted
};

/// The cost-ordered merge policy for shared-fragment execution (ROADMAP 5a).
/// Starting from the verified maximal candidates BuildShareReport is built
/// on, fragments are considered greedily by descending benefit
/// (num_ops x (occurrence_sites - 1)) and accepted while they still pay for
/// their materialization: a fragment is kept when at least two consumers
/// remain — occurrence sites not swallowed by an already-accepted enclosing
/// fragment, plus accepted fragments whose own shared plan will read it
/// (nested sharing: bot elimination inside the UBP prefix runs once and
/// feeds both the UBP shared plan and its other direct consumers).
/// Exchange-rooted candidates are skipped: replacing an exchange with a
/// dataset read would silently change the consumer fragment's partitioning.
///
/// The result is in execution order — num_ops ascending, so a nested
/// fragment's dataset exists before any enclosing shared plan runs — and is
/// deterministic for a given query list (ties broken on canonical hashes,
/// occurrence sites ordered by plan preorder).
std::vector<ExecutableFragment> SelectSharedFragments(
    const std::vector<std::pair<std::string, temporal::PlanNodePtr>>& queries);

}  // namespace timr::analysis
