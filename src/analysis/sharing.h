// Cross-query common-subexpression detection over fingerprinted plans: the
// input ROADMAP item 5(a)'s multi-plan optimizer needs. Given a set of
// independently built queries (the BT pipeline's ~20 CQs), the report names
// every maximal sub-DAG that appears — structurally equivalent, per
// analysis/fingerprint.h — in more than one query, i.e. the fragments a
// shared-execution runtime (per Sharon's shared online aggregation) would
// compute once and fan out.
//
// Only *pure* fingerprints participate: a sub-DAG containing an opaque
// closure can never be proven equivalent to another, so it can never be
// shared. Every fingerprint group is re-verified with the deep structural
// comparator before it is reported (hash collisions must not fabricate
// sharing opportunities).

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "temporal/plan.h"

namespace timr::analysis {

/// \brief One shareable sub-DAG found in several queries.
struct SharedFragment {
  uint64_t hash = 0;       // canonical fingerprint (analysis/fingerprint.h)
  size_t num_ops = 0;      // operator count of the fragment's expansion
  std::string rendering;   // plan rendering of one representative occurrence
  /// Distinct queries containing the fragment, sorted; always >= 2.
  std::vector<std::string> queries;
  /// Total occurrence sites across all queries (>= queries.size(); a query
  /// may instantiate the same sub-DAG several times, e.g. the standard BT
  /// plan re-embedding bot elimination per downstream fragment).
  size_t occurrences = 0;
};

/// \brief The cross-query CSE report: multi-query maximal shared fragments,
/// largest first.
struct ShareReport {
  std::vector<SharedFragment> fragments;

  /// Human-readable rendering (one block per fragment).
  std::string ToString() const;
  /// Machine-readable JSON: {"queries": N, "shared_fragments": [...]} — the
  /// artifact timr_lint --share-report emits for CI.
  std::string ToJson() const;
};

/// Build the report over named queries. A fragment is *maximal* when it is
/// not wholly contained in a larger reported fragment with the same query
/// set (sub-fragments of a shared prefix add no new sharing opportunity).
/// Single-operator fragments (bare source leaves) are omitted: trivially
/// shared, never worth materializing.
ShareReport BuildShareReport(
    const std::vector<std::pair<std::string, temporal::PlanNodePtr>>& queries);

}  // namespace timr::analysis
