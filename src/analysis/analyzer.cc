#include "analysis/analyzer.h"

#include <functional>
#include <set>
#include <unordered_map>

namespace timr::analysis {

using temporal::OpKind;
using temporal::PlanNode;
using temporal::PlanNodePtr;

AnalysisReport AnalyzePlan(const PlanNodePtr& root) {
  AnalysisReport report = CheckPlanSchemas(root);
  if (report.HasErrors()) return report;
  report.Absorb(CheckExchangePlacement(root));
  report.Absorb(CheckDeterminism(root));
  report.Absorb(CheckSplitExchange(root));
  return report;
}

Status VerifyPlanForExecution(const PlanNodePtr& root) {
  return AnalyzePlan(root).ToStatus();
}

PlanNodePtr InstrumentFragmentPlan(const std::string& fragment_name,
                                   const PlanNodePtr& root) {
  PlanNodePtr body = temporal::ClonePlan(root);

  auto make_check = [](std::string name, PlanNodePtr child) {
    auto check = std::make_shared<PlanNode>();
    check->kind = OpKind::kConformanceCheck;
    check->name = std::move(name);
    check->children.push_back(std::move(child));
    return check;
  };

  // Splice a checker above every kInput leaf by rewriting the parent's child
  // edge. Leaves are memoized so a multicast input keeps a single checker
  // (and the executor builds a single operator for it).
  std::unordered_map<const PlanNode*, PlanNodePtr> wrapped;
  std::set<const PlanNode*> visited;
  std::function<void(const PlanNodePtr&)> visit = [&](const PlanNodePtr& node) {
    if (!visited.insert(node.get()).second) return;
    for (PlanNodePtr& child : node->children) {
      if (child == nullptr) continue;
      if (child->kind == OpKind::kInput) {
        auto [it, fresh] = wrapped.try_emplace(child.get(), nullptr);
        if (fresh) {
          it->second = make_check(fragment_name + "/input:" + child->name,
                                  child);
        }
        child = it->second;
      } else {
        visit(child);
      }
    }
  };
  if (body->kind != OpKind::kInput) visit(body);
  return make_check(fragment_name + "/output", std::move(body));
}

}  // namespace timr::analysis
