#include "analysis/sharing.h"

#include <algorithm>
#include <cstdio>
#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "analysis/fingerprint.h"

namespace timr::analysis {

using temporal::PlanNode;
using temporal::PlanNodePtr;

namespace {

struct Occurrence {
  const PlanNode* node;
  size_t query;  // index into the input query list
};

/// One verified equivalence class: occurrences proven pairwise structurally
/// equivalent (via the representative), spanning >= 2 distinct queries.
struct Candidate {
  uint64_t hash = 0;
  const PlanNode* rep = nullptr;
  size_t num_ops = 0;
  std::vector<Occurrence> occurrences;
  std::set<size_t> queries;
};

/// All strict descendants of `root` (children + group sub-plans, excluding
/// `root` itself).
void CollectStrictDescendants(const PlanNode* root,
                              std::unordered_set<const PlanNode*>* out) {
  std::vector<const PlanNode*> stack;
  auto push_children = [&stack](const PlanNode* n) {
    for (const auto& c : n->children) stack.push_back(c.get());
    if (n->subplan) stack.push_back(n->subplan.get());
  };
  push_children(root);
  while (!stack.empty()) {
    const PlanNode* n = stack.back();
    stack.pop_back();
    if (!out->insert(n).second) continue;
    push_children(n);
  }
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string HexHash(uint64_t h) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

}  // namespace

ShareReport BuildShareReport(
    const std::vector<std::pair<std::string, PlanNodePtr>>& queries) {
  // 1. Fingerprint every query; bucket pure sub-DAGs by hash. Within one
  //    query a multicast-shared node is one plan node, hence one occurrence.
  std::unordered_map<uint64_t, std::vector<Occurrence>> buckets;
  std::unordered_map<const PlanNode*, size_t> num_ops;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const FingerprintMap fps = ComputeFingerprints(queries[qi].second);
    for (const auto& [node, fp] : fps) {
      if (!fp.pure) continue;
      buckets[fp.hash].push_back(Occurrence{node, qi});
      num_ops[node] = fp.num_ops;
    }
  }

  // 2. Split each bucket into verified equivalence classes: equal hashes are
  //    a hypothesis, StructurallyEquivalent is the proof (collisions must
  //    not fabricate sharing).
  std::vector<Candidate> candidates;
  for (auto& [hash, occs] : buckets) {
    std::vector<Candidate> classes;
    for (const Occurrence& occ : occs) {
      Candidate* home = nullptr;
      for (Candidate& c : classes) {
        if (StructurallyEquivalent(c.rep, occ.node)) {
          home = &c;
          break;
        }
      }
      if (home == nullptr) {
        classes.push_back(Candidate{hash, occ.node, num_ops[occ.node], {}, {}});
        home = &classes.back();
      }
      home->occurrences.push_back(occ);
      home->queries.insert(occ.query);
    }
    for (Candidate& c : classes) {
      // Single-op fragments (a bare Input or SubplanInput leaf) are trivially
      // shared and not worth materializing; keep the report signal-dense.
      if (c.queries.size() >= 2 && c.num_ops >= 2) {
        candidates.push_back(std::move(c));
      }
    }
  }

  // 3. Maximality: drop a candidate wholly contained — with the same query
  //    set — in a larger one; sub-fragments of a shared prefix add no new
  //    sharing opportunity. Candidates whose query sets differ both stay
  //    (the smaller one is shareable more widely).
  std::vector<std::unordered_set<const PlanNode*>> descendants(
      candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    for (const Occurrence& occ : candidates[i].occurrences) {
      CollectStrictDescendants(occ.node, &descendants[i]);
    }
  }
  std::vector<bool> suppressed(candidates.size(), false);
  for (size_t i = 0; i < candidates.size(); ++i) {
    for (size_t j = 0; j < candidates.size(); ++j) {
      if (i == j || candidates[i].queries != candidates[j].queries) continue;
      bool contained = true;
      for (const Occurrence& occ : candidates[i].occurrences) {
        if (descendants[j].count(occ.node) == 0) {
          contained = false;
          break;
        }
      }
      if (contained) {
        suppressed[i] = true;
        break;
      }
    }
  }

  ShareReport report;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (suppressed[i]) continue;
    const Candidate& c = candidates[i];
    SharedFragment frag;
    frag.hash = c.hash;
    frag.num_ops = c.num_ops;
    frag.rendering = c.rep->ToString();
    frag.occurrences = c.occurrences.size();
    for (size_t q : c.queries) frag.queries.push_back(queries[q].first);
    std::sort(frag.queries.begin(), frag.queries.end());
    report.fragments.push_back(std::move(frag));
  }
  std::sort(report.fragments.begin(), report.fragments.end(),
            [](const SharedFragment& a, const SharedFragment& b) {
              if (a.num_ops != b.num_ops) return a.num_ops > b.num_ops;
              if (a.queries.size() != b.queries.size()) {
                return a.queries.size() > b.queries.size();
              }
              return a.hash < b.hash;
            });
  return report;
}

std::string ShareReport::ToString() const {
  std::ostringstream os;
  if (fragments.empty()) {
    os << "no multi-query shared fragments\n";
    return os.str();
  }
  for (const SharedFragment& f : fragments) {
    os << "shared fragment " << HexHash(f.hash) << " (" << f.num_ops
       << " ops) in " << f.queries.size() << " queries, " << f.occurrences
       << " occurrences:\n  queries:";
    for (const auto& q : f.queries) os << " " << q;
    os << "\n";
    std::istringstream plan(f.rendering);
    std::string line;
    while (std::getline(plan, line)) os << "  | " << line << "\n";
  }
  return os.str();
}

std::string ShareReport::ToJson() const {
  std::ostringstream os;
  os << "{\"shared_fragments\":[";
  for (size_t i = 0; i < fragments.size(); ++i) {
    const SharedFragment& f = fragments[i];
    if (i > 0) os << ",";
    os << "{\"hash\":\"" << HexHash(f.hash) << "\",\"num_ops\":" << f.num_ops
       << ",\"occurrences\":" << f.occurrences << ",\"queries\":[";
    for (size_t q = 0; q < f.queries.size(); ++q) {
      if (q > 0) os << ",";
      os << "\"" << JsonEscape(f.queries[q]) << "\"";
    }
    os << "],\"plan\":\"" << JsonEscape(f.rendering) << "\"}";
  }
  os << "]}";
  return os.str();
}

}  // namespace timr::analysis
