#include "analysis/sharing.h"

#include <algorithm>
#include <cstdio>
#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "analysis/fingerprint.h"

namespace timr::analysis {

using temporal::PlanNode;
using temporal::PlanNodePtr;

namespace {

struct Occurrence {
  const PlanNode* node;
  size_t query;  // index into the input query list
};

/// One verified equivalence class: occurrences proven pairwise structurally
/// equivalent (via the representative), spanning >= 2 distinct queries.
struct Candidate {
  uint64_t hash = 0;
  const PlanNode* rep = nullptr;
  size_t num_ops = 0;
  std::vector<Occurrence> occurrences;
  std::set<size_t> queries;
};

/// All strict descendants of `root` (children + group sub-plans, excluding
/// `root` itself).
void CollectStrictDescendants(const PlanNode* root,
                              std::unordered_set<const PlanNode*>* out) {
  std::vector<const PlanNode*> stack;
  auto push_children = [&stack](const PlanNode* n) {
    for (const auto& c : n->children) stack.push_back(c.get());
    if (n->subplan) stack.push_back(n->subplan.get());
  };
  push_children(root);
  while (!stack.empty()) {
    const PlanNode* n = stack.back();
    stack.pop_back();
    if (!out->insert(n).second) continue;
    push_children(n);
  }
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string HexHash(uint64_t h) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

/// Steps 1-3 shared by BuildShareReport and SelectSharedFragments: verified
/// multi-query equivalence classes with same-query-set maximality applied.
/// Order is NOT deterministic (hash-bucket iteration); callers sort.
std::vector<Candidate> CollectMaximalCandidates(
    const std::vector<std::pair<std::string, PlanNodePtr>>& queries) {
  // 1. Fingerprint every query; bucket pure sub-DAGs by hash. Within one
  //    query a multicast-shared node is one plan node, hence one occurrence.
  std::unordered_map<uint64_t, std::vector<Occurrence>> buckets;
  std::unordered_map<const PlanNode*, size_t> num_ops;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const FingerprintMap fps = ComputeFingerprints(queries[qi].second);
    for (const auto& [node, fp] : fps) {
      if (!fp.pure) continue;
      buckets[fp.hash].push_back(Occurrence{node, qi});
      num_ops[node] = fp.num_ops;
    }
  }

  // 2. Split each bucket into verified equivalence classes: equal hashes are
  //    a hypothesis, StructurallyEquivalent is the proof (collisions must
  //    not fabricate sharing).
  std::vector<Candidate> candidates;
  for (auto& [hash, occs] : buckets) {
    std::vector<Candidate> classes;
    for (const Occurrence& occ : occs) {
      Candidate* home = nullptr;
      for (Candidate& c : classes) {
        if (StructurallyEquivalent(c.rep, occ.node)) {
          home = &c;
          break;
        }
      }
      if (home == nullptr) {
        classes.push_back(Candidate{hash, occ.node, num_ops[occ.node], {}, {}});
        home = &classes.back();
      }
      home->occurrences.push_back(occ);
      home->queries.insert(occ.query);
    }
    for (Candidate& c : classes) {
      // Single-op fragments (a bare Input or SubplanInput leaf) are trivially
      // shared and not worth materializing; keep the report signal-dense.
      if (c.queries.size() >= 2 && c.num_ops >= 2) {
        candidates.push_back(std::move(c));
      }
    }
  }

  // 3. Maximality: drop a candidate wholly contained — with the same query
  //    set — in a larger one; sub-fragments of a shared prefix add no new
  //    sharing opportunity. Candidates whose query sets differ both stay
  //    (the smaller one is shareable more widely).
  std::vector<std::unordered_set<const PlanNode*>> descendants(
      candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    for (const Occurrence& occ : candidates[i].occurrences) {
      CollectStrictDescendants(occ.node, &descendants[i]);
    }
  }
  std::vector<bool> suppressed(candidates.size(), false);
  for (size_t i = 0; i < candidates.size(); ++i) {
    for (size_t j = 0; j < candidates.size(); ++j) {
      if (i == j || candidates[i].queries != candidates[j].queries) continue;
      bool contained = true;
      for (const Occurrence& occ : candidates[i].occurrences) {
        if (descendants[j].count(occ.node) == 0) {
          contained = false;
          break;
        }
      }
      if (contained) {
        suppressed[i] = true;
        break;
      }
    }
  }
  std::vector<Candidate> maximal;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (!suppressed[i]) maximal.push_back(std::move(candidates[i]));
  }
  return maximal;
}

}  // namespace

ShareReport BuildShareReport(
    const std::vector<std::pair<std::string, PlanNodePtr>>& queries) {
  const std::vector<Candidate> candidates = CollectMaximalCandidates(queries);
  ShareReport report;
  report.num_queries = queries.size();
  for (const Candidate& c : candidates) {
    SharedFragment frag;
    frag.hash = c.hash;
    frag.num_ops = c.num_ops;
    frag.rendering = c.rep->ToString();
    frag.occurrences = c.occurrences.size();
    for (size_t q : c.queries) frag.queries.push_back(queries[q].first);
    std::sort(frag.queries.begin(), frag.queries.end());
    report.fragments.push_back(std::move(frag));
  }
  std::sort(report.fragments.begin(), report.fragments.end(),
            [](const SharedFragment& a, const SharedFragment& b) {
              if (a.num_ops != b.num_ops) return a.num_ops > b.num_ops;
              if (a.queries.size() != b.queries.size()) {
                return a.queries.size() > b.queries.size();
              }
              return a.hash < b.hash;
            });
  return report;
}

std::vector<ExecutableFragment> SelectSharedFragments(
    const std::vector<std::pair<std::string, PlanNodePtr>>& queries) {
  std::vector<Candidate> candidates = CollectMaximalCandidates(queries);

  // Deterministic node ordering (global preorder across the query list) and
  // the top-context node set: sites reachable from a query root without
  // entering a GroupApply sub-plan. Fingerprints cover sub-plan interiors
  // too, but a read op can only be spliced in top context.
  std::unordered_map<const PlanNode*, size_t> preorder;
  std::unordered_set<const PlanNode*> top_context;
  size_t next_index = 0;
  for (const auto& [name, root] : queries) {
    std::vector<const PlanNode*> stack{root.get()};
    while (!stack.empty()) {
      const PlanNode* n = stack.back();
      stack.pop_back();
      if (!preorder.emplace(n, next_index).second) continue;
      ++next_index;
      for (auto it = n->children.rbegin(); it != n->children.rend(); ++it) {
        stack.push_back(it->get());
      }
      if (n->subplan) stack.push_back(n->subplan.get());
    }
    std::vector<const PlanNode*> top{root.get()};
    while (!top.empty()) {
      const PlanNode* n = top.back();
      top.pop_back();
      if (!top_context.insert(n).second) continue;
      for (const auto& c : n->children) top.push_back(c.get());
    }
  }

  // Restrict candidates to executable sites, then order them for the greedy
  // pass: benefit descending (work saved if every site shares one run), hash
  // ascending as the deterministic tiebreak.
  for (Candidate& c : candidates) {
    std::vector<Occurrence> kept;
    for (const Occurrence& occ : c.occurrences) {
      if (top_context.count(occ.node)) kept.push_back(occ);
    }
    std::sort(kept.begin(), kept.end(),
              [&preorder](const Occurrence& a, const Occurrence& b) {
                return preorder.at(a.node) < preorder.at(b.node);
              });
    c.occurrences = std::move(kept);
    if (!c.occurrences.empty()) c.rep = c.occurrences.front().node;
  }
  candidates.erase(
      std::remove_if(candidates.begin(), candidates.end(),
                     [](const Candidate& c) {
                       // Exchange-rooted fragments would silently change the
                       // consumers' partitioning when substituted; bare input
                       // leaves are free to re-read — materializing a copy of
                       // the source would only add I/O.
                       return c.occurrences.size() < 2 ||
                              c.rep->kind == temporal::OpKind::kExchange ||
                              c.rep->kind == temporal::OpKind::kInput;
                     }),
      candidates.end());
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              const size_t ba = a.num_ops * (a.occurrences.size() - 1);
              const size_t bb = b.num_ops * (b.occurrences.size() - 1);
              if (ba != bb) return ba > bb;
              if (a.num_ops != b.num_ops) return a.num_ops > b.num_ops;
              return a.hash < b.hash;
            });

  // Greedy acceptance. `swallowed` holds every strict descendant of an
  // accepted occurrence site: a smaller fragment's site inside one of those
  // subtrees disappears from the rewritten query (the whole enclosing
  // occurrence becomes a dataset read) — but the accepted fragment's own
  // shared plan still reads it, which `rep_descendants` credits back.
  std::vector<const Candidate*> accepted;
  std::unordered_set<const PlanNode*> swallowed;
  std::vector<std::unordered_set<const PlanNode*>> rep_descendants;
  for (const Candidate& c : candidates) {
    size_t free_sites = 0;
    for (const Occurrence& occ : c.occurrences) {
      if (swallowed.count(occ.node) == 0) ++free_sites;
    }
    size_t plan_refs = 0;
    for (const auto& desc : rep_descendants) {
      for (const Occurrence& occ : c.occurrences) {
        if (desc.count(occ.node)) {
          ++plan_refs;
          break;
        }
      }
    }
    if (free_sites + plan_refs < 2) continue;
    accepted.push_back(&c);
    for (const Occurrence& occ : c.occurrences) {
      CollectStrictDescendants(occ.node, &swallowed);
    }
    rep_descendants.emplace_back();
    CollectStrictDescendants(c.rep, &rep_descendants.back());
  }

  // Execution order: num_ops ascending. Strict containment implies strictly
  // fewer ops, so every nested fragment's dataset is produced before the
  // shared plan that reads it.
  std::sort(accepted.begin(), accepted.end(),
            [](const Candidate* a, const Candidate* b) {
              if (a->num_ops != b->num_ops) return a->num_ops < b->num_ops;
              return a->hash < b->hash;
            });

  std::vector<ExecutableFragment> out;
  out.reserve(accepted.size());
  for (const Candidate* c : accepted) {
    ExecutableFragment f;
    f.hash = c->hash;
    f.num_ops = c->num_ops;
    f.rep = c->rep;
    std::set<size_t> qset;
    for (const Occurrence& occ : c->occurrences) {
      f.occurrences.push_back(SharedOccurrence{occ.query, occ.node});
      qset.insert(occ.query);
    }
    f.query_indices.assign(qset.begin(), qset.end());
    out.push_back(std::move(f));
  }
  return out;
}

std::string ShareReport::ToString() const {
  std::ostringstream os;
  if (fragments.empty()) {
    os << "no multi-query shared fragments\n";
    return os.str();
  }
  for (const SharedFragment& f : fragments) {
    os << "shared fragment " << HexHash(f.hash) << " (" << f.num_ops
       << " ops) in " << f.queries.size() << " queries, " << f.occurrences
       << " occurrences:\n  queries:";
    for (const auto& q : f.queries) os << " " << q;
    os << "\n";
    std::istringstream plan(f.rendering);
    std::string line;
    while (std::getline(plan, line)) os << "  | " << line << "\n";
  }
  return os.str();
}

std::string ShareReport::ToJson() const {
  std::ostringstream os;
  os << "{\"queries\":" << num_queries << ",\"shared_fragments\":[";
  for (size_t i = 0; i < fragments.size(); ++i) {
    const SharedFragment& f = fragments[i];
    if (i > 0) os << ",";
    os << "{\"hash\":\"" << HexHash(f.hash) << "\",\"num_ops\":" << f.num_ops
       << ",\"occurrences\":" << f.occurrences << ",\"queries\":[";
    for (size_t q = 0; q < f.queries.size(); ++q) {
      if (q > 0) os << ",";
      os << "\"" << JsonEscape(f.queries[q]) << "\"";
    }
    os << "],\"plan\":\"" << JsonEscape(f.rendering) << "\"}";
  }
  os << "]}";
  return os.str();
}

}  // namespace timr::analysis
