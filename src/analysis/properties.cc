#include "analysis/properties.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "common/logging.h"
#include "temporal/executor.h"

namespace timr::analysis {

using temporal::OpKind;
using temporal::PlanNode;
using temporal::PlanNodePtr;
using temporal::Timestamp;

std::string Partitioning::ToString() const {
  switch (kind) {
    case Kind::kArbitrary:
      return "arbitrary";
    case Kind::kSingleton:
      return "singleton";
    case Kind::kTemporal:
      return "temporal(span=" + std::to_string(span_width) +
             ",overlap=" + std::to_string(overlap) + ")";
    case Kind::kKeys: {
      std::string out = "keys{";
      for (size_t i = 0; i < keys.size(); ++i) {
        if (i > 0) out += ",";
        out += keys[i];
      }
      return out + "}";
    }
  }
  return "?";
}

const char* OrderingName(Ordering o) {
  switch (o) {
    case Ordering::kLeOrdered:
      return "le-ordered";
    case Ordering::kCanonical:
      return "canonical";
  }
  return "?";
}

const char* DeterminismClassName(DeterminismClass d) {
  switch (d) {
    case DeterminismClass::kPure:
      return "pure";
    case DeterminismClass::kOpaqueDeterministic:
      return "opaque-deterministic";
    case DeterminismClass::kOrderSensitive:
      return "order-sensitive";
  }
  return "?";
}

std::string LifetimeBounds::ToString() const {
  return "[" + std::to_string(min) + "," +
         (max >= temporal::kMaxTime ? std::string("inf") : std::to_string(max)) +
         "]";
}

std::string NodeProperties::ToString() const {
  std::string out = "partitioning=" + partitioning.ToString();
  out += " ordering=";
  out += OrderingName(ordering);
  out += " lifetime=" + lifetime.ToString();
  out += " max_window=" + std::to_string(max_window_below);
  out += stateful ? " stateful" : " stateless";
  if (stateful_below && !stateful) out += " stateful-below";
  out += " determinism=";
  out += DeterminismClassName(determinism);
  out += consumes_columnar ? " columnar" : " row";
  return out;
}

const NodeProperties& PropertyMap::at(const PlanNode* node) const {
  auto it = nodes.find(node);
  TIMR_CHECK(it != nodes.end())
      << "no inferred properties for node " << DescribeNode(node)
      << " (was the map computed over a different plan?)";
  return it->second;
}

namespace {

DeterminismClass MaxDeterminism(DeterminismClass a, DeterminismClass b) {
  return static_cast<uint8_t>(a) >= static_cast<uint8_t>(b) ? a : b;
}

/// True when every name in `subset` appears in `superset`.
bool KeysSubset(const std::vector<std::string>& subset,
                const std::vector<std::string>& superset) {
  for (const auto& k : subset) {
    if (std::find(superset.begin(), superset.end(), k) == superset.end()) {
      return false;
    }
  }
  return true;
}

class PropertyInference {
 public:
  explicit PropertyInference(const PropertyOptions& opts) : opts_(opts) {}

  PropertyMap Run(const PlanNodePtr& root) {
    const temporal::ColumnarIngestDecisions ingest =
        temporal::PlanColumnarIngest(root);
    Infer(root.get());
    PropertyMap out;
    for (auto& [node, props] : props_) {
      auto likes = ingest.consumes_columnar.find(node);
      props.consumes_columnar =
          likes != ingest.consumes_columnar.end() && likes->second;
      out.nodes.emplace(node, props);
    }
    out.columnar_ingest = ingest.ingest_columnar;
    return out;
  }

 private:
  /// Seeded entry for a kSubplanInput leaf: the per-group slice of the
  /// GroupApply's input stream. Slicing preserves order and lifetimes; the
  /// partitioning fact does not transfer into the per-instance view.
  void SeedSubplanInput(const PlanNode* leaf, const NodeProperties& input) {
    NodeProperties p;
    p.ordering = input.ordering;
    p.lifetime = input.lifetime;
    p.determinism = input.determinism;
    props_[leaf] = p;
  }

  const NodeProperties& Infer(const PlanNode* n) {
    auto it = props_.find(n);
    if (it != props_.end()) return it->second;
    NodeProperties p = Compute(n);
    return props_.emplace(n, std::move(p)).first->second;
  }

  NodeProperties Compute(const PlanNode* n) {
    NodeProperties p;
    switch (n->kind) {
      case OpKind::kInput:
      case OpKind::kSubplanInput: {
        // (kSubplanInput normally goes through SeedSubplanInput; reaching
        // here means the leaf is analyzed outside its GroupApply.)
        p.ordering = opts_.canonical_inputs ? Ordering::kCanonical
                                            : Ordering::kLeOrdered;
        return p;
      }
      case OpKind::kExchange: {
        const NodeProperties& c = Infer(n->children[0].get());
        p = c;
        p.stateful = false;
        // The shuffle both repartitions and sorts each partition into the
        // canonical (le, re, payload) order (mr/stage.h contract).
        p.ordering = Ordering::kCanonical;
        using PK = temporal::PartitionSpec::Kind;
        if (n->exchange.kind == PK::kTemporal) {
          p.partitioning = Partitioning::TemporalSpans(n->exchange.span_width,
                                                       n->exchange.overlap);
        } else if (n->exchange.keys.empty()) {
          p.partitioning = Partitioning::Singleton();
        } else {
          // adaptive_split does not weaken this: a salted split sub-partitions
          // whole keys (hash(key_hash ^ salt), never a finer column set) and
          // the runtime coalesces virtual partitions back into their base
          // partition before the output is visible, so every key is still
          // co-located in exactly one of the exchange's partitions. Elision
          // and placement reasoning over Keys(...) stay sound.
          p.partitioning = Partitioning::Keys(n->exchange.keys);
        }
        return p;
      }
      case OpKind::kConformanceCheck: {
        p = Infer(n->children[0].get());
        p.stateful = false;
        return p;
      }
      case OpKind::kSelect: {
        const NodeProperties& c = Infer(n->children[0].get());
        p = c;
        p.stateful = false;
        if (!n->select_spec.has_value()) {
          p.determinism =
              MaxDeterminism(p.determinism, DeterminismClass::kOpaqueDeterministic);
        }
        return p;
      }
      case OpKind::kProject: {
        const NodeProperties& c = Infer(n->children[0].get());
        p = c;
        p.stateful = false;
        // Payload rewritten: the canonical (payload-inclusive) order no
        // longer holds; lifetimes and physical placement do.
        if (p.ordering == Ordering::kCanonical) p.ordering = Ordering::kLeOrdered;
        p.partitioning = ProjectPartitioning(n, c.partitioning);
        if (!n->project_spec.has_value()) {
          p.determinism =
              MaxDeterminism(p.determinism, DeterminismClass::kOpaqueDeterministic);
        }
        return p;
      }
      case OpKind::kAlterLifetime: {
        const NodeProperties& c = Infer(n->children[0].get());
        p = c;
        p.stateful = false;
        // Lifetimes change: the temporal-span containment fact and (except
        // for a pure shift) the canonical order are lost.
        if (p.partitioning.kind == Partitioning::Kind::kTemporal) {
          p.partitioning = Partitioning::Arbitrary();
        }
        if (n->alter.mode != temporal::AlterLifetimeSpec::Mode::kShift &&
            p.ordering == Ordering::kCanonical) {
          p.ordering = Ordering::kLeOrdered;
        }
        p.lifetime = AlterLifetimeBounds(n->alter, c.lifetime);
        p.max_window_below =
            std::max(c.max_window_below, n->alter.MaxWindow());
        return p;
      }
      case OpKind::kAggregate: {
        const NodeProperties& c = Infer(n->children[0].get());
        p = c;
        p.stateful = true;
        p.stateful_below = true;
        p.ordering = Ordering::kLeOrdered;
        // The input columns (and with them any key fact) are gone; physical
        // placement is untouched, so singleton survives.
        if (p.partitioning.kind != Partitioning::Kind::kSingleton) {
          p.partitioning = Partitioning::Arbitrary();
        }
        // A snapshot interval contains no event boundary, so it lies inside
        // some active event's lifetime: max duration is the input's.
        p.lifetime = LifetimeBounds{temporal::kTick, c.lifetime.max};
        return p;
      }
      case OpKind::kGroupApply: {
        const NodeProperties& c = Infer(n->children[0].get());
        SeedSubplanInput(FindSubplanLeaf(n->subplan.get()), c);
        const NodeProperties& sub = Infer(n->subplan.get());
        p.stateful = true;
        p.stateful_below = true;
        p.ordering = Ordering::kLeOrdered;
        p.lifetime = sub.lifetime;
        p.max_window_below = std::max(c.max_window_below, sub.max_window_below);
        p.determinism = MaxDeterminism(c.determinism, sub.determinism);
        // Output schema leads with the group-key columns under their
        // original names, and groups never move between partitions.
        if (c.partitioning.kind == Partitioning::Kind::kSingleton) {
          p.partitioning = Partitioning::Singleton();
        } else if (c.partitioning.kind == Partitioning::Kind::kKeys &&
                   KeysSubset(c.partitioning.keys, n->group_keys)) {
          p.partitioning = c.partitioning;
        }
        return p;
      }
      case OpKind::kUnion: {
        const NodeProperties& a = Infer(n->children[0].get());
        const NodeProperties& b = Infer(n->children[1].get());
        p.stateful = true;  // merge buffering until punctuation
        p.stateful_below = true;
        p.ordering = Ordering::kLeOrdered;
        p.lifetime = LifetimeBounds{std::min(a.lifetime.min, b.lifetime.min),
                                    std::max(a.lifetime.max, b.lifetime.max)};
        p.max_window_below = std::max(a.max_window_below, b.max_window_below);
        p.determinism = MaxDeterminism(a.determinism, b.determinism);
        if (a.partitioning == b.partitioning) p.partitioning = a.partitioning;
        return p;
      }
      case OpKind::kTemporalJoin:
      case OpKind::kAntiSemiJoin: {
        const NodeProperties& l = Infer(n->children[0].get());
        const NodeProperties& r = Infer(n->children[1].get());
        p.stateful = true;
        p.stateful_below = true;
        p.ordering = Ordering::kLeOrdered;
        p.max_window_below = std::max(l.max_window_below, r.max_window_below);
        p.determinism = MaxDeterminism(l.determinism, r.determinism);
        if (n->kind == OpKind::kTemporalJoin) {
          // Output lifetime is the intersection of the matched pair's.
          p.lifetime = LifetimeBounds{
              temporal::kTick, std::min(l.lifetime.max, r.lifetime.max)};
          if (n->join_pred || n->join_project) {
            p.determinism = MaxDeterminism(
                p.determinism, DeterminismClass::kOpaqueDeterministic);
          }
        } else {
          // ASJ passes left events (possibly clipped).
          p.lifetime = LifetimeBounds{temporal::kTick, l.lifetime.max};
        }
        p.partitioning = JoinPartitioning(n, l.partitioning, r.partitioning);
        return p;
      }
      case OpKind::kUdo: {
        const NodeProperties& c = Infer(n->children[0].get());
        p.stateful = true;
        p.stateful_below = true;
        p.ordering = Ordering::kLeOrdered;
        p.max_window_below =
            std::max(c.max_window_below, n->udo_window + n->udo_hop);
        p.determinism = MaxDeterminism(
            c.determinism, n->udo_order_insensitive
                               ? DeterminismClass::kOpaqueDeterministic
                               : DeterminismClass::kOrderSensitive);
        if (c.partitioning.kind == Partitioning::Kind::kSingleton) {
          p.partitioning = Partitioning::Singleton();
        }
        return p;
      }
    }
    return p;
  }

  /// The kSubplanInput leaf of a group sub-plan (its unique external feed).
  static const PlanNode* FindSubplanLeaf(const PlanNode* sub) {
    const PlanNode* n = sub;
    std::vector<const PlanNode*> stack{sub};
    std::unordered_set<const PlanNode*> seen;
    while (!stack.empty()) {
      n = stack.back();
      stack.pop_back();
      if (!seen.insert(n).second) continue;
      if (n->kind == OpKind::kSubplanInput) return n;
      for (const auto& c : n->children) stack.push_back(c.get());
    }
    return sub;
  }

  /// Key survival through a structured projection: a partitioning key
  /// survives when some kColumn expression copies it; the fact carries over
  /// under the expression's output name. Opaque projections destroy the fact
  /// (the key columns may be gone or rewritten).
  Partitioning ProjectPartitioning(const PlanNode* n, const Partitioning& c) {
    if (c.kind == Partitioning::Kind::kSingleton ||
        c.kind == Partitioning::Kind::kTemporal) {
      return c;  // placement / lifetime facts are payload-independent
    }
    if (c.kind != Partitioning::Kind::kKeys) return Partitioning::Arbitrary();
    if (!n->project_spec.has_value()) return Partitioning::Arbitrary();
    auto in = n->children[0]->OutputSchema();
    if (!in.ok()) return Partitioning::Arbitrary();
    std::vector<std::string> surviving;
    surviving.reserve(c.keys.size());
    for (const std::string& key : c.keys) {
      auto idx = in.ValueOrDie().IndexOf(key);
      if (!idx.ok()) return Partitioning::Arbitrary();
      const temporal::ProjectExpr* copy = nullptr;
      for (const auto& e : n->project_spec->exprs) {
        if (e.kind == temporal::ProjectExpr::Kind::kColumn &&
            e.column == idx.ValueOrDie()) {
          copy = &e;
          break;
        }
      }
      if (copy == nullptr) return Partitioning::Arbitrary();
      surviving.push_back(copy->name);
    }
    return Partitioning::Keys(std::move(surviving));
  }

  /// A join's output inherits the left input's key fact when (a) the left
  /// stream is partitioned by a subset of the join's left keys, (b) the right
  /// stream is partitioned by the positionally-corresponding right keys (so
  /// matching pairs co-locate), and (c) the key columns survive into the
  /// output schema (always for ASJ; for TemporalJoin only the concat form —
  /// an opaque join_project may drop them). Two singletons join to one.
  Partitioning JoinPartitioning(const PlanNode* n, const Partitioning& l,
                                const Partitioning& r) {
    if (l.kind == Partitioning::Kind::kSingleton &&
        r.kind == Partitioning::Kind::kSingleton) {
      return Partitioning::Singleton();
    }
    if (l.kind != Partitioning::Kind::kKeys ||
        r.kind != Partitioning::Kind::kKeys) {
      return Partitioning::Arbitrary();
    }
    if (n->kind == OpKind::kTemporalJoin && n->join_project) {
      return Partitioning::Arbitrary();
    }
    if (l.keys.size() != r.keys.size()) return Partitioning::Arbitrary();
    for (size_t i = 0; i < l.keys.size(); ++i) {
      auto li = std::find(n->left_keys.begin(), n->left_keys.end(), l.keys[i]);
      if (li == n->left_keys.end()) return Partitioning::Arbitrary();
      const size_t pos = static_cast<size_t>(li - n->left_keys.begin());
      if (pos >= n->right_keys.size() ||
          std::find(r.keys.begin(), r.keys.end(), n->right_keys[pos]) ==
              r.keys.end()) {
        return Partitioning::Arbitrary();
      }
    }
    return l;
  }

  static LifetimeBounds AlterLifetimeBounds(
      const temporal::AlterLifetimeSpec& spec, const LifetimeBounds& in) {
    using Mode = temporal::AlterLifetimeSpec::Mode;
    switch (spec.mode) {
      case Mode::kShift:
        return in;  // duration unchanged
      case Mode::kWindow:
      case Mode::kShiftAndWindow:
        return LifetimeBounds{spec.window, spec.window};
      case Mode::kPoint:
        return LifetimeBounds{temporal::kTick, temporal::kTick};
      case Mode::kHop:
        // Surviving events snap to [first, last) hop boundaries: duration is
        // a positive multiple of hop, at most window rounded up one grid.
        return LifetimeBounds{spec.hop, spec.window + spec.hop};
    }
    return LifetimeBounds{};
  }

  PropertyOptions opts_;
  std::unordered_map<const PlanNode*, NodeProperties> props_;
};

}  // namespace

PropertyMap InferProperties(const PlanNodePtr& root,
                            const PropertyOptions& opts) {
  return PropertyInference(opts).Run(root);
}

AnalysisReport ValidatePropertySnapshot(const PlanNodePtr& root,
                                        const PropertyMap& cached,
                                        const PropertyOptions& opts) {
  AnalysisReport report;
  const PropertyMap fresh = InferProperties(root, opts);
  for (const auto& [node, props] : fresh.nodes) {
    auto it = cached.nodes.find(node);
    if (it == cached.nodes.end()) {
      report.diagnostics.push_back(
          Diagnostic{Severity::kError, node, DescribeNode(node),
                     "stale-properties",
                     "node has no entry in the cached property snapshot "
                     "(plan mutated after inference?)"});
      continue;
    }
    if (it->second != props) {
      report.diagnostics.push_back(Diagnostic{
          Severity::kError, node, DescribeNode(node), "stale-properties",
          "cached properties are stale: cached {" + it->second.ToString() +
              "} vs recomputed {" + props.ToString() + "}"});
    }
  }
  if (cached.nodes.size() != fresh.nodes.size()) {
    // Cached keys absent from the fresh map may dangle; report by count only.
    report.diagnostics.push_back(Diagnostic{
        Severity::kError, nullptr, "property-snapshot", "stale-properties",
        "cached snapshot covers " + std::to_string(cached.nodes.size()) +
            " nodes but the plan has " + std::to_string(fresh.nodes.size())});
  }
  return report;
}

AnalysisReport CheckColumnarDegradation(const PlanNodePtr& root) {
  AnalysisReport report;
  const temporal::ColumnarIngestDecisions ingest =
      temporal::PlanColumnarIngest(root);
  // Direct consumers per node, over the same child-edge view the ingest
  // planner uses (group sub-plans excluded — they are row-domain by design).
  std::unordered_map<const PlanNode*, std::vector<const PlanNode*>> parents;
  std::vector<const PlanNode*> order;
  {
    std::unordered_set<const PlanNode*> seen{root.get()};
    std::vector<const PlanNode*> stack{root.get()};
    while (!stack.empty()) {
      const PlanNode* n = stack.back();
      stack.pop_back();
      order.push_back(n);
      for (const auto& c : n->children) {
        parents[c.get()].push_back(n);
        if (seen.insert(c.get()).second) stack.push_back(c.get());
      }
    }
  }
  for (const PlanNode* n : order) {
    if (n->kind == OpKind::kSelect && !n->select_spec.has_value()) {
      report.diagnostics.push_back(Diagnostic{
          Severity::kWarning, n, DescribeNode(n), "columnar-degradation",
          "opaque Select predicate forces the row path (EnsureRows) and "
          "blocks columnar ingest for its source; express the filter as a "
          "SelectSpec to vectorize"});
    }
    if (n->kind == OpKind::kProject && !n->project_spec.has_value()) {
      report.diagnostics.push_back(Diagnostic{
          Severity::kWarning, n, DescribeNode(n), "columnar-degradation",
          "opaque Project closure forces the row path (EnsureRows) and "
          "blocks columnar ingest for its source; express the projection as "
          "a ProjectSpec to vectorize"});
    }
    if (n->kind == OpKind::kInput) {
      auto it = ingest.ingest_columnar.find(n);
      const bool columnar = it != ingest.ingest_columnar.end() && it->second;
      if (columnar) continue;
      bool any_columnar_consumer = false;
      for (const PlanNode* p : parents[n]) {
        auto likes = ingest.consumes_columnar.find(p);
        if (likes != ingest.consumes_columnar.end() && likes->second) {
          any_columnar_consumer = true;
          break;
        }
      }
      if (any_columnar_consumer) {
        report.diagnostics.push_back(Diagnostic{
            Severity::kWarning, n, DescribeNode(n), "columnar-degradation",
            "source is demoted to row ingest by mixed consumer fan-out: at "
            "least one consumer runs columnar kernels but another is "
            "row-bound, and a multicast clone to a row consumer costs more "
            "than the columnar consumers save"});
      }
    }
  }
  return report;
}

}  // namespace timr::analysis
