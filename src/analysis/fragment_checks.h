// Static checks over the output of fragment extraction (timr/fragments.h) and
// stage compilation (mr/stage.h): invariant "fragment-cut".
//
// A well-formed FragmentedPlan satisfies:
//  - fragments are topologically ordered and the dependency graph is acyclic
//    (every internal input names an *earlier* fragment);
//  - every fragment root is exchange-free (cut boundaries coincide with
//    exchanges — a leftover kExchange means the cutter missed a boundary);
//  - each fragment's kInput leaves are exactly its declared `inputs`;
//  - a temporal partitioning key's overlap covers the fragment's max window
//    (paper §III-B);
//  - a compiled MRStage's identity, partition count and consumable-inputs
//    annotation are consistent with the fragment DAG's last-use structure.
//
// These functions only *inspect* Fragment/FragmentedPlan structs; they never
// run fragment extraction themselves (keeps timr_analysis below timr_timr in
// the link order).

#pragma once

#include <set>
#include <string>

#include "analysis/diagnostic.h"
#include "mr/checkpoint.h"
#include "mr/stage.h"
#include "timr/fragments.h"

namespace timr::analysis {

/// Invariant "fragment-cut" over an extracted plan.
AnalysisReport CheckFragments(const framework::FragmentedPlan& plan);

/// Invariant "fragment-cut" over one compiled stage: `stage` must implement
/// `plan.fragments[fragment_index]`, and its consumable-inputs annotation must
/// be a correct last-use claim with respect to the rest of `plan`.
AnalysisReport CheckStage(const framework::FragmentedPlan& plan,
                          size_t fragment_index, const mr::MRStage& stage);

/// Multi-output variant for merged suite plans (RunPlanSuite): a combined
/// FragmentedPlan carries one *per query* output dataset, every one of which
/// must survive to the end of the job — `protected_outputs` replaces the
/// single `plan.output_dataset` in the consumable-release audit. Shared
/// fragments' datasets are NOT protected: they are legitimately released at
/// their last consumer, which the last-use claims below still verify against
/// every downstream reader.
AnalysisReport CheckStage(const framework::FragmentedPlan& plan,
                          size_t fragment_index, const mr::MRStage& stage,
                          const std::set<std::string>& protected_outputs);

/// Invariant "checkpoint-cut": the checkpointed stage prefix `store` claims
/// (resume index `resume_from`, as returned by CheckpointStore::Restore) must
/// align with `plan`'s fragment cuts — same stage names in the same order —
/// and no dataset released by a restored stage may still be needed by a
/// fragment at or past the resume point (a released input cannot be re-read,
/// so such a cut would replay into a missing dataset). Runs before RunPlan
/// executes anything on a resumed job.
AnalysisReport CheckCheckpointCut(const framework::FragmentedPlan& plan,
                                  const mr::CheckpointStore& store,
                                  size_t resume_from);

/// Multi-output variant (see the CheckStage overload): no restored stage may
/// have released any of `protected_outputs`.
AnalysisReport CheckCheckpointCut(
    const framework::FragmentedPlan& plan, const mr::CheckpointStore& store,
    size_t resume_from, const std::set<std::string>& protected_outputs);

}  // namespace timr::analysis
