// Static analysis passes over temporal::PlanNode DAGs.
//
// The TiMR correctness argument (paper §III, §VI) rests on invariants that the
// builders and optimizer are supposed to maintain but nothing verified until
// now:
//
//  - "schema"             every operator's schema resolves, referenced columns
//                         exist with compatible types, declared schemas carry
//                         no duplicate or reserved names, operator arity and
//                         required callbacks are in place;
//  - "exchange-placement" every kKeys exchange partitions on a subset of each
//                         downstream stateful operator's grouping key up to
//                         the next exchange (paper §III-A step 2), all
//                         exchanges feeding one fragment agree (footnote 1),
//                         and no keyed exchange sits beneath a global
//                         (ungrouped) Aggregate/UDO;
//  - "temporal-span"      every kTemporal exchange's overlap covers the
//                         maximum window applied between it and its fragment
//                         root (paper §III-B);
//  - "determinism"        UDOs not declared order-insensitive that consume a
//                         merged stream are flagged, since replayed shuffles
//                         only guarantee the canonical RowTimeLess order
//                         across exchange boundaries;
//  - "split-exchange"     PartitionSpec::adaptive_split (adaptive skew-aware
//                         repartitioning, mr::SkewPolicy) is only sound on a
//                         keyed exchange: temporal spans replicate boundary
//                         rows across overlapping spans, so hot-key
//                         sub-partitioning has no lossless coalesce, and a
//                         singleton exchange has no key hash to split on.
//
// Passes return structured diagnostics; they never abort. Run CheckPlanSchemas
// first — the placement pass assumes schemas resolve.

#pragma once

#include "analysis/diagnostic.h"
#include "temporal/plan.h"

namespace timr::analysis {

/// Invariant "schema": arity, schema resolution, column references and types,
/// duplicate/reserved names, required callbacks. Errors here make the other
/// passes unreliable; run this first.
AnalysisReport CheckPlanSchemas(const temporal::PlanNodePtr& root);

/// Invariants "exchange-placement" and "temporal-span". Assumes schemas
/// resolve (run CheckPlanSchemas first; unresolvable schemas are skipped
/// defensively here).
AnalysisReport CheckExchangePlacement(const temporal::PlanNodePtr& root);

/// Invariant "determinism" (warnings only).
AnalysisReport CheckDeterminism(const temporal::PlanNodePtr& root);

/// Invariant "split-exchange": adaptive_split only on keyed exchanges with a
/// non-empty key set (errors otherwise). A valid salted split still satisfies
/// kKeys partitioning for consumers — every key stays co-located — so this
/// pass is the only split-specific placement rule needed; exchange-placement
/// and elision reasoning are unaffected by the flag.
AnalysisReport CheckSplitExchange(const temporal::PlanNodePtr& root);

}  // namespace timr::analysis
