// Front door of the static analysis library: runs every plan-level pass in
// the right order, and provides the conformance-instrumentation rewrite that
// implements TimrOptions::validate_streams.
//
// Used in two places:
//  - Timr::RunPlan calls VerifyPlanForExecution / CheckFragments / CheckStage
//    before running anything (when validate_streams is on), so a bad plan
//    fails fast with named diagnostics instead of producing wrong output;
//  - the timr_lint tool runs AnalyzePlan standalone and prints the report.

#pragma once

#include <string>

#include "analysis/diagnostic.h"
#include "analysis/fragment_checks.h"
#include "analysis/plan_checks.h"
#include "temporal/plan.h"

namespace timr::analysis {

/// Run all plan-level passes: "schema" first; "exchange-placement",
/// "temporal-span" and "determinism" only when schemas resolve (they assume a
/// well-typed plan).
AnalysisReport AnalyzePlan(const temporal::PlanNodePtr& root);

/// AnalyzePlan reduced to a Status: OK when no pass reports an error
/// (warnings pass), Invalid listing every error otherwise.
Status VerifyPlanForExecution(const temporal::PlanNodePtr& root);

/// Rewrite a fragment's (exchange-free) plan for runtime conformance
/// checking: every kInput leaf is wrapped in a ConformanceCheck named
/// "<fragment>/input:<dataset>" and the root in one named
/// "<fragment>/output". The original plan is not modified; shared sub-DAGs
/// stay shared, so each multicast input gets exactly one checker. Group
/// sub-plans are left untouched (their streams are per-group slices of an
/// already-checked stream).
temporal::PlanNodePtr InstrumentFragmentPlan(const std::string& fragment_name,
                                             const temporal::PlanNodePtr& root);

}  // namespace timr::analysis
