// End-to-end BT evaluation (paper §V-C / §V-D): CTR lift vs coverage curves,
// keyword-impact tables, and the memory / learning-time metrics.

#pragma once

#include <map>
#include <string>
#include <vector>

#include "bt/model.h"
#include "bt/reduction.h"
#include "temporal/event.h"

namespace timr::bt {

/// One ad-impression example reconstructed from GenTrainData rows (the rows of
/// one example share (UserId, AdId, timestamp)).
struct Example {
  int64_t user = 0;
  int64_t ad = 0;
  temporal::Timestamp t = 0;
  bool clicked = false;
  std::vector<std::pair<int64_t, double>> features;  // (keyword, count)
};

/// Group TrainDataSchema events into examples.
std::vector<Example> ExamplesFromTrainRows(
    const std::vector<temporal::Event>& events);

struct CurvePoint {
  double threshold = 0;
  double coverage = 0;  // fraction of test examples with score >= threshold
  double ctr = 0;       // CTR within the selected set
  double lift = 0;      // ctr / base_ctr
};

struct AdEvaluation {
  int64_t ad = 0;
  double base_ctr = 0;  // V0 over the test examples
  std::vector<CurvePoint> curve;
  double learn_seconds = 0;
  double avg_entries_per_ubp = 0;  // after reduction (paper §V-D memory)
  size_t dimensions = 0;           // retained feature count (Figure 20)
};

struct SchemeEvaluation {
  std::string scheme;
  std::map<int64_t, AdEvaluation> per_ad;
};

/// Train (per ad) on the reduced train examples, score the reduced test
/// examples, and sweep `curve_points` score thresholds.
SchemeEvaluation EvaluateScheme(const ReductionScheme& scheme,
                                const std::vector<Example>& train_examples,
                                const std::vector<Example>& test_examples,
                                const std::vector<int64_t>& ads,
                                const LrOptions& lr_options = LrOptions(),
                                int curve_points = 20);

/// Figure 21: CTR of test-example subsets defined by the presence of
/// positively / negatively scored keywords.
struct KeywordImpactRow {
  std::string subset;
  int64_t clicks = 0;
  int64_t impressions = 0;
  double ctr = 0;
  double lift_pct = 0;  // (ctr/base - 1) * 100
};

std::vector<KeywordImpactRow> ComputeKeywordImpact(
    const Selection& positive, const Selection& negative,
    const std::vector<Example>& test_examples, int64_t ad);

}  // namespace timr::bt
