// The unified BT log schema (paper Figure 9): one composite stream holding ad
// impressions, ad clicks, and keyword activity (searches + page views),
// disambiguated by StreamId. The Time column is event metadata (the LE), so
// the payload schema is the remaining three columns.
//
// The paper stores UserId/KwAdId as strings; we use integer ids (with
// generator-side name tables for display) — the analytics are id-based either
// way and integer keys keep the simulation honest about costs.

#pragma once

#include "common/row.h"
#include "temporal/time.h"

namespace timr::bt {

/// StreamId values (paper §III-C.4).
inline constexpr int64_t kStreamImpression = 0;
inline constexpr int64_t kStreamClick = 1;
inline constexpr int64_t kStreamKeyword = 2;

inline constexpr const char* kColStreamId = "StreamId";
inline constexpr const char* kColUserId = "UserId";
inline constexpr const char* kColKwAdId = "KwAdId";

/// Payload schema of the unified BT stream.
inline Schema UnifiedSchema() {
  return Schema::Of({{kColStreamId, ValueType::kInt64},
                     {kColUserId, ValueType::kInt64},
                     {kColKwAdId, ValueType::kInt64}});
}

/// Canonical source name used by the BT queries.
inline constexpr const char* kBtInput = "BtLog";

}  // namespace timr::bt
