#include "bt/reduction.h"

#include <algorithm>

#include "common/hash.h"
#include "common/logging.h"

namespace timr::bt {

bool FeatureScore::HasSupport(int64_t min_examples) const {
  return examples_with >= min_examples &&
         examples_total - examples_with >= min_examples &&
         clicks_total - clicks_with >= 5;
}

std::vector<FeatureScore> ScoresFromEvents(
    const std::vector<temporal::Event>& events) {
  std::vector<FeatureScore> out;
  out.reserve(events.size());
  for (const auto& e : events) {
    TIMR_CHECK(e.payload.size() == 7) << "not a FeatureScoreSchema event";
    FeatureScore s;
    s.ad = e.payload[0].AsInt64();
    s.keyword = e.payload[1].AsInt64();
    s.clicks_with = e.payload[2].AsInt64();
    s.examples_with = e.payload[3].AsInt64();
    s.clicks_total = e.payload[4].AsInt64();
    s.examples_total = e.payload[5].AsInt64();
    s.z = e.payload[6].AsDouble();
    out.push_back(s);
  }
  return out;
}

Selection SelectKeZ(const std::vector<FeatureScore>& scores, double z_threshold) {
  Selection sel;
  for (const auto& s : scores) {
    if (s.HasSupport() && std::abs(s.z) >= z_threshold) {
      sel[s.ad].insert(s.keyword);
    }
  }
  return sel;
}

Selection SelectKeZSigned(const std::vector<FeatureScore>& scores,
                          double z_threshold, bool positive) {
  Selection sel;
  for (const auto& s : scores) {
    if (!s.HasSupport()) continue;
    if (positive ? s.z >= z_threshold : s.z <= -z_threshold) {
      sel[s.ad].insert(s.keyword);
    }
  }
  return sel;
}

Selection SelectKePop(const std::vector<FeatureScore>& scores, size_t top_n) {
  std::unordered_map<int64_t, std::vector<std::pair<int64_t, int64_t>>> by_ad;
  for (const auto& s : scores) {
    // Chen et al. rank by raw frequency in user histories ("total ad clicks
    // or rejects with that keyword"), i.e. appearances across all examples —
    // which is exactly why the scheme keeps popular-but-uncorrelated
    // keywords (paper §V-C).
    by_ad[s.ad].emplace_back(s.examples_with, s.keyword);
  }
  Selection sel;
  for (auto& [ad, kws] : by_ad) {
    // Highest click count first; keyword id breaks ties deterministically.
    std::sort(kws.begin(), kws.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first > b.first;
      return a.second < b.second;
    });
    for (size_t i = 0; i < std::min(top_n, kws.size()); ++i) {
      sel[ad].insert(kws[i].second);
    }
  }
  return sel;
}

std::vector<int64_t> FExCategories(int64_t keyword, int num_categories) {
  // Up to 3 categories per keyword, deterministic; ~2/3 of keywords map to
  // 2-3 categories, mirroring "each keyword potentially maps to 3 categories".
  const uint64_t h = HashMix(static_cast<uint64_t>(keyword) ^ 0xFEC0FFEEULL);
  std::vector<int64_t> cats;
  const int n = 1 + static_cast<int>(h % 3);
  for (int i = 0; i < n; ++i) {
    cats.push_back(static_cast<int64_t>(
        HashMix(h + static_cast<uint64_t>(i) * 0x9e37ULL) %
        static_cast<uint64_t>(num_categories)));
  }
  std::sort(cats.begin(), cats.end());
  cats.erase(std::unique(cats.begin(), cats.end()), cats.end());
  return cats;
}

ReductionScheme ReductionScheme::KeZ(std::string name,
                                     const std::vector<FeatureScore>& scores,
                                     double z_threshold) {
  ReductionScheme s;
  s.name_ = std::move(name);
  s.kind_ = Kind::kSelection;
  s.selection_ = SelectKeZ(scores, z_threshold);
  return s;
}

ReductionScheme ReductionScheme::KePop(std::string name,
                                       const std::vector<FeatureScore>& scores,
                                       size_t top_n) {
  ReductionScheme s;
  s.name_ = std::move(name);
  s.kind_ = Kind::kSelection;
  s.selection_ = SelectKePop(scores, top_n);
  return s;
}

ReductionScheme ReductionScheme::FEx(std::string name, int num_categories) {
  ReductionScheme s;
  s.name_ = std::move(name);
  s.kind_ = Kind::kFEx;
  s.num_categories_ = num_categories;
  return s;
}

ReductionScheme ReductionScheme::Identity(std::string name) {
  ReductionScheme s;
  s.name_ = std::move(name);
  s.kind_ = Kind::kIdentity;
  return s;
}

std::vector<std::pair<int64_t, double>> ReductionScheme::Reduce(
    int64_t ad, const std::vector<std::pair<int64_t, double>>& features) const {
  switch (kind_) {
    case Kind::kIdentity:
      return features;
    case Kind::kSelection: {
      std::vector<std::pair<int64_t, double>> out;
      auto it = selection_.find(ad);
      if (it == selection_.end()) return out;
      for (const auto& f : features) {
        if (it->second.count(f.first)) out.push_back(f);
      }
      return out;
    }
    case Kind::kFEx: {
      std::unordered_map<int64_t, double> cats;
      for (const auto& [kw, v] : features) {
        for (int64_t c : FExCategories(kw, num_categories_)) cats[c] += v;
      }
      std::vector<std::pair<int64_t, double>> out(cats.begin(), cats.end());
      std::sort(out.begin(), out.end());
      return out;
    }
  }
  return {};
}

size_t ReductionScheme::DimensionsFor(int64_t ad) const {
  switch (kind_) {
    case Kind::kIdentity:
      return 0;  // unbounded — callers report the raw vocabulary size
    case Kind::kSelection: {
      auto it = selection_.find(ad);
      return it == selection_.end() ? 0 : it->second.size();
    }
    case Kind::kFEx:
      return static_cast<size_t>(num_categories_);
  }
  return 0;
}

}  // namespace timr::bt
