#include "bt/queries.h"

#include <cmath>

namespace timr::bt {

using temporal::AlterLifetimeSpec;
using temporal::PartitionSpec;
using temporal::Query;

Query BtInput() { return Query::Input(kBtInput, UnifiedSchema()); }

namespace {

/// The per-user bot detector of Figure 11: within one user's sub-stream,
/// count clicks and searches over a hopping window and keep intervals where
/// either count exceeds its threshold.
Query PerUserBotDetector(Query user_stream, const BtQueryConfig& config) {
  auto branch = [&](int64_t stream_id, int64_t threshold) {
    return user_stream.WhereEq(kColStreamId, Value(stream_id))
        .HoppingWindow(config.profile_window, config.bot_hop)
        .Count("cnt")
        .WhereCmp("cnt", temporal::CmpOp::kGt, Value(threshold));
  };
  Query clicks = branch(kStreamClick, config.bot_click_threshold);
  Query searches = branch(kStreamKeyword, config.bot_search_threshold);
  return Query::Union(clicks, searches);
}

}  // namespace

Query BotStream(const Query& input, const BtQueryConfig& config) {
  return input.GroupApply({kColUserId}, [&](Query user_stream) {
    return PerUserBotDetector(std::move(user_stream), config);
  });
}

Query BotElimination(const Query& input, const BtQueryConfig& config) {
  // AntiSemiJoin the original point stream with the bot intervals: only
  // events of users currently on the bot list are suppressed.
  return Query::AntiSemiJoin(input, BotStream(input, config), {kColUserId},
                             {kColUserId});
}

Schema TrainDataSchema() {
  return Schema::Of({{"Label", ValueType::kInt64},
                     {"UserId", ValueType::kInt64},
                     {"AdId", ValueType::kInt64},
                     {"Keyword", ValueType::kInt64},
                     {"KwCount", ValueType::kInt64}});
}

Query GenTrainData(const Query& clean_input, const BtQueryConfig& config,
                   Annotation annotation) {
  Query input = clean_input;
  if (annotation == Annotation::kStandard) {
    // Example 3's optimized choice: one fragment partitioned by {UserId};
    // a {UserId} partitioning implies a {UserId, Keyword} partitioning for
    // the UBP GroupApply.
    input = input.Exchange(PartitionSpec::ByKeys({kColUserId}));
  }

  // --- Click / non-click examples (paper: S1). ---
  Query impressions = input.WhereEq(kColStreamId, Value(kStreamImpression));
  Query clicks = input.WhereEq(kColStreamId, Value(kStreamClick));
  // Figure 12's "LE = OldLE - 5min": a click covers the preceding horizon so
  // the AntiSemiJoin removes the impression it resulted from.
  Query clicks_back = clicks.AlterLifetime(AlterLifetimeSpec::ShiftAndWindow(
      -config.click_horizon, config.click_horizon + temporal::kTick));
  Query non_clicks = Query::AntiSemiJoin(impressions, clicks_back,
                                         {kColUserId, kColKwAdId},
                                         {kColUserId, kColKwAdId});
  Query examples = Query::Union(non_clicks, clicks);  // StreamId is the label

  // --- Per-(user, keyword) behavior profiles, refreshed on every activity
  // (paper: S2, the sparse UBP representation). ---
  Query keywords = input.WhereEq(kColStreamId, Value(kStreamKeyword));
  if (annotation == Annotation::kNaive) {
    keywords = keywords.Exchange(PartitionSpec::ByKeys({kColUserId, kColKwAdId}));
  }
  Query ubp = keywords.GroupApply({kColUserId, kColKwAdId}, [&](Query g) {
    return g.Window(config.profile_window).Count("KwCount");
  });
  if (annotation == Annotation::kNaive) {
    ubp = ubp.Exchange(PartitionSpec::ByKeys({kColUserId}));
  }

  // --- Attach the profile active at each example's instant. ---
  Query joined = Query::TemporalJoin(examples, ubp, {kColUserId}, {kColUserId});
  Schema js = joined.schema();
  const int label = js.IndexOf(kColStreamId).ValueOrDie();
  const int user = js.IndexOf(kColUserId).ValueOrDie();
  const int ad = js.IndexOf(kColKwAdId).ValueOrDie();
  // The UBP side's key columns got collision-suffixed by Concat.
  const int keyword = js.IndexOf("KwAdId_2").ValueOrDie();
  const int kw_count = js.IndexOf("KwCount").ValueOrDie();
  temporal::ProjectSpec spec;
  spec.exprs.push_back(temporal::ProjectExpr::Column("Label", label));
  spec.exprs.push_back(temporal::ProjectExpr::Column("UserId", user));
  spec.exprs.push_back(temporal::ProjectExpr::Column("AdId", ad));
  spec.exprs.push_back(temporal::ProjectExpr::Column("Keyword", keyword));
  spec.exprs.push_back(temporal::ProjectExpr::Column("KwCount", kw_count));
  return joined.Project(std::move(spec));
}

Schema FeatureScoreSchema() {
  return Schema::Of({{"AdId", ValueType::kInt64},
                     {"Keyword", ValueType::kInt64},
                     {"ClicksWith", ValueType::kInt64},
                     {"ExamplesWith", ValueType::kInt64},
                     {"ClicksTotal", ValueType::kInt64},
                     {"ExamplesTotal", ValueType::kInt64},
                     {"Z", ValueType::kDouble}});
}

double TwoProportionZ(int64_t clicks_with, int64_t examples_with,
                      int64_t clicks_total, int64_t examples_total,
                      int64_t min_support) {
  const int64_t clicks_without = clicks_total - clicks_with;
  const int64_t examples_without = examples_total - examples_with;
  if (examples_with < min_support || examples_without < min_support ||
      clicks_without < 1) {
    return 0.0;
  }
  // Laplace-smoothed proportions. The paper's >= 5-successes-per-side rule
  // keeps the unpooled statistic away from its p(1-p)=0 degeneracy; at
  // simulation scale strong negatives legitimately have ~0 clicks-with, so we
  // regularize instead — half-a-click smoothing bounds |z| by the actual
  // observation volume and leaves well-supported scores essentially unchanged.
  const double pk = (static_cast<double>(clicks_with) + 0.5) /
                    (static_cast<double>(examples_with) + 1.0);
  const double pn = (static_cast<double>(clicks_without) + 0.5) /
                    (static_cast<double>(examples_without) + 1.0);
  const double var = pk * (1 - pk) / static_cast<double>(examples_with) +
                     pn * (1 - pn) / static_cast<double>(examples_without);
  if (var <= 0) return 0.0;
  return (pk - pn) / std::sqrt(var);
}

Query FeatureScores(const Query& clean_input, const Query& train_data,
                    const BtQueryConfig& config, Annotation annotation) {
  const temporal::Timestamp period = config.selection_period;

  // TotalCount (Figure 13 left): per-ad click and impression totals over the
  // elimination period, computed from the clean composite stream.
  auto totals = [&](Query q, std::vector<std::string> keys, const char* out) {
    return q.GroupApply(std::move(keys), [&](Query g) {
      return g.HoppingWindow(period, period).Count(out);
    });
  };

  // Rename the ad column to AdId up front so every downstream partitioning
  // key is {AdId} regardless of which side it came from — exchanges feeding
  // one fragment must agree on the key (paper footnote 1).
  temporal::ProjectSpec label_ad;
  label_ad.exprs.push_back(temporal::ProjectExpr::Column("Label", 0));
  label_ad.exprs.push_back(temporal::ProjectExpr::Column("AdId", 2));
  Query per_ad =
      clean_input
          .WhereCmp(kColStreamId, temporal::CmpOp::kNe, Value(kStreamKeyword))
          .Project(std::move(label_ad));
  Query train = train_data;
  if (annotation != Annotation::kNone) {
    per_ad = per_ad.Exchange(PartitionSpec::ByKeys({"AdId"}));
    train = train.Exchange(PartitionSpec::ByKeys({"AdId", "Keyword"}));
  }

  // Click counts are computed as Sum(Label) over the *unfiltered* stream
  // (labels are 0/1), not as Count over a click-filtered stream: a filtered
  // Count emits nothing for keywords whose examples were never clicked, and
  // the subsequent inner join would silently drop exactly the strongly
  // negative keywords the z-test is after.
  auto sums = [&](Query q, std::vector<std::string> keys, const char* col,
                  const char* out) {
    return q.GroupApply(std::move(keys), [&](Query g) {
      return g.HoppingWindow(period, period)
          .Aggregate(temporal::AggregateSpec::Sum(col, out));
    });
  };

  // Every impression becomes exactly one example (click or non-click), so the
  // per-ad example total is the impression count.
  Query total_all =
      totals(per_ad.WhereEq("Label", Value(kStreamImpression)), {"AdId"},
             "ExamplesTotal");
  Query total_clicks = sums(per_ad, {"AdId"}, "Label", "ClicksTotal");
  // PerKWCount (Figure 13 right): counts over the training rows, which carry
  // one row per (example, profile keyword).
  Query per_kw_all = totals(train, {"AdId", "Keyword"}, "ExamplesWith");
  Query per_kw_clicks = sums(train, {"AdId", "Keyword"}, "Label", "ClicksWith");

  Query ad_totals =
      Query::TemporalJoin(total_clicks, total_all, {"AdId"}, {"AdId"});
  Query kw_counts = Query::TemporalJoin(per_kw_clicks, per_kw_all,
                                        {"AdId", "Keyword"}, {"AdId", "Keyword"});
  if (annotation != Annotation::kNone) {
    // CalcScore's join brings the per-keyword stream to the per-ad totals.
    kw_counts = kw_counts.Exchange(PartitionSpec::ByKeys({"AdId"}));
    ad_totals = ad_totals.Exchange(PartitionSpec::ByKeys({"AdId"}));
  }
  Query scored = Query::TemporalJoin(kw_counts, ad_totals, {"AdId"}, {"AdId"});

  Schema ss = scored.schema();
  const int ad_idx = ss.IndexOf("AdId").ValueOrDie();
  const int kw_idx = ss.IndexOf("Keyword").ValueOrDie();
  const int ck = ss.IndexOf("ClicksWith").ValueOrDie();
  const int ik = ss.IndexOf("ExamplesWith").ValueOrDie();
  const int c = ss.IndexOf("ClicksTotal").ValueOrDie();
  const int i_all = ss.IndexOf("ExamplesTotal").ValueOrDie();
  return scored.Project(
      [=](const Row& r) {
        // ClicksWith / ClicksTotal come from Sum and are doubles holding
        // integral values; coerce back to counts.
        const auto cw = static_cast<int64_t>(r[ck].AsNumeric() + 0.5);
        const auto ct = static_cast<int64_t>(r[c].AsNumeric() + 0.5);
        const double z =
            TwoProportionZ(cw, r[ik].AsInt64(), ct, r[i_all].AsInt64());
        return Row{r[ad_idx], r[kw_idx],  Value(cw),
                   r[ik],     Value(ct),  r[i_all],
                   Value(z)};
      },
      FeatureScoreSchema());
}

std::vector<std::pair<std::string, temporal::PlanNodePtr>> BtCqSuite(
    const BtQueryConfig& config) {
  std::vector<std::pair<std::string, temporal::PlanNodePtr>> suite;
  auto add = [&suite](const char* name, const Query& q) {
    suite.emplace_back(name, q.node());
  };
  // Every entry rebuilds its chain from a fresh BtInput(), so any sub-plan
  // the sharing analysis reports as common is a genuine structural
  // repetition, not an artifact of shared nodes.
  auto clean = [&config] { return BotElimination(BtInput(), config); };
  auto filtered = [&clean](int64_t stream_id) {
    return clean().WhereEq(kColStreamId, Value(stream_id));
  };

  // The pipeline stages themselves.
  add("bot_stream", BotStream(BtInput(), config));
  add("bot_elimination", clean());
  add("train_data", GenTrainData(clean(), config));
  {
    Query c = clean();
    add("feature_scores", FeatureScores(c, GenTrainData(c, config), config));
  }
  add("bt_standard", BtFeaturePipeline(config, Annotation::kStandard));
  add("bt_naive", BtFeaturePipeline(config, Annotation::kNaive));

  // Cleaned per-stream views feeding downstream consumers.
  add("clean_clicks", filtered(kStreamClick));
  add("clean_impressions", filtered(kStreamImpression));
  add("clean_keywords", filtered(kStreamKeyword));

  // Ad-level monitoring: click/impression rates and their ratio.
  auto per_ad_rate = [&](int64_t stream_id, const char* out) {
    return filtered(stream_id).GroupApply(
        {kColKwAdId}, [&config, out](Query g) {
          return g.Window(config.profile_window).Count(out);
        });
  };
  Query ad_clicks = per_ad_rate(kStreamClick, "Clicks");
  Query ad_impressions = per_ad_rate(kStreamImpression, "Impressions");
  add("ad_clicks", ad_clicks);
  add("ad_impressions", ad_impressions);
  {
    Query joined = Query::TemporalJoin(ad_clicks, ad_impressions, {kColKwAdId},
                                       {kColKwAdId});
    Schema js = joined.schema();
    temporal::ProjectSpec ctr;
    ctr.exprs.push_back(temporal::ProjectExpr::Column(
        "AdId", js.IndexOf(kColKwAdId).ValueOrDie()));
    ctr.exprs.push_back(temporal::ProjectExpr::Arith(
        "Ctr", js.IndexOf("Clicks").ValueOrDie(),
        temporal::ProjectExpr::ArithOp::kDiv,
        js.IndexOf("Impressions").ValueOrDie()));
    add("ad_ctr", joined.Project(std::move(ctr)));
  }

  // User-level monitoring.
  add("user_activity", clean().GroupApply({kColUserId}, [&config](Query g) {
    return g.Window(config.profile_window).Count("Events");
  }));
  add("ubp", filtered(kStreamKeyword)
                 .GroupApply({kColUserId, kColKwAdId}, [&config](Query g) {
                   return g.Window(config.profile_window).Count("KwCount");
                 }));

  // The S1 example stream of Figure 12, standalone (GenTrainData's prefix).
  {
    Query input = clean();
    Query impressions = input.WhereEq(kColStreamId, Value(kStreamImpression));
    Query clicks = input.WhereEq(kColStreamId, Value(kStreamClick));
    Query clicks_back = clicks.AlterLifetime(AlterLifetimeSpec::ShiftAndWindow(
        -config.click_horizon, config.click_horizon + temporal::kTick));
    Query non_clicks = Query::AntiSemiJoin(impressions, clicks_back,
                                           {kColUserId, kColKwAdId},
                                           {kColUserId, kColKwAdId});
    add("examples", Query::Union(non_clicks, clicks));
  }

  // Bot-list observability: the two detector branches and the live bot count.
  auto bot_branch = [&config](int64_t stream_id, int64_t threshold) {
    return BtInput().GroupApply({kColUserId}, [&](Query g) {
      return g.WhereEq(kColStreamId, Value(stream_id))
          .HoppingWindow(config.profile_window, config.bot_hop)
          .Count("cnt")
          .WhereCmp("cnt", temporal::CmpOp::kGt, Value(threshold));
    });
  };
  add("bot_clickers", bot_branch(kStreamClick, config.bot_click_threshold));
  add("bot_searchers",
      bot_branch(kStreamKeyword, config.bot_search_threshold));
  add("active_bots", BotStream(BtInput(), config)
                         .HoppingWindow(config.bot_hop, config.bot_hop)
                         .Count("ActiveBots"));

  // Volume dashboards.
  add("hourly_volume",
      clean().HoppingWindow(temporal::kHour, temporal::kHour).Count("Events"));
  add("keyword_volume",
      filtered(kStreamKeyword).GroupApply({kColKwAdId}, [&config](Query g) {
        return g.HoppingWindow(config.selection_period, config.selection_period)
            .Count("Searches");
      }));
  return suite;
}

Query BtFeaturePipeline(const BtQueryConfig& config, Annotation annotation) {
  Query input = BtInput();
  if (annotation != Annotation::kNone) {
    input = input.Exchange(PartitionSpec::ByKeys({kColUserId}));
  }
  Query clean = BotElimination(input, config);
  // Materialize the cleaned stream at a fragment boundary so both consumers
  // (GenTrainData and the per-ad totals) read it instead of recomputing it.
  Query clean_by_user =
      annotation != Annotation::kNone
          ? clean.Exchange(PartitionSpec::ByKeys({kColUserId}))
          : clean;
  Query train = GenTrainData(clean_by_user, config, Annotation::kNone);
  return FeatureScores(clean, train, config, annotation);
}

}  // namespace timr::bt
