// Run the full BT CQ catalog (queries.h BtCqSuite) as ONE merged TiMR job
// with shared-fragment elimination (timr/suite.h, ROADMAP 5a): the
// bot-elimination / UBP prefixes that repeat across the ~20 CQs execute once
// and fan out. The per-query outputs are the same temporal relations an
// independent RunPlan per CQ produces, returned in canonical event order.

#pragma once

#include <map>
#include <string>
#include <vector>

#include "bt/queries.h"
#include "common/status.h"
#include "mr/cluster.h"
#include "temporal/event.h"
#include "timr/suite.h"

namespace timr::bt {

/// Wrap a unified BT log (point events over UnifiedSchema) into the store
/// layout the suite reads: store[kBtInput] in point row layout.
Status LoadBtSuiteStore(const std::vector<temporal::Event>& log_events,
                        std::map<std::string, mr::Dataset>* store);

/// Build BtCqSuite(config) and run it through RunPlanSuite against `store`
/// (which must hold kBtInput; see LoadBtSuiteStore). Intermediate and
/// per-query output datasets are added to the store.
Result<framework::SuiteRunResult> RunBtCqSuite(
    mr::LocalCluster* cluster, std::map<std::string, mr::Dataset>* store,
    const BtQueryConfig& config = BtQueryConfig(),
    const framework::SuiteOptions& options = framework::SuiteOptions());

}  // namespace timr::bt
