// Data-reduction schemes compared in the paper's §V-C:
//  - KE-z:   keyword elimination by two-proportion z-score (the contribution);
//  - KE-pop: keep the most popular keywords by click count (Chen et al. [7]);
//  - F-Ex:   static feature extraction onto a ~2000-category concept
//            hierarchy (the production baseline).

#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "temporal/event.h"

namespace timr::bt {

/// Parsed row of FeatureScoreSchema.
struct FeatureScore {
  int64_t ad = 0;
  int64_t keyword = 0;
  int64_t clicks_with = 0;
  int64_t examples_with = 0;
  int64_t clicks_total = 0;
  int64_t examples_total = 0;
  double z = 0.0;

  /// Support requirement. The paper requires >= 5 clicks with the keyword —
  /// trivially met at terabyte scale but structurally unsatisfiable for
  /// *negative* keywords at simulation scale (a strong negative suppresses
  /// the very clicks that would prove it). We therefore gate on observation
  /// volume: enough examples on each side and >= 5 clicks without the
  /// keyword. DESIGN.md records this substitution.
  bool HasSupport(int64_t min_examples = 15) const;
};

/// Parse FeatureScores output events into structs.
std::vector<FeatureScore> ScoresFromEvents(
    const std::vector<temporal::Event>& events);

/// ad id -> retained keyword ids.
using Selection = std::unordered_map<int64_t, std::unordered_set<int64_t>>;

/// KE-z: retain keywords with support and |z| >= threshold. threshold = 0
/// keeps every supported keyword (the paper's "z = 0" row in Figure 20).
Selection SelectKeZ(const std::vector<FeatureScore>& scores, double z_threshold);

/// Positive-only / negative-only splits of a KE-z selection (Figure 21).
Selection SelectKeZSigned(const std::vector<FeatureScore>& scores,
                          double z_threshold, bool positive);

/// KE-pop: per ad, the top-n keywords by click count in user histories.
Selection SelectKePop(const std::vector<FeatureScore>& scores, size_t top_n);

/// F-Ex: deterministic keyword -> categories mapping standing in for the
/// production content-categorization engine. Every keyword maps to up to 3 of
/// `num_categories` categories — static, so it can neither adapt to new
/// keywords nor drop uninformative ones (the weaknesses §IV-B.3 describes).
std::vector<int64_t> FExCategories(int64_t keyword, int num_categories = 2000);

/// A reduction applied to example features before model building / scoring.
class ReductionScheme {
 public:
  static ReductionScheme KeZ(std::string name,
                             const std::vector<FeatureScore>& scores,
                             double z_threshold);
  static ReductionScheme KePop(std::string name,
                               const std::vector<FeatureScore>& scores,
                               size_t top_n);
  static ReductionScheme FEx(std::string name, int num_categories = 2000);
  /// No reduction at all (upper-bound memory reference).
  static ReductionScheme Identity(std::string name);

  const std::string& name() const { return name_; }

  /// Map an example's raw (keyword, count) features for ad `ad`.
  std::vector<std::pair<int64_t, double>> Reduce(
      int64_t ad, const std::vector<std::pair<int64_t, double>>& features) const;

  /// Number of retained dimensions for `ad` (Figure 20's y-axis).
  size_t DimensionsFor(int64_t ad) const;

  const Selection& selection() const { return selection_; }

 private:
  enum class Kind : uint8_t { kSelection, kFEx, kIdentity };
  std::string name_;
  Kind kind_ = Kind::kIdentity;
  Selection selection_;
  int num_categories_ = 0;
};

}  // namespace timr::bt
