#include "bt/evaluation.h"

#include <algorithm>
#include <unordered_map>

#include "common/hash.h"
#include "common/logging.h"
#include "common/stopwatch.h"

namespace timr::bt {

std::vector<Example> ExamplesFromTrainRows(
    const std::vector<temporal::Event>& events) {
  // Row layout: [Label, UserId, AdId, Keyword, KwCount]; the example identity
  // is (UserId, AdId, timestamp).
  struct Key {
    int64_t user, ad;
    temporal::Timestamp t;
    bool operator==(const Key& o) const {
      return user == o.user && ad == o.ad && t == o.t;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return HashCombine(HashCombine(HashMix(k.user), HashMix(k.ad)),
                         HashMix(static_cast<uint64_t>(k.t)));
    }
  };
  std::unordered_map<Key, size_t, KeyHash> index;
  std::vector<Example> out;
  for (const auto& e : events) {
    TIMR_CHECK(e.payload.size() == 5) << "not a TrainDataSchema event";
    Key key{e.payload[1].AsInt64(), e.payload[2].AsInt64(), e.le};
    auto [it, inserted] = index.emplace(key, out.size());
    if (inserted) {
      Example ex;
      ex.user = key.user;
      ex.ad = key.ad;
      ex.t = key.t;
      ex.clicked = e.payload[0].AsInt64() == 1;
      out.push_back(std::move(ex));
    }
    out[it->second].features.emplace_back(e.payload[3].AsInt64(),
                                          e.payload[4].AsNumeric());
  }
  return out;
}

SchemeEvaluation EvaluateScheme(const ReductionScheme& scheme,
                                const std::vector<Example>& train_examples,
                                const std::vector<Example>& test_examples,
                                const std::vector<int64_t>& ads,
                                const LrOptions& lr_options, int curve_points) {
  SchemeEvaluation eval;
  eval.scheme = scheme.name();

  for (int64_t ad : ads) {
    AdEvaluation ad_eval;
    ad_eval.ad = ad;
    ad_eval.dimensions = scheme.DimensionsFor(ad);

    // Reduce the train set and fit.
    std::vector<SparseExample> train;
    size_t total_entries = 0;
    for (const Example& ex : train_examples) {
      if (ex.ad != ad) continue;
      SparseExample se;
      se.clicked = ex.clicked;
      se.features = scheme.Reduce(ad, ex.features);
      total_entries += se.features.size();
      train.push_back(std::move(se));
    }
    if (train.empty()) continue;
    ad_eval.avg_entries_per_ubp =
        static_cast<double>(total_entries) / static_cast<double>(train.size());

    Stopwatch learn;
    LrModel model = TrainLogisticRegression(train, lr_options);
    ad_eval.learn_seconds = learn.ElapsedSeconds();

    // Score the test set.
    struct Scored {
      double score;
      bool clicked;
    };
    std::vector<Scored> scored;
    size_t clicks = 0;
    for (const Example& ex : test_examples) {
      if (ex.ad != ad) continue;
      scored.push_back({model.Predict(scheme.Reduce(ad, ex.features)),
                        ex.clicked});
      if (ex.clicked) ++clicks;
    }
    if (scored.empty()) continue;
    ad_eval.base_ctr =
        static_cast<double>(clicks) / static_cast<double>(scored.size());

    // Threshold sweep on score quantiles: coverage from ~1 down to ~0.
    std::sort(scored.begin(), scored.end(),
              [](const Scored& a, const Scored& b) { return a.score > b.score; });
    for (int p = 0; p < curve_points; ++p) {
      const size_t take = std::max<size_t>(
          1, scored.size() * (curve_points - p) / curve_points);
      size_t sel_clicks = 0;
      for (size_t i = 0; i < take; ++i) {
        if (scored[i].clicked) ++sel_clicks;
      }
      CurvePoint pt;
      pt.threshold = scored[take - 1].score;
      pt.coverage = static_cast<double>(take) / scored.size();
      pt.ctr = static_cast<double>(sel_clicks) / static_cast<double>(take);
      pt.lift = ad_eval.base_ctr > 0 ? pt.ctr / ad_eval.base_ctr : 0;
      ad_eval.curve.push_back(pt);
    }
    eval.per_ad[ad] = std::move(ad_eval);
  }
  return eval;
}

std::vector<KeywordImpactRow> ComputeKeywordImpact(
    const Selection& positive, const Selection& negative,
    const std::vector<Example>& test_examples, int64_t ad) {
  const std::unordered_set<int64_t>* pos = nullptr;
  const std::unordered_set<int64_t>* neg = nullptr;
  if (auto it = positive.find(ad); it != positive.end()) pos = &it->second;
  if (auto it = negative.find(ad); it != negative.end()) neg = &it->second;

  struct Counter {
    int64_t clicks = 0, impressions = 0;
    void Add(bool clicked) {
      ++impressions;
      if (clicked) ++clicks;
    }
    double Ctr() const {
      return impressions > 0 ? static_cast<double>(clicks) / impressions : 0;
    }
  };
  Counter all, ge1_pos, ge1_neg, only_pos, only_neg;

  for (const Example& ex : test_examples) {
    if (ex.ad != ad) continue;
    bool has_pos = false, has_neg = false;
    for (const auto& [kw, v] : ex.features) {
      if (pos && pos->count(kw)) has_pos = true;
      if (neg && neg->count(kw)) has_neg = true;
    }
    all.Add(ex.clicked);
    if (has_pos) ge1_pos.Add(ex.clicked);
    if (has_neg) ge1_neg.Add(ex.clicked);
    if (has_pos && !has_neg) only_pos.Add(ex.clicked);
    if (has_neg && !has_pos) only_neg.Add(ex.clicked);
  }

  const double base = all.Ctr();
  auto row = [&](const char* name, const Counter& c) {
    KeywordImpactRow r;
    r.subset = name;
    r.clicks = c.clicks;
    r.impressions = c.impressions;
    r.ctr = c.Ctr();
    r.lift_pct = base > 0 ? (c.Ctr() / base - 1.0) * 100.0 : 0;
    return r;
  };
  return {row("All", all), row(">=1 pos kw", ge1_pos), row(">=1 neg kw", ge1_neg),
          row("Only pos kws", only_pos), row("Only neg kws", only_neg)};
}

}  // namespace timr::bt
