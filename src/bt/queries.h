// The ~20 temporal queries making up the end-to-end BT pipeline (paper §IV-B):
// bot elimination, training-data generation (UBPs), and feature scoring by
// two-proportion z-test. Each builder returns a CQ over the unified BT stream;
// pass an annotation mode to get the TiMR-ready (exchange-annotated) form.

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "bt/schema.h"
#include "temporal/query.h"

namespace timr::bt {

struct BtQueryConfig {
  /// τ: the short-term behavior window (paper uses 6 hours, §IV-A).
  temporal::Timestamp profile_window = 6 * temporal::kHour;

  /// Bot list refresh cadence and thresholds (paper §IV-B.1, Figure 11).
  temporal::Timestamp bot_hop = 15 * temporal::kMinute;
  int64_t bot_click_threshold = 100;   // T1
  int64_t bot_search_threshold = 100;  // T2

  /// d: an impression followed by a click within this horizon is a click
  /// example, otherwise a non-click (paper §IV-B.2, Figure 12).
  temporal::Timestamp click_horizon = 5 * temporal::kMinute;

  /// The interval over which feature selection counts are accumulated
  /// (paper §IV-B.3: "h covering the time interval over which we perform
  /// keyword elimination"). Must cover the training data's time range.
  temporal::Timestamp selection_period = 4 * temporal::kDay;
};

/// How builders annotate plans for TiMR (paper §III-A step 2 / Example 3).
enum class Annotation : uint8_t {
  kNone,      // plain CQ for single-node execution
  kStandard,  // the optimizer's choice (single {UserId} fragment upstream)
  kNaive,     // Example 3's naive plan: {UserId,Keyword} then {UserId}
};

/// The unified BT source.
temporal::Query BtInput();

/// Figure 11: remove every event of users exceeding the click or search
/// thresholds within the profile window. Output schema = unified schema.
temporal::Query BotElimination(const temporal::Query& input,
                               const BtQueryConfig& config);

/// The bot sub-stream itself ([UserId, cnt] intervals while a user is over
/// threshold) — used by tests and the live-monitoring example.
temporal::Query BotStream(const temporal::Query& input,
                          const BtQueryConfig& config);

/// Output schema of GenTrainData: one row per (ad impression example, profile
/// keyword): [Label (1=click/0=non-click), UserId, AdId, Keyword, KwCount].
/// The example's timestamp is the event time.
Schema TrainDataSchema();

/// Figure 12: click/non-click examples joined with the user's behavior
/// profile at the example's instant.
temporal::Query GenTrainData(const temporal::Query& clean_input,
                             const BtQueryConfig& config,
                             Annotation annotation = Annotation::kNone);

/// Output schema of FeatureScores:
/// [AdId, Keyword, ClicksWith, ExamplesWith, ClicksTotal, ExamplesTotal, Z].
Schema FeatureScoreSchema();

/// Figure 13: per-(ad, keyword) z-scores for the unpooled two-proportion test
/// (paper §IV-B.3). Keywords without the minimum support emit Z = 0. The raw
/// counts stay in the output so benches can sweep thresholds without
/// re-running the pipeline.
temporal::Query FeatureScores(const temporal::Query& clean_input,
                              const temporal::Query& train_data,
                              const BtQueryConfig& config,
                              Annotation annotation = Annotation::kNone);

/// Convenience: the full chain input -> BotElimination -> GenTrainData ->
/// FeatureScores with the given annotation.
temporal::Query BtFeaturePipeline(const BtQueryConfig& config,
                                  Annotation annotation);

/// The catalog of shipped BT continuous queries: the pipeline stages plus the
/// monitoring/reporting CQs that run alongside them, each built independently
/// from a fresh BtInput() (no plan nodes shared between entries). This is the
/// input to the cross-query sharing analysis (`timr_lint --share-report`):
/// the bot-elimination and UBP prefixes repeat structurally across most of
/// these plans, and the analysis layer's fingerprint pass must find them —
/// they are exactly the sub-plans a shared-computation runtime (ROADMAP item
/// 5a) would materialize once and fan out.
std::vector<std::pair<std::string, temporal::PlanNodePtr>> BtCqSuite(
    const BtQueryConfig& config = BtQueryConfig());

/// The unpooled two-proportion z-score (paper §IV-B.3). `clicks_with` /
/// `examples_with` are C_K / I_K; `clicks_total` / `examples_total` are C / I.
/// Returns 0 when either side lacks `min_support` observations.
double TwoProportionZ(int64_t clicks_with, int64_t examples_with,
                      int64_t clicks_total, int64_t examples_total,
                      int64_t min_support = 5);

}  // namespace timr::bt
