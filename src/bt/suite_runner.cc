#include "bt/suite_runner.h"

#include <utility>

#include "bt/schema.h"
#include "temporal/convert.h"

namespace timr::bt {

Status LoadBtSuiteStore(const std::vector<temporal::Event>& log_events,
                        std::map<std::string, mr::Dataset>* store) {
  TIMR_ASSIGN_OR_RETURN(std::vector<Row> rows,
                        temporal::RowsFromEvents(log_events, false));
  (*store)[kBtInput] = mr::Dataset::FromRows(
      temporal::PointRowSchema(UnifiedSchema()), std::move(rows));
  return Status::OK();
}

Result<framework::SuiteRunResult> RunBtCqSuite(
    mr::LocalCluster* cluster, std::map<std::string, mr::Dataset>* store,
    const BtQueryConfig& config, const framework::SuiteOptions& options) {
  return framework::RunPlanSuite(cluster, BtCqSuite(config), store, options);
}

}  // namespace timr::bt
