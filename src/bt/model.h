// Model building and scoring (paper §IV-B.4): logistic regression over
// reduced UBPs, trained periodically inside a hopping-window UDO, with
// scoring via TemporalJoin against the model stream.

#pragma once

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "temporal/query.h"

namespace timr::bt {

/// One training/scoring example: the (sparse) reduced UBP and the outcome.
struct SparseExample {
  bool clicked = false;
  /// (feature id, count). Feature ids are keyword ids (KE schemes) or
  /// category ids (F-Ex).
  std::vector<std::pair<int64_t, double>> features;
};

struct LrOptions {
  int epochs = 60;
  double learning_rate = 0.15;
  double l2 = 1e-4;
  /// Subsample negatives to `balance_ratio` x positives (paper: "create a
  /// balanced dataset by sampling the negative examples"). <= 0 disables.
  double balance_ratio = 1.0;
  uint64_t seed = 1;
};

/// y = 1 / (1 + exp(-(w0 + w.x))) (paper §IV-B.4).
struct LrModel {
  double bias = 0.0;
  std::unordered_map<int64_t, double> weights;

  double Predict(const std::vector<std::pair<int64_t, double>>& features) const;
};

/// Batch gradient-descent logistic regression. Deterministic in the options.
LrModel TrainLogisticRegression(const std::vector<SparseExample>& examples,
                                const LrOptions& options);

/// Output schema of the model CQ: [AdId, Feature, Weight] where Feature == -1
/// carries the bias term.
Schema ModelSchema();

/// Model-building CQ: GroupApply(AdId) over reduced training rows
/// ([Label, UserId, AdId, Keyword, KwCount]) with an LR UDO recomputing the
/// model every `hop` over the last `window` of data (paper: "periodic
/// recomputation of the LR model, using a UDO over a hopping window").
/// Each model weight event lives for one hop: the model in force at time t is
/// the one trained on data before t.
temporal::Query ModelBuildQuery(const temporal::Query& reduced_train,
                                temporal::Timestamp window,
                                temporal::Timestamp hop,
                                const LrOptions& options = LrOptions());

/// Scoring CQ: every example row joins the model weights valid at its
/// instant; the per-example dot product is a snapshot Sum over the example's
/// feature-weight products (all points at the example's timestamp), and the
/// logistic link is applied in a final projection. Output:
/// [UserId, AdId, Label, Score].
temporal::Query ScoringQuery(const temporal::Query& example_rows,
                             const temporal::Query& model_stream);

}  // namespace timr::bt
