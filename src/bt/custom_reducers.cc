#include "bt/custom_reducers.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "bt/schema.h"
#include "temporal/time.h"

namespace timr::bt {

using temporal::kTick;
using temporal::Timestamp;

namespace {

// Intermediate row layout between the two custom stages:
// [Time, RowType, LabelOrStream, UserId, AdId, Keyword, KwCount]
// RowType 0: training row (one per example-keyword pair).
// RowType 1: clean ad event (impression or click) for the per-ad totals.
Schema MidSchema() {
  return Schema::Of({{"Time", ValueType::kInt64},
                     {"RowType", ValueType::kInt64},
                     {"LabelOrStream", ValueType::kInt64},
                     {"UserId", ValueType::kInt64},
                     {"AdId", ValueType::kInt64},
                     {"Keyword", ValueType::kInt64},
                     {"KwCount", ValueType::kInt64}});
}

// Count of values v in `sorted` with lo < v <= hi (two binary searches).
int64_t CountInWindow(const std::vector<Timestamp>& sorted, Timestamp lo,
                      Timestamp hi) {
  auto a = std::upper_bound(sorted.begin(), sorted.end(), lo);
  auto b = std::upper_bound(sorted.begin(), sorted.end(), hi);
  return b - a;
}

// Per-user stage: bot elimination, non-click detection, profile join.
// Input rows are sorted by Time; each partition holds whole users.
Status UserStageReducer(const BtQueryConfig& config,
                        const std::vector<Row>& rows,
                        std::vector<Row>* output) {
  const Timestamp w = config.profile_window;
  const Timestamp hop = config.bot_hop;
  const Timestamp d = config.click_horizon;

  // First pass: collect per-user activity timelines (raw — bot detection
  // looks at the uncleaned stream, exactly like the CQ's BotStream).
  struct UserData {
    std::vector<Timestamp> clicks;    // any ad
    std::vector<Timestamp> searches;  // any keyword
    std::unordered_map<int64_t, std::vector<Timestamp>> clicks_by_ad;
    std::unordered_map<int64_t, std::vector<Timestamp>> kw_times;
  };
  std::unordered_map<int64_t, UserData> users;
  for (const Row& r : rows) {
    const Timestamp t = r[0].AsInt64();
    const int64_t stream = r[1].AsInt64();
    UserData& u = users[r[2].AsInt64()];
    if (stream == kStreamClick) {
      u.clicks.push_back(t);
      u.clicks_by_ad[r[3].AsInt64()].push_back(t);
    } else if (stream == kStreamKeyword) {
      u.kw_times[r[3].AsInt64()].push_back(t);
      u.searches.push_back(t);
    }
  }

  // A user is a bot *at time t* when the count over the hopping-window
  // snapshot containing t exceeds a threshold: boundary b = floor(t/hop)*hop,
  // window (b - w, b].
  auto is_bot_at = [&](const UserData& u, Timestamp t) {
    const Timestamp b = (t / hop) * hop;
    return CountInWindow(u.clicks, b - w, b) > config.bot_click_threshold ||
           CountInWindow(u.searches, b - w, b) > config.bot_search_threshold;
  };

  // The downstream pipeline sees only the *cleaned* stream: profiles and the
  // non-click test must ignore activity that happened while the user was on
  // the bot list.
  for (auto& [uid, u] : users) {
    auto clean = [&](std::vector<Timestamp>* times) {
      times->erase(std::remove_if(times->begin(), times->end(),
                                  [&](Timestamp t) { return is_bot_at(u, t); }),
                   times->end());
    };
    // NOTE: is_bot_at reads u.clicks / u.searches, so clean the per-key maps
    // first and the detector inputs not at all (detection stays raw).
    for (auto& [kw, times] : u.kw_times) clean(&times);
    for (auto& [ad, times] : u.clicks_by_ad) clean(&times);
  }

  // Second pass: emit training rows and clean ad events.
  for (const Row& r : rows) {
    const Timestamp t = r[0].AsInt64();
    const int64_t stream = r[1].AsInt64();
    const int64_t user = r[2].AsInt64();
    const int64_t ad_or_kw = r[3].AsInt64();
    const UserData& u = users[user];
    if (stream == kStreamKeyword) continue;
    if (is_bot_at(u, t)) continue;

    // Clean ad event for per-ad totals.
    output->push_back(Row{Value(t), Value(int64_t{1}), Value(stream),
                          Value(user), Value(ad_or_kw), Value(int64_t{0}),
                          Value(int64_t{0})});

    // Is this an example? Impressions followed by a click (same user+ad)
    // within [t, t+d] are dropped; the click itself is the positive example.
    int64_t label;
    if (stream == kStreamImpression) {
      auto it = u.clicks_by_ad.find(ad_or_kw);
      if (it != u.clicks_by_ad.end() &&
          CountInWindow(it->second, t - kTick, t + d) > 0) {
        continue;  // became a click example
      }
      label = 0;
    } else {
      label = 1;
    }

    // Join with the profile: every keyword searched in (t - w, t].
    for (const auto& [kw, times] : u.kw_times) {
      const int64_t cnt = CountInWindow(times, t - w, t);
      if (cnt > 0) {
        output->push_back(Row{Value(t), Value(int64_t{0}), Value(label),
                              Value(user), Value(ad_or_kw), Value(kw),
                              Value(cnt)});
      }
    }
  }
  return Status::OK();
}

// Per-ad stage: totals + per-keyword counts + z-scores.
Status AdStageReducer(const std::vector<Row>& rows, std::vector<Row>* output) {
  struct AdCounts {
    int64_t clicks = 0, impressions = 0;
    std::unordered_map<int64_t, std::pair<int64_t, int64_t>> per_kw;  // C_K, I_K
  };
  std::map<int64_t, AdCounts> ads;
  for (const Row& r : rows) {
    const int64_t type = r[1].AsInt64();
    const int64_t ad = r[4].AsInt64();
    AdCounts& c = ads[ad];
    if (type == 1) {
      const int64_t stream = r[2].AsInt64();
      if (stream == kStreamClick) ++c.clicks;
      if (stream == kStreamImpression) ++c.impressions;
    } else {
      auto& [ck, ik] = c.per_kw[r[5].AsInt64()];
      ++ik;
      if (r[2].AsInt64() == 1) ++ck;
    }
  }
  for (const auto& [ad, c] : ads) {
    std::vector<int64_t> kws;
    kws.reserve(c.per_kw.size());
    for (const auto& [kw, counts] : c.per_kw) kws.push_back(kw);
    std::sort(kws.begin(), kws.end());
    for (int64_t kw : kws) {
      const auto& [ck, ik] = c.per_kw.at(kw);
      const double z = TwoProportionZ(ck, ik, c.clicks, c.impressions);
      output->push_back(Row{Value(ad), Value(kw), Value(ck), Value(ik),
                            Value(c.clicks), Value(c.impressions), Value(z)});
    }
  }
  return Status::OK();
}

}  // namespace

Result<CustomBtResult> RunCustomBtJob(mr::LocalCluster* cluster,
                                      std::map<std::string, mr::Dataset>* store,
                                      const BtQueryConfig& config) {
  auto it = store->find(kBtInput);
  if (it == store->end()) {
    return Status::KeyError("store does not hold " + std::string(kBtInput));
  }
  const Schema in_schema = it->second.schema();
  TIMR_ASSIGN_OR_RETURN(std::vector<int> user_key,
                        in_schema.IndicesOf({kColUserId}));

  mr::MRStage stage1;
  stage1.name = "custom_user_stage";
  stage1.inputs = {kBtInput};
  stage1.output = "custom_mid";
  stage1.output_schema = MidSchema();
  stage1.partition_fn = mr::HashPartitioner({user_key});
  stage1.reducer = [config](int, const std::vector<std::vector<Row>>& inputs,
                            std::vector<Row>* output) {
    return UserStageReducer(config, inputs[0], output);
  };

  mr::MRStage stage2;
  stage2.name = "custom_ad_stage";
  stage2.inputs = {"custom_mid"};
  stage2.output = "custom_scores";
  stage2.output_schema = FeatureScoreSchema();
  TIMR_ASSIGN_OR_RETURN(std::vector<int> ad_key, MidSchema().IndicesOf({"AdId"}));
  stage2.partition_fn = mr::HashPartitioner({ad_key});
  stage2.reducer = [](int, const std::vector<std::vector<Row>>& inputs,
                      std::vector<Row>* output) {
    return AdStageReducer(inputs[0], output);
  };

  CustomBtResult result;
  TIMR_ASSIGN_OR_RETURN(result.job_stats,
                        cluster->RunJob({stage1, stage2}, store));
  result.feature_scores = store->at("custom_scores").Gather();
  return result;
}

}  // namespace timr::bt
