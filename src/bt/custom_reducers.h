// The hand-written baseline the paper compares TiMR against (§V-B, Figure 14):
// custom map-reduce reducers implementing the same BT feature pipeline with
// bespoke in-memory data structures instead of temporal queries.
//
// Deliberately written the way such code is written in practice — manual
// sliding windows, two-pointer scans, per-user hash maps — so the Figure 14
// comparison (lines of code, runtime overhead of TiMR's generality) is honest.
// The equivalence test in tests/bt_pipeline_test.cc checks it produces the
// same feature scores as the temporal-query pipeline.

#pragma once

#include <map>
#include <string>

#include "bt/queries.h"
#include "common/status.h"
#include "mr/cluster.h"

namespace timr::bt {

struct CustomBtResult {
  /// Rows of FeatureScoreSchema (no Time columns; the custom pipeline is
  /// offline-only — that is the point the paper makes).
  std::vector<Row> feature_scores;
  mr::JobStats job_stats;
};

/// Run the custom two-stage job: stage 1 partitions by UserId (bot
/// elimination, non-click detection, UBP join), stage 2 partitions by AdId
/// (count aggregation + z-scores). `bt_log` must hold point-layout rows of
/// the unified schema under the name bt::kBtInput.
Result<CustomBtResult> RunCustomBtJob(mr::LocalCluster* cluster,
                                      std::map<std::string, mr::Dataset>* store,
                                      const BtQueryConfig& config);

}  // namespace timr::bt
