#include "bt/model.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/rng.h"
#include "temporal/event.h"

namespace timr::bt {

using temporal::Event;
using temporal::Query;
using temporal::Timestamp;

namespace {

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

}  // namespace

double LrModel::Predict(
    const std::vector<std::pair<int64_t, double>>& features) const {
  double s = bias;
  for (const auto& [f, v] : features) {
    auto it = weights.find(f);
    if (it != weights.end()) s += it->second * v;
  }
  return Sigmoid(s);
}

LrModel TrainLogisticRegression(const std::vector<SparseExample>& examples,
                                const LrOptions& options) {
  LrModel model;
  // Balance the heavily negative-skewed data by subsampling negatives
  // (paper §IV-B.4).
  std::vector<const SparseExample*> train;
  size_t num_pos = 0;
  for (const auto& e : examples) {
    if (e.clicked) ++num_pos;
  }
  if (options.balance_ratio > 0 && num_pos > 0) {
    const double target_neg = options.balance_ratio * static_cast<double>(num_pos);
    const size_t num_neg = examples.size() - num_pos;
    const double keep = num_neg > 0 ? std::min(1.0, target_neg / num_neg) : 1.0;
    Rng rng(options.seed);
    for (const auto& e : examples) {
      if (e.clicked || rng.Bernoulli(keep)) train.push_back(&e);
    }
  } else {
    for (const auto& e : examples) train.push_back(&e);
  }
  if (train.empty()) return model;

  const double n = static_cast<double>(train.size());
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    double grad_bias = 0.0;
    std::unordered_map<int64_t, double> grad;
    for (const SparseExample* e : train) {
      const double p = model.Predict(e->features);
      const double err = (e->clicked ? 1.0 : 0.0) - p;
      grad_bias += err;
      for (const auto& [f, v] : e->features) grad[f] += err * v;
    }
    model.bias += options.learning_rate * grad_bias / n;
    for (const auto& [f, g] : grad) {
      double& w = model.weights[f];
      w += options.learning_rate * (g / n - options.l2 * w);
    }
  }
  return model;
}

Schema ModelSchema() {
  return Schema::Of({{"AdId", ValueType::kInt64},
                     {"Feature", ValueType::kInt64},
                     {"Weight", ValueType::kDouble}});
}

Query ModelBuildQuery(const Query& reduced_train, Timestamp window,
                      Timestamp hop, const LrOptions& options) {
  Schema in = reduced_train.schema();
  const int user = in.IndexOf("UserId").ValueOrDie();
  const int label = in.IndexOf("Label").ValueOrDie();
  const int keyword = in.IndexOf("Keyword").ValueOrDie();
  const int count = in.IndexOf("KwCount").ValueOrDie();

  temporal::UdoFn lr_udo = [=](Timestamp, Timestamp,
                               const std::vector<Event>& active) {
    // Rebuild per-example sparse vectors: rows of one example share the
    // (UserId, timestamp) pair.
    std::map<std::pair<int64_t, Timestamp>, SparseExample> examples;
    for (const Event& e : active) {
      auto& ex = examples[{e.payload[user].AsInt64(), e.le}];
      ex.clicked = e.payload[label].AsInt64() == 1;
      ex.features.emplace_back(e.payload[keyword].AsInt64(),
                               e.payload[count].AsNumeric());
    }
    std::vector<SparseExample> flat;
    flat.reserve(examples.size());
    for (auto& [key, ex] : examples) flat.push_back(std::move(ex));
    LrModel model = TrainLogisticRegression(flat, options);

    std::vector<Row> out;
    out.push_back(Row{Value(int64_t{-1}), Value(model.bias)});
    // Deterministic output order for repeatability.
    std::vector<std::pair<int64_t, double>> sorted(model.weights.begin(),
                                                   model.weights.end());
    std::sort(sorted.begin(), sorted.end());
    for (const auto& [f, w] : sorted) out.push_back(Row{Value(f), Value(w)});
    return out;
  };

  Schema udo_schema = Schema::Of(
      {{"Feature", ValueType::kInt64}, {"Weight", ValueType::kDouble}});
  return reduced_train.GroupApply({"AdId"}, [&](Query g) {
    return g.Udo(window, hop, lr_udo, udo_schema);
  });
}

Query ScoringQuery(const Query& example_rows, const Query& model_stream) {
  // Non-bias weights join each example row on (AdId, Keyword).
  Query weights = model_stream.Where(
      [](const Row& r) { return r[1].AsInt64() >= 0; });
  Query bias = model_stream.WhereEq("Feature", Value(int64_t{-1}));

  Query joined = Query::TemporalJoin(example_rows, weights, {"AdId", "Keyword"},
                                     {"AdId", "Feature"});
  Schema js = joined.schema();
  const int label = js.IndexOf("Label").ValueOrDie();
  const int user = js.IndexOf("UserId").ValueOrDie();
  const int ad = js.IndexOf("AdId").ValueOrDie();
  const int count = js.IndexOf("KwCount").ValueOrDie();
  const int weight = js.IndexOf("Weight").ValueOrDie();
  Query terms = joined.Project(
      [=](const Row& r) {
        return Row{r[user], r[ad], r[label],
                   Value(r[count].AsNumeric() * r[weight].AsDouble())};
      },
      Schema::Of({{"UserId", ValueType::kInt64},
                  {"AdId", ValueType::kInt64},
                  {"Label", ValueType::kInt64},
                  {"Term", ValueType::kDouble}}));

  // All of one example's terms are points at the example's timestamp, so the
  // snapshot Sum *is* the example's dot product.
  Query dots = terms.GroupApply({"UserId", "AdId", "Label"}, [](Query g) {
    return g.Sum("Term", "Dot");
  });

  Query scored = Query::TemporalJoin(dots, bias, {"AdId"}, {"AdId"});
  Schema ss = scored.schema();
  const int s_user = ss.IndexOf("UserId").ValueOrDie();
  const int s_ad = ss.IndexOf("AdId").ValueOrDie();
  const int s_label = ss.IndexOf("Label").ValueOrDie();
  const int s_dot = ss.IndexOf("Dot").ValueOrDie();
  const int s_bias = ss.IndexOf("Weight").ValueOrDie();
  return scored.Project(
      [=](const Row& r) {
        return Row{r[s_user], r[s_ad], r[s_label],
                   Value(Sigmoid(r[s_dot].AsDouble() + r[s_bias].AsDouble()))};
      },
      Schema::Of({{"UserId", ValueType::kInt64},
                  {"AdId", ValueType::kInt64},
                  {"Label", ValueType::kInt64},
                  {"Score", ValueType::kDouble}}));
}

}  // namespace timr::bt
