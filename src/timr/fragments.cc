#include "timr/fragments.h"

#include <optional>
#include <unordered_map>

namespace timr::framework {

using temporal::OpKind;
using temporal::PartitionSpec;
using temporal::PlanNode;
using temporal::PlanNodePtr;

namespace {

bool SpecEqual(const PartitionSpec& a, const PartitionSpec& b) {
  return a.kind == b.kind && a.keys == b.keys && a.span_width == b.span_width &&
         a.overlap == b.overlap;
}

class FragmentCutter {
 public:
  Result<FragmentedPlan> Cut(const PlanNodePtr& root) {
    FragmentedPlan out;
    TIMR_ASSIGN_OR_RETURN(std::string final_name, BuildFragment(root, &out));
    // The final fragment writes the job output dataset.
    TIMR_CHECK(!out.fragments.empty());
    TIMR_CHECK(out.fragments.back().name == final_name);
    out.output_dataset = final_name;
    return out;
  }

 private:
  /// Builds the fragment rooted at `node` (which must NOT itself be an
  /// exchange), appends it (after its dependencies) to out->fragments, and
  /// returns its name.
  Result<std::string> BuildFragment(const PlanNodePtr& node, FragmentedPlan* out) {
    auto memo = fragment_memo_.find(node.get());
    if (memo != fragment_memo_.end()) return memo->second;

    Fragment frag;
    frag.name = "frag_" + std::to_string(counter_++);
    std::optional<PartitionSpec> key;
    // Per-fragment node memo: a plan node shared *within* one fragment is a
    // multicast; sharing across fragments must re-record inputs per fragment.
    FragContext ctx;
    TIMR_ASSIGN_OR_RETURN(frag.root, Extract(node, &frag, &key, &ctx, out));
    if (key.has_value()) {
      frag.key = *key;
    } else {
      // No exchange feeds this fragment: it runs as a single partition.
      frag.key = PartitionSpec::ByKeys({});
    }
    fragment_memo_[node.get()] = frag.name;
    out->fragments.push_back(std::move(frag));
    return out->fragments.back().name;
  }

  /// Per-fragment extraction state: a plan node shared *within* one fragment
  /// is a multicast, and all reads of one dataset collapse to one leaf (the
  /// executor requires unique input names).
  struct FragContext {
    std::unordered_map<const PlanNode*, PlanNodePtr> node_memo;
    std::unordered_map<std::string, PlanNodePtr> leaf_by_dataset;
  };

  /// Copies the sub-plan for the current fragment, cutting at exchanges.
  Result<PlanNodePtr> Extract(const PlanNodePtr& node, Fragment* frag,
                              std::optional<PartitionSpec>* key,
                              FragContext* ctx, FragmentedPlan* out) {
    if (node->kind == OpKind::kExchange) {
      if (key->has_value() && !SpecEqual(**key, node->exchange)) {
        return Status::Invalid(
            "fragment fed by exchanges with conflicting partitioning keys: " +
            (*key)->ToString() + " vs " + node->exchange.ToString() +
            " (paper footnote 1 requires them to be identical)");
      }
      *key = node->exchange;
      const PlanNodePtr& child = node->children[0];
      std::string dataset;
      bool external;
      if (child->kind == OpKind::kInput) {
        dataset = child->name;
        external = true;
      } else {
        TIMR_ASSIGN_OR_RETURN(dataset, BuildFragment(child, out));
        external = false;
      }
      auto existing = ctx->leaf_by_dataset.find(dataset);
      if (existing != ctx->leaf_by_dataset.end()) return existing->second;
      TIMR_ASSIGN_OR_RETURN(Schema payload, child->OutputSchema());
      auto leaf = std::make_shared<PlanNode>();
      leaf->kind = OpKind::kInput;
      leaf->name = dataset;
      leaf->input_schema = std::move(payload);
      ctx->leaf_by_dataset[dataset] = leaf;
      RecordInput(frag, dataset, external);
      return leaf;
    }
    if (node->kind == OpKind::kInput) {
      // Raw source read in place (no repartitioning marker). The stage's map
      // phase will still partition it by the fragment key.
      auto existing = ctx->leaf_by_dataset.find(node->name);
      if (existing != ctx->leaf_by_dataset.end()) return existing->second;
      auto leaf = std::make_shared<PlanNode>(*node);
      ctx->leaf_by_dataset[node->name] = leaf;
      RecordInput(frag, node->name, /*external=*/true);
      return leaf;
    }
    auto copy_it = ctx->node_memo.find(node.get());
    if (copy_it != ctx->node_memo.end()) return copy_it->second;
    auto copy = std::make_shared<PlanNode>(*node);
    for (auto& c : copy->children) {
      TIMR_ASSIGN_OR_RETURN(c, Extract(c, frag, key, ctx, out));
    }
    ctx->node_memo[node.get()] = copy;
    return copy;
  }

  void RecordInput(Fragment* frag, const std::string& dataset, bool external) {
    for (size_t i = 0; i < frag->inputs.size(); ++i) {
      if (frag->inputs[i] == dataset) return;  // multicast: read once
    }
    frag->inputs.push_back(dataset);
    frag->input_is_external.push_back(external);
  }

  int counter_ = 0;
  // exchange-child plan node -> fragment name (multicast across fragments).
  std::unordered_map<const PlanNode*, std::string> fragment_memo_;
};

}  // namespace

Result<FragmentedPlan> MakeFragments(const temporal::PlanNodePtr& annotated_root) {
  if (annotated_root->kind == OpKind::kExchange) {
    return Status::Invalid("plan root must not be an exchange operator");
  }
  FragmentCutter cutter;
  return cutter.Cut(annotated_root);
}

}  // namespace timr::framework
