// TiMR: run temporal CQ plans at scale on the (unmodified) map-reduce
// substrate with the (unmodified) temporal engine embedded inside reducers.
// This is the paper's first contribution (§III).
//
// Pipeline (paper Figure 5):
//   annotated CQ plan --MakeFragments--> {fragment, key} pairs
//                     --CompileFragment--> M-R stages
//                     --LocalCluster::RunJob--> output dataset
//
// Each stage's reducer is the paper's P: it converts partition rows to point
// (or interval) events, pumps them through a freshly instantiated embedded
// engine executing the fragment's CQ (the paper's P'), and converts result
// events back to rows. Repartitioning is hash(key) % partitions — the
// bucketing trick of §III-C.3 — or overlapping temporal spans (§III-B).

#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "mr/cluster.h"
#include "temporal/event.h"
#include "timr/fragments.h"

namespace timr::framework {

struct TimrOptions {
  /// Upper bound on temporal-partitioning span count (guards tiny spans).
  int max_temporal_partitions = 1024;

  /// Collect per-fragment engine event counts (Figure 15 metric).
  bool collect_engine_stats = false;

  /// Morsel size for the embedded engine's input driver: how many events the
  /// reducer packs into one EventBatch before pushing it through the fragment
  /// plan. Output is bit-identical for any value (see Executor::RunBatch);
  /// the knob trades virtual-dispatch amortization against cache footprint.
  /// 0 uses the engine default (Executor::kDefaultBatchSize).
  size_t engine_batch_size = 0;

  /// Whether reducers build columnar (SoA) morsels for fragment inputs whose
  /// consumers have vectorized kernels (see temporal/columnar.h). Output is
  /// bit-identical either way; the knob exists for benchmarks and the
  /// columnar-invariance tests.
  bool engine_columnar = true;

  /// Punctuation thinning for the embedded engine's input driver: one CTI per
  /// this many LE advances of the merged input stream. Output is identical at
  /// any value >= 1 (operators are CTI-granularity-invariant); higher values
  /// trade punctuation traffic against operator state held longer. The
  /// default matches Executor::kDefaultCtiThinning.
  size_t cti_thinning = 16;

  /// Verify the plan statically before running it (schema, exchange
  /// placement, fragment cuts — see analysis/analyzer.h) and insert
  /// ConformanceCheck operators at fragment boundaries that assert the
  /// temporal-stream discipline at runtime (valid lifetimes, CTI-respecting
  /// events, monotone CTIs). Violations fail the run with operator
  /// provenance. On by default; benchmarks measuring raw engine throughput
  /// turn it off (see bench_validate_overhead for the measured cost).
  bool validate_streams = true;

  /// Property-driven exchange elision (optimizer.h): before cutting the plan
  /// into fragments, remove every keyed exchange whose input is provably
  /// already partitioned compatibly (analysis/properties.h). Output is
  /// bit-identical; elided exchanges save a whole shuffle stage each. Off by
  /// default — callers opt in, and elisions are reported in
  /// TimrRunResult::elided_exchanges.
  bool elide_redundant_exchanges = false;

  /// Reducers receive partition rows already sorted by the Time column (the
  /// shuffle contract of mr/stage.h), so the embedded engine's input driver
  /// can skip its defensive re-sort. Debug builds still verify sortedness.
  /// Exists as a knob only so the shuffle-determinism tests can compare both
  /// paths.
  bool assume_sorted_shuffle = true;

  /// Adaptive skew-aware repartitioning (mr/stage.h, ROADMAP 5(b)): when
  /// skew.adaptive_repartition is on, every keyed-exchange stage detects hot
  /// keys from a sampled sketch and splits partitions exceeding
  /// skew.skew_ratio_threshold across skew.hot_key_fanout salted virtual
  /// partitions, coalescing outputs back in canonical order. Valid because a
  /// keyed fragment is per-key decomposable and hash(key) % n co-locates each
  /// key for any n (the §III-A exchange-placement invariant); temporal and
  /// singleton fragments are never split. Output is equivalent up to row
  /// order within a partition (bit-identical whenever nothing splits, and
  /// bit-identical across thread counts / retries / chaos always). A plan may
  /// also opt in per exchange via PartitionSpec::adaptive_split.
  mr::SkewPolicy skew;

  /// Fault-tolerance policy for the run — retry budget, speculative
  /// execution, poison-row quarantine (mr/fault.h). RunPlan installs it on
  /// the cluster with set_fault_tolerance, replacing whatever was there.
  mr::FaultToleranceOptions fault_tolerance;

  /// Multi-process execution (mr/driver.h): with process.workers > 0 every
  /// stage runs on a gang of forked worker processes behind an RPC boundary,
  /// with heartbeats, retries, and worker-loss recovery — output stays
  /// bit-identical to in-process execution. RunPlan installs it on the
  /// cluster with set_process_options, replacing whatever was there.
  mr::ProcessOptions process;

  /// When set, every completed fragment's outputs are checkpointed here and
  /// RunPlan resumes past the longest already-checkpointed prefix, producing
  /// bit-identical final output (mr/checkpoint.h). Not owned.
  mr::CheckpointStore* checkpoint = nullptr;

  /// Chaos hook: simulate driver death after this many completed (and
  /// checkpointed) fragments — RunPlan returns kExecutionError. -1 = never.
  int chaos_kill_after_stages = -1;
};

struct FragmentStats {
  std::string name;
  uint64_t engine_events_consumed = 0;  // summed over partitions
  /// Live counter shared with the stage's reducers (internal plumbing).
  std::shared_ptr<std::atomic<uint64_t>> engine_events;
};

struct TimrRunResult {
  /// The plan's output as events (lifetimes preserved through the interval
  /// row layout).
  std::vector<temporal::Event> output;
  mr::JobStats job_stats;
  FragmentedPlan fragments;
  std::vector<FragmentStats> fragment_stats;
  /// Exchanges removed by property-driven elision (one description each);
  /// empty unless TimrOptions::elide_redundant_exchanges.
  std::vector<std::string> elided_exchanges;
};

/// Min/max Time over the datasets' rows ({0, 0} when all are empty) — the
/// span domain CompileFragment needs for temporally-partitioned fragments.
Result<std::pair<temporal::Timestamp, temporal::Timestamp>> ScanTimeRange(
    const std::vector<const mr::Dataset*>& datasets);

/// Compile one fragment into an M-R stage. `row_schemas[i]` is the stored row
/// layout of fragment.inputs[i]. `time_range` must cover all input timestamps
/// when the fragment uses temporal partitioning.
Result<mr::MRStage> CompileFragment(
    const Fragment& fragment, const std::vector<Schema>& row_schemas,
    int default_partitions, const TimrOptions& options,
    std::pair<temporal::Timestamp, temporal::Timestamp> time_range,
    FragmentStats* stats);

/// Run an annotated plan over the datasets in `store` (external sources in
/// point layout: [Time, payload...]). Intermediate datasets are added to the
/// store under their fragment names.
Result<TimrRunResult> RunPlan(mr::LocalCluster* cluster,
                              const temporal::PlanNodePtr& annotated_root,
                              std::map<std::string, mr::Dataset>* store,
                              const TimrOptions& options = TimrOptions());

/// Convenience: wrap per-source event vectors into a store and RunPlan.
Result<TimrRunResult> RunPlanOnEvents(
    mr::LocalCluster* cluster, const temporal::PlanNodePtr& annotated_root,
    const std::map<std::string, std::pair<Schema, std::vector<temporal::Event>>>&
        inputs,
    const TimrOptions& options = TimrOptions());

}  // namespace timr::framework
