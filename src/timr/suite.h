// Multi-query suite execution with shared-fragment elimination (ROADMAP 5a).
//
// RunPlanSuite takes a set of named CQ plans (the BT pipeline's ~20 CQs),
// consumes the sharing analysis (analysis::SelectSharedFragments, the
// executable form of analysis::BuildShareReport), and rewrites them into ONE
// merged fragment DAG: every verified-equivalent maximal sub-plan is
// instantiated once as a shared MR stage whose output dataset fans out to all
// consumer queries (per Sharon's shared online aggregation). Inside each
// reducer the engine multiplexes multi-consumer operators through TeeOp
// (temporal/tee.h) with copy-on-write batch views; across stages the sharing
// is a plain multi-reader dataset — the last-use/consumable analysis releases
// it only at its final reader, and every per-query output dataset is
// protected from release for the whole job.
//
// Per-query outputs are identical to independent RunPlan runs as temporal
// relations; to make them *byte*-identical regardless of how ties at equal LE
// interleave across the materialized sharing boundary, RunPlanSuite returns
// every query's output in canonical (le, re, payload) order. Compare against
// a SortEventsCanonical'd independent run.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "mr/cluster.h"
#include "temporal/event.h"
#include "temporal/plan.h"
#include "timr/timr.h"

namespace timr::framework {

struct SuiteOptions {
  /// Per-stage execution knobs, identical in meaning to RunPlan's. The
  /// checkpoint / chaos-kill fields apply to the merged DAG's stage sequence.
  TimrOptions timr;

  /// Master switch for the rewrite. Off, the suite still runs as one merged
  /// job but with every query's fragments independent — the bit-identity
  /// tests compare the two settings.
  bool share_fragments = true;
};

/// \brief One shared fragment the merged DAG executed once.
struct SharedFragmentStats {
  std::string dataset;     // the shared stage's output dataset name
  uint64_t hash = 0;       // canonical fingerprint of the shared sub-plan
  size_t num_ops = 0;      // operator count of the shared sub-plan
  size_t occurrences = 0;  // occurrence sites substituted across all queries
  size_t num_consumers = 0;  // merged-DAG fragments reading the dataset
  size_t rows_out = 0;       // rows the shared stage produced (exactly once)
};

struct SuiteRunResult {
  std::vector<std::string> query_names;
  /// Per-query outputs, canonically sorted (parallel to query_names).
  std::vector<std::vector<temporal::Event>> outputs;
  /// Stage stats for the whole merged job, in execution order: shared
  /// fragments first (smallest to largest), then each query's fragments.
  mr::JobStats job_stats;
  std::vector<FragmentStats> fragment_stats;
  std::vector<SharedFragmentStats> shared;
  std::vector<std::string> elided_exchanges;
  size_t num_stages = 0;
  /// Rows produced by shared stages with >= 2 consumers: output every
  /// consumer would otherwise have recomputed, executed once instead.
  size_t rows_executed_once = 0;
};

/// Run the named queries as one merged job over the datasets in `store`
/// (external sources in point layout, exactly as RunPlan). Intermediate
/// datasets are added to the store under "__shared_<k>" (shared fragments)
/// and "q_<query>__frag_<i>" / "q_<query>" (per-query fragments; the final
/// one holds that query's output). Query names must be unique and must not
/// collide with dataset names already in the store.
Result<SuiteRunResult> RunPlanSuite(
    mr::LocalCluster* cluster,
    const std::vector<std::pair<std::string, temporal::PlanNodePtr>>& queries,
    std::map<std::string, mr::Dataset>* store,
    const SuiteOptions& options = SuiteOptions());

}  // namespace timr::framework
