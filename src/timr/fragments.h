// Fragment extraction: cut an annotated CQ plan into partitionable query
// fragments at exchange operators (paper §III-A step 3, Figures 7-8).

#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "temporal/plan.h"

namespace timr::framework {

/// \brief One {fragment, key} pair: a query sub-plan whose kInput leaves name
/// either external source datasets or upstream fragments' output datasets.
struct Fragment {
  std::string name;            // also its output dataset name (except final)
  temporal::PlanNodePtr root;  // exchange-free plan, leaves are kInput nodes
  temporal::PartitionSpec key;

  /// Dataset names this fragment reads (== the names of its kInput leaves).
  std::vector<std::string> inputs;

  /// True for external sources among `inputs` (parallel array): external rows
  /// are in point layout, intermediate rows in interval layout.
  std::vector<bool> input_is_external;
};

struct FragmentedPlan {
  /// Fragments in execution (topological) order; the last one is the root and
  /// its output dataset is named by `output_dataset`.
  std::vector<Fragment> fragments;
  std::string output_dataset = "__timr_output";
};

/// Cut `annotated_root` (a plan containing kExchange nodes) into fragments.
///
/// Walks top-down from the root, stopping at exchange operators along every
/// path; each exchange's key becomes the partitioning key of the fragment
/// above it, and its child sub-plan becomes an upstream fragment (or a direct
/// external dataset reference when the child is a source). All exchanges
/// feeding one fragment must agree on the partitioning key (paper footnote 1).
///
/// A fragment whose traversal reaches external kInput leaves directly (with no
/// interposed exchange) reads those sources "in place"; if the fragment has a
/// key, the M-R map phase partitions the raw rows by it.
Result<FragmentedPlan> MakeFragments(const temporal::PlanNodePtr& annotated_root);

}  // namespace timr::framework
