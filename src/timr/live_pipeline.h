// Closing the M3 loop (paper §I challenge 2, §VII): run a TiMR-annotated plan
// over a *live* feed.
//
// The paper observes that pipelined map-reduce (MapReduce Online, SOPA) lets
// the very same compiled {fragment, key} pairs process real-time data. This
// module is that execution mode: each fragment becomes a long-running engine
// instance; fragment outputs stream into downstream fragments' inputs as they
// are produced (the role the pipelined shuffle plays), and the whole DAG is
// driven by PushEvent/PushCti exactly like a DSMS deployment.
//
// Because the temporal algebra is application-time-only, a LivePipeline's
// cumulative output is identical to running the same annotated plan as an
// offline TiMR job over the same events — asserted in live_pipeline_test.cc.
// Partitioned parallelism is not simulated here (one engine per fragment);
// the point is the reuse of the *unmodified* fragment plans.

#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "temporal/executor.h"
#include "timr/fragments.h"

namespace timr::framework {

class LivePipeline {
 public:
  /// Compile `annotated_root` into fragments and instantiate the streaming
  /// DAG. External sources keep their plan names.
  static Result<std::unique_ptr<LivePipeline>> Create(
      const temporal::PlanNodePtr& annotated_root);

  ~LivePipeline();  // out-of-line: Forwarder is defined in the .cc

  /// Feed one event into an external source (non-decreasing LE per source).
  Status PushEvent(const std::string& source, temporal::Event event);

  /// Feed a morsel (events + CTI marks, row or columnar) into an external
  /// source — the batched ingest path for high-rate feeds. The batch is
  /// cloned for all consumers but the last, which takes it intact.
  Status PushBatch(const std::string& source, temporal::EventBatch&& batch);

  /// Advance every external source's progress marker.
  void PushCti(temporal::Timestamp t);

  /// End-of-stream: flush all fragment state.
  void Finish();

  /// Drain the final fragment's output produced so far.
  std::vector<temporal::Event> TakeOutput();

  /// Also deliver final output to `sink` as it is produced.
  void AddOutputSink(temporal::EventSink* sink);

  size_t num_fragments() const { return fragments_.fragments.size(); }

 private:
  LivePipeline() = default;

  // Forwards one fragment's output into the same-named input of downstream
  // fragments (the pipelined-shuffle stand-in).
  struct Forwarder;

  FragmentedPlan fragments_;
  std::vector<std::unique_ptr<temporal::Executor>> executors_;
  std::vector<std::unique_ptr<Forwarder>> forwarders_;
  // source name -> executors consuming it directly.
  std::map<std::string, std::vector<temporal::Executor*>> source_feeds_;
  temporal::CollectorSink output_;
  temporal::Executor* final_executor_ = nullptr;
};

}  // namespace timr::framework
