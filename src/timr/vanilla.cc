#include "timr/vanilla.h"

#include <functional>
#include <unordered_map>

#include "temporal/convert.h"
#include "temporal/query.h"

namespace timr::framework {

using temporal::OpKind;
using temporal::PlanNode;
using temporal::PlanNodePtr;

namespace {

/// Per-input column placement in the unified payload. The fragment's
/// partitioning key columns occupy fixed leading slots (so the vanilla map
/// phase can still partition by name); the remaining columns fill padded
/// generic slots.
struct InputLayout {
  std::vector<int> key_positions;   // input column index of each key column
  std::vector<int> rest_positions;  // input column indices of the rest
};

}  // namespace

Result<VanillaFragment> ToVanillaFragment(
    const Fragment& fragment, const std::vector<Schema>& payload_schemas) {
  if (fragment.inputs.size() != payload_schemas.size()) {
    return Status::Invalid("one payload schema per fragment input required");
  }
  const std::vector<std::string>& keys =
      fragment.key.kind == temporal::PartitionSpec::Kind::kKeys
          ? fragment.key.keys
          : std::vector<std::string>{};

  std::vector<InputLayout> layouts;
  size_t max_rest = 0;
  for (const Schema& s : payload_schemas) {
    InputLayout layout;
    std::set<int> taken;
    for (const auto& k : keys) {
      TIMR_ASSIGN_OR_RETURN(int idx, s.IndexOf(k));
      layout.key_positions.push_back(idx);
      taken.insert(idx);
    }
    for (size_t i = 0; i < s.num_fields(); ++i) {
      if (!taken.count(static_cast<int>(i))) {
        layout.rest_positions.push_back(static_cast<int>(i));
      }
    }
    max_rest = std::max(max_rest, layout.rest_positions.size());
    layouts.push_back(std::move(layout));
  }

  // Unified payload: [__Src, <key columns>, __f0 ... __f{max_rest-1}].
  std::vector<Schema::Field> fields = {{kSrcColumn, ValueType::kInt64}};
  for (const auto& k : keys) fields.push_back({k, ValueType::kInt64});
  for (size_t i = 0; i < max_rest; ++i) {
    fields.push_back({"__f" + std::to_string(i), ValueType::kInt64});
  }
  Schema unified_payload(fields);

  VanillaFragment out;
  out.unified_row_schema = temporal::IntervalRowSchema(unified_payload);
  out.layouts_keys = keys;
  for (const Schema& s : payload_schemas) {
    out.input_widths.push_back(s.num_fields());
  }

  // One shared source node (the paper's Multicast); each original leaf
  // becomes Select(__Src == i) -> Project back to the input's schema.
  temporal::Query source = temporal::Query::Input(kUnifiedInput, unified_payload);
  std::vector<PlanNodePtr> demuxed;
  for (size_t i = 0; i < fragment.inputs.size(); ++i) {
    const InputLayout& layout = layouts[i];
    const size_t nkeys = keys.size();
    // unified index of each original column.
    std::vector<int> unified_of(payload_schemas[i].num_fields(), -1);
    for (size_t k = 0; k < layout.key_positions.size(); ++k) {
      unified_of[layout.key_positions[k]] = 1 + static_cast<int>(k);
    }
    for (size_t r = 0; r < layout.rest_positions.size(); ++r) {
      unified_of[layout.rest_positions[r]] =
          1 + static_cast<int>(nkeys) + static_cast<int>(r);
    }
    temporal::Query branch =
        source
            .Where([i](const Row& r) {
              return r[0].AsInt64() == static_cast<int64_t>(i);
            })
            .Project(
                [unified_of](const Row& r) {
                  Row original;
                  original.reserve(unified_of.size());
                  for (int u : unified_of) original.push_back(r[u]);
                  return original;
                },
                payload_schemas[i]);
    demuxed.push_back(branch.node());
  }

  // Clone the fragment plan, replacing each kInput leaf by its demux branch.
  std::unordered_map<const PlanNode*, PlanNodePtr> memo;
  std::function<Result<PlanNodePtr>(const PlanNodePtr&)> rewrite =
      [&](const PlanNodePtr& node) -> Result<PlanNodePtr> {
    auto it = memo.find(node.get());
    if (it != memo.end()) return it->second;
    if (node->kind == OpKind::kInput) {
      for (size_t i = 0; i < fragment.inputs.size(); ++i) {
        if (fragment.inputs[i] == node->name) {
          memo[node.get()] = demuxed[i];
          return demuxed[i];
        }
      }
      return Status::KeyError("fragment leaf " + node->name +
                              " not among fragment inputs");
    }
    auto copy = std::make_shared<PlanNode>(*node);
    for (auto& c : copy->children) {
      TIMR_ASSIGN_OR_RETURN(c, rewrite(c));
    }
    memo[node.get()] = copy;
    return copy;
  };

  out.fragment = fragment;
  TIMR_ASSIGN_OR_RETURN(out.fragment.root, rewrite(fragment.root));
  out.fragment.inputs = {kUnifiedInput};
  out.fragment.input_is_external = {true};
  return out;
}

Result<mr::Dataset> UnifyDatasets(const VanillaFragment& vanilla,
                                  const std::vector<const mr::Dataset*>& inputs,
                                  const std::vector<Schema>& row_schemas) {
  if (inputs.size() != vanilla.input_widths.size()) {
    return Status::Invalid("input count does not match the vanilla fragment");
  }
  const size_t unified_width = vanilla.unified_row_schema.num_fields();
  const size_t nkeys = vanilla.layouts_keys.size();
  std::vector<Row> rows;
  for (size_t i = 0; i < inputs.size(); ++i) {
    const bool interval = temporal::IsIntervalLayout(row_schemas[i]);
    const int skip = interval ? 2 : 1;
    TIMR_ASSIGN_OR_RETURN(Schema payload,
                          temporal::PayloadSchemaOf(row_schemas[i]));
    std::vector<int> key_idx;
    std::set<int> taken;
    for (const auto& k : vanilla.layouts_keys) {
      TIMR_ASSIGN_OR_RETURN(int idx, payload.IndexOf(k));
      key_idx.push_back(idx);
      taken.insert(idx);
    }
    std::vector<int> rest_idx;
    for (size_t c = 0; c < payload.num_fields(); ++c) {
      if (!taken.count(static_cast<int>(c))) {
        rest_idx.push_back(static_cast<int>(c));
      }
    }
    for (size_t p = 0; p < inputs[i]->num_partitions(); ++p) {
      for (const Row& r : inputs[i]->partition(p)) {
        Row out;
        out.reserve(unified_width);
        out.push_back(r[0]);  // Time
        out.push_back(interval ? r[1]
                               : Value(r[0].AsInt64() + temporal::kTick));
        out.emplace_back(static_cast<int64_t>(i));  // __Src
        for (int k : key_idx) out.push_back(r[skip + k]);
        for (int c : rest_idx) out.push_back(r[skip + c]);
        while (out.size() < unified_width) out.emplace_back(int64_t{0});
        rows.push_back(std::move(out));
      }
    }
  }
  (void)nkeys;
  return mr::Dataset::FromRows(vanilla.unified_row_schema, std::move(rows));
}

}  // namespace timr::framework
