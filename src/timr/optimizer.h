// Cost-based CQ plan annotation (paper §VI, Algorithm 1): a Cascades-style
// top-down search that decides where to insert exchange operators and with
// which partitioning keys, using operator key-compatibility rules, functional
// key implications, and a cost model that charges exchanges for
// write/shuffle/read and divides operator cost by the effective parallelism.
//
// This reproduces the paper's Example 3 automatically: given GenTrainData's
// plan, the optimizer prefers a single {UserId} fragment over the naive
// {UserId, Keyword} + {UserId} pair because the {UserId} partitioning implies
// the finer one and saves a repartition.

#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "temporal/plan.h"

namespace timr::framework {

/// Statistics the optimizer consults. Everything defaults to something
/// reasonable so the optimizer is usable without profiling.
struct PlanStats {
  /// Rows per named input dataset.
  std::map<std::string, double> input_rows;

  /// Distinct values per column name (for parallelism estimates).
  std::map<std::string, double> distinct_values;

  double default_input_rows = 1e6;
  double default_distinct = 1e4;
};

struct OptimizerOptions {
  int machines = 16;

  /// Cost units per row. Exchange covers write + network + read of a
  /// repartition; op_cost is per-row operator work (divided by parallelism).
  double exchange_cost_per_row = 3.0;
  double op_cost_per_row = 1.0;
};

struct OptimizeResult {
  temporal::PlanNodePtr annotated_plan;
  double cost = 0;
  std::string Describe() const;
};

/// Annotate `plan` (which must contain no exchanges yet) with the lowest-cost
/// exchange placement found (paper Algorithm 1).
Result<OptimizeResult> OptimizeAnnotation(const temporal::PlanNodePtr& plan,
                                          const PlanStats& stats,
                                          const OptimizerOptions& options);

struct ElisionResult {
  /// Clone of the input with every provably-redundant exchange removed (the
  /// input plan is not modified). Equal to a plain clone when nothing elided.
  temporal::PlanNodePtr plan;
  /// One human-readable line per removed exchange.
  std::vector<std::string> elided;
};

/// Property-driven exchange elision: remove every keyed exchange whose input
/// is already suitably partitioned, per the inferred-partitioning facts of
/// analysis/properties.h. An exchange E with keys K_E is redundant when its
/// child stream is partitioned by keys K_P ⊆ K_E (equal-K_E rows then agree
/// on K_P and already co-locate, and the placement invariant K_E ⊆ downstream
/// grouping keys holds transitively for K_P), or when both are the singleton
/// partitioning. Runs to a fixpoint, then cross-checks the result against
/// CheckExchangePlacement — a placement error after elision is a bug in the
/// property rules and fails the call rather than producing a wrong plan.
Result<ElisionResult> ElideRedundantExchanges(const temporal::PlanNodePtr& root);

}  // namespace timr::framework
