#include "timr/suite.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "analysis/analyzer.h"
#include "analysis/fragment_checks.h"
#include "analysis/sharing.h"
#include "temporal/convert.h"
#include "timr/optimizer.h"

namespace timr::framework {

using temporal::Event;
using temporal::OpKind;
using temporal::PlanNode;
using temporal::PlanNodePtr;

namespace {

/// What an occurrence site is rewritten into: a read of the shared fragment's
/// output dataset, carrying the sub-plan's payload schema (the same leaf shape
/// FragmentCutter creates for an exchange-cut boundary).
struct SubstTarget {
  std::string dataset;
  Schema schema;
};

using SubstMap = std::unordered_map<const PlanNode*, SubstTarget>;

PlanNodePtr CloneWithSubstitutionImpl(
    const PlanNode* node, const SubstMap& subst,
    std::unordered_map<const PlanNode*, PlanNodePtr>* memo) {
  if (node == nullptr) return nullptr;
  auto it = memo->find(node);
  if (it != memo->end()) return it->second;
  auto sub = subst.find(node);
  if (sub != subst.end()) {
    auto leaf = std::make_shared<PlanNode>();
    leaf->kind = OpKind::kInput;
    leaf->name = sub->second.dataset;
    leaf->input_schema = sub->second.schema;
    (*memo)[node] = leaf;
    return leaf;
  }
  auto copy = std::make_shared<PlanNode>(*node);
  (*memo)[node] = copy;
  for (auto& c : copy->children) {
    c = CloneWithSubstitutionImpl(c.get(), subst, memo);
  }
  copy->subplan =
      CloneWithSubstitutionImpl(node->subplan.get(), subst, memo);
  return copy;
}

/// Memoized top-down clone replacing every occurrence site in `subst` with a
/// kInput leaf reading the shared dataset. DAG sharing within the plan is
/// preserved (one clone per source node). Substitution sites are top-context
/// by construction (SelectSharedFragments), so no read leaf can end up inside
/// a GroupApply sub-plan.
PlanNodePtr CloneWithSubstitution(const PlanNode* root, const SubstMap& subst) {
  std::unordered_map<const PlanNode*, PlanNodePtr> memo;
  return CloneWithSubstitutionImpl(root, subst, &memo);
}

/// MakeFragments names fragments "frag_<i>" starting at 0 per call; a merged
/// suite concatenates many such plans, so every sub-plan's fragments are
/// renamed under a unique prefix before concatenation. The final fragment —
/// the sub-plan's output — takes the bare prefix as its name. Patches
/// fragment names, declared inputs, and the kInput leaves that reference
/// renamed datasets (leaves naming external sources or other sub-plans'
/// datasets are untouched: "frag_<i>" names are cutter-internal and cannot
/// collide with them).
void PrefixFragments(FragmentedPlan* plan, const std::string& prefix) {
  std::map<std::string, std::string> rename;
  for (size_t i = 0; i < plan->fragments.size(); ++i) {
    const bool last = i + 1 == plan->fragments.size();
    rename[plan->fragments[i].name] =
        last ? prefix : prefix + "__" + plan->fragments[i].name;
  }
  for (Fragment& frag : plan->fragments) {
    frag.name = rename.at(frag.name);
    for (std::string& input : frag.inputs) {
      auto it = rename.find(input);
      if (it != rename.end()) input = it->second;
    }
    for (PlanNode* leaf : temporal::CollectInputs(frag.root)) {
      auto it = rename.find(leaf->name);
      if (it != rename.end()) leaf->name = it->second;
    }
  }
  plan->output_dataset = rename.at(plan->output_dataset);
}

}  // namespace

Result<SuiteRunResult> RunPlanSuite(
    mr::LocalCluster* cluster,
    const std::vector<std::pair<std::string, PlanNodePtr>>& queries,
    std::map<std::string, mr::Dataset>* store, const SuiteOptions& options) {
  if (queries.empty()) {
    return Status::Invalid("RunPlanSuite: empty query list");
  }
  const TimrOptions& topt = options.timr;
  SuiteRunResult result;

  // --- Per-query verification + exchange elision (same as RunPlan). -------
  std::vector<std::pair<std::string, PlanNodePtr>> roots;
  roots.reserve(queries.size());
  {
    std::set<std::string> names;
    for (const auto& [name, annotated_root] : queries) {
      if (!names.insert(name).second) {
        return Status::Invalid("RunPlanSuite: duplicate query name: " + name);
      }
      if (topt.validate_streams) {
        TIMR_RETURN_NOT_OK(analysis::VerifyPlanForExecution(annotated_root));
      }
      PlanNodePtr root = annotated_root;
      if (topt.elide_redundant_exchanges) {
        TIMR_ASSIGN_OR_RETURN(ElisionResult elision,
                              ElideRedundantExchanges(annotated_root));
        root = std::move(elision.plan);
        for (std::string& e : elision.elided) {
          result.elided_exchanges.push_back(name + ": " + std::move(e));
        }
      }
      result.query_names.push_back(name);
      roots.emplace_back(name, std::move(root));
    }
  }

  // --- Merge policy: pick the shared fragments, cost-ordered. -------------
  std::vector<analysis::ExecutableFragment> selected;
  if (options.share_fragments) {
    selected = analysis::SelectSharedFragments(roots);
  }

  // --- Rewrite into one merged fragment DAG. ------------------------------
  // Shared plans run first, smallest to largest (execution order from
  // SelectSharedFragments), so a nested shared fragment's dataset exists
  // before any enclosing shared plan — or query — reads it. The substitution
  // map accumulates as shared plans are built: an outer shared plan is cloned
  // with every inner occurrence already rewritten into a dataset read.
  FragmentedPlan combined;
  SubstMap subst;
  std::vector<std::string> shared_datasets;
  for (size_t k = 0; k < selected.size(); ++k) {
    const analysis::ExecutableFragment& frag = selected[k];
    const std::string dataset = "__shared_" + std::to_string(k);
    PlanNodePtr shared_root = CloneWithSubstitution(frag.rep, subst);
    TIMR_ASSIGN_OR_RETURN(FragmentedPlan sp, MakeFragments(shared_root));
    PrefixFragments(&sp, dataset);
    for (Fragment& f : sp.fragments) combined.fragments.push_back(std::move(f));
    shared_datasets.push_back(dataset);
    TIMR_ASSIGN_OR_RETURN(Schema payload, frag.rep->OutputSchema());
    for (const analysis::SharedOccurrence& occ : frag.occurrences) {
      subst[occ.node] = SubstTarget{dataset, payload};
    }
  }
  std::vector<std::string> query_outputs;
  query_outputs.reserve(roots.size());
  for (const auto& [name, root] : roots) {
    PlanNodePtr rewritten = CloneWithSubstitution(root.get(), subst);
    TIMR_ASSIGN_OR_RETURN(FragmentedPlan qp, MakeFragments(rewritten));
    PrefixFragments(&qp, "q_" + name);
    for (Fragment& f : qp.fragments) combined.fragments.push_back(std::move(f));
    query_outputs.push_back(qp.output_dataset);
  }
  combined.output_dataset = combined.fragments.back().name;

  // Re-derive the external flags over the *combined* fragment list: a dataset
  // another sub-plan produces (a shared fragment's output read by a query) was
  // cut as an in-place source read, but is an intermediate of the merged job.
  std::set<std::string> produced;
  for (const Fragment& f : combined.fragments) {
    if (store->count(f.name)) {
      return Status::Invalid(
          "RunPlanSuite: fragment dataset name collides with a store "
          "dataset: " +
          f.name);
    }
    if (!produced.insert(f.name).second) {
      return Status::Invalid(
          "RunPlanSuite: query names produce colliding fragment datasets: " +
          f.name);
    }
  }
  for (Fragment& f : combined.fragments) {
    for (size_t i = 0; i < f.inputs.size(); ++i) {
      f.input_is_external[i] = produced.count(f.inputs[i]) == 0;
    }
  }
  if (topt.validate_streams) {
    TIMR_RETURN_NOT_OK(analysis::CheckFragments(combined).ToStatus());
  }

  // Every query's output dataset must survive the whole job — the merged
  // plan has one protected output per query, not just the final fragment's.
  const std::set<std::string> protected_outputs(query_outputs.begin(),
                                                query_outputs.end());

  cluster->set_fault_tolerance(topt.fault_tolerance);
  cluster->set_process_options(topt.process);

  // --- Checkpoint resume over the merged stage sequence. ------------------
  size_t resume_from = 0;
  if (topt.checkpoint != nullptr) {
    std::vector<std::string> names;
    names.reserve(combined.fragments.size());
    for (const Fragment& f : combined.fragments) names.push_back(f.name);
    TIMR_ASSIGN_OR_RETURN(resume_from, topt.checkpoint->Restore(names, store));
    if (topt.validate_streams) {
      TIMR_RETURN_NOT_OK(analysis::CheckCheckpointCut(combined,
                                                      *topt.checkpoint,
                                                      resume_from,
                                                      protected_outputs)
                             .ToStatus());
    }
  }

  // --- Last-use analysis, multi-consumer aware: a shared dataset is read by
  // several fragments and is consumable only at the highest-indexed one (the
  // map keeps the maximum fragment index per dataset). ---------------------
  std::map<std::string, size_t> last_use;
  for (size_t f = 0; f < combined.fragments.size(); ++f) {
    for (const std::string& name : combined.fragments[f].inputs) {
      last_use[name] = f;
    }
  }

  std::map<std::string, size_t> rows_by_stage;
  for (size_t frag_index = 0; frag_index < combined.fragments.size();
       ++frag_index) {
    const Fragment& fragment = combined.fragments[frag_index];
    if (frag_index < resume_from) {
      mr::StageStats sstats;
      sstats.name = fragment.name;
      sstats.rows_out = topt.checkpoint->rows_out(frag_index);
      sstats.recovered_from_checkpoint = true;
      rows_by_stage[fragment.name] = sstats.rows_out;
      result.job_stats.stages.push_back(std::move(sstats));
      FragmentStats fstats;
      fstats.name = fragment.name;
      result.fragment_stats.push_back(std::move(fstats));
      continue;
    }
    std::vector<Schema> row_schemas;
    std::vector<const mr::Dataset*> datasets;
    for (const std::string& name : fragment.inputs) {
      auto it = store->find(name);
      if (it == store->end()) {
        return Status::KeyError("RunPlanSuite: dataset not found: " + name);
      }
      row_schemas.push_back(it->second.schema());
      datasets.push_back(&it->second);
    }
    std::pair<temporal::Timestamp, temporal::Timestamp> range{0, 0};
    if (fragment.key.kind == temporal::PartitionSpec::Kind::kTemporal) {
      TIMR_ASSIGN_OR_RETURN(range, ScanTimeRange(datasets));
    }
    FragmentStats fstats;
    TIMR_ASSIGN_OR_RETURN(
        mr::MRStage stage,
        CompileFragment(fragment, row_schemas, cluster->num_machines(), topt,
                        range, &fstats));
    for (size_t i = 0; i < fragment.inputs.size(); ++i) {
      const std::string& name = fragment.inputs[i];
      if (!fragment.input_is_external[i] && last_use.at(name) == frag_index &&
          protected_outputs.count(name) == 0) {
        stage.consumable_inputs.push_back(static_cast<int>(i));
      }
    }
    if (topt.validate_streams) {
      TIMR_RETURN_NOT_OK(
          analysis::CheckStage(combined, frag_index, stage, protected_outputs)
              .ToStatus());
    }
    mr::StageStats sstats;
    TIMR_RETURN_NOT_OK(cluster->RunStage(stage, store, &sstats));
    rows_by_stage[fragment.name] = sstats.rows_out;
    fstats.engine_events_consumed =
        fstats.engine_events ? fstats.engine_events->load() : 0;
    result.job_stats.stages.push_back(std::move(sstats));
    result.fragment_stats.push_back(std::move(fstats));
    if (topt.checkpoint != nullptr) {
      std::vector<std::pair<std::string, const mr::Dataset*>> outputs;
      outputs.emplace_back(stage.output, &store->at(stage.output));
      if (topt.fault_tolerance.quarantine_inputs) {
        const std::string qname = mr::QuarantineDatasetName(stage.name);
        outputs.emplace_back(qname, &store->at(qname));
      }
      TIMR_RETURN_NOT_OK(topt.checkpoint->SaveStage(
          frag_index, stage.name, outputs, mr::ConsumedInputNames(stage)));
    }
    if (topt.chaos_kill_after_stages >= 0 &&
        static_cast<int>(frag_index) + 1 >= topt.chaos_kill_after_stages) {
      return Status::ExecutionError(
          "chaos kill: simulated driver death after fragment " + fragment.name +
          " (" + std::to_string(frag_index + 1) + " of " +
          std::to_string(combined.fragments.size()) + " fragments completed)");
    }
  }
  result.num_stages = combined.fragments.size();

  // --- Shared-fragment accounting. ----------------------------------------
  for (size_t k = 0; k < selected.size(); ++k) {
    SharedFragmentStats s;
    s.dataset = shared_datasets[k];
    s.hash = selected[k].hash;
    s.num_ops = selected[k].num_ops;
    s.occurrences = selected[k].occurrences.size();
    for (const Fragment& f : combined.fragments) {
      for (const std::string& input : f.inputs) {
        if (input == s.dataset) {
          ++s.num_consumers;
          break;
        }
      }
    }
    s.rows_out = rows_by_stage.count(s.dataset) ? rows_by_stage[s.dataset] : 0;
    if (s.num_consumers >= 2) result.rows_executed_once += s.rows_out;
    result.shared.push_back(std::move(s));
  }

  // --- Gather per-query outputs, canonically ordered. ---------------------
  // Materializing a sharing boundary may interleave ties at equal LE
  // differently than the inline computation; the canonical sort makes
  // equal-as-relations outputs byte-identical (see suite.h).
  for (const std::string& dataset : query_outputs) {
    const mr::Dataset& out = store->at(dataset);
    TIMR_ASSIGN_OR_RETURN(std::vector<Event> events,
                          temporal::EventsFromRows(out.schema(), out.Gather()));
    temporal::SortEventsCanonical(&events);
    result.outputs.push_back(std::move(events));
  }
  return result;
}

}  // namespace timr::framework
