// The vanilla map-reduce transformation (paper §III-C.4).
//
// The basic M-R model allows one logical input and one output per job. Our
// LocalCluster supports multi-input stages natively (as SCOPE/Cosmos did),
// but the paper describes how TiMR copes with strictly-vanilla platforms:
// union the k input datasets into a common schema with an extra source tag
// column, and rewrite the CQ fragment to demultiplex — a Multicast whose k
// branches each Select on the tag and Project back to the original schema.
// This module implements that transformation so the repo also runs against a
// single-input execution model; tests assert output equality with the native
// multi-input path.

#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "mr/dataset.h"
#include "timr/fragments.h"

namespace timr::framework {

/// Tag column identifying which original input a unified row came from.
inline constexpr const char* kSrcColumn = "__Src";

/// Name of the synthesized single input dataset / plan source.
inline constexpr const char* kUnifiedInput = "__unified";

struct VanillaFragment {
  /// Single-input fragment: same computation, one kInput named kUnifiedInput.
  Fragment fragment;
  /// Row schema of the unified dataset (interval layout + tag + padded
  /// payload columns).
  Schema unified_row_schema;
  /// Payload widths of the original inputs, in fragment-input order.
  std::vector<size_t> input_widths;
  /// The fragment's partitioning key columns, which occupy the leading
  /// unified payload slots so the vanilla map phase can partition by name.
  std::vector<std::string> layouts_keys;
};

/// Rewrite `fragment` (with `payload_schemas[i]` describing inputs[i]) into
/// its vanilla single-input form.
Result<VanillaFragment> ToVanillaFragment(
    const Fragment& fragment, const std::vector<Schema>& payload_schemas);

/// Union the fragment's input datasets into one dataset in the unified
/// schema: [Time, __REnd, __Src, f0 ... f_{w-1}] with rows padded to the
/// widest input. `row_schemas[i]` is the stored layout of inputs[i].
Result<mr::Dataset> UnifyDatasets(const VanillaFragment& vanilla,
                                  const std::vector<const mr::Dataset*>& inputs,
                                  const std::vector<Schema>& row_schemas);

}  // namespace timr::framework
