#include "timr/timr.h"

#include <atomic>
#include <memory>
#include <sstream>

#include "analysis/analyzer.h"
#include "analysis/fragment_checks.h"
#include "temporal/convert.h"
#include "temporal/executor.h"
#include "timr/optimizer.h"

namespace timr::framework {

using temporal::Event;
using temporal::kMaxTime;
using temporal::PartitionSpec;
using temporal::Timestamp;

namespace {

/// Span arithmetic for temporal partitioning (paper §III-B). Span i receives
/// events with timestamp in [base + s*i - w, base + s*(i+1)) and owns output
/// in [base + s*i, base + s*(i+1)).
struct SpanLayout {
  Timestamp base = 0;
  Timestamp span_width = 1;
  Timestamp overlap = 0;
  int num_spans = 1;

  std::pair<Timestamp, Timestamp> OwnedInterval(int i) const {
    const Timestamp lo = base + span_width * i;
    const Timestamp hi =
        i + 1 == num_spans ? kMaxTime : base + span_width * (i + 1);
    return {lo, hi};
  }

  /// Spans that must receive an event with lifetime [le, re): every span whose
  /// owned output could be influenced by it given windows up to `overlap`.
  void TargetsFor(Timestamp le, Timestamp re, std::vector<int>* out) const {
    int64_t lo = (le - base) / span_width;
    if (le < base) lo = 0;
    int64_t hi = (std::min(re, base + span_width * int64_t{num_spans}) - base +
                  overlap) / span_width;
    lo = std::max<int64_t>(lo, 0);
    // When the span count is capped, the last span owns the open-ended tail:
    // route tail events to it rather than dropping them.
    lo = std::min<int64_t>(lo, num_spans - 1);
    hi = std::min<int64_t>(hi, num_spans - 1);
    for (int64_t i = lo; i <= hi; ++i) out->push_back(static_cast<int>(i));
  }
};

struct RowTimes {
  Timestamp le;
  Timestamp re;
};

RowTimes TimesOf(const Schema& row_schema, const Row& row) {
  const Timestamp le = row[0].AsInt64();
  if (temporal::IsIntervalLayout(row_schema)) {
    return {le, row[1].AsInt64()};
  }
  return {le, le + temporal::kTick};
}

}  // namespace

Result<mr::MRStage> CompileFragment(
    const Fragment& fragment, const std::vector<Schema>& row_schemas,
    int default_partitions, const TimrOptions& options,
    std::pair<Timestamp, Timestamp> time_range, FragmentStats* stats) {
  mr::MRStage stage;
  stage.name = fragment.name;
  stage.inputs = fragment.inputs;
  stage.output = fragment.name;
  TIMR_ASSIGN_OR_RETURN(Schema payload_schema, fragment.root->OutputSchema());
  stage.output_schema = temporal::IntervalRowSchema(payload_schema);

  // --- Map phase: the exchange semantics. ---
  std::shared_ptr<SpanLayout> spans;  // set iff temporal partitioning
  if (fragment.key.kind == PartitionSpec::Kind::kTemporal) {
    auto layout = std::make_shared<SpanLayout>();
    layout->base = time_range.first;
    layout->span_width = std::max<Timestamp>(1, fragment.key.span_width);
    layout->overlap = fragment.key.overlap;
    const Timestamp range = time_range.second - time_range.first + 1;
    layout->num_spans = static_cast<int>(
        std::min<int64_t>((range + layout->span_width - 1) / layout->span_width,
                          options.max_temporal_partitions));
    spans = layout;
    stage.num_partitions = layout->num_spans;
    stage.partition_fn = [layout, row_schemas](int input_index, const Row& row,
                                               int, std::vector<int>* targets) {
      const RowTimes t = TimesOf(row_schemas[input_index], row);
      layout->TargetsFor(t.le, t.re, targets);
    };
  } else if (fragment.key.keys.empty()) {
    stage.num_partitions = 1;
    stage.partition_fn = mr::SinglePartition();
  } else {
    stage.num_partitions = default_partitions;
    std::vector<std::vector<int>> key_indices;
    for (const Schema& rs : row_schemas) {
      TIMR_ASSIGN_OR_RETURN(std::vector<int> idx, rs.IndicesOf(fragment.key.keys));
      key_indices.push_back(std::move(idx));
    }
    stage.partition_fn = mr::HashPartitioner(key_indices);
    // Keyed exchanges are eligible for adaptive skew-aware repartitioning:
    // the key hash lets the cluster detect hot keys and split them across
    // salted virtual partitions without breaking the per-key co-location the
    // fragment's embedded engine relies on (§III-A exchange placement:
    // exchange keys ⊆ downstream grouping keys, so hash(key) % n is a valid
    // routing for any n). Temporal and singleton fragments never set
    // key_hash_fn and are never split.
    stage.key_hash_fn = mr::MakeKeyHasher(std::move(key_indices));
    stage.skew = options.skew;
    stage.skew.adaptive_repartition =
        options.skew.adaptive_repartition || fragment.key.adaptive_split;
  }

  // --- Reduce phase: the paper's P (row pump) around P' (embedded engine). ---
  // With validate_streams on, the embedded plan is instrumented with
  // ConformanceCheck operators above each input and below the root, so a
  // corrupted intermediate dataset or misbehaving operator fails the stage
  // with provenance instead of producing wrong output.
  temporal::PlanNodePtr plan =
      options.validate_streams
          ? analysis::InstrumentFragmentPlan(fragment.name, fragment.root)
          : fragment.root;
  std::vector<std::string> input_names = fragment.inputs;
  auto engine_events = std::make_shared<std::atomic<uint64_t>>(0);
  const bool want_stats = options.collect_engine_stats;
  const size_t batch_size = options.engine_batch_size;
  const bool columnar = options.engine_columnar;
  const size_t cti_thinning = options.cti_thinning;
  const bool sorted_shuffle = options.assume_sorted_shuffle;
  stage.reducer = [plan, input_names, row_schemas, spans, engine_events,
                   want_stats, batch_size, columnar, cti_thinning,
                   sorted_shuffle](
                      int partition,
                      const std::vector<std::vector<Row>>& inputs,
                      std::vector<Row>* output) -> Status {
    // Convert partition rows to events, per input.
    std::map<std::string, std::vector<Event>> event_inputs;
    for (size_t i = 0; i < inputs.size(); ++i) {
      TIMR_ASSIGN_OR_RETURN(std::vector<Event> events,
                            temporal::EventsFromRows(row_schemas[i], inputs[i]));
      event_inputs[input_names[i]] = std::move(events);
    }
    // A fresh engine instance per reducer invocation (paper §III-A step 4);
    // restartable because results depend only on application time.
    TIMR_ASSIGN_OR_RETURN(std::unique_ptr<temporal::Executor> exec,
                          temporal::Executor::Create(plan));
    if (batch_size != 0) exec->set_batch_size(batch_size);
    exec->set_columnar(columnar);
    exec->set_cti_thinning(cti_thinning);
    // Shuffle output arrives Time-sorted per partition; skip the defensive
    // re-sort (debug builds still assert sortedness).
    exec->set_assume_sorted_inputs(sorted_shuffle);
    std::vector<Event> result;
    TIMR_ASSIGN_OR_RETURN(result, exec->RunBatch(std::move(event_inputs)));
    const std::vector<std::string> violations = exec->ConformanceViolations();
    if (!violations.empty()) {
      std::ostringstream os;
      os << "stream conformance violated in partition " << partition << ":";
      for (const std::string& v : violations) os << "\n  " << v;
      return Status::ExecutionError(os.str());
    }
    if (want_stats) engine_events->fetch_add(exec->TotalEventsConsumed());
    // Temporal spans own only their output interval: clip (paper §III-B).
    if (spans) {
      auto [lo, hi] = spans->OwnedInterval(partition);
      std::vector<Event> clipped;
      clipped.reserve(result.size());
      for (Event& e : result) {
        const Timestamp le = std::max(e.le, lo);
        const Timestamp re = std::min(e.re, hi);
        if (le < re) clipped.push_back(Event(le, re, std::move(e.payload)));
      }
      result = std::move(clipped);
    }
    TIMR_ASSIGN_OR_RETURN(*output, temporal::RowsFromEvents(result, true));
    return Status::OK();
  };
  if (stats != nullptr) {
    stats->name = fragment.name;
    stats->engine_events = engine_events;
  }
  return stage;
}

Result<std::pair<Timestamp, Timestamp>> ScanTimeRange(
    const std::vector<const mr::Dataset*>& datasets) {
  Timestamp lo = kMaxTime;
  Timestamp hi = temporal::kMinTime;
  for (const mr::Dataset* d : datasets) {
    for (size_t p = 0; p < d->num_partitions(); ++p) {
      for (const Row& r : d->partition(p)) {
        const Timestamp t = r[0].AsInt64();
        lo = std::min(lo, t);
        hi = std::max(hi, t);
      }
    }
  }
  if (lo > hi) return std::make_pair<Timestamp, Timestamp>(0, 0);
  return std::make_pair(lo, hi);
}

Result<TimrRunResult> RunPlan(mr::LocalCluster* cluster,
                              const temporal::PlanNodePtr& annotated_root,
                              std::map<std::string, mr::Dataset>* store,
                              const TimrOptions& options) {
  TimrRunResult result;
  // Fail fast on malformed plans: the static passes name the offending node,
  // while a bad run would surface as wrong output or a deep engine abort.
  if (options.validate_streams) {
    TIMR_RETURN_NOT_OK(analysis::VerifyPlanForExecution(annotated_root));
  }
  temporal::PlanNodePtr root = annotated_root;
  if (options.elide_redundant_exchanges) {
    TIMR_ASSIGN_OR_RETURN(ElisionResult elision,
                          ElideRedundantExchanges(annotated_root));
    root = std::move(elision.plan);
    result.elided_exchanges = std::move(elision.elided);
  }
  TIMR_ASSIGN_OR_RETURN(result.fragments, MakeFragments(root));
  if (options.validate_streams) {
    TIMR_RETURN_NOT_OK(analysis::CheckFragments(result.fragments).ToStatus());
  }

  cluster->set_fault_tolerance(options.fault_tolerance);
  cluster->set_process_options(options.process);

  // Resume: replay checkpointed fragment outputs (and input releases) into
  // the store and skip the restored prefix. The store must hold the plan's
  // external sources again, exactly as for a fresh run.
  size_t resume_from = 0;
  if (options.checkpoint != nullptr) {
    std::vector<std::string> names;
    names.reserve(result.fragments.fragments.size());
    for (const Fragment& f : result.fragments.fragments) names.push_back(f.name);
    TIMR_ASSIGN_OR_RETURN(resume_from, options.checkpoint->Restore(names, store));
    if (options.validate_streams) {
      // The restored prefix must be a valid cut of *this* plan: same stage
      // names at the same cuts, and no released dataset still needed past
      // the resume point (invariant "checkpoint-cut").
      TIMR_RETURN_NOT_OK(analysis::CheckCheckpointCut(result.fragments,
                                                      *options.checkpoint,
                                                      resume_from)
                             .ToStatus());
    }
  }

  // Last-use analysis for copy-free routing: an intermediate dataset (an
  // upstream fragment's output) that no later fragment reads again can be
  // *consumed* by its final reader — the shuffle then moves its rows instead
  // of copying them and releases the dataset's partitions. External sources
  // and the plan's output dataset are never consumed.
  std::map<std::string, size_t> last_use;
  for (size_t f = 0; f < result.fragments.fragments.size(); ++f) {
    for (const std::string& name : result.fragments.fragments[f].inputs) {
      last_use[name] = f;
    }
  }

  for (size_t frag_index = 0; frag_index < result.fragments.fragments.size();
       ++frag_index) {
    const Fragment& fragment = result.fragments.fragments[frag_index];
    if (frag_index < resume_from) {
      mr::StageStats sstats;
      sstats.name = fragment.name;
      sstats.rows_out = options.checkpoint->rows_out(frag_index);
      sstats.recovered_from_checkpoint = true;
      result.job_stats.stages.push_back(std::move(sstats));
      FragmentStats fstats;
      fstats.name = fragment.name;
      result.fragment_stats.push_back(std::move(fstats));
      continue;
    }
    // Resolve input row schemas from the (evolving) store.
    std::vector<Schema> row_schemas;
    std::vector<const mr::Dataset*> datasets;
    for (const std::string& name : fragment.inputs) {
      auto it = store->find(name);
      if (it == store->end()) {
        return Status::KeyError("TiMR: dataset not found: " + name);
      }
      row_schemas.push_back(it->second.schema());
      datasets.push_back(&it->second);
    }
    std::pair<Timestamp, Timestamp> range{0, 0};
    if (fragment.key.kind == PartitionSpec::Kind::kTemporal) {
      TIMR_ASSIGN_OR_RETURN(range, ScanTimeRange(datasets));
    }
    FragmentStats fstats;
    TIMR_ASSIGN_OR_RETURN(
        mr::MRStage stage,
        CompileFragment(fragment, row_schemas, cluster->num_machines(), options,
                        range, &fstats));
    for (size_t i = 0; i < fragment.inputs.size(); ++i) {
      const std::string& name = fragment.inputs[i];
      if (!fragment.input_is_external[i] && last_use.at(name) == frag_index &&
          name != result.fragments.output_dataset) {
        stage.consumable_inputs.push_back(static_cast<int>(i));
      }
    }
    if (options.validate_streams) {
      TIMR_RETURN_NOT_OK(
          analysis::CheckStage(result.fragments, frag_index, stage).ToStatus());
    }
    mr::StageStats sstats;
    TIMR_RETURN_NOT_OK(cluster->RunStage(stage, store, &sstats));
    fstats.engine_events_consumed =
        fstats.engine_events ? fstats.engine_events->load() : 0;
    result.job_stats.stages.push_back(std::move(sstats));
    result.fragment_stats.push_back(std::move(fstats));
    if (options.checkpoint != nullptr) {
      std::vector<std::pair<std::string, const mr::Dataset*>> outputs;
      outputs.emplace_back(stage.output, &store->at(stage.output));
      if (options.fault_tolerance.quarantine_inputs) {
        const std::string qname = mr::QuarantineDatasetName(stage.name);
        outputs.emplace_back(qname, &store->at(qname));
      }
      TIMR_RETURN_NOT_OK(options.checkpoint->SaveStage(
          frag_index, stage.name, outputs, mr::ConsumedInputNames(stage)));
    }
    if (options.chaos_kill_after_stages >= 0 &&
        static_cast<int>(frag_index) + 1 >= options.chaos_kill_after_stages) {
      return Status::ExecutionError(
          "chaos kill: simulated driver death after fragment " + fragment.name +
          " (" + std::to_string(frag_index + 1) + " of " +
          std::to_string(result.fragments.fragments.size()) +
          " fragments completed)");
    }
  }

  const mr::Dataset& out = store->at(result.fragments.output_dataset);
  TIMR_ASSIGN_OR_RETURN(result.output,
                        temporal::EventsFromRows(out.schema(), out.Gather()));
  return result;
}

Result<TimrRunResult> RunPlanOnEvents(
    mr::LocalCluster* cluster, const temporal::PlanNodePtr& annotated_root,
    const std::map<std::string, std::pair<Schema, std::vector<temporal::Event>>>&
        inputs,
    const TimrOptions& options) {
  std::map<std::string, mr::Dataset> store;
  for (const auto& [name, schema_events] : inputs) {
    const auto& [payload_schema, events] = schema_events;
    bool all_points = true;
    for (const Event& e : events) {
      if (!e.IsPoint()) {
        all_points = false;
        break;
      }
    }
    TIMR_ASSIGN_OR_RETURN(std::vector<Row> rows,
                          temporal::RowsFromEvents(events, !all_points));
    Schema row_schema = all_points
                            ? temporal::PointRowSchema(payload_schema)
                            : temporal::IntervalRowSchema(payload_schema);
    store[name] = mr::Dataset::FromRows(std::move(row_schema), std::move(rows));
  }
  return RunPlan(cluster, annotated_root, &store, options);
}

}  // namespace timr::framework
