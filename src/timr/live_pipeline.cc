#include "timr/live_pipeline.h"

#include <set>

namespace timr::framework {

using temporal::Event;
using temporal::Timestamp;

/// Streams one producer fragment's output into one consumer executor's input.
struct LivePipeline::Forwarder : public temporal::EventSink {
  Forwarder(temporal::Executor* consumer_in, std::string input_in)
      : consumer(consumer_in), input(std::move(input_in)) {}

  void OnEvent(Event event) override {
    TIMR_CHECK_OK(consumer->PushEvent(input, std::move(event)));
  }
  void OnCti(Timestamp t) override {
    TIMR_CHECK_OK(consumer->PushCti(input, t));
  }
  void OnBatch(temporal::EventBatch&& batch) override {
    // Keep the batch intact across the executor boundary: one virtual hop
    // into the consumer instead of one per event.
    TIMR_CHECK_OK(consumer->PushBatch(input, std::move(batch)));
  }

  temporal::Executor* consumer;
  std::string input;
};

LivePipeline::~LivePipeline() = default;

Result<std::unique_ptr<LivePipeline>> LivePipeline::Create(
    const temporal::PlanNodePtr& annotated_root) {
  auto pipeline = std::unique_ptr<LivePipeline>(new LivePipeline());
  TIMR_ASSIGN_OR_RETURN(pipeline->fragments_, MakeFragments(annotated_root));
  const auto& frags = pipeline->fragments_.fragments;

  // Instantiate engines in topological (vector) order, then wire edges:
  // producers appear before consumers, so all upstream executors exist.
  std::map<std::string, temporal::Executor*> by_fragment_name;
  for (const Fragment& frag : frags) {
    TIMR_ASSIGN_OR_RETURN(std::unique_ptr<temporal::Executor> exec,
                          temporal::Executor::Create(frag.root));
    by_fragment_name[frag.name] = exec.get();
    pipeline->executors_.push_back(std::move(exec));
  }
  for (size_t i = 0; i < frags.size(); ++i) {
    temporal::Executor* consumer = pipeline->executors_[i].get();
    for (size_t j = 0; j < frags[i].inputs.size(); ++j) {
      const std::string& name = frags[i].inputs[j];
      if (frags[i].input_is_external[j]) {
        pipeline->source_feeds_[name].push_back(consumer);
      } else {
        auto it = by_fragment_name.find(name);
        if (it == by_fragment_name.end()) {
          return Status::Invalid("fragment consumes unknown dataset " + name);
        }
        auto fwd = std::make_unique<Forwarder>(consumer, name);
        it->second->AddOutputSink(fwd.get());
        pipeline->forwarders_.push_back(std::move(fwd));
      }
    }
  }
  pipeline->final_executor_ = pipeline->executors_.back().get();
  pipeline->final_executor_->AddOutputSink(&pipeline->output_);
  if (pipeline->source_feeds_.empty()) {
    return Status::Invalid("pipeline has no external sources");
  }
  return pipeline;
}

Status LivePipeline::PushEvent(const std::string& source, Event event) {
  auto it = source_feeds_.find(source);
  if (it == source_feeds_.end()) {
    return Status::KeyError("no external source named " + source);
  }
  for (temporal::Executor* exec : it->second) {
    TIMR_RETURN_NOT_OK(exec->PushEvent(source, event));
  }
  return Status::OK();
}

Status LivePipeline::PushBatch(const std::string& source,
                               temporal::EventBatch&& batch) {
  auto it = source_feeds_.find(source);
  if (it == source_feeds_.end()) {
    return Status::KeyError("no external source named " + source);
  }
  auto& consumers = it->second;
  for (size_t i = 0; i + 1 < consumers.size(); ++i) {
    TIMR_RETURN_NOT_OK(consumers[i]->PushBatch(source, batch.Clone()));
  }
  if (!consumers.empty()) {
    TIMR_RETURN_NOT_OK(consumers.back()->PushBatch(source, std::move(batch)));
  }
  return Status::OK();
}

void LivePipeline::PushCti(Timestamp t) {
  for (auto& [name, consumers] : source_feeds_) {
    for (temporal::Executor* exec : consumers) {
      TIMR_CHECK_OK(exec->PushCti(name, t));
    }
  }
}

void LivePipeline::Finish() { PushCti(temporal::kMaxTime); }

std::vector<Event> LivePipeline::TakeOutput() { return output_.TakeEvents(); }

void LivePipeline::AddOutputSink(temporal::EventSink* sink) {
  final_executor_->AddOutputSink(sink);
}

}  // namespace timr::framework
