#include "timr/optimizer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <sstream>
#include <unordered_map>

#include "analysis/plan_checks.h"
#include "analysis/properties.h"

namespace timr::framework {

using temporal::OpKind;
using temporal::PartitionSpec;
using temporal::PlanNode;
using temporal::PlanNodePtr;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// A candidate partitioning property: a canonical (sorted) column set, the
/// singleton partitioning (everything on one machine), the temporal
/// partitioning, or "random" (how raw inputs arrive).
struct PKey {
  enum class Kind : uint8_t { kColumns, kSingleton, kTime, kRandom };
  Kind kind = Kind::kSingleton;
  std::vector<std::string> cols;  // kColumns, sorted

  static PKey Columns(std::vector<std::string> c) {
    std::sort(c.begin(), c.end());
    return PKey{Kind::kColumns, std::move(c)};
  }
  static PKey Singleton() { return PKey{Kind::kSingleton, {}}; }
  static PKey Time() { return PKey{Kind::kTime, {}}; }
  static PKey Random() { return PKey{Kind::kRandom, {}}; }

  bool operator==(const PKey& o) const {
    return kind == o.kind && cols == o.cols;
  }

  std::string Str() const {
    switch (kind) {
      case Kind::kSingleton: return "<single>";
      case Kind::kTime: return "<time>";
      case Kind::kRandom: return "<random>";
      case Kind::kColumns: {
        std::string s = "{";
        for (size_t i = 0; i < cols.size(); ++i) {
          if (i) s += ",";
          s += cols[i];
        }
        return s + "}";
      }
    }
    return "?";
  }
};

bool IsSubset(const std::vector<std::string>& a,
              const std::vector<std::string>& b) {
  // a ⊆ b; both sorted.
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

class Annotator {
 public:
  Annotator(const PlanStats& stats, const OptimizerOptions& options)
      : stats_(stats), options_(options) {}

  Result<OptimizeResult> Run(const PlanNodePtr& root) {
    // Overlap for any temporal exchange must cover every window the consuming
    // side applies; the plan-wide maximum is a safe (paper §III-B: "the
    // maximum w across the streams") choice.
    max_window_ = root->MaxWindow();
    CollectInterestingKeys(root.get());
    candidates_.push_back(PKey::Singleton());
    candidates_.push_back(PKey::Time());

    double best = kInf;
    PKey best_key = PKey::Singleton();
    for (const PKey& k : candidates_) {
      const double c = OptWithExchange(root.get(), k);
      if (c < best) {
        best = c;
        best_key = k;
      }
    }
    if (!std::isfinite(best)) {
      return Status::Invalid("no valid annotation found for plan");
    }
    OptimizeResult result;
    result.cost = best;
    result.annotated_plan = BuildWithExchange(root, best_key);
    // A trailing exchange above the root adds no value; strip it.
    if (result.annotated_plan->kind == OpKind::kExchange) {
      result.annotated_plan = result.annotated_plan->children[0];
    }
    return result;
  }

 private:
  // ---- Interesting keys: every stateful operator's key set plus its single
  // columns (the classic interesting-properties trick keeps the search
  // finite). ----
  void CollectInterestingKeys(const PlanNode* node) {
    for (const PlanNode* n : temporal::CollectNodes(
             std::const_pointer_cast<PlanNode>(
                 PlanNodePtr(const_cast<PlanNode*>(node),
                             [](PlanNode*) {})))) {
      std::vector<std::string> key;
      if (n->kind == OpKind::kGroupApply) key = n->group_keys;
      if (n->kind == OpKind::kTemporalJoin || n->kind == OpKind::kAntiSemiJoin) {
        key = n->left_keys;
      }
      if (key.empty()) continue;
      AddCandidate(PKey::Columns(key));
      for (const auto& col : key) AddCandidate(PKey::Columns({col}));
    }
  }

  void AddCandidate(PKey k) {
    for (const auto& c : candidates_) {
      if (c == k) return;
    }
    candidates_.push_back(std::move(k));
  }

  // ---- Cardinality and cost model. ----
  double Rows(const PlanNode* node) {
    auto it = rows_memo_.find(node);
    if (it != rows_memo_.end()) return it->second;
    double rows = 0;
    switch (node->kind) {
      case OpKind::kInput: {
        auto sit = stats_.input_rows.find(node->name);
        rows = sit != stats_.input_rows.end() ? sit->second
                                              : stats_.default_input_rows;
        break;
      }
      case OpKind::kSelect:
        rows = 0.5 * Rows(node->children[0].get());
        break;
      case OpKind::kGroupApply:
      case OpKind::kAggregate:
      case OpKind::kProject:
      case OpKind::kAlterLifetime:
      case OpKind::kExchange:
      case OpKind::kSubplanInput:
      case OpKind::kConformanceCheck:
        rows = Rows(node->children.empty() ? node : node->children[0].get());
        if (!node->children.empty()) rows = Rows(node->children[0].get());
        break;
      case OpKind::kUnion:
        rows = Rows(node->children[0].get()) + Rows(node->children[1].get());
        break;
      case OpKind::kTemporalJoin:
        rows = 2.0 * std::max(Rows(node->children[0].get()),
                              Rows(node->children[1].get()));
        break;
      case OpKind::kAntiSemiJoin:
        rows = 0.7 * Rows(node->children[0].get());
        break;
      case OpKind::kUdo:
        rows = 0.1 * Rows(node->children[0].get());
        break;
    }
    rows_memo_[node] = rows;
    return rows;
  }

  double Parallelism(const PKey& key) {
    switch (key.kind) {
      case PKey::Kind::kSingleton: return 1;
      case PKey::Kind::kRandom:
      case PKey::Kind::kTime: return options_.machines;
      case PKey::Kind::kColumns: {
        double distinct = kInf;
        for (const auto& col : key.cols) {
          auto it = stats_.distinct_values.find(col);
          const double d =
              it != stats_.distinct_values.end() ? it->second
                                                 : stats_.default_distinct;
          // Partitioning by several columns has at least the max per-column
          // distinct count.
          distinct = distinct == kInf ? d : std::max(distinct, d);
        }
        return std::min<double>(options_.machines, distinct);
      }
    }
    return 1;
  }

  double OpCost(const PlanNode* node, const PKey& key) {
    return options_.op_cost_per_row * Rows(node) / Parallelism(key);
  }
  double ExchangeCost(const PlanNode* node) {
    return options_.exchange_cost_per_row * Rows(node);
  }

  // ---- Validity: can `node` execute on a stream partitioned by `key`? ----
  bool Valid(const PlanNode* node, const PKey& key) {
    if (key.kind == PKey::Kind::kSingleton) return true;
    if (key.kind == PKey::Kind::kTime) {
      // Temporal partitioning applies to windowed plans (paper §III-B);
      // every plan we build is windowed, so accept it universally.
      return node->kind != OpKind::kInput;
    }
    if (key.kind == PKey::Kind::kRandom) {
      // Random placement is only sound for stateless row-local operators.
      return node->kind == OpKind::kSelect || node->kind == OpKind::kProject ||
             node->kind == OpKind::kAlterLifetime;
    }
    // Column keys must exist in the node's output schema (we treat same-named
    // columns as pass-through provenance, which holds for our builders).
    auto schema = node->OutputSchema();
    if (!schema.ok()) return false;
    for (const auto& col : key.cols) {
      if (!schema.ValueOrDie().HasField(col)) return false;
    }
    switch (node->kind) {
      case OpKind::kGroupApply: {
        auto sorted = node->group_keys;
        std::sort(sorted.begin(), sorted.end());
        return IsSubset(key.cols, sorted);
      }
      case OpKind::kTemporalJoin:
      case OpKind::kAntiSemiJoin: {
        auto sorted = node->left_keys;
        std::sort(sorted.begin(), sorted.end());
        return IsSubset(key.cols, sorted);
      }
      case OpKind::kAggregate:
      case OpKind::kUdo:
        return false;  // global operators need singleton or time
      case OpKind::kSelect:
      case OpKind::kProject:
      case OpKind::kAlterLifetime:
      case OpKind::kUnion:
        return true;
      case OpKind::kInput:
        return false;  // raw inputs arrive randomly partitioned
      case OpKind::kSubplanInput:
      case OpKind::kExchange:
      case OpKind::kConformanceCheck:
        return false;
    }
    return false;
  }

  /// The key a child must deliver when `node` runs under `key`. For joins the
  /// columns translate positionally from left names to right names.
  PKey ChildKey(const PlanNode* node, int child, const PKey& key) {
    if (key.kind != PKey::Kind::kColumns || child == 0) return key;
    if (node->kind == OpKind::kTemporalJoin ||
        node->kind == OpKind::kAntiSemiJoin) {
      std::vector<std::string> translated;
      for (const auto& col : key.cols) {
        for (size_t i = 0; i < node->left_keys.size(); ++i) {
          if (node->left_keys[i] == col) {
            translated.push_back(node->right_keys[i]);
            break;
          }
        }
      }
      return PKey::Columns(std::move(translated));
    }
    return key;
  }

  // ---- The search (paper Algorithm 1, memoized). ----
  struct MemoKey {
    const PlanNode* node;
    std::string key;
    bool operator<(const MemoKey& o) const {
      return std::tie(node, key) < std::tie(o.node, o.key);
    }
  };

  /// Cost of executing node's subtree so that node itself runs under `key`
  /// (no exchange above node).
  double OptNoExchange(const PlanNode* node, const PKey& key) {
    if (node->kind == OpKind::kInput) {
      return key.kind == PKey::Kind::kRandom ? 0 : kInf;
    }
    if (!Valid(node, key)) return kInf;
    MemoKey mk{node, key.Str()};
    auto it = noexch_memo_.find(mk);
    if (it != noexch_memo_.end()) return it->second;
    noexch_memo_[mk] = kInf;  // cycle guard (plans are DAGs, defensive)
    double cost = OpCost(node, key);
    for (size_t i = 0; i < node->children.size(); ++i) {
      cost += OptWithExchange(node->children[i].get(),
                              ChildKey(node, static_cast<int>(i), key));
    }
    noexch_memo_[mk] = cost;
    return cost;
  }

  /// Cost of delivering node's output partitioned by `key`, allowing an
  /// exchange above node.
  double OptWithExchange(const PlanNode* node, const PKey& key) {
    MemoKey mk{node, key.Str()};
    auto it = exch_memo_.find(mk);
    if (it != exch_memo_.end()) return it->second.cost;
    exch_memo_[mk] = {kInf, key, false};

    double best = OptNoExchange(node, key);
    PKey best_inner = key;
    bool use_exchange = false;

    // Random delivery from an input counts as "no exchange" too.
    if (node->kind == OpKind::kInput && key.kind != PKey::Kind::kRandom) {
      // fall through to the exchange options below
    }
    const double exch = ExchangeCost(node);
    for (const PKey& inner : AllKeys(node)) {
      if (inner == key) continue;
      const double c = OptNoExchange(node, inner) + exch;
      if (c < best) {
        best = c;
        best_inner = inner;
        use_exchange = true;
      }
    }
    exch_memo_[mk] = {best, best_inner, use_exchange};
    return best;
  }

  std::vector<PKey> AllKeys(const PlanNode* node) {
    std::vector<PKey> keys = candidates_;
    if (node->kind == OpKind::kInput) keys.push_back(PKey::Random());
    return keys;
  }

  // ---- Plan reconstruction from the memoized decisions. ----
  PlanNodePtr BuildWithExchange(const PlanNodePtr& node, const PKey& key) {
    MemoKey mk{node.get(), key.Str()};
    auto it = exch_memo_.find(mk);
    TIMR_CHECK(it != exch_memo_.end());
    const Decision& d = it->second;
    PlanNodePtr inner = BuildNoExchange(node, d.inner);
    if (!d.use_exchange) return inner;
    auto exch = std::make_shared<PlanNode>();
    exch->kind = OpKind::kExchange;
    exch->children = {inner};
    exch->exchange = ToSpec(node.get(), key);
    return exch;
  }

  PlanNodePtr BuildNoExchange(const PlanNodePtr& node, const PKey& key) {
    if (node->kind == OpKind::kInput) return node;
    auto copy = std::make_shared<PlanNode>(*node);
    for (size_t i = 0; i < copy->children.size(); ++i) {
      copy->children[i] = BuildWithExchange(
          node->children[i], ChildKey(node.get(), static_cast<int>(i), key));
    }
    return copy;
  }

  PartitionSpec ToSpec(const PlanNode* /*node*/, const PKey& key) {
    switch (key.kind) {
      case PKey::Kind::kColumns:
        return PartitionSpec::ByKeys(key.cols);
      case PKey::Kind::kTime:
        return PartitionSpec::ByTime(/*span_width=*/8 * max_window_,
                                     /*overlap=*/max_window_);
      case PKey::Kind::kSingleton:
      case PKey::Kind::kRandom:
        return PartitionSpec::ByKeys({});
    }
    return PartitionSpec::ByKeys({});
  }

  struct Decision {
    double cost;
    PKey inner;
    bool use_exchange;
  };

  const PlanStats& stats_;
  const OptimizerOptions& options_;
  temporal::Timestamp max_window_ = temporal::kTick;
  std::vector<PKey> candidates_;
  std::unordered_map<const PlanNode*, double> rows_memo_;
  std::map<MemoKey, double> noexch_memo_;
  std::map<MemoKey, Decision> exch_memo_;
};

}  // namespace

std::string OptimizeResult::Describe() const {
  std::ostringstream os;
  os << "cost=" << cost << "\n" << annotated_plan->ToString();
  return os.str();
}

Result<OptimizeResult> OptimizeAnnotation(const temporal::PlanNodePtr& plan,
                                          const PlanStats& stats,
                                          const OptimizerOptions& options) {
  for (PlanNode* n : temporal::CollectNodes(plan)) {
    if (n->kind == OpKind::kExchange) {
      return Status::Invalid("plan is already annotated with exchanges");
    }
  }
  Annotator annotator(stats, options);
  return annotator.Run(plan);
}

namespace {

/// Redundancy rule: the child's inferred partitioning already implies what
/// exchange `n` would establish. Keys: K_P ⊆ K_E with K_P nonempty (an
/// arbitrary stream proves nothing). Singleton: only a singleton exchange
/// (empty keys) is redundant over a singleton stream — a *keyed* exchange
/// over one partition still buys parallelism, so it stays.
bool ExchangeIsRedundant(const PlanNode* n,
                         const analysis::PropertyMap& props) {
  if (n->kind != OpKind::kExchange) return false;
  if (n->exchange.kind != PartitionSpec::Kind::kKeys) return false;
  const analysis::Partitioning& p =
      props.at(n->children[0].get()).partitioning;
  if (p.kind == analysis::Partitioning::Kind::kSingleton) {
    return n->exchange.keys.empty();
  }
  if (p.kind != analysis::Partitioning::Kind::kKeys || p.keys.empty()) {
    return false;
  }
  for (const std::string& k : p.keys) {
    if (std::find(n->exchange.keys.begin(), n->exchange.keys.end(), k) ==
        n->exchange.keys.end()) {
      return false;
    }
  }
  return true;
}

}  // namespace

Result<ElisionResult> ElideRedundantExchanges(const PlanNodePtr& root) {
  ElisionResult result;
  result.plan = temporal::ClonePlan(root);
  // Fixpoint: each removal coarsens downstream partitioning facts, which can
  // expose (never revoke) further redundancy — properties are recomputed per
  // round. Plans are small; rounds are bounded by the exchange count.
  while (true) {
    const analysis::PropertyMap props = analysis::InferProperties(result.plan);
    PlanNode* victim = nullptr;
    for (PlanNode* n : temporal::CollectNodes(result.plan)) {
      // The root exchange (if any) declares the output dataset's
      // partitioning; leave it even when redundant.
      if (n == result.plan.get()) continue;
      if (ExchangeIsRedundant(n, props)) {
        victim = n;
        break;
      }
    }
    if (victim == nullptr) break;
    const analysis::Partitioning& child_part =
        props.at(victim->children[0].get()).partitioning;
    result.elided.push_back("elided Exchange " + victim->exchange.ToString() +
                            ": input already partitioned " +
                            child_part.ToString());
    const PlanNodePtr replacement = victim->children[0];
    // CollectNodes hands back raw pointers, and the victim itself is one of
    // them; splicing its parent's edge must not drop the last reference
    // mid-walk or the walk would touch a freed node.
    PlanNodePtr victim_keep_alive;
    for (PlanNode* n : temporal::CollectNodes(result.plan)) {
      for (auto& c : n->children) {
        if (c.get() == victim) {
          if (victim_keep_alive == nullptr) victim_keep_alive = c;
          c = replacement;
        }
      }
    }
  }
  if (!result.elided.empty()) {
    // Cross-check: the surviving exchanges must still satisfy §III-A step 2
    // and §III-B over their (now longer) scopes. A violation here means the
    // property rules proved something false; refuse the plan.
    analysis::AnalysisReport placement =
        analysis::CheckExchangePlacement(result.plan);
    if (placement.HasErrors()) {
      return Status::Invalid(
          "exchange elision produced an invalid placement (property "
          "inference bug):\n" +
          placement.ToString());
    }
  }
  return result;
}

}  // namespace timr::framework
