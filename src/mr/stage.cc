#include "mr/stage.h"

#include "common/hash.h"
#include "common/logging.h"

namespace timr::mr {

PartitionFn HashPartitioner(std::vector<std::vector<int>> key_indices_per_input) {
  return [keys = std::move(key_indices_per_input)](
             int input_index, const Row& row, int num_partitions,
             std::vector<int>* targets) {
    TIMR_DCHECK(input_index >= 0 &&
                static_cast<size_t>(input_index) < keys.size());
    const auto& idx = keys[input_index];
    uint64_t h = 0x51ed270b0a1f3c49ULL;
    for (int i : idx) h = HashCombine(h, row[i].Hash());
    targets->push_back(static_cast<int>(h % static_cast<uint64_t>(num_partitions)));
  };
}

PartitionFn SinglePartition() {
  return [](int, const Row&, int, std::vector<int>* targets) {
    targets->push_back(0);
  };
}

}  // namespace timr::mr
