#include "mr/stage.h"

#include "common/hash.h"
#include "common/logging.h"

namespace timr::mr {

KeyHashFn MakeKeyHasher(std::vector<std::vector<int>> key_indices_per_input) {
  return [keys = std::move(key_indices_per_input)](int input_index,
                                                   const Row& row) {
    TIMR_DCHECK(input_index >= 0 &&
                static_cast<size_t>(input_index) < keys.size());
    const auto& idx = keys[input_index];
    uint64_t h = 0x51ed270b0a1f3c49ULL;
    for (int i : idx) h = HashCombine(h, row[i].Hash());
    return h;
  };
}

PartitionFn HashPartitioner(std::vector<std::vector<int>> key_indices_per_input) {
  // Built on MakeKeyHasher so routing and skew detection share one hash: the
  // cluster may route via the stage's key_hash_fn and get exactly this
  // partition assignment.
  return [hash = MakeKeyHasher(std::move(key_indices_per_input))](
             int input_index, const Row& row, int num_partitions,
             std::vector<int>* targets) {
    const uint64_t h = hash(input_index, row);
    targets->push_back(static_cast<int>(h % static_cast<uint64_t>(num_partitions)));
  };
}

PartitionFn SinglePartition() {
  return [](int, const Row&, int, std::vector<int>* targets) {
    targets->push_back(0);
  };
}

std::vector<bool> ConsumableInputFlags(const MRStage& stage) {
  std::vector<bool> consumable(stage.inputs.size(), false);
  for (int idx : stage.consumable_inputs) {
    if (idx < 0 || idx >= static_cast<int>(stage.inputs.size())) continue;
    int name_uses = 0;
    for (const auto& name : stage.inputs) {
      if (name == stage.inputs[idx]) ++name_uses;
    }
    if (name_uses == 1) consumable[idx] = true;
  }
  return consumable;
}

std::vector<std::string> ConsumedInputNames(const MRStage& stage) {
  const std::vector<bool> consumable = ConsumableInputFlags(stage);
  std::vector<std::string> names;
  for (size_t i = 0; i < stage.inputs.size(); ++i) {
    if (consumable[i]) names.push_back(stage.inputs[i]);
  }
  return names;
}

}  // namespace timr::mr
