// Adaptive-skew decision logic (SkewPolicy, stage.h), factored out of
// cluster.cc so the thread-mode runtime and the multi-process driver make
// *identical* split decisions from identical inputs. Every function here is a
// pure function of its arguments — never of thread count, timing, or which
// runtime called it — which is what keeps skew-split outputs bit-identical
// across modes (ROADMAP 5(b), DESIGN.md §5f).

#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "mr/stage.h"

namespace timr::mr {

struct SplitDecision {
  int partition = 0;
  std::vector<uint64_t> hot_keys;        // (count desc, hash asc) order
  std::unordered_set<uint64_t> hot_set;  // same keys, for reroute lookup
};

/// Decide which partitions to split and which of their keys are hot, from the
/// merged (summed) hot-key sketch and the per-partition routed row counts.
/// Candidates are ordered by (count desc, key hash asc) — a total order, so
/// the selected set is deterministic even though the sketch map's iteration
/// order is not.
std::vector<SplitDecision> DecidePartitionSplits(
    const SkewPolicy& policy, const std::vector<size_t>& routed_rows,
    double median_rows, const std::unordered_map<uint64_t, uint64_t>& sketch,
    int parts);

/// Salt mixed into the virtual-slot assignment, derived from the stage name
/// only (never runtime state).
uint64_t StageSalt(const std::string& stage_name);

/// Move the hot rows of `(*buckets)[d.partition]` into the virtual buckets
/// `(*buckets)[vbase + slot]`, where slot = HashMix(key_hash ^ stage_salt) %
/// fanout. `buckets` must already have at least vbase + fanout entries. Rows
/// whose key is not hot stay in the base bucket, preserving relative order.
void RerouteHotRows(const KeyHashFn& key_hash, int input_index,
                    uint64_t stage_salt, int fanout, const SplitDecision& d,
                    int vbase, std::vector<std::vector<Row>>* buckets);

/// K-way merge of canonically sorted runs (RowTimeLess order) via a pairwise
/// merge tree; returns one canonically ordered run. Consumes the inputs.
std::vector<Row> MergeSortedRuns(std::vector<std::vector<Row>> runs);

}  // namespace timr::mr
