#include "mr/rpc.h"

#include <errno.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "common/hash.h"

namespace timr::mr::rpc {

namespace {

// Counts in payloads are bounded so a corrupt field cannot cause runaway
// allocation before the data backing it is even present.
constexpr uint64_t kMaxCells = uint64_t{1} << 20;
constexpr uint64_t kMaxFields = uint64_t{1} << 20;
constexpr uint64_t kMaxRows = uint64_t{1} << 40;  // reserve() is clamped below

void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

uint32_t GetU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

uint64_t GetU64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

/// read() exactly n bytes; false on EOF/error before n bytes arrived.
/// `*got_any` reports whether at least one byte arrived (distinguishes a
/// clean peer close from a mid-frame truncation).
bool ReadExact(int fd, void* buf, size_t n, bool* got_any) {
  char* p = static_cast<char*>(buf);
  size_t off = 0;
  while (off < n) {
    const ssize_t r = ::read(fd, p + off, n - off);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;  // EOF
    if (got_any != nullptr) *got_any = true;
    off += static_cast<size_t>(r);
  }
  return true;
}

}  // namespace

bool IsKnownMsgType(uint8_t t) {
  return t >= static_cast<uint8_t>(MsgType::kHello) &&
         t <= static_cast<uint8_t>(MsgType::kShutdown);
}

void EncodeFrame(MsgType type, std::string_view payload, std::string* out) {
  out->clear();
  out->reserve(kFrameHeaderBytes + payload.size());
  PutU32(out, kFrameMagic);
  out->push_back(static_cast<char>(type));
  out->append(3, '\0');  // padding: one u8 + one u16, reserved
  PutU64(out, payload.size());
  PutU64(out, HashBytes(payload.data(), payload.size()));
  out->append(payload.data(), payload.size());
}

DecodeResult DecodeFrame(std::string_view bytes) {
  DecodeResult res;
  if (bytes.size() < kFrameHeaderBytes) {
    // Only a prefix of the header: malformed if what is there already
    // contradicts the format, otherwise just incomplete.
    if (bytes.size() >= sizeof(uint32_t) && GetU32(bytes.data()) != kFrameMagic) {
      res.status = Status::RpcError("rpc frame: bad magic");
      return res;
    }
    res.needs_more = true;
    return res;
  }
  if (GetU32(bytes.data()) != kFrameMagic) {
    res.status = Status::RpcError("rpc frame: bad magic");
    return res;
  }
  const uint8_t type = static_cast<uint8_t>(bytes[4]);
  if (!IsKnownMsgType(type)) {
    res.status = Status::RpcError("rpc frame: unknown message type " +
                                  std::to_string(static_cast<int>(type)));
    return res;
  }
  const uint64_t len = GetU64(bytes.data() + 8);
  if (len > kMaxFramePayload) {
    res.status = Status::RpcError("rpc frame: payload length " +
                                  std::to_string(len) + " exceeds cap");
    return res;
  }
  if (bytes.size() < kFrameHeaderBytes + len) {
    res.needs_more = true;
    return res;
  }
  const uint64_t declared_hash = GetU64(bytes.data() + 16);
  const std::string_view payload = bytes.substr(kFrameHeaderBytes, len);
  if (HashBytes(payload.data(), payload.size()) != declared_hash) {
    res.status = Status::RpcError("rpc frame: payload hash mismatch");
    return res;
  }
  res.frame.type = static_cast<MsgType>(type);
  res.frame.payload.assign(payload.data(), payload.size());
  res.consumed = kFrameHeaderBytes + len;
  return res;
}

Status SendFrame(int fd, MsgType type, std::string_view payload) {
  std::string wire;
  EncodeFrame(type, payload, &wire);
  size_t off = 0;
  while (off < wire.size()) {
    const ssize_t w =
        ::send(fd, wire.data() + off, wire.size() - off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::RpcError(std::string("rpc send failed: ") +
                              ::strerror(errno));
    }
    off += static_cast<size_t>(w);
  }
  return Status::OK();
}

Status RecvFrame(int fd, Frame* out) {
  char header[kFrameHeaderBytes];
  bool got_any = false;
  if (!ReadExact(fd, header, sizeof(header), &got_any)) {
    return got_any
               ? Status::RpcError("rpc frame: truncated header")
               : Status::RpcError("rpc frame: peer closed the connection");
  }
  const std::string_view hv(header, sizeof(header));
  if (GetU32(hv.data()) != kFrameMagic) {
    return Status::RpcError("rpc frame: bad magic");
  }
  const uint8_t type = static_cast<uint8_t>(hv[4]);
  if (!IsKnownMsgType(type)) {
    return Status::RpcError("rpc frame: unknown message type " +
                            std::to_string(static_cast<int>(type)));
  }
  const uint64_t len = GetU64(hv.data() + 8);
  if (len > kMaxFramePayload) {
    return Status::RpcError("rpc frame: payload length " + std::to_string(len) +
                            " exceeds cap");
  }
  const uint64_t declared_hash = GetU64(hv.data() + 16);
  std::string payload(len, '\0');
  if (len > 0 && !ReadExact(fd, payload.data(), len, nullptr)) {
    return Status::RpcError("rpc frame: truncated payload (got fewer than " +
                            std::to_string(len) + " bytes)");
  }
  if (HashBytes(payload.data(), payload.size()) != declared_hash) {
    return Status::RpcError("rpc frame: payload hash mismatch");
  }
  out->type = static_cast<MsgType>(type);
  out->payload = std::move(payload);
  return Status::OK();
}

// ------------------------------------------------------ payload encoding --

void WireWriter::Cell(const Value& v) {
  U8(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kInt64: {
      const int64_t x = v.AsInt64();
      AppendRaw(&x, sizeof(x));
      break;
    }
    case ValueType::kDouble:
      F64(v.AsDouble());
      break;
    case ValueType::kString:
      Str(v.AsString());
      break;
  }
}

void WireWriter::AppendRow(const Row& row) {
  U64(row.size());
  for (const Value& v : row) Cell(v);
}

void WireWriter::Rows(const std::vector<Row>& rows) {
  U64(rows.size());
  for (const Row& r : rows) AppendRow(r);
}

void WireWriter::WriteSchema(const Schema& schema) {
  U64(schema.num_fields());
  for (const auto& f : schema.fields()) {
    Str(f.name);
    U8(static_cast<uint8_t>(f.type));
  }
}

bool WireReader::ReadRaw(void* p, size_t n) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  std::memcpy(p, data_.data() + pos_, n);
  pos_ += n;
  return true;
}

bool WireReader::U8(uint8_t* v) { return ReadRaw(v, sizeof(*v)); }
bool WireReader::U32(uint32_t* v) { return ReadRaw(v, sizeof(*v)); }
bool WireReader::U64(uint64_t* v) { return ReadRaw(v, sizeof(*v)); }
bool WireReader::F64(double* v) { return ReadRaw(v, sizeof(*v)); }

bool WireReader::Str(std::string* s) {
  uint64_t n = 0;
  if (!U64(&n)) return false;
  if (n > data_.size() - pos_) {
    ok_ = false;
    return false;
  }
  s->assign(data_.data() + pos_, n);
  pos_ += n;
  return true;
}

bool WireReader::Cell(Value* v) {
  uint8_t tag = 0;
  if (!U8(&tag)) return false;
  switch (tag) {
    case static_cast<uint8_t>(ValueType::kInt64): {
      int64_t x = 0;
      if (!ReadRaw(&x, sizeof(x))) return false;
      *v = Value(x);
      return true;
    }
    case static_cast<uint8_t>(ValueType::kDouble): {
      double x = 0;
      if (!F64(&x)) return false;
      *v = Value(x);
      return true;
    }
    case static_cast<uint8_t>(ValueType::kString): {
      std::string s;
      if (!Str(&s)) return false;
      *v = Value(std::move(s));
      return true;
    }
    default:
      ok_ = false;
      return false;
  }
}

bool WireReader::ReadRow(Row* row) {
  uint64_t n = 0;
  if (!U64(&n) || n > kMaxCells) {
    ok_ = false;
    return false;
  }
  row->clear();
  row->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Value v;
    if (!Cell(&v)) return false;
    row->push_back(std::move(v));
  }
  return true;
}

bool WireReader::Rows(std::vector<Row>* rows) {
  uint64_t n = 0;
  if (!U64(&n) || n > kMaxRows) {
    ok_ = false;
    return false;
  }
  rows->clear();
  // Each serialized row is at least 8 bytes (its cell count), so `remaining`
  // bounds how many rows a well-formed payload can still hold — a corrupt
  // count fails on the first missing row instead of pre-allocating for it.
  rows->reserve(std::min<uint64_t>(n, remaining() / 8));
  for (uint64_t i = 0; i < n; ++i) {
    Row r;
    if (!ReadRow(&r)) return false;
    rows->push_back(std::move(r));
  }
  return true;
}

bool WireReader::ReadSchema(Schema* schema) {
  uint64_t n = 0;
  if (!U64(&n) || n > kMaxFields) {
    ok_ = false;
    return false;
  }
  std::vector<Schema::Field> fields;
  fields.reserve(std::min<uint64_t>(n, remaining() / 9));
  for (uint64_t i = 0; i < n; ++i) {
    Schema::Field f;
    uint8_t type = 0;
    if (!Str(&f.name) || !U8(&type) || type > 2) {
      ok_ = false;
      return false;
    }
    f.type = static_cast<ValueType>(type);
    fields.push_back(std::move(f));
  }
  *schema = Schema(std::move(fields));
  return true;
}

}  // namespace timr::mr::rpc
