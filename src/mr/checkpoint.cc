#include "mr/checkpoint.h"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace timr::mr {

namespace {

constexpr char kMagic[8] = {'T', 'I', 'M', 'R', 'C', 'K', 'P', '1'};
constexpr char kManifestName[] = "manifest";
constexpr char kManifestHeader[] = "timr-checkpoint-manifest v1";

void WriteU64(std::ostream& os, uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void WriteU8(std::ostream& os, uint8_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool ReadU64(std::istream& is, uint64_t* v) {
  is.read(reinterpret_cast<char*>(v), sizeof(*v));
  return bool(is);
}

bool ReadU8(std::istream& is, uint8_t* v) {
  is.read(reinterpret_cast<char*>(v), sizeof(*v));
  return bool(is);
}

void WriteString(std::ostream& os, const std::string& s) {
  WriteU64(os, s.size());
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool ReadString(std::istream& is, std::string* s) {
  uint64_t n = 0;
  if (!ReadU64(is, &n)) return false;
  // Guard against a corrupt length field allocating the address space.
  if (n > (1ull << 32)) return false;
  s->resize(n);
  is.read(s->data(), static_cast<std::streamsize>(n));
  return bool(is);
}

void WriteValue(std::ostream& os, const Value& v) {
  WriteU8(os, static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kInt64: {
      const int64_t x = v.AsInt64();
      os.write(reinterpret_cast<const char*>(&x), sizeof(x));
      break;
    }
    case ValueType::kDouble: {
      const double x = v.AsDouble();
      os.write(reinterpret_cast<const char*>(&x), sizeof(x));
      break;
    }
    case ValueType::kString:
      WriteString(os, v.AsString());
      break;
  }
}

bool ReadValue(std::istream& is, Value* out) {
  uint8_t tag = 0;
  if (!ReadU8(is, &tag)) return false;
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kInt64: {
      int64_t x = 0;
      is.read(reinterpret_cast<char*>(&x), sizeof(x));
      if (!is) return false;
      *out = Value(x);
      return true;
    }
    case ValueType::kDouble: {
      double x = 0;
      is.read(reinterpret_cast<char*>(&x), sizeof(x));
      if (!is) return false;
      *out = Value(x);
      return true;
    }
    case ValueType::kString: {
      std::string s;
      if (!ReadString(is, &s)) return false;
      *out = Value(std::move(s));
      return true;
    }
  }
  return false;
}

}  // namespace

Status WriteDatasetFile(const std::string& path, const Dataset& dataset) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) return Status::IOError("checkpoint: cannot open " + path);
  os.write(kMagic, sizeof(kMagic));
  WriteU64(os, dataset.schema().num_fields());
  for (const auto& f : dataset.schema().fields()) {
    WriteString(os, f.name);
    WriteU8(os, static_cast<uint8_t>(f.type));
  }
  WriteU64(os, dataset.num_partitions());
  for (size_t p = 0; p < dataset.num_partitions(); ++p) {
    const std::vector<Row>& rows = dataset.partition(p);
    WriteU64(os, rows.size());
    for (const Row& row : rows) {
      WriteU64(os, row.size());
      for (const Value& v : row) WriteValue(os, v);
    }
  }
  os.flush();
  if (!os) return Status::IOError("checkpoint: write failed for " + path);
  return Status::OK();
}

Result<Dataset> ReadDatasetFile(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return Status::IOError("checkpoint: cannot open " + path);
  char magic[sizeof(kMagic)];
  is.read(magic, sizeof(magic));
  if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::IOError("checkpoint: bad magic in " + path);
  }
  uint64_t nfields = 0;
  if (!ReadU64(is, &nfields) || nfields > (1ull << 20)) {
    return Status::IOError("checkpoint: corrupt schema in " + path);
  }
  std::vector<Schema::Field> fields;
  fields.reserve(nfields);
  for (uint64_t i = 0; i < nfields; ++i) {
    Schema::Field f;
    uint8_t type = 0;
    if (!ReadString(is, &f.name) || !ReadU8(is, &type) || type > 2) {
      return Status::IOError("checkpoint: corrupt schema in " + path);
    }
    f.type = static_cast<ValueType>(type);
    fields.push_back(std::move(f));
  }
  uint64_t nparts = 0;
  if (!ReadU64(is, &nparts) || nparts > (1ull << 24)) {
    return Status::IOError("checkpoint: corrupt partition count in " + path);
  }
  Dataset dataset(Schema(std::move(fields)), nparts);
  for (uint64_t p = 0; p < nparts; ++p) {
    uint64_t nrows = 0;
    if (!ReadU64(is, &nrows)) {
      return Status::IOError("checkpoint: truncated file " + path);
    }
    std::vector<Row>& rows = dataset.partition(p);
    rows.reserve(nrows);
    for (uint64_t r = 0; r < nrows; ++r) {
      uint64_t ncells = 0;
      if (!ReadU64(is, &ncells) || ncells > (1ull << 20)) {
        return Status::IOError("checkpoint: truncated file " + path);
      }
      Row row;
      row.reserve(ncells);
      for (uint64_t c = 0; c < ncells; ++c) {
        Value v;
        if (!ReadValue(is, &v)) {
          return Status::IOError("checkpoint: truncated file " + path);
        }
        row.push_back(std::move(v));
      }
      rows.push_back(std::move(row));
    }
  }
  return dataset;
}

CheckpointStore::CheckpointStore(std::string spill_dir)
    : dir_(std::move(spill_dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    load_status_ =
        Status::IOError("checkpoint: cannot create " + dir_ + ": " + ec.message());
    return;
  }
  if (std::filesystem::exists(std::filesystem::path(dir_) / kManifestName)) {
    load_status_ = LoadManifest();
  }
}

Status CheckpointStore::SaveStage(
    size_t index, const std::string& stage_name,
    const std::vector<std::pair<std::string, const Dataset*>>& outputs,
    std::vector<std::string> released) {
  TIMR_RETURN_NOT_OK(load_status_);
  if (index != records_.size()) {
    return Status::Invalid("checkpoint: stage " + std::to_string(index) +
                           " saved out of order (have " +
                           std::to_string(records_.size()) + " records)");
  }
  Record rec;
  rec.stage_name = stage_name;
  rec.primary_rows = outputs.empty() ? 0 : outputs[0].second->TotalRows();
  rec.released = std::move(released);
  for (size_t j = 0; j < outputs.size(); ++j) {
    const auto& [name, dataset] = outputs[j];
    if (dir_.empty()) {
      rec.outputs.emplace_back(name, *dataset);  // deep snapshot
    } else {
      if (name.find_first_of("\t\n") != std::string::npos) {
        return Status::Invalid("checkpoint: dataset name not spillable: " + name);
      }
      const std::string file =
          "stage" + std::to_string(index) + "_out" + std::to_string(j) + ".ds";
      TIMR_RETURN_NOT_OK(WriteDatasetFile(
          (std::filesystem::path(dir_) / file).string(), *dataset));
      rec.spilled.emplace_back(name, file);
    }
  }
  records_.push_back(std::move(rec));
  if (!dir_.empty()) return WriteManifest();
  return Status::OK();
}

Result<size_t> CheckpointStore::Restore(
    const std::vector<std::string>& stage_names,
    std::map<std::string, Dataset>* store) const {
  TIMR_RETURN_NOT_OK(load_status_);
  if (records_.size() > stage_names.size()) {
    return Status::Invalid("checkpoint: holds " +
                           std::to_string(records_.size()) +
                           " stages but the job has only " +
                           std::to_string(stage_names.size()));
  }
  for (size_t i = 0; i < records_.size(); ++i) {
    if (records_[i].stage_name != stage_names[i]) {
      return Status::Invalid("checkpoint: stage " + std::to_string(i) +
                             " is '" + records_[i].stage_name +
                             "' but the job expects '" + stage_names[i] +
                             "' — checkpoint belongs to a different job");
    }
  }
  // Replay in order: outputs inserted, consumed inputs re-released. This
  // reproduces the exact store state after the last checkpointed stage.
  for (const Record& rec : records_) {
    for (const auto& [name, dataset] : rec.outputs) {
      (*store)[name] = dataset;  // copy; the record stays reusable
    }
    for (const auto& [name, file] : rec.spilled) {
      TIMR_ASSIGN_OR_RETURN(
          (*store)[name],
          ReadDatasetFile((std::filesystem::path(dir_) / file).string()));
    }
    for (const std::string& name : rec.released) {
      auto it = store->find(name);
      if (it == store->end()) {
        return Status::KeyError(
            "checkpoint resume: released dataset '" + name +
            "' not in store — external inputs must be re-provided");
      }
      for (size_t p = 0; p < it->second.num_partitions(); ++p) {
        std::vector<Row>().swap(it->second.partition(p));
      }
    }
  }
  return records_.size();
}

Status CheckpointStore::WriteManifest() const {
  const auto tmp = std::filesystem::path(dir_) / (std::string(kManifestName) + ".tmp");
  {
    std::ofstream os(tmp, std::ios::trunc);
    if (!os) return Status::IOError("checkpoint: cannot write manifest");
    os << kManifestHeader << "\n";
    for (size_t i = 0; i < records_.size(); ++i) {
      const Record& rec = records_[i];
      os << "stage\t" << i << "\t" << rec.stage_name << "\t"
         << rec.primary_rows << "\n";
      for (const auto& [name, file] : rec.spilled) {
        os << "output\t" << name << "\t" << file << "\n";
      }
      for (const std::string& name : rec.released) {
        os << "released\t" << name << "\n";
      }
      os << "end\n";
    }
    os.flush();
    if (!os) return Status::IOError("checkpoint: manifest write failed");
  }
  // Atomic publish: a crash mid-checkpoint leaves the previous manifest.
  std::error_code ec;
  std::filesystem::rename(tmp, std::filesystem::path(dir_) / kManifestName, ec);
  if (ec) return Status::IOError("checkpoint: manifest rename: " + ec.message());
  return Status::OK();
}

Status CheckpointStore::LoadManifest() {
  std::ifstream is(std::filesystem::path(dir_) / kManifestName);
  if (!is) return Status::IOError("checkpoint: cannot read manifest in " + dir_);
  std::string line;
  if (!std::getline(is, line) || line != kManifestHeader) {
    return Status::IOError("checkpoint: bad manifest header in " + dir_);
  }
  records_.clear();
  Record rec;
  bool open = false;
  auto split = [](const std::string& s) {
    std::vector<std::string> parts;
    size_t start = 0;
    while (true) {
      size_t tab = s.find('\t', start);
      if (tab == std::string::npos) {
        parts.push_back(s.substr(start));
        return parts;
      }
      parts.push_back(s.substr(start, tab - start));
      start = tab + 1;
    }
  };
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> parts = split(line);
    if (parts[0] == "stage" && parts.size() == 4) {
      if (open) return Status::IOError("checkpoint: malformed manifest");
      rec = Record{};
      rec.stage_name = parts[2];
      rec.primary_rows = static_cast<size_t>(std::stoull(parts[3]));
      open = true;
    } else if (parts[0] == "output" && parts.size() == 3 && open) {
      rec.spilled.emplace_back(parts[1], parts[2]);
    } else if (parts[0] == "released" && parts.size() == 2 && open) {
      rec.released.push_back(parts[1]);
    } else if (parts[0] == "end" && open) {
      records_.push_back(std::move(rec));
      open = false;
    } else {
      return Status::IOError("checkpoint: malformed manifest line: " + line);
    }
  }
  if (open) return Status::IOError("checkpoint: truncated manifest");
  return Status::OK();
}

}  // namespace timr::mr
