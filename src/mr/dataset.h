// Partitioned datasets: the map-reduce substrate's unit of storage, standing
// in for files in a distributed store (Cosmos/HDFS/GFS in the paper). A
// dataset is a schema plus one row vector per partition (per "machine").

#pragma once

#include <string>
#include <vector>

#include "common/row.h"
#include "common/status.h"

namespace timr::mr {

class Dataset {
 public:
  Dataset() = default;
  Dataset(Schema schema, size_t num_partitions)
      : schema_(std::move(schema)), partitions_(num_partitions) {}

  /// Single-partition dataset holding all rows (how source logs enter a job).
  static Dataset FromRows(Schema schema, std::vector<Row> rows) {
    Dataset d(std::move(schema), 1);
    d.partitions_[0] = std::move(rows);
    return d;
  }

  const Schema& schema() const { return schema_; }
  size_t num_partitions() const { return partitions_.size(); }

  std::vector<Row>& partition(size_t i) { return partitions_[i]; }
  const std::vector<Row>& partition(size_t i) const { return partitions_[i]; }

  size_t TotalRows() const {
    size_t n = 0;
    for (const auto& p : partitions_) n += p.size();
    return n;
  }

  /// All rows concatenated in partition order (for result inspection).
  std::vector<Row> Gather() const {
    std::vector<Row> out;
    out.reserve(TotalRows());
    for (const auto& p : partitions_) out.insert(out.end(), p.begin(), p.end());
    return out;
  }

 private:
  Schema schema_;
  std::vector<std::vector<Row>> partitions_;
};

}  // namespace timr::mr
