#include "mr/cluster.h"

#include <time.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <queue>
#include <sstream>
#include <thread>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"

namespace timr::mr {

namespace {

double ThreadCpuSeconds() {
  timespec ts;
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

bool RowTimeLess(const Row& a, const Row& b) {
  // Primary: Time column. Ties: full lexicographic row comparison, making the
  // sorted order canonical (independent of arrival order).
  const int64_t ta = a[0].AsInt64();
  const int64_t tb = b[0].AsInt64();
  if (ta != tb) return ta < tb;
  return std::lexicographical_compare(a.begin() + 1, a.end(), b.begin() + 1,
                                      b.end());
}

/// Deterministic list scheduling: assign task durations (in partition order)
/// to the least-loaded of `machines`; returns the makespan.
double Makespan(const std::vector<double>& task_seconds, int machines) {
  std::priority_queue<double, std::vector<double>, std::greater<>> loads;
  for (int i = 0; i < machines; ++i) loads.push(0.0);
  for (double t : task_seconds) {
    double least = loads.top();
    loads.pop();
    loads.push(least + t);
  }
  double makespan = 0;
  while (!loads.empty()) {
    makespan = std::max(makespan, loads.top());
    loads.pop();
  }
  return makespan;
}

}  // namespace

std::string JobStats::ToString() const {
  std::ostringstream os;
  for (const auto& s : stages) {
    os << s.name << ": in=" << s.rows_in << " shuffled=" << s.rows_shuffled
       << " out=" << s.rows_out << " parts=" << s.partitions
       << " map=" << s.map_shuffle_seconds << "s sort=" << s.sort_seconds
       << "s reduce=" << s.reduce_seconds
       << "s cpu_total=" << s.task_cpu_seconds_total
       << "s cpu_max=" << s.task_cpu_seconds_max
       << "s simulated=" << s.simulated_parallel_seconds << "s";
    if (s.restarted_tasks > 0) os << " restarts=" << s.restarted_tasks;
    os << "\n";
  }
  return os.str();
}

class LocalCluster::Impl {
 public:
  explicit Impl(size_t threads) : pool(threads) {}
  ThreadPool pool;
};

LocalCluster::LocalCluster(int num_machines, int num_threads)
    : num_machines_(num_machines) {
  TIMR_CHECK(num_machines > 0);
  size_t threads = num_threads > 0
                       ? static_cast<size_t>(num_threads)
                       : std::max<size_t>(1, std::thread::hardware_concurrency());
  impl_ = std::make_unique<Impl>(threads);
}

LocalCluster::~LocalCluster() = default;

Status LocalCluster::RunStage(const MRStage& stage,
                              std::map<std::string, Dataset>* store,
                              StageStats* stats) {
  Stopwatch wall;
  stats->name = stage.name;
  const int parts = stage.num_partitions > 0 ? stage.num_partitions : num_machines_;
  stats->partitions = parts;

  std::vector<Dataset*> inputs;
  for (const auto& name : stage.inputs) {
    auto it = store->find(name);
    if (it == store->end()) {
      return Status::KeyError("stage " + stage.name + ": no dataset named " +
                              name);
    }
    inputs.push_back(&it->second);
  }

  // Consumable inputs (see stage.h): rows may be moved out of them. A name
  // that appears twice among the inputs is read through two indices, so it is
  // never consumed.
  std::vector<bool> consumable(inputs.size(), false);
  for (int idx : stage.consumable_inputs) {
    if (idx < 0 || idx >= static_cast<int>(inputs.size())) continue;
    int name_uses = 0;
    for (const auto& name : stage.inputs) {
      if (name == stage.inputs[idx]) ++name_uses;
    }
    if (name_uses == 1) consumable[idx] = true;
  }

  // --- Phase 1: parallel map + partition. ---
  // Each (input, source partition) is split into morsels; a morsel routes its
  // row range into morsel-local per-destination buckets, so workers share no
  // state. Morsel boundaries never affect the result: phase 2 concatenates
  // buckets in morsel order, which reproduces source order exactly.
  struct Morsel {
    size_t input;
    size_t src_part;
    size_t begin;
    size_t end;
  };
  size_t total_rows = 0;
  for (const Dataset* d : inputs) total_rows += d->TotalRows();
  const size_t workers = impl_->pool.num_threads();
  const size_t morsel_rows =
      std::max<size_t>(1024, total_rows / (workers * 4) + 1);
  std::vector<Morsel> morsels;
  for (size_t i = 0; i < inputs.size(); ++i) {
    for (size_t p = 0; p < inputs[i]->num_partitions(); ++p) {
      const size_t n = inputs[i]->partition(p).size();
      for (size_t begin = 0; begin < n; begin += morsel_rows) {
        morsels.push_back({i, p, begin, std::min(begin + morsel_rows, n)});
      }
    }
  }

  struct MorselOut {
    std::vector<std::vector<Row>> buckets;  // per destination partition
    size_t rows_in = 0;
    size_t rows_shuffled = 0;
    Status status;
  };
  std::vector<MorselOut> mouts(morsels.size());
  std::atomic<bool> map_failed{false};
  impl_->pool.ParallelFor(morsels.size(), [&](size_t m) {
    const Morsel& mo = morsels[m];
    MorselOut& out = mouts[m];
    out.buckets.resize(parts);
    std::vector<Row>& src = inputs[mo.input]->partition(mo.src_part);
    const bool may_move = consumable[mo.input];
    std::vector<int> targets;
    for (size_t r = mo.begin; r < mo.end; ++r) {
      if (map_failed.load(std::memory_order_relaxed)) return;
      Row& row = src[r];
      ++out.rows_in;
      targets.clear();
      stage.partition_fn(static_cast<int>(mo.input), row, parts, &targets);
      for (int t : targets) {
        if (t < 0 || t >= parts) {
          out.status = Status::ExecutionError("partitioner produced target " +
                                              std::to_string(t) +
                                              " out of range");
          map_failed.store(true, std::memory_order_relaxed);
          return;
        }
      }
      out.rows_shuffled += targets.size();
      if (targets.size() == 1 && may_move) {
        out.buckets[targets[0]].push_back(std::move(row));
      } else {
        for (int t : targets) out.buckets[t].push_back(row);
      }
    }
  });
  for (const MorselOut& out : mouts) {
    // First error in morsel order, for a deterministic message.
    TIMR_RETURN_NOT_OK(out.status);
  }
  for (const MorselOut& out : mouts) {
    stats->rows_in += out.rows_in;
    stats->rows_shuffled += out.rows_shuffled;
  }
  // Release consumed inputs: their rows are either moved into the shuffle or
  // copied there, and the stage owns the only remaining reference.
  for (size_t i = 0; i < inputs.size(); ++i) {
    if (!consumable[i]) continue;
    for (size_t p = 0; p < inputs[i]->num_partitions(); ++p) {
      std::vector<Row>().swap(inputs[i]->partition(p));
    }
  }
  stats->map_shuffle_seconds = wall.ElapsedSeconds();

  // --- Phase 2: parallel merge + sort per (partition, input) bucket. ---
  // Concatenate morsel buckets in morsel order, then sort by Time (canonical
  // total order; see header comment). Each bucket is an independent task.
  Stopwatch sort_watch;
  std::vector<std::vector<std::vector<Row>>> buckets(
      parts, std::vector<std::vector<Row>>(inputs.size()));
  impl_->pool.ParallelFor(
      static_cast<size_t>(parts) * inputs.size(), [&](size_t task) {
        const size_t p = task / inputs.size();
        const size_t i = task % inputs.size();
        std::vector<Row>& dst = buckets[p][i];
        size_t total = 0;
        for (size_t m = 0; m < morsels.size(); ++m) {
          if (morsels[m].input == i) total += mouts[m].buckets[p].size();
        }
        dst.reserve(total);
        for (size_t m = 0; m < morsels.size(); ++m) {
          if (morsels[m].input != i) continue;
          std::vector<Row>& src = mouts[m].buckets[p];
          dst.insert(dst.end(), std::make_move_iterator(src.begin()),
                     std::make_move_iterator(src.end()));
          std::vector<Row>().swap(src);
        }
        std::sort(dst.begin(), dst.end(), RowTimeLess);
      });
  mouts.clear();
  stats->sort_seconds = sort_watch.ElapsedSeconds();

  // --- Phase 3: parallel reduce, one task per partition. ---
  Stopwatch reduce_watch;
  Dataset output(stage.output_schema, parts);
  std::vector<double> task_seconds(parts, 0.0);
  std::vector<int> restarts(parts, 0);
  std::vector<Status> task_status(parts);

  impl_->pool.ParallelFor(static_cast<size_t>(parts), [&](size_t p) {
    while (true) {
      std::vector<Row> out_rows;
      const double cpu0 = ThreadCpuSeconds();
      Status st = stage.reducer(static_cast<int>(p), buckets[p], &out_rows);
      task_seconds[p] += ThreadCpuSeconds() - cpu0;
      if (!st.ok()) {
        task_status[p] = std::move(st);
        return;
      }
      // Simulated task failure: discard this attempt's output and restart,
      // exactly as M-R handles a lost reducer (paper §III-C.1).
      if (injector_ != nullptr &&
          injector_->ShouldFail(stage.name, static_cast<int>(p))) {
        restarts[p]++;
        continue;
      }
      output.partition(p) = std::move(out_rows);
      return;
    }
  });
  for (const Status& st : task_status) {
    // First error in partition order, for a deterministic message.
    TIMR_RETURN_NOT_OK(st);
  }
  stats->reduce_seconds = reduce_watch.ElapsedSeconds();

  for (int p = 0; p < parts; ++p) {
    stats->rows_out += output.partition(p).size();
    stats->task_cpu_seconds_total += task_seconds[p];
    stats->task_cpu_seconds_max =
        std::max(stats->task_cpu_seconds_max, task_seconds[p]);
    stats->restarted_tasks += restarts[p];
  }
  stats->simulated_parallel_seconds = Makespan(task_seconds, num_machines_);
  stats->wall_seconds = wall.ElapsedSeconds();

  (*store)[stage.output] = std::move(output);
  return Status::OK();
}

Result<JobStats> LocalCluster::RunJob(const std::vector<MRStage>& stages,
                                      std::map<std::string, Dataset>* store) {
  JobStats job;
  for (const MRStage& stage : stages) {
    StageStats stats;
    TIMR_RETURN_NOT_OK(RunStage(stage, store, &stats));
    job.stages.push_back(std::move(stats));
  }
  return job;
}

}  // namespace timr::mr
