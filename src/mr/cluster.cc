#include "mr/cluster.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <iterator>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "mr/driver.h"
#include "mr/runtime_util.h"
#include "mr/skew.h"
#include "mr/worker.h"

namespace timr::mr {

std::string JobStats::ToString() const {
  std::ostringstream os;
  for (const auto& s : stages) {
    if (s.recovered_from_checkpoint) {
      os << s.name << ": recovered from checkpoint (out=" << s.rows_out
         << ")\n";
      continue;
    }
    os << s.name << ": in=" << s.rows_in << " shuffled=" << s.rows_shuffled
       << " out=" << s.rows_out << " parts=" << s.partitions
       << " map=" << s.map_shuffle_seconds << "s sort=" << s.sort_seconds
       << "s reduce=" << s.reduce_seconds
       << "s cpu_total=" << s.task_cpu_seconds_total
       << "s cpu_max=" << s.task_cpu_seconds_max
       << "s simulated=" << s.simulated_parallel_seconds
       << "s part_max=" << s.partition_seconds_max
       << "s part_median=" << s.partition_seconds_median << "s"
       << " rows_max=" << s.partition_rows_max
       << " rows_median=" << s.partition_rows_median;
    if (s.partitions_split > 0) {
      os << " hot_keys=" << s.hot_keys_detected
         << " splits=" << s.partitions_split
         << " virtual=" << s.virtual_partitions
         << " post_split_ratio=" << s.post_split_rows_ratio;
    }
    // The fault and process counter set is emitted unconditionally — a
    // counter that reads 0 is information ("no retries happened"), and log
    // scrapers get a fixed set of fields to key on.
    os << " attempts=" << s.task_attempts << " retries=" << s.retried_tasks
       << " speculative=" << s.speculative_tasks
       << " spec_won=" << s.speculative_won
       << " quarantined=" << s.quarantined_rows << " workers=" << s.workers
       << " worker_restarts=" << s.worker_restarts
       << " rpc_retries=" << s.rpc_retries
       << " heartbeat_timeouts=" << s.heartbeat_timeouts;
    os << "\n";
  }
  return os.str();
}

class LocalCluster::Impl {
 public:
  explicit Impl(size_t threads) : pool(threads) {}
  ThreadPool pool;
};

LocalCluster::LocalCluster(int num_machines, int num_threads)
    : num_machines_(num_machines) {
  TIMR_CHECK(num_machines > 0);
  size_t threads = num_threads > 0
                       ? static_cast<size_t>(num_threads)
                       : std::max<size_t>(1, std::thread::hardware_concurrency());
  impl_ = std::make_unique<Impl>(threads);
}

LocalCluster::~LocalCluster() = default;

Status LocalCluster::RunStage(const MRStage& stage,
                              std::map<std::string, Dataset>* store,
                              StageStats* stats) {
  if (process_.workers > 0) {
    ProcessStageEnv env;
    env.options = &process_;
    env.injector = injector_;
    env.fault = &fault_;
    env.num_machines = num_machines_;
    bool ran = false;
    TIMR_RETURN_NOT_OK(RunStageProcess(stage, store, stats, env, &ran));
    if (ran) return Status::OK();
    // Process mode unavailable (TSan build, or not a single worker could be
    // spawned): degrade to the thread-mode runtime with fresh stats.
    *stats = StageStats{};
  }
  return RunStageThreaded(stage, store, stats);
}

Status LocalCluster::RunStageThreaded(const MRStage& stage,
                                      std::map<std::string, Dataset>* store,
                                      StageStats* stats) {
  Stopwatch wall;
  stats->name = stage.name;
  const int parts = stage.num_partitions > 0 ? stage.num_partitions : num_machines_;
  stats->partitions = parts;

  // Adaptive repartitioning is live when the stage opted in *and* carries the
  // key hash that makes whole-key sub-partitioning meaningful. When live, the
  // map phase routes via key_hash_fn % parts directly — by HashPartitioner's
  // construction the exact assignment partition_fn would have produced — so
  // detection, routing, and the salted split all see one hash.
  const SkewPolicy& skew = stage.skew;
  const bool skew_enabled =
      skew.adaptive_repartition && stage.key_hash_fn != nullptr && parts > 1;
  const size_t sample_mask =
      (size_t{1} << std::clamp(skew.sample_shift, 0, 20)) - 1;

  std::vector<Dataset*> inputs;
  for (const auto& name : stage.inputs) {
    auto it = store->find(name);
    if (it == store->end()) {
      return Status::KeyError("stage " + stage.name + ": no dataset named " +
                              name);
    }
    inputs.push_back(&it->second);
  }
  std::vector<Schema> schemas;
  schemas.reserve(inputs.size());
  for (const Dataset* d : inputs) schemas.push_back(d->schema());

  // Consumable inputs (see stage.h): rows may be moved out of them.
  const std::vector<bool> consumable = ConsumableInputFlags(stage);

  // --- Phase 1: parallel map + partition. ---
  // Each (input, source partition) is split into morsels; a morsel routes its
  // row range into morsel-local per-destination buckets (RunMapTask — the
  // task body shared with the worker process), so workers share no state.
  // Morsel boundaries never affect the result: phase 2 concatenates buckets
  // in morsel order, which reproduces source order exactly.
  struct Morsel {
    size_t input;
    size_t src_part;
    size_t begin;
    size_t end;
  };
  size_t total_rows = 0;
  for (const Dataset* d : inputs) total_rows += d->TotalRows();
  const size_t workers = impl_->pool.num_threads();
  const size_t morsel_rows =
      std::max<size_t>(1024, total_rows / (workers * 4) + 1);
  std::vector<Morsel> morsels;
  for (size_t i = 0; i < inputs.size(); ++i) {
    for (size_t p = 0; p < inputs[i]->num_partitions(); ++p) {
      const size_t n = inputs[i]->partition(p).size();
      for (size_t begin = 0; begin < n; begin += morsel_rows) {
        morsels.push_back({i, p, begin, std::min(begin + morsel_rows, n)});
      }
    }
  }

  const bool quarantine = fault_.quarantine_inputs;
  std::vector<MapTaskResult> mouts(morsels.size());
  std::vector<Status> mstatus(morsels.size());
  std::atomic<bool> map_failed{false};
  impl_->pool.ParallelFor(morsels.size(), [&](size_t m) {
    const Morsel& mo = morsels[m];
    MapTaskSpec spec;
    spec.task_id = static_cast<uint32_t>(m);
    spec.input_index = static_cast<int>(mo.input);
    spec.src_partition = mo.src_part;
    spec.begin = mo.begin;
    spec.end = mo.end;
    spec.parts = parts;
    spec.quarantine = quarantine;
    spec.skew_enabled = skew_enabled;
    spec.may_move = consumable[mo.input];
    spec.sample_mask = sample_mask;
    mstatus[m] = RunMapTask(stage, inputs[mo.input]->schema(),
                            &inputs[mo.input]->partition(mo.src_part), spec,
                            &mouts[m], &map_failed);
    if (!mstatus[m].ok()) map_failed.store(true, std::memory_order_relaxed);
  });
  for (const Status& st : mstatus) {
    // First error in morsel order, for a deterministic message.
    TIMR_RETURN_NOT_OK(st);
  }
  for (const MapTaskResult& out : mouts) {
    stats->rows_in += out.rows_in;
    stats->rows_shuffled += out.rows_shuffled;
    stats->quarantined_rows += out.quarantined.size();
  }
  // Poison-row budget: a trickle of bad rows is diverted, a flood means the
  // input itself is wrong and the stage must not silently drop it.
  if (stats->quarantined_rows > 0) {
    const double rate = static_cast<double>(stats->quarantined_rows) /
                        static_cast<double>(stats->rows_in);
    if (rate > fault_.max_input_error_rate) {
      std::string first;
      for (const MapTaskResult& out : mouts) {
        if (!out.first_bad.empty()) {
          first = out.first_bad;
          break;
        }
      }
      std::ostringstream os;
      os << "stage " << stage.name << ": " << stats->quarantined_rows << " of "
         << stats->rows_in << " input rows (" << rate * 100
         << "%) failed schema validation, exceeding max_input_error_rate="
         << fault_.max_input_error_rate << "; first error: " << first;
      return Status::DataError(os.str());
    }
  }
  Dataset quarantine_out;
  if (quarantine) {
    std::vector<Row> qrows;
    qrows.reserve(stats->quarantined_rows);
    for (MapTaskResult& out : mouts) {
      // Morsel order is source order, so the quarantine dataset is
      // deterministic for any thread count like every other output.
      for (Row& q : out.quarantined) qrows.push_back(std::move(q));
      out.quarantined.clear();
    }
    quarantine_out = Dataset::FromRows(QuarantineSchema(), std::move(qrows));
  }
  // Release consumed inputs: their rows are either moved into the shuffle or
  // copied there, and the stage owns the only remaining reference.
  for (size_t i = 0; i < inputs.size(); ++i) {
    if (!consumable[i]) continue;
    for (size_t p = 0; p < inputs[i]->num_partitions(); ++p) {
      std::vector<Row>().swap(inputs[i]->partition(p));
    }
  }

  // Row-count skew over the routing (always recorded — the detector's input,
  // and the row twin of partition_seconds_max/median).
  std::vector<size_t> routed_rows(parts, 0);
  for (const MapTaskResult& out : mouts) {
    for (int p = 0; p < parts; ++p) routed_rows[p] += out.buckets[p].size();
  }
  {
    std::vector<double> as_double(routed_rows.begin(), routed_rows.end());
    stats->partition_rows_max =
        routed_rows.empty()
            ? 0
            : *std::max_element(routed_rows.begin(), routed_rows.end());
    stats->partition_rows_median = MedianOf(std::move(as_double));
  }

  // --- Adaptive repartitioning: detect hot partitions, split their hot keys
  // across virtual partitions (skew.h — the same pure decision functions the
  // multi-process driver uses, so both modes split identically).
  std::vector<SplitDecision> decisions;
  const int fanout = std::max(2, skew.hot_key_fanout);
  if (skew_enabled) {
    const double median_rows = std::max(stats->partition_rows_median, 1.0);
    std::unordered_map<uint64_t, uint64_t> sketch;
    for (MapTaskResult& out : mouts) {
      for (const auto& [h, c] : out.sketch) sketch[h] += c;
      out.sketch.clear();
    }
    decisions =
        DecidePartitionSplits(skew, routed_rows, median_rows, sketch, parts);
  }

  int phys_parts = parts;
  std::vector<int> vbase(decisions.size(), 0);
  for (size_t d = 0; d < decisions.size(); ++d) {
    vbase[d] = phys_parts;
    phys_parts += fanout;
  }
  if (!decisions.empty()) {
    const uint64_t stage_salt = StageSalt(stage.name);
    impl_->pool.ParallelFor(morsels.size(), [&](size_t m) {
      MapTaskResult& out = mouts[m];
      out.buckets.resize(static_cast<size_t>(phys_parts));
      const int input_index = static_cast<int>(morsels[m].input);
      for (size_t d = 0; d < decisions.size(); ++d) {
        RerouteHotRows(stage.key_hash_fn, input_index, stage_salt, fanout,
                       decisions[d], vbase[d], &out.buckets);
      }
    });
    std::vector<double> phys_rows(phys_parts, 0.0);
    for (const MapTaskResult& out : mouts) {
      for (int p = 0; p < phys_parts; ++p) {
        phys_rows[p] += static_cast<double>(out.buckets[p].size());
      }
    }
    const double phys_max =
        *std::max_element(phys_rows.begin(), phys_rows.end());
    stats->post_split_rows_ratio =
        phys_max / std::max(MedianOf(std::move(phys_rows)), 1.0);
    for (const SplitDecision& d : decisions) {
      stats->hot_keys_detected += static_cast<int>(d.hot_keys.size());
    }
    stats->partitions_split = static_cast<int>(decisions.size());
    stats->virtual_partitions = phys_parts - parts;
  }

  // Physical partition -> base (pre-split) partition, and which tasks' outputs
  // must be canonically sorted so the coalesce can k-way merge them. Outputs
  // of unsplit partitions are never touched: a run where nothing splits is
  // byte-for-byte identical to one with the policy off.
  std::vector<int> base_of(phys_parts);
  std::vector<char> sort_output(phys_parts, 0);
  for (int p = 0; p < parts; ++p) base_of[p] = p;
  for (size_t d = 0; d < decisions.size(); ++d) {
    sort_output[decisions[d].partition] = 1;
    for (int s = 0; s < fanout; ++s) {
      base_of[vbase[d] + s] = decisions[d].partition;
      sort_output[vbase[d] + s] = 1;
    }
  }
  stats->map_shuffle_seconds = wall.ElapsedSeconds();

  // --- Phase 2: parallel merge + sort per (partition, input) bucket. ---
  // Concatenate morsel buckets in morsel order, then sort by Time (canonical
  // total order; see header comment). Each bucket is an independent task.
  Stopwatch sort_watch;
  std::vector<std::vector<std::vector<Row>>> buckets(
      phys_parts, std::vector<std::vector<Row>>(inputs.size()));
  try {
    impl_->pool.ParallelFor(
        static_cast<size_t>(phys_parts) * inputs.size(), [&](size_t task) {
          const size_t p = task / inputs.size();
          const size_t i = task % inputs.size();
          std::vector<Row>& dst = buckets[p][i];
          size_t total = 0;
          for (size_t m = 0; m < morsels.size(); ++m) {
            if (morsels[m].input == i) total += mouts[m].buckets[p].size();
          }
          dst.reserve(total);
          for (size_t m = 0; m < morsels.size(); ++m) {
            if (morsels[m].input != i) continue;
            std::vector<Row>& src = mouts[m].buckets[p];
            dst.insert(dst.end(), std::make_move_iterator(src.begin()),
                       std::make_move_iterator(src.end()));
            std::vector<Row>().swap(src);
          }
          std::sort(dst.begin(), dst.end(), RowTimeLess);
        });
  } catch (const std::exception& e) {
    // Reached e.g. when a row's Time cell is not int64 (std::bad_variant_access
    // in the sort comparator) and quarantine_inputs was off to catch it
    // upstream.
    return Status::ExecutionError(
        "stage " + stage.name + ": shuffle sort threw: " + e.what() +
        " (malformed rows? FaultToleranceOptions::quarantine_inputs diverts "
        "them)");
  }
  mouts.clear();
  stats->sort_seconds = sort_watch.ElapsedSeconds();

  // --- Phase 3: fault-handling reduce, one task per partition. ---
  //
  // Each partition runs as a sequence of *attempts* (RunReduceAttempt — the
  // task body shared with the worker process). An attempt that throws or
  // returns an error discards its output and is retried, up to
  // max_task_attempts; exhausting the budget fails the stage with a
  // structured kTaskFailed naming stage/partition/attempts. With speculative
  // execution on, the caller thread doubles as a straggler monitor: an
  // attempt running much longer than the median completed attempt gets a
  // backup, the first finisher wins, and both outputs are compared when both
  // complete — the paper's §III-C.1 repeatability claim as a runtime check.
  // An installed FaultInjector is probed at the start of every attempt and
  // can make the attempt crash, error, stall, lose output, or read a
  // corrupted row.
  Stopwatch reduce_watch;
  Dataset output(stage.output_schema, parts);
  const int max_attempts = std::max(1, fault_.max_task_attempts);
  const bool speculate = fault_.speculative_execution;

  struct TaskState {
    std::mutex mu;
    int attempts_started = 0;  // speculative backups included
    int failed_attempts = 0;
    int retried = 0;           // failed attempts that were re-run
    int speculative = 0;       // backup attempts launched
    bool accepted = false;     // an attempt's output has been accepted
    bool won_by_backup = false;
    bool backup_launched = false;
    bool done = false;         // terminal: accepted or failed for good
    int running = 0;           // attempts submitted and not yet finished
    int executing = 0;         // attempts currently on a worker thread
    std::chrono::steady_clock::time_point attempt_start{};
    std::vector<Row> out_rows;
    Status terminal_error;     // set on exhaustion / determinism violation
    double cpu_seconds = 0;
  };
  std::vector<std::unique_ptr<TaskState>> tasks;
  tasks.reserve(phys_parts);
  for (int p = 0; p < phys_parts; ++p) {
    tasks.push_back(std::make_unique<TaskState>());
  }

  std::atomic<int> outstanding{phys_parts};
  std::mutex done_mu;
  std::condition_variable done_cv;
  std::mutex walls_mu;
  std::vector<double> completed_walls;  // wall time of successful attempts

  std::function<void(int, int, bool)> run_attempt;

  // Launch one more attempt for partition p. Caller holds tasks[p]->mu.
  auto launch = [&](int p, bool is_backup) {
    TaskState& t = *tasks[p];
    const int attempt = t.attempts_started++;
    t.running++;
    if (is_backup) {
      t.backup_launched = true;
      t.speculative++;
    }
    impl_->pool.Submit(
        [&run_attempt, p, attempt, is_backup] { run_attempt(p, attempt, is_backup); });
  };

  auto signal_done = [&] {
    outstanding.fetch_sub(1, std::memory_order_acq_rel);
    std::lock_guard<std::mutex> g(done_mu);
    done_cv.notify_all();
  };

  run_attempt = [&](int p, int attempt, bool is_backup) {
    TaskState& t = *tasks[p];
    {
      std::lock_guard<std::mutex> lock(t.mu);
      t.executing++;
      t.attempt_start = std::chrono::steady_clock::now();
    }
    ReduceAttemptContext ctx;
    ctx.stage = &stage;
    ctx.physical_partition = p;
    ctx.base_partition = base_of[p];
    ctx.attempt = attempt;
    ctx.sort_output = sort_output[p] != 0;
    ctx.buckets = &buckets[p];
    ctx.input_schemas = &schemas;
    if (injector_ != nullptr) {
      ctx.fault = injector_->OnReduceAttempt(stage.name, p, attempt, max_attempts);
    }
    Stopwatch attempt_wall;
    const double cpu0 = ThreadCpuSeconds();
    std::vector<Row> out_rows;
    Status st = RunReduceAttempt(ctx, &out_rows);
    const double cpu = ThreadCpuSeconds() - cpu0;
    const double wall_s = attempt_wall.ElapsedSeconds();
    if (st.ok()) {
      std::lock_guard<std::mutex> wl(walls_mu);
      completed_walls.push_back(wall_s);
    }
    bool terminal = false;
    {
      std::lock_guard<std::mutex> lock(t.mu);
      t.cpu_seconds += cpu;
      t.executing--;
      t.running--;
      if (st.ok()) {
        if (!t.accepted) {
          // First finisher wins (primary or backup alike).
          t.accepted = true;
          t.out_rows = std::move(out_rows);
          t.won_by_backup = is_backup;
        } else if (fault_.verify_speculative_outputs &&
                   t.terminal_error.ok() && out_rows != t.out_rows) {
          t.terminal_error = Status::ExecutionError(
              TaskLabel(stage.name, p) +
              ": determinism violation: speculative and primary attempts "
              "produced different outputs (" +
              std::to_string(out_rows.size()) + " vs " +
              std::to_string(t.out_rows.size()) +
              " rows); §III-C.1 requires re-executed tasks to be repeatable");
        }
      } else {
        t.failed_attempts++;
        if (!t.accepted) {
          if (t.attempts_started < max_attempts) {
            t.retried++;
            launch(p, /*is_backup=*/false);
          } else if (t.running == 0) {
            t.terminal_error = Status::TaskFailed(
                TaskLabel(stage.name, p) + ": task failed after " +
                std::to_string(t.attempts_started) +
                " attempts; last error: " + st.ToString());
          }
          // else: a twin attempt is still in flight; it decides the outcome.
        }
      }
      if (!t.done && t.running == 0 &&
          (t.accepted || !t.terminal_error.ok())) {
        t.done = true;
        terminal = true;
      }
    }
    if (terminal) signal_done();
  };

  for (int p = 0; p < phys_parts; ++p) {
    std::lock_guard<std::mutex> lock(tasks[p]->mu);
    launch(p, /*is_backup=*/false);
  }

  if (!speculate) {
    std::unique_lock<std::mutex> lk(done_mu);
    done_cv.wait(lk, [&] {
      return outstanding.load(std::memory_order_acquire) <= 0;
    });
  } else {
    // The caller thread is the straggler monitor: wake periodically, compute
    // the median completed-attempt wall time, and give any attempt running
    // past max(min_straggler_seconds, straggler_factor * median) a backup.
    // The poll interval scales with the detection floor so an idle monitor
    // costs nothing measurable: detection latency of ~threshold/8 is
    // invisible next to the straggler itself.
    const auto poll = std::chrono::milliseconds(std::clamp(
        static_cast<long>(fault_.min_straggler_seconds * 1000.0 / 8.0), 2L,
        100L));
    std::unique_lock<std::mutex> lk(done_mu);
    while (outstanding.load(std::memory_order_acquire) > 0) {
      done_cv.wait_for(lk, poll);
      if (outstanding.load(std::memory_order_acquire) <= 0) break;
      double median = 0;
      size_t completed = 0;
      {
        std::lock_guard<std::mutex> wl(walls_mu);
        completed = completed_walls.size();
        if (completed > 0) {
          std::vector<double> w = completed_walls;
          std::nth_element(w.begin(), w.begin() + w.size() / 2, w.end());
          median = w[w.size() / 2];
        }
      }
      if (completed == 0) continue;  // no baseline to call a straggler against
      const double threshold = std::max(fault_.min_straggler_seconds,
                                        fault_.straggler_factor * median);
      const auto now = std::chrono::steady_clock::now();
      for (int p = 0; p < phys_parts; ++p) {
        TaskState& t = *tasks[p];
        std::lock_guard<std::mutex> lock(t.mu);
        if (t.done || t.accepted || t.backup_launched || t.executing == 0 ||
            t.attempts_started >= max_attempts) {
          continue;
        }
        const double elapsed =
            std::chrono::duration<double>(now - t.attempt_start).count();
        if (elapsed > threshold) launch(p, /*is_backup=*/true);
      }
    }
  }
  // All partitions are terminal; drain the pool so every attempt closure has
  // fully unwound before the state it references goes out of scope.
  impl_->pool.WaitIdle();
  stats->reduce_seconds = reduce_watch.ElapsedSeconds();

  std::vector<double> task_seconds(phys_parts, 0.0);
  for (int p = 0; p < phys_parts; ++p) {
    TaskState& t = *tasks[p];
    stats->task_attempts += t.attempts_started;
    stats->retried_tasks += t.retried;
    stats->speculative_tasks += t.speculative;
    if (t.won_by_backup) stats->speculative_won++;
    task_seconds[p] = t.cpu_seconds;
    stats->task_cpu_seconds_total += t.cpu_seconds;
    stats->task_cpu_seconds_max =
        std::max(stats->task_cpu_seconds_max, t.cpu_seconds);
  }
  for (int p = 0; p < phys_parts; ++p) {
    // First error in partition order, for a deterministic message. Nothing is
    // added to the store on failure — no partial output survives.
    TIMR_RETURN_NOT_OK(tasks[p]->terminal_error);
  }
  for (int p = 0; p < parts; ++p) {
    output.partition(p) = std::move(tasks[p]->out_rows);
  }
  // Coalesce: k-way merge each split partition's virtual outputs back into
  // its base partition. Every run involved is already in canonical
  // RowTimeLess order (sorted at acceptance), so a pairwise merge tree
  // reconstructs one canonically ordered partition — the logical output keeps
  // `parts` partitions, as if no split had happened.
  for (size_t d = 0; d < decisions.size(); ++d) {
    std::vector<std::vector<Row>> runs;
    runs.reserve(1 + static_cast<size_t>(fanout));
    runs.push_back(std::move(output.partition(decisions[d].partition)));
    for (int s = 0; s < fanout; ++s) {
      runs.push_back(std::move(tasks[vbase[d] + s]->out_rows));
    }
    output.partition(decisions[d].partition) = MergeSortedRuns(std::move(runs));
  }
  for (int p = 0; p < parts; ++p) {
    stats->rows_out += output.partition(p).size();
  }
  // The makespan and time-skew stats run over the *physical* tasks: with
  // splits applied they show the rebalanced schedule the policy bought.
  stats->simulated_parallel_seconds = Makespan(task_seconds, num_machines_);
  if (!task_seconds.empty()) {
    // Skew signal for adaptive repartitioning: the slowest partition vs the
    // median one.
    stats->partition_seconds_max =
        *std::max_element(task_seconds.begin(), task_seconds.end());
    stats->partition_seconds_median = MedianOf(task_seconds);
  }
  stats->wall_seconds = wall.ElapsedSeconds();

  (*store)[stage.output] = std::move(output);
  if (quarantine) {
    (*store)[QuarantineDatasetName(stage.name)] = std::move(quarantine_out);
  }
  return Status::OK();
}

Result<JobStats> LocalCluster::RunJob(const std::vector<MRStage>& stages,
                                      std::map<std::string, Dataset>* store) {
  return RunJob(stages, store, JobOptions{});
}

Result<JobStats> LocalCluster::RunJob(const std::vector<MRStage>& stages,
                                      std::map<std::string, Dataset>* store,
                                      const JobOptions& options) {
  JobStats job;
  size_t resume_from = 0;
  if (options.checkpoint != nullptr) {
    std::vector<std::string> names;
    names.reserve(stages.size());
    for (const MRStage& s : stages) names.push_back(s.name);
    TIMR_ASSIGN_OR_RETURN(resume_from, options.checkpoint->Restore(names, store));
    for (size_t i = 0; i < resume_from; ++i) {
      StageStats stats;
      stats.name = stages[i].name;
      stats.partitions =
          stages[i].num_partitions > 0 ? stages[i].num_partitions : num_machines_;
      stats.rows_out = options.checkpoint->rows_out(i);
      stats.recovered_from_checkpoint = true;
      job.stages.push_back(std::move(stats));
    }
  }
  for (size_t i = resume_from; i < stages.size(); ++i) {
    const MRStage* stage = &stages[i];
    // Job-wide skew policy: stages with a key hash inherit it unless they set
    // their own. The copy is cheap (names + std::functions) and keeps the
    // caller's stage list const.
    MRStage patched;
    if (options.skew.adaptive_repartition &&
        !stage->skew.adaptive_repartition && stage->key_hash_fn != nullptr) {
      patched = *stage;
      patched.skew = options.skew;
      stage = &patched;
    }
    StageStats stats;
    TIMR_RETURN_NOT_OK(RunStage(*stage, store, &stats));
    job.stages.push_back(std::move(stats));
    if (options.checkpoint != nullptr) {
      std::vector<std::pair<std::string, const Dataset*>> outputs;
      outputs.emplace_back(stage->output, &store->at(stage->output));
      if (fault_.quarantine_inputs) {
        const std::string qname = QuarantineDatasetName(stage->name);
        outputs.emplace_back(qname, &store->at(qname));
      }
      TIMR_RETURN_NOT_OK(options.checkpoint->SaveStage(
          i, stage->name, outputs, ConsumedInputNames(*stage)));
    }
    if (options.chaos_kill_after_stages >= 0 &&
        static_cast<int>(i) + 1 >= options.chaos_kill_after_stages) {
      return Status::ExecutionError(
          "chaos kill: simulated driver death after stage " + stage->name +
          " (" + std::to_string(i + 1) + " of " +
          std::to_string(stages.size()) + " stages completed)");
    }
  }
  return job;
}

}  // namespace timr::mr
