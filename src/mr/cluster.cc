#include "mr/cluster.h"

#include <time.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <queue>
#include <sstream>
#include <thread>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"

namespace timr::mr {

namespace {

double ThreadCpuSeconds() {
  timespec ts;
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

bool RowTimeLess(const Row& a, const Row& b) {
  // Primary: Time column. Ties: full lexicographic row comparison, making the
  // sorted order canonical (independent of arrival order).
  const int64_t ta = a[0].AsInt64();
  const int64_t tb = b[0].AsInt64();
  if (ta != tb) return ta < tb;
  return std::lexicographical_compare(a.begin() + 1, a.end(), b.begin() + 1,
                                      b.end());
}

/// Deterministic list scheduling: assign task durations (in partition order)
/// to the least-loaded of `machines`; returns the makespan.
double Makespan(const std::vector<double>& task_seconds, int machines) {
  std::priority_queue<double, std::vector<double>, std::greater<>> loads;
  for (int i = 0; i < machines; ++i) loads.push(0.0);
  for (double t : task_seconds) {
    double least = loads.top();
    loads.pop();
    loads.push(least + t);
  }
  double makespan = 0;
  while (!loads.empty()) {
    makespan = std::max(makespan, loads.top());
    loads.pop();
  }
  return makespan;
}

}  // namespace

std::string JobStats::ToString() const {
  std::ostringstream os;
  for (const auto& s : stages) {
    os << s.name << ": in=" << s.rows_in << " shuffled=" << s.rows_shuffled
       << " out=" << s.rows_out << " parts=" << s.partitions
       << " cpu_total=" << s.task_cpu_seconds_total
       << "s cpu_max=" << s.task_cpu_seconds_max
       << "s simulated=" << s.simulated_parallel_seconds << "s";
    if (s.restarted_tasks > 0) os << " restarts=" << s.restarted_tasks;
    os << "\n";
  }
  return os.str();
}

class LocalCluster::Impl {
 public:
  explicit Impl(size_t threads) : pool(threads) {}
  ThreadPool pool;
};

LocalCluster::LocalCluster(int num_machines, int num_threads)
    : num_machines_(num_machines) {
  TIMR_CHECK(num_machines > 0);
  size_t threads = num_threads > 0
                       ? static_cast<size_t>(num_threads)
                       : std::max<size_t>(1, std::thread::hardware_concurrency());
  impl_ = std::make_unique<Impl>(threads);
}

LocalCluster::~LocalCluster() = default;

Status LocalCluster::RunStage(const MRStage& stage,
                              std::map<std::string, Dataset>* store,
                              StageStats* stats) {
  Stopwatch wall;
  stats->name = stage.name;
  const int parts = stage.num_partitions > 0 ? stage.num_partitions : num_machines_;
  stats->partitions = parts;

  std::vector<const Dataset*> inputs;
  for (const auto& name : stage.inputs) {
    auto it = store->find(name);
    if (it == store->end()) {
      return Status::KeyError("stage " + stage.name + ": no dataset named " +
                              name);
    }
    inputs.push_back(&it->second);
  }

  // --- Map + shuffle: route rows to per-partition, per-input buckets. ---
  // buckets[p][i] = rows of input i landing in partition p.
  std::vector<std::vector<std::vector<Row>>> buckets(
      parts, std::vector<std::vector<Row>>(inputs.size()));
  std::vector<int> targets;
  for (size_t i = 0; i < inputs.size(); ++i) {
    for (size_t p = 0; p < inputs[i]->num_partitions(); ++p) {
      for (const Row& row : inputs[i]->partition(p)) {
        ++stats->rows_in;
        targets.clear();
        stage.partition_fn(static_cast<int>(i), row, parts, &targets);
        for (int t : targets) {
          if (t < 0 || t >= parts) {
            return Status::ExecutionError("partitioner produced target " +
                                          std::to_string(t) + " out of range");
          }
          buckets[t][i].push_back(row);
          ++stats->rows_shuffled;
        }
      }
    }
  }
  // Sort each bucket by Time (canonical order; see header comment).
  for (auto& part : buckets) {
    for (auto& rows : part) std::sort(rows.begin(), rows.end(), RowTimeLess);
  }

  // --- Reduce: one task per partition on the pool. ---
  Dataset output(stage.output_schema, parts);
  std::vector<double> task_seconds(parts, 0.0);
  std::vector<int> restarts(parts, 0);
  std::mutex err_mu;
  Status first_error;

  for (int p = 0; p < parts; ++p) {
    impl_->pool.Submit([&, p] {
      int attempts = 0;
      while (true) {
        ++attempts;
        std::vector<Row> out_rows;
        const double cpu0 = ThreadCpuSeconds();
        Status st = stage.reducer(p, buckets[p], &out_rows);
        task_seconds[p] += ThreadCpuSeconds() - cpu0;
        if (!st.ok()) {
          std::lock_guard<std::mutex> lock(err_mu);
          if (first_error.ok()) first_error = st;
          return;
        }
        // Simulated task failure: discard this attempt's output and restart,
        // exactly as M-R handles a lost reducer (paper §III-C.1).
        if (injector_ != nullptr && injector_->ShouldFail(stage.name, p)) {
          restarts[p]++;
          continue;
        }
        output.partition(p) = std::move(out_rows);
        return;
      }
    });
  }
  impl_->pool.WaitIdle();
  TIMR_RETURN_NOT_OK(first_error);

  for (int p = 0; p < parts; ++p) {
    stats->rows_out += output.partition(p).size();
    stats->task_cpu_seconds_total += task_seconds[p];
    stats->task_cpu_seconds_max =
        std::max(stats->task_cpu_seconds_max, task_seconds[p]);
    stats->restarted_tasks += restarts[p];
  }
  stats->simulated_parallel_seconds = Makespan(task_seconds, num_machines_);
  stats->wall_seconds = wall.ElapsedSeconds();

  (*store)[stage.output] = std::move(output);
  return Status::OK();
}

Result<JobStats> LocalCluster::RunJob(const std::vector<MRStage>& stages,
                                      std::map<std::string, Dataset>* store) {
  JobStats job;
  for (const MRStage& stage : stages) {
    StageStats stats;
    TIMR_RETURN_NOT_OK(RunStage(stage, store, &stats));
    job.stages.push_back(std::move(stats));
  }
  return job;
}

}  // namespace timr::mr
