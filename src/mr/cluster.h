// LocalCluster: an in-process shared-nothing map-reduce runtime.
//
// It reproduces the execution contract TiMR depends on (paper §II-B, §III):
//  - map: each row is routed to one or more partitions by the stage's
//    partition function;
//  - shuffle: each partition's rows are sorted by the Time column (ties broken
//    by full row comparison so reducer input is canonical — a restarted
//    reducer sees byte-identical input, which together with the temporal
//    algebra gives the paper's repeatable-output failure handling, §III-C.1);
//  - reduce: one task per partition, run on a thread pool.
//
// All three phases run in parallel on the cluster's thread pool:
//  1. map/partition — source partitions are split into morsels, each routed
//     into morsel-local per-destination buckets (no shared state), with rows
//     *moved* instead of copied when the partitioner emits a single target
//     and the stage marks the input consumable (MRStage::consumable_inputs).
//     With quarantine enabled (FaultToleranceOptions::quarantine_inputs),
//     rows failing schema checks are diverted to `<stage>.quarantine`;
//  2. merge + sort — morsel buckets are concatenated per (partition, input)
//     in morsel order and sorted as independent pool tasks. The sort order is
//     a canonical total order, so reducer input — and therefore every stage
//     output — is byte-identical for any thread count;
//  3. reduce — the fault-handling task scheduler (see fault.h): exceptions
//     are contained at the task boundary, failed attempts are retried up to
//     max_task_attempts with per-attempt output discard, stragglers can get
//     speculative backups whose outputs are byte-compared against the
//     primary's, and injected faults (FaultInjector) exercise all of it.
//
// With SkewPolicy::adaptive_repartition on (per stage or via JobOptions), a
// sampled hot-key sketch rides phase 1; a partition whose routed row count
// exceeds the configured skew ratio has its hot keys split across salted
// virtual partitions that sort and reduce independently (phases 2–3) and are
// k-way merged back into the base partition in canonical order. Decisions
// are pure functions of the input data, so outputs stay bit-identical across
// thread counts, retries, and chaos; see SkewPolicy in stage.h.
//
// Because this host has few cores while the paper's cluster had ~150
// machines, every task's CPU time is measured (CLOCK_THREAD_CPUTIME_ID) and a
// deterministic list-scheduling model computes the *simulated* parallel
// makespan for the configured machine count. Benches report that simulated
// time; correctness paths never depend on it.

#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "mr/checkpoint.h"
#include "mr/dataset.h"
#include "mr/fault.h"
#include "mr/stage.h"

namespace timr::mr {

struct StageStats {
  std::string name;
  size_t rows_in = 0;
  size_t rows_shuffled = 0;  // includes replication by the partitioner
  size_t rows_out = 0;
  size_t quarantined_rows = 0;  // diverted to <stage>.quarantine
  int partitions = 0;
  double wall_seconds = 0;            // actual elapsed on this host
  // Per-phase wall time (sums to ~wall_seconds); lets benches attribute a
  // stage's cost to routing, sorting, or the reducers.
  double map_shuffle_seconds = 0;     // phase 1: parallel map + routing
  double sort_seconds = 0;            // phase 2: parallel merge + sort
  double reduce_seconds = 0;          // phase 3: fault-handling reduce
  double task_cpu_seconds_total = 0;  // sum over reducer attempts
  double task_cpu_seconds_max = 0;    // slowest single reducer task
  double simulated_parallel_seconds = 0;  // modeled makespan on the cluster
  // Per-partition skew: max and median of the per-partition reducer CPU
  // seconds (all attempts for the partition summed). Their ratio is the
  // hot-partition signal ROADMAP 5(b)'s adaptive repartitioning keys off —
  // under Zipf-skewed keys one hot partition gates the whole stage.
  double partition_seconds_max = 0;
  double partition_seconds_median = 0;
  // Row-count skew over the partitioner's routing (pre-split): max and median
  // rows routed per partition. This is the adaptive repartitioner's actual
  // detector input — the row-count twin of the time-skew pair above.
  size_t partition_rows_max = 0;
  double partition_rows_median = 0;
  // Adaptive repartitioning decisions (SkewPolicy; zero when the policy is
  // off or nothing was split). virtual_partitions counts the extra physical
  // reducer tasks created; post_split_rows_ratio is max/median routed rows
  // over the physical (post-split) partitions — compare against
  // partition_rows_max / partition_rows_median for the before/after picture.
  int hot_keys_detected = 0;
  int partitions_split = 0;
  int virtual_partitions = 0;
  double post_split_rows_ratio = 0;
  // Fault-handling counters (fault.h). task_attempts counts every reducer
  // attempt; retried_tasks counts failed/discarded attempts that the retry
  // policy re-ran; speculative_tasks counts backup attempts launched for
  // stragglers, speculative_won those that finished before their primary.
  int task_attempts = 0;
  int retried_tasks = 0;
  int speculative_tasks = 0;
  int speculative_won = 0;
  // Multi-process runtime counters (driver.h); all zero in thread mode.
  // workers is the gang size actually spawned; worker_restarts counts
  // respawns after a worker loss; rpc_retries counts transport-level task
  // re-dispatches (RPC deadline, worker death, dropped response);
  // heartbeat_timeouts counts workers declared lost by the heartbeat
  // deadline specifically.
  int workers = 0;
  int worker_restarts = 0;
  int rpc_retries = 0;
  int heartbeat_timeouts = 0;
  // True for stages not executed because their output was restored from a
  // CheckpointStore (row/time stats then reflect the checkpoint, not a run).
  bool recovered_from_checkpoint = false;
};

struct JobStats {
  std::vector<StageStats> stages;

  double TotalSimulatedSeconds() const {
    double t = 0;
    for (const auto& s : stages) t += s.simulated_parallel_seconds;
    return t;
  }
  double TotalWallSeconds() const {
    double t = 0;
    for (const auto& s : stages) t += s.wall_seconds;
    return t;
  }
  std::string ToString() const;
};

/// Job-level execution options (stage-level knobs live in
/// FaultToleranceOptions, installed via LocalCluster::set_fault_tolerance).
struct JobOptions {
  /// When set, each completed stage's outputs are checkpointed here and the
  /// job resumes past the longest already-checkpointed prefix (the store must
  /// hold the job's external inputs again on resume).
  CheckpointStore* checkpoint = nullptr;

  /// Chaos hook: simulate driver death after this many completed (and
  /// checkpointed) stages — RunJob returns kExecutionError. -1 = never.
  int chaos_kill_after_stages = -1;

  /// Job-wide adaptive repartitioning policy: applied to every stage that
  /// carries a KeyHashFn and does not set its own policy (a stage-level
  /// SkewPolicy with adaptive_repartition=true wins). See SkewPolicy.
  SkewPolicy skew;
};

/// Multi-process runtime knobs (driver.h). With workers == 0 (the default)
/// every stage runs on the in-process thread pool; with workers > 0 stages
/// run on a gang of forked worker processes, falling back to thread mode
/// when process mode is unsupported (TSan) or no worker can be spawned.
struct ProcessOptions {
  int workers = 0;

  /// Worker -> driver heartbeat cadence, and how long the driver lets a
  /// worker go silent before declaring it lost. The deadline must comfortably
  /// exceed the interval; the defaults give ~40 missed beats.
  double heartbeat_interval_seconds = 0.05;
  double heartbeat_deadline_seconds = 2.0;

  /// Per-dispatch RPC deadline: a task whose response has not arrived within
  /// this many seconds has its worker SIGKILLed (presumed stuck) and is
  /// requeued. Generous by default — heartbeats catch hung workers much
  /// faster; this is the backstop for a worker that heartbeats but never
  /// answers. Chaos tests that drop responses lower it.
  double rpc_timeout_seconds = 60.0;

  /// Transport re-dispatches allowed per task before the driver gives up on
  /// shipping it and runs it in-process. Requeued tasks wait
  /// min(backoff_cap, backoff_base * 2^(dispatches-1)) before re-dispatch.
  int max_rpc_retries = 3;
  double backoff_base_seconds = 0.01;
  double backoff_cap_seconds = 0.25;

  /// Worker respawns allowed per stage. Once spent, lost workers are not
  /// replaced and the stage degrades to the surviving gang — down to fully
  /// in-process execution when none survive.
  int max_worker_restarts = 8;

  /// Process-level chaos (real SIGKILLs, truncated frames, dropped/delayed
  /// responses); see ProcessFaultPlan.
  ProcessFaultPlan chaos;
};

class LocalCluster {
 public:
  /// `num_machines`: modeled cluster size (partition default & makespan
  /// model). `num_threads`: actual host concurrency (0 = hardware).
  explicit LocalCluster(int num_machines, int num_threads = 0);
  ~LocalCluster();

  int num_machines() const { return num_machines_; }

  /// Install a fault source probed at every reduce attempt (fault.h);
  /// nullptr disables injection. Not owned.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }
  /// Back-compat spelling for the scripted one-shot injector.
  void set_failure_injector(FailureInjector* injector) {
    set_fault_injector(injector);
  }

  /// Retry / speculation / quarantine policy for subsequent RunStage calls.
  void set_fault_tolerance(const FaultToleranceOptions& options) {
    fault_ = options;
  }
  const FaultToleranceOptions& fault_tolerance() const { return fault_; }

  /// Multi-process execution for subsequent RunStage calls (workers == 0
  /// keeps the in-process thread pool). See ProcessOptions / driver.h.
  void set_process_options(const ProcessOptions& options) {
    process_ = options;
  }
  const ProcessOptions& process_options() const { return process_; }

  /// Run one stage against the named datasets; adds the output under
  /// stage.output (and `<stage>.quarantine` when quarantine is enabled) and
  /// records stats. On failure nothing is added to the store, though inputs
  /// consumed by the map phase may already have been released.
  Status RunStage(const MRStage& stage, std::map<std::string, Dataset>* store,
                  StageStats* stats);

  /// Run stages in order against `store` (must already hold all external
  /// inputs); intermediate and final outputs are added to the store.
  Result<JobStats> RunJob(const std::vector<MRStage>& stages,
                          std::map<std::string, Dataset>* store);
  Result<JobStats> RunJob(const std::vector<MRStage>& stages,
                          std::map<std::string, Dataset>* store,
                          const JobOptions& options);

 private:
  Status RunStageThreaded(const MRStage& stage,
                          std::map<std::string, Dataset>* store,
                          StageStats* stats);

  int num_machines_;
  class Impl;
  std::unique_ptr<Impl> impl_;
  FaultInjector* injector_ = nullptr;
  FaultToleranceOptions fault_;
  ProcessOptions process_;
};

}  // namespace timr::mr
