// LocalCluster: an in-process shared-nothing map-reduce runtime.
//
// It reproduces the execution contract TiMR depends on (paper §II-B, §III):
//  - map: each row is routed to one or more partitions by the stage's
//    partition function;
//  - shuffle: each partition's rows are sorted by the Time column (ties broken
//    by full row comparison so reducer input is canonical — a restarted
//    reducer sees byte-identical input, which together with the temporal
//    algebra gives the paper's repeatable-output failure handling, §III-C.1);
//  - reduce: one task per partition, run on a thread pool.
//
// All three phases run in parallel on the cluster's thread pool:
//  1. map/partition — source partitions are split into morsels, each routed
//     into morsel-local per-destination buckets (no shared state), with rows
//     *moved* instead of copied when the partitioner emits a single target
//     and the stage marks the input consumable (MRStage::consumable_inputs);
//  2. merge + sort — morsel buckets are concatenated per (partition, input)
//     in morsel order and sorted as independent pool tasks. The sort order is
//     a canonical total order, so reducer input — and therefore every stage
//     output — is byte-identical for any thread count;
//  3. reduce — one task per partition, with failure injection and restart.
//
// Because this host has few cores while the paper's cluster had ~150
// machines, every task's CPU time is measured (CLOCK_THREAD_CPUTIME_ID) and a
// deterministic list-scheduling model computes the *simulated* parallel
// makespan for the configured machine count. Benches report that simulated
// time; correctness paths never depend on it.

#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "mr/dataset.h"
#include "mr/stage.h"

namespace timr::mr {

struct StageStats {
  std::string name;
  size_t rows_in = 0;
  size_t rows_shuffled = 0;  // includes replication by the partitioner
  size_t rows_out = 0;
  int partitions = 0;
  double wall_seconds = 0;            // actual elapsed on this host
  // Per-phase wall time (sums to ~wall_seconds); lets benches attribute a
  // stage's cost to routing, sorting, or the reducers.
  double map_shuffle_seconds = 0;     // phase 1: parallel map + routing
  double sort_seconds = 0;            // phase 2: parallel merge + sort
  double reduce_seconds = 0;          // phase 3: parallel reduce
  double task_cpu_seconds_total = 0;  // sum over reducer tasks
  double task_cpu_seconds_max = 0;    // slowest single reducer task
  double simulated_parallel_seconds = 0;  // modeled makespan on the cluster
  int restarted_tasks = 0;
};

struct JobStats {
  std::vector<StageStats> stages;

  double TotalSimulatedSeconds() const {
    double t = 0;
    for (const auto& s : stages) t += s.simulated_parallel_seconds;
    return t;
  }
  double TotalWallSeconds() const {
    double t = 0;
    for (const auto& s : stages) t += s.wall_seconds;
    return t;
  }
  std::string ToString() const;
};

/// Injects one failure per marked (stage, partition): the first attempt's
/// output is discarded and the task restarted, as M-R failure handling does.
/// Tests use this to verify the repeatability guarantee. Thread-safe: reduce
/// tasks probe it concurrently from the pool.
class FailureInjector {
 public:
  void FailOnce(const std::string& stage, int partition) {
    std::lock_guard<std::mutex> lock(mu_);
    pending_.insert({stage, partition});
  }

  /// True exactly once per marked task.
  bool ShouldFail(const std::string& stage, int partition) {
    std::lock_guard<std::mutex> lock(mu_);
    return pending_.erase({stage, partition}) > 0;
  }

  bool empty() const {
    std::lock_guard<std::mutex> lock(mu_);
    return pending_.empty();
  }

 private:
  mutable std::mutex mu_;
  std::set<std::pair<std::string, int>> pending_;
};

class LocalCluster {
 public:
  /// `num_machines`: modeled cluster size (partition default & makespan
  /// model). `num_threads`: actual host concurrency (0 = hardware).
  explicit LocalCluster(int num_machines, int num_threads = 0);
  ~LocalCluster();

  int num_machines() const { return num_machines_; }

  void set_failure_injector(FailureInjector* injector) { injector_ = injector; }

  /// Run one stage against the named datasets; adds the output under
  /// stage.output and records stats.
  Status RunStage(const MRStage& stage, std::map<std::string, Dataset>* store,
                  StageStats* stats);

  /// Run stages in order against `store` (must already hold all external
  /// inputs); intermediate and final outputs are added to the store.
  Result<JobStats> RunJob(const std::vector<MRStage>& stages,
                          std::map<std::string, Dataset>* store);

 private:
  int num_machines_;
  class Impl;
  std::unique_ptr<Impl> impl_;
  FailureInjector* injector_ = nullptr;
};

}  // namespace timr::mr
