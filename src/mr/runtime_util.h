// Small helpers shared by the thread-mode runtime (cluster.cc) and the
// multi-process driver/worker runtime (driver.cc, worker.cc). Keeping them in
// one place is a correctness requirement, not tidiness: both runtimes must
// sort shuffle buckets with the *same* canonical comparator and model the
// same simulated makespan, or the bit-identical-output contract across modes
// breaks.

#pragma once

#include <time.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "common/row.h"

namespace timr::mr {

inline double ThreadCpuSeconds() {
  timespec ts;
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

/// Canonical shuffle sort order: primary by the Time column, ties broken by
/// full lexicographic row comparison, so reducer input is a pure function of
/// the routed row *set* — independent of arrival order, thread count, morsel
/// boundaries, and which process did the sorting (paper §III-C.1).
inline bool RowTimeLess(const Row& a, const Row& b) {
  const int64_t ta = a[0].AsInt64();
  const int64_t tb = b[0].AsInt64();
  if (ta != tb) return ta < tb;
  return std::lexicographical_compare(a.begin() + 1, a.end(), b.begin() + 1,
                                      b.end());
}

/// Deterministic list scheduling: assign task durations (in partition order)
/// to the least-loaded of `machines`; returns the makespan.
inline double Makespan(const std::vector<double>& task_seconds, int machines) {
  std::priority_queue<double, std::vector<double>, std::greater<>> loads;
  for (int i = 0; i < machines; ++i) loads.push(0.0);
  for (double t : task_seconds) {
    double least = loads.top();
    loads.pop();
    loads.push(least + t);
  }
  double makespan = 0;
  while (!loads.empty()) {
    makespan = std::max(makespan, loads.top());
    loads.pop();
  }
  return makespan;
}

inline std::string TaskLabel(const std::string& stage, int partition) {
  return "stage " + stage + " partition " + std::to_string(partition);
}

/// Median with the even-size convention used throughout the stats (mean of
/// the two middle elements). Takes the vector by value: nth_element reorders.
inline double MedianOf(std::vector<double> v) {
  if (v.empty()) return 0;
  const size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<long>(mid), v.end());
  if (v.size() % 2 == 1) return v[mid];
  const double upper = v[mid];
  const double lower =
      *std::max_element(v.begin(), v.begin() + static_cast<long>(mid));
  return (lower + upper) / 2.0;
}

}  // namespace timr::mr
