#include "mr/fault.h"

#include "common/hash.h"
#include "common/rng.h"

namespace timr::mr {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kCrash: return "crash";
    case FaultKind::kTransientError: return "transient-error";
    case FaultKind::kPartialOutput: return "partial-output";
    case FaultKind::kDiscardOutput: return "discard-output";
    case FaultKind::kStraggler: return "straggler";
    case FaultKind::kCorruptInput: return "corrupt-input";
  }
  return "unknown";
}

FaultPlan FaultPlan::AllKinds(uint64_t seed, double p,
                              double straggler_seconds) {
  FaultPlan plan;
  plan.seed = seed;
  plan.crash_probability = p;
  plan.transient_error_probability = p;
  plan.partial_output_probability = p;
  plan.discard_output_probability = p;
  plan.straggler_probability = p;
  plan.corrupt_input_probability = p;
  plan.straggler_seconds = straggler_seconds;
  return plan;
}

Fault ChaosInjector::OnReduceAttempt(const std::string& stage, int partition,
                                     int attempt, int max_attempts) {
  if (plan_.spare_last_attempt && attempt >= max_attempts - 1) return Fault{};
  // The draw is a pure function of (seed, stage, partition, attempt): thread
  // interleaving, speculative scheduling, and wall clock never change which
  // attempt gets which fault.
  uint64_t h = HashCombine(plan_.seed, HashBytes(stage.data(), stage.size()));
  h = HashCombine(h, static_cast<uint64_t>(partition));
  h = HashCombine(h, static_cast<uint64_t>(attempt));
  Rng rng(h);
  const double u = rng.UniformDouble();

  Fault fault;
  double cum = 0;
  const std::pair<FaultKind, double> table[] = {
      {FaultKind::kCrash, plan_.crash_probability},
      {FaultKind::kTransientError, plan_.transient_error_probability},
      {FaultKind::kPartialOutput, plan_.partial_output_probability},
      {FaultKind::kDiscardOutput, plan_.discard_output_probability},
      {FaultKind::kStraggler, plan_.straggler_probability},
      {FaultKind::kCorruptInput, plan_.corrupt_input_probability},
  };
  for (const auto& [kind, p] : table) {
    cum += p;
    if (u < cum) {
      fault.kind = kind;
      break;
    }
  }
  if (fault.kind == FaultKind::kStraggler) {
    fault.straggler_seconds = plan_.straggler_seconds;
  }
  if (fault.kind != FaultKind::kNone) {
    counts_[static_cast<size_t>(fault.kind)].fetch_add(
        1, std::memory_order_relaxed);
  }
  return fault;
}

int ChaosInjector::total_injected() const {
  int total = 0;
  for (const auto& c : counts_) total += c.load(std::memory_order_relaxed);
  return total;
}

const char* ProcessFaultKindName(ProcessFaultKind kind) {
  switch (kind) {
    case ProcessFaultKind::kNone: return "none";
    case ProcessFaultKind::kKillAtTaskStart: return "kill-at-task-start";
    case ProcessFaultKind::kTruncateResponse: return "truncate-response";
    case ProcessFaultKind::kDropResponse: return "drop-response";
    case ProcessFaultKind::kDelayResponse: return "delay-response";
  }
  return "unknown";
}

ProcessFaultPlan ProcessFaultPlan::AllKinds(uint64_t seed, double p,
                                            double delay_seconds) {
  ProcessFaultPlan plan;
  plan.seed = seed;
  plan.kill_probability = p;
  plan.truncate_probability = p;
  plan.drop_probability = p;
  plan.delay_probability = p;
  plan.delay_seconds = delay_seconds;
  return plan;
}

ProcessFaultKind DrawProcessFault(const ProcessFaultPlan& plan,
                                  bool worker_side, const std::string& stage,
                                  uint8_t msg_kind, int task_id,
                                  int dispatch) {
  if (dispatch > plan.max_faulted_dispatch) return ProcessFaultKind::kNone;
  uint64_t h = HashCombine(plan.seed, HashBytes(stage.data(), stage.size()));
  h = HashCombine(h, worker_side ? 0x77ull : 0xddull);
  h = HashCombine(h, static_cast<uint64_t>(msg_kind));
  h = HashCombine(h, static_cast<uint64_t>(task_id));
  h = HashCombine(h, static_cast<uint64_t>(dispatch));
  Rng rng(h);
  const double u = rng.UniformDouble();
  double cum = 0;
  if (worker_side) {
    cum += plan.kill_probability;
    if (u < cum) return ProcessFaultKind::kKillAtTaskStart;
    cum += plan.truncate_probability;
    if (u < cum) return ProcessFaultKind::kTruncateResponse;
  } else {
    cum += plan.drop_probability;
    if (u < cum) return ProcessFaultKind::kDropResponse;
    cum += plan.delay_probability;
    if (u < cum) return ProcessFaultKind::kDelayResponse;
  }
  return ProcessFaultKind::kNone;
}

Schema QuarantineSchema() {
  return Schema::Of({{"Input", ValueType::kInt64}});
}

}  // namespace timr::mr
