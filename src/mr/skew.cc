#include "mr/skew.h"

#include <algorithm>
#include <iterator>
#include <utility>

#include "common/hash.h"
#include "mr/runtime_util.h"

namespace timr::mr {

std::vector<SplitDecision> DecidePartitionSplits(
    const SkewPolicy& policy, const std::vector<size_t>& routed_rows,
    double median_rows, const std::unordered_map<uint64_t, uint64_t>& sketch,
    int parts) {
  std::vector<SplitDecision> decisions;
  for (int p = 0; p < parts; ++p) {
    if (routed_rows[p] < policy.min_partition_rows) continue;
    if (static_cast<double>(routed_rows[p]) <=
        policy.skew_ratio_threshold * median_rows) {
      continue;
    }
    std::vector<std::pair<uint64_t, uint64_t>> cand;  // (count, key hash)
    for (const auto& [h, c] : sketch) {
      if (c >= policy.min_hot_key_samples &&
          static_cast<int>(h % static_cast<uint64_t>(parts)) == p) {
        cand.emplace_back(c, h);
      }
    }
    if (cand.empty()) continue;
    // Full tie-broken sort: the merged sketch's iteration order is not
    // deterministic across thread counts, the selected set must be.
    std::sort(cand.begin(), cand.end(), [](const auto& a, const auto& b) {
      return a.first != b.first ? a.first > b.first : a.second < b.second;
    });
    const size_t keep = std::min<size_t>(
        cand.size(), std::max(1, policy.max_hot_keys_per_partition));
    SplitDecision d;
    d.partition = p;
    d.hot_keys.reserve(keep);
    for (size_t i = 0; i < keep; ++i) {
      d.hot_keys.push_back(cand[i].second);
      d.hot_set.insert(cand[i].second);
    }
    decisions.push_back(std::move(d));
  }
  return decisions;
}

uint64_t StageSalt(const std::string& stage_name) {
  return HashBytes(stage_name.data(), stage_name.size());
}

void RerouteHotRows(const KeyHashFn& key_hash, int input_index,
                    uint64_t stage_salt, int fanout, const SplitDecision& d,
                    int vbase, std::vector<std::vector<Row>>* buckets) {
  std::vector<Row>& src = (*buckets)[d.partition];
  if (src.empty()) return;
  std::vector<Row> keep_rows;
  keep_rows.reserve(src.size());
  for (Row& row : src) {
    const uint64_t h = key_hash(input_index, row);
    if (d.hot_set.count(h) > 0) {
      const int slot = static_cast<int>(HashMix(h ^ stage_salt) %
                                        static_cast<uint64_t>(fanout));
      (*buckets)[vbase + slot].push_back(std::move(row));
    } else {
      keep_rows.push_back(std::move(row));
    }
  }
  src = std::move(keep_rows);
}

std::vector<Row> MergeSortedRuns(std::vector<std::vector<Row>> runs) {
  if (runs.empty()) return {};
  while (runs.size() > 1) {
    std::vector<std::vector<Row>> next;
    next.reserve(runs.size() / 2 + 1);
    for (size_t i = 0; i + 1 < runs.size(); i += 2) {
      std::vector<Row> merged;
      merged.reserve(runs[i].size() + runs[i + 1].size());
      std::merge(std::make_move_iterator(runs[i].begin()),
                 std::make_move_iterator(runs[i].end()),
                 std::make_move_iterator(runs[i + 1].begin()),
                 std::make_move_iterator(runs[i + 1].end()),
                 std::back_inserter(merged), RowTimeLess);
      next.push_back(std::move(merged));
    }
    if (runs.size() % 2 == 1) next.push_back(std::move(runs.back()));
    runs = std::move(next);
  }
  return std::move(runs.front());
}

}  // namespace timr::mr
