// Worker side of the multi-process runtime (DESIGN.md §5g), plus the task
// bodies it shares with the thread-mode runtime.
//
// The worker is a process fork()ed by the driver at stage start: it inherits
// the stage (closures and all — PartitionFn/ReducerFn cannot cross a process
// boundary by serialization) and a copy-on-write snapshot of the stage's
// input datasets, then serves task RPCs over its socketpair until told to
// shut down. Map tasks read the inherited inputs by (partition, row range)
// and ship serialized shuffle buckets back; reduce tasks receive serialized
// shuffle partitions, sort them canonically, run the reducer, and ship the
// output rows back. A heartbeat thread keeps liveness flowing while a long
// task runs.
//
// RunMapTask / RunReduceAttempt are the single implementation of the map and
// reduce task bodies: cluster.cc (thread mode), WorkerMain (worker process),
// and the driver's in-process fallback all call them, so every mode absorbs
// the same FaultKinds with identical semantics and produces identical bytes.

#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "mr/dataset.h"
#include "mr/fault.h"
#include "mr/stage.h"

namespace timr::mr {

// ------------------------------------------------- shared map task body --

struct MapTaskSpec {
  uint32_t task_id = 0;   // morsel index within the stage
  uint32_t dispatch = 0;  // transport-level send count (chaos keying)
  int input_index = 0;
  uint64_t src_partition = 0;
  uint64_t begin = 0;  // row range [begin, end) in the source partition
  uint64_t end = 0;
  int parts = 0;
  bool quarantine = false;
  bool skew_enabled = false;
  bool may_move = false;  // move rows out of src (consumable input)
  uint64_t sample_mask = 0;
};

struct MapTaskResult {
  std::vector<std::vector<Row>> buckets;  // per destination partition
  std::vector<Row> quarantined;           // [input_idx, cells...] poison rows
  std::string first_bad;  // first schema-violation message ("" = none)
  uint64_t rows_in = 0;
  uint64_t rows_shuffled = 0;
  // Hot-key sketch (skew_enabled only): sampled key-hash occurrence counts,
  // merged by summation driver-side.
  std::vector<std::pair<uint64_t, uint32_t>> sketch;
};

/// Route one morsel's rows into per-destination buckets — the map-phase body
/// shared verbatim by thread mode, worker processes, and the driver's
/// in-process fallback. Errors (partitioner target out of range, an escaped
/// partitioner exception) return non-OK; quarantined rows are not errors.
/// `abort` (optional) makes the task return early when another morsel failed.
Status RunMapTask(const MRStage& stage, const Schema& input_schema,
                  std::vector<Row>* src_rows, const MapTaskSpec& spec,
                  MapTaskResult* out,
                  const std::atomic<bool>* abort = nullptr);

// -------------------------------------------- shared reduce attempt body --

struct ReduceAttemptContext {
  const MRStage* stage = nullptr;
  int physical_partition = 0;  // task id; virtual partitions included
  int base_partition = 0;      // partition index the reducer sees
  int attempt = 0;
  bool sort_output = false;  // split partitions: canonical-sort before accept
  const std::vector<std::vector<Row>>* buckets = nullptr;  // per input, sorted
  const std::vector<Schema>* input_schemas = nullptr;  // kCorruptInput check
  Fault fault;  // injected fault to apply (probed by the caller)
};

/// One reduce attempt: apply the injected fault, run the reducer inside the
/// task boundary (nothing escapes as anything but a Status), canonically sort
/// the output when ctx.sort_output. On error `out_rows` is left empty
/// (per-attempt output discard).
Status RunReduceAttempt(const ReduceAttemptContext& ctx,
                        std::vector<Row>* out_rows);

// ------------------------------------------------- request/response wire --

namespace wire {

/// Encode/decode a Status as [code u8][message str].
void EncodeStatus(const Status& st, std::string* out);

void EncodeMapRequest(const MapTaskSpec& spec, std::string* payload);
Status DecodeMapRequest(std::string_view payload, MapTaskSpec* spec);

struct MapResponse {
  uint32_t task_id = 0;
  uint32_t dispatch = 0;
  Status status;
  MapTaskResult result;  // valid when status.ok()
};
void EncodeMapResponse(const MapResponse& resp, std::string* payload);
Status DecodeMapResponse(std::string_view payload, MapResponse* resp);

struct ReduceRequest {
  uint32_t task_id = 0;   // == physical partition
  uint32_t dispatch = 0;
  uint32_t attempt = 0;
  uint32_t base_partition = 0;
  bool sort_output = false;
  bool presorted = false;  // inputs already canonically sorted (skip sort)
  FaultKind fault_kind = FaultKind::kNone;  // injected fault for this attempt
  double straggler_seconds = 0;
  std::vector<Schema> input_schemas;
  std::vector<std::vector<Row>> buckets;  // per input, shuffle rows
};
void EncodeReduceRequest(const ReduceRequest& req, std::string* payload);
/// Same wire layout, but schemas/buckets come from the caller's storage —
/// the driver re-dispatches tasks without copying the shuffle data into a
/// request struct first (req.input_schemas / req.buckets are ignored).
void EncodeReduceRequest(const ReduceRequest& req,
                         const std::vector<Schema>& input_schemas,
                         const std::vector<std::vector<Row>>& buckets,
                         std::string* payload);
Status DecodeReduceRequest(std::string_view payload, ReduceRequest* req);

struct ReduceResponse {
  uint32_t task_id = 0;
  uint32_t dispatch = 0;
  double cpu_seconds = 0;
  double sort_seconds = 0;
  Status status;
  std::vector<Row> rows;  // valid when status.ok()
};
void EncodeReduceResponse(const ReduceResponse& resp, std::string* payload);
Status DecodeReduceResponse(std::string_view payload, ReduceResponse* resp);

/// Read the [task_id, dispatch] prefix every request/response payload starts
/// with (the driver's receive path needs them before full decode, e.g. for
/// chaos keying and idempotent acceptance).
bool PeekIds(std::string_view payload, uint32_t* task_id, uint32_t* dispatch);

}  // namespace wire

// ------------------------------------------------------- worker process --

struct WorkerEnv {
  int worker_index = 0;
  const MRStage* stage = nullptr;
  std::vector<Dataset*> inputs;  // COW snapshot; map tasks read these
  std::vector<Schema> input_schemas;
  bool quarantine = false;
  ProcessFaultPlan chaos;
  double heartbeat_interval_seconds = 0.05;
};

/// Worker process main loop: serve task RPCs on `fd` until a shutdown frame,
/// a driver disconnect, or a (possibly chaos-induced) death. Never returns —
/// exits with _exit(), skipping atexit/leak-check machinery inherited from
/// the forked driver image.
[[noreturn]] void WorkerMain(int fd, const WorkerEnv& env);

}  // namespace timr::mr
