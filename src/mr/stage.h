// A map-reduce stage: the paper's basic model (§II-B). The map phase assigns
// each row to one or more partitions; the framework shuffles and sorts each
// partition by Time; the reduce phase runs a user reducer per partition.

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/row.h"
#include "common/status.h"

namespace timr::mr {

/// Map-side partition assignment. May emit a row into several partitions —
/// TiMR's temporal partitioning replicates span-boundary rows (paper §III-B).
/// `input_index` identifies which of the stage's inputs the row came from.
using PartitionFn =
    std::function<void(int input_index, const Row& row, int num_partitions,
                       std::vector<int>* targets)>;

/// Reduce-side computation for one partition. `inputs[i]` holds this
/// partition's rows from the stage's i-th input, sorted by the Time column.
/// Appends result rows to `output`.
using ReducerFn = std::function<Status(
    int partition_index, const std::vector<std::vector<Row>>& inputs,
    std::vector<Row>* output)>;

/// Deterministic per-row key hash — the value HashPartitioner reduces modulo
/// num_partitions. Exposed separately from PartitionFn so the skew-aware
/// runtime can use the *same* hash for routing, hot-key detection, and salted
/// sub-partitioning (cluster.cc); it must be a pure function of the row's key
/// columns, never of runtime state.
using KeyHashFn = std::function<uint64_t(int input_index, const Row& row)>;

/// The key hash behind HashPartitioner (seeded HashCombine over the key
/// columns' Value::Hash, per input). Bit-identical to the columnar bulk path
/// (temporal::ComputeKeyHashes), so detection at the shuffle and hashing in
/// the engine agree on what "the same key" means.
KeyHashFn MakeKeyHasher(std::vector<std::vector<int>> key_indices_per_input);

/// Adaptive skew-aware repartitioning (ROADMAP 5(b)). When enabled on a stage
/// that carries a KeyHashFn, the map phase keeps a sampled hot-key sketch; a
/// partition whose routed row count exceeds `skew_ratio_threshold` times the
/// median is *split*: its hot keys are rerouted across `hot_key_fanout`
/// virtual partitions (salt derived purely from (stage name, key_hash)), each
/// reduced independently, and the virtual outputs are k-way merged back into
/// the base partition in canonical RowTimeLess order. Decisions are a pure
/// function of the input data, so outputs stay bit-identical across thread
/// counts, retries, and speculation; stages without splits are byte-for-byte
/// identical to a run with the policy off.
struct SkewPolicy {
  bool adaptive_repartition = false;
  /// Split a partition when rows_routed(partition) / median > this ratio.
  double skew_ratio_threshold = 4.0;
  /// Virtual partitions a split partition's hot keys are spread across.
  int hot_key_fanout = 8;
  /// At most this many distinct hot keys are split out per partition.
  int max_hot_keys_per_partition = 32;
  /// Partitions with fewer routed rows than this are never split.
  size_t min_partition_rows = 4096;
  /// The sketch samples ~1 in 2^sample_shift rows (by a hash of the source
  /// row index, so the sample — and every decision downstream of it — is
  /// independent of thread count and morsel boundaries, and does not alias
  /// against periodically interleaved keys).
  int sample_shift = 5;
  /// A sketched key needs at least this many samples to count as hot.
  uint32_t min_hot_key_samples = 4;
};

struct MRStage {
  std::string name;

  /// Names of input datasets (resolved against the job's dataset namespace).
  std::vector<std::string> inputs;
  std::string output;
  Schema output_schema;

  int num_partitions = 0;  // 0: use the cluster's machine count

  /// Indices into `inputs` whose datasets the runtime may *consume*: when the
  /// partitioner emits exactly one (in-range) target for a row, the row is
  /// moved — not copied — into the shuffle, and the input's partitions are
  /// released after the map phase (the dataset stays in the store with its
  /// schema but zero rows). Only mark an input when no later stage or caller
  /// reads it again; TiMR marks intermediate fragment outputs on their last
  /// use. Inputs whose dataset name appears more than once in `inputs` are
  /// never consumed, regardless of this list.
  std::vector<int> consumable_inputs;

  PartitionFn partition_fn;
  ReducerFn reducer;

  /// Per-row key hash consistent with partition_fn: a stage whose partitioner
  /// routes every row to key_hash_fn(...) % num_partitions (HashPartitioner
  /// built from the same key columns does) may set this to opt into adaptive
  /// repartitioning. Stages without it — temporal partitioning, single
  /// partition, custom multi-target partitioners — are never split.
  KeyHashFn key_hash_fn;

  /// Skew policy for this stage (see SkewPolicy). Default: off.
  SkewPolicy skew;
};

/// Hash partitioner over the given column indices (the paper's
/// hash(key) % machines bucketing, §III-C.3). Columns are resolved per input
/// because inputs may have different schemas.
PartitionFn HashPartitioner(std::vector<std::vector<int>> key_indices_per_input);

/// Everything to partition 0 (for final global merges / single reducers).
PartitionFn SinglePartition();

/// Which of `stage.inputs` the runtime will actually consume, applying the
/// rules documented on MRStage::consumable_inputs (in-range indices whose
/// dataset name appears exactly once). Shared between the map phase (which
/// releases those inputs) and checkpointing (which must record the release to
/// replay it on resume).
std::vector<bool> ConsumableInputFlags(const MRStage& stage);

/// Names of the input datasets `stage` consumes, in input order.
std::vector<std::string> ConsumedInputNames(const MRStage& stage);

}  // namespace timr::mr
