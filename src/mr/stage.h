// A map-reduce stage: the paper's basic model (§II-B). The map phase assigns
// each row to one or more partitions; the framework shuffles and sorts each
// partition by Time; the reduce phase runs a user reducer per partition.

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/row.h"
#include "common/status.h"

namespace timr::mr {

/// Map-side partition assignment. May emit a row into several partitions —
/// TiMR's temporal partitioning replicates span-boundary rows (paper §III-B).
/// `input_index` identifies which of the stage's inputs the row came from.
using PartitionFn =
    std::function<void(int input_index, const Row& row, int num_partitions,
                       std::vector<int>* targets)>;

/// Reduce-side computation for one partition. `inputs[i]` holds this
/// partition's rows from the stage's i-th input, sorted by the Time column.
/// Appends result rows to `output`.
using ReducerFn = std::function<Status(
    int partition_index, const std::vector<std::vector<Row>>& inputs,
    std::vector<Row>* output)>;

struct MRStage {
  std::string name;

  /// Names of input datasets (resolved against the job's dataset namespace).
  std::vector<std::string> inputs;
  std::string output;
  Schema output_schema;

  int num_partitions = 0;  // 0: use the cluster's machine count

  /// Indices into `inputs` whose datasets the runtime may *consume*: when the
  /// partitioner emits exactly one (in-range) target for a row, the row is
  /// moved — not copied — into the shuffle, and the input's partitions are
  /// released after the map phase (the dataset stays in the store with its
  /// schema but zero rows). Only mark an input when no later stage or caller
  /// reads it again; TiMR marks intermediate fragment outputs on their last
  /// use. Inputs whose dataset name appears more than once in `inputs` are
  /// never consumed, regardless of this list.
  std::vector<int> consumable_inputs;

  PartitionFn partition_fn;
  ReducerFn reducer;
};

/// Hash partitioner over the given column indices (the paper's
/// hash(key) % machines bucketing, §III-C.3). Columns are resolved per input
/// because inputs may have different schemas.
PartitionFn HashPartitioner(std::vector<std::vector<int>> key_indices_per_input);

/// Everything to partition 0 (for final global merges / single reducers).
PartitionFn SinglePartition();

/// Which of `stage.inputs` the runtime will actually consume, applying the
/// rules documented on MRStage::consumable_inputs (in-range indices whose
/// dataset name appears exactly once). Shared between the map phase (which
/// releases those inputs) and checkpointing (which must record the release to
/// replay it on resume).
std::vector<bool> ConsumableInputFlags(const MRStage& stage);

/// Names of the input datasets `stage` consumes, in input order.
std::vector<std::string> ConsumedInputNames(const MRStage& stage);

}  // namespace timr::mr
