// Fault model for the LocalCluster (paper §III-C.1).
//
// The paper inherits fault tolerance from Cosmos/Dryad: a failed reducer task
// is simply re-executed, and §III-C.1 argues this is *safe* for TiMR because
// shuffle output is persisted and canonically sorted, and the temporal algebra
// is deterministic — a restarted task reproduces its output byte for byte.
// This header supplies the machinery that turns that argument into enforced,
// chaos-tested behavior:
//
//  - FaultKind / Fault: the kinds of task misbehavior the runtime must absorb
//    (crash, transient error, partial output, lost output, straggler,
//    corrupted input read);
//  - FaultInjector: the pluggable fault source the cluster probes at every
//    reduce attempt. FailureInjector (scripted one-shot discard, the original
//    test hook) and ScriptedFaultInjector (scripted per-attempt faults) cover
//    targeted tests; ChaosInjector draws faults from a seeded PRNG keyed on
//    (stage, partition, attempt), so a chaos run is fully replayable;
//  - FaultToleranceOptions: the retry / speculative-execution / quarantine
//    knobs of the cluster's task-execution path (cluster.cc).

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/row.h"
#include "common/status.h"

namespace timr::mr {

enum class FaultKind : uint8_t {
  kNone = 0,
  kCrash,           // the task throws an exception mid-execution
  kTransientError,  // the task fails with a transient Status error
  kPartialOutput,   // the task aborts after emitting part of its output
  kDiscardOutput,   // the task completes but its output is lost (machine loss
                    // after completion — the original FailureInjector::FailOnce)
  kStraggler,       // the task stalls; what speculative execution exists for
  kCorruptInput,    // one input row is corrupted for this attempt only (a bad
                    // read, caught by the same schema check as quarantine)
};

const char* FaultKindName(FaultKind kind);

struct Fault {
  FaultKind kind = FaultKind::kNone;
  double straggler_seconds = 0;  // kStraggler: how long the task stalls
};

/// Pluggable fault source, probed at the start of every reduce attempt.
/// Implementations must be thread-safe (attempts probe concurrently from the
/// pool) and should be deterministic in (stage, partition, attempt) so fault
/// runs are replayable.
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;

  /// Fault to apply to this attempt (kNone = run clean). `attempt` counts
  /// from 0 per (stage, partition) and includes speculative backups;
  /// `max_attempts` is the retry bound the cluster enforces.
  virtual Fault OnReduceAttempt(const std::string& stage, int partition,
                                int attempt, int max_attempts) = 0;
};

/// Scripted one-shot failure per (stage, partition): the first attempt's
/// output is discarded and the task restarted, as M-R failure handling does
/// when a machine is lost after its task finished. Tests use this to verify
/// the repeatability guarantee. Thread-safe: reduce tasks probe it
/// concurrently from the pool.
class FailureInjector : public FaultInjector {
 public:
  void FailOnce(const std::string& stage, int partition) {
    std::lock_guard<std::mutex> lock(mu_);
    pending_.insert({stage, partition});
  }

  /// True exactly once per marked task.
  bool ShouldFail(const std::string& stage, int partition) {
    std::lock_guard<std::mutex> lock(mu_);
    return pending_.erase({stage, partition}) > 0;
  }

  bool empty() const {
    std::lock_guard<std::mutex> lock(mu_);
    return pending_.empty();
  }

  Fault OnReduceAttempt(const std::string& stage, int partition, int /*attempt*/,
                        int /*max_attempts*/) override {
    return ShouldFail(stage, partition) ? Fault{FaultKind::kDiscardOutput, 0}
                                        : Fault{};
  }

 private:
  mutable std::mutex mu_;
  std::set<std::pair<std::string, int>> pending_;
};

/// Scripted per-attempt faults for targeted tests: inject exactly the given
/// fault at (stage, partition, attempt), clean everywhere else.
class ScriptedFaultInjector : public FaultInjector {
 public:
  void InjectAt(std::string stage, int partition, int attempt, Fault fault) {
    std::lock_guard<std::mutex> lock(mu_);
    scripted_[{std::move(stage), partition, attempt}] = fault;
  }

  Fault OnReduceAttempt(const std::string& stage, int partition, int attempt,
                        int /*max_attempts*/) override {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = scripted_.find({stage, partition, attempt});
    if (it == scripted_.end()) return Fault{};
    Fault f = it->second;
    scripted_.erase(it);
    return f;
  }

  bool empty() const {
    std::lock_guard<std::mutex> lock(mu_);
    return scripted_.empty();
  }

 private:
  mutable std::mutex mu_;
  std::map<std::tuple<std::string, int, int>, Fault> scripted_;
};

/// Per-attempt fault probabilities for ChaosInjector. All zero = no chaos.
struct FaultPlan {
  uint64_t seed = 0;
  double crash_probability = 0;
  double transient_error_probability = 0;
  double partial_output_probability = 0;
  double discard_output_probability = 0;
  double straggler_probability = 0;
  double corrupt_input_probability = 0;
  double straggler_seconds = 0.05;

  /// Never fault the last allowed attempt, so a chaos run with any retry
  /// bound is guaranteed to terminate (a real reducer error still exhausts
  /// the budget and fails the job — chaos only exercises recoverable faults).
  bool spare_last_attempt = true;

  /// Every fault kind at probability `p` each.
  static FaultPlan AllKinds(uint64_t seed, double p,
                            double straggler_seconds = 0.05);
};

/// Deterministic chaos source: the fault drawn for an attempt is a pure
/// function of (plan.seed, stage, partition, attempt), so the same seed
/// replays the same fault schedule regardless of thread interleaving.
class ChaosInjector : public FaultInjector {
 public:
  explicit ChaosInjector(FaultPlan plan) : plan_(plan) {}

  Fault OnReduceAttempt(const std::string& stage, int partition, int attempt,
                        int max_attempts) override;

  /// Total faults injected so far (all kinds); per-kind counts.
  int total_injected() const;
  int injected(FaultKind kind) const {
    return counts_[static_cast<size_t>(kind)].load(std::memory_order_relaxed);
  }

 private:
  FaultPlan plan_;
  mutable std::array<std::atomic<int>, 7> counts_{};
};

// ---------------------------------------------------------------------------
// Process-level faults (the multi-process driver/worker runtime, driver.h).
// Unlike FaultKind — which simulates task misbehavior inside one process —
// these are *real* transport- and process-level failures: a worker is
// SIGKILLed, a response frame is truncated mid-transfer, an RPC message is
// dropped or delayed. The driver's recovery machinery (heartbeat deadlines,
// per-RPC timeouts with capped backoff, requeue on worker loss, in-process
// fallback) must absorb all of them with bit-identical final output.
// ---------------------------------------------------------------------------

enum class ProcessFaultKind : uint8_t {
  kNone = 0,
  kKillAtTaskStart,    // worker SIGKILLs itself upon receiving the task
  kTruncateResponse,   // worker sends a truncated response, then SIGKILLs
  kDropResponse,       // driver discards a completed response (lost message)
  kDelayResponse,      // driver delays handling a response
};

const char* ProcessFaultKindName(ProcessFaultKind kind);

/// Targeted worker-death windows for the worker-loss tests. Each entry fires
/// at most once per process holding the plan; worker-side windows are
/// consumed in the worker's own (forked) copy, so entries are scoped by
/// worker slot to make exactly one worker die.
struct ScriptedProcessKill {
  enum class Window : uint8_t {
    kOnReduceRequest,    // between map-commit and reduce-fetch: die on
                         // receiving the first reduce request of the stage
    kAfterMapResponse,   // idle death right after shipping a map response
    kMidReduceResponse,  // mid-shuffle-transfer: truncate the reduce
                         // response frame, then die
    kHangSilently,       // on the next reduce request: stop heartbeating and
                         // responding without dying (heartbeat-gap window)
  };
  std::string stage = "*";  // exact stage name, or "*" for any stage
  Window window = Window::kOnReduceRequest;
  int worker_index = 0;  // slot in the gang that should die
};

/// Process-level chaos plan. Probabilistic draws are pure functions of
/// (seed, stage, side, message kind, task id, dispatch count) — replayable
/// like FaultPlan, independent of scheduling. Worker-side kinds (kill,
/// truncate) are evaluated in the worker; driver-side kinds (drop, delay) in
/// the driver's receive path.
struct ProcessFaultPlan {
  uint64_t seed = 0;
  double kill_probability = 0;      // kKillAtTaskStart — a real SIGKILL
  double truncate_probability = 0;  // kTruncateResponse — also a real SIGKILL
  double drop_probability = 0;      // kDropResponse
  double delay_probability = 0;     // kDelayResponse
  double delay_seconds = 0.02;

  /// Probabilistic faults only fire while the task's transport dispatch count
  /// is <= this bound. Recovery terminates regardless (the driver degrades to
  /// in-process execution when workers run out) — the bound just keeps chaos
  /// runs from chewing through the whole respawn budget on one task.
  int max_faulted_dispatch = 1;

  /// Targeted one-shot death windows (see ScriptedProcessKill).
  std::vector<ScriptedProcessKill> scripted;

  bool any() const {
    return kill_probability > 0 || truncate_probability > 0 ||
           drop_probability > 0 || delay_probability > 0 || !scripted.empty();
  }

  /// Every probabilistic kind at probability `p` each.
  static ProcessFaultPlan AllKinds(uint64_t seed, double p,
                                   double delay_seconds = 0.005);
};

/// Deterministic chaos draw for one RPC. `worker_side` selects which kinds
/// can fire (kill/truncate in the worker, drop/delay in the driver);
/// `msg_kind` is the request/response message type byte, `dispatch` the
/// task's transport-level send count.
ProcessFaultKind DrawProcessFault(const ProcessFaultPlan& plan,
                                  bool worker_side, const std::string& stage,
                                  uint8_t msg_kind, int task_id, int dispatch);

/// Knobs for the cluster's fault-handling task-execution path. Defaults keep
/// the always-on machinery (exception containment, bounded retries) active and
/// the opt-in machinery (speculation, quarantine) off; see DESIGN.md §5b.7.
struct FaultToleranceOptions {
  /// Attempts per (stage, partition), speculative backups included. A task
  /// whose every attempt fails exhausts the budget and fails the job with a
  /// structured StatusCode::kTaskFailed naming stage/partition/attempts.
  int max_task_attempts = 3;

  /// Launch a backup attempt for a reduce task whose current attempt has run
  /// longer than max(min_straggler_seconds, straggler_factor * median
  /// completed-task wall time); first finisher wins, and both outputs are
  /// byte-compared when both complete (§III-C.1 repeatability as a runtime
  /// check). Off by default: on a saturated local host a "straggler" is just
  /// a bigger partition, and a backup doubles its cost.
  bool speculative_execution = false;
  double straggler_factor = 4.0;
  double min_straggler_seconds = 0.25;

  /// Byte-compare primary and speculative outputs when both complete; a
  /// mismatch fails the stage as a determinism violation.
  bool verify_speculative_outputs = true;

  /// Validate every input row against its dataset's schema during the map
  /// phase; rows that fail are diverted to the `<stage>.quarantine` dataset
  /// instead of poisoning the shuffle (graceful degradation for dirty ad
  /// logs). When more than max_input_error_rate of a stage's input rows are
  /// quarantined, the stage fails with StatusCode::kDataError.
  bool quarantine_inputs = false;
  double max_input_error_rate = 0.01;
};

/// Name of the dataset that receives a stage's quarantined rows.
inline std::string QuarantineDatasetName(const std::string& stage_name) {
  return stage_name + ".quarantine";
}

/// Schema of quarantine datasets. Each quarantined row is stored as
/// [input_index, original cells...]; the tail is deliberately not described by
/// the schema — poison rows are quarantined precisely because they match no
/// schema.
Schema QuarantineSchema();

}  // namespace timr::mr
