// Driver side of the multi-process runtime (DESIGN.md §5g).
//
// RunStageProcess executes one MRStage across a gang of fork()ed worker
// processes (worker.h) speaking the length-prefixed RPC of rpc.h over
// socketpairs. The driver owns the task-attempt scheduler, placement, and the
// dataset store; workers execute the map / sort / reduce task bodies and ship
// serialized shuffle partitions and reduce outputs back.
//
// Robustness machinery (all exercised by ProcessFaultPlan chaos):
//  - per-worker heartbeats with a deadline — a worker that goes silent is
//    SIGKILLed, declared lost, and its in-flight task requeued;
//  - per-RPC timeout with capped exponential backoff and a bounded transport
//    retry budget per task; a task that exhausts it runs in-process;
//  - idempotent task acceptance: responses are attempt-tagged, the first
//    committed response wins, and a late duplicate is compared against the
//    committed output — a mismatch is a determinism violation (§III-C.1);
//  - worker loss detection (EOF, heartbeat deadline, RPC deadline) requeues
//    in-flight tasks and respawns workers within max_worker_restarts;
//  - graceful degradation: when every worker is lost and the respawn budget
//    is spent, remaining tasks run in-process on the driver thread — a job
//    never fails because workers died; when no worker can be spawned at all,
//    *ran is false and the caller falls back to the thread-mode runtime.
//
// Output contract: bit-identical to the thread-mode runtime for any worker
// count, chaos seed, and loss schedule. The task bodies are the same code
// (RunMapTask / RunReduceAttempt), the serialization round-trips values
// exactly, and every ordering decision (morsel order, canonical sort, salted
// split, k-way merge) is the same pure function of the input data.

#pragma once

#include <map>
#include <string>

#include "mr/cluster.h"

namespace timr::mr {

/// Everything RunStageProcess needs from the owning LocalCluster.
struct ProcessStageEnv {
  const ProcessOptions* options = nullptr;
  FaultInjector* injector = nullptr;  // probed driver-side, per reduce attempt
  const FaultToleranceOptions* fault = nullptr;
  int num_machines = 1;  // makespan model, default partition count
};

/// True when this build can run the multi-process runtime. ThreadSanitizer
/// cannot follow a fork of a multi-threaded process, so TSan builds always
/// use thread mode.
bool ProcessModeSupported();

/// Run one stage on a gang of env.options->workers forked worker processes.
/// Sets *ran=false — leaving store and stats untouched — when process mode is
/// unsupported or no worker could be spawned; the caller then runs the
/// thread-mode path. With *ran=true the semantics match
/// LocalCluster::RunStage exactly (same outputs, same error messages).
Status RunStageProcess(const MRStage& stage,
                       std::map<std::string, Dataset>* store, StageStats* stats,
                       const ProcessStageEnv& env, bool* ran);

}  // namespace timr::mr
