// Length-prefixed RPC framing and compact row serialization for the
// driver/worker split (DESIGN.md §5g).
//
// The wire format has two layers:
//
//  - Frame: a fixed 24-byte header [magic u32 | type u8 | pad u8 | pad u16 |
//    payload_len u64 | payload_hash u64] followed by `payload_len` bytes of
//    payload. The hash (common/hash.h HashBytes over the payload) makes a
//    truncated or corrupted payload detectable without trusting its contents;
//    the length field is capped (kMaxFramePayload) so a corrupt header cannot
//    make the receiver allocate the address space. Every malformed condition —
//    bad magic, unknown type, oversized length, short read, hash mismatch —
//    surfaces as a structured StatusCode::kRpcError, never a crash or a hang
//    on garbage bytes.
//
//  - Payload: WireWriter/WireReader append/parse scalars, strings, schemas,
//    and rows. Row cells reuse the checkpoint file's tagged-value encoding
//    (mr/checkpoint.cc): [type u8][int64|double|len u64 + bytes]. This is the
//    compact row serialization the shuffle ships between processes — the seed
//    for ROADMAP item 1's on-disk format. All integers are host-endian: the
//    driver and its forked workers are by construction the same architecture.
//
// Framed I/O runs over blocking Unix-socket fds (socketpair); SendFrame uses
// MSG_NOSIGNAL so a peer death yields EPIPE instead of killing the process.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/row.h"
#include "common/status.h"

namespace timr::mr::rpc {

// ---------------------------------------------------------------- framing --

inline constexpr uint32_t kFrameMagic = 0x43505254;  // "TRPC" little-endian
inline constexpr uint64_t kMaxFramePayload = uint64_t{1} << 30;
inline constexpr size_t kFrameHeaderBytes = 24;

enum class MsgType : uint8_t {
  kHello = 1,           // worker -> driver, once after spawn
  kHeartbeat = 2,       // worker -> driver, periodic liveness
  kMapRequest = 3,      // driver -> worker
  kMapResponse = 4,     // worker -> driver
  kReduceRequest = 5,   // driver -> worker
  kReduceResponse = 6,  // worker -> driver
  kShutdown = 7,        // driver -> worker: exit cleanly
};

/// True when `t` is one of the MsgType values above (a frame with any other
/// type byte is malformed).
bool IsKnownMsgType(uint8_t t);

struct Frame {
  MsgType type = MsgType::kHeartbeat;
  std::string payload;
};

/// Serialize a frame header+payload into `out` (overwrites it). Split out
/// from SendFrame so tests can build byte-exact (and deliberately corrupt)
/// frames without a socket.
void EncodeFrame(MsgType type, std::string_view payload, std::string* out);

/// Parse one frame from the start of `bytes`. A valid-but-incomplete prefix
/// sets needs_more (status stays OK, no frame); a malformed prefix yields a
/// kRpcError status; a complete valid frame fills `frame` and `consumed`.
struct DecodeResult {
  Status status;        // OK: a full valid frame was parsed
  bool needs_more = false;  // the prefix is valid so far but incomplete
  Frame frame;
  size_t consumed = 0;
};
DecodeResult DecodeFrame(std::string_view bytes);

/// Write one frame to a blocking fd. Partial writes are continued; EPIPE /
/// EBADF / any write error is a kRpcError (the caller treats the peer as
/// lost).
Status SendFrame(int fd, MsgType type, std::string_view payload);

/// Read exactly one frame from a blocking fd. EOF before a full header is
/// kRpcError "peer closed"; EOF or any error mid-frame, bad magic, unknown
/// type, oversized length, or payload-hash mismatch are kRpcError with a
/// message naming the condition. Never blocks past the peer's data: the fd is
/// read exactly as far as the declared frame length.
Status RecvFrame(int fd, Frame* out);

// ------------------------------------------------------ payload encoding --

/// Append-only payload builder. All writers are infallible.
class WireWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) { AppendRaw(&v, sizeof(v)); }
  void U64(uint64_t v) { AppendRaw(&v, sizeof(v)); }
  void F64(double v) { AppendRaw(&v, sizeof(v)); }
  void Str(std::string_view s) {
    U64(s.size());
    buf_.append(s.data(), s.size());
  }
  void Cell(const Value& v);
  void AppendRow(const Row& row);
  void Rows(const std::vector<Row>& rows);
  void WriteSchema(const Schema& schema);

  const std::string& buf() const { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  void AppendRaw(const void* p, size_t n) {
    buf_.append(static_cast<const char*>(p), n);
  }
  std::string buf_;
};

/// Bounds-checked payload parser: every read returns false (and poisons the
/// reader) instead of reading past the end, so a malformed payload can never
/// fault. Cell/row/schema readers also bound counts so corrupt length fields
/// cannot cause runaway allocation.
class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  bool U8(uint8_t* v);
  bool U32(uint32_t* v);
  bool U64(uint64_t* v);
  bool F64(double* v);
  bool Str(std::string* s);
  bool Cell(Value* v);
  bool ReadRow(Row* row);
  bool Rows(std::vector<Row>* rows);
  bool ReadSchema(Schema* schema);

  bool ok() const { return ok_; }
  bool AtEnd() const { return ok_ && pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

  /// Structured error for a payload that failed to parse or has trailing
  /// garbage; OK only when fully consumed without a parse failure.
  Status Finish(const std::string& what) const {
    if (!ok_) return Status::RpcError("malformed " + what + " payload");
    if (pos_ != data_.size()) {
      return Status::RpcError(what + " payload has trailing bytes");
    }
    return Status::OK();
  }

 private:
  bool ReadRaw(void* p, size_t n);
  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace timr::mr::rpc
