#include "mr/driver.h"

#include <signal.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/stopwatch.h"
#include "mr/rpc.h"
#include "mr/runtime_util.h"
#include "mr/skew.h"
#include "mr/worker.h"

namespace timr::mr {

bool ProcessModeSupported() {
#if defined(__SANITIZE_THREAD__)
  return false;  // TSan cannot follow a fork of a multi-threaded process
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
  return false;
#else
  return true;
#endif
#else
  return true;
#endif
}

namespace {

using Clock = std::chrono::steady_clock;

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

Clock::duration DurationOf(double seconds) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(seconds));
}

/// What a reader thread hands the scheduler: a response frame from its
/// worker, or the news that the worker's connection is gone.
struct Event {
  enum class Kind : uint8_t { kResponse, kDead };
  Kind kind = Kind::kDead;
  int slot = -1;
  rpc::Frame frame;
};

struct WorkerSlot {
  pid_t pid = -1;
  int fd = -1;         // driver-side end of the socketpair
  bool alive = false;  // scheduler's view; set false exactly once per spawn
  int inflight = -1;   // task currently dispatched here, -1 = idle
  std::atomic<int64_t> last_beat_ns{0};  // any frame counts as liveness
  std::thread reader;
};

/// Per-task transport state for one RunTasks call.
struct TaskRt {
  enum class St : uint8_t { kPending, kInflight, kDone };
  St st = St::kPending;
  int dispatches = 0;             // transport sends so far (chaos keying)
  int attempt_first_dispatch = 0; // dispatches before this belong to dead
                                  // attempts; their late responses are stale
  int worker = -1;
  Clock::time_point eligible{};   // backoff gate for the next dispatch
  Clock::time_point deadline{};   // RPC deadline of the current dispatch
  bool committed = false;         // kDone via an accepted response/fallback
};

enum class CommitOutcome : uint8_t { kCommitted, kRetryTask };

/// Runs one stage over a gang of forked workers. Single-threaded scheduler:
/// only reader threads run concurrently, and they touch nothing but the event
/// queue and their slot's heartbeat stamp.
class StageRunner {
 public:
  StageRunner(const MRStage& stage, std::map<std::string, Dataset>* store,
              StageStats* stats, const ProcessStageEnv& env)
      : stage_(stage),
        store_(store),
        stats_(stats),
        env_(env),
        opts_(*env.options) {}

  ~StageRunner() { ShutdownAll(); }

  Status Run(bool* ran);

 private:
  // ---- gang management ----
  bool Spawn(int slot);
  int SpawnGang(int n);
  bool TryRespawn();
  void OnWorkerLost(int slot, std::vector<TaskRt>* ts, std::deque<int>* ready);
  void ShutdownWorker(int slot, bool clean);
  void ShutdownAll();
  int AliveCount() const;
  int FindIdleWorker() const;

  // ---- transport scheduler ----
  using EncodeFn = std::function<std::string(int task, int dispatch)>;
  /// Consume a response payload for `task`. With duplicate=false the task is
  /// live: kCommitted finishes it, kRetryTask requeues it as a fresh
  /// app-level attempt. With duplicate=true the task already committed: the
  /// callback verifies the duplicate output matches the accepted one
  /// (§III-C.1 repeatability as a runtime check) and must not change state.
  /// A non-OK return is sticky for duplicates (determinism violation fails
  /// the stage) and means "transport garbage, requeue" otherwise.
  using CommitFn = std::function<Status(int task, std::string_view payload,
                                        bool duplicate, CommitOutcome* out)>;
  /// Execute the task fully in-process (graceful degradation); must leave the
  /// task's phase state exactly as a committed response would.
  using FallbackFn = std::function<void(int task)>;

  Status RunTasks(rpc::MsgType req_type, rpc::MsgType resp_type, int num_tasks,
                  const EncodeFn& encode, const CommitFn& commit,
                  const FallbackFn& fallback);
  void RequeueTransport(int task, std::vector<TaskRt>* ts,
                        std::deque<int>* ready);
  void DrainStaleEvents();

  // ---- the stage itself ----
  Status Prepare();  // resolve inputs, build morsels
  Status MapPhase();
  Status AfterMap();  // budgets, quarantine, skew split, bucket assembly
  Status ReducePhase();
  Status Finish();    // coalesce, stats, publish output

  MapTaskSpec SpecFor(int t, int dispatch) const;
  Fault ProbeFault(int t) {
    // One injector draw per app-level attempt; re-dispatches of the same
    // attempt reuse it (the injector may be a stateful one-shot).
    if (!fault_drawn_[t]) {
      if (env_.injector != nullptr) {
        faults_[t] = env_.injector->OnReduceAttempt(
            stage_.name, t, attempts_started_[t], max_attempts_);
      } else {
        faults_[t] = Fault{};
      }
      fault_drawn_[t] = 1;
      attempts_started_[t]++;
    }
    return faults_[t];
  }

  const MRStage& stage_;
  std::map<std::string, Dataset>* store_;
  StageStats* stats_;
  const ProcessStageEnv& env_;
  const ProcessOptions& opts_;

  Stopwatch wall_;
  int parts_ = 0;
  bool skew_enabled_ = false;
  uint64_t sample_mask_ = 0;
  bool quarantine_ = false;
  int max_attempts_ = 1;
  std::vector<Dataset*> inputs_;
  std::vector<Schema> schemas_;
  std::vector<bool> consumable_;

  struct Morsel {
    size_t input;
    size_t src_part;
    size_t begin;
    size_t end;
  };
  std::vector<Morsel> morsels_;
  std::vector<MapTaskResult> mouts_;
  std::vector<Status> map_status_;

  int phys_parts_ = 0;
  int fanout_ = 2;
  std::vector<SplitDecision> decisions_;
  std::vector<int> vbase_;
  std::vector<int> base_of_;
  std::vector<char> sort_output_;
  std::vector<char> bucket_sorted_;  // driver-side fallback sorted these
  std::vector<std::vector<std::vector<Row>>> buckets_;  // [phys][input]
  Dataset quarantine_out_;

  std::vector<int> attempts_started_;
  std::vector<char> fault_drawn_;
  std::vector<Fault> faults_;
  std::vector<Status> terminal_;
  std::vector<std::vector<Row>> out_rows_;
  std::vector<double> cpu_seconds_;

  // unique_ptr: WorkerSlot holds an atomic and a thread (neither movable),
  // and reader threads keep raw pointers to their slot.
  std::vector<std::unique_ptr<WorkerSlot>> workers_;
  int restarts_used_ = 0;

  std::mutex ev_mu_;
  std::condition_variable ev_cv_;
  std::deque<Event> events_;
};

// ------------------------------------------------------- gang management --

bool StageRunner::Spawn(int slot) {
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) return false;
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(sv[0]);
    ::close(sv[1]);
    return false;
  }
  if (pid == 0) {
    // Worker process. Drop every inherited driver-side fd: keeping them open
    // would hold other workers' connections alive past their death.
    ::close(sv[0]);
    for (const auto& w : workers_) {
      if (w != nullptr && w->fd >= 0) ::close(w->fd);
    }
    WorkerEnv env;
    env.worker_index = slot;
    env.stage = &stage_;
    env.inputs = inputs_;
    env.input_schemas = schemas_;
    env.quarantine = quarantine_;
    env.chaos = opts_.chaos;
    env.heartbeat_interval_seconds = opts_.heartbeat_interval_seconds;
    WorkerMain(sv[1], env);  // [[noreturn]]
  }
  // Driver side. A send deadline on the socket keeps a full buffer to a hung
  // worker from blocking the scheduler forever: the send fails and the worker
  // is declared lost.
  ::close(sv[1]);
  timeval tv;
  tv.tv_sec = static_cast<time_t>(opts_.rpc_timeout_seconds);
  tv.tv_usec = static_cast<suseconds_t>(
      (opts_.rpc_timeout_seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  ::setsockopt(sv[0], SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

  WorkerSlot* w = workers_[static_cast<size_t>(slot)].get();
  w->pid = pid;
  w->fd = sv[0];
  w->alive = true;
  w->inflight = -1;
  w->last_beat_ns.store(NowNs(), std::memory_order_relaxed);
  const int fd = w->fd;
  w->reader = std::thread([this, slot, fd, w] {
    for (;;) {
      rpc::Frame frame;
      if (!rpc::RecvFrame(fd, &frame).ok()) {
        std::lock_guard<std::mutex> lock(ev_mu_);
        events_.push_back(Event{Event::Kind::kDead, slot, {}});
        ev_cv_.notify_all();
        return;
      }
      w->last_beat_ns.store(NowNs(), std::memory_order_relaxed);
      if (frame.type == rpc::MsgType::kHeartbeat ||
          frame.type == rpc::MsgType::kHello) {
        continue;
      }
      std::lock_guard<std::mutex> lock(ev_mu_);
      events_.push_back(Event{Event::Kind::kResponse, slot, std::move(frame)});
      ev_cv_.notify_all();
    }
  });
  return true;
}

int StageRunner::SpawnGang(int n) {
  workers_.reserve(static_cast<size_t>(std::max(0, n)));
  for (int i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<WorkerSlot>());
  }
  int spawned = 0;
  for (int i = 0; i < n; ++i) {
    if (Spawn(i)) ++spawned;
  }
  return spawned;
}

bool StageRunner::TryRespawn() {
  if (restarts_used_ >= opts_.max_worker_restarts) return false;
  for (size_t i = 0; i < workers_.size(); ++i) {
    if (workers_[i]->alive) continue;
    ShutdownWorker(static_cast<int>(i), /*clean=*/false);  // reap old corpse
    if (!Spawn(static_cast<int>(i))) return false;
    ++restarts_used_;
    stats_->worker_restarts++;
    return true;
  }
  return false;
}

void StageRunner::OnWorkerLost(int slot, std::vector<TaskRt>* ts,
                               std::deque<int>* ready) {
  WorkerSlot& w = *workers_[static_cast<size_t>(slot)];
  if (!w.alive) return;  // a send failure and the reader's EOF both report
  w.alive = false;
  if (w.inflight >= 0) {
    const int t = w.inflight;
    w.inflight = -1;
    if (ts != nullptr && (*ts)[static_cast<size_t>(t)].st == TaskRt::St::kInflight) {
      RequeueTransport(t, ts, ready);
    }
  }
  TryRespawn();
}

void StageRunner::ShutdownWorker(int slot, bool clean) {
  WorkerSlot& w = *workers_[static_cast<size_t>(slot)];
  if (w.pid < 0) return;
  if (clean && w.fd >= 0) {
    rpc::SendFrame(w.fd, rpc::MsgType::kShutdown, {});  // best effort
  }
  if (w.fd >= 0) ::shutdown(w.fd, SHUT_RDWR);  // wake a blocked reader
  // SIGKILL unconditionally: a clean worker already _exit(0)ed on the
  // shutdown frame or the closed socket; a hung one (chaos) never will.
  ::kill(w.pid, SIGKILL);
  if (w.reader.joinable()) w.reader.join();
  if (w.fd >= 0) ::close(w.fd);
  w.fd = -1;
  int wstatus = 0;
  ::waitpid(w.pid, &wstatus, 0);
  w.pid = -1;
  w.alive = false;
  w.inflight = -1;
}

void StageRunner::ShutdownAll() {
  for (size_t i = 0; i < workers_.size(); ++i) {
    ShutdownWorker(static_cast<int>(i), /*clean=*/true);
  }
}

int StageRunner::AliveCount() const {
  int n = 0;
  for (const auto& w : workers_) n += w->alive ? 1 : 0;
  return n;
}

int StageRunner::FindIdleWorker() const {
  for (size_t i = 0; i < workers_.size(); ++i) {
    if (workers_[i]->alive && workers_[i]->inflight < 0) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

// --------------------------------------------------- transport scheduler --

void StageRunner::RequeueTransport(int task, std::vector<TaskRt>* ts,
                                   std::deque<int>* ready) {
  TaskRt& t = (*ts)[static_cast<size_t>(task)];
  stats_->rpc_retries++;
  t.st = TaskRt::St::kPending;
  t.worker = -1;
  // Capped exponential backoff over this task's dispatch count.
  const double backoff =
      std::min(opts_.backoff_cap_seconds,
               opts_.backoff_base_seconds *
                   static_cast<double>(uint64_t{1} << std::min(t.dispatches, 30)));
  t.eligible = Clock::now() + DurationOf(backoff);
  ready->push_back(task);
}

void StageRunner::DrainStaleEvents() {
  // Between phases the queue may hold late duplicates from the finished
  // phase. Their tasks are all committed, so they carry no information —
  // but dead-worker news must still be processed.
  std::deque<Event> evs;
  {
    std::lock_guard<std::mutex> lock(ev_mu_);
    evs.swap(events_);
  }
  for (Event& e : evs) {
    if (e.kind == Event::Kind::kDead) OnWorkerLost(e.slot, nullptr, nullptr);
  }
}

Status StageRunner::RunTasks(rpc::MsgType req_type, rpc::MsgType resp_type,
                             int num_tasks, const EncodeFn& encode,
                             const CommitFn& commit,
                             const FallbackFn& fallback) {
  DrainStaleEvents();
  std::vector<TaskRt> ts(static_cast<size_t>(num_tasks));
  std::deque<int> ready;
  for (int i = 0; i < num_tasks; ++i) ready.push_back(i);
  int done = 0;

  const auto finish_task = [&](int t, bool committed) {
    ts[t].st = TaskRt::St::kDone;
    ts[t].committed = committed;
    ts[t].worker = -1;
    ++done;
  };

  while (done < num_tasks) {
    Clock::time_point now = Clock::now();

    // Assign eligible tasks to idle workers; ship transport-exhausted tasks
    // to the in-process fallback.
    for (size_t scan = 0; scan < ready.size();) {
      const int t = ready[scan];
      if (ts[t].st != TaskRt::St::kPending) {
        // Stale duplicate entry: the task advanced through another path
        // while queued here — e.g. it was requeued off a presumed-lost
        // worker whose response then arrived anyway and committed. Acting
        // on the entry would double-run (and double-count) the task.
        ready.erase(ready.begin() + static_cast<long>(scan));
        continue;
      }
      if (ts[t].dispatches > opts_.max_rpc_retries) {
        ready.erase(ready.begin() + static_cast<long>(scan));
        fallback(t);
        finish_task(t, /*committed=*/true);
        continue;
      }
      if (ts[t].eligible > now) {
        ++scan;
        continue;
      }
      const int w = FindIdleWorker();
      if (w < 0) break;  // every live worker is busy (or none is left)
      std::string payload = encode(t, ts[t].dispatches);
      ts[t].dispatches++;
      if (!rpc::SendFrame(workers_[static_cast<size_t>(w)]->fd, req_type,
                          payload)
               .ok()) {
        OnWorkerLost(w, &ts, &ready);
        continue;  // t is still at ready[scan]; try the next worker
      }
      workers_[static_cast<size_t>(w)]->inflight = t;
      ts[t].st = TaskRt::St::kInflight;
      ts[t].worker = w;
      ts[t].deadline = now + DurationOf(opts_.rpc_timeout_seconds);
      ready.erase(ready.begin() + static_cast<long>(scan));
    }

    // Graceful degradation: every worker lost and the respawn budget spent —
    // run what remains in-process, in task order, and keep going.
    if (AliveCount() == 0 && done < num_tasks) {
      if (!TryRespawn()) {
        std::vector<int> rest(ready.begin(), ready.end());
        std::sort(rest.begin(), rest.end());
        ready.clear();
        for (int t : rest) {
          if (ts[t].st != TaskRt::St::kPending) continue;  // stale duplicate
          fallback(t);
          finish_task(t, /*committed=*/true);
        }
        continue;
      }
    }
    if (done >= num_tasks) break;

    // Sleep until something can happen: an event, an RPC or heartbeat
    // deadline, or a backoff expiry.
    Clock::time_point wake = now + std::chrono::milliseconds(100);
    const Clock::duration hb_deadline =
        DurationOf(opts_.heartbeat_deadline_seconds);
    for (const auto& wp : workers_) {
      const WorkerSlot& w = *wp;
      if (!w.alive) continue;
      const auto beat = Clock::time_point(std::chrono::nanoseconds(
          w.last_beat_ns.load(std::memory_order_relaxed)));
      wake = std::min(wake, beat + hb_deadline);
      if (w.inflight >= 0) {
        wake = std::min(wake, ts[static_cast<size_t>(w.inflight)].deadline);
      }
    }
    for (int t : ready) wake = std::min(wake, ts[t].eligible);
    std::deque<Event> evs;
    {
      std::unique_lock<std::mutex> lock(ev_mu_);
      ev_cv_.wait_until(lock, wake, [&] { return !events_.empty(); });
      evs.swap(events_);
    }

    for (Event& e : evs) {
      if (e.kind == Event::Kind::kDead) {
        OnWorkerLost(e.slot, &ts, &ready);
        continue;
      }
      WorkerSlot& w = *workers_[static_cast<size_t>(e.slot)];
      if (e.frame.type != resp_type) continue;  // stale cross-phase duplicate
      uint32_t tid = 0;
      uint32_t disp = 0;
      if (!wire::PeekIds(e.frame.payload, &tid, &disp) ||
          tid >= static_cast<uint32_t>(num_tasks)) {
        // Garbage from this worker: treat the process as compromised.
        if (w.alive) {
          ::kill(w.pid, SIGKILL);
          OnWorkerLost(e.slot, &ts, &ready);
        }
        continue;
      }
      const int t = static_cast<int>(tid);
      // Driver-side chaos: lose or delay the response. A dropped response
      // leaves the worker marked busy; the RPC deadline below detects it,
      // kills the worker, and requeues the task — the full recovery path.
      const ProcessFaultKind pf = DrawProcessFault(
          opts_.chaos, /*worker_side=*/false, stage_.name,
          static_cast<uint8_t>(resp_type), t, static_cast<int>(disp));
      if (pf == ProcessFaultKind::kDropResponse) continue;
      if (pf == ProcessFaultKind::kDelayResponse) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(opts_.chaos.delay_seconds));
      }
      if (w.alive && w.inflight == t) w.inflight = -1;
      if (ts[t].st == TaskRt::St::kDone) {
        if (ts[t].committed) {
          // Idempotent acceptance: first committed response won; verify the
          // late duplicate reproduced it.
          CommitOutcome oc = CommitOutcome::kCommitted;
          TIMR_RETURN_NOT_OK(
              commit(t, e.frame.payload, /*duplicate=*/true, &oc));
        }
        continue;
      }
      if (static_cast<int>(disp) < ts[t].attempt_first_dispatch) {
        continue;  // response from an attempt that already failed
      }
      CommitOutcome oc = CommitOutcome::kCommitted;
      const Status cs = commit(t, e.frame.payload, /*duplicate=*/false, &oc);
      if (!cs.ok()) {
        // Undecodable payload: kill the worker, requeue the task.
        if (w.alive) {
          ::kill(w.pid, SIGKILL);
          OnWorkerLost(e.slot, nullptr, nullptr);
        }
        if (ts[t].st != TaskRt::St::kPending) {
          RequeueTransport(t, &ts, &ready);
        }
        continue;
      }
      if (oc == CommitOutcome::kCommitted) {
        finish_task(t, /*committed=*/true);
      } else {
        // App-level retry: a fresh attempt, immediately eligible; older
        // dispatches' late responses are stale from here on.
        ts[t].st = TaskRt::St::kPending;
        ts[t].worker = -1;
        ts[t].attempt_first_dispatch = ts[t].dispatches;
        ts[t].eligible = Clock::now();
        ready.push_back(t);
      }
    }

    // Deadline sweeps: a worker that stopped heartbeating, or that sat on an
    // RPC past its deadline, is presumed lost — SIGKILL it (it may be hung,
    // not dead) and requeue its task.
    now = Clock::now();
    for (size_t i = 0; i < workers_.size(); ++i) {
      WorkerSlot& w = *workers_[i];
      if (!w.alive) continue;
      const auto beat = Clock::time_point(std::chrono::nanoseconds(
          w.last_beat_ns.load(std::memory_order_relaxed)));
      const bool hb_lost = now - beat > hb_deadline;
      const bool rpc_lost =
          w.inflight >= 0 &&
          now > ts[static_cast<size_t>(w.inflight)].deadline;
      if (!hb_lost && !rpc_lost) continue;
      if (hb_lost) stats_->heartbeat_timeouts++;
      ::kill(w.pid, SIGKILL);
      OnWorkerLost(static_cast<int>(i), &ts, &ready);
    }
  }
  return Status::OK();
}

// ------------------------------------------------------- stage execution --

MapTaskSpec StageRunner::SpecFor(int t, int dispatch) const {
  const Morsel& mo = morsels_[static_cast<size_t>(t)];
  MapTaskSpec spec;
  spec.task_id = static_cast<uint32_t>(t);
  spec.dispatch = static_cast<uint32_t>(dispatch);
  spec.input_index = static_cast<int>(mo.input);
  spec.src_partition = mo.src_part;
  spec.begin = mo.begin;
  spec.end = mo.end;
  spec.parts = parts_;
  spec.quarantine = quarantine_;
  spec.skew_enabled = skew_enabled_;
  spec.may_move = consumable_[mo.input];
  spec.sample_mask = sample_mask_;
  return spec;
}

Status StageRunner::Prepare() {
  stats_->name = stage_.name;
  parts_ = stage_.num_partitions > 0 ? stage_.num_partitions
                                     : env_.num_machines;
  stats_->partitions = parts_;
  const SkewPolicy& skew = stage_.skew;
  skew_enabled_ =
      skew.adaptive_repartition && stage_.key_hash_fn != nullptr && parts_ > 1;
  sample_mask_ = (uint64_t{1} << std::clamp(skew.sample_shift, 0, 20)) - 1;
  fanout_ = std::max(2, skew.hot_key_fanout);
  quarantine_ = env_.fault->quarantine_inputs;
  max_attempts_ = std::max(1, env_.fault->max_task_attempts);

  for (const auto& name : stage_.inputs) {
    auto it = store_->find(name);
    if (it == store_->end()) {
      return Status::KeyError("stage " + stage_.name + ": no dataset named " +
                              name);
    }
    inputs_.push_back(&it->second);
    schemas_.push_back(it->second.schema());
  }
  {
    const std::vector<bool> flags = ConsumableInputFlags(stage_);
    consumable_.assign(flags.begin(), flags.end());
  }

  size_t total_rows = 0;
  for (const Dataset* d : inputs_) total_rows += d->TotalRows();
  const size_t gang = static_cast<size_t>(std::max(1, opts_.workers));
  const size_t morsel_rows =
      std::max<size_t>(1024, total_rows / (gang * 4) + 1);
  for (size_t i = 0; i < inputs_.size(); ++i) {
    for (size_t p = 0; p < inputs_[i]->num_partitions(); ++p) {
      const size_t n = inputs_[i]->partition(p).size();
      for (size_t begin = 0; begin < n; begin += morsel_rows) {
        morsels_.push_back({i, p, begin, std::min(begin + morsel_rows, n)});
      }
    }
  }
  return Status::OK();
}

Status StageRunner::MapPhase() {
  mouts_.resize(morsels_.size());
  map_status_.assign(morsels_.size(), Status::OK());

  const EncodeFn encode = [this](int t, int dispatch) {
    std::string payload;
    wire::EncodeMapRequest(SpecFor(t, dispatch), &payload);
    return payload;
  };
  const CommitFn commit = [this](int t, std::string_view payload,
                                 bool duplicate, CommitOutcome* oc) {
    wire::MapResponse resp;
    TIMR_RETURN_NOT_OK(wire::DecodeMapResponse(payload, &resp));
    if (duplicate) {
      if (resp.status.ok() &&
          (resp.result.buckets != mouts_[static_cast<size_t>(t)].buckets ||
           resp.result.quarantined !=
               mouts_[static_cast<size_t>(t)].quarantined)) {
        return Status::ExecutionError(
            "stage " + stage_.name + " map task " + std::to_string(t) +
            ": determinism violation: a duplicate response differs from the "
            "committed one; §III-C.1 requires re-executed tasks to be "
            "repeatable");
      }
      return Status::OK();
    }
    map_status_[static_cast<size_t>(t)] = resp.status;
    mouts_[static_cast<size_t>(t)] = std::move(resp.result);
    *oc = CommitOutcome::kCommitted;
    return Status::OK();
  };
  const FallbackFn fallback = [this](int t) {
    const MapTaskSpec spec = SpecFor(t, 0);
    const Morsel& mo = morsels_[static_cast<size_t>(t)];
    MapTaskResult res;
    map_status_[static_cast<size_t>(t)] =
        RunMapTask(stage_, schemas_[mo.input],
                   &inputs_[mo.input]->partition(mo.src_part), spec, &res);
    mouts_[static_cast<size_t>(t)] = std::move(res);
  };

  TIMR_RETURN_NOT_OK(RunTasks(rpc::MsgType::kMapRequest,
                              rpc::MsgType::kMapResponse,
                              static_cast<int>(morsels_.size()), encode,
                              commit, fallback));
  for (const Status& st : map_status_) {
    // First error in morsel order, for a deterministic message.
    TIMR_RETURN_NOT_OK(st);
  }
  return Status::OK();
}

Status StageRunner::AfterMap() {
  for (const MapTaskResult& out : mouts_) {
    stats_->rows_in += out.rows_in;
    stats_->rows_shuffled += out.rows_shuffled;
    stats_->quarantined_rows += out.quarantined.size();
  }
  // Poison-row budget, identical to the thread-mode runtime.
  if (stats_->quarantined_rows > 0) {
    const double rate = static_cast<double>(stats_->quarantined_rows) /
                        static_cast<double>(stats_->rows_in);
    if (rate > env_.fault->max_input_error_rate) {
      std::string first;
      for (const MapTaskResult& out : mouts_) {
        if (!out.first_bad.empty()) {
          first = out.first_bad;
          break;
        }
      }
      std::ostringstream os;
      os << "stage " << stage_.name << ": " << stats_->quarantined_rows
         << " of " << stats_->rows_in << " input rows (" << rate * 100
         << "%) failed schema validation, exceeding max_input_error_rate="
         << env_.fault->max_input_error_rate << "; first error: " << first;
      return Status::DataError(os.str());
    }
  }
  if (quarantine_) {
    std::vector<Row> qrows;
    qrows.reserve(stats_->quarantined_rows);
    for (MapTaskResult& out : mouts_) {
      for (Row& q : out.quarantined) qrows.push_back(std::move(q));
      out.quarantined.clear();
    }
    quarantine_out_ = Dataset::FromRows(QuarantineSchema(), std::move(qrows));
  }
  // Release consumed inputs. Workers only moved rows inside their own
  // copy-on-write snapshots; the parent releases the real thing here, after
  // which no respawned worker will need them (reduce tasks ship their data).
  for (size_t i = 0; i < inputs_.size(); ++i) {
    if (!consumable_[i]) continue;
    for (size_t p = 0; p < inputs_[i]->num_partitions(); ++p) {
      std::vector<Row>().swap(inputs_[i]->partition(p));
    }
  }

  std::vector<size_t> routed_rows(static_cast<size_t>(parts_), 0);
  for (const MapTaskResult& out : mouts_) {
    for (int p = 0; p < parts_; ++p) {
      routed_rows[static_cast<size_t>(p)] += out.buckets[static_cast<size_t>(p)].size();
    }
  }
  {
    std::vector<double> as_double(routed_rows.begin(), routed_rows.end());
    stats_->partition_rows_max =
        routed_rows.empty()
            ? 0
            : *std::max_element(routed_rows.begin(), routed_rows.end());
    stats_->partition_rows_median = MedianOf(std::move(as_double));
  }

  // Adaptive repartitioning, via the same pure-function decision pipeline as
  // thread mode (skew.h) — outputs stay bit-identical across runtimes.
  if (skew_enabled_) {
    std::unordered_map<uint64_t, uint64_t> sketch;
    for (MapTaskResult& out : mouts_) {
      for (const auto& [h, c] : out.sketch) sketch[h] += c;
      out.sketch.clear();
    }
    const double median_rows = std::max(stats_->partition_rows_median, 1.0);
    decisions_ = DecidePartitionSplits(stage_.skew, routed_rows, median_rows,
                                       sketch, parts_);
  }
  phys_parts_ = parts_;
  vbase_.assign(decisions_.size(), 0);
  for (size_t d = 0; d < decisions_.size(); ++d) {
    vbase_[d] = phys_parts_;
    phys_parts_ += fanout_;
  }
  if (!decisions_.empty()) {
    const uint64_t salt = StageSalt(stage_.name);
    for (size_t m = 0; m < morsels_.size(); ++m) {
      MapTaskResult& out = mouts_[m];
      out.buckets.resize(static_cast<size_t>(phys_parts_));
      const int input_index = static_cast<int>(morsels_[m].input);
      for (size_t d = 0; d < decisions_.size(); ++d) {
        RerouteHotRows(stage_.key_hash_fn, input_index, salt, fanout_,
                       decisions_[d], vbase_[d], &out.buckets);
      }
    }
    std::vector<double> phys_rows(static_cast<size_t>(phys_parts_), 0.0);
    for (const MapTaskResult& out : mouts_) {
      for (int p = 0; p < phys_parts_; ++p) {
        phys_rows[static_cast<size_t>(p)] +=
            static_cast<double>(out.buckets[static_cast<size_t>(p)].size());
      }
    }
    const double phys_max =
        *std::max_element(phys_rows.begin(), phys_rows.end());
    stats_->post_split_rows_ratio =
        phys_max / std::max(MedianOf(std::move(phys_rows)), 1.0);
    for (const SplitDecision& d : decisions_) {
      stats_->hot_keys_detected += static_cast<int>(d.hot_keys.size());
    }
    stats_->partitions_split = static_cast<int>(decisions_.size());
    stats_->virtual_partitions = phys_parts_ - parts_;
  }
  base_of_.resize(static_cast<size_t>(phys_parts_));
  sort_output_.assign(static_cast<size_t>(phys_parts_), 0);
  for (int p = 0; p < parts_; ++p) base_of_[static_cast<size_t>(p)] = p;
  for (size_t d = 0; d < decisions_.size(); ++d) {
    sort_output_[static_cast<size_t>(decisions_[d].partition)] = 1;
    for (int s = 0; s < fanout_; ++s) {
      base_of_[static_cast<size_t>(vbase_[d] + s)] = decisions_[d].partition;
      sort_output_[static_cast<size_t>(vbase_[d] + s)] = 1;
    }
  }
  stats_->map_shuffle_seconds = wall_.ElapsedSeconds();

  // Assemble per-(physical partition, input) shuffle buckets by concatenating
  // morsel buckets in morsel order — source order, same as thread mode. The
  // canonical sort happens in the worker that runs the reduce task (or in the
  // driver's fallback), so assembly order never reaches the output.
  buckets_.assign(static_cast<size_t>(phys_parts_),
                  std::vector<std::vector<Row>>(inputs_.size()));
  bucket_sorted_.assign(static_cast<size_t>(phys_parts_), 0);
  for (int p = 0; p < phys_parts_; ++p) {
    for (size_t i = 0; i < inputs_.size(); ++i) {
      std::vector<Row>& dst = buckets_[static_cast<size_t>(p)][i];
      size_t total = 0;
      for (size_t m = 0; m < morsels_.size(); ++m) {
        if (morsels_[m].input == i &&
            static_cast<size_t>(p) < mouts_[m].buckets.size()) {
          total += mouts_[m].buckets[static_cast<size_t>(p)].size();
        }
      }
      dst.reserve(total);
      for (size_t m = 0; m < morsels_.size(); ++m) {
        if (morsels_[m].input != i ||
            static_cast<size_t>(p) >= mouts_[m].buckets.size()) {
          continue;
        }
        std::vector<Row>& src = mouts_[m].buckets[static_cast<size_t>(p)];
        dst.insert(dst.end(), std::make_move_iterator(src.begin()),
                   std::make_move_iterator(src.end()));
        std::vector<Row>().swap(src);
      }
    }
  }
  mouts_.clear();
  mouts_.shrink_to_fit();
  return Status::OK();
}

Status StageRunner::ReducePhase() {
  Stopwatch reduce_watch;
  const size_t n = static_cast<size_t>(phys_parts_);
  attempts_started_.assign(n, 0);
  fault_drawn_.assign(n, 0);
  faults_.assign(n, Fault{});
  terminal_.assign(n, Status::OK());
  out_rows_.assign(n, {});
  cpu_seconds_.assign(n, 0.0);

  const EncodeFn encode = [this](int t, int dispatch) {
    const Fault fault = ProbeFault(t);
    wire::ReduceRequest req;
    req.task_id = static_cast<uint32_t>(t);
    req.dispatch = static_cast<uint32_t>(dispatch);
    req.attempt = static_cast<uint32_t>(attempts_started_[static_cast<size_t>(t)] - 1);
    req.base_partition = static_cast<uint32_t>(base_of_[static_cast<size_t>(t)]);
    req.sort_output = sort_output_[static_cast<size_t>(t)] != 0;
    req.presorted = bucket_sorted_[static_cast<size_t>(t)] != 0;
    req.fault_kind = fault.kind;
    req.straggler_seconds = fault.straggler_seconds;
    std::string payload;
    wire::EncodeReduceRequest(req, schemas_, buckets_[static_cast<size_t>(t)],
                              &payload);
    return payload;
  };

  const auto fail_attempt = [this](int t, const Status& st,
                                   CommitOutcome* oc) {
    const size_t ti = static_cast<size_t>(t);
    fault_drawn_[ti] = 0;  // next dispatch draws a fresh attempt's fault
    if (attempts_started_[ti] < max_attempts_) {
      stats_->retried_tasks++;
      *oc = CommitOutcome::kRetryTask;
      return;
    }
    terminal_[ti] = Status::TaskFailed(
        TaskLabel(stage_.name, t) + ": task failed after " +
        std::to_string(attempts_started_[ti]) +
        " attempts; last error: " + st.ToString());
    *oc = CommitOutcome::kCommitted;
  };

  const CommitFn commit = [this, fail_attempt](int t, std::string_view payload,
                                               bool duplicate,
                                               CommitOutcome* oc) {
    wire::ReduceResponse resp;
    TIMR_RETURN_NOT_OK(wire::DecodeReduceResponse(payload, &resp));
    const size_t ti = static_cast<size_t>(t);
    if (duplicate) {
      // A replay of a failed attempt carries no output to verify.
      if (resp.status.ok() && resp.rows != out_rows_[ti]) {
        return Status::ExecutionError(
            TaskLabel(stage_.name, t) +
            ": determinism violation: a duplicate response differs from the "
            "committed one (" + std::to_string(resp.rows.size()) + " vs " +
            std::to_string(out_rows_[ti].size()) +
            " rows); §III-C.1 requires re-executed tasks to be repeatable");
      }
      return Status::OK();
    }
    cpu_seconds_[ti] += resp.cpu_seconds;
    stats_->sort_seconds += resp.sort_seconds;
    if (resp.status.ok()) {
      out_rows_[ti] = std::move(resp.rows);
      *oc = CommitOutcome::kCommitted;
    } else {
      fail_attempt(t, resp.status, oc);
    }
    return Status::OK();
  };

  const FallbackFn fallback = [this](int t) {
    const size_t ti = static_cast<size_t>(t);
    if (bucket_sorted_[ti] == 0) {
      Stopwatch sort_watch;
      for (auto& bucket : buckets_[ti]) {
        std::sort(bucket.begin(), bucket.end(), RowTimeLess);
      }
      bucket_sorted_[ti] = 1;
      stats_->sort_seconds += sort_watch.ElapsedSeconds();
    }
    for (;;) {
      const Fault fault = ProbeFault(t);
      ReduceAttemptContext ctx;
      ctx.stage = &stage_;
      ctx.physical_partition = t;
      ctx.base_partition = base_of_[ti];
      ctx.attempt = attempts_started_[ti] - 1;
      ctx.sort_output = sort_output_[ti] != 0;
      ctx.buckets = &buckets_[ti];
      ctx.input_schemas = &schemas_;
      ctx.fault = fault;
      std::vector<Row> rows;
      const double cpu0 = ThreadCpuSeconds();
      const Status st = RunReduceAttempt(ctx, &rows);
      cpu_seconds_[ti] += ThreadCpuSeconds() - cpu0;
      fault_drawn_[ti] = 0;
      if (st.ok()) {
        out_rows_[ti] = std::move(rows);
        return;
      }
      if (attempts_started_[ti] < max_attempts_) {
        stats_->retried_tasks++;
        continue;
      }
      terminal_[ti] = Status::TaskFailed(
          TaskLabel(stage_.name, t) + ": task failed after " +
          std::to_string(attempts_started_[ti]) +
          " attempts; last error: " + st.ToString());
      return;
    }
  };

  TIMR_RETURN_NOT_OK(RunTasks(rpc::MsgType::kReduceRequest,
                              rpc::MsgType::kReduceResponse, phys_parts_,
                              encode, commit, fallback));
  stats_->reduce_seconds = reduce_watch.ElapsedSeconds();
  for (const Status& st : terminal_) {
    // First error in partition order; nothing is published on failure.
    TIMR_RETURN_NOT_OK(st);
  }
  return Status::OK();
}

Status StageRunner::Finish() {
  Dataset output(stage_.output_schema, static_cast<size_t>(parts_));
  for (int p = 0; p < parts_; ++p) {
    output.partition(static_cast<size_t>(p)) =
        std::move(out_rows_[static_cast<size_t>(p)]);
  }
  for (size_t d = 0; d < decisions_.size(); ++d) {
    std::vector<std::vector<Row>> runs;
    runs.reserve(1 + static_cast<size_t>(fanout_));
    runs.push_back(std::move(
        output.partition(static_cast<size_t>(decisions_[d].partition))));
    for (int s = 0; s < fanout_; ++s) {
      runs.push_back(std::move(out_rows_[static_cast<size_t>(vbase_[d] + s)]));
    }
    output.partition(static_cast<size_t>(decisions_[d].partition)) =
        MergeSortedRuns(std::move(runs));
  }
  for (int p = 0; p < parts_; ++p) {
    stats_->rows_out += output.partition(static_cast<size_t>(p)).size();
  }
  for (size_t t = 0; t < cpu_seconds_.size(); ++t) {
    stats_->task_attempts += attempts_started_[t];
    stats_->task_cpu_seconds_total += cpu_seconds_[t];
    stats_->task_cpu_seconds_max =
        std::max(stats_->task_cpu_seconds_max, cpu_seconds_[t]);
  }
  stats_->simulated_parallel_seconds =
      Makespan(cpu_seconds_, env_.num_machines);
  if (!cpu_seconds_.empty()) {
    stats_->partition_seconds_max =
        *std::max_element(cpu_seconds_.begin(), cpu_seconds_.end());
    stats_->partition_seconds_median = MedianOf(cpu_seconds_);
  }
  stats_->wall_seconds = wall_.ElapsedSeconds();

  (*store_)[stage_.output] = std::move(output);
  if (quarantine_) {
    (*store_)[QuarantineDatasetName(stage_.name)] = std::move(quarantine_out_);
  }
  return Status::OK();
}

Status StageRunner::Run(bool* ran) {
  TIMR_RETURN_NOT_OK(Prepare());
  const int spawned = SpawnGang(opts_.workers);
  if (spawned == 0) {
    *ran = false;  // caller falls back to thread mode
    return Status::OK();
  }
  *ran = true;
  stats_->workers = spawned;
  TIMR_RETURN_NOT_OK(MapPhase());
  TIMR_RETURN_NOT_OK(AfterMap());
  TIMR_RETURN_NOT_OK(ReducePhase());
  TIMR_RETURN_NOT_OK(Finish());
  ShutdownAll();
  return Status::OK();
}

}  // namespace

Status RunStageProcess(const MRStage& stage,
                       std::map<std::string, Dataset>* store, StageStats* stats,
                       const ProcessStageEnv& env, bool* ran) {
  *ran = false;
  if (!ProcessModeSupported() || env.options == nullptr ||
      env.options->workers <= 0) {
    return Status::OK();
  }
  StageStats attempt_stats;
  StageRunner runner(stage, store, &attempt_stats, env);
  const Status st = runner.Run(ran);
  if (*ran) *stats = std::move(attempt_stats);
  return *ran ? st : Status::OK();
}

}  // namespace timr::mr
