#include "mr/worker.h"

#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include "common/hash.h"
#include "common/stopwatch.h"
#include "mr/rpc.h"
#include "mr/runtime_util.h"

namespace timr::mr {

// ------------------------------------------------- shared map task body --

Status RunMapTask(const MRStage& stage, const Schema& input_schema,
                  std::vector<Row>* src_rows, const MapTaskSpec& spec,
                  MapTaskResult* out, const std::atomic<bool>* abort) {
  out->buckets.assign(static_cast<size_t>(spec.parts), {});
  std::unordered_map<uint64_t, uint32_t> sketch;
  std::vector<int> targets;
  try {
    for (uint64_t r = spec.begin; r < spec.end; ++r) {
      if (abort != nullptr && abort->load(std::memory_order_relaxed)) {
        return Status::OK();
      }
      Row& row = (*src_rows)[r];
      ++out->rows_in;
      if (spec.quarantine) {
        Status vs = ValidateRowSchema(input_schema, row);
        if (!vs.ok()) {
          if (out->first_bad.empty()) out->first_bad = vs.message();
          Row q;
          q.reserve(row.size() + 1);
          q.push_back(Value(static_cast<int64_t>(spec.input_index)));
          for (Value& v : row) {
            q.push_back(spec.may_move ? std::move(v) : v);
          }
          out->quarantined.push_back(std::move(q));
          continue;
        }
      }
      targets.clear();
      if (spec.skew_enabled) {
        const uint64_t h = stage.key_hash_fn(spec.input_index, row);
        targets.push_back(
            static_cast<int>(h % static_cast<uint64_t>(spec.parts)));
        // Sample by a hash of the absolute source row index: deterministic
        // for any thread count and morsel layout, free of aliasing against
        // periodically interleaved keys.
        if ((HashMix(r) & spec.sample_mask) == 0) sketch[h] += 1;
      } else {
        stage.partition_fn(spec.input_index, row, spec.parts, &targets);
      }
      for (int t : targets) {
        if (t < 0 || t >= spec.parts) {
          return Status::ExecutionError("partitioner produced target " +
                                        std::to_string(t) + " out of range");
        }
      }
      out->rows_shuffled += targets.size();
      if (targets.size() == 1 && spec.may_move) {
        out->buckets[static_cast<size_t>(targets[0])].push_back(std::move(row));
      } else {
        for (int t : targets) {
          out->buckets[static_cast<size_t>(t)].push_back(row);
        }
      }
    }
  } catch (const std::exception& e) {
    // Partitioners are framework-supplied today, but contain UDO-shaped code
    // the same way reducers do: an escaped exception becomes a Status.
    return Status::ExecutionError("stage " + stage.name +
                                  ": map phase threw: " + e.what());
  }
  out->sketch.assign(sketch.begin(), sketch.end());
  return Status::OK();
}

// -------------------------------------------- shared reduce attempt body --

Status RunReduceAttempt(const ReduceAttemptContext& ctx,
                        std::vector<Row>* out_rows) {
  const MRStage& stage = *ctx.stage;
  const Fault& fault = ctx.fault;
  const int p = ctx.physical_partition;
  Status st;
  // Task boundary: nothing a reducer does — throw, error, stall, emit and
  // lose output — escapes this block as anything but a Status.
  try {
    switch (fault.kind) {
      case FaultKind::kTransientError:
        st = Status::ExecutionError("injected transient error");
        break;
      case FaultKind::kCrash:
        throw std::runtime_error("injected task crash");
      case FaultKind::kCorruptInput: {
        // A corrupted read of one shuffle row for this attempt only: the
        // schema/decode check guarding reducer input (the same check the
        // quarantine uses) rejects it and the attempt fails; the retry
        // re-reads the intact shuffle data.
        Status check;
        for (size_t i = 0; i < ctx.buckets->size() && check.ok(); ++i) {
          if ((*ctx.buckets)[i].empty()) continue;
          Row corrupt = (*ctx.buckets)[i].front();
          corrupt.push_back(Value(int64_t{0}));  // arity mismatch
          check = ValidateRowSchema((*ctx.input_schemas)[i], corrupt);
        }
        if (check.ok()) {
          // Nothing to corrupt (empty partition): attempt runs clean.
          st = stage.reducer(ctx.base_partition, *ctx.buckets, out_rows);
        } else {
          st = Status::DataError("injected corrupt input read: " +
                                 check.message());
        }
        break;
      }
      default: {
        if (fault.kind == FaultKind::kStraggler) {
          std::this_thread::sleep_for(
              std::chrono::duration<double>(fault.straggler_seconds));
        }
        st = stage.reducer(ctx.base_partition, *ctx.buckets, out_rows);
        if (st.ok() && fault.kind == FaultKind::kPartialOutput) {
          const size_t emitted = out_rows->size() / 2;
          st = Status::ExecutionError(
              "injected abort mid-output after emitting " +
              std::to_string(emitted) + " of " +
              std::to_string(out_rows->size()) + " rows");
        } else if (st.ok() && fault.kind == FaultKind::kDiscardOutput) {
          st = Status::ExecutionError("injected output loss after completion");
        }
        break;
      }
    }
  } catch (const std::exception& e) {
    st = Status::ExecutionError(TaskLabel(stage.name, p) + " attempt " +
                                std::to_string(ctx.attempt) +
                                ": reducer threw: " + e.what());
  } catch (...) {
    st = Status::ExecutionError(TaskLabel(stage.name, p) + " attempt " +
                                std::to_string(ctx.attempt) +
                                ": reducer threw a non-standard exception");
  }
  if (!st.ok()) out_rows->clear();  // per-attempt output discard
  if (st.ok() && ctx.sort_output) {
    // Split-partition outputs (base remainder and every virtual sibling) are
    // put into canonical RowTimeLess order *before* acceptance, so the
    // driver's coalesce is a pure k-way merge and duplicate-output
    // byte-compares see order-independent outputs.
    std::sort(out_rows->begin(), out_rows->end(), RowTimeLess);
  }
  return st;
}

// ------------------------------------------------- request/response wire --

namespace wire {

namespace {

bool DecodeStatus(rpc::WireReader* r, Status* st) {
  uint8_t code = 0;
  std::string msg;
  if (!r->U8(&code) || !r->Str(&msg)) return false;
  if (code > static_cast<uint8_t>(StatusCode::kRpcError)) return false;
  *st = Status::FromCode(static_cast<StatusCode>(code), std::move(msg));
  return true;
}

}  // namespace

void EncodeStatus(const Status& st, std::string* out) {
  rpc::WireWriter w;
  w.U8(static_cast<uint8_t>(st.code()));
  w.Str(st.message());
  out->append(w.buf());
}

void EncodeMapRequest(const MapTaskSpec& spec, std::string* payload) {
  rpc::WireWriter w;
  w.U32(spec.task_id);
  w.U32(spec.dispatch);
  w.U32(static_cast<uint32_t>(spec.input_index));
  w.U64(spec.src_partition);
  w.U64(spec.begin);
  w.U64(spec.end);
  w.U32(static_cast<uint32_t>(spec.parts));
  uint8_t flags = 0;
  if (spec.quarantine) flags |= 1;
  if (spec.skew_enabled) flags |= 2;
  if (spec.may_move) flags |= 4;
  w.U8(flags);
  w.U64(spec.sample_mask);
  *payload = w.Take();
}

Status DecodeMapRequest(std::string_view payload, MapTaskSpec* spec) {
  rpc::WireReader r(payload);
  uint32_t input_index = 0;
  uint32_t parts = 0;
  uint8_t flags = 0;
  r.U32(&spec->task_id);
  r.U32(&spec->dispatch);
  r.U32(&input_index);
  r.U64(&spec->src_partition);
  r.U64(&spec->begin);
  r.U64(&spec->end);
  r.U32(&parts);
  r.U8(&flags);
  r.U64(&spec->sample_mask);
  TIMR_RETURN_NOT_OK(r.Finish("map request"));
  spec->input_index = static_cast<int>(input_index);
  spec->parts = static_cast<int>(parts);
  spec->quarantine = (flags & 1) != 0;
  spec->skew_enabled = (flags & 2) != 0;
  spec->may_move = (flags & 4) != 0;
  return Status::OK();
}

void EncodeMapResponse(const MapResponse& resp, std::string* payload) {
  rpc::WireWriter w;
  w.U32(resp.task_id);
  w.U32(resp.dispatch);
  w.U8(resp.status.ok() ? 1 : 0);
  if (!resp.status.ok()) {
    EncodeStatus(resp.status, payload);
    std::string head = w.Take();
    payload->insert(0, head);
    return;
  }
  const MapTaskResult& res = resp.result;
  w.U64(res.rows_in);
  w.U64(res.rows_shuffled);
  w.Str(res.first_bad);
  w.U32(static_cast<uint32_t>(res.buckets.size()));
  for (const auto& b : res.buckets) w.Rows(b);
  w.Rows(res.quarantined);
  w.U64(res.sketch.size());
  for (const auto& [h, c] : res.sketch) {
    w.U64(h);
    w.U32(c);
  }
  *payload = w.Take();
}

Status DecodeMapResponse(std::string_view payload, MapResponse* resp) {
  rpc::WireReader r(payload);
  uint8_t ok = 0;
  if (!r.U32(&resp->task_id) || !r.U32(&resp->dispatch) || !r.U8(&ok)) {
    return Status::RpcError("malformed map response payload");
  }
  if (ok == 0) {
    if (!DecodeStatus(&r, &resp->status) || !resp->status.ok()) {
      // Either a parse failure or (expected) the shipped task error.
      if (!r.ok()) return Status::RpcError("malformed map response payload");
      return r.Finish("map response");
    }
    return Status::RpcError("map response marked failed but carries OK");
  }
  MapTaskResult& res = resp->result;
  uint32_t nbuckets = 0;
  if (!r.U64(&res.rows_in) || !r.U64(&res.rows_shuffled) ||
      !r.Str(&res.first_bad) || !r.U32(&nbuckets) ||
      nbuckets > (1u << 24)) {
    return Status::RpcError("malformed map response payload");
  }
  res.buckets.resize(nbuckets);
  for (auto& b : res.buckets) {
    if (!r.Rows(&b)) return Status::RpcError("malformed map response payload");
  }
  if (!r.Rows(&res.quarantined)) {
    return Status::RpcError("malformed map response payload");
  }
  uint64_t nsketch = 0;
  if (!r.U64(&nsketch) || nsketch > (uint64_t{1} << 32)) {
    return Status::RpcError("malformed map response payload");
  }
  res.sketch.reserve(
      std::min<uint64_t>(nsketch, payload.size() / 12 + 1));
  for (uint64_t i = 0; i < nsketch; ++i) {
    uint64_t h = 0;
    uint32_t c = 0;
    if (!r.U64(&h) || !r.U32(&c)) {
      return Status::RpcError("malformed map response payload");
    }
    res.sketch.emplace_back(h, c);
  }
  resp->status = Status::OK();
  return r.Finish("map response");
}

void EncodeReduceRequest(const ReduceRequest& req,
                         const std::vector<Schema>& input_schemas,
                         const std::vector<std::vector<Row>>& buckets,
                         std::string* payload) {
  rpc::WireWriter w;
  w.U32(req.task_id);
  w.U32(req.dispatch);
  w.U32(req.attempt);
  w.U32(req.base_partition);
  uint8_t flags = 0;
  if (req.sort_output) flags |= 1;
  if (req.presorted) flags |= 2;
  w.U8(flags);
  w.U8(static_cast<uint8_t>(req.fault_kind));
  w.F64(req.straggler_seconds);
  w.U32(static_cast<uint32_t>(buckets.size()));
  for (size_t i = 0; i < buckets.size(); ++i) {
    w.WriteSchema(input_schemas[i]);
    w.Rows(buckets[i]);
  }
  *payload = w.Take();
}

void EncodeReduceRequest(const ReduceRequest& req, std::string* payload) {
  EncodeReduceRequest(req, req.input_schemas, req.buckets, payload);
}

Status DecodeReduceRequest(std::string_view payload, ReduceRequest* req) {
  rpc::WireReader r(payload);
  uint8_t flags = 0;
  uint8_t fault_kind = 0;
  uint32_t ninputs = 0;
  if (!r.U32(&req->task_id) || !r.U32(&req->dispatch) ||
      !r.U32(&req->attempt) || !r.U32(&req->base_partition) || !r.U8(&flags) ||
      !r.U8(&fault_kind) || !r.F64(&req->straggler_seconds) ||
      !r.U32(&ninputs) || ninputs > (1u << 16) ||
      fault_kind > static_cast<uint8_t>(FaultKind::kCorruptInput)) {
    return Status::RpcError("malformed reduce request payload");
  }
  req->sort_output = (flags & 1) != 0;
  req->presorted = (flags & 2) != 0;
  req->fault_kind = static_cast<FaultKind>(fault_kind);
  req->input_schemas.resize(ninputs);
  req->buckets.resize(ninputs);
  for (uint32_t i = 0; i < ninputs; ++i) {
    if (!r.ReadSchema(&req->input_schemas[i]) || !r.Rows(&req->buckets[i])) {
      return Status::RpcError("malformed reduce request payload");
    }
  }
  return r.Finish("reduce request");
}

void EncodeReduceResponse(const ReduceResponse& resp, std::string* payload) {
  rpc::WireWriter w;
  w.U32(resp.task_id);
  w.U32(resp.dispatch);
  w.F64(resp.cpu_seconds);
  w.F64(resp.sort_seconds);
  w.U8(resp.status.ok() ? 1 : 0);
  if (resp.status.ok()) {
    w.Rows(resp.rows);
  } else {
    std::string st;
    EncodeStatus(resp.status, &st);
    w.Str(st);  // nested, but keeps the ok/error layouts self-delimiting
  }
  *payload = w.Take();
}

Status DecodeReduceResponse(std::string_view payload, ReduceResponse* resp) {
  rpc::WireReader r(payload);
  uint8_t ok = 0;
  if (!r.U32(&resp->task_id) || !r.U32(&resp->dispatch) ||
      !r.F64(&resp->cpu_seconds) || !r.F64(&resp->sort_seconds) ||
      !r.U8(&ok)) {
    return Status::RpcError("malformed reduce response payload");
  }
  if (ok != 0) {
    if (!r.Rows(&resp->rows)) {
      return Status::RpcError("malformed reduce response payload");
    }
    resp->status = Status::OK();
    return r.Finish("reduce response");
  }
  std::string nested;
  if (!r.Str(&nested)) {
    return Status::RpcError("malformed reduce response payload");
  }
  rpc::WireReader nr(nested);
  if (!DecodeStatus(&nr, &resp->status) || resp->status.ok()) {
    return Status::RpcError("malformed reduce response payload");
  }
  return r.Finish("reduce response");
}

bool PeekIds(std::string_view payload, uint32_t* task_id, uint32_t* dispatch) {
  rpc::WireReader r(payload);
  return r.U32(task_id) && r.U32(dispatch);
}

}  // namespace wire

// ------------------------------------------------------- worker process --

namespace {

[[noreturn]] void DieBySigkill() {
  ::kill(::getpid(), SIGKILL);
  for (;;) ::pause();  // unreachable; SIGKILL cannot be blocked
}

/// Raw send of the first `cut` bytes of an encoded frame, then SIGKILL: the
/// receiver observes a payload truncated mid-transfer. The send mutex is
/// deliberately left held — the process is about to die.
[[noreturn]] void SendTruncatedAndDie(int fd, rpc::MsgType type,
                                      const std::string& payload,
                                      std::mutex* send_mu) {
  std::string frame;
  rpc::EncodeFrame(type, payload, &frame);
  const size_t cut = payload.empty() ? rpc::kFrameHeaderBytes / 2
                                     : rpc::kFrameHeaderBytes + payload.size() / 2;
  send_mu->lock();
  size_t off = 0;
  while (off < cut) {
    const ssize_t w = ::send(fd, frame.data() + off, cut - off, MSG_NOSIGNAL);
    if (w <= 0) break;
    off += static_cast<size_t>(w);
  }
  DieBySigkill();
}

class ScriptedKillState {
 public:
  explicit ScriptedKillState(const WorkerEnv& env) : env_(env) {
    fired_.assign(env.chaos.scripted.size(), 0);
  }

  /// True exactly once for the first not-yet-fired entry matching this
  /// worker, stage, and window.
  bool Fires(ScriptedProcessKill::Window window) {
    const auto& scripted = env_.chaos.scripted;
    for (size_t i = 0; i < scripted.size(); ++i) {
      if (fired_[i] != 0) continue;
      const ScriptedProcessKill& s = scripted[i];
      if (s.worker_index != env_.worker_index || s.window != window) continue;
      if (s.stage != "*" && s.stage != env_.stage->name) continue;
      fired_[i] = 1;
      return true;
    }
    return false;
  }

 private:
  const WorkerEnv& env_;
  std::vector<char> fired_;
};

}  // namespace

void WorkerMain(int fd, const WorkerEnv& env) {
  const MRStage& stage = *env.stage;
  std::mutex send_mu;
  std::atomic<bool> hb_stop{false};
  // Heartbeats flow from a dedicated thread so a long-running task does not
  // read as a dead worker. Detached: worker threads die with _exit/SIGKILL.
  std::thread([fd, &send_mu, &hb_stop, interval = env.heartbeat_interval_seconds] {
    for (;;) {
      std::this_thread::sleep_for(std::chrono::duration<double>(interval));
      if (hb_stop.load(std::memory_order_relaxed)) return;
      std::lock_guard<std::mutex> lock(send_mu);
      if (!rpc::SendFrame(fd, rpc::MsgType::kHeartbeat, {}).ok()) return;
    }
  }).detach();

  ScriptedKillState scripted(env);
  {
    rpc::WireWriter w;
    w.U32(static_cast<uint32_t>(env.worker_index));
    w.U64(static_cast<uint64_t>(::getpid()));
    std::lock_guard<std::mutex> lock(send_mu);
    if (!rpc::SendFrame(fd, rpc::MsgType::kHello, w.buf()).ok()) _exit(2);
  }

  for (;;) {
    rpc::Frame frame;
    if (!rpc::RecvFrame(fd, &frame).ok()) _exit(2);  // driver gone / garbage
    switch (frame.type) {
      case rpc::MsgType::kShutdown:
        _exit(0);

      case rpc::MsgType::kMapRequest: {
        MapTaskSpec spec;
        if (!wire::DecodeMapRequest(frame.payload, &spec).ok()) _exit(2);
        const ProcessFaultKind chaos = DrawProcessFault(
            env.chaos, /*worker_side=*/true, stage.name,
            static_cast<uint8_t>(rpc::MsgType::kMapRequest),
            static_cast<int>(spec.task_id), static_cast<int>(spec.dispatch));
        if (chaos == ProcessFaultKind::kKillAtTaskStart) DieBySigkill();
        wire::MapResponse resp;
        resp.task_id = spec.task_id;
        resp.dispatch = spec.dispatch;
        Dataset* input = env.inputs[static_cast<size_t>(spec.input_index)];
        resp.status =
            RunMapTask(stage, env.input_schemas[static_cast<size_t>(spec.input_index)],
                       &input->partition(spec.src_partition), spec, &resp.result);
        std::string payload;
        wire::EncodeMapResponse(resp, &payload);
        if (chaos == ProcessFaultKind::kTruncateResponse) {
          SendTruncatedAndDie(fd, rpc::MsgType::kMapResponse, payload, &send_mu);
        }
        {
          std::lock_guard<std::mutex> lock(send_mu);
          if (!rpc::SendFrame(fd, rpc::MsgType::kMapResponse, payload).ok()) {
            _exit(2);
          }
        }
        if (scripted.Fires(ScriptedProcessKill::Window::kAfterMapResponse)) {
          DieBySigkill();
        }
        break;
      }

      case rpc::MsgType::kReduceRequest: {
        wire::ReduceRequest req;
        if (!wire::DecodeReduceRequest(frame.payload, &req).ok()) _exit(2);
        if (scripted.Fires(ScriptedProcessKill::Window::kOnReduceRequest)) {
          // The worker-loss window between map-commit and reduce-fetch: map
          // outputs are already shipped and committed driver-side; this task
          // dies before producing anything.
          DieBySigkill();
        }
        if (scripted.Fires(ScriptedProcessKill::Window::kHangSilently)) {
          // Heartbeat-gap window: stop heartbeating and responding without
          // dying. Only the driver's heartbeat deadline can detect this.
          hb_stop.store(true, std::memory_order_relaxed);
          for (;;) ::pause();
        }
        const ProcessFaultKind chaos = DrawProcessFault(
            env.chaos, /*worker_side=*/true, stage.name,
            static_cast<uint8_t>(rpc::MsgType::kReduceRequest),
            static_cast<int>(req.task_id), static_cast<int>(req.dispatch));
        if (chaos == ProcessFaultKind::kKillAtTaskStart) DieBySigkill();

        wire::ReduceResponse resp;
        resp.task_id = req.task_id;
        resp.dispatch = req.dispatch;
        const double cpu0 = ThreadCpuSeconds();
        if (!req.presorted) {
          Stopwatch sort_watch;
          for (auto& bucket : req.buckets) {
            std::sort(bucket.begin(), bucket.end(), RowTimeLess);
          }
          resp.sort_seconds = sort_watch.ElapsedSeconds();
        }
        ReduceAttemptContext ctx;
        ctx.stage = &stage;
        ctx.physical_partition = static_cast<int>(req.task_id);
        ctx.base_partition = static_cast<int>(req.base_partition);
        ctx.attempt = static_cast<int>(req.attempt);
        ctx.sort_output = req.sort_output;
        ctx.buckets = &req.buckets;
        ctx.input_schemas = &req.input_schemas;
        ctx.fault = Fault{req.fault_kind, req.straggler_seconds};
        resp.status = RunReduceAttempt(ctx, &resp.rows);
        resp.cpu_seconds = ThreadCpuSeconds() - cpu0;

        std::string payload;
        wire::EncodeReduceResponse(resp, &payload);
        const bool truncate =
            chaos == ProcessFaultKind::kTruncateResponse ||
            scripted.Fires(ScriptedProcessKill::Window::kMidReduceResponse);
        if (truncate) {
          SendTruncatedAndDie(fd, rpc::MsgType::kReduceResponse, payload,
                              &send_mu);
        }
        {
          std::lock_guard<std::mutex> lock(send_mu);
          if (!rpc::SendFrame(fd, rpc::MsgType::kReduceResponse, payload).ok()) {
            _exit(2);
          }
        }
        break;
      }

      default:
        _exit(2);  // protocol violation from the driver: die, driver requeues
    }
  }
}

}  // namespace timr::mr
