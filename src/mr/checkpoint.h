// Stage checkpoint/resume for LocalCluster jobs (paper §III-C.1).
//
// In the paper, every stage's output lives in the distributed store, so a job
// that dies between stages restarts from the last completed stage for free.
// Our in-process store dies with the driver; CheckpointStore stands in for the
// durable layer: after each completed stage, RunJob/RunPlan snapshot the
// datasets that stage wrote plus the names of the input datasets it *released*
// (consumed, see MRStage::consumable_inputs). Resuming replays those records
// in order — re-inserting outputs and re-releasing consumed inputs — which
// reproduces the exact store state the job had after its last checkpoint, so
// the resumed job provably produces bit-identical final output
// (mr_cluster_test.cc chaos suite).
//
// Two storage modes:
//  - in-memory (default): snapshots are deep copies held by this object;
//    resume requires handing the same CheckpointStore to the next run.
//  - spill directory: datasets are serialized to files under `spill_dir` with
//    a manifest, and a *fresh* CheckpointStore constructed on that directory
//    reloads the manifest — surviving actual driver death, not just a
//    simulated one.

#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "mr/dataset.h"

namespace timr::mr {

class CheckpointStore {
 public:
  /// In-memory checkpoints.
  CheckpointStore() = default;

  /// Spill checkpoints to files under `spill_dir` (created if missing). If the
  /// directory already holds a manifest from a previous run, its records are
  /// loaded — construction *is* crash recovery. Load errors are deferred to
  /// Restore so construction stays infallible.
  explicit CheckpointStore(std::string spill_dir);

  /// Number of leading stages checkpointed so far.
  size_t num_stages() const { return records_.size(); }

  const std::string& stage_name(size_t i) const {
    return records_[i].stage_name;
  }

  /// Rows in stage i's primary output (for the stats of resumed stages).
  size_t rows_out(size_t i) const { return records_[i].primary_rows; }

  /// Input datasets stage i released (consumed for the last time). The
  /// checkpoint-cut validity check (analysis/fragment_checks.h) audits these
  /// against the resuming plan's fragment dependencies.
  const std::vector<std::string>& released(size_t i) const {
    return records_[i].released;
  }

  /// Record stage `index` (must be num_stages(): stages checkpoint in order).
  /// `outputs` lists the datasets the stage wrote (primary output first,
  /// quarantine if any); `released` names the input datasets it consumed.
  Status SaveStage(size_t index, const std::string& stage_name,
                   const std::vector<std::pair<std::string, const Dataset*>>& outputs,
                   std::vector<std::string> released);

  /// Replay every record into `store` (which must already hold the job's
  /// external inputs): outputs are inserted, released datasets have their
  /// partitions cleared. `stage_names` is the resuming job's stage list; the
  /// records must be a prefix of it or the checkpoint is rejected as
  /// belonging to a different job. Returns the number of leading stages
  /// restored (the index the job should resume from).
  Result<size_t> Restore(const std::vector<std::string>& stage_names,
                         std::map<std::string, Dataset>* store) const;

 private:
  struct Record {
    std::string stage_name;
    size_t primary_rows = 0;
    /// In-memory mode: the snapshots themselves. Spill mode: empty.
    std::vector<std::pair<std::string, Dataset>> outputs;
    /// Spill mode: (dataset name, file path) per output. In-memory: empty.
    std::vector<std::pair<std::string, std::string>> spilled;
    std::vector<std::string> released;
  };

  Status WriteManifest() const;
  Status LoadManifest();

  std::string dir_;           // empty = in-memory mode
  Status load_status_;        // deferred manifest-load error (spill mode)
  std::vector<Record> records_;
};

/// Serialize a dataset to `path` / read it back, bit-exactly (schema,
/// partition shape, every cell). Host-endian binary — checkpoints are
/// consumed by the machine that wrote them. Exposed for tests.
Status WriteDatasetFile(const std::string& path, const Dataset& dataset);
Result<Dataset> ReadDatasetFile(const std::string& path);

}  // namespace timr::mr
