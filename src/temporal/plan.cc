#include "temporal/plan.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace timr::temporal {

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kInput: return "Input";
    case OpKind::kSubplanInput: return "SubplanInput";
    case OpKind::kSelect: return "Select";
    case OpKind::kProject: return "Project";
    case OpKind::kAlterLifetime: return "AlterLifetime";
    case OpKind::kAggregate: return "Aggregate";
    case OpKind::kGroupApply: return "GroupApply";
    case OpKind::kUnion: return "Union";
    case OpKind::kTemporalJoin: return "TemporalJoin";
    case OpKind::kAntiSemiJoin: return "AntiSemiJoin";
    case OpKind::kUdo: return "Udo";
    case OpKind::kExchange: return "Exchange";
    case OpKind::kConformanceCheck: return "ConformanceCheck";
  }
  return "?";
}

std::string PartitionSpec::ToString() const {
  if (kind == Kind::kTemporal) {
    return "TIME(span=" + std::to_string(span_width) +
           ",overlap=" + std::to_string(overlap) + ")";
  }
  std::string out = "{";
  for (size_t i = 0; i < keys.size(); ++i) {
    if (i > 0) out += ",";
    out += keys[i];
  }
  out += "}";
  if (adaptive_split) out += "+split";
  return out;
}

Result<Schema> PlanNode::OutputSchema() const {
  auto cached = std::atomic_load_explicit(&cached_schema_,
                                          std::memory_order_acquire);
  if (cached == nullptr) {
    cached = std::make_shared<const Result<Schema>>(ComputeSchema());
    std::atomic_store_explicit(&cached_schema_, cached,
                               std::memory_order_release);
  }
  return *cached;
}

Result<Schema> PlanNode::ComputeSchema() const {
  switch (kind) {
    case OpKind::kInput:
    case OpKind::kSubplanInput:
      return input_schema;
    case OpKind::kSelect:
    case OpKind::kExchange:
    case OpKind::kConformanceCheck:
      return children[0]->OutputSchema();
    case OpKind::kAlterLifetime:
      return children[0]->OutputSchema();
    case OpKind::kProject:
      return project_schema;
    case OpKind::kAggregate: {
      ValueType out_type = ValueType::kDouble;
      if (agg.kind == AggKind::kCount) out_type = ValueType::kInt64;
      return Schema({{agg.output_name, out_type}});
    }
    case OpKind::kGroupApply: {
      TIMR_ASSIGN_OR_RETURN(Schema in, children[0]->OutputSchema());
      TIMR_ASSIGN_OR_RETURN(std::vector<int> key_idx, in.IndicesOf(group_keys));
      TIMR_ASSIGN_OR_RETURN(Schema sub, subplan->OutputSchema());
      return in.Select(key_idx).Concat(sub);
    }
    case OpKind::kUnion: {
      TIMR_ASSIGN_OR_RETURN(Schema a, children[0]->OutputSchema());
      TIMR_ASSIGN_OR_RETURN(Schema b, children[1]->OutputSchema());
      if (a != b) {
        return Status::Invalid("Union inputs have different schemas: " +
                               a.ToString() + " vs " + b.ToString());
      }
      return a;
    }
    case OpKind::kTemporalJoin: {
      TIMR_ASSIGN_OR_RETURN(Schema a, children[0]->OutputSchema());
      TIMR_ASSIGN_OR_RETURN(Schema b, children[1]->OutputSchema());
      TIMR_RETURN_NOT_OK(a.IndicesOf(left_keys).status());
      TIMR_RETURN_NOT_OK(b.IndicesOf(right_keys).status());
      if (join_project) return join_schema;
      return a.Concat(b);
    }
    case OpKind::kAntiSemiJoin: {
      TIMR_ASSIGN_OR_RETURN(Schema a, children[0]->OutputSchema());
      TIMR_ASSIGN_OR_RETURN(Schema b, children[1]->OutputSchema());
      TIMR_RETURN_NOT_OK(a.IndicesOf(left_keys).status());
      TIMR_RETURN_NOT_OK(b.IndicesOf(right_keys).status());
      return a;
    }
    case OpKind::kUdo:
      return udo_schema;
  }
  return Status::Invalid("unknown plan node kind");
}

namespace {

void CollectNodesImpl(const PlanNodePtr& node,
                      std::unordered_set<const PlanNode*>* seen,
                      std::vector<PlanNode*>* out, bool enter_subplans) {
  if (!node || seen->count(node.get())) return;
  seen->insert(node.get());
  out->push_back(node.get());
  for (const auto& c : node->children) {
    CollectNodesImpl(c, seen, out, enter_subplans);
  }
  if (enter_subplans && node->subplan) {
    CollectNodesImpl(node->subplan, seen, out, enter_subplans);
  }
}

}  // namespace

std::vector<PlanNode*> CollectNodes(const PlanNodePtr& root) {
  std::unordered_set<const PlanNode*> seen;
  std::vector<PlanNode*> out;
  CollectNodesImpl(root, &seen, &out, /*enter_subplans=*/true);
  return out;
}

std::vector<PlanNode*> CollectInputs(const PlanNodePtr& root) {
  std::vector<PlanNode*> inputs;
  for (PlanNode* n : CollectNodes(root)) {
    if (n->kind == OpKind::kInput) inputs.push_back(n);
  }
  return inputs;
}

namespace {

PlanNodePtr CloneImpl(const PlanNodePtr& node,
                      std::unordered_map<const PlanNode*, PlanNodePtr>* memo) {
  if (!node) return nullptr;
  auto it = memo->find(node.get());
  if (it != memo->end()) return it->second;
  auto copy = std::make_shared<PlanNode>(*node);
  (*memo)[node.get()] = copy;
  for (auto& c : copy->children) c = CloneImpl(c, memo);
  copy->subplan = CloneImpl(node->subplan, memo);
  return copy;
}

}  // namespace

PlanNodePtr ClonePlan(const PlanNodePtr& root) {
  std::unordered_map<const PlanNode*, PlanNodePtr> memo;
  return CloneImpl(root, &memo);
}

Timestamp PlanNode::MaxWindow() const {
  Timestamp w = kTick;
  std::unordered_set<const PlanNode*> seen;
  std::vector<const PlanNode*> stack = {this};
  while (!stack.empty()) {
    const PlanNode* n = stack.back();
    stack.pop_back();
    if (seen.count(n)) continue;
    seen.insert(n);
    if (n->kind == OpKind::kAlterLifetime) {
      w = std::max(w, n->alter.MaxWindow());
    }
    if (n->kind == OpKind::kUdo) w = std::max(w, n->udo_window + n->udo_hop);
    for (const auto& c : n->children) stack.push_back(c.get());
    if (n->subplan) stack.push_back(n->subplan.get());
  }
  return w;
}

namespace {

void RenderNode(const PlanNode* node, int indent, std::ostringstream* os) {
  for (int i = 0; i < indent; ++i) *os << "  ";
  *os << OpKindName(node->kind);
  switch (node->kind) {
    case OpKind::kInput:
      *os << "(" << node->name << ")";
      break;
    case OpKind::kGroupApply: {
      *os << "(";
      for (size_t i = 0; i < node->group_keys.size(); ++i) {
        if (i > 0) *os << ",";
        *os << node->group_keys[i];
      }
      *os << ")";
      break;
    }
    case OpKind::kExchange:
      *os << " " << node->exchange.ToString();
      break;
    case OpKind::kConformanceCheck:
      *os << "(" << node->name << ")";
      break;
    case OpKind::kAggregate:
      *os << "(" << node->agg.output_name << ")";
      break;
    default:
      break;
  }
  *os << "\n";
  for (const auto& c : node->children) RenderNode(c.get(), indent + 1, os);
  if (node->subplan) {
    for (int i = 0; i < indent + 1; ++i) *os << "  ";
    *os << "[per-group sub-plan]\n";
    RenderNode(node->subplan.get(), indent + 2, os);
  }
}

}  // namespace

std::string PlanNode::ToString() const {
  std::ostringstream os;
  RenderNode(this, 0, &os);
  return os.str();
}

}  // namespace timr::temporal
