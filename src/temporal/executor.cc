#include "temporal/executor.h"

#include <algorithm>
#include <unordered_map>

#include "temporal/conformance.h"
#include "temporal/group_apply.h"

namespace timr::temporal {

/// Source operator: accepts pushed events, enforces per-source ordering.
class Executor::InputNode : public UnaryOperator {
 public:
  void OnEvent(Event event) override {
    TIMR_CHECK(event.le >= last_le_)
        << "source events must be pushed in non-decreasing LE order ("
        << event.le << " after " << last_le_ << ")";
    last_le_ = event.le;
    CountConsumed();
    Emit(std::move(event));
  }
  void OnCti(Timestamp t) override { EmitCti(t); }

 private:
  Timestamp last_le_ = kMinTime;
};

namespace {

/// Recursive network builder. Shared plan nodes become one operator with
/// multiple downstream sinks (implicit Multicast).
class NetworkBuilder {
 public:
  NetworkBuilder(std::vector<std::shared_ptr<Operator>>* ops,
                 std::map<std::string, Executor::InputNode*>* inputs)
      : ops_(ops), inputs_(inputs) {}

  Result<Operator*> Build(const PlanNodePtr& node) {
    auto it = memo_.find(node.get());
    if (it != memo_.end()) return it->second;
    TIMR_ASSIGN_OR_RETURN(Operator * op, Create(node));
    memo_[node.get()] = op;
    for (size_t i = 0; i < node->children.size(); ++i) {
      TIMR_ASSIGN_OR_RETURN(Operator * child, Build(node->children[i]));
      child->AddOutput(op->InputPort(static_cast<int>(i)));
    }
    return op;
  }

  /// The operator built for the (unique) kSubplanInput leaf, if any.
  Operator* subplan_entry() const { return subplan_entry_; }

 private:
  Result<Operator*> Create(const PlanNodePtr& node) {
    // Validate schemas eagerly so errors surface at build time.
    TIMR_RETURN_NOT_OK(node->OutputSchema().status());
    switch (node->kind) {
      case OpKind::kInput: {
        auto op = std::make_shared<Executor::InputNode>();
        if (inputs_->count(node->name)) {
          return Status::Invalid("duplicate input name: " + node->name);
        }
        (*inputs_)[node->name] = op.get();
        return Register(std::move(op));
      }
      case OpKind::kSubplanInput: {
        if (subplan_entry_ != nullptr) {
          return Status::Invalid("group sub-plan has multiple input leaves");
        }
        Operator* op = Register(std::make_shared<PassthroughOp>());
        subplan_entry_ = op;
        return op;
      }
      case OpKind::kSelect:
        return Register(std::make_shared<SelectOp>(node->pred));
      case OpKind::kProject:
        return Register(std::make_shared<ProjectOp>(node->project_fn));
      case OpKind::kAlterLifetime:
        return Register(std::make_shared<AlterLifetimeOp>(node->alter));
      case OpKind::kExchange:
        // Single-node execution: an exchange is a no-op passthrough.
        return Register(std::make_shared<PassthroughOp>());
      case OpKind::kConformanceCheck:
        return Register(std::make_shared<ConformanceCheckOp>(node->name));
      case OpKind::kAggregate: {
        int value_index = -1;
        if (node->agg.kind != AggKind::kCount) {
          TIMR_ASSIGN_OR_RETURN(Schema in, node->children[0]->OutputSchema());
          TIMR_ASSIGN_OR_RETURN(value_index, in.IndexOf(node->agg.value_column));
        }
        return Register(std::make_shared<AggregateOp>(node->agg, value_index));
      }
      case OpKind::kGroupApply: {
        TIMR_ASSIGN_OR_RETURN(Schema in, node->children[0]->OutputSchema());
        TIMR_ASSIGN_OR_RETURN(std::vector<int> key_idx,
                              in.IndicesOf(node->group_keys));
        PlanNodePtr sub = node->subplan;
        SubPlanFactory factory = [sub](EventSink* output) {
          std::vector<std::shared_ptr<Operator>> ops;
          std::map<std::string, Executor::InputNode*> no_inputs;
          NetworkBuilder b(&ops, &no_inputs);
          auto root = b.Build(sub);
          TIMR_CHECK(root.ok()) << root.status().ToString();
          root.ValueOrDie()->AddOutput(output);
          TIMR_CHECK(b.subplan_entry() != nullptr)
              << "group sub-plan has no input leaf";
          return std::make_unique<SubPlanNetwork>(b.subplan_entry()->InputPort(0),
                                                  std::move(ops));
        };
        return Register(std::make_shared<GroupApplyOp>(std::move(key_idx),
                                                       std::move(factory)));
      }
      case OpKind::kUnion:
        return Register(std::make_shared<UnionOp>());
      case OpKind::kTemporalJoin: {
        TIMR_ASSIGN_OR_RETURN(Schema ls, node->children[0]->OutputSchema());
        TIMR_ASSIGN_OR_RETURN(Schema rs, node->children[1]->OutputSchema());
        TIMR_ASSIGN_OR_RETURN(std::vector<int> lk, ls.IndicesOf(node->left_keys));
        TIMR_ASSIGN_OR_RETURN(std::vector<int> rk,
                              rs.IndicesOf(node->right_keys));
        return Register(std::make_shared<TemporalJoinOp>(
            std::move(lk), std::move(rk), node->join_pred, node->join_project));
      }
      case OpKind::kAntiSemiJoin: {
        TIMR_ASSIGN_OR_RETURN(Schema ls, node->children[0]->OutputSchema());
        TIMR_ASSIGN_OR_RETURN(Schema rs, node->children[1]->OutputSchema());
        TIMR_ASSIGN_OR_RETURN(std::vector<int> lk, ls.IndicesOf(node->left_keys));
        TIMR_ASSIGN_OR_RETURN(std::vector<int> rk,
                              rs.IndicesOf(node->right_keys));
        return Register(
            std::make_shared<AntiSemiJoinOp>(std::move(lk), std::move(rk)));
      }
      case OpKind::kUdo:
        return Register(std::make_shared<HoppingUdoOp>(
            node->udo_window, node->udo_hop, node->udo_fn));
    }
    return Status::Invalid("unknown plan node kind");
  }

  Operator* Register(std::shared_ptr<Operator> op) {
    ops_->push_back(op);
    return ops_->back().get();
  }

  std::vector<std::shared_ptr<Operator>>* ops_;
  std::map<std::string, Executor::InputNode*>* inputs_;
  std::unordered_map<const PlanNode*, Operator*> memo_;
  Operator* subplan_entry_ = nullptr;
};

}  // namespace

Result<std::unique_ptr<Executor>> Executor::Create(const PlanNodePtr& root) {
  auto exec = std::unique_ptr<Executor>(new Executor());
  NetworkBuilder builder(&exec->operators_, &exec->inputs_);
  TIMR_ASSIGN_OR_RETURN(exec->root_op_, builder.Build(root));
  exec->root_op_->AddOutput(&exec->collector_);
  for (const auto& [name, op] : exec->inputs_) {
    (void)op;
    exec->input_names_.push_back(name);
  }
  if (exec->inputs_.empty()) {
    return Status::Invalid("plan has no Input sources");
  }
  return exec;
}

Status Executor::PushEvent(const std::string& input, Event event) {
  auto it = inputs_.find(input);
  if (it == inputs_.end()) return Status::KeyError("no input named " + input);
  it->second->OnEvent(std::move(event));
  return Status::OK();
}

Status Executor::PushCti(const std::string& input, Timestamp t) {
  auto it = inputs_.find(input);
  if (it == inputs_.end()) return Status::KeyError("no input named " + input);
  it->second->OnCti(t);
  return Status::OK();
}

void Executor::PushCtiAll(Timestamp t) {
  for (auto& [name, op] : inputs_) {
    (void)name;
    op->OnCti(t);
  }
}

void Executor::Finish() { PushCtiAll(kMaxTime); }

void Executor::AddOutputSink(EventSink* sink) { root_op_->AddOutput(sink); }

uint64_t Executor::TotalEventsConsumed() const {
  uint64_t total = 0;
  for (const auto& op : operators_) total += op->events_consumed();
  return total;
}

std::vector<std::string> Executor::ConformanceViolations() const {
  std::vector<std::string> out;
  for (const auto& op : operators_) {
    if (auto* check = dynamic_cast<const ConformanceCheckOp*>(op.get())) {
      out.insert(out.end(), check->violations().begin(),
                 check->violations().end());
    }
  }
  return out;
}

Result<std::vector<Event>> Executor::Execute(
    const PlanNodePtr& root, std::map<std::string, std::vector<Event>> inputs) {
  TIMR_ASSIGN_OR_RETURN(std::unique_ptr<Executor> exec, Create(root));
  return exec->RunBatch(std::move(inputs));
}

Result<std::vector<Event>> Executor::RunBatch(
    std::map<std::string, std::vector<Event>> inputs) {
  // Global LE-order merge across sources, advancing every source's CTI to the
  // current merge position so binary operators make progress.
  struct Cursor {
    InputNode* op;
    std::vector<Event>* events;
    size_t pos = 0;
  };
  std::vector<Cursor> cursors;
  for (auto& [name, events] : inputs) {
    auto it = inputs_.find(name);
    if (it == inputs_.end()) {
      return Status::KeyError("plan has no input named " + name);
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const Event& a, const Event& b) { return a.le < b.le; });
    cursors.push_back(Cursor{it->second, &events, 0});
  }
  Timestamp last_cti = kMinTime;
  while (true) {
    int pick = -1;
    for (size_t i = 0; i < cursors.size(); ++i) {
      if (cursors[i].pos >= cursors[i].events->size()) continue;
      const Timestamp le = (*cursors[i].events)[cursors[i].pos].le;
      if (pick == -1 || le < (*cursors[pick].events)[cursors[pick].pos].le) {
        pick = static_cast<int>(i);
      }
    }
    if (pick == -1) break;
    Cursor& c = cursors[pick];
    Event ev = std::move((*c.events)[c.pos++]);
    if (ev.le > last_cti) {
      last_cti = ev.le;
      PushCtiAll(last_cti);
    }
    c.op->OnEvent(std::move(ev));
  }
  Finish();
  return TakeOutput();
}

}  // namespace timr::temporal
