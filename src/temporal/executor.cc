#include "temporal/executor.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "temporal/conformance.h"
#include "temporal/group_apply.h"
#include "temporal/tee.h"

namespace timr::temporal {

namespace {

/// One-pass worker behind PlanColumnarIngest: builds reverse-parent edges over
/// the visible DAG (child edges only; group sub-plans plan separately), then
/// memoizes the per-node "consumes columnar natively" decision.
class ColumnarIngestPlanner {
 public:
  explicit ColumnarIngestPlanner(const PlanNode* root) {
    seen_.insert(root);
    order_.push_back(root);
    Walk(root);
  }

  ColumnarIngestDecisions Run() {
    ColumnarIngestDecisions out;
    for (const PlanNode* n : order_) {
      out.consumes_columnar[n] = Likes(n);
    }
    for (const PlanNode* n : order_) {
      if (n->kind == OpKind::kInput) out.ingest_columnar[n] = Prefers(n);
    }
    return out;
  }

  /// Whether every direct consumer of `n` benefits from columnar input. All,
  /// not any: a multicast clones the morsel per consumer, and a row-bound
  /// consumer re-materializes its whole clone, which costs more than the
  /// columnar consumers save (measured on the BT pipeline, where mixed
  /// fan-out made any-consumer ingest a net loss). The plan root has no
  /// in-DAG consumer (the collector is row-bound), so it reports false.
  bool Prefers(const PlanNode* n) {
    const auto& ps = rparents_[n];
    if (ps.empty()) return false;
    for (const PlanNode* p : ps) {
      if (!Likes(p)) return false;
    }
    return true;
  }

  /// Whether the physical operator for `n` consumes columnar batches natively
  /// (i.e. does useful vectorized work before — or without — materializing
  /// rows). Pure pass-throughs recurse to *their* consumers: converting at
  /// ingest is only worthwhile if something downstream of the pass-through
  /// runs a kernel.
  bool Likes(const PlanNode* n) {
    auto memo = likes_memo_.find(n);
    if (memo != likes_memo_.end()) return memo->second;
    const bool v = LikesUncached(n);
    likes_memo_[n] = v;
    return v;
  }

 private:
  void Walk(const PlanNode* n) {
    for (const auto& c : n->children) {
      rparents_[c.get()].push_back(n);
      if (seen_.insert(c.get()).second) {
        order_.push_back(c.get());
        Walk(c.get());
      }
    }
  }

  bool LikesUncached(const PlanNode* n) {
    switch (n->kind) {
      case OpKind::kSelect:
        return n->select_spec.has_value();
      case OpKind::kProject:
        return n->project_spec.has_value();
      case OpKind::kAlterLifetime:
        return true;
      case OpKind::kAggregate: {
        if (n->agg.kind == AggKind::kCount) return true;
        auto in = n->children[0]->OutputSchema();
        if (!in.ok()) return false;
        auto idx = in.ValueOrDie().IndexOf(n->agg.value_column);
        if (!idx.ok()) return false;
        return in.ValueOrDie().field(idx.ValueOrDie()).type !=
               ValueType::kString;
      }
      case OpKind::kGroupApply:
      case OpKind::kTemporalJoin:
      case OpKind::kAntiSemiJoin:
        // Their ports bulk-hash keys off raw columns, but each event still
        // materializes a Row for the synopsis, so building columnar morsels
        // for them costs more at ingest than the hashing saves (measured ~1x
        // on the join-probe kernel). Columnar batches produced by upstream
        // kernels are still consumed natively.
        return false;
      case OpKind::kExchange:
      case OpKind::kConformanceCheck:
        // Pure pass-throughs inherit their consumers' preference — all of
        // them, for the same fan-out reason as Prefers.
        return Prefers(n);
      case OpKind::kInput:
      case OpKind::kSubplanInput:
      case OpKind::kUnion:
      case OpKind::kUdo:
        return false;
    }
    return false;
  }

  std::unordered_set<const PlanNode*> seen_;
  std::vector<const PlanNode*> order_;
  std::unordered_map<const PlanNode*, std::vector<const PlanNode*>> rparents_;
  std::unordered_map<const PlanNode*, bool> likes_memo_;
};

}  // namespace

ColumnarIngestDecisions PlanColumnarIngest(const PlanNodePtr& root) {
  return ColumnarIngestPlanner(root.get()).Run();
}

/// Source operator: accepts pushed events, enforces per-source ordering.
class Executor::InputNode : public UnaryOperator {
 public:
  void OnEvent(Event event) override {
    TIMR_CHECK(event.le >= last_le_)
        << "source events must be pushed in non-decreasing LE order ("
        << event.le << " after " << last_le_ << ")";
    last_le_ = event.le;
    CountConsumed();
    Emit(std::move(event));
  }
  void OnCti(Timestamp t) override { EmitCti(t); }
  void OnBatch(EventBatch&& batch) override {
    // Same always-on ordering check the per-event path performs, one compare
    // per event instead of one virtual call per event.
    if (batch.columnar()) {
      for (Timestamp le : batch.columnar_payload().le()) {
        TIMR_CHECK(le >= last_le_)
            << "source events must be pushed in non-decreasing LE order ("
            << le << " after " << last_le_ << ")";
        last_le_ = le;
      }
    } else {
      for (const Event& e : batch.events()) {
        TIMR_CHECK(e.le >= last_le_)
            << "source events must be pushed in non-decreasing LE order ("
            << e.le << " after " << last_le_ << ")";
        last_le_ = e.le;
      }
    }
    CountConsumedN(batch.NumEvents());
    EmitBatch(std::move(batch));
  }

  /// Build-time ingest decision: `prefer` is true when at least one direct
  /// consumer of this source executes columnar batches natively, so RunBatch
  /// knows whether building columnar morsels for it can pay off.
  void ConfigureColumnarIngest(Schema payload_schema, bool prefer) {
    payload_schema_ = std::move(payload_schema);
    prefer_columnar_ = prefer;
  }
  bool prefer_columnar() const { return prefer_columnar_; }
  const Schema& payload_schema() const { return payload_schema_; }

 private:
  Timestamp last_le_ = kMinTime;
  Schema payload_schema_;
  bool prefer_columnar_ = false;
};

namespace {

/// Recursive network builder. Shared plan nodes become one operator with
/// multiple downstream sinks (implicit Multicast).
class NetworkBuilder {
 public:
  NetworkBuilder(std::vector<std::shared_ptr<Operator>>* ops,
                 std::map<std::string, Executor::InputNode*>* inputs)
      : ops_(ops), inputs_(inputs) {}

  Result<Operator*> Build(const PlanNodePtr& node) {
    if (!counted_) {
      counted_ = true;
      parents_[node.get()] = 1;  // the root's consumer (collector / parent op)
      CountParents(node.get());
      ingest_ = PlanColumnarIngest(node);
    }
    auto it = memo_.find(node.get());
    if (it != memo_.end()) return it->second;
    if (node->kind == OpKind::kExchange) {
      // Single-node execution: an exchange is pure routing, so its consumers
      // bind straight to the producer instead of paying a per-event
      // passthrough hop (the annotated BT plan crosses several exchanges).
      TIMR_RETURN_NOT_OK(node->OutputSchema().status());
      TIMR_ASSIGN_OR_RETURN(Operator * child, Build(node->children[0]));
      memo_[node.get()] = child;
      return child;
    }
    TIMR_ASSIGN_OR_RETURN(Operator * fused, TryFuse(node));
    if (fused != nullptr) return fused;
    TIMR_ASSIGN_OR_RETURN(Operator * op, Create(node));
    memo_[node.get()] = op;
    for (size_t i = 0; i < node->children.size(); ++i) {
      TIMR_RETURN_NOT_OK(
          WireChild(node->children[i], op->InputPort(static_cast<int>(i))));
    }
    return op;
  }

  /// The sink feeding the (unique) kSubplanInput leaf, if any.
  EventSink* subplan_sink() const { return subplan_sink_; }

 private:
  static bool Fusable(const PlanNode* n) {
    return n->kind == OpKind::kSelect || n->kind == OpKind::kProject ||
           n->kind == OpKind::kAlterLifetime;
  }

  /// Consumer counts are kept on *physical* producers: an elided kExchange
  /// aliases to its child's operator in Build(), so an edge into an exchange
  /// is an edge into the node below it. Exchange nodes themselves are never
  /// counted (and never consulted).
  static const PlanNode* ResolveExchanges(const PlanNode* n) {
    while (n->kind == OpKind::kExchange) n = n->children[0].get();
    return n;
  }

  void CountParents(const PlanNode* n) {
    for (const auto& c : n->children) {
      const PlanNode* resolved = ResolveExchanges(c.get());
      if (++parents_[resolved] == 1) CountParents(resolved);
    }
  }

  /// Builds `child` and connects its output to `port`. A single-consumer
  /// kSubplanInput leaf gets no operator of its own: the group instance's
  /// input feeds `port` directly, sparing every routed event (and every
  /// broadcast CTI) a passthrough hop in every group instance. Multi-consumer
  /// leaves still build a PassthroughOp in Create as the fan-out node.
  ///
  /// A multi-consumer producer is fronted by one TeeOp that every consumer
  /// port hangs off: batches fan out as shared copy-on-write views instead of
  /// the deep Clone-per-sink the bare Operator::EmitBatch multicast performs.
  /// Consumers are attached to the tee in wiring order, which is exactly the
  /// order AddOutput calls happened before — delivery order (and therefore
  /// output) is bit-identical.
  Status WireChild(const PlanNodePtr& child, EventSink* port) {
    if (child->kind == OpKind::kSubplanInput && parents_[child.get()] == 1) {
      if (subplan_sink_ != nullptr) {
        return Status::Invalid("group sub-plan has multiple input leaves");
      }
      subplan_sink_ = port;
      return Status::OK();
    }
    TIMR_ASSIGN_OR_RETURN(Operator * op, Build(child));
    if (parents_[ResolveExchanges(child.get())] > 1) {
      // Key the tee by the physical operator: consumers that reach the same
      // producer through different (elided) exchange aliases share one tee.
      TeeOp*& tee = tees_[op];
      if (tee == nullptr) {
        auto owned = std::make_shared<TeeOp>();
        tee = owned.get();
        Register(std::move(owned));
        op->AddOutput(tee->InputPort(0));
      }
      tee->AddPort(port);
      return Status::OK();
    }
    op->AddOutput(port);
    return Status::OK();
  }

  /// Collapses a maximal chain of adjacent stateless nodes (head `node`, then
  /// descendants that are themselves stateless and single-consumer) into one
  /// FusedStatelessOp. Returns nullptr when no chain of length >= 2 starts at
  /// `node`; the regular Create path then applies.
  Result<Operator*> TryFuse(const PlanNodePtr& node) {
    if (!Fusable(node.get())) return nullptr;
    std::vector<const PlanNode*> chain{node.get()};  // head-to-tail
    const PlanNode* tail = node.get();
    while (true) {
      const PlanNode* child = tail->children[0].get();
      if (!Fusable(child) || parents_[child] != 1) break;
      chain.push_back(child);
      tail = child;
    }
    if (chain.size() < 2) return nullptr;
    std::vector<FusedStatelessOp::Step> steps;
    steps.reserve(chain.size());
    // Execution order is upstream-first: tail to head.
    for (auto rit = chain.rbegin(); rit != chain.rend(); ++rit) {
      const PlanNode* n = *rit;
      TIMR_RETURN_NOT_OK(n->OutputSchema().status());
      switch (n->kind) {
        case OpKind::kSelect:
          steps.push_back(
              FusedStatelessOp::Step::Select(n->pred, n->select_spec));
          break;
        case OpKind::kProject:
          steps.push_back(
              FusedStatelessOp::Step::Project(n->project_fn, n->project_spec));
          break;
        default:
          steps.push_back(FusedStatelessOp::Step::Alter(n->alter));
          break;
      }
    }
    Operator* op = Register(std::make_shared<FusedStatelessOp>(std::move(steps)));
    memo_[node.get()] = op;
    TIMR_RETURN_NOT_OK(WireChild(tail->children[0], op->InputPort(0)));
    return op;
  }

  Result<Operator*> Create(const PlanNodePtr& node) {
    // Validate schemas eagerly so errors surface at build time.
    TIMR_RETURN_NOT_OK(node->OutputSchema().status());
    switch (node->kind) {
      case OpKind::kInput: {
        auto op = std::make_shared<Executor::InputNode>();
        if (inputs_->count(node->name)) {
          return Status::Invalid("duplicate input name: " + node->name);
        }
        const auto pref = ingest_.ingest_columnar.find(node.get());
        op->ConfigureColumnarIngest(
            node->input_schema,
            pref != ingest_.ingest_columnar.end() && pref->second);
        (*inputs_)[node->name] = op.get();
        return Register(std::move(op));
      }
      case OpKind::kSubplanInput: {
        // Reached only when the leaf has several consumers (or is itself the
        // sub-plan root); the passthrough is the shared fan-out node.
        if (subplan_sink_ != nullptr) {
          return Status::Invalid("group sub-plan has multiple input leaves");
        }
        Operator* op = Register(std::make_shared<PassthroughOp>());
        subplan_sink_ = op->InputPort(0);
        return op;
      }
      case OpKind::kSelect:
        if (node->select_spec.has_value()) {
          return Register(std::make_shared<SelectOp>(*node->select_spec));
        }
        return Register(std::make_shared<SelectOp>(node->pred));
      case OpKind::kProject:
        if (node->project_spec.has_value()) {
          TIMR_ASSIGN_OR_RETURN(Schema in, node->children[0]->OutputSchema());
          return Register(
              std::make_shared<ProjectOp>(*node->project_spec, in));
        }
        return Register(std::make_shared<ProjectOp>(node->project_fn));
      case OpKind::kAlterLifetime:
        return Register(std::make_shared<AlterLifetimeOp>(node->alter));
      case OpKind::kExchange:
        // Normally elided in Build(); a passthrough preserves behavior if an
        // exchange ever reaches physical creation.
        return Register(std::make_shared<PassthroughOp>());
      case OpKind::kConformanceCheck:
        return Register(std::make_shared<ConformanceCheckOp>(node->name));
      case OpKind::kAggregate: {
        int value_index = -1;
        if (node->agg.kind != AggKind::kCount) {
          TIMR_ASSIGN_OR_RETURN(Schema in, node->children[0]->OutputSchema());
          TIMR_ASSIGN_OR_RETURN(value_index, in.IndexOf(node->agg.value_column));
        }
        return Register(std::make_shared<AggregateOp>(node->agg, value_index));
      }
      case OpKind::kGroupApply: {
        TIMR_ASSIGN_OR_RETURN(Schema in, node->children[0]->OutputSchema());
        TIMR_ASSIGN_OR_RETURN(std::vector<int> key_idx,
                              in.IndicesOf(node->group_keys));
        PlanNodePtr sub = node->subplan;
        SubPlanFactory factory = [sub](EventSink* output) {
          std::vector<std::shared_ptr<Operator>> ops;
          std::map<std::string, Executor::InputNode*> no_inputs;
          NetworkBuilder b(&ops, &no_inputs);
          auto root = b.Build(sub);
          TIMR_CHECK(root.ok()) << root.status().ToString();
          root.ValueOrDie()->AddOutput(output);
          TIMR_CHECK(b.subplan_sink() != nullptr)
              << "group sub-plan has no input leaf";
          return std::make_unique<SubPlanNetwork>(b.subplan_sink(),
                                                  std::move(ops));
        };
        return Register(std::make_shared<GroupApplyOp>(std::move(key_idx),
                                                       std::move(factory)));
      }
      case OpKind::kUnion:
        return Register(std::make_shared<UnionOp>());
      case OpKind::kTemporalJoin: {
        TIMR_ASSIGN_OR_RETURN(Schema ls, node->children[0]->OutputSchema());
        TIMR_ASSIGN_OR_RETURN(Schema rs, node->children[1]->OutputSchema());
        TIMR_ASSIGN_OR_RETURN(std::vector<int> lk, ls.IndicesOf(node->left_keys));
        TIMR_ASSIGN_OR_RETURN(std::vector<int> rk,
                              rs.IndicesOf(node->right_keys));
        return Register(std::make_shared<TemporalJoinOp>(
            std::move(lk), std::move(rk), node->join_pred, node->join_project));
      }
      case OpKind::kAntiSemiJoin: {
        TIMR_ASSIGN_OR_RETURN(Schema ls, node->children[0]->OutputSchema());
        TIMR_ASSIGN_OR_RETURN(Schema rs, node->children[1]->OutputSchema());
        TIMR_ASSIGN_OR_RETURN(std::vector<int> lk, ls.IndicesOf(node->left_keys));
        TIMR_ASSIGN_OR_RETURN(std::vector<int> rk,
                              rs.IndicesOf(node->right_keys));
        return Register(
            std::make_shared<AntiSemiJoinOp>(std::move(lk), std::move(rk)));
      }
      case OpKind::kUdo:
        return Register(std::make_shared<HoppingUdoOp>(
            node->udo_window, node->udo_hop, node->udo_fn));
    }
    return Status::Invalid("unknown plan node kind");
  }

  Operator* Register(std::shared_ptr<Operator> op) {
    ops_->push_back(op);
    return ops_->back().get();
  }

  std::vector<std::shared_ptr<Operator>>* ops_;
  std::map<std::string, Executor::InputNode*>* inputs_;
  std::unordered_map<const PlanNode*, Operator*> memo_;
  std::unordered_map<const PlanNode*, int> parents_;
  std::unordered_map<Operator*, TeeOp*> tees_;
  ColumnarIngestDecisions ingest_;
  bool counted_ = false;
  EventSink* subplan_sink_ = nullptr;
};

}  // namespace

Result<std::unique_ptr<Executor>> Executor::Create(const PlanNodePtr& root) {
  auto exec = std::unique_ptr<Executor>(new Executor());
  NetworkBuilder builder(&exec->operators_, &exec->inputs_);
  TIMR_ASSIGN_OR_RETURN(exec->root_op_, builder.Build(root));
  exec->root_op_->AddOutput(&exec->collector_);
  for (const auto& [name, op] : exec->inputs_) {
    (void)op;
    exec->input_names_.push_back(name);
  }
  if (exec->inputs_.empty()) {
    return Status::Invalid("plan has no Input sources");
  }
  return exec;
}

Status Executor::PushEvent(const std::string& input, Event event) {
  auto it = inputs_.find(input);
  if (it == inputs_.end()) return Status::KeyError("no input named " + input);
  it->second->OnEvent(std::move(event));
  return Status::OK();
}

Status Executor::PushBatch(const std::string& input, EventBatch&& batch) {
  auto it = inputs_.find(input);
  if (it == inputs_.end()) return Status::KeyError("no input named " + input);
  it->second->OnBatch(std::move(batch));
  return Status::OK();
}

Status Executor::PushCti(const std::string& input, Timestamp t) {
  auto it = inputs_.find(input);
  if (it == inputs_.end()) return Status::KeyError("no input named " + input);
  it->second->OnCti(t);
  return Status::OK();
}

void Executor::PushCtiAll(Timestamp t) {
  for (auto& [name, op] : inputs_) {
    (void)name;
    op->OnCti(t);
  }
}

void Executor::Finish() { PushCtiAll(kMaxTime); }

void Executor::AddOutputSink(EventSink* sink) { root_op_->AddOutput(sink); }

Result<bool> Executor::InputPrefersColumnar(const std::string& input) const {
  auto it = inputs_.find(input);
  if (it == inputs_.end()) return Status::KeyError("no input named " + input);
  return it->second->prefer_columnar();
}

uint64_t Executor::TotalEventsConsumed() const {
  uint64_t total = 0;
  for (const auto& op : operators_) total += op->events_consumed();
  return total;
}

std::vector<std::string> Executor::ConformanceViolations() const {
  std::vector<std::string> out;
  for (const auto& op : operators_) {
    if (auto* check = dynamic_cast<const ConformanceCheckOp*>(op.get())) {
      out.insert(out.end(), check->violations().begin(),
                 check->violations().end());
    }
  }
  return out;
}

Result<std::vector<Event>> Executor::Execute(
    const PlanNodePtr& root, std::map<std::string, std::vector<Event>> inputs) {
  TIMR_ASSIGN_OR_RETURN(std::unique_ptr<Executor> exec, Create(root));
  return exec->RunBatch(std::move(inputs));
}

Result<std::vector<Event>> Executor::RunBatch(
    std::map<std::string, std::vector<Event>> inputs) {
  // Global LE-order merge across sources, delivered as morsels: the merged
  // stream is cut into same-source runs of at most batch_size_ events, with
  // thinned CTI marks embedded at LE advances. When a run flushes, the other
  // sources receive one coarse OnCti at the watermark; this is sound because
  // the merge order guarantees their pending events all have LE >= the
  // flushed run's last LE. Every operator is CTI-granularity-invariant (that
  // is what makes output independent of batch_size_ in the first place), so
  // the driver only punctuates every cti_thinning_-th LE advance: with mostly
  // unique timestamps a per-advance CTI doubles graph traffic — every
  // punctuation walks every operator — for no additional output.
  //
  // Morsels are built columnar (SoA) for sources whose direct consumers run
  // columnar kernels; a row whose dynamic types don't match the declared
  // schema demotes that morsel to the row representation on the spot.
  const size_t cti_thinning = cti_thinning_;
  size_t advances = 0;
  struct Cursor {
    InputNode* op;
    std::vector<Event>* events;
    size_t pos = 0;
    bool columnar = false;
  };
  std::vector<Cursor> cursors;
  for (auto& [name, events] : inputs) {
    auto it = inputs_.find(name);
    if (it == inputs_.end()) {
      return Status::KeyError("plan has no input named " + name);
    }
    auto le_less = [](const Event& a, const Event& b) { return a.le < b.le; };
    // Reducer inputs arrive already LE-sorted from the shuffle; with the
    // caller's assume_sorted_inputs guarantee the driver skips even the
    // is_sorted scan (debug builds still verify), otherwise the scan lets the
    // common case skip the sort (and its temp-buffer allocation).
    if (assume_sorted_inputs_) {
      TIMR_DCHECK(std::is_sorted(events.begin(), events.end(), le_less))
          << "assume_sorted_inputs set but input '" << name
          << "' is not LE-sorted";
    } else if (!std::is_sorted(events.begin(), events.end(), le_less)) {
      std::stable_sort(events.begin(), events.end(), le_less);
    }
    cursors.push_back(Cursor{it->second, &events, 0,
                             columnar_enabled_ && it->second->prefer_columnar()});
  }
  Timestamp last_cti = kMinTime;
  auto append = [](EventBatch& morsel, Event&& ev) {
    if (morsel.columnar()) {
      if (morsel.TryAppendColumnar(ev.le, ev.re, ev.payload)) return;
      morsel.EnsureRows();  // type mismatch: demote this morsel to rows
    }
    morsel.Add(std::move(ev));
  };
  // Single-input fast path: no merge bookkeeping, just slice the sorted
  // vector into batches. (Requires the plan to have one input too — with
  // unfed plan inputs the general loop's cross-source CTI at flush matters.)
  if (cursors.size() == 1 && inputs_.size() == 1) {
    Cursor& c = cursors[0];
    std::vector<Event>& events = *c.events;
    while (c.pos < events.size()) {
      const size_t n = std::min(batch_size_, events.size() - c.pos);
      EventBatch morsel;
      if (c.columnar) morsel.BeginColumnar(c.op->payload_schema());
      for (size_t i = 0; i < n; ++i) {
        Event ev = std::move(events[c.pos++]);
        if (ev.le > last_cti && ++advances >= cti_thinning) {
          advances = 0;
          last_cti = ev.le;
          morsel.AddCti(last_cti);
        }
        append(morsel, std::move(ev));
      }
      c.op->OnBatch(std::move(morsel));
    }
    Finish();
    return TakeOutput();
  }
  EventBatch batch;
  InputNode* batch_src = nullptr;
  auto flush = [&]() {
    if (batch_src == nullptr) return;
    InputNode* src = batch_src;
    batch_src = nullptr;
    src->OnBatch(std::move(batch));
    batch = EventBatch();
    for (auto& [name, op] : inputs_) {
      (void)name;
      if (op != src) op->OnCti(last_cti);
    }
  };
  while (true) {
    int pick = -1;
    for (size_t i = 0; i < cursors.size(); ++i) {
      if (cursors[i].pos >= cursors[i].events->size()) continue;
      const Timestamp le = (*cursors[i].events)[cursors[i].pos].le;
      if (pick == -1 || le < (*cursors[pick].events)[cursors[pick].pos].le) {
        pick = static_cast<int>(i);
      }
    }
    if (pick == -1) break;
    Cursor& c = cursors[pick];
    if (c.op != batch_src || batch.NumEvents() >= batch_size_) flush();
    if (batch_src == nullptr && c.columnar) {
      batch.BeginColumnar(c.op->payload_schema());
    }
    batch_src = c.op;
    Event ev = std::move((*c.events)[c.pos++]);
    if (ev.le > last_cti && ++advances >= cti_thinning) {
      advances = 0;
      last_cti = ev.le;
      batch.AddCti(last_cti);
    }
    append(batch, std::move(ev));
  }
  flush();
  Finish();
  return TakeOutput();
}

}  // namespace timr::temporal
