#include "temporal/executor.h"

#include <algorithm>
#include <unordered_map>

#include "temporal/conformance.h"
#include "temporal/group_apply.h"

namespace timr::temporal {

/// Source operator: accepts pushed events, enforces per-source ordering.
class Executor::InputNode : public UnaryOperator {
 public:
  void OnEvent(Event event) override {
    TIMR_CHECK(event.le >= last_le_)
        << "source events must be pushed in non-decreasing LE order ("
        << event.le << " after " << last_le_ << ")";
    last_le_ = event.le;
    CountConsumed();
    Emit(std::move(event));
  }
  void OnCti(Timestamp t) override { EmitCti(t); }
  void OnBatch(EventBatch&& batch) override {
    // Same always-on ordering check the per-event path performs, one compare
    // per event instead of one virtual call per event.
    for (const Event& e : batch.events()) {
      TIMR_CHECK(e.le >= last_le_)
          << "source events must be pushed in non-decreasing LE order ("
          << e.le << " after " << last_le_ << ")";
      last_le_ = e.le;
    }
    CountConsumedN(batch.NumEvents());
    EmitBatch(std::move(batch));
  }

 private:
  Timestamp last_le_ = kMinTime;
};

namespace {

/// Recursive network builder. Shared plan nodes become one operator with
/// multiple downstream sinks (implicit Multicast).
class NetworkBuilder {
 public:
  NetworkBuilder(std::vector<std::shared_ptr<Operator>>* ops,
                 std::map<std::string, Executor::InputNode*>* inputs)
      : ops_(ops), inputs_(inputs) {}

  Result<Operator*> Build(const PlanNodePtr& node) {
    if (!counted_) {
      counted_ = true;
      parents_[node.get()] = 1;  // the root's consumer (collector / parent op)
      CountParents(node.get());
    }
    auto it = memo_.find(node.get());
    if (it != memo_.end()) return it->second;
    TIMR_ASSIGN_OR_RETURN(Operator * fused, TryFuse(node));
    if (fused != nullptr) return fused;
    TIMR_ASSIGN_OR_RETURN(Operator * op, Create(node));
    memo_[node.get()] = op;
    for (size_t i = 0; i < node->children.size(); ++i) {
      TIMR_ASSIGN_OR_RETURN(Operator * child, Build(node->children[i]));
      child->AddOutput(op->InputPort(static_cast<int>(i)));
    }
    return op;
  }

  /// The operator built for the (unique) kSubplanInput leaf, if any.
  Operator* subplan_entry() const { return subplan_entry_; }

 private:
  static bool Fusable(const PlanNode* n) {
    return n->kind == OpKind::kSelect || n->kind == OpKind::kProject ||
           n->kind == OpKind::kAlterLifetime;
  }

  void CountParents(const PlanNode* n) {
    for (const auto& c : n->children) {
      if (++parents_[c.get()] == 1) CountParents(c.get());
    }
  }

  /// Collapses a maximal chain of adjacent stateless nodes (head `node`, then
  /// descendants that are themselves stateless and single-consumer) into one
  /// FusedStatelessOp. Returns nullptr when no chain of length >= 2 starts at
  /// `node`; the regular Create path then applies.
  Result<Operator*> TryFuse(const PlanNodePtr& node) {
    if (!Fusable(node.get())) return nullptr;
    std::vector<const PlanNode*> chain{node.get()};  // head-to-tail
    const PlanNode* tail = node.get();
    while (true) {
      const PlanNode* child = tail->children[0].get();
      if (!Fusable(child) || parents_[child] != 1) break;
      chain.push_back(child);
      tail = child;
    }
    if (chain.size() < 2) return nullptr;
    std::vector<FusedStatelessOp::Step> steps;
    steps.reserve(chain.size());
    // Execution order is upstream-first: tail to head.
    for (auto rit = chain.rbegin(); rit != chain.rend(); ++rit) {
      const PlanNode* n = *rit;
      TIMR_RETURN_NOT_OK(n->OutputSchema().status());
      switch (n->kind) {
        case OpKind::kSelect:
          steps.push_back(FusedStatelessOp::Step::Select(n->pred));
          break;
        case OpKind::kProject:
          steps.push_back(FusedStatelessOp::Step::Project(n->project_fn));
          break;
        default:
          steps.push_back(FusedStatelessOp::Step::Alter(n->alter));
          break;
      }
    }
    Operator* op = Register(std::make_shared<FusedStatelessOp>(std::move(steps)));
    memo_[node.get()] = op;
    TIMR_ASSIGN_OR_RETURN(Operator * upstream, Build(tail->children[0]));
    upstream->AddOutput(op->InputPort(0));
    return op;
  }

  Result<Operator*> Create(const PlanNodePtr& node) {
    // Validate schemas eagerly so errors surface at build time.
    TIMR_RETURN_NOT_OK(node->OutputSchema().status());
    switch (node->kind) {
      case OpKind::kInput: {
        auto op = std::make_shared<Executor::InputNode>();
        if (inputs_->count(node->name)) {
          return Status::Invalid("duplicate input name: " + node->name);
        }
        (*inputs_)[node->name] = op.get();
        return Register(std::move(op));
      }
      case OpKind::kSubplanInput: {
        if (subplan_entry_ != nullptr) {
          return Status::Invalid("group sub-plan has multiple input leaves");
        }
        Operator* op = Register(std::make_shared<PassthroughOp>());
        subplan_entry_ = op;
        return op;
      }
      case OpKind::kSelect:
        return Register(std::make_shared<SelectOp>(node->pred));
      case OpKind::kProject:
        return Register(std::make_shared<ProjectOp>(node->project_fn));
      case OpKind::kAlterLifetime:
        return Register(std::make_shared<AlterLifetimeOp>(node->alter));
      case OpKind::kExchange:
        // Single-node execution: an exchange is a no-op passthrough.
        return Register(std::make_shared<PassthroughOp>());
      case OpKind::kConformanceCheck:
        return Register(std::make_shared<ConformanceCheckOp>(node->name));
      case OpKind::kAggregate: {
        int value_index = -1;
        if (node->agg.kind != AggKind::kCount) {
          TIMR_ASSIGN_OR_RETURN(Schema in, node->children[0]->OutputSchema());
          TIMR_ASSIGN_OR_RETURN(value_index, in.IndexOf(node->agg.value_column));
        }
        return Register(std::make_shared<AggregateOp>(node->agg, value_index));
      }
      case OpKind::kGroupApply: {
        TIMR_ASSIGN_OR_RETURN(Schema in, node->children[0]->OutputSchema());
        TIMR_ASSIGN_OR_RETURN(std::vector<int> key_idx,
                              in.IndicesOf(node->group_keys));
        PlanNodePtr sub = node->subplan;
        SubPlanFactory factory = [sub](EventSink* output) {
          std::vector<std::shared_ptr<Operator>> ops;
          std::map<std::string, Executor::InputNode*> no_inputs;
          NetworkBuilder b(&ops, &no_inputs);
          auto root = b.Build(sub);
          TIMR_CHECK(root.ok()) << root.status().ToString();
          root.ValueOrDie()->AddOutput(output);
          TIMR_CHECK(b.subplan_entry() != nullptr)
              << "group sub-plan has no input leaf";
          return std::make_unique<SubPlanNetwork>(b.subplan_entry()->InputPort(0),
                                                  std::move(ops));
        };
        return Register(std::make_shared<GroupApplyOp>(std::move(key_idx),
                                                       std::move(factory)));
      }
      case OpKind::kUnion:
        return Register(std::make_shared<UnionOp>());
      case OpKind::kTemporalJoin: {
        TIMR_ASSIGN_OR_RETURN(Schema ls, node->children[0]->OutputSchema());
        TIMR_ASSIGN_OR_RETURN(Schema rs, node->children[1]->OutputSchema());
        TIMR_ASSIGN_OR_RETURN(std::vector<int> lk, ls.IndicesOf(node->left_keys));
        TIMR_ASSIGN_OR_RETURN(std::vector<int> rk,
                              rs.IndicesOf(node->right_keys));
        return Register(std::make_shared<TemporalJoinOp>(
            std::move(lk), std::move(rk), node->join_pred, node->join_project));
      }
      case OpKind::kAntiSemiJoin: {
        TIMR_ASSIGN_OR_RETURN(Schema ls, node->children[0]->OutputSchema());
        TIMR_ASSIGN_OR_RETURN(Schema rs, node->children[1]->OutputSchema());
        TIMR_ASSIGN_OR_RETURN(std::vector<int> lk, ls.IndicesOf(node->left_keys));
        TIMR_ASSIGN_OR_RETURN(std::vector<int> rk,
                              rs.IndicesOf(node->right_keys));
        return Register(
            std::make_shared<AntiSemiJoinOp>(std::move(lk), std::move(rk)));
      }
      case OpKind::kUdo:
        return Register(std::make_shared<HoppingUdoOp>(
            node->udo_window, node->udo_hop, node->udo_fn));
    }
    return Status::Invalid("unknown plan node kind");
  }

  Operator* Register(std::shared_ptr<Operator> op) {
    ops_->push_back(op);
    return ops_->back().get();
  }

  std::vector<std::shared_ptr<Operator>>* ops_;
  std::map<std::string, Executor::InputNode*>* inputs_;
  std::unordered_map<const PlanNode*, Operator*> memo_;
  std::unordered_map<const PlanNode*, int> parents_;
  bool counted_ = false;
  Operator* subplan_entry_ = nullptr;
};

}  // namespace

Result<std::unique_ptr<Executor>> Executor::Create(const PlanNodePtr& root) {
  auto exec = std::unique_ptr<Executor>(new Executor());
  NetworkBuilder builder(&exec->operators_, &exec->inputs_);
  TIMR_ASSIGN_OR_RETURN(exec->root_op_, builder.Build(root));
  exec->root_op_->AddOutput(&exec->collector_);
  for (const auto& [name, op] : exec->inputs_) {
    (void)op;
    exec->input_names_.push_back(name);
  }
  if (exec->inputs_.empty()) {
    return Status::Invalid("plan has no Input sources");
  }
  return exec;
}

Status Executor::PushEvent(const std::string& input, Event event) {
  auto it = inputs_.find(input);
  if (it == inputs_.end()) return Status::KeyError("no input named " + input);
  it->second->OnEvent(std::move(event));
  return Status::OK();
}

Status Executor::PushBatch(const std::string& input, EventBatch&& batch) {
  auto it = inputs_.find(input);
  if (it == inputs_.end()) return Status::KeyError("no input named " + input);
  it->second->OnBatch(std::move(batch));
  return Status::OK();
}

Status Executor::PushCti(const std::string& input, Timestamp t) {
  auto it = inputs_.find(input);
  if (it == inputs_.end()) return Status::KeyError("no input named " + input);
  it->second->OnCti(t);
  return Status::OK();
}

void Executor::PushCtiAll(Timestamp t) {
  for (auto& [name, op] : inputs_) {
    (void)name;
    op->OnCti(t);
  }
}

void Executor::Finish() { PushCtiAll(kMaxTime); }

void Executor::AddOutputSink(EventSink* sink) { root_op_->AddOutput(sink); }

uint64_t Executor::TotalEventsConsumed() const {
  uint64_t total = 0;
  for (const auto& op : operators_) total += op->events_consumed();
  return total;
}

std::vector<std::string> Executor::ConformanceViolations() const {
  std::vector<std::string> out;
  for (const auto& op : operators_) {
    if (auto* check = dynamic_cast<const ConformanceCheckOp*>(op.get())) {
      out.insert(out.end(), check->violations().begin(),
                 check->violations().end());
    }
  }
  return out;
}

Result<std::vector<Event>> Executor::Execute(
    const PlanNodePtr& root, std::map<std::string, std::vector<Event>> inputs) {
  TIMR_ASSIGN_OR_RETURN(std::unique_ptr<Executor> exec, Create(root));
  return exec->RunBatch(std::move(inputs));
}

Result<std::vector<Event>> Executor::RunBatch(
    std::map<std::string, std::vector<Event>> inputs) {
  // Global LE-order merge across sources, delivered as morsels: the merged
  // stream is cut into same-source runs of at most batch_size_ events, with
  // thinned CTI marks embedded at LE advances. When a run flushes, the other
  // sources receive one coarse OnCti at the watermark; this is sound because
  // the merge order guarantees their pending events all have LE >= the
  // flushed run's last LE. Every operator is CTI-granularity-invariant (that
  // is what makes output independent of batch_size_ in the first place), so
  // the driver only punctuates every kCtiThinning-th LE advance: with mostly
  // unique timestamps a per-advance CTI doubles graph traffic — every
  // punctuation walks every operator — for no additional output.
  static constexpr size_t kCtiThinning = 16;
  size_t advances = 0;
  struct Cursor {
    InputNode* op;
    std::vector<Event>* events;
    size_t pos = 0;
  };
  std::vector<Cursor> cursors;
  for (auto& [name, events] : inputs) {
    auto it = inputs_.find(name);
    if (it == inputs_.end()) {
      return Status::KeyError("plan has no input named " + name);
    }
    auto le_less = [](const Event& a, const Event& b) { return a.le < b.le; };
    // Reducer inputs arrive already LE-sorted from the shuffle, so the common
    // case skips the sort (and its temp-buffer allocation) entirely.
    if (!std::is_sorted(events.begin(), events.end(), le_less)) {
      std::stable_sort(events.begin(), events.end(), le_less);
    }
    cursors.push_back(Cursor{it->second, &events, 0});
  }
  Timestamp last_cti = kMinTime;
  // Single-input fast path: no merge bookkeeping, just slice the sorted
  // vector into batches. (Requires the plan to have one input too — with
  // unfed plan inputs the general loop's cross-source CTI at flush matters.)
  if (cursors.size() == 1 && inputs_.size() == 1) {
    Cursor& c = cursors[0];
    std::vector<Event>& events = *c.events;
    while (c.pos < events.size()) {
      const size_t n = std::min(batch_size_, events.size() - c.pos);
      EventBatch morsel;
      for (size_t i = 0; i < n; ++i) {
        Event ev = std::move(events[c.pos++]);
        if (ev.le > last_cti && ++advances >= kCtiThinning) {
          advances = 0;
          last_cti = ev.le;
          morsel.AddCti(last_cti);
        }
        morsel.Add(std::move(ev));
      }
      c.op->OnBatch(std::move(morsel));
    }
    Finish();
    return TakeOutput();
  }
  EventBatch batch;
  InputNode* batch_src = nullptr;
  auto flush = [&]() {
    if (batch_src == nullptr) return;
    InputNode* src = batch_src;
    batch_src = nullptr;
    src->OnBatch(std::move(batch));
    batch = EventBatch();
    for (auto& [name, op] : inputs_) {
      (void)name;
      if (op != src) op->OnCti(last_cti);
    }
  };
  while (true) {
    int pick = -1;
    for (size_t i = 0; i < cursors.size(); ++i) {
      if (cursors[i].pos >= cursors[i].events->size()) continue;
      const Timestamp le = (*cursors[i].events)[cursors[i].pos].le;
      if (pick == -1 || le < (*cursors[pick].events)[cursors[pick].pos].le) {
        pick = static_cast<int>(i);
      }
    }
    if (pick == -1) break;
    Cursor& c = cursors[pick];
    if (c.op != batch_src || batch.NumEvents() >= batch_size_) flush();
    batch_src = c.op;
    Event ev = std::move((*c.events)[c.pos++]);
    if (ev.le > last_cti && ++advances >= kCtiThinning) {
      advances = 0;
      last_cti = ev.le;
      batch.AddCti(last_cti);
    }
    batch.Add(std::move(ev));
  }
  flush();
  Finish();
  return TakeOutput();
}

}  // namespace timr::temporal
