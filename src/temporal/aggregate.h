// Snapshot aggregation (Count, Sum, Min, Max, Avg). Paper §II-A.2.
//
// An aggregate reports a value for every *snapshot* — every maximal interval
// over which the set of active events is constant — and only for snapshots
// with at least one active event (StreamInsight behaviour). Input events are
// typically windowed first with AlterLifetime, which turns "count of events in
// the last w time units" into "count of active events at every instant".

#pragma once

#include <map>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "temporal/operator.h"

namespace timr::temporal {

enum class AggKind : uint8_t { kCount, kSum, kMin, kMax, kAvg };

struct AggregateSpec {
  AggKind kind = AggKind::kCount;
  /// Column whose numeric value feeds the aggregate; ignored for kCount.
  std::string value_column;
  /// Name of the single output column.
  std::string output_name = "agg";

  static AggregateSpec Count(std::string output_name = "count") {
    return {AggKind::kCount, "", std::move(output_name)};
  }
  static AggregateSpec Sum(std::string col, std::string output_name = "sum") {
    return {AggKind::kSum, std::move(col), std::move(output_name)};
  }
  static AggregateSpec Min(std::string col, std::string output_name = "min") {
    return {AggKind::kMin, std::move(col), std::move(output_name)};
  }
  static AggregateSpec Max(std::string col, std::string output_name = "max") {
    return {AggKind::kMax, std::move(col), std::move(output_name)};
  }
  static AggregateSpec Avg(std::string col, std::string output_name = "avg") {
    return {AggKind::kAvg, std::move(col), std::move(output_name)};
  }
};

namespace internal {

/// Incrementally maintainable aggregate state supporting retraction.
class Accumulator {
 public:
  virtual ~Accumulator() = default;
  virtual void Add(double v) = 0;
  virtual void Remove(double v) = 0;
  virtual Value Current() const = 0;
  int64_t count() const { return count_; }

 protected:
  int64_t count_ = 0;
};

std::unique_ptr<Accumulator> MakeAccumulator(AggKind kind);

}  // namespace internal

/// \brief Snapshot aggregate via a boundary sweep: each event contributes a
/// +delta at LE and a -delta at RE; on CTI t, all snapshots ending at or
/// before t are final and are flushed in time order.
class AggregateOp : public UnaryOperator {
 public:
  /// `value_index` is the resolved column index, or -1 for Count.
  AggregateOp(AggregateSpec spec, int value_index)
      : spec_(spec),
        value_index_(value_index),
        acc_(internal::MakeAccumulator(spec.kind)) {}

  void OnEvent(Event event) override {
    CountConsumed();
    TIMR_DCHECK(event.le >= flushed_to_) << "event arrived below aggregate CTI";
    const double v = spec_.kind == AggKind::kCount
                         ? 1.0
                         : event.payload[value_index_].AsNumeric();
    boundaries_[event.le].push_back({v, +1});
    boundaries_[event.re].push_back({v, -1});
  }

  void OnCti(Timestamp t) override {
    // Finalize every snapshot [b_i, b_{i+1}) with b_{i+1} <= t.
    while (!boundaries_.empty() && boundaries_.begin()->first <= t) {
      const Timestamp b = boundaries_.begin()->first;
      FlushOpenSnapshot(b);
      for (const Delta& d : boundaries_.begin()->second) {
        if (d.sign > 0) {
          acc_->Add(d.value);
        } else {
          acc_->Remove(d.value);
        }
      }
      boundaries_.erase(boundaries_.begin());
      open_since_ = b;
    }
    flushed_to_ = t;
    // Future output LEs are at least the start of the still-open snapshot (if
    // any events are active) or t (if none are).
    EmitCti(acc_->count() > 0 ? open_since_ : t);
  }

 private:
  struct Delta {
    double value;
    int sign;
  };

  void FlushOpenSnapshot(Timestamp upto) {
    if (acc_->count() > 0 && upto > open_since_) {
      Emit(Event(open_since_, upto, Row{acc_->Current()}));
    }
  }

  AggregateSpec spec_;
  int value_index_;
  std::unique_ptr<internal::Accumulator> acc_;
  std::map<Timestamp, std::vector<Delta>> boundaries_;
  Timestamp open_since_ = kMinTime;
  Timestamp flushed_to_ = kMinTime;
};

}  // namespace timr::temporal
