// Snapshot aggregation (Count, Sum, Min, Max, Avg). Paper §II-A.2.
//
// An aggregate reports a value for every *snapshot* — every maximal interval
// over which the set of active events is constant — and only for snapshots
// with at least one active event (StreamInsight behaviour). Input events are
// typically windowed first with AlterLifetime, which turns "count of events in
// the last w time units" into "count of active events at every instant".

#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "temporal/operator.h"

namespace timr::temporal {

enum class AggKind : uint8_t { kCount, kSum, kMin, kMax, kAvg };

struct AggregateSpec {
  AggKind kind = AggKind::kCount;
  /// Column whose numeric value feeds the aggregate; ignored for kCount.
  std::string value_column;
  /// Name of the single output column.
  std::string output_name = "agg";

  static AggregateSpec Count(std::string output_name = "count") {
    return {AggKind::kCount, "", std::move(output_name)};
  }
  static AggregateSpec Sum(std::string col, std::string output_name = "sum") {
    return {AggKind::kSum, std::move(col), std::move(output_name)};
  }
  static AggregateSpec Min(std::string col, std::string output_name = "min") {
    return {AggKind::kMin, std::move(col), std::move(output_name)};
  }
  static AggregateSpec Max(std::string col, std::string output_name = "max") {
    return {AggKind::kMax, std::move(col), std::move(output_name)};
  }
  static AggregateSpec Avg(std::string col, std::string output_name = "avg") {
    return {AggKind::kAvg, std::move(col), std::move(output_name)};
  }
};

namespace internal {

/// Incrementally maintainable aggregate state supporting retraction.
class Accumulator {
 public:
  virtual ~Accumulator() = default;
  virtual void Add(double v) = 0;
  virtual void Remove(double v) = 0;
  virtual Value Current() const = 0;
  int64_t count() const { return count_; }

  /// Apply a pre-merged boundary delta (net count change `dn`, net value-sum
  /// change `dsum`). Only scalar accumulators (Count/Sum/Avg) support this;
  /// Min/Max need individual retractions.
  virtual void ApplyDelta(int64_t dn, double dsum) {
    (void)dn;
    (void)dsum;
    TIMR_CHECK(false) << "ApplyDelta on a non-scalar accumulator";
  }

 protected:
  int64_t count_ = 0;
};

/// Whether `kind`'s accumulator state is a pure (count, sum) pair, letting
/// boundary deltas merge into one entry per timestamp.
inline bool ScalarAggregate(AggKind kind) {
  return kind == AggKind::kCount || kind == AggKind::kSum ||
         kind == AggKind::kAvg;
}

std::unique_ptr<Accumulator> MakeAccumulator(AggKind kind);

}  // namespace internal

/// \brief Snapshot aggregate via a boundary sweep: each event contributes a
/// +delta at LE and a -delta at RE; on CTI t, all snapshots ending at or
/// before t are final and are flushed in time order.
class AggregateOp : public UnaryOperator {
 public:
  /// `value_index` is the resolved column index, or -1 for Count.
  AggregateOp(AggregateSpec spec, int value_index)
      : spec_(spec),
        value_index_(value_index),
        acc_(internal::MakeAccumulator(spec.kind)) {}

  void OnEvent(Event event) override {
    CountConsumed();
    TIMR_DCHECK(event.le >= flushed_to_) << "event arrived below aggregate CTI";
    const double v = spec_.kind == AggKind::kCount
                         ? 1.0
                         : event.payload[value_index_].AsNumeric();
    AddBoundaries(event.le, event.re, v);
  }

  void OnCti(Timestamp t) override {
    // Finalize every snapshot [b_i, b_{i+1}) with b_{i+1} <= t.
    if (internal::ScalarAggregate(spec_.kind)) {
      size_t i = nb_head_;
      const size_t n = num_boundaries_.size();
      while (i < n && num_boundaries_[i].t <= t) {
        const NumBound& nb = num_boundaries_[i];
        FlushOpenSnapshot(nb.t);
        acc_->ApplyDelta(nb.d.dcount, nb.d.dsum);
        open_since_ = nb.t;
        ++i;
      }
      nb_head_ = i;
      // Reclaim the flushed prefix once it dominates the buffer.
      if (nb_head_ > 64 && nb_head_ * 2 > num_boundaries_.size()) {
        num_boundaries_.erase(num_boundaries_.begin(),
                              num_boundaries_.begin() +
                                  static_cast<ptrdiff_t>(nb_head_));
        nb_head_ = 0;
      }
    } else {
      while (!boundaries_.empty() && boundaries_.begin()->first <= t) {
        const Timestamp b = boundaries_.begin()->first;
        FlushOpenSnapshot(b);
        for (const Delta& d : boundaries_.begin()->second) {
          if (d.sign > 0) {
            acc_->Add(d.value);
          } else {
            acc_->Remove(d.value);
          }
        }
        boundaries_.erase(boundaries_.begin());
        open_since_ = b;
      }
    }
    flushed_to_ = t;
    // Future output LEs are at least the start of the still-open snapshot (if
    // any events are active) or t (if none are).
    EmitCti(acc_->count() > 0 ? open_since_ : t);
  }

  void OnBatch(EventBatch&& batch) override {
    // Columnar kernel: read le/re and the value column directly, one
    // AddBoundaries call per row, CTI marks handled in stream order. A string
    // value column (AsNumeric would reject it anyway) falls back to rows.
    if (batch.columnar() &&
        (spec_.kind == AggKind::kCount ||
         batch.columnar_payload().col(value_index_).type !=
             ValueType::kString)) {
      const ColumnarPayload& p = batch.columnar_payload();
      const bool count_only = spec_.kind == AggKind::kCount;
      const Column* vc = count_only ? nullptr : &p.col(value_index_);
      const Timestamp* le = p.le().data();
      const Timestamp* re = p.re().data();
      const auto& marks = batch.ctis();
      const size_t n = p.num_rows();
      size_t m = 0;
      for (size_t i = 0; i < n; ++i) {
        for (; m < marks.size() && marks[m].pos <= i; ++m) OnCti(marks[m].t);
        CountConsumed();
        TIMR_DCHECK(le[i] >= flushed_to_) << "event arrived below aggregate CTI";
        const double v =
            count_only ? 1.0
                       : (vc->type == ValueType::kInt64
                              ? static_cast<double>(vc->i64[i])
                              : vc->f64[i]);
        AddBoundaries(le[i], re[i], v);
      }
      for (; m < marks.size(); ++m) OnCti(marks[m].t);
      batch.Clear();
      return;
    }
    batch.EnsureRows();
    // Row path in bulk: same per-event calls without per-item virtual hops.
    auto& events = batch.events();
    const auto& marks = batch.ctis();
    size_t m = 0;
    for (size_t i = 0; i < events.size(); ++i) {
      for (; m < marks.size() && marks[m].pos <= i; ++m) OnCti(marks[m].t);
      OnEvent(std::move(events[i]));
    }
    for (; m < marks.size(); ++m) OnCti(marks[m].t);
    batch.Clear();
  }

 private:
  struct Delta {
    double value;
    int sign;
  };
  /// Net boundary change for scalar aggregates: one entry per timestamp,
  /// merged in stream arrival order (deterministic for any batching).
  struct NumDelta {
    int64_t dcount = 0;
    double dsum = 0;
  };

  void AddBoundaries(Timestamp le, Timestamp re, double v) {
    if (internal::ScalarAggregate(spec_.kind)) {
      AddNumBoundary(le, +1, v);
      AddNumBoundary(re, -1, -v);
    } else {
      boundaries_[le].push_back({v, +1});
      boundaries_[re].push_back({v, -1});
    }
  }

  void AddNumBoundary(Timestamp t, int64_t dcount, double dsum) {
    // LE arrives non-decreasing and RE trails a window width behind the
    // stream head, so new boundaries land at or near the back of the pending
    // range — binary-search there instead of paying a tree node per entry.
    auto first = num_boundaries_.begin() + static_cast<ptrdiff_t>(nb_head_);
    auto it = std::lower_bound(
        first, num_boundaries_.end(), t,
        [](const NumBound& nb, Timestamp ts) { return nb.t < ts; });
    if (it != num_boundaries_.end() && it->t == t) {
      it->d.dcount += dcount;
      it->d.dsum += dsum;
      return;
    }
    num_boundaries_.insert(it, NumBound{t, {dcount, dsum}});
  }

  void FlushOpenSnapshot(Timestamp upto) {
    if (acc_->count() > 0 && upto > open_since_) {
      Emit(Event(open_since_, upto, Row{acc_->Current()}));
    }
  }

  AggregateSpec spec_;
  int value_index_;
  std::unique_ptr<internal::Accumulator> acc_;
  struct NumBound {
    Timestamp t;
    NumDelta d;
  };

  std::map<Timestamp, std::vector<Delta>> boundaries_;  // Min/Max
  /// Count/Sum/Avg: time-ordered flat deltas; [0, nb_head_) is flushed.
  std::vector<NumBound> num_boundaries_;
  size_t nb_head_ = 0;
  Timestamp open_since_ = kMinTime;
  Timestamp flushed_to_ = kMinTime;
};

}  // namespace timr::temporal
