// Multiplexing tee: fans one punctuated stream out to several consumers.
//
// NetworkBuilder splices a TeeOp behind any operator with more than one
// consumer (multi-parent plan nodes, including parents reached through elided
// kExchange aliases). Batches are shared via EventBatch::View — every port
// receives a copy-on-write view over one underlying batch, so a read-mostly
// fan-out (collector sinks, synopsis builders that only materialize) never
// deep-copies the columnar payload; a consumer that mutates localizes its own
// view and the last localizer steals the storage outright.
//
// Punctuation is tracked per port: each port carries its own CTI floor, so a
// consumer's punctuation stream stays independently monotone no matter how
// the fan-out interleaves with per-event delivery. The tee does NOT re-filter
// a batch's CTI marks per port — the producer's EmitBatch already removed
// stale marks against its single emitted-CTI cursor, and every port sees the
// same one stream, so per-port filtering would be a provable no-op that only
// forced views to localize.
//
// The tee deliberately performs no CountConsumed bookkeeping: it is pure
// plumbing, invisible to Executor::TotalEventsConsumed().

#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "temporal/event.h"
#include "temporal/operator.h"
#include "temporal/time.h"

namespace timr::temporal {

class TeeOp final : public UnaryOperator {
 public:
  void AddPort(EventSink* sink) {
    TIMR_DCHECK(sink != nullptr);
    ports_.push_back(Port{sink, kMinTime});
  }

  size_t num_ports() const { return ports_.size(); }

  void OnEvent(Event event) override {
    if (ports_.empty()) return;
    for (size_t i = 0; i + 1 < ports_.size(); ++i) {
      ports_[i].sink->OnEvent(event);
    }
    ports_.back().sink->OnEvent(std::move(event));
  }

  void OnCti(Timestamp t) override {
    for (Port& p : ports_) {
      if (t <= p.cti) continue;
      p.cti = t;
      p.sink->OnCti(t);
    }
  }

  void OnBatch(EventBatch&& batch) override {
    if (ports_.empty()) return;
    const Timestamp final_cti =
        batch.ctis().empty() ? kMinTime : batch.ctis().back().t;
    if (ports_.size() == 1) {
      Port& p = ports_.front();
      if (final_cti > p.cti) p.cti = final_cti;
      p.sink->OnBatch(std::move(batch));
      return;
    }
    auto shared = std::make_shared<EventBatch>(std::move(batch));
    for (size_t i = 0; i < ports_.size(); ++i) {
      Port& p = ports_[i];
      EventBatch view = (i + 1 == ports_.size())
                            ? EventBatch::View(std::move(shared))
                            : EventBatch::View(shared);
      if (final_cti > p.cti) p.cti = final_cti;
      p.sink->OnBatch(std::move(view));
    }
  }

 private:
  struct Port {
    EventSink* sink;
    Timestamp cti;  // per-consumer punctuation floor (strictly advancing)
  };

  std::vector<Port> ports_;
};

}  // namespace timr::temporal
