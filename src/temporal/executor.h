// Single-node plan execution: instantiates a CQ plan as a network of physical
// operators and drives it with punctuated event streams. This is the engine
// TiMR embeds inside map-reduce reducers (paper §III-A step 4) and the engine
// a "real-time" deployment would run directly.

#pragma once

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "temporal/operator.h"
#include "temporal/plan.h"

namespace timr::temporal {

/// \brief Build-time columnar ingest decisions for one plan DAG.
///
/// Computed by PlanColumnarIngest and consumed by two clients that must never
/// disagree: the executor's network builder (which configures each source's
/// ingest mode from it) and the static analysis layer (which predicts which
/// fragments run vectorized vs. hit the EnsureRows row fallback). Keeping the
/// rules in one function is what makes the analysis's prediction exact rather
/// than a parallel reimplementation that can drift.
struct ColumnarIngestDecisions {
  /// Whether the physical operator for each node consumes columnar batches
  /// natively (does useful vectorized work before — or without —
  /// materializing rows). Pass-throughs (Exchange, ConformanceCheck) inherit
  /// the AND of their consumers' entries.
  std::unordered_map<const PlanNode*, bool> consumes_columnar;
  /// For kInput nodes only: whether RunBatch will build columnar morsels for
  /// the source. True iff every direct consumer consumes columnar (all, not
  /// any: a multicast clones the morsel per consumer, and one row-bound
  /// consumer re-materializing its clone costs more than the rest save).
  std::unordered_map<const PlanNode*, bool> ingest_columnar;
};

/// Decide columnar ingest for every node reachable from `root` via child
/// edges. Group sub-plans are not entered: their networks are built per group
/// instance and have no kInput sources of their own.
ColumnarIngestDecisions PlanColumnarIngest(const PlanNodePtr& root);

/// \brief A running instance of a CQ plan.
///
/// Two usage modes, identical semantics (that is the point of the temporal
/// algebra):
///  - Offline: Execute() replays sorted event collections and returns the
///    full output (used inside TiMR reducers and tests).
///  - Incremental: PushEvent/PushCti/Finish feed a live stream; output is
///    delivered to the collector (poll TakeOutput) or a callback sink.
class Executor {
 public:
  /// Builds the network. `root`'s output feeds the internal collector.
  static Result<std::unique_ptr<Executor>> Create(const PlanNodePtr& root);

  /// One-shot: run `root` over the given per-source event collections
  /// (sorted internally) and return all output events.
  static Result<std::vector<Event>> Execute(
      const PlanNodePtr& root, std::map<std::string, std::vector<Event>> inputs);

  /// Instance form of Execute: replay `inputs` through this (fresh) executor.
  /// Leaves the executor finished; engine statistics remain queryable.
  Result<std::vector<Event>> RunBatch(
      std::map<std::string, std::vector<Event>> inputs);

  /// Push one event into the named source. Events per source must arrive in
  /// non-decreasing LE order.
  Status PushEvent(const std::string& input, Event event);

  /// Push a morsel (events + interleaved CTI marks) into the named source.
  /// Equivalent to the per-item Push calls the batch expands to, but crosses
  /// the operator network in O(1) virtual calls per operator.
  Status PushBatch(const std::string& input, EventBatch&& batch);

  /// Advance the named source's CTI.
  Status PushCti(const std::string& input, Timestamp t);

  /// Advance every source's CTI (valid when the caller interleaves sources in
  /// global LE order, as the offline driver does).
  void PushCtiAll(Timestamp t);

  /// Signal end-of-stream on all sources, flushing all state.
  void Finish();

  /// Drain events collected so far.
  std::vector<Event> TakeOutput() { return collector_.TakeEvents(); }

  /// Also deliver output to `sink` as it is produced (live mode).
  void AddOutputSink(EventSink* sink);

  /// Total events processed across all operators — the paper's Figure 15
  /// throughput metric counts engine events, not just source rows.
  uint64_t TotalEventsConsumed() const;

  /// Violations recorded by ConformanceCheck operators in the plan (empty when
  /// the plan is not instrumented or the streams conformed). Each entry names
  /// the checked edge; see temporal/conformance.h.
  std::vector<std::string> ConformanceViolations() const;

  const std::vector<std::string>& input_names() const { return input_names_; }

  /// The build-time columnar ingest decision for the named source — the
  /// runtime half of the columnar-eligibility analysis (tests assert the
  /// analysis's prediction equals this observed mode for every plan).
  Result<bool> InputPrefersColumnar(const std::string& input) const;

  /// Morsel size used by RunBatch when cutting the merged input stream into
  /// EventBatches. Output is bit-identical for any size >= 1 (see RunBatch);
  /// the knob exists for benchmarks and the batch-invariance tests.
  void set_batch_size(size_t n) { batch_size_ = n == 0 ? 1 : n; }
  size_t batch_size() const { return batch_size_; }

  /// Whether RunBatch builds columnar morsels for inputs whose consumers have
  /// columnar kernels (determined by static plan analysis at build time).
  /// Output is bit-identical either way; the knob exists for benchmarks and
  /// the columnar-invariance tests.
  void set_columnar(bool on) { columnar_enabled_ = on; }
  bool columnar_enabled() const { return columnar_enabled_; }

  /// Punctuation thinning: RunBatch emits one CTI per `n` LE advances of the
  /// merged input stream. Output is identical at any setting >= 1 (operators
  /// are CTI-granularity-invariant); higher values trade punctuation traffic
  /// against operator state held longer.
  void set_cti_thinning(size_t n) { cti_thinning_ = n == 0 ? 1 : n; }
  size_t cti_thinning() const { return cti_thinning_; }

  /// Caller guarantee that every RunBatch input vector is already LE-sorted,
  /// letting the driver skip its per-input is_sorted scan. TiMR reducers set
  /// this: the shuffle contract (mr/stage.h) delivers each partition's input
  /// in canonical LE order. Debug builds still verify the guarantee.
  void set_assume_sorted_inputs(bool on) { assume_sorted_inputs_ = on; }
  bool assume_sorted_inputs() const { return assume_sorted_inputs_; }

  static constexpr size_t kDefaultBatchSize = 1024;
  static constexpr size_t kDefaultCtiThinning = 16;

  class InputNode;

 private:
  Executor() = default;

  std::vector<std::shared_ptr<Operator>> operators_;
  std::map<std::string, InputNode*> inputs_;
  std::vector<std::string> input_names_;
  Operator* root_op_ = nullptr;
  CollectorSink collector_;
  size_t batch_size_ = kDefaultBatchSize;
  size_t cti_thinning_ = kDefaultCtiThinning;
  bool columnar_enabled_ = true;
  bool assume_sorted_inputs_ = false;
};

}  // namespace timr::temporal
