// Single-node plan execution: instantiates a CQ plan as a network of physical
// operators and drives it with punctuated event streams. This is the engine
// TiMR embeds inside map-reduce reducers (paper §III-A step 4) and the engine
// a "real-time" deployment would run directly.

#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "temporal/operator.h"
#include "temporal/plan.h"

namespace timr::temporal {

/// \brief A running instance of a CQ plan.
///
/// Two usage modes, identical semantics (that is the point of the temporal
/// algebra):
///  - Offline: Execute() replays sorted event collections and returns the
///    full output (used inside TiMR reducers and tests).
///  - Incremental: PushEvent/PushCti/Finish feed a live stream; output is
///    delivered to the collector (poll TakeOutput) or a callback sink.
class Executor {
 public:
  /// Builds the network. `root`'s output feeds the internal collector.
  static Result<std::unique_ptr<Executor>> Create(const PlanNodePtr& root);

  /// One-shot: run `root` over the given per-source event collections
  /// (sorted internally) and return all output events.
  static Result<std::vector<Event>> Execute(
      const PlanNodePtr& root, std::map<std::string, std::vector<Event>> inputs);

  /// Instance form of Execute: replay `inputs` through this (fresh) executor.
  /// Leaves the executor finished; engine statistics remain queryable.
  Result<std::vector<Event>> RunBatch(
      std::map<std::string, std::vector<Event>> inputs);

  /// Push one event into the named source. Events per source must arrive in
  /// non-decreasing LE order.
  Status PushEvent(const std::string& input, Event event);

  /// Advance the named source's CTI.
  Status PushCti(const std::string& input, Timestamp t);

  /// Advance every source's CTI (valid when the caller interleaves sources in
  /// global LE order, as the offline driver does).
  void PushCtiAll(Timestamp t);

  /// Signal end-of-stream on all sources, flushing all state.
  void Finish();

  /// Drain events collected so far.
  std::vector<Event> TakeOutput() { return collector_.TakeEvents(); }

  /// Also deliver output to `sink` as it is produced (live mode).
  void AddOutputSink(EventSink* sink);

  /// Total events processed across all operators — the paper's Figure 15
  /// throughput metric counts engine events, not just source rows.
  uint64_t TotalEventsConsumed() const;

  /// Violations recorded by ConformanceCheck operators in the plan (empty when
  /// the plan is not instrumented or the streams conformed). Each entry names
  /// the checked edge; see temporal/conformance.h.
  std::vector<std::string> ConformanceViolations() const;

  const std::vector<std::string>& input_names() const { return input_names_; }

  class InputNode;

 private:
  Executor() = default;

  std::vector<std::shared_ptr<Operator>> operators_;
  std::map<std::string, InputNode*> inputs_;
  std::vector<std::string> input_names_;
  Operator* root_op_ = nullptr;
  CollectorSink collector_;
};

}  // namespace timr::temporal
