// Single-node plan execution: instantiates a CQ plan as a network of physical
// operators and drives it with punctuated event streams. This is the engine
// TiMR embeds inside map-reduce reducers (paper §III-A step 4) and the engine
// a "real-time" deployment would run directly.

#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "temporal/operator.h"
#include "temporal/plan.h"

namespace timr::temporal {

/// \brief A running instance of a CQ plan.
///
/// Two usage modes, identical semantics (that is the point of the temporal
/// algebra):
///  - Offline: Execute() replays sorted event collections and returns the
///    full output (used inside TiMR reducers and tests).
///  - Incremental: PushEvent/PushCti/Finish feed a live stream; output is
///    delivered to the collector (poll TakeOutput) or a callback sink.
class Executor {
 public:
  /// Builds the network. `root`'s output feeds the internal collector.
  static Result<std::unique_ptr<Executor>> Create(const PlanNodePtr& root);

  /// One-shot: run `root` over the given per-source event collections
  /// (sorted internally) and return all output events.
  static Result<std::vector<Event>> Execute(
      const PlanNodePtr& root, std::map<std::string, std::vector<Event>> inputs);

  /// Instance form of Execute: replay `inputs` through this (fresh) executor.
  /// Leaves the executor finished; engine statistics remain queryable.
  Result<std::vector<Event>> RunBatch(
      std::map<std::string, std::vector<Event>> inputs);

  /// Push one event into the named source. Events per source must arrive in
  /// non-decreasing LE order.
  Status PushEvent(const std::string& input, Event event);

  /// Push a morsel (events + interleaved CTI marks) into the named source.
  /// Equivalent to the per-item Push calls the batch expands to, but crosses
  /// the operator network in O(1) virtual calls per operator.
  Status PushBatch(const std::string& input, EventBatch&& batch);

  /// Advance the named source's CTI.
  Status PushCti(const std::string& input, Timestamp t);

  /// Advance every source's CTI (valid when the caller interleaves sources in
  /// global LE order, as the offline driver does).
  void PushCtiAll(Timestamp t);

  /// Signal end-of-stream on all sources, flushing all state.
  void Finish();

  /// Drain events collected so far.
  std::vector<Event> TakeOutput() { return collector_.TakeEvents(); }

  /// Also deliver output to `sink` as it is produced (live mode).
  void AddOutputSink(EventSink* sink);

  /// Total events processed across all operators — the paper's Figure 15
  /// throughput metric counts engine events, not just source rows.
  uint64_t TotalEventsConsumed() const;

  /// Violations recorded by ConformanceCheck operators in the plan (empty when
  /// the plan is not instrumented or the streams conformed). Each entry names
  /// the checked edge; see temporal/conformance.h.
  std::vector<std::string> ConformanceViolations() const;

  const std::vector<std::string>& input_names() const { return input_names_; }

  /// Morsel size used by RunBatch when cutting the merged input stream into
  /// EventBatches. Output is bit-identical for any size >= 1 (see RunBatch);
  /// the knob exists for benchmarks and the batch-invariance tests.
  void set_batch_size(size_t n) { batch_size_ = n == 0 ? 1 : n; }
  size_t batch_size() const { return batch_size_; }

  /// Whether RunBatch builds columnar morsels for inputs whose consumers have
  /// columnar kernels (determined by static plan analysis at build time).
  /// Output is bit-identical either way; the knob exists for benchmarks and
  /// the columnar-invariance tests.
  void set_columnar(bool on) { columnar_enabled_ = on; }
  bool columnar_enabled() const { return columnar_enabled_; }

  /// Punctuation thinning: RunBatch emits one CTI per `n` LE advances of the
  /// merged input stream. Output is identical at any setting >= 1 (operators
  /// are CTI-granularity-invariant); higher values trade punctuation traffic
  /// against operator state held longer.
  void set_cti_thinning(size_t n) { cti_thinning_ = n == 0 ? 1 : n; }
  size_t cti_thinning() const { return cti_thinning_; }

  static constexpr size_t kDefaultBatchSize = 1024;
  static constexpr size_t kDefaultCtiThinning = 16;

  class InputNode;

 private:
  Executor() = default;

  std::vector<std::shared_ptr<Operator>> operators_;
  std::map<std::string, InputNode*> inputs_;
  std::vector<std::string> input_names_;
  Operator* root_op_ = nullptr;
  CollectorSink collector_;
  size_t batch_size_ = kDefaultBatchSize;
  size_t cti_thinning_ = kDefaultCtiThinning;
  bool columnar_enabled_ = true;
};

}  // namespace timr::temporal
