// Events: the unit of data flowing through the temporal engine.

#pragma once

#include <string>
#include <vector>

#include "common/logging.h"
#include "common/row.h"
#include "temporal/time.h"

namespace timr::temporal {

/// \brief A payload with a half-open validity interval [le, re).
///
/// `le` is the application-specified occurrence time; `re - le` is the period
/// over which the event influences downstream computation (paper §II-A.1). A
/// point event has re == le + kTick.
struct Event {
  Timestamp le = 0;
  Timestamp re = kTick;
  Row payload;

  Event() = default;
  Event(Timestamp le_in, Timestamp re_in, Row payload_in)
      : le(le_in), re(re_in), payload(std::move(payload_in)) {
    TIMR_DCHECK(re > le);
  }

  static Event Point(Timestamp t, Row payload_in) {
    return Event(t, t + kTick, std::move(payload_in));
  }

  bool IsPoint() const { return re == le + kTick; }

  bool Contains(Timestamp t) const { return le <= t && t < re; }

  bool Intersects(const Event& other) const {
    return le < other.re && other.le < re;
  }

  std::string ToString() const {
    return "[" + std::to_string(le) + "," +
           (re >= kMaxTime ? std::string("inf") : std::to_string(re)) + ") " +
           RowToString(payload);
  }
};

/// Sort events by (le, re) then payload, for canonical comparisons in tests.
void SortEventsCanonical(std::vector<Event>* events);

/// True if the two event multisets describe the same temporal relation after
/// canonical sorting. Used by tests to compare plan outputs produced by
/// different execution strategies (single-node vs TiMR vs custom reducers).
bool SameTemporalRelation(std::vector<Event> a, std::vector<Event> b);

}  // namespace timr::temporal
