// Events: the unit of data flowing through the temporal engine.

#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/row.h"
#include "temporal/columnar.h"
#include "temporal/time.h"

namespace timr::temporal {

/// \brief A payload with a half-open validity interval [le, re).
///
/// `le` is the application-specified occurrence time; `re - le` is the period
/// over which the event influences downstream computation (paper §II-A.1). A
/// point event has re == le + kTick.
struct Event {
  Timestamp le = 0;
  Timestamp re = kTick;
  Row payload;

  Event() = default;
  Event(Timestamp le_in, Timestamp re_in, Row payload_in)
      : le(le_in), re(re_in), payload(std::move(payload_in)) {
    TIMR_DCHECK(re > le);
  }

  static Event Point(Timestamp t, Row payload_in) {
    return Event(t, t + kTick, std::move(payload_in));
  }

  bool IsPoint() const { return re == le + kTick; }

  bool Contains(Timestamp t) const { return le <= t && t < re; }

  bool Intersects(const Event& other) const {
    return le < other.re && other.le < re;
  }

  std::string ToString() const {
    return "[" + std::to_string(le) + "," +
           (re >= kMaxTime ? std::string("inf") : std::to_string(re)) + ") " +
           RowToString(payload);
  }
};

/// \brief A morsel of the punctuated stream: events in non-decreasing LE
/// order with CTI punctuations interleaved as positional marks (a mark at
/// `pos` fires before the event at that index; `pos == events().size()` is a
/// trailing mark). Semantically an EventBatch is *exactly* the per-event call
/// sequence it expands to — EventSink::OnBatch's default implementation
/// replays it through OnEvent/OnCti — so batching is purely an amortization
/// of dispatch, never a semantics change.
///
/// Batch storage is pooled per thread: destroying a batch returns its vectors
/// to a small freelist the next default-constructed batch reuses, so a
/// steady-state pipeline performs O(1) allocations per batch, not O(events).
///
/// A batch holds its events in exactly one of two representations:
///  - row mode (the default): a vector<Event> of materialized rows;
///  - columnar mode: a ColumnarPayload of per-field vectors with le/re as
///    their own columns, entered via BeginColumnar()/TryAppendColumnar().
/// CTI marks are positional in both modes. EnsureRows() converts columnar →
/// rows in place; it is called automatically by Drain(), so every per-event
/// consumer (UDOs, operators without columnar kernels) works unchanged.
class EventBatch {
 public:
  struct CtiMark {
    size_t pos;
    Timestamp t;
  };

  EventBatch();   // acquires pooled storage when available
  ~EventBatch();  // returns storage to the pool

  EventBatch(EventBatch&&) noexcept = default;
  EventBatch& operator=(EventBatch&&) noexcept = default;
  EventBatch(const EventBatch&) = delete;
  EventBatch& operator=(const EventBatch&) = delete;

  /// Deep copy (used by multicast fan-out; the last sink gets the original).
  EventBatch Clone() const;

  /// \brief A copy-on-write view over `src` (shared, not deep-copied).
  ///
  /// The multiplexing tee hands the same underlying batch — including its
  /// columnar payload — to every consumer as a view. Const readers see the
  /// shared storage; the first mutation localizes the view via EnsureOwned()
  /// (stealing the storage outright when this is the last live reference, so
  /// a read-only fan-out plus one mutating consumer costs zero copies).
  /// Nested views collapse: a view of a view shares the original storage.
  static EventBatch View(std::shared_ptr<EventBatch> src) {
    EventBatch v;
    v.view_of_ = src->view_of_ ? src->view_of_ : std::move(src);
    return v;
  }

  bool is_view() const { return view_of_ != nullptr; }

  /// Detach from shared storage: steal it if uniquely referenced, deep-copy
  /// otherwise. No-op on an owning batch; every mutator calls this first.
  void EnsureOwned() {
    if (view_of_) Localize();
  }

  void Add(Event event) {
    EnsureOwned();
    TIMR_DCHECK(!columnar_);
    events_.push_back(std::move(event));
  }

  /// Record CTI(t) before the next added event. Consecutive marks at the same
  /// position coalesce to the largest t (the earlier ones would be stale).
  void AddCti(Timestamp t) {
    EnsureOwned();
    if (!ctis_.empty() && ctis_.back().pos == NumEvents()) {
      if (t > ctis_.back().t) ctis_.back().t = t;
      return;
    }
    ctis_.push_back({NumEvents(), t});
  }

  bool Empty() const { return NumEvents() == 0 && r().ctis_.empty(); }
  size_t NumEvents() const {
    const EventBatch& s = r();
    return s.columnar_ ? s.payload_.num_rows() : s.events_.size();
  }
  void Clear() {
    view_of_.reset();  // dropping the reference is the whole clear for a view
    events_.clear();
    ctis_.clear();
    if (columnar_) {
      payload_.ClearAll();
      columnar_ = false;
    }
  }

  // --- Columnar mode -------------------------------------------------------

  /// Switch this (empty) batch into columnar mode with the given payload
  /// schema. Subsequent events are appended with TryAppendColumnar.
  void BeginColumnar(const Schema& payload_schema) {
    TIMR_DCHECK(Empty());
    view_of_.reset();  // an empty view owns nothing worth keeping
    payload_.Begin(payload_schema);
    columnar_ = true;
  }

  /// Append one event to the columnar payload; returns false (batch
  /// unchanged) if the row's dynamic types do not match the column types, in
  /// which case the producer must EnsureRows() and fall back to Add().
  bool TryAppendColumnar(Timestamp le, Timestamp re, const Row& payload) {
    TIMR_DCHECK(columnar_);
    return payload_.TryAppend(le, re, payload);
  }

  bool columnar() const { return r().columnar_; }
  ColumnarPayload& columnar_payload() {
    EnsureOwned();
    return payload_;
  }
  const ColumnarPayload& columnar_payload() const { return r().payload_; }

  /// Apply a pending selection in the columnar payload, remapping CTI marks.
  void CompactColumnar() {
    EnsureOwned();
    TIMR_DCHECK(columnar_);
    payload_.Compact(&ctis_);
  }

  /// Convert columnar → row representation in place (no-op in row mode).
  /// This is the universal fallback for consumers without columnar kernels.
  void EnsureRows();

  /// LE of event `i` in either representation.
  Timestamp LeAt(size_t i) const {
    const EventBatch& s = r();
    return s.columnar_ ? s.payload_.le()[i] : s.events_[i].le;
  }

  /// LE of the last event (batch must be non-empty).
  Timestamp LastLe() const {
    const EventBatch& s = r();
    return s.columnar_ ? s.payload_.le().back() : s.events_.back().le;
  }

  std::vector<Event>& events() {
    EnsureOwned();
    return events_;
  }
  const std::vector<Event>& events() const { return r().events_; }
  std::vector<CtiMark>& mutable_ctis() {
    EnsureOwned();
    return ctis_;
  }
  const std::vector<CtiMark>& ctis() const { return r().ctis_; }

  /// Replay the batch in stream order, moving events out; leaves the batch
  /// empty. This is the per-event fallback path (columnar batches are
  /// materialized first).
  template <class EventFn, class CtiFn>
  void Drain(EventFn&& on_event, CtiFn&& on_cti) {
    EnsureRows();
    size_t m = 0;
    for (size_t i = 0; i < events_.size(); ++i) {
      for (; m < ctis_.size() && ctis_[m].pos <= i; ++m) on_cti(ctis_[m].t);
      on_event(std::move(events_[i]));
    }
    for (; m < ctis_.size(); ++m) on_cti(ctis_[m].t);
    Clear();
  }

  /// In-place filtered rewrite: `fn(Event&)` may mutate the event and returns
  /// whether to keep it; CTI marks are remapped to the compacted positions.
  /// The single pass batched stateless operators are built on.
  template <class Fn>
  void FilterEvents(Fn&& fn) {
    EnsureOwned();
    TIMR_DCHECK(!columnar_) << "FilterEvents on a columnar batch";
    size_t w = 0;
    size_t m = 0;
    for (size_t r = 0; r < events_.size(); ++r) {
      for (; m < ctis_.size() && ctis_[m].pos <= r; ++m) ctis_[m].pos = w;
      if (fn(events_[r])) {
        if (w != r) events_[w] = std::move(events_[r]);
        ++w;
      }
    }
    for (; m < ctis_.size(); ++m) ctis_[m].pos = w;
    events_.resize(w);
  }

  /// Map every CTI mark's timestamp through `fn` (must be monotone, as every
  /// AlterLifetime CTI transform is).
  template <class Fn>
  void TransformCtis(Fn&& fn) {
    EnsureOwned();
    for (CtiMark& mark : ctis_) mark.t = fn(mark.t);
  }

  /// Drop marks that do not advance past `*running_cti` (per-event EmitCti
  /// drops such stale punctuations too); `*running_cti` ends at the batch's
  /// final CTI. Returns nothing; marks end up strictly increasing.
  void RemoveStaleCtis(Timestamp* running_cti) {
    EnsureOwned();
    size_t w = 0;
    for (const CtiMark& mark : ctis_) {
      if (mark.t <= *running_cti) continue;
      *running_cti = mark.t;
      ctis_[w++] = mark;
    }
    ctis_.resize(w);
  }

 private:
  /// The batch to read from: the shared source for a view, *this otherwise.
  const EventBatch& r() const { return view_of_ ? *view_of_ : *this; }

  /// Out-of-line slow path of EnsureOwned (view_of_ is non-null on entry).
  void Localize();

  std::vector<Event> events_;
  std::vector<CtiMark> ctis_;
  ColumnarPayload payload_;
  bool columnar_ = false;
  /// Non-null iff this batch is a copy-on-write view (see View()). Mutually
  /// exclusive with own content: a view's own vectors stay empty until
  /// Localize() fills them.
  std::shared_ptr<EventBatch> view_of_;
};

/// Sort events by (le, re) then payload, for canonical comparisons in tests.
void SortEventsCanonical(std::vector<Event>* events);

/// True if the two event multisets describe the same temporal relation after
/// canonical sorting. Used by tests to compare plan outputs produced by
/// different execution strategies (single-node vs TiMR vs custom reducers).
bool SameTemporalRelation(std::vector<Event> a, std::vector<Event> b);

}  // namespace timr::temporal
