// GroupApply: apply a query sub-plan to every sub-stream of a grouping key.
// Paper §II-A.2 / Figure 4.

#pragma once

#include <algorithm>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "temporal/operator.h"

namespace timr::temporal {

/// \brief An instantiated sub-plan network: the executor builds one per group.
/// Owns the operators; exposes the entry sink. Output is wired at build time
/// to a sink supplied by GroupApplyOp.
class SubPlanNetwork {
 public:
  SubPlanNetwork(EventSink* input, std::vector<std::shared_ptr<Operator>> ops)
      : input_(input), ops_(std::move(ops)) {}

  EventSink* input() const { return input_; }

 private:
  EventSink* input_;
  std::vector<std::shared_ptr<Operator>> ops_;
};

/// Builds a fresh sub-plan instance whose final output feeds `output`.
using SubPlanFactory =
    std::function<std::unique_ptr<SubPlanNetwork>(EventSink* output)>;

/// \brief Routes events to per-group sub-plan instances and merges their
/// outputs back into one ordered stream, with the group key prepended to each
/// output payload.
///
/// Watermarking: sub-plan output CTIs are data-dependent (an aggregate with an
/// open snapshot holds its CTI at the snapshot start), so the operator's
/// output watermark is the minimum of every live instance's output CTI. A
/// *prototype* instance that receives every punctuation but no events bounds
/// what groups created in the future could emit. Output events are reordered
/// through a buffer released up to that watermark.
///
/// Punctuation delivery to instances is lazy and amortized: an instance gets
/// the pending CTI when it next receives an event, and a full broadcast runs
/// every ~max(64, groups) punctuations (and always at end-of-stream), so a
/// quiet group cannot stall the watermark forever while per-punctuation cost
/// stays near O(1) amortized.
class GroupApplyOp : public UnaryOperator {
 public:
  GroupApplyOp(std::vector<int> key_indices, SubPlanFactory factory)
      : key_indices_(std::move(key_indices)), factory_(std::move(factory)) {
    prototype_sink_ = std::make_unique<InstanceSink>(this, Row(), /*proto=*/true);
    prototype_ = factory_(prototype_sink_.get());
  }

  void OnEvent(Event event) override { RouteEvent(std::move(event), 0); }

  void OnBatch(EventBatch&& batch) override {
    // Columnar batches get their group-key hashes computed in one vectorized
    // pass before any row is materialized; rows are then built only for the
    // events themselves (the sub-plan inputs are per-event sinks).
    if (batch.columnar()) {
      const ColumnarPayload& p = batch.columnar_payload();
      ComputeKeyHashes(p, key_indices_, &hash_scratch_);
      const auto& marks = batch.ctis();
      const size_t n = p.num_rows();
      size_t m = 0;
      for (size_t i = 0; i < n; ++i) {
        for (; m < marks.size() && marks[m].pos <= i; ++m) OnCti(marks[m].t);
        Event e;
        e.le = p.le()[i];
        e.re = p.re()[i];
        e.payload = p.MaterializeRow(i);
        RouteEvent(std::move(e), hash_scratch_[i]);
      }
      for (; m < marks.size(); ++m) OnCti(marks[m].t);
      batch.Clear();
      return;
    }
    auto& events = batch.events();
    const auto& marks = batch.ctis();
    size_t m = 0;
    for (size_t i = 0; i < events.size(); ++i) {
      for (; m < marks.size() && marks[m].pos <= i; ++m) OnCti(marks[m].t);
      RouteEvent(std::move(events[i]), 0);
    }
    for (; m < marks.size(); ++m) OnCti(marks[m].t);
    batch.Clear();
  }

  void RouteEvent(Event event, uint64_t key_hash) {
    CountConsumed();
    // Heterogeneous probe: the existing-group hit path (the hot one) looks up
    // by a view over the payload's key columns without materializing a key Row.
    auto it = groups_.find(KeyView{&event.payload, &key_indices_, key_hash});
    if (it == groups_.end()) {
      Row key = ExtractKey(event.payload, key_indices_);
      auto sink = std::make_unique<InstanceSink>(this, key, /*proto=*/false);
      // New instances can only emit at or above the prototype's output CTI
      // (they will only ever see events with LE >= the pending input CTI).
      sink->out_cti = proto_out_cti_;
      cti_heap_.push_back({sink->out_cti, sink.get()});
      std::push_heap(cti_heap_.begin(), cti_heap_.end(), std::greater<>());
      auto instance = factory_(sink.get());
      it = groups_.emplace(std::move(key),
                           Group{std::move(instance), std::move(sink)}).first;
    }
    Group& group = it->second;
    if (group.sink->delivered_cti < pending_cti_) {
      group.sink->delivered_cti = pending_cti_;
      group.instance->input()->OnCti(pending_cti_);
    }
    group.instance->input()->OnEvent(std::move(event));
  }

  void OnCti(Timestamp t) override {
    if (t <= pending_cti_) return;
    pending_cti_ = t;
    prototype_->input()->OnCti(t);
    const size_t period = std::max<size_t>(64, groups_.size());
    if (t >= kMaxTime || ++ctis_since_broadcast_ >= period) {
      ctis_since_broadcast_ = 0;
      // A broadcast advances every instance at once, which would cost one
      // O(log n) heap push per instance; instead pushes are suppressed for
      // the sweep and the heap is rebuilt from the now-current CTIs in one
      // O(n) make_heap — this also sheds every stale entry in the same pass.
      in_broadcast_ = true;
      for (auto& [key, group] : groups_) {
        if (group.sink->delivered_cti < t) {
          group.sink->delivered_cti = t;
          group.instance->input()->OnCti(t);
        }
      }
      in_broadcast_ = false;
      cti_heap_.clear();
      cti_heap_.reserve(groups_.size());
      for (auto& [key, group] : groups_) {
        cti_heap_.push_back({group.sink->out_cti, group.sink.get()});
      }
      std::make_heap(cti_heap_.begin(), cti_heap_.end(), std::greater<>());
    }
    Release();
  }

  size_t num_groups() const { return groups_.size(); }

 private:
  // Reorder-buffer entries release in canonical (le, re, payload) order rather
  // than arrival order. Arrival order among same-LE events from different
  // groups depends on CTI delivery granularity (the amortized broadcast above
  // fires on a punctuation count), so a content-based tiebreak is what makes
  // the operator's output bit-identical across batch sizes and CTI spacing.
  // The payload comparison goes through a hash precomputed at push time:
  // (le, re) ties — common when many groups emit at the same snapshot
  // boundary — then cost one integer compare, and the lexicographic walk only
  // runs on full hash collisions.
  struct Buffered {
    Event event;
    size_t payload_hash;
    bool operator>(const Buffered& other) const {
      if (event.le != other.event.le) return event.le > other.event.le;
      if (event.re != other.event.re) return event.re > other.event.re;
      if (payload_hash != other.payload_hash) {
        return payload_hash > other.payload_hash;
      }
      return std::lexicographical_compare(
          other.event.payload.begin(), other.event.payload.end(),
          event.payload.begin(), event.payload.end());
    }
  };

  // Captures one instance's sub-plan output. For real groups: prepends the
  // key, buffers events, and records the instance's output CTI for the
  // parent's watermark floor. For the prototype: tracks the lower bound for
  // yet-to-be-created groups.
  struct InstanceSink : public EventSink {
    InstanceSink(GroupApplyOp* op_in, Row key_in, bool proto_in)
        : op(op_in), key(std::move(key_in)), proto(proto_in) {}

    void OnEvent(Event event) override {
      TIMR_DCHECK(!proto) << "prototype sub-plan instance produced an event";
      Row out;
      out.reserve(key.size() + event.payload.size());
      out.insert(out.end(), key.begin(), key.end());
      out.insert(out.end(), std::make_move_iterator(event.payload.begin()),
                 std::make_move_iterator(event.payload.end()));
      event.payload = std::move(out);
      const size_t hash = HashRow(event.payload);
      op->buffer_.push(Buffered{std::move(event), hash});
    }

    void OnCti(Timestamp t) override {
      if (proto) {
        op->proto_out_cti_ = t;
        return;
      }
      if (t <= out_cti) return;
      out_cti = t;
      // Lazy deletion: the superseded heap entry stays behind and is skipped
      // when the watermark is next queried. During a broadcast no entry is
      // pushed at all — the sweep ends in a wholesale heap rebuild.
      if (!op->in_broadcast_) {
        op->cti_heap_.push_back({t, this});
        std::push_heap(op->cti_heap_.begin(), op->cti_heap_.end(),
                       std::greater<>());
      }
    }

    GroupApplyOp* op;
    Row key;
    bool proto;
    Timestamp delivered_cti = kMinTime;  // last input CTI pushed to instance
    Timestamp out_cti = kMinTime;        // instance's last output CTI
  };

  void Release() {
    Timestamp watermark = proto_out_cti_;
    // Drop stale heap entries (the sink has advanced past them); a live top
    // is the minimum over every instance's current output CTI, because CTIs
    // only advance, so stale values sort below their sink's current one.
    while (!cti_heap_.empty() &&
           cti_heap_.front().first != cti_heap_.front().second->out_cti) {
      std::pop_heap(cti_heap_.begin(), cti_heap_.end(), std::greater<>());
      cti_heap_.pop_back();
    }
    if (!cti_heap_.empty()) {
      watermark = std::min(watermark, cti_heap_.front().first);
    }
    if (buffer_.empty() || buffer_.top().event.le >= watermark) {
      EmitCti(watermark);
      return;
    }
    // Releases are bursty (snapshot finalization frees many events at once),
    // so drain the run into one batch and hand it downstream in a single call.
    EventBatch out;
    while (!buffer_.empty() && buffer_.top().event.le < watermark) {
      // Safe: the entry is popped immediately, so moving out from under the
      // priority queue's const top() cannot be observed by its ordering.
      out.Add(std::move(const_cast<Buffered&>(buffer_.top()).event));
      buffer_.pop();
    }
    out.AddCti(watermark);
    EmitBatch(std::move(out));
  }

  std::vector<int> key_indices_;
  SubPlanFactory factory_;

  struct Group {
    std::unique_ptr<SubPlanNetwork> instance;
    std::unique_ptr<InstanceSink> sink;
  };
  // Heterogeneous (C++20 transparent) hashing so OnEvent can probe with a
  // view over the event payload's key columns; HashKeyOf(row, idx) ==
  // HashRow(ExtractKey(row, idx)) by construction.
  struct KeyView {
    const Row* payload;
    const std::vector<int>* indices;
    uint64_t hash = 0;  // precomputed key hash from the columnar bulk hasher
  };
  struct GroupHash {
    using is_transparent = void;
    size_t operator()(const Row& r) const { return HashRow(r); }
    size_t operator()(const KeyView& v) const {
      return v.hash != 0 ? static_cast<size_t>(v.hash)
                         : HashKeyOf(*v.payload, *v.indices);
    }
  };
  struct GroupKeyEq {
    using is_transparent = void;
    bool operator()(const Row& a, const Row& b) const { return a == b; }
    bool operator()(const KeyView& v, const Row& b) const {
      if (v.indices->size() != b.size()) return false;
      for (size_t i = 0; i < b.size(); ++i) {
        if (!((*v.payload)[(*v.indices)[i]] == b[i])) return false;
      }
      return true;
    }
    bool operator()(const Row& a, const KeyView& v) const {
      return operator()(v, a);
    }
  };
  std::unordered_map<Row, Group, GroupHash, GroupKeyEq> groups_;

  std::unique_ptr<InstanceSink> prototype_sink_;
  std::unique_ptr<SubPlanNetwork> prototype_;

  std::priority_queue<Buffered, std::vector<Buffered>, std::greater<>> buffer_;
  Timestamp pending_cti_ = kMinTime;
  Timestamp proto_out_cti_ = kMinTime;
  // Min-heap over (output CTI, instance) with lazy deletion; entries whose
  // timestamp no longer matches their sink's out_cti are stale. Rebuilt
  // wholesale at every broadcast (see OnCti).
  std::vector<std::pair<Timestamp, const InstanceSink*>> cti_heap_;
  bool in_broadcast_ = false;
  size_t ctis_since_broadcast_ = 0;
  std::vector<uint64_t> hash_scratch_;  // per-batch key hashes (columnar)
};

}  // namespace timr::temporal
