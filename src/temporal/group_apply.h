// GroupApply: apply a query sub-plan to every sub-stream of a grouping key.
// Paper §II-A.2 / Figure 4.

#pragma once

#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "temporal/operator.h"

namespace timr::temporal {

/// \brief An instantiated sub-plan network: the executor builds one per group.
/// Owns the operators; exposes the entry sink. Output is wired at build time
/// to a sink supplied by GroupApplyOp.
class SubPlanNetwork {
 public:
  SubPlanNetwork(EventSink* input, std::vector<std::shared_ptr<Operator>> ops)
      : input_(input), ops_(std::move(ops)) {}

  EventSink* input() const { return input_; }

 private:
  EventSink* input_;
  std::vector<std::shared_ptr<Operator>> ops_;
};

/// Builds a fresh sub-plan instance whose final output feeds `output`.
using SubPlanFactory =
    std::function<std::unique_ptr<SubPlanNetwork>(EventSink* output)>;

/// \brief Routes events to per-group sub-plan instances and merges their
/// outputs back into one ordered stream, with the group key prepended to each
/// output payload.
///
/// Watermarking: sub-plan output CTIs are data-dependent (an aggregate with an
/// open snapshot holds its CTI at the snapshot start), so the operator's
/// output watermark is the minimum of every live instance's output CTI. A
/// *prototype* instance that receives every punctuation but no events bounds
/// what groups created in the future could emit. Output events are reordered
/// through a buffer released up to that watermark.
///
/// Punctuation delivery to instances is lazy and amortized: an instance gets
/// the pending CTI when it next receives an event, and a full broadcast runs
/// every ~max(64, groups/4) punctuations (and always at end-of-stream), so a
/// quiet group cannot stall the watermark forever while per-punctuation cost
/// stays near O(1) amortized.
class GroupApplyOp : public UnaryOperator {
 public:
  GroupApplyOp(std::vector<int> key_indices, SubPlanFactory factory)
      : key_indices_(std::move(key_indices)), factory_(std::move(factory)) {
    prototype_sink_ = std::make_unique<InstanceSink>(this, Row(), /*proto=*/true);
    prototype_ = factory_(prototype_sink_.get());
  }

  void OnEvent(Event event) override {
    CountConsumed();
    Row key = ExtractKey(event.payload, key_indices_);
    auto it = groups_.find(key);
    if (it == groups_.end()) {
      auto sink = std::make_unique<InstanceSink>(this, key, /*proto=*/false);
      // New instances can only emit at or above the prototype's output CTI
      // (they will only ever see events with LE >= the pending input CTI).
      sink->out_cti = proto_out_cti_;
      ctis_.insert(sink->out_cti);
      auto instance = factory_(sink.get());
      it = groups_.emplace(std::move(key),
                           Group{std::move(instance), std::move(sink)}).first;
    }
    Group& group = it->second;
    if (group.sink->delivered_cti < pending_cti_) {
      group.sink->delivered_cti = pending_cti_;
      group.instance->input()->OnCti(pending_cti_);
    }
    group.instance->input()->OnEvent(std::move(event));
  }

  void OnCti(Timestamp t) override {
    if (t <= pending_cti_) return;
    pending_cti_ = t;
    prototype_->input()->OnCti(t);
    const size_t period = std::max<size_t>(64, groups_.size() / 4);
    if (t >= kMaxTime || ++ctis_since_broadcast_ >= period) {
      ctis_since_broadcast_ = 0;
      for (auto& [key, group] : groups_) {
        if (group.sink->delivered_cti < t) {
          group.sink->delivered_cti = t;
          group.instance->input()->OnCti(t);
        }
      }
    }
    Release();
  }

  size_t num_groups() const { return groups_.size(); }

 private:
  struct Buffered {
    Event event;
    uint64_t seq;
    bool operator>(const Buffered& other) const {
      if (event.le != other.event.le) return event.le > other.event.le;
      return seq > other.seq;
    }
  };

  // Captures one instance's sub-plan output. For real groups: prepends the
  // key, buffers events, and tracks the instance's output CTI in the parent's
  // watermark multiset. For the prototype: tracks the lower bound for
  // yet-to-be-created groups.
  struct InstanceSink : public EventSink {
    InstanceSink(GroupApplyOp* op_in, Row key_in, bool proto_in)
        : op(op_in), key(std::move(key_in)), proto(proto_in) {}

    void OnEvent(Event event) override {
      TIMR_DCHECK(!proto) << "prototype sub-plan instance produced an event";
      Row out = key;
      out.insert(out.end(), event.payload.begin(), event.payload.end());
      event.payload = std::move(out);
      op->buffer_.push(Buffered{std::move(event), op->next_seq_++});
    }

    void OnCti(Timestamp t) override {
      if (proto) {
        op->proto_out_cti_ = t;
        return;
      }
      if (t <= out_cti) return;
      auto it = op->ctis_.find(out_cti);
      TIMR_DCHECK(it != op->ctis_.end());
      op->ctis_.erase(it);
      out_cti = t;
      op->ctis_.insert(out_cti);
    }

    GroupApplyOp* op;
    Row key;
    bool proto;
    Timestamp delivered_cti = kMinTime;  // last input CTI pushed to instance
    Timestamp out_cti = kMinTime;        // instance's last output CTI
  };

  void Release() {
    Timestamp watermark = proto_out_cti_;
    if (!ctis_.empty()) watermark = std::min(watermark, *ctis_.begin());
    while (!buffer_.empty() && buffer_.top().event.le < watermark) {
      Emit(buffer_.top().event);
      buffer_.pop();
    }
    EmitCti(watermark);
  }

  std::vector<int> key_indices_;
  SubPlanFactory factory_;

  struct Group {
    std::unique_ptr<SubPlanNetwork> instance;
    std::unique_ptr<InstanceSink> sink;
  };
  struct RowHasher {
    size_t operator()(const Row& r) const { return HashRow(r); }
  };
  std::unordered_map<Row, Group, RowHasher> groups_;

  std::unique_ptr<InstanceSink> prototype_sink_;
  std::unique_ptr<SubPlanNetwork> prototype_;

  std::priority_queue<Buffered, std::vector<Buffered>, std::greater<>> buffer_;
  uint64_t next_seq_ = 0;
  Timestamp pending_cti_ = kMinTime;
  Timestamp proto_out_cti_ = kMinTime;
  std::multiset<Timestamp> ctis_;  // live instances' output CTIs
  size_t ctis_since_broadcast_ = 0;
};

}  // namespace timr::temporal
