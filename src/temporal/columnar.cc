#include "temporal/columnar.h"

#include <functional>

#include "common/hash.h"
#include "temporal/expr.h"
#include "temporal/stateless_ops.h"

// Kernels are written as 64-row blocks building a keep-mask word (select) or
// straight index loops (project / alter / hash). At -O2 the compiler
// auto-vectorizes the arithmetic loops; with -DTIMR_SIMD=ON the pragma asserts
// independence explicitly for the loops where it measurably helps.
#if defined(TIMR_SIMD)
#define TIMR_SIMD_LOOP _Pragma("omp simd")
#else
#define TIMR_SIMD_LOOP
#endif

namespace timr::temporal {

namespace {

// AND a predicate over `v[0..n)` into the selection words.
template <class T, class Cmp>
void FilterColumn(const T* v, size_t n, uint64_t* words, T lit, Cmp cmp) {
  const size_t full = n / 64;
  for (size_t w = 0; w < full; ++w) {
    const T* base = v + w * 64;
    uint64_t m = 0;
    TIMR_SIMD_LOOP
    for (size_t b = 0; b < 64; ++b) {
      m |= static_cast<uint64_t>(cmp(base[b], lit)) << b;
    }
    words[w] &= m;
  }
  const size_t rem = n % 64;
  if (rem != 0) {
    const T* base = v + full * 64;
    uint64_t m = 0;
    for (size_t b = 0; b < rem; ++b) {
      m |= static_cast<uint64_t>(cmp(base[b], lit)) << b;
    }
    words[full] &= m | (~uint64_t{0} << rem);
  }
}

template <class T>
void FilterTyped(const T* v, size_t n, uint64_t* words, T lit, CmpOp op) {
  switch (op) {
    case CmpOp::kEq: FilterColumn(v, n, words, lit, std::equal_to<T>{}); break;
    case CmpOp::kNe:
      FilterColumn(v, n, words, lit, std::not_equal_to<T>{});
      break;
    case CmpOp::kLt: FilterColumn(v, n, words, lit, std::less<T>{}); break;
    case CmpOp::kLe: FilterColumn(v, n, words, lit, std::less_equal<T>{}); break;
    case CmpOp::kGt: FilterColumn(v, n, words, lit, std::greater<T>{}); break;
    case CmpOp::kGe:
      FilterColumn(v, n, words, lit, std::greater_equal<T>{});
      break;
  }
}

void FilterString(const Column& col, const StringDict& dict, size_t n,
                  uint64_t* words, const ColumnCompare& c) {
  if (c.op == CmpOp::kEq || c.op == CmpOp::kNe) {
    // Dictionary ids are content-deduplicated within the batch, so string
    // equality is id equality once the literal is resolved to an id.
    const int64_t id = dict.Find(c.literal);
    if (id < 0) {
      if (c.op == CmpOp::kNe) return;  // nothing equals the literal: keep all
      const size_t nwords = (n + 63) / 64;
      for (size_t w = 0; w < nwords; ++w) words[w] = 0;
      return;
    }
    FilterTyped(col.sid.data(), n, words, static_cast<uint32_t>(id), c.op);
    return;
  }
  // Ordering compare: one content comparison per distinct id, then an id
  // table-lookup loop over the rows.
  const std::string& lit = c.literal.AsString();
  std::vector<unsigned char> keep(dict.size());
  for (size_t id = 0; id < dict.size(); ++id) {
    const std::string& s = dict.ValueAt(static_cast<uint32_t>(id)).AsString();
    bool k = false;
    switch (c.op) {
      case CmpOp::kLt: k = s < lit; break;
      case CmpOp::kLe: k = s <= lit; break;
      case CmpOp::kGt: k = s > lit; break;
      case CmpOp::kGe: k = s >= lit; break;
      default: break;
    }
    keep[id] = static_cast<unsigned char>(k);
  }
  const unsigned char* table = keep.data();
  FilterColumn(col.sid.data(), n, words, uint32_t{0},
               [table](uint32_t id, uint32_t) { return table[id] != 0; });
}

}  // namespace

void EvalSelectColumnar(ColumnarPayload& payload, const SelectSpec& spec) {
  TIMR_DCHECK(payload.all_valid()) << "select over a pending selection";
  const size_t n = payload.num_rows();
  if (n == 0 || spec.conjuncts.empty()) return;
  uint64_t* words = payload.EnsureValidity().data();
  for (const ColumnCompare& c : spec.conjuncts) {
    const Column& col = payload.col(c.column);
    switch (col.type) {
      case ValueType::kInt64:
        FilterTyped(col.i64.data(), n, words, c.literal.AsInt64(), c.op);
        break;
      case ValueType::kDouble:
        FilterTyped(col.f64.data(), n, words, c.literal.AsDouble(), c.op);
        break;
      case ValueType::kString:
        FilterString(col, payload.dict(), n, words, c);
        break;
    }
  }
}

namespace {

double LoadF64(const Column& c, size_t r) {
  return c.type == ValueType::kInt64 ? static_cast<double>(c.i64[r]) : c.f64[r];
}

void FillArith(const ColumnarPayload& payload, const ProjectExpr& e,
               Column* out) {
  const size_t n = payload.num_rows();
  const Column& lhs = payload.col(e.column);
  const Column* rhs = e.rhs_column >= 0 ? &payload.col(e.rhs_column) : nullptr;
  const bool lhs_i = lhs.type == ValueType::kInt64;
  const bool rhs_i = rhs != nullptr ? rhs->type == ValueType::kInt64
                                    : e.literal.type() == ValueType::kInt64;
  const bool out_i =
      lhs_i && rhs_i && e.op != ProjectExpr::ArithOp::kDiv;
  if (out_i) {
    out->type = ValueType::kInt64;
    out->i64.resize(n);
    int64_t* o = out->i64.data();
    const int64_t* a = lhs.i64.data();
    const int64_t lit = rhs == nullptr ? e.literal.AsInt64() : 0;
    const int64_t* b = rhs != nullptr ? rhs->i64.data() : nullptr;
    switch (e.op) {
      case ProjectExpr::ArithOp::kAdd:
        if (b != nullptr) {
          TIMR_SIMD_LOOP
          for (size_t r = 0; r < n; ++r) o[r] = ArithEvalI64(a[r], e.op, b[r]);
        } else {
          TIMR_SIMD_LOOP
          for (size_t r = 0; r < n; ++r) o[r] = ArithEvalI64(a[r], e.op, lit);
        }
        break;
      case ProjectExpr::ArithOp::kSub:
      case ProjectExpr::ArithOp::kMul:
        if (b != nullptr) {
          for (size_t r = 0; r < n; ++r) o[r] = ArithEvalI64(a[r], e.op, b[r]);
        } else {
          for (size_t r = 0; r < n; ++r) o[r] = ArithEvalI64(a[r], e.op, lit);
        }
        break;
      case ProjectExpr::ArithOp::kDiv:
        break;  // unreachable: out_i excludes kDiv
    }
    return;
  }
  out->type = ValueType::kDouble;
  out->f64.resize(n);
  double* o = out->f64.data();
  const double lit = rhs != nullptr
                         ? 0
                         : (e.literal.type() == ValueType::kInt64
                                ? static_cast<double>(e.literal.AsInt64())
                                : e.literal.AsDouble());
  for (size_t r = 0; r < n; ++r) {
    const double a = LoadF64(lhs, r);
    const double b = rhs != nullptr ? LoadF64(*rhs, r) : lit;
    o[r] = ArithEvalF64(a, e.op, b);
  }
}

}  // namespace

void ApplyProjectColumnar(ColumnarPayload& payload, const ProjectSpec& spec) {
  TIMR_DCHECK(payload.all_valid()) << "project over a pending selection";
  const size_t n = payload.num_rows();
  // How often each input column is read; a column consumed by exactly one
  // plain copy can be moved instead of copied.
  std::vector<int> refs(payload.num_cols(), 0);
  for (const ProjectExpr& e : spec.exprs) {
    if (e.kind != ProjectExpr::Kind::kConst) ++refs[e.column];
    if (e.kind == ProjectExpr::Kind::kArith && e.rhs_column >= 0) {
      ++refs[e.rhs_column];
    }
  }
  // Output columns are built in a thread-local scratch, then swapped in; the
  // displaced input columns land back in the scratch, keeping their buffer
  // capacity for the next batch (O(1) allocations in steady state).
  thread_local std::vector<Column> scratch;
  scratch.resize(spec.exprs.size());
  for (size_t i = 0; i < spec.exprs.size(); ++i) {
    const ProjectExpr& e = spec.exprs[i];
    Column& out = scratch[i];
    out.ClearRows();
    switch (e.kind) {
      case ProjectExpr::Kind::kColumn: {
        Column& src = payload.col(e.column);
        out.type = src.type;
        if (refs[e.column] == 1) {
          // Sole consumer: steal the buffer.
          switch (src.type) {
            case ValueType::kInt64: out.i64.swap(src.i64); break;
            case ValueType::kDouble: out.f64.swap(src.f64); break;
            case ValueType::kString: out.sid.swap(src.sid); break;
          }
        } else {
          switch (src.type) {
            case ValueType::kInt64:
              out.i64.assign(src.i64.begin(), src.i64.end());
              break;
            case ValueType::kDouble:
              out.f64.assign(src.f64.begin(), src.f64.end());
              break;
            case ValueType::kString:
              out.sid.assign(src.sid.begin(), src.sid.end());
              break;
          }
        }
        break;
      }
      case ProjectExpr::Kind::kConst:
        out.type = e.literal.type();
        switch (out.type) {
          case ValueType::kInt64: out.i64.assign(n, e.literal.AsInt64()); break;
          case ValueType::kDouble:
            out.f64.assign(n, e.literal.AsDouble());
            break;
          case ValueType::kString:
            out.sid.assign(n, payload.dict().Intern(e.literal));
            break;
        }
        break;
      case ProjectExpr::Kind::kArith:
        FillArith(payload, e, &out);
        break;
    }
  }
  payload.ReplaceColumns(&scratch);
  scratch.resize(spec.exprs.size() < 64 ? scratch.size() : 0);
}

bool ApplyAlterColumnar(ColumnarPayload& payload,
                        const AlterLifetimeSpec& spec) {
  TIMR_DCHECK(payload.all_valid()) << "alter over a pending selection";
  const size_t n = payload.num_rows();
  Timestamp* le = payload.le().data();
  Timestamp* re = payload.re().data();
  switch (spec.mode) {
    case AlterLifetimeSpec::Mode::kShift: {
      const Timestamp s = spec.shift;
      TIMR_SIMD_LOOP
      for (size_t r = 0; r < n; ++r) {
        le[r] += s;
        re[r] += s;
      }
      return false;
    }
    case AlterLifetimeSpec::Mode::kWindow: {
      const Timestamp w = spec.window;
      TIMR_SIMD_LOOP
      for (size_t r = 0; r < n; ++r) re[r] = le[r] + w;
      return false;
    }
    case AlterLifetimeSpec::Mode::kPoint:
      TIMR_SIMD_LOOP
      for (size_t r = 0; r < n; ++r) re[r] = le[r] + kTick;
      return false;
    case AlterLifetimeSpec::Mode::kShiftAndWindow: {
      const Timestamp s = spec.shift;
      const Timestamp w = spec.window;
      TIMR_SIMD_LOOP
      for (size_t r = 0; r < n; ++r) {
        le[r] += s;
        re[r] = le[r] + w;
      }
      return false;
    }
    case AlterLifetimeSpec::Mode::kHop: {
      if (n == 0) return false;
      uint64_t* words = payload.EnsureValidity().data();
      bool dropped = false;
      for (size_t r = 0; r < n; ++r) {
        const Timestamp t = le[r];
        const Timestamp first = CeilToGrid(t, spec.hop);
        const Timestamp last = CeilToGrid(t + spec.window, spec.hop);
        if (first >= last) {
          words[r >> 6] &= ~(uint64_t{1} << (r & 63));
          dropped = true;
          continue;
        }
        le[r] = first;
        re[r] = last;
      }
      return dropped || true;  // validity was materialized: caller compacts
    }
  }
  return false;
}

void ComputeKeyHashes(const ColumnarPayload& payload,
                      const std::vector<int>& key_indices,
                      std::vector<uint64_t>* out) {
  const size_t n = payload.num_rows();
  // Same seed and per-value hash as HashKeyOf / Value::Hash (common/row.cc),
  // restructured as one pass per key column.
  out->assign(n, 0x51ed270b0a1f3c49ULL);
  uint64_t* h = out->data();
  for (int idx : key_indices) {
    const Column& col = payload.col(idx);
    switch (col.type) {
      case ValueType::kInt64: {
        const int64_t* v = col.i64.data();
        TIMR_SIMD_LOOP
        for (size_t r = 0; r < n; ++r) {
          h[r] = HashCombine(
              h[r],
              HashMix(static_cast<uint64_t>(v[r]) + 0x9e3779b97f4a7c15ULL));
        }
        break;
      }
      case ValueType::kDouble: {
        const double* v = col.f64.data();
        TIMR_SIMD_LOOP
        for (size_t r = 0; r < n; ++r) {
          uint64_t bits;
          __builtin_memcpy(&bits, &v[r], sizeof(bits));
          h[r] = HashCombine(h[r], HashMix(bits ^ 0xc2b2ae3d27d4eb4fULL));
        }
        break;
      }
      case ValueType::kString: {
        const uint32_t* v = col.sid.data();
        const StringDict& dict = payload.dict();
        for (size_t r = 0; r < n; ++r) {
          h[r] = HashCombine(h[r], dict.HashAt(v[r]));
        }
        break;
      }
    }
  }
}

}  // namespace timr::temporal
