// Logical continuous-query plans: a DAG of temporal operators (paper Figures
// 2-4, 6-8). A plan is the unit TiMR compiles: it gets annotated with exchange
// operators, cut into fragments, and executed either single-node (embedded
// DSMS) or as map-reduce stages.

#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/row.h"
#include "common/status.h"
#include "temporal/aggregate.h"
#include "temporal/join.h"
#include "temporal/stateless_ops.h"
#include "temporal/udo.h"

namespace timr::temporal {

enum class OpKind : uint8_t {
  kInput,         // named external source
  kSubplanInput,  // the per-group substream inside a GroupApply
  kSelect,
  kProject,
  kAlterLifetime,
  kAggregate,
  kGroupApply,
  kUnion,
  kTemporalJoin,
  kAntiSemiJoin,
  kUdo,
  kExchange,          // logical repartitioning marker inserted by TiMR annotation
  kConformanceCheck,  // debug-mode stream validation (analysis/conformance_pass)
};

const char* OpKindName(OpKind kind);

/// \brief How an exchange operator repartitions its stream (paper §III-A step
/// 2 and §III-B).
struct PartitionSpec {
  enum class Kind : uint8_t {
    kKeys,      // hash of a column subset
    kTemporal,  // overlapping time spans (paper §III-B)
  };

  Kind kind = Kind::kKeys;
  std::vector<std::string> keys;  // kKeys
  Timestamp span_width = 0;       // kTemporal: s
  Timestamp overlap = 0;          // kTemporal: w (max window across inputs)

  /// kKeys only: opt this exchange into adaptive skew-aware repartitioning
  /// (hot keys split across salted virtual partitions; see mr::SkewPolicy).
  /// Advisory for the runtime — the exchange still *satisfies* kKeys
  /// partitioning for its consumers (every key stays co-located), so
  /// property derivation and spec equality ignore it. Invalid on kTemporal
  /// specs (analysis::CheckSplitExchange rejects it).
  bool adaptive_split = false;

  static PartitionSpec ByKeys(std::vector<std::string> keys) {
    PartitionSpec spec;
    spec.kind = Kind::kKeys;
    spec.keys = std::move(keys);
    return spec;
  }
  static PartitionSpec ByTime(Timestamp span_width, Timestamp overlap) {
    PartitionSpec spec;
    spec.kind = Kind::kTemporal;
    spec.span_width = span_width;
    spec.overlap = overlap;
    return spec;
  }

  std::string ToString() const;
};

struct PlanNode;
using PlanNodePtr = std::shared_ptr<PlanNode>;

/// \brief One logical operator. A node shared by several parents acts as a
/// Multicast (paper §II-A.2); the executor instantiates it once.
struct PlanNode {
  OpKind kind;
  std::vector<PlanNodePtr> children;

  /// kInput: source name. Other kinds: optional debug label.
  std::string name;

  Schema input_schema;  // kInput / kSubplanInput

  Predicate pred;  // kSelect
  /// kSelect: structured form of `pred`, when the filter was expressed as a
  /// SelectSpec. Enables the columnar kernel; `pred` stays the row-path
  /// equivalent (MakeRowPredicate).
  std::optional<SelectSpec> select_spec;

  ProjectFn project_fn;   // kProject
  Schema project_schema;  // kProject
  /// kProject: structured form of `project_fn` (same contract as select_spec).
  std::optional<ProjectSpec> project_spec;

  AlterLifetimeSpec alter;  // kAlterLifetime

  AggregateSpec agg;  // kAggregate

  std::vector<std::string> group_keys;  // kGroupApply
  PlanNodePtr subplan;                  // kGroupApply (rooted at kSubplanInput)

  std::vector<std::string> left_keys;   // kTemporalJoin / kAntiSemiJoin
  std::vector<std::string> right_keys;  // kTemporalJoin / kAntiSemiJoin
  JoinPredicate join_pred;              // kTemporalJoin (optional residual)
  JoinProjectFn join_project;           // kTemporalJoin (optional)
  Schema join_schema;                   // kTemporalJoin (with join_project)

  Timestamp udo_window = 0;  // kUdo
  Timestamp udo_hop = 0;     // kUdo
  UdoFn udo_fn;              // kUdo
  Schema udo_schema;         // kUdo
  /// kUdo: declares the UDO a function of the window *multiset* (insensitive
  /// to the order of `active` events). The determinism audit
  /// (analysis/plan_checks.h) flags undeclared UDOs downstream of a merge.
  bool udo_order_insensitive = false;

  PartitionSpec exchange;  // kExchange

  /// Output schema, derived from children; computed once and cached.
  /// Thread-safe: concurrent reducers build executors over a shared plan, so
  /// the memo is published via an atomic shared_ptr swap (a benign duplicate
  /// computation may occur on first use, never a torn read).
  Result<Schema> OutputSchema() const;

  /// Multi-line plan rendering for debugging and the docs.
  std::string ToString() const;

  /// Largest window any AlterLifetime / UDO in this plan (excluding nested
  /// group sub-plans' inputs — they see the same events) applies; TiMR uses it
  /// as the temporal-partitioning overlap (paper §III-B).
  Timestamp MaxWindow() const;

 private:
  mutable std::shared_ptr<const Result<Schema>> cached_schema_;
  Result<Schema> ComputeSchema() const;
};

/// Deep-copies the DAG structure (operators/params are shared where immutable;
/// node objects are fresh so annotations can be edited without aliasing).
/// Shared sub-DAGs stay shared in the copy.
PlanNodePtr ClonePlan(const PlanNodePtr& root);

/// All distinct nodes reachable from root (pre-order, each once).
std::vector<PlanNode*> CollectNodes(const PlanNodePtr& root);

/// All kInput nodes reachable from root (including inside group sub-plans).
std::vector<PlanNode*> CollectInputs(const PlanNodePtr& root);

}  // namespace timr::temporal
