#include "temporal/aggregate.h"

#include "common/logging.h"

namespace timr::temporal::internal {

namespace {

class CountAcc : public Accumulator {
 public:
  void Add(double) override { ++count_; }
  void Remove(double) override { --count_; }
  void ApplyDelta(int64_t dn, double) override { count_ += dn; }
  Value Current() const override { return Value(count_); }
};

class SumAcc : public Accumulator {
 public:
  void Add(double v) override {
    ++count_;
    sum_ += v;
  }
  void Remove(double v) override {
    --count_;
    sum_ -= v;
  }
  void ApplyDelta(int64_t dn, double dsum) override {
    count_ += dn;
    sum_ += dsum;
  }
  Value Current() const override { return Value(sum_); }

 private:
  double sum_ = 0;
};

class AvgAcc : public Accumulator {
 public:
  void Add(double v) override {
    ++count_;
    sum_ += v;
  }
  void Remove(double v) override {
    --count_;
    sum_ -= v;
  }
  void ApplyDelta(int64_t dn, double dsum) override {
    count_ += dn;
    sum_ += dsum;
  }
  Value Current() const override {
    TIMR_DCHECK(count_ > 0);
    return Value(sum_ / static_cast<double>(count_));
  }

 private:
  double sum_ = 0;
};

// Min/Max need retraction, so keep the full multiset of active values.
template <bool kIsMin>
class ExtremeAcc : public Accumulator {
 public:
  void Add(double v) override {
    ++count_;
    values_.insert(v);
  }
  void Remove(double v) override {
    --count_;
    auto it = values_.find(v);
    TIMR_DCHECK(it != values_.end());
    values_.erase(it);
  }
  Value Current() const override {
    TIMR_DCHECK(!values_.empty());
    return Value(kIsMin ? *values_.begin() : *values_.rbegin());
  }

 private:
  std::multiset<double> values_;
};

}  // namespace

std::unique_ptr<Accumulator> MakeAccumulator(AggKind kind) {
  switch (kind) {
    case AggKind::kCount: return std::make_unique<CountAcc>();
    case AggKind::kSum: return std::make_unique<SumAcc>();
    case AggKind::kAvg: return std::make_unique<AvgAcc>();
    case AggKind::kMin: return std::make_unique<ExtremeAcc<true>>();
    case AggKind::kMax: return std::make_unique<ExtremeAcc<false>>();
  }
  return nullptr;
}

}  // namespace timr::temporal::internal
