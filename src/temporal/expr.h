// Structured expressions for Select and Project.
//
// An opaque std::function predicate forces the engine onto the row path: the
// batch must be materialized as events and the closure called per row. A
// SelectSpec / ProjectSpec describes the same computation as data (column
// compares, column copies, constant fills, binary arithmetic), which lets the
// columnar kernels in columnar.cc evaluate it as tight per-column loops while
// MakeRowPredicate / MakeRowProjector synthesize the exact row-path
// equivalent, so both execution modes share one semantics definition.

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/row.h"
#include "common/status.h"

namespace timr::temporal {

using Predicate = std::function<bool(const Row&)>;
using ProjectFn = std::function<Row(const Row&)>;

enum class CmpOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

inline const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return "==";
    case CmpOp::kNe: return "!=";
    case CmpOp::kLt: return "<";
    case CmpOp::kLe: return "<=";
    case CmpOp::kGt: return ">";
    case CmpOp::kGe: return ">=";
  }
  return "?";
}

/// One conjunct of a structured filter: `row[column] <op> literal`. The
/// literal's type must equal the column's declared type (enforced when the
/// spec is attached to a plan), so the columnar kernel can compare raw cells.
struct ColumnCompare {
  int column = 0;
  CmpOp op = CmpOp::kEq;
  Value literal;
};

/// Conjunction of column/literal compares.
struct SelectSpec {
  std::vector<ColumnCompare> conjuncts;
};

/// Value-semantics comparison used by the row path. For type-matched operands
/// (the validated case) this is a plain comparison of the underlying values,
/// which is exactly what the columnar kernels compute.
inline bool EvalCompare(const Value& cell, CmpOp op, const Value& lit) {
  switch (op) {
    case CmpOp::kEq: return cell == lit;
    case CmpOp::kNe: return !(cell == lit);
    case CmpOp::kLt: return cell < lit;
    case CmpOp::kLe: return !(lit < cell);
    case CmpOp::kGt: return lit < cell;
    case CmpOp::kGe: return !(cell < lit);
  }
  return false;
}

/// Direct row evaluation of a structured filter. Operators that hold the
/// spec call this inline on their per-event paths instead of paying a
/// std::function dispatch per row.
inline bool EvalSelectRow(const SelectSpec& spec, const Row& r) {
  for (const ColumnCompare& c : spec.conjuncts) {
    if (!EvalCompare(r[c.column], c.op, c.literal)) return false;
  }
  return true;
}

/// The row-path predicate equivalent to evaluating `spec` columnar.
inline Predicate MakeRowPredicate(SelectSpec spec) {
  return [spec = std::move(spec)](const Row& r) {
    return EvalSelectRow(spec, r);
  };
}

inline Status ValidateSelectSpec(const SelectSpec& spec, const Schema& in) {
  for (const ColumnCompare& c : spec.conjuncts) {
    if (c.column < 0 || static_cast<size_t>(c.column) >= in.num_fields()) {
      return Status::Invalid("select spec column out of range");
    }
    if (c.literal.type() != in.field(c.column).type) {
      return Status::Invalid("select spec literal type does not match column '" +
                             in.field(c.column).name + "' in " + in.ToString());
    }
  }
  return Status::OK();
}

/// One output column of a structured projection.
struct ProjectExpr {
  enum class Kind : uint8_t {
    kColumn,  // copy input column `column`
    kConst,   // fill with `literal`
    kArith,   // `column` <op> (`rhs_column` >= 0 ? input column : `literal`)
  };
  enum class ArithOp : uint8_t { kAdd, kSub, kMul, kDiv };

  Kind kind = Kind::kColumn;
  std::string name;  // output column name
  int column = -1;   // kColumn; kArith left operand
  Value literal;     // kConst; kArith right operand when rhs_column < 0
  ArithOp op = ArithOp::kAdd;
  int rhs_column = -1;

  static ProjectExpr Column(std::string name, int col) {
    ProjectExpr e;
    e.kind = Kind::kColumn;
    e.name = std::move(name);
    e.column = col;
    return e;
  }
  static ProjectExpr Const(std::string name, Value v) {
    ProjectExpr e;
    e.kind = Kind::kConst;
    e.name = std::move(name);
    e.literal = std::move(v);
    return e;
  }
  static ProjectExpr Arith(std::string name, int lhs, ArithOp op, int rhs) {
    ProjectExpr e;
    e.kind = Kind::kArith;
    e.name = std::move(name);
    e.column = lhs;
    e.op = op;
    e.rhs_column = rhs;
    return e;
  }
  static ProjectExpr ArithLit(std::string name, int lhs, ArithOp op, Value v) {
    ProjectExpr e;
    e.kind = Kind::kArith;
    e.name = std::move(name);
    e.column = lhs;
    e.op = op;
    e.literal = std::move(v);
    return e;
  }
};

struct ProjectSpec {
  std::vector<ProjectExpr> exprs;
};

/// Integer arithmetic through unsigned so overflow wraps instead of being UB;
/// both execution paths use this exact function.
inline int64_t ArithEvalI64(int64_t a, ProjectExpr::ArithOp op, int64_t b) {
  const uint64_t ua = static_cast<uint64_t>(a);
  const uint64_t ub = static_cast<uint64_t>(b);
  switch (op) {
    case ProjectExpr::ArithOp::kAdd: return static_cast<int64_t>(ua + ub);
    case ProjectExpr::ArithOp::kSub: return static_cast<int64_t>(ua - ub);
    case ProjectExpr::ArithOp::kMul: return static_cast<int64_t>(ua * ub);
    case ProjectExpr::ArithOp::kDiv: break;  // kDiv always produces double
  }
  TIMR_CHECK(false) << "integer division in ProjectExpr";
  return 0;
}

inline double ArithEvalF64(double a, ProjectExpr::ArithOp op, double b) {
  switch (op) {
    case ProjectExpr::ArithOp::kAdd: return a + b;
    case ProjectExpr::ArithOp::kSub: return a - b;
    case ProjectExpr::ArithOp::kMul: return a * b;
    case ProjectExpr::ArithOp::kDiv: return a / b;
  }
  return 0;
}

/// Output type rule shared by schema inference and both evaluators: division
/// is always double; other ops are int64 iff both operands are int64.
inline Result<ValueType> InferExprType(const ProjectExpr& e, const Schema& in) {
  auto col_type = [&](int c) -> Result<ValueType> {
    if (c < 0 || static_cast<size_t>(c) >= in.num_fields()) {
      return Status::Invalid("project spec column out of range");
    }
    return in.field(c).type;
  };
  switch (e.kind) {
    case ProjectExpr::Kind::kColumn:
      return col_type(e.column);
    case ProjectExpr::Kind::kConst:
      return e.literal.type();
    case ProjectExpr::Kind::kArith: {
      TIMR_ASSIGN_OR_RETURN(ValueType lt, col_type(e.column));
      ValueType rt = e.literal.type();
      if (e.rhs_column >= 0) {
        TIMR_ASSIGN_OR_RETURN(rt, col_type(e.rhs_column));
      }
      if (lt == ValueType::kString || rt == ValueType::kString) {
        return Status::Invalid("project spec arithmetic on a string operand");
      }
      if (e.op == ProjectExpr::ArithOp::kDiv) return ValueType::kDouble;
      return (lt == ValueType::kInt64 && rt == ValueType::kInt64)
                 ? ValueType::kInt64
                 : ValueType::kDouble;
    }
  }
  return Status::Invalid("unknown project expr kind");
}

/// Output schema of `spec` over input schema `in`.
inline Result<Schema> InferProjectSchema(const ProjectSpec& spec,
                                         const Schema& in) {
  std::vector<Schema::Field> fields;
  fields.reserve(spec.exprs.size());
  for (const ProjectExpr& e : spec.exprs) {
    TIMR_ASSIGN_OR_RETURN(ValueType t, InferExprType(e, in));
    fields.push_back({e.name, t});
  }
  return Schema(std::move(fields));
}

/// The row-path projector equivalent to evaluating `spec` columnar. The spec
/// must have validated against `in` (InferProjectSchema returned OK).
inline ProjectFn MakeRowProjector(ProjectSpec spec, const Schema& in) {
  struct Compiled {
    ProjectExpr::Kind kind;
    int column;
    Value literal;
    ProjectExpr::ArithOp op;
    int rhs_column;
    bool out_double;   // kArith: result type
    bool lhs_double;   // kArith: declared operand types
    bool rhs_double;
  };
  std::vector<Compiled> prog;
  prog.reserve(spec.exprs.size());
  for (const ProjectExpr& e : spec.exprs) {
    auto t = InferExprType(e, in);
    TIMR_CHECK(t.ok()) << t.status().ToString();
    Compiled c{e.kind, e.column, e.literal, e.op, e.rhs_column,
               t.ValueOrDie() == ValueType::kDouble, false, false};
    if (e.kind == ProjectExpr::Kind::kArith) {
      c.lhs_double = in.field(e.column).type == ValueType::kDouble;
      c.rhs_double = e.rhs_column >= 0
                         ? in.field(e.rhs_column).type == ValueType::kDouble
                         : e.literal.type() == ValueType::kDouble;
    }
    prog.push_back(std::move(c));
  }
  return [prog = std::move(prog)](const Row& r) {
    Row out;
    out.reserve(prog.size());
    for (const Compiled& c : prog) {
      switch (c.kind) {
        case ProjectExpr::Kind::kColumn:
          out.push_back(r[c.column]);
          break;
        case ProjectExpr::Kind::kConst:
          out.push_back(c.literal);
          break;
        case ProjectExpr::Kind::kArith: {
          if (!c.out_double) {
            out.emplace_back(ArithEvalI64(
                r[c.column].AsInt64(), c.op,
                c.rhs_column >= 0 ? r[c.rhs_column].AsInt64()
                                  : c.literal.AsInt64()));
            break;
          }
          const double a = c.lhs_double
                               ? r[c.column].AsDouble()
                               : static_cast<double>(r[c.column].AsInt64());
          double b;
          if (c.rhs_column >= 0) {
            b = c.rhs_double ? r[c.rhs_column].AsDouble()
                             : static_cast<double>(r[c.rhs_column].AsInt64());
          } else {
            b = c.rhs_double ? c.literal.AsDouble()
                             : static_cast<double>(c.literal.AsInt64());
          }
          out.emplace_back(ArithEvalF64(a, c.op, b));
          break;
        }
      }
    }
    return out;
  };
}

}  // namespace timr::temporal
