// User-defined operator over a hopping window (paper §II-A.2, used for the
// BT logistic-regression model builder, §IV-B.4).

#pragma once

#include <deque>
#include <functional>
#include <vector>

#include "temporal/operator.h"
#include "temporal/stateless_ops.h"

namespace timr::temporal {

/// Called once per window boundary b with every event whose lifetime
/// intersects [b - window, b); returns output rows, each of which becomes an
/// event with lifetime [b, b + hop) — i.e. the result is valid until the next
/// recomputation.
using UdoFn = std::function<std::vector<Row>(
    Timestamp window_start, Timestamp window_end,
    const std::vector<Event>& active)>;

/// \brief Hopping-window user-defined operator.
///
/// Boundaries lie on the hop grid. A boundary fires once the CTI passes it
/// (all events with LE < b are then known). Windows with no active events are
/// skipped, which also lets the boundary cursor reset when the stream goes
/// quiet instead of spinning to infinity on the final punctuation.
class HoppingUdoOp : public UnaryOperator {
 public:
  HoppingUdoOp(Timestamp window, Timestamp hop, UdoFn fn)
      : window_(window), hop_(hop), fn_(std::move(fn)) {
    TIMR_CHECK(window_ > 0);
    TIMR_CHECK(hop_ > 0);
  }

  void OnEvent(Event event) override {
    CountConsumed();
    if (buffer_.empty()) {
      // First boundary that can see this event: smallest grid point > le.
      next_b_ = CeilToGrid(event.le + 1, hop_);
    }
    buffer_.push_back(std::move(event));
  }

  void OnCti(Timestamp t) override {
    while (!buffer_.empty() && next_b_ <= t) {
      const Timestamp b = next_b_;
      const Timestamp wstart = b - window_;
      // Purge events that ended before this window.
      while (!buffer_.empty() && buffer_.front().re <= wstart) buffer_.pop_front();
      std::vector<Event> active;
      for (const Event& e : buffer_) {
        if (e.le < b && e.re > wstart) active.push_back(e);
      }
      if (!active.empty()) {
        for (Row& row : fn_(wstart, b, active)) {
          Emit(Event(b, b + hop_, std::move(row)));
        }
      }
      next_b_ = b + hop_;
      if (buffer_.empty()) break;
    }
    // Future outputs happen only at grid boundaries. If the buffer is live the
    // next possible one is next_b_ (> t here); if it is empty, any future event
    // arrives with LE >= t and fires strictly after that.
    EmitCti(buffer_.empty() ? t : next_b_);
  }

 private:
  Timestamp window_;
  Timestamp hop_;
  UdoFn fn_;
  std::deque<Event> buffer_;
  Timestamp next_b_ = kMinTime;
};

}  // namespace timr::temporal
