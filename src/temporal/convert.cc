#include "temporal/convert.h"

namespace timr::temporal {

bool IsIntervalLayout(const Schema& schema) {
  return schema.num_fields() >= 2 && schema.field(0).name == kTimeColumn &&
         schema.field(1).name == kREndColumn;
}

Schema PointRowSchema(const Schema& payload_schema) {
  Schema time(std::vector<Schema::Field>{{kTimeColumn, ValueType::kInt64}});
  return time.Concat(payload_schema);
}

Schema IntervalRowSchema(const Schema& payload_schema) {
  Schema head(std::vector<Schema::Field>{{kTimeColumn, ValueType::kInt64},
                                         {kREndColumn, ValueType::kInt64}});
  return head.Concat(payload_schema);
}

Result<Schema> PayloadSchemaOf(const Schema& row_schema) {
  if (row_schema.num_fields() == 0 || row_schema.field(0).name != kTimeColumn) {
    return Status::Invalid("row schema must start with Time: " +
                           row_schema.ToString());
  }
  const size_t skip = IsIntervalLayout(row_schema) ? 2 : 1;
  std::vector<int> rest;
  for (size_t i = skip; i < row_schema.num_fields(); ++i) {
    rest.push_back(static_cast<int>(i));
  }
  return row_schema.Select(rest);
}

Result<Event> EventFromRow(const Schema& row_schema, const Row& row) {
  if (row.size() != row_schema.num_fields()) {
    return Status::Invalid("row width does not match schema");
  }
  const bool interval = IsIntervalLayout(row_schema);
  const Timestamp le = row[0].AsInt64();
  const Timestamp re = interval ? row[1].AsInt64() : le + kTick;
  if (re <= le) return Status::Invalid("event with empty lifetime");
  Row payload(row.begin() + (interval ? 2 : 1), row.end());
  return Event(le, re, std::move(payload));
}

Result<Row> RowFromEvent(const Event& event, bool interval_layout) {
  if (!interval_layout && !event.IsPoint()) {
    return Status::Invalid(
        "cannot serialize interval event to point layout: " + event.ToString());
  }
  Row row;
  row.reserve(event.payload.size() + (interval_layout ? 2 : 1));
  row.emplace_back(event.le);
  if (interval_layout) row.emplace_back(event.re);
  row.insert(row.end(), event.payload.begin(), event.payload.end());
  return row;
}

Result<std::vector<Event>> EventsFromRows(const Schema& row_schema,
                                          const std::vector<Row>& rows) {
  // Dictionary-encode string columns at ingest: repeated values across a
  // partition's rows collapse to one shared allocation (Value::Interned), so
  // downstream payload copies of those columns are refcount bumps instead of
  // string allocations.
  std::vector<size_t> string_cols;
  const size_t skip = IsIntervalLayout(row_schema) ? 2 : 1;
  for (size_t i = skip; i < row_schema.num_fields(); ++i) {
    if (row_schema.field(i).type == ValueType::kString) {
      string_cols.push_back(i - skip);
    }
  }
  std::vector<Event> events;
  events.reserve(rows.size());
  for (const Row& r : rows) {
    TIMR_ASSIGN_OR_RETURN(Event e, EventFromRow(row_schema, r));
    for (size_t col : string_cols) {
      Value& v = e.payload[col];
      if (v.is_string() && !v.is_interned()) v = Value::Interned(v.AsString());
    }
    events.push_back(std::move(e));
  }
  return events;
}

Result<std::vector<Row>> RowsFromEvents(const std::vector<Event>& events,
                                        bool interval_layout) {
  std::vector<Row> rows;
  rows.reserve(events.size());
  for (const Event& e : events) {
    TIMR_ASSIGN_OR_RETURN(Row r, RowFromEvent(e, interval_layout));
    rows.push_back(std::move(r));
  }
  return rows;
}

}  // namespace timr::temporal
