// Stateless operators: Select (filter), Project, AlterLifetime (windowing),
// and Passthrough (the wiring form of Multicast). Paper §II-A.2.
//
// All of these override OnBatch: a morsel is processed in one virtual call
// with events rewritten in place (see EventBatch::FilterEvents), and adjacent
// single-consumer chains of them are fused by the executor into one
// FusedStatelessOp so a batch crosses the whole chain in a single pass.

#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "temporal/expr.h"
#include "temporal/operator.h"

namespace timr::temporal {

/// \brief Filters events by a predicate over the payload. When constructed
/// from a structured SelectSpec, columnar batches are filtered by the
/// vectorized kernel; opaque predicates force row materialization.
class SelectOp : public UnaryOperator {
 public:
  explicit SelectOp(Predicate pred) : pred_(std::move(pred)) {}
  explicit SelectOp(SelectSpec spec)
      : pred_(MakeRowPredicate(spec)), spec_(std::move(spec)) {}

  void OnEvent(Event event) override {
    CountConsumed();
    const bool keep = spec_.has_value() ? EvalSelectRow(*spec_, event.payload)
                                        : pred_(event.payload);
    if (keep) Emit(std::move(event));
  }
  void OnCti(Timestamp t) override { EmitCti(t); }
  void OnBatch(EventBatch&& batch) override {
    CountConsumedN(batch.NumEvents());
    if (batch.columnar() && spec_.has_value()) {
      EvalSelectColumnar(batch.columnar_payload(), *spec_);
      batch.CompactColumnar();
      EmitBatch(std::move(batch));
      return;
    }
    batch.EnsureRows();
    if (spec_.has_value()) {
      const SelectSpec& spec = *spec_;
      batch.FilterEvents(
          [&spec](Event& e) { return EvalSelectRow(spec, e.payload); });
    } else {
      batch.FilterEvents([this](Event& e) { return pred_(e.payload); });
    }
    EmitBatch(std::move(batch));
  }

 private:
  Predicate pred_;
  std::optional<SelectSpec> spec_;
};

/// \brief Stateless payload transformation (schema change). A structured
/// ProjectSpec enables the columnar column-copy/arithmetic kernel.
class ProjectOp : public UnaryOperator {
 public:
  explicit ProjectOp(ProjectFn fn) : fn_(std::move(fn)) {}
  ProjectOp(ProjectSpec spec, const Schema& in_schema)
      : fn_(MakeRowProjector(spec, in_schema)), spec_(std::move(spec)) {}

  void OnEvent(Event event) override {
    CountConsumed();
    event.payload = fn_(event.payload);
    Emit(std::move(event));
  }
  void OnCti(Timestamp t) override { EmitCti(t); }
  void OnBatch(EventBatch&& batch) override {
    CountConsumedN(batch.NumEvents());
    if (batch.columnar() && spec_.has_value()) {
      ApplyProjectColumnar(batch.columnar_payload(), *spec_);
      EmitBatch(std::move(batch));
      return;
    }
    batch.EnsureRows();
    for (Event& e : batch.events()) e.payload = fn_(e.payload);
    EmitBatch(std::move(batch));
  }

 private:
  ProjectFn fn_;
  std::optional<ProjectSpec> spec_;
};

/// \brief How AlterLifetime rewrites event lifetimes.
struct AlterLifetimeSpec {
  enum class Mode : uint8_t {
    kShift,          // le += shift; re += shift
    kWindow,         // re = le + window (sliding window of width `window`)
    kHop,            // snap to hop grid: visible at every boundary b (multiple
                     // of `hop`) with original timestamp in (b - window, b]
    kPoint,          // re = le + kTick
    kShiftAndWindow  // le += shift; re = le + window
  };

  Mode mode = Mode::kWindow;
  Timestamp shift = 0;
  Timestamp window = 0;
  Timestamp hop = 0;

  static AlterLifetimeSpec Shift(Timestamp s) {
    return {Mode::kShift, s, 0, 0};
  }
  static AlterLifetimeSpec Window(Timestamp w) {
    return {Mode::kWindow, 0, w, 0};
  }
  static AlterLifetimeSpec HoppingWindow(Timestamp w, Timestamp h) {
    return {Mode::kHop, 0, w, h};
  }
  static AlterLifetimeSpec ToPoint() { return {Mode::kPoint, 0, 0, 0}; }
  static AlterLifetimeSpec ShiftAndWindow(Timestamp s, Timestamp w) {
    return {Mode::kShiftAndWindow, s, w, 0};
  }

  /// Maximum lifetime duration this spec can produce from a point event;
  /// TiMR's temporal partitioning uses it as the span overlap (paper §III-B).
  Timestamp MaxWindow() const {
    switch (mode) {
      case Mode::kShift: return kTick;
      case Mode::kWindow: return window;
      case Mode::kHop: return window + hop;
      case Mode::kPoint: return kTick;
      case Mode::kShiftAndWindow: return window;
    }
    return kTick;
  }
};

/// Next multiple of `hop` that is >= t (t may be negative).
inline Timestamp CeilToGrid(Timestamp t, Timestamp hop) {
  Timestamp q = t / hop;
  if (q * hop < t) ++q;
  return q * hop;
}

/// Rewrite one event's lifetime per `spec`; returns false when the event is
/// dropped (kHop events that touch no boundary). All modes apply a constant,
/// monotone transformation to LE, so input LE order is preserved.
inline bool ApplyLifetime(const AlterLifetimeSpec& spec, Event& event) {
  switch (spec.mode) {
    case AlterLifetimeSpec::Mode::kShift:
      event.le += spec.shift;
      event.re += spec.shift;
      break;
    case AlterLifetimeSpec::Mode::kWindow:
      event.re = event.le + spec.window;
      break;
    case AlterLifetimeSpec::Mode::kHop: {
      // Original timestamp t contributes to boundaries b in [t, t + window),
      // b on the hop grid. Lifetime becomes the span of those boundaries.
      const Timestamp t = event.le;
      const Timestamp first = CeilToGrid(t, spec.hop);
      const Timestamp last = CeilToGrid(t + spec.window, spec.hop);
      if (first >= last) return false;  // contributes to no boundary
      event.le = first;
      event.re = last;
      break;
    }
    case AlterLifetimeSpec::Mode::kPoint:
      event.re = event.le + kTick;
      break;
    case AlterLifetimeSpec::Mode::kShiftAndWindow:
      event.le += spec.shift;
      event.re = event.le + spec.window;
      break;
  }
  return true;
}

/// The (monotone) CTI image of `spec`'s LE transformation.
inline Timestamp MapLifetimeCti(const AlterLifetimeSpec& spec, Timestamp t) {
  switch (spec.mode) {
    case AlterLifetimeSpec::Mode::kShift:
    case AlterLifetimeSpec::Mode::kShiftAndWindow:
      return t >= kMaxTime ? kMaxTime : t + spec.shift;
    case AlterLifetimeSpec::Mode::kHop:
      return t >= kMaxTime ? kMaxTime : CeilToGrid(t, spec.hop);
    case AlterLifetimeSpec::Mode::kWindow:
    case AlterLifetimeSpec::Mode::kPoint:
      return t;
  }
  return t;
}

/// \brief Adjusts event lifetimes (the windowing primitive). Input LE order —
/// and therefore the engine's ordering invariant — is preserved without a
/// reorder buffer, and the CTI maps through the same transformation.
class AlterLifetimeOp : public UnaryOperator {
 public:
  explicit AlterLifetimeOp(AlterLifetimeSpec spec) : spec_(spec) {
    TIMR_CHECK(spec_.mode != AlterLifetimeSpec::Mode::kHop || spec_.hop > 0);
  }

  void OnEvent(Event event) override {
    CountConsumed();
    if (ApplyLifetime(spec_, event)) Emit(std::move(event));
  }

  void OnCti(Timestamp t) override { EmitCti(MapLifetimeCti(spec_, t)); }

  void OnBatch(EventBatch&& batch) override {
    CountConsumedN(batch.NumEvents());
    if (batch.columnar()) {
      if (ApplyAlterColumnar(batch.columnar_payload(), spec_)) {
        batch.CompactColumnar();
      }
      batch.TransformCtis(
          [this](Timestamp t) { return MapLifetimeCti(spec_, t); });
      EmitBatch(std::move(batch));
      return;
    }
    batch.FilterEvents([this](Event& e) { return ApplyLifetime(spec_, e); });
    batch.TransformCtis([this](Timestamp t) { return MapLifetimeCti(spec_, t); });
    EmitBatch(std::move(batch));
  }

 private:
  AlterLifetimeSpec spec_;
};

/// \brief Identity operator; exists so Multicast and Exchange have a physical
/// node when a plan is executed single-node.
class PassthroughOp : public UnaryOperator {
 public:
  void OnEvent(Event event) override {
    CountConsumed();
    Emit(std::move(event));
  }
  void OnCti(Timestamp t) override { EmitCti(t); }
  void OnBatch(EventBatch&& batch) override {
    CountConsumedN(batch.NumEvents());
    EmitBatch(std::move(batch));
  }
};

/// \brief A fused chain of adjacent stateless operators (built by the
/// executor for Select/Project/AlterLifetime runs with single-consumer
/// interior nodes): one operator, one virtual hop, one in-place pass per
/// batch, applying every step in pipeline order.
///
/// Event accounting mirrors the unfused chain: an input event counts as
/// consumed once per step it reaches, so the Figure 15 engine-events metric
/// is unchanged by fusion.
class FusedStatelessOp : public UnaryOperator {
 public:
  struct Step {
    enum class Kind : uint8_t { kSelect, kProject, kAlter };
    Kind kind;
    Predicate pred;           // kSelect
    ProjectFn fn;             // kProject
    AlterLifetimeSpec alter;  // kAlter
    std::optional<SelectSpec> select_spec;    // kSelect columnar kernel
    std::optional<ProjectSpec> project_spec;  // kProject columnar kernel

    static Step Select(Predicate p,
                       std::optional<SelectSpec> spec = std::nullopt) {
      Step s;
      s.kind = Kind::kSelect;
      s.pred = std::move(p);
      s.select_spec = std::move(spec);
      return s;
    }
    static Step Project(ProjectFn f,
                        std::optional<ProjectSpec> spec = std::nullopt) {
      Step s;
      s.kind = Kind::kProject;
      s.fn = std::move(f);
      s.project_spec = std::move(spec);
      return s;
    }
    static Step Alter(AlterLifetimeSpec spec) {
      Step s;
      s.kind = Kind::kAlter;
      s.alter = spec;
      return s;
    }

    /// Whether this step has a columnar kernel.
    bool Columnar() const {
      switch (kind) {
        case Kind::kSelect: return select_spec.has_value();
        case Kind::kProject: return project_spec.has_value();
        case Kind::kAlter: return true;
      }
      return false;
    }
  };

  /// `steps` in pipeline (execution) order.
  explicit FusedStatelessOp(std::vector<Step> steps)
      : steps_(std::move(steps)) {
    TIMR_CHECK(!steps_.empty());
  }

  void OnEvent(Event event) override {
    if (ApplyFrom(event, 0)) Emit(std::move(event));
  }

  void OnCti(Timestamp t) override { EmitCti(MapCtiFrom(t, 0)); }

  void OnBatch(EventBatch&& batch) override {
    size_t start = 0;
    if (batch.columnar()) {
      // Run the columnar-capable prefix of the chain via kernels; on the
      // first step without one, materialize and finish on the row path.
      for (; start < steps_.size() && steps_[start].Columnar(); ++start) {
        const Step& step = steps_[start];
        CountConsumedN(batch.NumEvents());
        switch (step.kind) {
          case Step::Kind::kSelect:
            EvalSelectColumnar(batch.columnar_payload(), *step.select_spec);
            batch.CompactColumnar();
            break;
          case Step::Kind::kProject:
            ApplyProjectColumnar(batch.columnar_payload(), *step.project_spec);
            break;
          case Step::Kind::kAlter:
            if (ApplyAlterColumnar(batch.columnar_payload(), step.alter)) {
              batch.CompactColumnar();
            }
            batch.TransformCtis([&step](Timestamp t) {
              return MapLifetimeCti(step.alter, t);
            });
            break;
        }
      }
      if (start == steps_.size()) {
        EmitBatch(std::move(batch));
        return;
      }
      batch.EnsureRows();
    }
    batch.FilterEvents([this, start](Event& e) { return ApplyFrom(e, start); });
    batch.TransformCtis(
        [this, start](Timestamp t) { return MapCtiFrom(t, start); });
    EmitBatch(std::move(batch));
  }

  size_t num_steps() const { return steps_.size(); }

 private:
  bool ApplyFrom(Event& event, size_t start) {
    for (size_t i = start; i < steps_.size(); ++i) {
      const Step& step = steps_[i];
      CountConsumed();  // the unfused operator for this step would consume it
      switch (step.kind) {
        case Step::Kind::kSelect:
          if (step.select_spec.has_value()
                  ? !EvalSelectRow(*step.select_spec, event.payload)
                  : !step.pred(event.payload)) {
            return false;
          }
          break;
        case Step::Kind::kProject:
          event.payload = step.fn(event.payload);
          break;
        case Step::Kind::kAlter:
          if (!ApplyLifetime(step.alter, event)) return false;
          break;
      }
    }
    return true;
  }

  Timestamp MapCtiFrom(Timestamp t, size_t start) const {
    for (size_t i = start; i < steps_.size(); ++i) {
      if (steps_[i].kind == Step::Kind::kAlter) {
        t = MapLifetimeCti(steps_[i].alter, t);
      }
    }
    return t;
  }

  std::vector<Step> steps_;
};

}  // namespace timr::temporal
