// Stateless operators: Select (filter), Project, AlterLifetime (windowing),
// and Passthrough (the wiring form of Multicast). Paper §II-A.2.

#pragma once

#include <functional>
#include <utility>

#include "temporal/operator.h"

namespace timr::temporal {

using Predicate = std::function<bool(const Row&)>;
using ProjectFn = std::function<Row(const Row&)>;

/// \brief Filters events by a predicate over the payload.
class SelectOp : public UnaryOperator {
 public:
  explicit SelectOp(Predicate pred) : pred_(std::move(pred)) {}

  void OnEvent(Event event) override {
    CountConsumed();
    if (pred_(event.payload)) Emit(std::move(event));
  }
  void OnCti(Timestamp t) override { EmitCti(t); }

 private:
  Predicate pred_;
};

/// \brief Stateless payload transformation (schema change).
class ProjectOp : public UnaryOperator {
 public:
  explicit ProjectOp(ProjectFn fn) : fn_(std::move(fn)) {}

  void OnEvent(Event event) override {
    CountConsumed();
    event.payload = fn_(event.payload);
    Emit(std::move(event));
  }
  void OnCti(Timestamp t) override { EmitCti(t); }

 private:
  ProjectFn fn_;
};

/// \brief How AlterLifetime rewrites event lifetimes.
struct AlterLifetimeSpec {
  enum class Mode {
    kShift,          // le += shift; re += shift
    kWindow,         // re = le + window (sliding window of width `window`)
    kHop,            // snap to hop grid: visible at every boundary b (multiple
                     // of `hop`) with original timestamp in (b - window, b]
    kPoint,          // re = le + kTick
    kShiftAndWindow  // le += shift; re = le + window
  };

  Mode mode = Mode::kWindow;
  Timestamp shift = 0;
  Timestamp window = 0;
  Timestamp hop = 0;

  static AlterLifetimeSpec Shift(Timestamp s) {
    return {Mode::kShift, s, 0, 0};
  }
  static AlterLifetimeSpec Window(Timestamp w) {
    return {Mode::kWindow, 0, w, 0};
  }
  static AlterLifetimeSpec HoppingWindow(Timestamp w, Timestamp h) {
    return {Mode::kHop, 0, w, h};
  }
  static AlterLifetimeSpec ToPoint() { return {Mode::kPoint, 0, 0, 0}; }
  static AlterLifetimeSpec ShiftAndWindow(Timestamp s, Timestamp w) {
    return {Mode::kShiftAndWindow, s, w, 0};
  }

  /// Maximum lifetime duration this spec can produce from a point event;
  /// TiMR's temporal partitioning uses it as the span overlap (paper §III-B).
  Timestamp MaxWindow() const {
    switch (mode) {
      case Mode::kShift: return kTick;
      case Mode::kWindow: return window;
      case Mode::kHop: return window + hop;
      case Mode::kPoint: return kTick;
      case Mode::kShiftAndWindow: return window;
    }
    return kTick;
  }
};

/// Next multiple of `hop` that is >= t (t may be negative).
inline Timestamp CeilToGrid(Timestamp t, Timestamp hop) {
  Timestamp q = t / hop;
  if (q * hop < t) ++q;
  return q * hop;
}

/// \brief Adjusts event lifetimes (the windowing primitive). All modes apply a
/// constant, monotone transformation to LE, so input LE order — and therefore
/// the engine's ordering invariant — is preserved without a reorder buffer,
/// and the CTI maps through the same transformation.
class AlterLifetimeOp : public UnaryOperator {
 public:
  explicit AlterLifetimeOp(AlterLifetimeSpec spec) : spec_(spec) {
    TIMR_CHECK(spec_.mode != AlterLifetimeSpec::Mode::kHop || spec_.hop > 0);
  }

  void OnEvent(Event event) override {
    CountConsumed();
    switch (spec_.mode) {
      case AlterLifetimeSpec::Mode::kShift:
        event.le += spec_.shift;
        event.re += spec_.shift;
        break;
      case AlterLifetimeSpec::Mode::kWindow:
        event.re = event.le + spec_.window;
        break;
      case AlterLifetimeSpec::Mode::kHop: {
        // Original timestamp t contributes to boundaries b in [t, t + window),
        // b on the hop grid. Lifetime becomes the span of those boundaries.
        const Timestamp t = event.le;
        const Timestamp first = CeilToGrid(t, spec_.hop);
        const Timestamp last = CeilToGrid(t + spec_.window, spec_.hop);
        if (first >= last) return;  // contributes to no boundary
        event.le = first;
        event.re = last;
        break;
      }
      case AlterLifetimeSpec::Mode::kPoint:
        event.re = event.le + kTick;
        break;
      case AlterLifetimeSpec::Mode::kShiftAndWindow:
        event.le += spec_.shift;
        event.re = event.le + spec_.window;
        break;
    }
    Emit(std::move(event));
  }

  void OnCti(Timestamp t) override {
    switch (spec_.mode) {
      case AlterLifetimeSpec::Mode::kShift:
      case AlterLifetimeSpec::Mode::kShiftAndWindow:
        if (t >= kMaxTime) {
          EmitCti(kMaxTime);
        } else {
          EmitCti(t + spec_.shift);
        }
        break;
      case AlterLifetimeSpec::Mode::kHop:
        EmitCti(t >= kMaxTime ? kMaxTime : CeilToGrid(t, spec_.hop));
        break;
      case AlterLifetimeSpec::Mode::kWindow:
      case AlterLifetimeSpec::Mode::kPoint:
        EmitCti(t);
        break;
    }
  }

 private:
  AlterLifetimeSpec spec_;
};

/// \brief Identity operator; exists so Multicast and Exchange have a physical
/// node when a plan is executed single-node.
class PassthroughOp : public UnaryOperator {
 public:
  void OnEvent(Event event) override {
    CountConsumed();
    Emit(std::move(event));
  }
  void OnCti(Timestamp t) override { EmitCti(t); }
};

}  // namespace timr::temporal
