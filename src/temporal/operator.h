// Operator framework for the temporal engine.
//
// A stream is delivered to an operator as a sequence of events in
// non-decreasing LE order, interleaved with CTI (current-time-increment)
// punctuations. CTI(t) promises that no later event on that input will carry
// LE < t; operators use it to finalize snapshots, purge join synopses, and
// fire window boundaries. Every operator in turn emits its own output events
// in non-decreasing LE order with its own CTIs, so the invariant composes
// through arbitrary plans. This is the published StreamInsight/CEDR execution
// discipline the paper builds on.

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "common/logging.h"
#include "temporal/event.h"

namespace timr::temporal {

/// \brief Consumer of one punctuated event stream.
///
/// Streams are delivered either per item (OnEvent/OnCti) or in morsels
/// (OnBatch). A batch is by definition equivalent to the per-item call
/// sequence it contains, and the default OnBatch replays it exactly that way
/// — so every sink supports batches, and batched producers compose with
/// per-event consumers for free. Hot operators override OnBatch to amortize
/// virtual dispatch and process events in place (see stateless_ops.h).
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void OnEvent(Event event) = 0;
  virtual void OnCti(Timestamp t) = 0;
  virtual void OnBatch(EventBatch&& batch) {
    batch.Drain([this](Event&& e) { OnEvent(std::move(e)); },
                [this](Timestamp t) { OnCti(t); });
  }
};

/// \brief Base for engine operators: owns downstream wiring and enforces the
/// ordered-emission invariant.
class Operator {
 public:
  virtual ~Operator() = default;

  /// Sink to feed for input port `i` (0 for unary operators).
  virtual EventSink* InputPort(int i) = 0;
  virtual int num_inputs() const = 0;

  void AddOutput(EventSink* sink) { outputs_.push_back(sink); }

  /// Number of events this operator has emitted; used by throughput benches.
  uint64_t events_emitted() const { return events_emitted_; }
  uint64_t events_consumed() const { return events_consumed_; }

 protected:
  void Emit(Event event) {
    TIMR_DCHECK(event.le >= emitted_cti_)
        << "operator emitted event at " << event.le
        << " after promising CTI " << emitted_cti_;
    TIMR_DCHECK(event.le >= last_emitted_le_) << "out-of-order emission";
    last_emitted_le_ = event.le;
    ++events_emitted_;
    const size_t n = outputs_.size();
    if (n == 0) return;
    // Copy for all but the last sink; the last takes ownership, so the common
    // single-output chain moves payloads end to end with zero copies.
    for (size_t i = 0; i + 1 < n; ++i) outputs_[i]->OnEvent(event);
    outputs_[n - 1]->OnEvent(std::move(event));
  }

  /// Batch form of Emit/EmitCti: validates the same discipline, updates the
  /// same counters, and fans out with copy-for-all-but-last semantics.
  void EmitBatch(EventBatch&& batch) {
    if (batch.Empty()) return;
    Timestamp cti = emitted_cti_;
    batch.RemoveStaleCtis(&cti);
#ifndef NDEBUG
    {
      Timestamp floor = emitted_cti_;
      Timestamp last_le = last_emitted_le_;
      size_t m = 0;
      const auto& marks = batch.ctis();
      for (size_t i = 0; i < batch.NumEvents(); ++i) {
        for (; m < marks.size() && marks[m].pos <= i; ++m) floor = marks[m].t;
        const Timestamp le = batch.LeAt(i);
        TIMR_DCHECK(le >= floor) << "operator emitted event at " << le
                                 << " after promising CTI " << floor;
        TIMR_DCHECK(le >= last_le) << "out-of-order emission";
        last_le = le;
      }
    }
#endif
    if (batch.NumEvents() != 0) {
      last_emitted_le_ = batch.LastLe();
      events_emitted_ += batch.NumEvents();
    }
    emitted_cti_ = cti;
    if (batch.Empty()) return;  // everything was stale punctuation
    const size_t n = outputs_.size();
    if (n == 0) return;
    for (size_t i = 0; i + 1 < n; ++i) outputs_[i]->OnBatch(batch.Clone());
    outputs_[n - 1]->OnBatch(std::move(batch));
  }

  void EmitCti(Timestamp t) {
    if (t <= emitted_cti_) return;  // CTIs must advance; drop stale ones
    emitted_cti_ = t;
    for (EventSink* out : outputs_) out->OnCti(t);
  }

  void CountConsumed() { ++events_consumed_; }
  void CountConsumedN(uint64_t n) { events_consumed_ += n; }

  Timestamp emitted_cti() const { return emitted_cti_; }

 private:
  std::vector<EventSink*> outputs_;
  Timestamp emitted_cti_ = kMinTime;
  Timestamp last_emitted_le_ = kMinTime;
  uint64_t events_emitted_ = 0;
  uint64_t events_consumed_ = 0;
};

/// \brief Base for single-input operators: the operator is its own input port.
class UnaryOperator : public Operator, public EventSink {
 public:
  EventSink* InputPort(int i) override {
    TIMR_DCHECK(i == 0);
    return this;
  }
  int num_inputs() const override { return 1; }
};

/// \brief Merges two punctuated inputs into one globally LE-ordered sequence.
///
/// A buffered event from one side is released only once the other side can no
/// longer produce an event with LE <= it (its CTI has passed, or its next
/// buffered event is later). On LE ties the *right* input (index 1) drains
/// first — AntiSemiJoin correctness requires right-side insertions at time t
/// to precede the left-side containment decision at t.
class BinaryOperator : public Operator {
 public:
  BinaryOperator() : ports_{Port(this, 0), Port(this, 1)} {}

  EventSink* InputPort(int i) override {
    TIMR_DCHECK(i == 0 || i == 1);
    return &ports_[i];
  }
  int num_inputs() const override { return 2; }

 protected:
  /// Called with events in merged LE order (ties: side 1 first). `key_hash`
  /// is the precomputed hash of the event's key columns for this side
  /// (HashKeyOf-compatible), or 0 when unknown — implementations must treat 0
  /// as "compute it yourself".
  virtual void ProcessMerged(int side, Event event, uint64_t key_hash) = 0;

  /// Called when the merged watermark advances: no future ProcessMerged call
  /// will carry an event with LE < t.
  virtual void ProcessWatermark(Timestamp t) = 0;

  /// Key columns this operator hashes on side `side`, or nullptr when it does
  /// not key its inputs. When non-null, columnar input batches get their key
  /// hashes computed in bulk before materialization.
  virtual const std::vector<int>* PortKeyIndices(int side) const {
    (void)side;
    return nullptr;
  }

 private:
  struct Buffered {
    Event event;
    uint64_t hash;  // precomputed key hash, 0 when unknown
  };

  struct Port : public EventSink {
    Port(BinaryOperator* op_in, int side_in) : op(op_in), side(side_in) {}
    void OnEvent(Event event) override {
      Push(std::move(event), 0);
      op->Drain();
    }
    void OnCti(Timestamp t) override {
      if (t <= cti) return;
      cti = t;
      op->Drain();
    }
    void OnBatch(EventBatch&& batch) override {
      // Bulk-buffer the whole morsel with one Drain at the end. The merged
      // event order is unchanged (it is determined by LE / side preference /
      // FIFO alone); intermediate CTIs coarsen to the batch boundary, which
      // every operator tolerates by CTI-granularity invariance.
      const std::vector<int>* keys = op->PortKeyIndices(side);
      if (batch.columnar() && keys != nullptr) {
        ComputeKeyHashes(batch.columnar_payload(), *keys, &hash_scratch);
      } else {
        hash_scratch.clear();
      }
      batch.EnsureRows();
      auto& events = batch.events();
      const auto& marks = batch.ctis();
      size_t m = 0;
      for (size_t i = 0; i < events.size(); ++i) {
        for (; m < marks.size() && marks[m].pos <= i; ++m) {
          if (marks[m].t > cti) cti = marks[m].t;
        }
        Push(std::move(events[i]),
             i < hash_scratch.size() ? hash_scratch[i] : 0);
      }
      for (; m < marks.size(); ++m) {
        if (marks[m].t > cti) cti = marks[m].t;
      }
      batch.Clear();
      op->Drain();
    }
    void Push(Event event, uint64_t hash) {
      TIMR_DCHECK(event.le >= last_le) << "input not LE-ordered";
      TIMR_DCHECK(event.le >= cti) << "input event violates its CTI";
      last_le = event.le;
      op->CountConsumed();
      buffer.push_back(Buffered{std::move(event), hash});
    }
    BinaryOperator* op;
    int side;
    std::deque<Buffered> buffer;
    std::vector<uint64_t> hash_scratch;
    Timestamp cti = kMinTime;
    Timestamp last_le = kMinTime;
  };

  // Lower bound on the LE of any event side `i` may still deliver.
  Timestamp Frontier(int i) const {
    const Port& p = ports_[i];
    return p.buffer.empty() ? p.cti : p.buffer.front().event.le;
  }

  void Drain() {
    if (draining_) return;  // Drain is not re-entrant
    draining_ = true;
    while (true) {
      int pick = -1;
      // Prefer side 1 on ties (see class comment).
      for (int side : {1, 0}) {
        Port& p = ports_[side];
        if (p.buffer.empty()) continue;
        if (pick == -1 ||
            p.buffer.front().event.le < ports_[pick].buffer.front().event.le) {
          pick = side;
        }
      }
      if (pick == -1) break;
      const Timestamp le = ports_[pick].buffer.front().event.le;
      const int other = 1 - pick;
      // The other side may still produce an event with LE <= le: wait.
      if (ports_[other].buffer.empty() && ports_[other].cti <= le) break;
      Buffered b = std::move(ports_[pick].buffer.front());
      ports_[pick].buffer.pop_front();
      ProcessMerged(pick, std::move(b.event), b.hash);
    }
    const Timestamp watermark = std::min(Frontier(0), Frontier(1));
    if (watermark > watermark_) {
      watermark_ = watermark;
      ProcessWatermark(watermark);
    }
    draining_ = false;
  }

  Port ports_[2];
  Timestamp watermark_ = kMinTime;
  bool draining_ = false;
};

/// \brief Terminal sink that appends events to a vector (used by executors and
/// tests to collect plan output).
class CollectorSink : public EventSink {
 public:
  void OnEvent(Event event) override {
    Materialize();
    events_.push_back(std::move(event));
  }
  void OnCti(Timestamp t) override { last_cti_ = t; }
  void OnBatch(EventBatch&& batch) override {
    if (!batch.ctis().empty()) last_cti_ = batch.ctis().back().t;
    if (batch.columnar()) {
      // Defer materialization: rows are built lazily in events()/TakeEvents,
      // outside the engine's hot loop, so a columnar pipeline stays
      // allocation-free end to end.
      batches_.push_back(std::move(batch));
      return;
    }
    Materialize();
    events_.insert(events_.end(),
                   std::make_move_iterator(batch.events().begin()),
                   std::make_move_iterator(batch.events().end()));
    batch.Clear();
  }

  const std::vector<Event>& events() const {
    Materialize();
    return events_;
  }
  std::vector<Event> TakeEvents() {
    Materialize();
    return std::move(events_);
  }
  Timestamp last_cti() const { return last_cti_; }

 private:
  void Materialize() const {
    for (EventBatch& b : batches_) {
      b.EnsureRows();
      events_.insert(events_.end(),
                     std::make_move_iterator(b.events().begin()),
                     std::make_move_iterator(b.events().end()));
      b.Clear();
    }
    batches_.clear();
  }

  mutable std::vector<Event> events_;
  mutable std::vector<EventBatch> batches_;
  Timestamp last_cti_ = kMinTime;
};

/// \brief Sink that forwards to a user callback (used for live/push mode).
class CallbackSink : public EventSink {
 public:
  using EventFn = std::function<void(const Event&)>;
  using CtiFn = std::function<void(Timestamp)>;

  explicit CallbackSink(EventFn on_event, CtiFn on_cti = nullptr)
      : on_event_(std::move(on_event)), on_cti_(std::move(on_cti)) {}

  void OnEvent(Event event) override { on_event_(event); }
  void OnCti(Timestamp t) override {
    if (on_cti_) on_cti_(t);
  }

 private:
  EventFn on_event_;
  CtiFn on_cti_;
};

}  // namespace timr::temporal
