// Operator framework for the temporal engine.
//
// A stream is delivered to an operator as a sequence of events in
// non-decreasing LE order, interleaved with CTI (current-time-increment)
// punctuations. CTI(t) promises that no later event on that input will carry
// LE < t; operators use it to finalize snapshots, purge join synopses, and
// fire window boundaries. Every operator in turn emits its own output events
// in non-decreasing LE order with its own CTIs, so the invariant composes
// through arbitrary plans. This is the published StreamInsight/CEDR execution
// discipline the paper builds on.

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "common/logging.h"
#include "temporal/event.h"

namespace timr::temporal {

/// \brief Consumer of one punctuated event stream.
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void OnEvent(Event event) = 0;
  virtual void OnCti(Timestamp t) = 0;
};

/// \brief Base for engine operators: owns downstream wiring and enforces the
/// ordered-emission invariant.
class Operator {
 public:
  virtual ~Operator() = default;

  /// Sink to feed for input port `i` (0 for unary operators).
  virtual EventSink* InputPort(int i) = 0;
  virtual int num_inputs() const = 0;

  void AddOutput(EventSink* sink) { outputs_.push_back(sink); }

  /// Number of events this operator has emitted; used by throughput benches.
  uint64_t events_emitted() const { return events_emitted_; }
  uint64_t events_consumed() const { return events_consumed_; }

 protected:
  void Emit(Event event) {
    TIMR_DCHECK(event.le >= emitted_cti_)
        << "operator emitted event at " << event.le
        << " after promising CTI " << emitted_cti_;
    TIMR_DCHECK(event.le >= last_emitted_le_) << "out-of-order emission";
    last_emitted_le_ = event.le;
    ++events_emitted_;
    for (EventSink* out : outputs_) out->OnEvent(event);
  }

  void EmitCti(Timestamp t) {
    if (t <= emitted_cti_) return;  // CTIs must advance; drop stale ones
    emitted_cti_ = t;
    for (EventSink* out : outputs_) out->OnCti(t);
  }

  void CountConsumed() { ++events_consumed_; }

  Timestamp emitted_cti() const { return emitted_cti_; }

 private:
  std::vector<EventSink*> outputs_;
  Timestamp emitted_cti_ = kMinTime;
  Timestamp last_emitted_le_ = kMinTime;
  uint64_t events_emitted_ = 0;
  uint64_t events_consumed_ = 0;
};

/// \brief Base for single-input operators: the operator is its own input port.
class UnaryOperator : public Operator, public EventSink {
 public:
  EventSink* InputPort(int i) override {
    TIMR_DCHECK(i == 0);
    return this;
  }
  int num_inputs() const override { return 1; }
};

/// \brief Merges two punctuated inputs into one globally LE-ordered sequence.
///
/// A buffered event from one side is released only once the other side can no
/// longer produce an event with LE <= it (its CTI has passed, or its next
/// buffered event is later). On LE ties the *right* input (index 1) drains
/// first — AntiSemiJoin correctness requires right-side insertions at time t
/// to precede the left-side containment decision at t.
class BinaryOperator : public Operator {
 public:
  BinaryOperator() : ports_{Port(this, 0), Port(this, 1)} {}

  EventSink* InputPort(int i) override {
    TIMR_DCHECK(i == 0 || i == 1);
    return &ports_[i];
  }
  int num_inputs() const override { return 2; }

 protected:
  /// Called with events in merged LE order (ties: side 1 first).
  virtual void ProcessMerged(int side, Event event) = 0;

  /// Called when the merged watermark advances: no future ProcessMerged call
  /// will carry an event with LE < t.
  virtual void ProcessWatermark(Timestamp t) = 0;

 private:
  struct Port : public EventSink {
    Port(BinaryOperator* op_in, int side_in) : op(op_in), side(side_in) {}
    void OnEvent(Event event) override {
      TIMR_DCHECK(event.le >= last_le) << "input not LE-ordered";
      TIMR_DCHECK(event.le >= cti) << "input event violates its CTI";
      last_le = event.le;
      op->CountConsumed();
      buffer.push_back(std::move(event));
      op->Drain();
    }
    void OnCti(Timestamp t) override {
      if (t <= cti) return;
      cti = t;
      op->Drain();
    }
    BinaryOperator* op;
    int side;
    std::deque<Event> buffer;
    Timestamp cti = kMinTime;
    Timestamp last_le = kMinTime;
  };

  // Lower bound on the LE of any event side `i` may still deliver.
  Timestamp Frontier(int i) const {
    const Port& p = ports_[i];
    return p.buffer.empty() ? p.cti : p.buffer.front().le;
  }

  void Drain() {
    if (draining_) return;  // Drain is not re-entrant
    draining_ = true;
    while (true) {
      int pick = -1;
      // Prefer side 1 on ties (see class comment).
      for (int side : {1, 0}) {
        Port& p = ports_[side];
        if (p.buffer.empty()) continue;
        if (pick == -1 || p.buffer.front().le < ports_[pick].buffer.front().le) {
          pick = side;
        }
      }
      if (pick == -1) break;
      const Timestamp le = ports_[pick].buffer.front().le;
      const int other = 1 - pick;
      // The other side may still produce an event with LE <= le: wait.
      if (ports_[other].buffer.empty() && ports_[other].cti <= le) break;
      Event ev = std::move(ports_[pick].buffer.front());
      ports_[pick].buffer.pop_front();
      ProcessMerged(pick, std::move(ev));
    }
    const Timestamp watermark = std::min(Frontier(0), Frontier(1));
    if (watermark > watermark_) {
      watermark_ = watermark;
      ProcessWatermark(watermark);
    }
    draining_ = false;
  }

  Port ports_[2];
  Timestamp watermark_ = kMinTime;
  bool draining_ = false;
};

/// \brief Terminal sink that appends events to a vector (used by executors and
/// tests to collect plan output).
class CollectorSink : public EventSink {
 public:
  void OnEvent(Event event) override { events_.push_back(std::move(event)); }
  void OnCti(Timestamp t) override { last_cti_ = t; }

  const std::vector<Event>& events() const { return events_; }
  std::vector<Event> TakeEvents() { return std::move(events_); }
  Timestamp last_cti() const { return last_cti_; }

 private:
  std::vector<Event> events_;
  Timestamp last_cti_ = kMinTime;
};

/// \brief Sink that forwards to a user callback (used for live/push mode).
class CallbackSink : public EventSink {
 public:
  using EventFn = std::function<void(const Event&)>;
  using CtiFn = std::function<void(Timestamp)>;

  explicit CallbackSink(EventFn on_event, CtiFn on_cti = nullptr)
      : on_event_(std::move(on_event)), on_cti_(std::move(on_cti)) {}

  void OnEvent(Event event) override { on_event_(event); }
  void OnCti(Timestamp t) override {
    if (on_cti_) on_cti_(t);
  }

 private:
  EventFn on_event_;
  CtiFn on_cti_;
};

}  // namespace timr::temporal
