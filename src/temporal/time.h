// Application-time definitions for the temporal algebra.
//
// All engine semantics are expressed over application time (a column of the
// data), never over wall-clock processing time. That is the property the paper
// leans on for (a) identical results offline under map-reduce and online over
// live feeds, and (b) safe reducer restart (TiMR §III-C.1).

#pragma once

#include <cstdint>

namespace timr::temporal {

/// Application timestamp. The unit is opaque to the engine; the BT workload
/// uses seconds.
using Timestamp = int64_t;

/// Smallest representable time unit (the paper's delta): a point event at t
/// has lifetime [t, t + kTick).
inline constexpr Timestamp kTick = 1;

/// Sentinels kept well inside the int64 range so that constant lifetime shifts
/// can never overflow.
inline constexpr Timestamp kMinTime = INT64_MIN / 4;
inline constexpr Timestamp kMaxTime = INT64_MAX / 4;

inline constexpr Timestamp kSecond = 1;
inline constexpr Timestamp kMinute = 60 * kSecond;
inline constexpr Timestamp kHour = 60 * kMinute;
inline constexpr Timestamp kDay = 24 * kHour;

}  // namespace timr::temporal
