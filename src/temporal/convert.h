// Row <-> event conversion, the boundary between the set-oriented map-reduce
// world and the temporal engine (paper §III-A step 4 and footnote 2: the first
// column of source/intermediate/output files is constrained to be Time).
//
// Two layouts:
//  - Point layout  [Time, payload...]        — source logs (all point events).
//  - Interval layout [Time, __REnd, payload...] — intermediate stage data, so
//    fragments whose outputs carry lifetimes round-trip losslessly (the
//    paper's "extension to interval events is straightforward").

#pragma once

#include <string>
#include <vector>

#include "common/row.h"
#include "common/status.h"
#include "temporal/event.h"

namespace timr::temporal {

/// Name of the synthesized right-endpoint column in interval layout.
inline constexpr const char* kREndColumn = "__REnd";
inline constexpr const char* kTimeColumn = "Time";

/// True if `schema` (a row schema) is in interval layout.
bool IsIntervalLayout(const Schema& schema);

/// Row schema for point layout: Time followed by the payload fields.
Schema PointRowSchema(const Schema& payload_schema);

/// Row schema for interval layout: Time, __REnd, then the payload fields.
Schema IntervalRowSchema(const Schema& payload_schema);

/// Payload schema obtained by stripping the layout columns from a row schema.
Result<Schema> PayloadSchemaOf(const Schema& row_schema);

/// Convert one data row to an event. Point layout rows become point events;
/// interval layout rows reconstruct [Time, __REnd).
Result<Event> EventFromRow(const Schema& row_schema, const Row& row);

/// Convert an event to a row in the given layout. Converting a non-point
/// event to point layout is an error (information loss).
Result<Row> RowFromEvent(const Event& event, bool interval_layout);

/// Bulk helpers.
Result<std::vector<Event>> EventsFromRows(const Schema& row_schema,
                                          const std::vector<Row>& rows);
Result<std::vector<Row>> RowsFromEvents(const std::vector<Event>& events,
                                        bool interval_layout);

}  // namespace timr::temporal
