// Fluent builder for temporal continuous queries — the reproduction's
// LINQ/StreamSQL-analogue programming surface (paper §III-A step 1).
//
// Example (the paper's RunningClickCount):
//
//   Query clicks = Query::Input("BtLog", kUnifiedSchema)
//                      .Where(Eq("StreamId", 1));
//   Query counts = clicks.GroupApply({"AdId"}, [](Query g) {
//     return g.Window(6 * kHour).Count("ClickCount");
//   });
//
// Schema errors in builder calls are programmer errors, not data errors, so
// they fail fast with TIMR_CHECK rather than returning Status.

#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "temporal/plan.h"

namespace timr::temporal {

class Query {
 public:
  explicit Query(PlanNodePtr node) : node_(std::move(node)) {}

  /// A named external source with the given schema. The Time column is engine
  /// metadata (it becomes the event LE) and is *not* part of the payload
  /// schema passed here.
  static Query Input(std::string name, Schema schema) {
    auto n = std::make_shared<PlanNode>();
    n->kind = OpKind::kInput;
    n->name = std::move(name);
    n->input_schema = std::move(schema);
    return Query(std::move(n));
  }

  const PlanNodePtr& node() const { return node_; }

  Schema schema() const {
    auto s = node_->OutputSchema();
    TIMR_CHECK(s.ok()) << s.status().ToString();
    return s.ValueOrDie();
  }

  /// Filter on a payload predicate. Opaque predicates run on the row path
  /// only; prefer Where(SelectSpec) / WhereCmp for filters the columnar
  /// kernels can evaluate.
  Query Where(Predicate pred) const {
    auto n = Child(OpKind::kSelect);
    n->pred = std::move(pred);
    return Query(std::move(n));
  }

  /// Structured filter: a conjunction of column-vs-literal compares. The plan
  /// node keeps both the spec (columnar kernel) and its synthesized row-path
  /// predicate, so execution mode never changes semantics.
  Query Where(SelectSpec spec) const {
    auto st = ValidateSelectSpec(spec, schema());
    TIMR_CHECK(st.ok()) << st.ToString();
    auto n = Child(OpKind::kSelect);
    n->pred = MakeRowPredicate(spec);
    n->select_spec = std::move(spec);
    return Query(std::move(n));
  }

  /// Filter `column <op> value` as a structured (columnar-capable) select.
  Query WhereCmp(const std::string& column, CmpOp op, Value value) const {
    SelectSpec spec;
    spec.conjuncts.push_back({Index(column), op, std::move(value)});
    return Where(std::move(spec));
  }

  /// Filter column == value (the common case; keeps the intent introspectable
  /// in examples). Uses the structured form when the literal's type matches
  /// the column (so the filter vectorizes); a mismatched literal keeps the
  /// legacy always-false row predicate.
  Query WhereEq(const std::string& column, Value value) const {
    const int idx = Index(column);
    if (value.type() == schema().field(idx).type) {
      return WhereCmp(column, CmpOp::kEq, std::move(value));
    }
    return Where([idx, value = std::move(value)](const Row& r) {
      return r[idx] == value;
    });
  }

  /// Stateless payload transformation.
  Query Project(ProjectFn fn, Schema out_schema) const {
    auto n = Child(OpKind::kProject);
    n->project_fn = std::move(fn);
    n->project_schema = std::move(out_schema);
    return Query(std::move(n));
  }

  /// Structured projection (column copies / constants / binary arithmetic);
  /// the output schema is inferred and the row-path function synthesized.
  Query Project(ProjectSpec spec) const {
    Schema in = schema();
    auto out = InferProjectSchema(spec, in);
    TIMR_CHECK(out.ok()) << out.status().ToString();
    auto n = Child(OpKind::kProject);
    n->project_fn = MakeRowProjector(spec, in);
    n->project_schema = out.ValueOrDie();
    n->project_spec = std::move(spec);
    return Query(std::move(n));
  }

  /// Keep only the named columns, in order (a structured projection, so it
  /// stays columnar).
  Query SelectColumns(const std::vector<std::string>& columns) const {
    Schema in = schema();
    auto idx_res = in.IndicesOf(columns);
    TIMR_CHECK(idx_res.ok()) << idx_res.status().ToString();
    std::vector<int> idx = idx_res.ValueOrDie();
    ProjectSpec spec;
    spec.exprs.reserve(idx.size());
    for (size_t i = 0; i < idx.size(); ++i) {
      spec.exprs.push_back(
          ProjectExpr::Column(in.field(idx[i]).name, idx[i]));
    }
    return Project(std::move(spec));
  }

  Query AlterLifetime(AlterLifetimeSpec spec) const {
    auto n = Child(OpKind::kAlterLifetime);
    n->alter = spec;
    return Query(std::move(n));
  }

  /// Sliding window: event influences output for `w` time units.
  Query Window(Timestamp w) const {
    return AlterLifetime(AlterLifetimeSpec::Window(w));
  }

  /// Hopping window: results refresh every `hop`, over the last `w` units.
  Query HoppingWindow(Timestamp w, Timestamp hop) const {
    return AlterLifetime(AlterLifetimeSpec::HoppingWindow(w, hop));
  }

  Query ShiftLifetime(Timestamp shift) const {
    return AlterLifetime(AlterLifetimeSpec::Shift(shift));
  }

  Query ToPointEvents() const {
    return AlterLifetime(AlterLifetimeSpec::ToPoint());
  }

  Query Aggregate(AggregateSpec spec) const {
    auto n = Child(OpKind::kAggregate);
    if (spec.kind != AggKind::kCount) Index(spec.value_column);  // validate
    n->agg = std::move(spec);
    return Query(std::move(n));
  }

  Query Count(std::string output_name = "count") const {
    return Aggregate(AggregateSpec::Count(std::move(output_name)));
  }
  Query Sum(const std::string& col, std::string output_name = "sum") const {
    return Aggregate(AggregateSpec::Sum(col, std::move(output_name)));
  }

  /// Apply `body` to each sub-stream of the grouping key; output rows are
  /// key columns followed by the sub-plan's output columns.
  Query GroupApply(std::vector<std::string> keys,
                   const std::function<Query(Query)>& body) const {
    auto n = Child(OpKind::kGroupApply);
    n->group_keys = keys;
    auto sub_in = std::make_shared<PlanNode>();
    sub_in->kind = OpKind::kSubplanInput;
    sub_in->input_schema = schema();
    n->subplan = body(Query(sub_in)).node();
    auto check = n->OutputSchema();
    TIMR_CHECK(check.ok()) << check.status().ToString();
    return Query(std::move(n));
  }

  static Query Union(const Query& a, const Query& b) {
    auto n = std::make_shared<PlanNode>();
    n->kind = OpKind::kUnion;
    n->children = {a.node_, b.node_};
    auto check = n->OutputSchema();
    TIMR_CHECK(check.ok()) << check.status().ToString();
    return Query(std::move(n));
  }

  static Query TemporalJoin(const Query& left, const Query& right,
                            std::vector<std::string> left_keys,
                            std::vector<std::string> right_keys,
                            JoinPredicate pred = nullptr,
                            JoinProjectFn project = nullptr,
                            Schema project_schema = Schema()) {
    auto n = std::make_shared<PlanNode>();
    n->kind = OpKind::kTemporalJoin;
    n->children = {left.node_, right.node_};
    n->left_keys = std::move(left_keys);
    n->right_keys = std::move(right_keys);
    n->join_pred = std::move(pred);
    n->join_project = std::move(project);
    n->join_schema = std::move(project_schema);
    auto check = n->OutputSchema();
    TIMR_CHECK(check.ok()) << check.status().ToString();
    return Query(std::move(n));
  }

  static Query AntiSemiJoin(const Query& left, const Query& right,
                            std::vector<std::string> left_keys,
                            std::vector<std::string> right_keys) {
    auto n = std::make_shared<PlanNode>();
    n->kind = OpKind::kAntiSemiJoin;
    n->children = {left.node_, right.node_};
    n->left_keys = std::move(left_keys);
    n->right_keys = std::move(right_keys);
    auto check = n->OutputSchema();
    TIMR_CHECK(check.ok()) << check.status().ToString();
    return Query(std::move(n));
  }

  /// Hopping-window user-defined operator (paper §II-A.2). Pass
  /// `order_insensitive = true` when `fn` is a function of the window
  /// *multiset* (does not depend on the order of its `active` argument); the
  /// determinism audit flags undeclared UDOs fed by merged streams.
  Query Udo(Timestamp window, Timestamp hop, UdoFn fn, Schema out_schema,
            bool order_insensitive = false) const {
    auto n = Child(OpKind::kUdo);
    n->udo_window = window;
    n->udo_hop = hop;
    n->udo_fn = std::move(fn);
    n->udo_schema = std::move(out_schema);
    n->udo_order_insensitive = order_insensitive;
    return Query(std::move(n));
  }

  /// Explicit annotation hint: repartition here (paper §III-A step 2 allows
  /// query-writer hints; the optimizer in timr/optimizer.h derives these
  /// automatically).
  Query Exchange(PartitionSpec spec) const {
    auto n = Child(OpKind::kExchange);
    n->exchange = std::move(spec);
    return Query(std::move(n));
  }

  /// Resolved index of `column` in this query's output schema.
  int Index(const std::string& column) const {
    auto idx = schema().IndexOf(column);
    TIMR_CHECK(idx.ok()) << idx.status().ToString();
    return idx.ValueOrDie();
  }

 private:
  PlanNodePtr Child(OpKind kind) const {
    auto n = std::make_shared<PlanNode>();
    n->kind = kind;
    n->children = {node_};
    return n;
  }

  PlanNodePtr node_;
};

}  // namespace timr::temporal
