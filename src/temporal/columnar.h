// Columnar payload layout for EventBatch (struct-of-arrays), plus the
// vectorized operator kernels that run over it.
//
// A columnar batch stores le/re timestamps and each payload field as its own
// contiguous vector (int64 / double / interned-string-id columns), with a
// validity bitmask doubling as the selection bitmap: kernels clear bits for
// dropped rows and one Compact() pass applies the selection while remapping
// the batch's positional CTI marks, exactly like EventBatch::FilterEvents
// does on the row path. String cells are dictionary-encoded per batch against
// the process-wide intern table, so equality compares and key hashing work on
// small integer ids with per-id content hashes precomputed once.
//
// The kernels (columnar.cc) are simple index loops the compiler can
// auto-vectorize at -O2; the TIMR_SIMD CMake toggle adds `#pragma omp simd`
// where it pays. Operators without a columnar implementation (UDOs, opaque
// std::function predicates) fall back to the row path automatically via
// EventBatch::EnsureRows().

#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "common/row.h"
#include "temporal/time.h"

namespace timr::temporal {

struct SelectSpec;
struct ProjectSpec;
struct AlterLifetimeSpec;

/// Per-batch string dictionary. Entries are interned Values (shared
/// allocations from the process-wide table), keyed by their canonical string
/// pointer, so interning the same content twice is a hash-map hit and the
/// content hash of every id is computed exactly once.
class StringDict {
 public:
  uint32_t Intern(const Value& v) {
    Value iv = v.is_interned() ? v : Value::Interned(v.AsString());
    const std::string* p = &iv.AsString();
    auto [it, inserted] =
        ids_.try_emplace(p, static_cast<uint32_t>(values_.size()));
    if (inserted) {
      hashes_.push_back(iv.Hash());
      values_.push_back(std::move(iv));
    }
    return it->second;
  }

  /// Id of `lit`'s content in this batch, or -1 when no cell equals it.
  int64_t Find(const Value& lit) const {
    Value iv = lit.is_interned() ? lit : Value::Interned(lit.AsString());
    // The pointer targets the process-wide intern table entry, which outlives
    // the temporary Value handle.
    auto it = ids_.find(&iv.AsString());
    return it == ids_.end() ? -1 : static_cast<int64_t>(it->second);
  }

  const Value& ValueAt(uint32_t id) const { return values_[id]; }
  uint64_t HashAt(uint32_t id) const { return hashes_[id]; }
  size_t size() const { return values_.size(); }

  void Clear() {
    values_.clear();
    hashes_.clear();
    ids_.clear();
  }

 private:
  std::vector<Value> values_;
  std::vector<uint64_t> hashes_;  // Value::Hash of each entry (content hash)
  std::unordered_map<const std::string*, uint32_t> ids_;
};

/// One payload column: exactly one of the typed vectors is populated,
/// matching `type`.
struct Column {
  ValueType type = ValueType::kInt64;
  std::vector<int64_t> i64;
  std::vector<double> f64;
  std::vector<uint32_t> sid;  // ids into the batch StringDict

  void ClearRows() {
    i64.clear();
    f64.clear();
    sid.clear();
  }
};

/// The struct-of-arrays half of EventBatch: le/re columns, typed payload
/// columns, the batch dictionary, and the validity/selection mask.
class ColumnarPayload {
 public:
  /// Reset to an empty batch with `payload_schema`'s column types. Keeps
  /// vector capacities (pooled reuse).
  void Begin(const Schema& payload_schema) {
    ClearAll();
    cols_.resize(payload_schema.num_fields());
    for (size_t i = 0; i < cols_.size(); ++i) {
      cols_[i].type = payload_schema.field(i).type;
      cols_[i].ClearRows();
    }
  }

  size_t num_rows() const { return le_.size(); }
  size_t num_cols() const { return cols_.size(); }

  /// Append one event if every cell's dynamic type matches its column;
  /// returns false (batch unchanged) otherwise — the caller then falls back
  /// to the row representation.
  bool TryAppend(Timestamp le, Timestamp re, const Row& payload) {
    TIMR_DCHECK(all_valid_) << "append after selection started";
    if (payload.size() != cols_.size()) return false;
    for (size_t c = 0; c < cols_.size(); ++c) {
      if (payload[c].type() != cols_[c].type) return false;
    }
    le_.push_back(le);
    re_.push_back(re);
    for (size_t c = 0; c < cols_.size(); ++c) {
      switch (cols_[c].type) {
        case ValueType::kInt64:
          cols_[c].i64.push_back(payload[c].AsInt64());
          break;
        case ValueType::kDouble:
          cols_[c].f64.push_back(payload[c].AsDouble());
          break;
        case ValueType::kString:
          cols_[c].sid.push_back(dict_.Intern(payload[c]));
          break;
      }
    }
    return true;
  }

  Value ValueAt(size_t r, size_t c) const {
    const Column& col = cols_[c];
    switch (col.type) {
      case ValueType::kInt64: return Value(col.i64[r]);
      case ValueType::kDouble: return Value(col.f64[r]);
      case ValueType::kString: return dict_.ValueAt(col.sid[r]);
    }
    return Value();
  }

  Row MaterializeRow(size_t r) const {
    Row row;
    row.reserve(cols_.size());
    for (size_t c = 0; c < cols_.size(); ++c) row.push_back(ValueAt(r, c));
    return row;
  }

  std::vector<Timestamp>& le() { return le_; }
  const std::vector<Timestamp>& le() const { return le_; }
  std::vector<Timestamp>& re() { return re_; }
  const std::vector<Timestamp>& re() const { return re_; }
  Column& col(size_t c) { return cols_[c]; }
  const Column& col(size_t c) const { return cols_[c]; }
  StringDict& dict() { return dict_; }
  const StringDict& dict() const { return dict_; }

  /// True while no selection is pending: every row is live.
  bool all_valid() const { return all_valid_; }

  /// Materialize the all-ones mask so a kernel can clear bits; word w bit b
  /// covers row w*64+b.
  std::vector<uint64_t>& EnsureValidity() {
    if (all_valid_) {
      validity_.assign((num_rows() + 63) / 64, ~uint64_t{0});
      all_valid_ = false;
    }
    return validity_;
  }

  bool RowValid(size_t r) const {
    return all_valid_ || ((validity_[r >> 6] >> (r & 63)) & 1) != 0;
  }

  /// Apply the selection mask in one compaction pass: live rows keep their
  /// relative order; positional `marks` (any type with a `pos` member) are
  /// remapped exactly as EventBatch::FilterEvents remaps CTI marks.
  template <class Mark>
  void Compact(std::vector<Mark>* marks) {
    if (all_valid_) return;
    const size_t n = num_rows();
    size_t w = 0;
    size_t m = 0;
    for (size_t r = 0; r < n; ++r) {
      if (marks != nullptr) {
        for (; m < marks->size() && (*marks)[m].pos <= r; ++m) {
          (*marks)[m].pos = w;
        }
      }
      if (((validity_[r >> 6] >> (r & 63)) & 1) == 0) continue;
      if (w != r) MoveRow(r, w);
      ++w;
    }
    if (marks != nullptr) {
      for (; m < marks->size(); ++m) (*marks)[m].pos = w;
    }
    Resize(w);
    validity_.clear();
    all_valid_ = true;
  }

  /// Swap the payload columns wholesale (project kernel); le/re, marks, dict,
  /// and validity are untouched.
  void ReplaceColumns(std::vector<Column>* new_cols) { cols_.swap(*new_cols); }

  /// Drop all rows and dictionary entries; keep capacities for reuse.
  void ClearAll() {
    le_.clear();
    re_.clear();
    validity_.clear();
    all_valid_ = true;
    dict_.Clear();
    for (Column& c : cols_) c.ClearRows();
  }

  /// Whether this payload holds reusable buffer capacity worth pooling.
  bool AnyCapacity() const { return le_.capacity() != 0 || !cols_.empty(); }

 private:
  void MoveRow(size_t r, size_t w) {
    le_[w] = le_[r];
    re_[w] = re_[r];
    for (Column& c : cols_) {
      switch (c.type) {
        case ValueType::kInt64: c.i64[w] = c.i64[r]; break;
        case ValueType::kDouble: c.f64[w] = c.f64[r]; break;
        case ValueType::kString: c.sid[w] = c.sid[r]; break;
      }
    }
  }

  void Resize(size_t n) {
    le_.resize(n);
    re_.resize(n);
    for (Column& c : cols_) {
      switch (c.type) {
        case ValueType::kInt64: c.i64.resize(n); break;
        case ValueType::kDouble: c.f64.resize(n); break;
        case ValueType::kString: c.sid.resize(n); break;
      }
    }
  }

  std::vector<Timestamp> le_;
  std::vector<Timestamp> re_;
  std::vector<Column> cols_;
  StringDict dict_;
  std::vector<uint64_t> validity_;
  bool all_valid_ = true;
};

// ---------------------------------------------------------------------------
// Vectorized kernels (columnar.cc). All of them require a fully-live payload
// (all_valid) on entry; EvalSelectColumnar and a row-dropping
// ApplyAlterColumnar leave a pending selection the caller applies with
// EventBatch::CompactColumnar().

/// Evaluate the conjunction as per-column compare loops into the selection
/// bitmap. The spec must be type-validated against the payload schema.
void EvalSelectColumnar(ColumnarPayload& payload, const SelectSpec& spec);

/// Rebuild the payload columns per the projection (column copy / constant
/// fill / arithmetic loops).
void ApplyProjectColumnar(ColumnarPayload& payload, const ProjectSpec& spec);

/// Rewrite le/re per the lifetime spec. Returns true when rows were dropped
/// into the selection bitmap (kHop events touching no boundary).
bool ApplyAlterColumnar(ColumnarPayload& payload, const AlterLifetimeSpec& spec);

/// Per-row hash of the key columns, bit-identical to
/// HashKeyOf(materialized_row, key_indices) — required so columnar probes hit
/// the same hash-map buckets as row-path inserts.
void ComputeKeyHashes(const ColumnarPayload& payload,
                      const std::vector<int>& key_indices,
                      std::vector<uint64_t>* out);

}  // namespace timr::temporal
