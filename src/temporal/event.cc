#include "temporal/event.h"

#include <algorithm>
#include <map>

namespace timr::temporal {

namespace {

bool RowLess(const Row& a, const Row& b) {
  return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end());
}

bool EventLess(const Event& a, const Event& b) {
  if (a.le != b.le) return a.le < b.le;
  if (a.re != b.re) return a.re < b.re;
  return RowLess(a.payload, b.payload);
}

struct RowOrder {
  bool operator()(const Row& a, const Row& b) const { return RowLess(a, b); }
};

// Canonical form of a temporal relation: per distinct payload, the step
// function "number of simultaneously valid copies", encoded as a delta map
// timestamp -> +/- multiplicity with zero entries removed. Two event multisets
// that differ only in how lifetimes are split into adjacent pieces (as happens
// under TiMR's temporal partitioning) normalize to the same form.
using StepFunction = std::map<Timestamp, int64_t>;

std::map<Row, StepFunction, RowOrder> Normalize(const std::vector<Event>& events) {
  std::map<Row, StepFunction, RowOrder> out;
  for (const Event& e : events) {
    StepFunction& f = out[e.payload];
    f[e.le] += 1;
    f[e.re] -= 1;
  }
  for (auto& [row, f] : out) {
    for (auto it = f.begin(); it != f.end();) {
      if (it->second == 0) {
        it = f.erase(it);
      } else {
        ++it;
      }
    }
  }
  return out;
}

// Per-thread freelist of batch storages. Bounded so an operator holding many
// clones cannot make the pool grow without limit; entries keep their capacity,
// which is the whole point.
struct BatchStorage {
  std::vector<Event> events;
  std::vector<EventBatch::CtiMark> ctis;
  ColumnarPayload payload;
};

std::vector<BatchStorage>& BatchPool() {
  thread_local std::vector<BatchStorage> pool;
  return pool;
}

constexpr size_t kBatchPoolMax = 16;

}  // namespace

EventBatch::EventBatch() {
  auto& pool = BatchPool();
  if (!pool.empty()) {
    events_ = std::move(pool.back().events);
    ctis_ = std::move(pool.back().ctis);
    payload_ = std::move(pool.back().payload);
    pool.pop_back();
  }
}

EventBatch::~EventBatch() {
  if (events_.capacity() == 0 && ctis_.capacity() == 0 &&
      !payload_.AnyCapacity()) {
    return;
  }
  auto& pool = BatchPool();
  if (pool.size() >= kBatchPoolMax) return;
  events_.clear();
  ctis_.clear();
  payload_.ClearAll();
  pool.push_back(
      BatchStorage{std::move(events_), std::move(ctis_), std::move(payload_)});
}

EventBatch EventBatch::Clone() const {
  const EventBatch& src = r();
  EventBatch copy;
  copy.events_.assign(src.events_.begin(), src.events_.end());
  copy.ctis_.assign(src.ctis_.begin(), src.ctis_.end());
  if (src.columnar_) {
    copy.payload_ = src.payload_;
    copy.columnar_ = true;
  }
  return copy;
}

void EventBatch::Localize() {
  std::shared_ptr<EventBatch> src = std::move(view_of_);
  TIMR_DCHECK(src != nullptr);
  if (src.use_count() == 1) {
    // Last live reference: steal the storage. Swapping (not moving) hands our
    // pooled-but-empty vectors to the dying source, so their capacity flows
    // back to the thread-local pool through its destructor.
    std::swap(events_, src->events_);
    std::swap(ctis_, src->ctis_);
    std::swap(payload_, src->payload_);
    columnar_ = src->columnar_;
    src->columnar_ = false;
  } else {
    events_.assign(src->events_.begin(), src->events_.end());
    ctis_.assign(src->ctis_.begin(), src->ctis_.end());
    if (src->columnar_) {
      payload_ = src->payload_;
      columnar_ = true;
    }
  }
}

void EventBatch::EnsureRows() {
  EnsureOwned();
  if (!columnar_) return;
  TIMR_DCHECK(payload_.all_valid()) << "EnsureRows with a pending selection";
  const size_t n = payload_.num_rows();
  events_.clear();
  events_.reserve(n);
  for (size_t r = 0; r < n; ++r) {
    // Direct member assignment: the Event constructor DCHECKs re > le, but a
    // columnar batch may carry not-yet-conformance-checked data that the row
    // path is expected to see (and reject) as-is.
    Event e;
    e.le = payload_.le()[r];
    e.re = payload_.re()[r];
    e.payload = payload_.MaterializeRow(r);
    events_.push_back(std::move(e));
  }
  payload_.ClearAll();
  columnar_ = false;
}

void SortEventsCanonical(std::vector<Event>* events) {
  std::sort(events->begin(), events->end(), EventLess);
}

bool SameTemporalRelation(std::vector<Event> a, std::vector<Event> b) {
  return Normalize(a) == Normalize(b);
}

}  // namespace timr::temporal
