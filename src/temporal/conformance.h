// Runtime stream-conformance checking: a passthrough operator that asserts
// the engine's execution discipline (see operator.h) on the stream flowing
// through it — valid [LE, RE) lifetimes, events never preceding the last CTI,
// and monotone CTIs.
//
// TiMR inserts these at fragment boundaries (TimrOptions::validate_streams):
// one above every fragment input and one below the fragment root, so a bad
// optimizer rewrite, a corrupted intermediate dataset, or a misbehaving
// operator is caught at the stage where it happens, with provenance, instead
// of silently producing wrong output. The engine's own TIMR_DCHECKs cover the
// same invariants but are compiled out of NDEBUG builds; this operator is the
// always-available, Status-reporting form.

#pragma once

#include <string>
#include <vector>

#include "temporal/operator.h"

namespace timr::temporal {

/// \brief Passthrough operator that records conformance violations instead of
/// aborting. Violating events are recorded and dropped (the run is going to be
/// failed anyway; forwarding them would trip downstream invariants).
class ConformanceCheckOp : public UnaryOperator {
 public:
  /// `label` names the checked edge in violation messages, e.g.
  /// "frag_1/input:ClickLog" or "frag_1/output".
  explicit ConformanceCheckOp(std::string label) : label_(std::move(label)) {}

  void OnEvent(Event event) override {
    CountConsumed();
    if (CheckEvent(event)) Emit(std::move(event));
  }

  void OnCti(Timestamp t) override {
    if (CheckCti(t)) EmitCti(t);
  }

  /// Batched form: one in-place pass applies exactly the per-item checks in
  /// stream order, dropping violating events and regressed CTI marks, so
  /// keeping validate_streams on costs one extra pass per batch rather than
  /// two virtual calls per event.
  void OnBatch(EventBatch&& batch) override {
    CountConsumedN(batch.NumEvents());
    if (batch.columnar()) {
      // Validate straight off the le/re columns. The overwhelmingly common
      // case is a clean batch, which is forwarded still-columnar with zero
      // materialization; only a batch with violations drops to the row path
      // (which rebuilds its cursor state from scratch, so rewind trackers).
      if (CleanColumnarScan(batch)) {
        EmitBatch(std::move(batch));
        return;
      }
      batch.EnsureRows();
    }
    auto& events = batch.events();
    auto& marks = batch.mutable_ctis();
    size_t w = 0;   // events write cursor
    size_t mw = 0;  // marks write cursor
    size_t m = 0;
    for (size_t r = 0; r < events.size(); ++r) {
      for (; m < marks.size() && marks[m].pos <= r; ++m) {
        if (CheckCti(marks[m].t)) marks[mw++] = {w, marks[m].t};
      }
      if (CheckEvent(events[r])) {
        if (w != r) events[w] = std::move(events[r]);
        ++w;
      }
    }
    for (; m < marks.size(); ++m) {
      if (CheckCti(marks[m].t)) marks[mw++] = {w, marks[m].t};
    }
    events.resize(w);
    marks.resize(mw);
    EmitBatch(std::move(batch));
  }

  const std::string& label() const { return label_; }
  const std::vector<std::string>& violations() const { return violations_; }

 private:
  /// One read-only pass over a columnar batch's le/re columns and CTI marks.
  /// Returns true (trackers advanced) iff every check passes; on the first
  /// violation returns false with trackers untouched, so the row path re-runs
  /// the full recording logic from the same starting state.
  bool CleanColumnarScan(const EventBatch& batch) {
    const ColumnarPayload& p = batch.columnar_payload();
    const Timestamp* le = p.le().data();
    const Timestamp* re = p.re().data();
    const auto& marks = batch.ctis();
    const size_t n = p.num_rows();
    Timestamp cti = last_cti_;
    Timestamp last_le = last_le_;
    size_t m = 0;
    for (size_t i = 0; i < n; ++i) {
      for (; m < marks.size() && marks[m].pos <= i; ++m) {
        if (marks[m].t < cti) return false;
        cti = marks[m].t;
      }
      if (le[i] >= re[i] || le[i] < cti || le[i] < last_le) return false;
      last_le = le[i];
    }
    for (; m < marks.size(); ++m) {
      if (marks[m].t < cti) return false;
      cti = marks[m].t;
    }
    last_cti_ = cti;
    last_le_ = last_le;
    return true;
  }

  /// Returns whether the event conforms (and may be forwarded); records and
  /// signals drop otherwise. Updates the LE-order tracker.
  bool CheckEvent(const Event& event) {
    if (event.le >= event.re) {
      Record("event [" + std::to_string(event.le) + "," +
             std::to_string(event.re) + ") has an empty or inverted lifetime");
      return false;
    }
    if (event.le < last_cti_) {
      Record("event at LE=" + std::to_string(event.le) +
             " precedes the last CTI " + std::to_string(last_cti_));
      return false;
    }
    if (event.le < last_le_) {
      Record("event at LE=" + std::to_string(event.le) +
             " arrived out of order after LE=" + std::to_string(last_le_));
      return false;
    }
    last_le_ = event.le;
    return true;
  }

  /// Returns whether the CTI is monotone (a stale equal CTI is forwarded and
  /// dropped downstream, exactly as the per-item path does via EmitCti).
  bool CheckCti(Timestamp t) {
    if (t < last_cti_) {
      Record("CTI regressed from " + std::to_string(last_cti_) + " to " +
             std::to_string(t));
      return false;
    }
    last_cti_ = t;
    return true;
  }

  void Record(std::string msg) {
    ++violation_count_;
    if (violations_.size() < kMaxRecorded) {
      violations_.push_back(label_ + ": " + std::move(msg));
    } else if (violations_.size() == kMaxRecorded) {
      violations_.push_back(label_ + ": ... further violations suppressed");
    }
  }

  static constexpr size_t kMaxRecorded = 8;

  std::string label_;
  Timestamp last_cti_ = kMinTime;
  Timestamp last_le_ = kMinTime;
  uint64_t violation_count_ = 0;
  std::vector<std::string> violations_;
};

}  // namespace timr::temporal
