// TemporalJoin, AntiSemiJoin, and Union. Paper §II-A.2.

#pragma once

#include <functional>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "temporal/operator.h"

namespace timr::temporal {

using JoinPredicate = std::function<bool(const Row& left, const Row& right)>;
using JoinProjectFn = std::function<Row(const Row& left, const Row& right)>;

namespace internal {

// View over a payload's key columns, for probing without materializing a key
// Row; HashKeyOf(row, idx) == HashRow(ExtractKey(row, idx)) by construction.
// `hash` carries a precomputed key hash when the batch path vectorized it
// (ComputeKeyHashes); 0 means "not precomputed" and falls back to hashing the
// row. (Should a real key hash ever equal 0, the fallback just recomputes the
// same value — correctness is unaffected.)
struct RowKeyView {
  const Row* payload;
  const std::vector<int>* indices;
  uint64_t hash = 0;
};
struct RowHash {
  using is_transparent = void;
  size_t operator()(const Row& r) const { return HashRow(r); }
  size_t operator()(const RowKeyView& v) const {
    return v.hash != 0 ? static_cast<size_t>(v.hash)
                       : HashKeyOf(*v.payload, *v.indices);
  }
};
struct RowEq {
  using is_transparent = void;
  bool operator()(const Row& a, const Row& b) const { return a == b; }
  bool operator()(const RowKeyView& v, const Row& b) const {
    if (v.indices->size() != b.size()) return false;
    for (size_t i = 0; i < b.size(); ++i) {
      if (!((*v.payload)[(*v.indices)[i]] == b[i])) return false;
    }
    return true;
  }
  bool operator()(const Row& a, const RowKeyView& v) const {
    return operator()(v, a);
  }
};

/// Per-side join synopsis: active events grouped by equality key.
class Synopsis {
 public:
  explicit Synopsis(std::vector<int> key_indices)
      : key_indices_(std::move(key_indices)) {}

  void Insert(const Event& event, uint64_t key_hash = 0) {
    auto it = map_.find(RowKeyView{&event.payload, &key_indices_, key_hash});
    if (it == map_.end()) {
      it = map_.emplace(ExtractKey(event.payload, key_indices_),
                        std::vector<Event>()).first;
    }
    it->second.push_back(event);
    ++size_;
  }

  /// Events whose key equals columns `indices` of `payload` (lifetime
  /// filtering is the caller's job). Probes heterogeneously: no key Row is
  /// materialized on the hot path, and a precomputed `key_hash` (from the
  /// columnar bulk hasher) skips per-probe hashing entirely.
  const std::vector<Event>* FindByKeyOf(const Row& payload,
                                        const std::vector<int>& indices,
                                        uint64_t key_hash = 0) const {
    auto it = map_.find(RowKeyView{&payload, &indices, key_hash});
    return it == map_.end() ? nullptr : &it->second;
  }

  /// Drop events that can no longer intersect any future arrival (re <=
  /// watermark, since future events have LE >= watermark).
  void Purge(Timestamp watermark) {
    for (auto it = map_.begin(); it != map_.end();) {
      auto& vec = it->second;
      size_t kept = 0;
      for (size_t i = 0; i < vec.size(); ++i) {
        if (vec[i].re <= watermark) continue;
        if (kept != i) vec[kept] = std::move(vec[i]);
        ++kept;
      }
      size_ -= vec.size() - kept;
      vec.resize(kept);
      if (vec.empty()) {
        it = map_.erase(it);
      } else {
        ++it;
      }
    }
  }

  size_t size() const { return size_; }
  const std::vector<int>& key_indices() const { return key_indices_; }

 private:
  std::vector<int> key_indices_;
  std::unordered_map<Row, std::vector<Event>, RowHash, RowEq> map_;
  size_t size_ = 0;
};

}  // namespace internal

/// \brief Symmetric hash join on equality keys. Output lifetime is the
/// intersection of the joining lifetimes; an optional residual predicate and
/// projection shape the result (default: left payload ++ right payload).
///
/// Because inputs are consumed in merged LE order, the later-arriving event of
/// a matching pair determines the output LE (the intersection starts at
/// max(le_l, le_r)), so output order is preserved for free.
class TemporalJoinOp : public BinaryOperator {
 public:
  TemporalJoinOp(std::vector<int> left_keys, std::vector<int> right_keys,
                 JoinPredicate pred = nullptr, JoinProjectFn project = nullptr)
      : left_(std::move(left_keys)),
        right_(std::move(right_keys)),
        pred_(std::move(pred)),
        project_(std::move(project)) {}

 protected:
  void ProcessMerged(int side, Event event, uint64_t key_hash) override {
    internal::Synopsis& own = side == 0 ? left_ : right_;
    const internal::Synopsis& other = side == 0 ? right_ : left_;
    if (const auto* matches =
            other.FindByKeyOf(event.payload, own.key_indices(), key_hash)) {
      // Collect first: matches may alias storage we append to below.
      std::vector<Event> out;
      for (const Event& m : *matches) {
        const Timestamp ile = std::max(event.le, m.le);
        const Timestamp ire = std::min(event.re, m.re);
        if (ile >= ire) continue;
        const Row& lrow = side == 0 ? event.payload : m.payload;
        const Row& rrow = side == 0 ? m.payload : event.payload;
        if (pred_ && !pred_(lrow, rrow)) continue;
        out.push_back(Event(ile, ire, MakeOutput(lrow, rrow)));
      }
      for (auto& e : out) Emit(std::move(e));
    }
    own.Insert(event, key_hash);
  }

  void ProcessWatermark(Timestamp t) override {
    left_.Purge(t);
    right_.Purge(t);
    EmitCti(t);
  }

  const std::vector<int>* PortKeyIndices(int side) const override {
    return side == 0 ? &left_.key_indices() : &right_.key_indices();
  }

 private:
  Row MakeOutput(const Row& l, const Row& r) const {
    if (project_) return project_(l, r);
    Row out = l;
    out.insert(out.end(), r.begin(), r.end());
    return out;
  }

  internal::Synopsis left_;
  internal::Synopsis right_;
  JoinPredicate pred_;
  JoinProjectFn project_;
};

/// \brief Emits each left *point* event that intersects no matching right
/// event (paper: "eliminate point events from the left input that do
/// intersect some matching event in the right synopsis").
///
/// Correctness relies on the BinaryOperator merge discipline: a left point at
/// t is only processed once every right event with LE <= t has been inserted,
/// and right events with LE > t cannot contain t.
class AntiSemiJoinOp : public BinaryOperator {
 public:
  AntiSemiJoinOp(std::vector<int> left_keys, std::vector<int> right_keys)
      : left_keys_(std::move(left_keys)), right_(std::move(right_keys)) {}

 protected:
  void ProcessMerged(int side, Event event, uint64_t key_hash) override {
    if (side == 1) {
      right_.Insert(event, key_hash);
      return;
    }
    TIMR_DCHECK(event.IsPoint()) << "AntiSemiJoin left input must be point events";
    if (const auto* matches =
            right_.FindByKeyOf(event.payload, left_keys_, key_hash)) {
      for (const Event& m : *matches) {
        if (m.Contains(event.le)) return;  // suppressed
      }
    }
    Emit(std::move(event));
  }

  void ProcessWatermark(Timestamp t) override {
    right_.Purge(t);
    EmitCti(t);
  }

  const std::vector<int>* PortKeyIndices(int side) const override {
    return side == 0 ? &left_keys_ : &right_.key_indices();
  }

 private:
  std::vector<int> left_keys_;
  internal::Synopsis right_;
};

/// \brief Merges two streams with identical schemas into one (paper §II-A.2).
class UnionOp : public BinaryOperator {
 protected:
  void ProcessMerged(int /*side*/, Event event, uint64_t /*key_hash*/) override {
    Emit(std::move(event));
  }
  void ProcessWatermark(Timestamp t) override { EmitCti(t); }
};

}  // namespace timr::temporal
