#include "workload/generator.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "bt/schema.h"
#include "common/logging.h"

namespace timr::workload {

using bt::kStreamClick;
using bt::kStreamImpression;
using bt::kStreamKeyword;
using temporal::Event;
using temporal::Timestamp;

namespace {

// Paper Figures 17-19 keyword vocabulary, reused so the reproduction's output
// tables read like the originals.
struct ClassSpec {
  const char* name;
  std::vector<const char*> pos;
  std::vector<const char*> neg;
};

const std::vector<ClassSpec>& ClassSpecs() {
  static const std::vector<ClassSpec>* specs = new std::vector<ClassSpec>{
      {"deodorant",
       {"celebrity", "icarly", "tattoo", "games", "chat", "videos", "hannah",
        "exam", "music", "teen", "dance", "prom"},
       {"verizon", "construct", "service", "ford", "hotels", "jobless", "pilot",
        "credit", "craigslist", "mortgage"}},
      {"laptop",
       {"dell", "laptops", "computers", "juris", "toshiba", "vostro", "hp",
        "netbook", "ssd", "linux", "battery", "charger"},
       {"pregnant", "stars", "wang", "vera", "dancing", "myspace", "facebook",
        "recipes", "wedding", "gossip"}},
      {"cellphone",
       {"blackberry", "curve", "enable", "tmobile", "phones", "wireless", "att",
        "verizonw", "sim", "roaming", "prepaid", "android"},
       {"recipes2", "times", "national", "hotels2", "people", "baseball",
        "porn", "myspace2", "garden", "knitting"}},
      {"movies",
       {"trailer", "showtimes", "imax", "tickets", "premiere", "actor",
        "cinema", "sequel", "netflix", "dvd", "screening", "blockbuster"},
       {"lawnmower", "plumber", "auto", "parts", "diesel", "tax", "forms",
        "irs", "payroll", "invoice"}},
      {"dieting",
       {"calories", "weight", "slim", "detox", "yoga", "smoothie", "keto",
        "fasting", "bmi", "workout", "treadmill", "nutrition"},
       {"pizza2", "buffet", "bacon", "donut", "poker", "cigars", "whiskey",
        "lottery", "betting", "casino"}},
      {"games",
       {"xbox", "playstation", "cheats", "mmorpg", "clan", "loot", "quest",
        "console", "controller", "arcade", "esports", "speedrun"},
       {"retirement", "annuity", "medicare", "pension", "hearing", "denture",
        "bingo", "cruise2", "sudoku", "crossword"}},
      {"travel",
       {"flights", "airfare", "resort", "beach", "passport", "itinerary",
        "hostel", "backpack", "visa", "cruise", "luggage", "tours"},
       {"foreclosure", "eviction", "bankruptcy", "pawn", "overdraft", "payday",
        "collections", "repossess", "welfare", "foodstamps"}},
      {"finance",
       {"stocks", "dividend", "portfolio", "etf", "bonds", "broker", "ira",
        "hedge", "forex", "futures", "yield", "ticker"},
       {"skateboard", "slime", "pokemon", "fortnite", "tiktok", "emoji",
        "anime", "manga", "sticker", "glitter"}},
      {"fitness",
       {"gym", "protein", "deadlift", "squat", "cardio", "marathon", "cycling",
        "crossfit", "pilates", "stretching", "supplements", "rowing"},
       {"recliner", "remote", "snacks", "delivery", "couch", "naps", "soda",
        "candy", "chips", "pizza"}},
      {"music",
       {"concert", "setlist", "vinyl", "playlist", "lyrics", "album", "band",
        "festival", "spotify", "guitar", "drums", "karaoke"},
       {"spreadsheet", "powerpoint", "fax", "printer", "toner", "stapler",
        "laminate", "binder", "envelope", "postage"}},
  };
  return *specs;
}

}  // namespace

size_t BtLog::CountStream(int64_t stream_id) const {
  size_t n = 0;
  for (const Event& e : events) {
    if (e.payload[0].AsInt64() == stream_id) ++n;
  }
  return n;
}

BtLog GenerateBtLog(const GeneratorConfig& config) {
  TIMR_CHECK(config.num_ad_classes > 0 &&
             config.num_ad_classes <= static_cast<int>(ClassSpecs().size()))
      << "at most " << ClassSpecs().size() << " ad classes are defined";
  TIMR_CHECK(config.vocab_size > config.num_ad_classes *
                                     (config.planted_pos_per_class +
                                      config.planted_neg_per_class));

  Rng rng(config.seed);
  BtLog log;
  GroundTruth& truth = log.truth;

  // --- Plant ad classes. Planted keywords take mid-popularity ids (the very
  // top Zipf ranks stay uncorrelated "facebook"-alikes, which is what makes
  // KE-pop a weak baseline); background keywords fill the rest. ---
  int64_t next_kw = config.vocab_size / 10;
  for (int a = 0; a < config.num_ad_classes; ++a) {
    const ClassSpec& spec = ClassSpecs()[a];
    AdClassTruth cls;
    cls.name = spec.name;
    for (int i = 0; i < config.planted_pos_per_class; ++i) {
      const int64_t id = next_kw++;
      truth.keyword_names[id] = spec.pos[i % spec.pos.size()];
      cls.pos_keywords[id] =
          config.pos_lift_min +
          rng.UniformDouble() * (config.pos_lift_max - config.pos_lift_min);
      if (truth.keyword_names[id] == std::string("icarly")) {
        truth.spike_keyword = id;
      }
    }
    for (int i = 0; i < config.planted_neg_per_class; ++i) {
      const int64_t id = next_kw++;
      truth.keyword_names[id] = spec.neg[i % spec.neg.size()];
      cls.neg_keywords[id] =
          config.neg_lift_min +
          rng.UniformDouble() * (config.neg_lift_max - config.neg_lift_min);
    }
    truth.ad_classes.push_back(std::move(cls));
  }

  // Background keyword popularity: Zipf over the whole vocabulary, so a few
  // uncorrelated keywords ("facebook"-alikes) dominate raw frequency.
  ZipfSampler background(config.vocab_size, config.keyword_zipf);

  // --- Users. ---
  const int num_bots =
      std::max(1, static_cast<int>(config.num_users * config.bot_fraction));
  for (int u = 0; u < num_bots; ++u) truth.bot_users.insert(u);

  const double day = static_cast<double>(temporal::kDay);
  const double horizon = static_cast<double>(config.duration);

  struct Activity {
    Timestamp t;
    int64_t stream;
    int64_t kw_or_ad;
  };
  std::vector<Activity> acts;
  acts.reserve(static_cast<size_t>(
      config.num_users *
      (config.searches_per_user_day + config.impressions_per_user_day) *
      (horizon / day) * 1.3));

  // Per-user Zipf activity weights (user_activity_zipf): w_u = (u+1)^-s
  // normalized to mean 1. Computed arithmetically — no RNG draws — so the
  // default (0) leaves the generated stream byte-identical to a build without
  // the knob, and any skewed workload is reproducible from (seed, s).
  std::vector<double> activity_weight;
  if (config.user_activity_zipf > 0 && config.num_users > 0) {
    activity_weight.resize(static_cast<size_t>(config.num_users));
    double sum = 0;
    for (int u = 0; u < config.num_users; ++u) {
      activity_weight[u] =
          std::pow(static_cast<double>(u + 1), -config.user_activity_zipf);
      sum += activity_weight[u];
    }
    const double mean = sum / static_cast<double>(config.num_users);
    for (double& w : activity_weight) w /= mean;
  }

  for (int u = 0; u < config.num_users; ++u) {
    const bool is_bot = truth.bot_users.count(u) > 0;
    const double zipf_w = activity_weight.empty() ? 1.0 : activity_weight[u];
    const double mult =
        (is_bot ? config.bot_activity_multiplier : 1.0) * zipf_w;

    // Interest profile: 1-3 ad classes whose planted pools this user searches.
    // "Negative-pool" users exist independently: they search a class's
    // negative keywords (jobless/credit searchers) but get no click lift.
    std::vector<int> pos_interests, neg_interests;
    const int npos = 1 + static_cast<int>(rng.UniformU64(3));
    for (int i = 0; i < npos; ++i) {
      pos_interests.push_back(
          static_cast<int>(rng.UniformU64(config.num_ad_classes)));
    }
    if (rng.Bernoulli(0.75)) {
      neg_interests.push_back(
          static_cast<int>(rng.UniformU64(config.num_ad_classes)));
    }

    // Favorite keywords: real users search the same few terms repeatedly, so
    // concentrate each user's interest searches on a small personal subset of
    // the pools. This is also what gives planted keywords enough support for
    // the z-test at simulation scale.
    auto pick_favorites = [&](const std::unordered_map<int64_t, double>& pool,
                              int n, std::vector<int64_t>* out) {
      if (pool.empty()) return;
      for (int i = 0; i < n; ++i) {
        size_t skip = rng.UniformU64(pool.size());
        auto it = pool.begin();
        std::advance(it, skip);
        out->push_back(it->first);
      }
    };
    std::vector<int64_t> pos_favorites, neg_favorites;
    for (int cls_idx : pos_interests) {
      pick_favorites(truth.ad_classes[cls_idx].pos_keywords, 2, &pos_favorites);
    }
    for (int cls_idx : neg_interests) {
      pick_favorites(truth.ad_classes[cls_idx].neg_keywords, 3, &neg_favorites);
    }

    // Recent searched keywords: (t, kw), pruned to the last 6h. This is the
    // user's true short-term profile that drives click odds.
    std::deque<std::pair<Timestamp, int64_t>> recent;

    // Merge search and impression point processes in time order. Bots surf
    // (and therefore trigger impressions) far more than normal users too.
    double search_rate = config.searches_per_user_day * mult / day;
    double impression_rate =
        config.impressions_per_user_day *
        (is_bot ? config.bot_impression_multiplier : 1.0) * zipf_w / day;
    double t_search = rng.Exponential(1.0 / search_rate);
    double t_impr = rng.Exponential(1.0 / impression_rate);

    while (t_search < horizon || t_impr < horizon) {
      if (t_search <= t_impr) {
        const auto t = static_cast<Timestamp>(t_search) + 1;
        // Pick a keyword.
        int64_t kw;
        const bool spike_active = config.enable_trend_spike &&
                                  truth.spike_keyword >= 0 &&
                                  t >= config.spike_start && t < config.spike_end;
        if (spike_active &&
            rng.Bernoulli(0.02 * config.spike_multiplier) && !is_bot) {
          kw = truth.spike_keyword;
        } else if (is_bot) {
          kw = static_cast<int64_t>(background.Sample(&rng));
        } else if (rng.Bernoulli(config.interest_search_fraction)) {
          // From the user's favorite keywords: positives of their interest
          // classes, negatives of their distractor class.
          const bool use_neg = !neg_favorites.empty() && rng.Bernoulli(0.55);
          const auto& favs = use_neg ? neg_favorites : pos_favorites;
          kw = favs[rng.UniformU64(favs.size())];
        } else {
          kw = static_cast<int64_t>(background.Sample(&rng));
        }
        acts.push_back({t, kStreamKeyword, kw});
        recent.emplace_back(t, kw);
        t_search += rng.Exponential(1.0 / search_rate);
      } else {
        const auto t = static_cast<Timestamp>(t_impr) + 1;
        const int ad = static_cast<int>(rng.UniformU64(config.num_ad_classes));
        acts.push_back({t, kStreamImpression, ad});
        // Click decision from the 6h profile.
        while (!recent.empty() && recent.front().first <= t - 6 * temporal::kHour) {
          recent.pop_front();
        }
        double p;
        if (is_bot) {
          p = config.bot_click_probability;
        } else {
          double odds = config.base_ctr / (1.0 - config.base_ctr);
          const AdClassTruth& cls = truth.ad_classes[ad];
          // Each distinct profile keyword applies its multiplier once.
          std::unordered_set<int64_t> seen;
          for (const auto& [ts, kw] : recent) {
            if (!seen.insert(kw).second) continue;
            auto pit = cls.pos_keywords.find(kw);
            if (pit != cls.pos_keywords.end()) odds *= pit->second;
            auto nit = cls.neg_keywords.find(kw);
            if (nit != cls.neg_keywords.end()) odds *= nit->second;
          }
          p = std::min(0.9, odds / (1.0 + odds));
        }
        if (rng.Bernoulli(p)) {
          const Timestamp delay =
              1 + rng.UniformInt(0, config.max_click_delay - 2);
          acts.push_back({t + delay, kStreamClick, ad});
        }
        t_impr += rng.Exponential(1.0 / impression_rate);
      }
    }
    // Emit this user's activities (tagged with the user id) into the log.
    for (const Activity& a : acts) {
      log.events.push_back(Event::Point(
          a.t, {Value(a.stream), Value(int64_t{u}), Value(a.kw_or_ad)}));
    }
    acts.clear();
  }

  std::stable_sort(log.events.begin(), log.events.end(),
                   [](const Event& a, const Event& b) { return a.le < b.le; });
  return log;
}

std::pair<std::vector<Event>, std::vector<Event>> SplitByTime(
    const std::vector<Event>& events) {
  if (events.empty()) return {};
  Timestamp lo = events.front().le, hi = events.front().le;
  for (const Event& e : events) {
    lo = std::min(lo, e.le);
    hi = std::max(hi, e.le);
  }
  const Timestamp mid = lo + (hi - lo) / 2;
  std::vector<Event> train, test;
  for (const Event& e : events) {
    (e.le < mid ? train : test).push_back(e);
  }
  return {std::move(train), std::move(test)};
}

}  // namespace timr::workload
