// Synthetic ad-platform log generator.
//
// The paper evaluates on one week of proprietary logs (~250M users, 50M
// keywords). We substitute a seeded generator that plants the structural
// properties the experiments measure, and exposes the ground truth so tests
// can verify recovery:
//  - a small bot subpopulation producing a disproportionate share of clicks
//    and searches (paper §IV-B.1: 0.5% of users, 13% of activity);
//  - ad classes with planted positively and negatively correlated keywords
//    (the signals the z-test feature selection of §IV-B.3 must find);
//  - a Zipf keyword background (high-frequency keywords uncorrelated with
//    clicks — the reason KE-pop underperforms, §V-C);
//  - a temporal interest spike (the "icarly" trend of Example 2).
//
// Click behaviour is causally driven by the user's own recent (6h) keyword
// history through per-keyword odds multipliers, so the correlation the
// pipeline detects is real, not annotated.

#pragma once

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "temporal/event.h"

namespace timr::workload {

struct GeneratorConfig {
  uint64_t seed = 20120401;

  int num_users = 2000;
  double bot_fraction = 0.005;
  double bot_activity_multiplier = 25.0;  // search rate vs normal users
  double bot_impression_multiplier = 6.0;  // ad-impression rate vs normal
  double bot_click_probability = 0.35;

  int vocab_size = 20000;
  double keyword_zipf = 1.05;

  int num_ad_classes = 10;
  int planted_pos_per_class = 12;
  int planted_neg_per_class = 8;

  temporal::Timestamp duration = 7 * temporal::kDay;
  double searches_per_user_day = 10.0;
  double impressions_per_user_day = 6.0;

  /// Zipf skew over per-user activity volume: user u's search and impression
  /// rates are multiplied by (u+1)^-user_activity_zipf, normalized so the
  /// mean multiplier over all users is 1 (total volume is preserved). 0 (the
  /// default) disables the knob and leaves the generated log byte-identical
  /// to earlier versions — the weights are computed without consuming any RNG
  /// draws. Skewed workloads for the adaptive-repartitioning tests and
  /// bench_skew are reproducible from the (seed, user_activity_zipf) pair.
  double user_activity_zipf = 0.0;

  double base_ctr = 0.05;
  /// Odds multipliers for planted keywords present in the 6h UBP.
  double pos_lift_min = 2.5, pos_lift_max = 9.0;
  double neg_lift_min = 0.1, neg_lift_max = 0.4;

  /// Clicks land within this many seconds after the impression (must stay
  /// under the pipeline's 5-minute non-click horizon).
  temporal::Timestamp max_click_delay = 4 * temporal::kMinute;

  /// Fraction of a user's searches drawn from their interest pools (the rest
  /// is Zipf background noise).
  double interest_search_fraction = 0.55;

  /// The Example 2 trend: keyword "icarly" spikes in popularity (and is a
  /// planted positive keyword for the deodorant class) during this window.
  bool enable_trend_spike = true;
  temporal::Timestamp spike_start = 3 * temporal::kDay;
  temporal::Timestamp spike_end = 4 * temporal::kDay;
  double spike_multiplier = 8.0;
};

struct AdClassTruth {
  std::string name;
  /// keyword id -> planted odds multiplier (>1 positive, <1 negative).
  std::unordered_map<int64_t, double> pos_keywords;
  std::unordered_map<int64_t, double> neg_keywords;
};

struct GroundTruth {
  std::vector<AdClassTruth> ad_classes;
  std::unordered_set<int64_t> bot_users;
  /// Names for planted keywords (background keywords are "kw<i>").
  std::unordered_map<int64_t, std::string> keyword_names;
  int64_t spike_keyword = -1;

  std::string KeywordName(int64_t id) const {
    auto it = keyword_names.find(id);
    return it != keyword_names.end() ? it->second : "kw" + std::to_string(id);
  }
};

struct BtLog {
  /// Point events in the unified schema [StreamId, UserId, KwAdId], sorted by
  /// time.
  std::vector<temporal::Event> events;
  GroundTruth truth;

  size_t CountStream(int64_t stream_id) const;
};

/// Generate a log. Deterministic in the config (including seed).
BtLog GenerateBtLog(const GeneratorConfig& config);

/// Split events into train/test halves at the midpoint of the time range
/// (paper §V-A splits the week evenly).
std::pair<std::vector<temporal::Event>, std::vector<temporal::Event>> SplitByTime(
    const std::vector<temporal::Event>& events);

}  // namespace timr::workload
