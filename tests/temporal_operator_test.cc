// Per-operator unit tests for the temporal engine: edge cases, error paths,
// schema handling, and the offline/online equivalence the paper leans on.

#include <gtest/gtest.h>

#include "temporal/convert.h"
#include "temporal/executor.h"
#include "temporal/query.h"

namespace timr::temporal {
namespace {

Schema KV() {
  return Schema::Of({{"K", ValueType::kInt64}, {"V", ValueType::kInt64}});
}

std::vector<Event> Points(std::vector<std::pair<Timestamp, Row>> data) {
  std::vector<Event> out;
  for (auto& [t, row] : data) out.push_back(Event::Point(t, std::move(row)));
  return out;
}

Result<std::vector<Event>> RunQ(const Query& q, std::vector<Event> events) {
  return Executor::Execute(q.node(), {{"S", std::move(events)}});
}

// ---------- AlterLifetime ----------

TEST(AlterLifetime, ShiftMovesBothEndpoints) {
  Query q = Query::Input("S", KV()).ShiftLifetime(10);
  auto out = RunQ(q, Points({{5, {1, 1}}}));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.ValueOrDie()[0].le, 15);
  EXPECT_EQ(out.ValueOrDie()[0].re, 16);
}

TEST(AlterLifetime, NegativeShiftPreservesOrderAndResults) {
  Query q = Query::Input("S", KV()).ShiftLifetime(-100);
  auto out = RunQ(q, Points({{5, {1, 1}}, {7, {2, 2}}}));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out.ValueOrDie().size(), 2u);
  EXPECT_EQ(out.ValueOrDie()[0].le, -95);
  EXPECT_EQ(out.ValueOrDie()[1].le, -93);
}

TEST(AlterLifetime, WindowSetsDuration) {
  Query q = Query::Input("S", KV()).Window(50);
  auto out = RunQ(q, Points({{5, {1, 1}}}));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.ValueOrDie()[0].re, 55);
}

TEST(AlterLifetime, HopSnapsToGrid) {
  // Event at t=7, window 20, hop 10: visible at boundaries 10 and 20
  // (boundaries in [7, 27) on the 10-grid) -> lifetime [10, 30).
  Query q = Query::Input("S", KV()).HoppingWindow(20, 10);
  auto out = RunQ(q, Points({{7, {1, 1}}}));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.ValueOrDie()[0].le, 10);
  EXPECT_EQ(out.ValueOrDie()[0].re, 30);
}

TEST(AlterLifetime, HopEventExactlyOnBoundary) {
  // t=10 is on the grid: first boundary that sees it is 10 itself.
  Query q = Query::Input("S", KV()).HoppingWindow(10, 10);
  auto out = RunQ(q, Points({{10, {1, 1}}}));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.ValueOrDie()[0].le, 10);
  EXPECT_EQ(out.ValueOrDie()[0].re, 20);
}

TEST(AlterLifetime, ToPointCollapsesIntervals) {
  Query q = Query::Input("S", KV()).Window(100).ToPointEvents();
  auto out = RunQ(q, Points({{3, {1, 1}}}));
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out.ValueOrDie()[0].IsPoint());
}

TEST(CeilToGridFn, HandlesNegativeAndExactValues) {
  EXPECT_EQ(CeilToGrid(0, 10), 0);
  EXPECT_EQ(CeilToGrid(1, 10), 10);
  EXPECT_EQ(CeilToGrid(10, 10), 10);
  EXPECT_EQ(CeilToGrid(-1, 10), 0);
  EXPECT_EQ(CeilToGrid(-10, 10), -10);
  EXPECT_EQ(CeilToGrid(-11, 10), -10);
}

// ---------- Aggregates ----------

TEST(Aggregate, EmptyInputProducesNoOutput) {
  Query q = Query::Input("S", KV()).Window(10).Count();
  auto out = RunQ(q, {});
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out.ValueOrDie().empty());
}

TEST(Aggregate, SingleEventSingleSnapshot) {
  Query q = Query::Input("S", KV()).Window(10).Count();
  auto out = RunQ(q, Points({{5, {1, 1}}}));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out.ValueOrDie().size(), 1u);
  EXPECT_EQ(out.ValueOrDie()[0].le, 5);
  EXPECT_EQ(out.ValueOrDie()[0].re, 15);
  EXPECT_EQ(out.ValueOrDie()[0].payload[0].AsInt64(), 1);
}

TEST(Aggregate, SimultaneousEventsMergeIntoOneSnapshot) {
  Query q = Query::Input("S", KV()).Window(10).Count();
  auto out = RunQ(q, Points({{5, {1, 1}}, {5, {2, 2}}, {5, {3, 3}}}));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out.ValueOrDie().size(), 1u);
  EXPECT_EQ(out.ValueOrDie()[0].payload[0].AsInt64(), 3);
}

TEST(Aggregate, SumTracksValues) {
  Query q = Query::Input("S", KV()).Window(10).Sum("V");
  auto out = RunQ(q, Points({{0, {1, 7}}, {5, {2, 3}}}));
  ASSERT_TRUE(out.ok());
  std::vector<Event> expected = {Event(0, 5, {Value(7.0)}),
                                 Event(5, 10, {Value(10.0)}),
                                 Event(10, 15, {Value(3.0)})};
  EXPECT_TRUE(SameTemporalRelation(out.ValueOrDie(), expected));
}

TEST(Aggregate, MinMaxSupportRetraction) {
  // Values 9 then 4; after 9 expires the max must fall back to 4.
  Query q = Query::Input("S", KV()).Window(10).Aggregate(
      AggregateSpec::Max("V", "m"));
  auto out = RunQ(q, Points({{0, {1, 9}}, {5, {2, 4}}}));
  ASSERT_TRUE(out.ok());
  std::vector<Event> expected = {Event(0, 10, {Value(9.0)}),
                                 Event(10, 15, {Value(4.0)})};
  EXPECT_TRUE(SameTemporalRelation(out.ValueOrDie(), expected));
}

TEST(Aggregate, AvgOverSnapshots) {
  Query q = Query::Input("S", KV()).Window(10).Aggregate(
      AggregateSpec::Avg("V", "a"));
  auto out = RunQ(q, Points({{0, {1, 2}}, {5, {2, 4}}}));
  ASSERT_TRUE(out.ok());
  std::vector<Event> expected = {Event(0, 5, {Value(2.0)}),
                                 Event(5, 10, {Value(3.0)}),
                                 Event(10, 15, {Value(4.0)})};
  EXPECT_TRUE(SameTemporalRelation(out.ValueOrDie(), expected));
}

TEST(Aggregate, UnknownValueColumnFailsAtBuild) {
  auto node = std::make_shared<PlanNode>();
  node->kind = OpKind::kAggregate;
  node->agg = AggregateSpec::Sum("Nope");
  auto input = std::make_shared<PlanNode>();
  input->kind = OpKind::kInput;
  input->name = "S";
  input->input_schema = KV();
  node->children = {input};
  auto exec = Executor::Create(node);
  EXPECT_FALSE(exec.ok());
}

// ---------- GroupApply ----------

TEST(GroupApply, EmptyGroupsNeverMaterialize) {
  Query q = Query::Input("S", KV()).GroupApply({"K"}, [](Query g) {
    return g.Window(10).Count();
  });
  auto out = RunQ(q, Points({{1, {7, 0}}}));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out.ValueOrDie().size(), 1u);
  EXPECT_EQ(out.ValueOrDie()[0].payload[0].AsInt64(), 7);  // key prepended
}

TEST(GroupApply, NestedGroupApply) {
  Schema s = Schema::Of({{"A", ValueType::kInt64},
                         {"B", ValueType::kInt64},
                         {"V", ValueType::kInt64}});
  // Outer by A, inner by B: per-(A,B) windowed count, A and B prepended.
  Query q = Query::Input("S", s).GroupApply({"A"}, [](Query ga) {
    return ga.GroupApply({"B"}, [](Query gb) { return gb.Window(10).Count(); });
  });
  auto out = Executor::Execute(
      q.node(), {{"S", Points({{1, {1, 1, 0}}, {2, {1, 2, 0}}, {3, {1, 1, 0}}})}});
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  std::vector<Event> expected = {
      Event(1, 3, {Value(1), Value(1), Value(int64_t{1})}),
      Event(3, 11, {Value(1), Value(1), Value(int64_t{2})}),
      Event(11, 13, {Value(1), Value(1), Value(int64_t{1})}),
      Event(2, 12, {Value(1), Value(2), Value(int64_t{1})})};
  EXPECT_TRUE(SameTemporalRelation(out.ValueOrDie(), expected));
}

TEST(GroupApply, ManyGroupsLazyPunctuationStillFlushes) {
  // More groups than the broadcast period; the final punctuation must still
  // flush every group's open aggregate state.
  std::vector<Event> events;
  for (int i = 0; i < 500; ++i) {
    events.push_back(Event::Point(i, {Value(int64_t{i}), Value(int64_t{1})}));
  }
  Query q = Query::Input("S", KV()).GroupApply({"K"}, [](Query g) {
    return g.Window(1000).Count();
  });
  auto out = RunQ(q, events);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.ValueOrDie().size(), 500u);  // one snapshot per group
}

// ---------- Joins ----------

TEST(TemporalJoin, ResidualPredicateFilters) {
  Query left = Query::Input("L", KV()).Window(10);
  Query right = Query::Input("R", KV()).Window(10);
  Query q = Query::TemporalJoin(
      left, right, {"K"}, {"K"},
      [](const Row& l, const Row& r) { return l[1].AsInt64() < r[1].AsInt64(); });
  auto out = Executor::Execute(q.node(), {{"L", Points({{1, {1, 5}}})},
                                          {"R", Points({{2, {1, 3}}})}});
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out.ValueOrDie().empty());  // 5 < 3 fails
}

TEST(TemporalJoin, CustomProjection) {
  Query left = Query::Input("L", KV()).Window(10);
  Query right = Query::Input("R", KV()).Window(10);
  Query q = Query::TemporalJoin(
      left, right, {"K"}, {"K"}, nullptr,
      [](const Row& l, const Row& r) {
        return Row{Value(l[1].AsInt64() + r[1].AsInt64())};
      },
      Schema::Of({{"Sum", ValueType::kInt64}}));
  auto out = Executor::Execute(q.node(), {{"L", Points({{1, {1, 5}}})},
                                          {"R", Points({{2, {1, 3}}})}});
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out.ValueOrDie().size(), 1u);
  EXPECT_EQ(out.ValueOrDie()[0].payload[0].AsInt64(), 8);
}

TEST(TemporalJoin, SelfJoinOnSharedNode) {
  Query base = Query::Input("S", KV()).Window(5);
  Query q = Query::TemporalJoin(base, base, {"K"}, {"K"});
  auto out = RunQ(q, Points({{1, {1, 10}}, {3, {1, 20}}}));
  ASSERT_TRUE(out.ok());
  // Pairs: (e1,e1), (e1,e2), (e2,e1), (e2,e2) all intersect.
  EXPECT_EQ(out.ValueOrDie().size(), 4u);
}

TEST(AntiSemiJoin, RightEventAtSameInstantSuppresses) {
  // Right point at t=3 (window 1 tick) and left point at t=3: the merge
  // discipline must process the right side first and suppress the left.
  Query left = Query::Input("L", KV());
  Query right = Query::Input("R", KV());
  Query q = Query::AntiSemiJoin(left, right, {"K"}, {"K"});
  auto out = Executor::Execute(q.node(), {{"L", Points({{3, {1, 0}}})},
                                          {"R", Points({{3, {1, 0}}})}});
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out.ValueOrDie().empty());
}

TEST(AntiSemiJoin, KeysCanDifferByName) {
  Schema l = Schema::Of({{"A", ValueType::kInt64}});
  Schema r = Schema::Of({{"B", ValueType::kInt64}});
  Query q = Query::AntiSemiJoin(Query::Input("L", l),
                                Query::Input("R", r).Window(10), {"A"}, {"B"});
  auto out = Executor::Execute(
      q.node(),
      {{"L", Points({{5, {1}}, {5, {2}}})}, {"R", Points({{1, {1}}})}});
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out.ValueOrDie().size(), 1u);
  EXPECT_EQ(out.ValueOrDie()[0].payload[0].AsInt64(), 2);
}

// ---------- Union / errors ----------

TEST(Union, MergesInTimestampOrder) {
  Query a = Query::Input("A", KV());
  Query b = Query::Input("B", KV());
  Query q = Query::Union(a, b);
  auto out = Executor::Execute(
      q.node(), {{"A", Points({{1, {1, 0}}, {5, {1, 0}}})},
                 {"B", Points({{3, {2, 0}}})}});
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out.ValueOrDie().size(), 3u);
  EXPECT_EQ(out.ValueOrDie()[0].le, 1);
  EXPECT_EQ(out.ValueOrDie()[1].le, 3);
  EXPECT_EQ(out.ValueOrDie()[2].le, 5);
}

TEST(Executor, MissingInputNameIsKeyError) {
  Query q = Query::Input("S", KV());
  auto out = Executor::Execute(q.node(), {{"Other", {}}});
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kKeyError);
}

TEST(Executor, PushEventToUnknownInputFails) {
  Query q = Query::Input("S", KV());
  auto exec = Executor::Create(q.node());
  ASSERT_TRUE(exec.ok());
  EXPECT_FALSE(exec.ValueOrDie()->PushEvent("X", Event::Point(1, {1, 1})).ok());
}

TEST(Executor, IncrementalPushMatchesBatchExecution) {
  Query q = Query::Input("S", KV()).GroupApply({"K"}, [](Query g) {
    return g.Window(7).Count();
  });
  auto events = Points({{1, {1, 0}}, {2, {2, 0}}, {4, {1, 0}}, {9, {2, 0}}});

  auto batch = RunQ(q, events);
  ASSERT_TRUE(batch.ok());

  auto exec = Executor::Create(q.node());
  ASSERT_TRUE(exec.ok());
  for (const Event& e : events) {
    exec.ValueOrDie()->PushCtiAll(e.le);
    ASSERT_TRUE(exec.ValueOrDie()->PushEvent("S", e).ok());
  }
  exec.ValueOrDie()->Finish();
  EXPECT_TRUE(SameTemporalRelation(batch.ValueOrDie(),
                                   exec.ValueOrDie()->TakeOutput()));
}

// ---------- UDO ----------

TEST(Udo, FiresOncePerBoundaryWithActiveEvents) {
  std::vector<std::pair<Timestamp, size_t>> calls;
  UdoFn fn = [&](Timestamp ws, Timestamp we,
                 const std::vector<Event>& active) {
    calls.emplace_back(we, active.size());
    (void)ws;
    return std::vector<Row>{{Value(static_cast<int64_t>(active.size()))}};
  };
  Query q = Query::Input("S", KV()).Udo(
      20, 10, fn, Schema::Of({{"N", ValueType::kInt64}}));
  auto out = RunQ(q, Points({{5, {1, 0}}, {12, {2, 0}}}));
  ASSERT_TRUE(out.ok());
  // Boundaries: 10 sees {5}; 20 sees {5,12}; 30 sees {12}.
  ASSERT_EQ(calls.size(), 3u);
  EXPECT_EQ(calls[0], (std::pair<Timestamp, size_t>{10, 1}));
  EXPECT_EQ(calls[1], (std::pair<Timestamp, size_t>{20, 2}));
  EXPECT_EQ(calls[2], (std::pair<Timestamp, size_t>{30, 1}));
  // Output events live one hop each.
  EXPECT_EQ(out.ValueOrDie()[0].le, 10);
  EXPECT_EQ(out.ValueOrDie()[0].re, 20);
}

TEST(Udo, QuietStreamDoesNotSpinBoundaries) {
  int calls = 0;
  UdoFn fn = [&](Timestamp, Timestamp, const std::vector<Event>&) {
    ++calls;
    return std::vector<Row>{};
  };
  Query q = Query::Input("S", KV()).Udo(
      10, 10, fn, Schema::Of({{"N", ValueType::kInt64}}));
  // Two events very far apart: boundaries between them have no active events
  // and must be skipped, not enumerated.
  auto out = RunQ(q, Points({{5, {1, 0}}, {1000000, {2, 0}}}));
  ASSERT_TRUE(out.ok());
  EXPECT_LE(calls, 4);
}

// ---------- Convert ----------

TEST(Convert, PointRowRoundTrip) {
  Schema payload = KV();
  Schema rows = PointRowSchema(payload);
  Event e = Event::Point(42, {Value(1), Value(2)});
  auto row = RowFromEvent(e, false);
  ASSERT_TRUE(row.ok());
  auto back = EventFromRow(rows, row.ValueOrDie());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.ValueOrDie().le, 42);
  EXPECT_TRUE(back.ValueOrDie().IsPoint());
  EXPECT_EQ(back.ValueOrDie().payload, e.payload);
}

TEST(Convert, IntervalRowRoundTrip) {
  Schema payload = KV();
  Schema rows = IntervalRowSchema(payload);
  Event e(10, 99, {Value(1), Value(2)});
  auto row = RowFromEvent(e, true);
  ASSERT_TRUE(row.ok());
  auto back = EventFromRow(rows, row.ValueOrDie());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.ValueOrDie().le, 10);
  EXPECT_EQ(back.ValueOrDie().re, 99);
}

TEST(Convert, IntervalEventToPointLayoutFails) {
  Event e(10, 99, {Value(1)});
  EXPECT_FALSE(RowFromEvent(e, false).ok());
}

TEST(Convert, EmptyLifetimeRowRejected) {
  Schema rows = IntervalRowSchema(KV());
  EXPECT_FALSE(
      EventFromRow(rows, {Value(10), Value(10), Value(1), Value(2)}).ok());
}

// ---------- SameTemporalRelation ----------

TEST(TemporalRelation, SplitLifetimesAreEquivalent) {
  std::vector<Event> whole = {Event(0, 10, {Value(1)})};
  std::vector<Event> split = {Event(0, 4, {Value(1)}), Event(4, 10, {Value(1)})};
  EXPECT_TRUE(SameTemporalRelation(whole, split));
}

TEST(TemporalRelation, MultiplicityMatters) {
  std::vector<Event> once = {Event(0, 10, {Value(1)})};
  std::vector<Event> twice = {Event(0, 10, {Value(1)}), Event(0, 10, {Value(1)})};
  EXPECT_FALSE(SameTemporalRelation(once, twice));
}

TEST(TemporalRelation, DifferentPayloadsDiffer) {
  EXPECT_FALSE(SameTemporalRelation({Event(0, 10, {Value(1)})},
                                    {Event(0, 10, {Value(2)})}));
}

}  // namespace
}  // namespace timr::temporal
