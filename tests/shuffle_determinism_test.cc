// The parallel shuffle pipeline's repeatability guarantee: one BT job must
// produce bit-identical datasets and stable row stats for any host thread
// count, and reducer retries (FailureInjector) under the parallel shuffle
// must reproduce exactly the same output (paper §III-C.1).

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "bt_test_util.h"

namespace timr {
namespace {

using testutil::BtRun;
using testutil::ExpectEventsIdentical;
using testutil::ExpectStoresBitIdentical;
using testutil::RunBtJob;

TEST(ShuffleDeterminism, BtJobBitIdenticalAcrossThreadCounts) {
  BtRun base = RunBtJob(1);
  ASSERT_FALSE(base.stats.stages.empty());

  for (int threads : {2, 0 /* hardware */}) {
    BtRun run = RunBtJob(threads);
    // Final event output, every dataset in the store (including consumed
    // intermediates, which must be deterministically empty), and row stats
    // all match the single-threaded run exactly.
    ExpectEventsIdentical(base.output, run.output);
    ExpectStoresBitIdentical(base.store, run.store);
    ASSERT_EQ(run.stats.stages.size(), base.stats.stages.size());
    for (size_t s = 0; s < base.stats.stages.size(); ++s) {
      const auto& bs = base.stats.stages[s];
      const auto& rs = run.stats.stages[s];
      EXPECT_EQ(rs.name, bs.name);
      EXPECT_EQ(rs.rows_in, bs.rows_in) << bs.name;
      EXPECT_EQ(rs.rows_shuffled, bs.rows_shuffled) << bs.name;
      EXPECT_EQ(rs.rows_out, bs.rows_out) << bs.name;
      EXPECT_EQ(rs.partitions, bs.partitions) << bs.name;
    }
  }
}

TEST(ShuffleDeterminism, BtJobBitIdenticalAcrossEngineBatchSizes) {
  // The embedded engine's morsel size must never leak into output: the whole
  // BT job — every intermediate dataset included — is bit-identical whether
  // reducers drive their engines one event at a time or 4096 per batch.
  BtRun base = RunBtJob(0);
  for (size_t batch_size : {size_t{1}, size_t{64}, size_t{4096}}) {
    BtRun run = RunBtJob(0, nullptr, batch_size);
    ExpectEventsIdentical(base.output, run.output);
    ExpectStoresBitIdentical(base.store, run.store);
  }
}

TEST(ShuffleDeterminism, BtJobBitIdenticalWithColumnarKernelsOnAndOff) {
  // Columnar execution is an engine-internal representation choice, never a
  // semantics choice: the whole BT job with vectorized kernels enabled (the
  // default) is bit-identical to the same job forced onto the row path, and
  // punctuation thinning is likewise invisible at every granularity.
  BtRun base = RunBtJob(0);

  testutil::BtRunConfig row_cfg;
  row_cfg.options.engine_columnar = false;
  BtRun row = RunBtJob(row_cfg);
  ASSERT_TRUE(row.status.ok()) << row.status.ToString();
  ExpectEventsIdentical(base.output, row.output);
  ExpectStoresBitIdentical(base.store, row.store);

  for (size_t thinning : {size_t{1}, size_t{256}}) {
    testutil::BtRunConfig cfg;
    cfg.options.cti_thinning = thinning;
    BtRun run = RunBtJob(cfg);
    ASSERT_TRUE(run.status.ok()) << run.status.ToString();
    ExpectEventsIdentical(base.output, run.output);
    ExpectStoresBitIdentical(base.store, run.store);
  }
}

TEST(ShuffleDeterminism, BtJobBitIdenticalWithExchangeElision) {
  // Property-driven exchange elision (timr/optimizer.h) drops provably
  // redundant shuffles, merging fragments. Fewer stages run — so the store's
  // intermediate datasets legitimately differ — but the job *output* must be
  // bit-identical, and the elided job must itself be thread-count invariant.
  BtRun base = RunBtJob(0);

  testutil::BtRunConfig cfg;
  cfg.options.elide_redundant_exchanges = true;
  BtRun elided = RunBtJob(cfg);
  ASSERT_TRUE(elided.status.ok()) << elided.status.ToString();
  EXPECT_LT(elided.stats.stages.size(), base.stats.stages.size());
  ExpectEventsIdentical(base.output, elided.output);

  cfg.num_threads = 1;
  BtRun single = RunBtJob(cfg);
  ASSERT_TRUE(single.status.ok()) << single.status.ToString();
  ExpectEventsIdentical(elided.output, single.output);
  ExpectStoresBitIdentical(elided.store, single.store);
}

TEST(ShuffleDeterminism, ReducerRetryWithExchangeElisionIsRepeatable) {
  testutil::BtRunConfig cfg;
  cfg.options.elide_redundant_exchanges = true;
  BtRun clean = RunBtJob(cfg);
  ASSERT_TRUE(clean.status.ok()) << clean.status.ToString();
  ASSERT_FALSE(clean.stats.stages.empty());

  mr::FailureInjector injector;
  for (const auto& stage : clean.stats.stages) {
    injector.FailOnce(stage.name, 0);
  }
  testutil::BtRunConfig retry_cfg = cfg;
  retry_cfg.injector = &injector;
  BtRun retried = RunBtJob(retry_cfg);
  ASSERT_TRUE(retried.status.ok()) << retried.status.ToString();
  EXPECT_TRUE(injector.empty());
  ExpectEventsIdentical(clean.output, retried.output);
  ExpectStoresBitIdentical(clean.store, retried.store);
}

TEST(ShuffleDeterminism, ReducerRetryUnderParallelShuffleIsRepeatable) {
  BtRun clean = RunBtJob(0);
  ASSERT_FALSE(clean.stats.stages.empty());

  // Fail one task in every stage (and a second one in the first stage), all
  // racing against the parallel map/sort/reduce pipeline.
  mr::FailureInjector injector;
  int injected = 0;
  for (const auto& stage : clean.stats.stages) {
    injector.FailOnce(stage.name, 0);
    ++injected;
  }
  if (clean.stats.stages[0].partitions > 1) {
    injector.FailOnce(clean.stats.stages[0].name,
                      clean.stats.stages[0].partitions - 1);
    ++injected;
  }

  BtRun retried = RunBtJob(0, &injector);
  EXPECT_TRUE(injector.empty());
  int retries = 0;
  int speculative = 0;
  for (const auto& stage : retried.stats.stages) {
    retries += stage.retried_tasks;
    speculative += stage.speculative_tasks;
  }
  EXPECT_EQ(retries, injected);
  EXPECT_EQ(speculative, 0);  // no speculation configured: retries only
  ExpectEventsIdentical(clean.output, retried.output);
  ExpectStoresBitIdentical(clean.store, retried.store);
}

/// Skew policy that reliably triggers splits on the small Zipf workload.
framework::TimrOptions AdaptiveSkewOptions() {
  framework::TimrOptions options;
  options.skew.adaptive_repartition = true;
  options.skew.skew_ratio_threshold = 2.0;
  options.skew.hot_key_fanout = 4;
  options.skew.min_partition_rows = 64;
  options.skew.sample_shift = 3;
  return options;
}

TEST(ShuffleDeterminism, AdaptiveSkewBtJobBitIdenticalAcrossThreadCounts) {
  // With adaptive repartitioning live on a Zipf-skewed workload, every split
  // decision is a pure function of the data: the whole job — final output,
  // every intermediate dataset, the split counters themselves — must be
  // bit-identical for any host thread count.
  testutil::BtRunConfig cfg;
  cfg.workload = testutil::SkewedWorkload();
  cfg.options = AdaptiveSkewOptions();
  cfg.num_threads = 1;
  BtRun base = RunBtJob(cfg);
  ASSERT_TRUE(base.status.ok()) << base.status.ToString();
  int base_splits = 0;
  for (const auto& s : base.stats.stages) base_splits += s.partitions_split;
  ASSERT_GT(base_splits, 0) << "skewed workload did not trigger any split";

  for (int threads : {2, 0 /* hardware */}) {
    testutil::BtRunConfig run_cfg = cfg;
    run_cfg.num_threads = threads;
    BtRun run = RunBtJob(run_cfg);
    ASSERT_TRUE(run.status.ok()) << run.status.ToString();
    ExpectEventsIdentical(base.output, run.output);
    ExpectStoresBitIdentical(base.store, run.store);
    ASSERT_EQ(run.stats.stages.size(), base.stats.stages.size());
    for (size_t s = 0; s < base.stats.stages.size(); ++s) {
      const auto& bs = base.stats.stages[s];
      const auto& rs = run.stats.stages[s];
      EXPECT_EQ(rs.partitions_split, bs.partitions_split) << bs.name;
      EXPECT_EQ(rs.hot_keys_detected, bs.hot_keys_detected) << bs.name;
      EXPECT_EQ(rs.virtual_partitions, bs.virtual_partitions) << bs.name;
      EXPECT_EQ(rs.partition_rows_max, bs.partition_rows_max) << bs.name;
      EXPECT_EQ(rs.partition_rows_median, bs.partition_rows_median) << bs.name;
      EXPECT_EQ(rs.rows_out, bs.rows_out) << bs.name;
    }
  }
}

TEST(ShuffleDeterminism, AdaptiveSkewOnOffProduceTheSameRelation) {
  // On vs off: identical output relation. Split stages emit their partitions
  // in canonical order while unsplit reducers emit engine order, so the
  // comparison is canonical — and when nothing splits (the default policy's
  // thresholds on this small log), the runs must be byte-identical.
  testutil::BtRunConfig off_cfg;
  off_cfg.workload = testutil::SkewedWorkload();
  BtRun off = RunBtJob(off_cfg);
  ASSERT_TRUE(off.status.ok()) << off.status.ToString();

  testutil::BtRunConfig on_cfg = off_cfg;
  on_cfg.options = AdaptiveSkewOptions();
  BtRun on = RunBtJob(on_cfg);
  ASSERT_TRUE(on.status.ok()) << on.status.ToString();
  int splits = 0;
  for (const auto& s : on.stats.stages) splits += s.partitions_split;
  EXPECT_GT(splits, 0);
  std::vector<temporal::Event> off_sorted = off.output;
  std::vector<temporal::Event> on_sorted = on.output;
  temporal::SortEventsCanonical(&off_sorted);
  temporal::SortEventsCanonical(&on_sorted);
  ExpectEventsIdentical(off_sorted, on_sorted);

  // Policy on but with default (conservative) thresholds: nothing on this
  // small log crosses min_partition_rows, no split happens, and the run is
  // bit-for-bit the policy-off run.
  testutil::BtRunConfig noop_cfg = off_cfg;
  noop_cfg.options.skew.adaptive_repartition = true;
  BtRun noop = RunBtJob(noop_cfg);
  ASSERT_TRUE(noop.status.ok()) << noop.status.ToString();
  for (const auto& s : noop.stats.stages) {
    EXPECT_EQ(s.partitions_split, 0) << s.name;
  }
  ExpectEventsIdentical(off.output, noop.output);
  ExpectStoresBitIdentical(off.store, noop.store);
}

TEST(ShuffleDeterminism, AdaptiveSkewReducerRetryIsRepeatable) {
  // Retries of virtual-partition tasks must reproduce their outputs exactly
  // (the §III-C.1 repeatability argument extends to split partitions: same
  // shuffled input, same canonical sort, same coalesce).
  testutil::BtRunConfig cfg;
  cfg.workload = testutil::SkewedWorkload();
  cfg.options = AdaptiveSkewOptions();
  BtRun clean = RunBtJob(cfg);
  ASSERT_TRUE(clean.status.ok()) << clean.status.ToString();

  mr::FailureInjector injector;
  int injected = 0;
  for (const auto& stage : clean.stats.stages) {
    // Partition indices past `partitions` are the virtual (split) tasks; fail
    // the last physical task of every splitting stage plus partition 0.
    injector.FailOnce(stage.name, 0);
    ++injected;
    if (stage.virtual_partitions > 0) {
      injector.FailOnce(stage.name,
                        stage.partitions + stage.virtual_partitions - 1);
      ++injected;
    }
  }
  testutil::BtRunConfig retry_cfg = cfg;
  retry_cfg.injector = &injector;
  BtRun retried = RunBtJob(retry_cfg);
  ASSERT_TRUE(retried.status.ok()) << retried.status.ToString();
  EXPECT_TRUE(injector.empty());
  int retries = 0;
  for (const auto& stage : retried.stats.stages) {
    retries += stage.retried_tasks;
  }
  EXPECT_EQ(retries, injected);
  ExpectEventsIdentical(clean.output, retried.output);
  ExpectStoresBitIdentical(clean.store, retried.store);
}

}  // namespace
}  // namespace timr
