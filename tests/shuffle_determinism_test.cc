// The parallel shuffle pipeline's repeatability guarantee: one BT job must
// produce bit-identical datasets and stable row stats for any host thread
// count, and reducer restarts (FailureInjector) under the parallel shuffle
// must reproduce exactly the same output (paper §III-C.1).

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "bt/queries.h"
#include "mr/cluster.h"
#include "temporal/convert.h"
#include "timr/timr.h"
#include "workload/generator.h"

namespace timr {
namespace {

namespace T = timr::temporal;

workload::GeneratorConfig SmallWorkload() {
  workload::GeneratorConfig cfg;
  cfg.num_users = 150;
  cfg.vocab_size = 2000;
  cfg.duration = 2 * T::kDay;
  return cfg;
}

bt::BtQueryConfig SmallBtConfig() {
  bt::BtQueryConfig cfg;
  cfg.selection_period = 3 * T::kDay;
  cfg.bot_search_threshold = 60;
  cfg.bot_click_threshold = 30;
  return cfg;
}

struct BtRun {
  std::vector<T::Event> output;
  mr::JobStats stats;
  std::map<std::string, mr::Dataset> store;
};

BtRun RunBtJob(int num_threads, mr::FailureInjector* injector = nullptr,
               size_t engine_batch_size = 0) {
  auto log = workload::GenerateBtLog(SmallWorkload());
  bt::BtQueryConfig cfg = SmallBtConfig();

  mr::LocalCluster cluster(/*num_machines=*/8, num_threads);
  if (injector != nullptr) cluster.set_failure_injector(injector);

  std::map<std::string, mr::Dataset> store;
  auto rows = T::RowsFromEvents(log.events, false).ValueOrDie();
  store[bt::kBtInput] =
      mr::Dataset::FromRows(T::PointRowSchema(bt::UnifiedSchema()), rows);

  framework::TimrOptions options;
  options.engine_batch_size = engine_batch_size;
  auto run = framework::RunPlan(
      &cluster, bt::BtFeaturePipeline(cfg, bt::Annotation::kStandard).node(),
      &store, options);
  EXPECT_TRUE(run.ok()) << run.status().ToString();

  BtRun result;
  result.output = std::move(run.ValueOrDie().output);
  result.stats = std::move(run.ValueOrDie().job_stats);
  result.store = std::move(store);
  return result;
}

void ExpectEventsIdentical(const std::vector<T::Event>& a,
                           const std::vector<T::Event>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].le, b[i].le) << "event " << i;
    EXPECT_EQ(a[i].re, b[i].re) << "event " << i;
    EXPECT_EQ(a[i].payload, b[i].payload) << "event " << i;
  }
}

void ExpectStoresBitIdentical(const std::map<std::string, mr::Dataset>& a,
                              const std::map<std::string, mr::Dataset>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [name, da] : a) {
    auto it = b.find(name);
    ASSERT_NE(it, b.end()) << "dataset " << name << " missing";
    const mr::Dataset& db = it->second;
    EXPECT_EQ(da.schema(), db.schema()) << name;
    ASSERT_EQ(da.num_partitions(), db.num_partitions()) << name;
    for (size_t p = 0; p < da.num_partitions(); ++p) {
      EXPECT_EQ(da.partition(p), db.partition(p))
          << "dataset " << name << " partition " << p;
    }
  }
}

TEST(ShuffleDeterminism, BtJobBitIdenticalAcrossThreadCounts) {
  BtRun base = RunBtJob(1);
  ASSERT_FALSE(base.stats.stages.empty());

  for (int threads : {2, 0 /* hardware */}) {
    BtRun run = RunBtJob(threads);
    // Final event output, every dataset in the store (including consumed
    // intermediates, which must be deterministically empty), and row stats
    // all match the single-threaded run exactly.
    ExpectEventsIdentical(base.output, run.output);
    ExpectStoresBitIdentical(base.store, run.store);
    ASSERT_EQ(run.stats.stages.size(), base.stats.stages.size());
    for (size_t s = 0; s < base.stats.stages.size(); ++s) {
      const auto& bs = base.stats.stages[s];
      const auto& rs = run.stats.stages[s];
      EXPECT_EQ(rs.name, bs.name);
      EXPECT_EQ(rs.rows_in, bs.rows_in) << bs.name;
      EXPECT_EQ(rs.rows_shuffled, bs.rows_shuffled) << bs.name;
      EXPECT_EQ(rs.rows_out, bs.rows_out) << bs.name;
      EXPECT_EQ(rs.partitions, bs.partitions) << bs.name;
    }
  }
}

TEST(ShuffleDeterminism, BtJobBitIdenticalAcrossEngineBatchSizes) {
  // The embedded engine's morsel size must never leak into output: the whole
  // BT job — every intermediate dataset included — is bit-identical whether
  // reducers drive their engines one event at a time or 4096 per batch.
  BtRun base = RunBtJob(0);
  for (size_t batch_size : {size_t{1}, size_t{64}, size_t{4096}}) {
    BtRun run = RunBtJob(0, nullptr, batch_size);
    ExpectEventsIdentical(base.output, run.output);
    ExpectStoresBitIdentical(base.store, run.store);
  }
}

TEST(ShuffleDeterminism, ReducerRestartUnderParallelShuffleIsRepeatable) {
  BtRun clean = RunBtJob(0);
  ASSERT_FALSE(clean.stats.stages.empty());

  // Fail one task in every stage (and a second one in the first stage), all
  // racing against the parallel map/sort/reduce pipeline.
  mr::FailureInjector injector;
  int injected = 0;
  for (const auto& stage : clean.stats.stages) {
    injector.FailOnce(stage.name, 0);
    ++injected;
  }
  if (clean.stats.stages[0].partitions > 1) {
    injector.FailOnce(clean.stats.stages[0].name,
                      clean.stats.stages[0].partitions - 1);
    ++injected;
  }

  BtRun retried = RunBtJob(0, &injector);
  EXPECT_TRUE(injector.empty());
  int restarts = 0;
  for (const auto& stage : retried.stats.stages) {
    restarts += stage.restarted_tasks;
  }
  EXPECT_EQ(restarts, injected);
  ExpectEventsIdentical(clean.output, retried.output);
  ExpectStoresBitIdentical(clean.store, retried.store);
}

}  // namespace
}  // namespace timr
