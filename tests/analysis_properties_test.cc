// Tests for the property-inference / fingerprinting / sharing layer
// (src/analysis) and its feedback into execution (timr/optimizer.h exchange
// elision, checkpoint-cut validation, sorted-shuffle hint):
//
//  - dataflow rules: partitioning lattice, ordering, lifetime bounds,
//    statefulness, determinism class;
//  - Merkle fingerprints: canonicalization, independent-build equality,
//    opaque-closure impurity, UDO consistency;
//  - the cross-query CSE report over the BT CQ suite (ROADMAP item 5(a));
//  - exchange elision: structure, cross-check, and bit-identical output
//    through a real TiMR run (including the full BT pipeline);
//  - checkpoint-cut validity and stale-property detection;
//  - columnar-eligibility agreement: the analysis prediction must equal the
//    executor's observed ingest mode for every property-test plan and the BT
//    pipeline.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "analysis/fingerprint.h"
#include "analysis/fragment_checks.h"
#include "analysis/properties.h"
#include "analysis/sharing.h"
#include "bt/queries.h"
#include "bt_test_util.h"
#include "mr/checkpoint.h"
#include "mr/cluster.h"
#include "property_plans.h"
#include "temporal/executor.h"
#include "timr/fragments.h"
#include "timr/optimizer.h"
#include "timr/timr.h"

namespace timr {
namespace {

using analysis::AnalysisReport;
using analysis::DeterminismClass;
using analysis::InferProperties;
using analysis::LifetimeBounds;
using analysis::NodeProperties;
using analysis::Ordering;
using analysis::Partitioning;
using analysis::PropertyMap;
using analysis::PropertyOptions;
using temporal::AlterLifetimeSpec;
using temporal::CmpOp;
using temporal::Event;
using temporal::kTick;
using temporal::PartitionSpec;
using temporal::PlanNodePtr;
using temporal::ProjectExpr;
using temporal::ProjectSpec;
using temporal::Query;
using temporal::Timestamp;
using testutil::MakePropertyPlan;
using testutil::PropertyPlanNames;
using testutil::PropertyPlanSchema;

Query KvInput(const std::string& name = "S") {
  return Query::Input(name, PropertyPlanSchema());
}

// ---------------------------------------------------------------------------
// Property inference: the dataflow rules.
// ---------------------------------------------------------------------------

TEST(PropertyInference, ExchangeEstablishesKeysAndCanonicalOrder) {
  Query q = KvInput().Exchange(PartitionSpec::ByKeys({"K"}));
  PropertyMap map = InferProperties(q.node());
  const NodeProperties& p = map.at(q.node().get());
  EXPECT_EQ(p.partitioning, Partitioning::Keys({"K"}));
  EXPECT_EQ(p.ordering, Ordering::kCanonical);
  EXPECT_EQ(p.determinism, DeterminismClass::kPure);
  // The source below the exchange knows nothing.
  const NodeProperties& src = map.at(q.node()->children[0].get());
  EXPECT_EQ(src.partitioning.kind, Partitioning::Kind::kArbitrary);
  EXPECT_EQ(src.ordering, Ordering::kLeOrdered);
}

// A keyed exchange that opts into adaptive hot-key splitting still delivers
// Keys partitioning: the split is whole-key (every row of a key lands in one
// virtual partition) and virtual partitions are coalesced back in canonical
// order before any consumer sees them — so downstream elision and
// exchange-placement reasoning stay sound.
TEST(PropertyInference, AdaptiveSplitExchangeStillEstablishesKeys) {
  PartitionSpec spec = PartitionSpec::ByKeys({"K"});
  spec.adaptive_split = true;
  Query q = KvInput().Exchange(spec);
  const NodeProperties p = InferProperties(q.node()).at(q.node().get());
  EXPECT_EQ(p.partitioning, Partitioning::Keys({"K"}));
  EXPECT_EQ(p.ordering, Ordering::kCanonical);
}

TEST(PropertyInference, EmptyKeyExchangeMeansSingleton) {
  Query q = KvInput().Exchange(PartitionSpec::ByKeys({}));
  PropertyMap map = InferProperties(q.node());
  EXPECT_EQ(map.at(q.node().get()).partitioning, Partitioning::Singleton());
}

TEST(PropertyInference, StructuredSelectPreservesEverything) {
  Query q = KvInput()
                .Exchange(PartitionSpec::ByKeys({"K"}))
                .WhereCmp("V", CmpOp::kGt, Value(int64_t{5}));
  const NodeProperties p = InferProperties(q.node()).at(q.node().get());
  EXPECT_EQ(p.partitioning, Partitioning::Keys({"K"}));
  EXPECT_EQ(p.ordering, Ordering::kCanonical);  // a filter keeps the order
  EXPECT_EQ(p.determinism, DeterminismClass::kPure);
  EXPECT_FALSE(p.stateful);
}

TEST(PropertyInference, OpaqueClosuresDowngradeDeterminism) {
  Query sel = KvInput().Where([](const Row& r) { return r[1].AsInt64() > 5; });
  EXPECT_EQ(InferProperties(sel.node()).at(sel.node().get()).determinism,
            DeterminismClass::kOpaqueDeterministic);

  Query udo_sensitive = KvInput().Udo(
      10, 5,
      [](Timestamp, Timestamp, const std::vector<Event>&) {
        return std::vector<Row>{};
      },
      Schema::Of({{"N", ValueType::kInt64}}), /*order_insensitive=*/false);
  EXPECT_EQ(
      InferProperties(udo_sensitive.node()).at(udo_sensitive.node().get())
          .determinism,
      DeterminismClass::kOrderSensitive);

  Query udo_insensitive = KvInput().Udo(
      10, 5,
      [](Timestamp, Timestamp, const std::vector<Event>&) {
        return std::vector<Row>{};
      },
      Schema::Of({{"N", ValueType::kInt64}}), /*order_insensitive=*/true);
  EXPECT_EQ(
      InferProperties(udo_insensitive.node()).at(udo_insensitive.node().get())
          .determinism,
      DeterminismClass::kOpaqueDeterministic);
}

TEST(PropertyInference, StructuredProjectionRenamesSurvivingKeys) {
  ProjectSpec spec;
  spec.exprs.push_back(ProjectExpr::Column("Key", 0));  // copies K
  spec.exprs.push_back(ProjectExpr::Column("Val", 1));
  Query q = KvInput()
                .Exchange(PartitionSpec::ByKeys({"K"}))
                .Project(std::move(spec));
  const NodeProperties p = InferProperties(q.node()).at(q.node().get());
  EXPECT_EQ(p.partitioning, Partitioning::Keys({"Key"}));
  // Payload rewritten: canonical (payload-inclusive) order no longer holds.
  EXPECT_EQ(p.ordering, Ordering::kLeOrdered);

  // An opaque projection destroys the key fact entirely.
  Schema out = Schema::Of({{"K", ValueType::kInt64}});
  Query opaque = KvInput()
                     .Exchange(PartitionSpec::ByKeys({"K"}))
                     .Project([](const Row& r) { return Row{r[0]}; }, out);
  const NodeProperties po = InferProperties(opaque.node()).at(opaque.node().get());
  EXPECT_EQ(po.partitioning.kind, Partitioning::Kind::kArbitrary);
  EXPECT_EQ(po.determinism, DeterminismClass::kOpaqueDeterministic);
}

TEST(PropertyInference, LifetimeBoundsFollowWindowing) {
  Query raw = KvInput();
  EXPECT_EQ(InferProperties(raw.node()).at(raw.node().get()).lifetime,
            (LifetimeBounds{kTick, temporal::kMaxTime}));

  Query win = KvInput().Window(10);
  const NodeProperties pw = InferProperties(win.node()).at(win.node().get());
  EXPECT_EQ(pw.lifetime, (LifetimeBounds{10, 10}));
  EXPECT_EQ(pw.max_window_below, 10);

  Query hop = KvInput().HoppingWindow(50, 10);
  EXPECT_EQ(InferProperties(hop.node()).at(hop.node().get()).lifetime,
            (LifetimeBounds{10, 60}));

  Query pt = KvInput().Window(10).ToPointEvents();
  EXPECT_EQ(InferProperties(pt.node()).at(pt.node().get()).lifetime,
            (LifetimeBounds{kTick, kTick}));

  // Aggregate snapshots lie inside some active event's lifetime.
  Query agg = KvInput().Window(25).Count();
  EXPECT_EQ(InferProperties(agg.node()).at(agg.node().get()).lifetime,
            (LifetimeBounds{kTick, 25}));
}

TEST(PropertyInference, GroupApplyPreservesCoarserKeyPartitioning) {
  Query q = KvInput()
                .Exchange(PartitionSpec::ByKeys({"K"}))
                .GroupApply({"K", "V"},
                            [](Query g) { return g.Window(30).Count(); });
  const NodeProperties p = InferProperties(q.node()).at(q.node().get());
  // {K} ⊆ {K, V}: groups never move between partitions, the fact survives.
  EXPECT_EQ(p.partitioning, Partitioning::Keys({"K"}));
  EXPECT_TRUE(p.stateful);
  EXPECT_TRUE(p.stateful_below);
  EXPECT_EQ(p.max_window_below, 30);

  // Partitioned by a non-grouping column: the fact does not survive.
  Query other = KvInput()
                    .Exchange(PartitionSpec::ByKeys({"V"}))
                    .GroupApply({"K"},
                                [](Query g) { return g.Window(30).Count(); });
  EXPECT_EQ(InferProperties(other.node()).at(other.node().get())
                .partitioning.kind,
            Partitioning::Kind::kArbitrary);
}

TEST(PropertyInference, SingletonSurvivesAggregationPipelines) {
  Query q = KvInput().Exchange(PartitionSpec::ByKeys({})).Window(10).Count();
  EXPECT_EQ(InferProperties(q.node()).at(q.node().get()).partitioning,
            Partitioning::Singleton());
  // Without the singleton exchange the aggregate's output keys are unknowable.
  Query free = KvInput().Window(10).Count();
  EXPECT_EQ(InferProperties(free.node()).at(free.node().get())
                .partitioning.kind,
            Partitioning::Kind::kArbitrary);
}

TEST(PropertyInference, TemporalPartitioningDiesAtLifetimeChanges) {
  Query ex = KvInput().Exchange(PartitionSpec::ByTime(100, 10));
  const NodeProperties pe = InferProperties(ex.node()).at(ex.node().get());
  EXPECT_EQ(pe.partitioning, Partitioning::TemporalSpans(100, 10));

  Query w = ex.Window(5);
  EXPECT_EQ(InferProperties(w.node()).at(w.node().get()).partitioning.kind,
            Partitioning::Kind::kArbitrary);
}

TEST(PropertyInference, CanonicalInputsOptionSeedsSourceOrdering) {
  Query q = KvInput();
  PropertyOptions opts;
  opts.canonical_inputs = true;
  EXPECT_EQ(InferProperties(q.node(), opts).at(q.node().get()).ordering,
            Ordering::kCanonical);
  EXPECT_EQ(InferProperties(q.node()).at(q.node().get()).ordering,
            Ordering::kLeOrdered);
}

// ---------------------------------------------------------------------------
// Fingerprints and structural equivalence.
// ---------------------------------------------------------------------------

Query StructuredPipeline(int64_t literal) {
  return KvInput()
      .WhereCmp("V", CmpOp::kGt, Value(literal))
      .GroupApply({"K"}, [](Query g) { return g.Window(30).Count(); });
}

TEST(Fingerprint, IndependentBuildsGetEqualPureFingerprints) {
  Query a = StructuredPipeline(25);
  Query b = StructuredPipeline(25);
  ASSERT_NE(a.node().get(), b.node().get());
  auto fa = analysis::ComputeFingerprints(a.node());
  auto fb = analysis::ComputeFingerprints(b.node());
  const auto& ra = fa.at(a.node().get());
  const auto& rb = fb.at(b.node().get());
  EXPECT_TRUE(ra.pure);
  EXPECT_TRUE(rb.pure);
  EXPECT_EQ(ra.hash, rb.hash);
  EXPECT_EQ(ra.num_ops, rb.num_ops);
  EXPECT_TRUE(analysis::StructurallyEquivalent(a.node().get(), b.node().get()));
}

TEST(Fingerprint, LiteralDifferencesChangeTheHash) {
  Query a = StructuredPipeline(25);
  Query b = StructuredPipeline(26);
  auto fa = analysis::ComputeFingerprints(a.node());
  auto fb = analysis::ComputeFingerprints(b.node());
  EXPECT_NE(fa.at(a.node().get()).hash, fb.at(b.node().get()).hash);
  EXPECT_FALSE(
      analysis::StructurallyEquivalent(a.node().get(), b.node().get()));
}

TEST(Fingerprint, ConjunctOrderIsCanonicalized) {
  temporal::SelectSpec ab;
  ab.conjuncts.push_back({0, CmpOp::kGt, Value(int64_t{1})});
  ab.conjuncts.push_back({1, CmpOp::kLt, Value(int64_t{9})});
  temporal::SelectSpec ba;
  ba.conjuncts.push_back({1, CmpOp::kLt, Value(int64_t{9})});
  ba.conjuncts.push_back({0, CmpOp::kGt, Value(int64_t{1})});
  Query qa = KvInput().Where(std::move(ab));
  Query qb = KvInput().Where(std::move(ba));
  auto fa = analysis::ComputeFingerprints(qa.node());
  auto fb = analysis::ComputeFingerprints(qb.node());
  EXPECT_EQ(fa.at(qa.node().get()).hash, fb.at(qb.node().get()).hash);
  EXPECT_TRUE(
      analysis::StructurallyEquivalent(qa.node().get(), qb.node().get()));
}

TEST(Fingerprint, OpaqueClosuresAreImpureAndSelfOnly) {
  auto build = [] {
    return KvInput().Where([](const Row& r) { return r[1].AsInt64() > 5; });
  };
  Query a = build();
  Query b = build();
  auto fa = analysis::ComputeFingerprints(a.node());
  auto fb = analysis::ComputeFingerprints(b.node());
  EXPECT_FALSE(fa.at(a.node().get()).pure);
  EXPECT_FALSE(fb.at(b.node().get()).pure);
  // Identity salt: textually identical closures never claim equivalence...
  EXPECT_NE(fa.at(a.node().get()).hash, fb.at(b.node().get()).hash);
  EXPECT_FALSE(
      analysis::StructurallyEquivalent(a.node().get(), b.node().get()));
  // ...but a node is always equivalent to itself (multicast sharing).
  EXPECT_TRUE(analysis::StructurallyEquivalent(a.node().get(), a.node().get()));
}

TEST(Fingerprint, UdoConsistencyFlagsContradictoryDeclarations) {
  auto fn = [](Timestamp, Timestamp, const std::vector<Event>&) {
    return std::vector<Row>{};
  };
  const Schema out = Schema::Of({{"N", ValueType::kInt64}});
  Query src = KvInput();  // shared feed: both UDOs see the same sub-DAG
  Query disagree = Query::Union(src.Udo(10, 5, fn, out, true),
                                src.Udo(10, 5, fn, out, false));
  AnalysisReport report = analysis::CheckUdoConsistency(disagree.node());
  EXPECT_FALSE(report.ForCheck("udo-consistency").empty());
  EXPECT_FALSE(report.HasErrors());  // warnings only

  Query agree = Query::Union(src.Udo(10, 5, fn, out, true),
                             src.Udo(10, 5, fn, out, true));
  EXPECT_TRUE(analysis::CheckUdoConsistency(agree.node())
                  .ForCheck("udo-consistency")
                  .empty());
}

// ---------------------------------------------------------------------------
// Cross-query CSE report (ROADMAP 5a input).
// ---------------------------------------------------------------------------

TEST(ShareReport, DisjointQueriesShareNothing) {
  std::vector<std::pair<std::string, PlanNodePtr>> queries;
  queries.emplace_back(
      "a", KvInput("A").WhereCmp("V", CmpOp::kGt, Value(int64_t{1})).node());
  queries.emplace_back(
      "b", KvInput("B").WhereCmp("V", CmpOp::kGt, Value(int64_t{2})).node());
  EXPECT_TRUE(analysis::BuildShareReport(queries).fragments.empty());
}

TEST(ShareReport, IdenticalQueriesShareTheirWholePlan) {
  std::vector<std::pair<std::string, PlanNodePtr>> queries;
  queries.emplace_back("a", StructuredPipeline(25).node());
  queries.emplace_back("b", StructuredPipeline(25).node());
  auto report = analysis::BuildShareReport(queries);
  ASSERT_EQ(report.fragments.size(), 1u);
  EXPECT_EQ(report.fragments[0].queries,
            (std::vector<std::string>{"a", "b"}));
  // The maximal fragment is the full pipeline, not some shared sub-prefix.
  auto fp = analysis::ComputeFingerprints(queries[0].second);
  EXPECT_EQ(report.fragments[0].hash, fp.at(queries[0].second.get()).hash);
}

TEST(ShareReport, BtSuiteExposesTheSharedPrefixes) {
  auto report = analysis::BuildShareReport(bt::BtCqSuite());
  ASSERT_FALSE(report.fragments.empty());

  auto has = [](const std::vector<std::string>& qs, const std::string& name) {
    for (const auto& q : qs) {
      if (q == name) return true;
    }
    return false;
  };
  bool bot_elim_prefix = false;   // bot elimination reused across consumers
  bool ubp_prefix = false;        // UBP sub-DAG shared into train_data
  for (const auto& frag : report.fragments) {
    // Invariants of every reported fragment.
    EXPECT_GE(frag.queries.size(), 2u);
    EXPECT_GE(frag.num_ops, 2u);
    EXPECT_GE(frag.occurrences, frag.queries.size());
    if (has(frag.queries, "bot_elimination") && has(frag.queries, "train_data")) {
      bot_elim_prefix = true;
    }
    if (has(frag.queries, "ubp") && has(frag.queries, "train_data")) {
      ubp_prefix = true;
    }
  }
  EXPECT_TRUE(bot_elim_prefix)
      << "bot-elimination prefix not reported as shared:\n"
      << report.ToString();
  EXPECT_TRUE(ubp_prefix) << "UBP prefix not reported as shared:\n"
                          << report.ToString();

  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"shared_fragments\""), std::string::npos);
  EXPECT_NE(json.find("\"queries\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Exchange elision: structure and execution feedback.
// ---------------------------------------------------------------------------

/// Input --Exchange{K}--> GroupApply{K} --Exchange{K}--> GroupApply{K}: the
/// second shuffle re-partitions a stream already partitioned by {K}.
Query RedundantSecondExchange() {
  return KvInput()
      .Exchange(PartitionSpec::ByKeys({"K"}))
      .GroupApply({"K"}, [](Query g) { return g.Window(10).Count("C1"); })
      .Exchange(PartitionSpec::ByKeys({"K"}))
      .GroupApply({"K"}, [](Query g) { return g.Window(10).Count("C2"); });
}

TEST(ExchangeElision, RemovesProvablyRedundantExchange) {
  Query q = RedundantSecondExchange();
  auto before = framework::MakeFragments(q.node());
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before.ValueOrDie().fragments.size(), 2u);

  auto elision = framework::ElideRedundantExchanges(q.node());
  ASSERT_TRUE(elision.ok()) << elision.status().ToString();
  EXPECT_EQ(elision.ValueOrDie().elided.size(), 1u);

  auto after = framework::MakeFragments(elision.ValueOrDie().plan);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.ValueOrDie().fragments.size(), 1u);
}

TEST(ExchangeElision, KeepsRequiredExchanges) {
  // The only exchange feeds an arbitrary-partitioned source: required.
  Query q = KvInput()
                .Exchange(PartitionSpec::ByKeys({"K"}))
                .GroupApply({"K"}, [](Query g) { return g.Window(10).Count(); });
  auto elision = framework::ElideRedundantExchanges(q.node());
  ASSERT_TRUE(elision.ok()) << elision.status().ToString();
  EXPECT_TRUE(elision.ValueOrDie().elided.empty());
  // The untouched clone is structurally identical to the input.
  auto fa = analysis::ComputeFingerprints(q.node());
  auto fb = analysis::ComputeFingerprints(elision.ValueOrDie().plan);
  EXPECT_EQ(fa.at(q.node().get()).hash,
            fb.at(elision.ValueOrDie().plan.get()).hash);
}

TEST(ExchangeElision, BtStandardPlanHasRedundantMaterializationExchanges) {
  auto elision = framework::ElideRedundantExchanges(
      bt::BtFeaturePipeline(testutil::SmallBtConfig(),
                            bt::Annotation::kStandard)
          .node());
  ASSERT_TRUE(elision.ok()) << elision.status().ToString();
  EXPECT_GE(elision.ValueOrDie().elided.size(), 1u)
      << "expected at least one provably-redundant exchange in the standard "
         "BT annotation";
}

TEST(ExchangeElision, RunPlanOutputIsBitIdentical) {
  // Deterministic synthetic point events (no RNG: fixed congruence).
  std::vector<Event> events;
  for (int64_t i = 0; i < 600; ++i) {
    const int64_t k = (i * 7) % 9;
    const int64_t v = (i * 13) % 101;
    const Timestamp t = (i * 37) % 480 + 1;
    events.push_back(Event::Point(t, Row{Value(k), Value(v)}));
  }
  std::map<std::string, std::pair<Schema, std::vector<Event>>> inputs;
  inputs["S"] = {PropertyPlanSchema(), events};

  framework::TimrOptions off;
  framework::TimrOptions on;
  on.elide_redundant_exchanges = true;

  mr::LocalCluster cluster(4, 2);
  auto a = framework::RunPlanOnEvents(&cluster,
                                      RedundantSecondExchange().node(), inputs,
                                      off);
  auto b = framework::RunPlanOnEvents(&cluster,
                                      RedundantSecondExchange().node(), inputs,
                                      on);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_TRUE(a.ValueOrDie().elided_exchanges.empty());
  EXPECT_EQ(b.ValueOrDie().elided_exchanges.size(), 1u);
  EXPECT_EQ(a.ValueOrDie().fragments.fragments.size(), 2u);
  EXPECT_EQ(b.ValueOrDie().fragments.fragments.size(), 1u);
  testutil::ExpectEventsIdentical(a.ValueOrDie().output,
                                  b.ValueOrDie().output);
}

TEST(ExchangeElision, BtJobOutputIsBitIdenticalUnderElisionAndSortHint) {
  testutil::BtRunConfig base;
  testutil::BtRun a = testutil::RunBtJob(base);
  ASSERT_TRUE(a.status.ok()) << a.status.ToString();

  testutil::BtRunConfig elide;
  elide.options.elide_redundant_exchanges = true;
  testutil::BtRun b = testutil::RunBtJob(elide);
  ASSERT_TRUE(b.status.ok()) << b.status.ToString();
  testutil::ExpectEventsIdentical(a.output, b.output);

  // Dropping the sorted-shuffle hint must only cost the defensive re-sort,
  // never change output.
  testutil::BtRunConfig resort;
  resort.options.assume_sorted_shuffle = false;
  testutil::BtRun c = testutil::RunBtJob(resort);
  ASSERT_TRUE(c.status.ok()) << c.status.ToString();
  testutil::ExpectEventsIdentical(a.output, c.output);
}

// ---------------------------------------------------------------------------
// Checkpoint-cut validity and stale-property detection.
// ---------------------------------------------------------------------------

TEST(CheckpointCut, AcceptsAnAlignedPrefix) {
  auto plan = framework::MakeFragments(RedundantSecondExchange().node());
  ASSERT_TRUE(plan.ok());
  const framework::FragmentedPlan& frags = plan.ValueOrDie();
  ASSERT_EQ(frags.fragments.size(), 2u);

  mr::CheckpointStore store;
  ASSERT_TRUE(store.SaveStage(0, frags.fragments[0].name, {}, {}).ok());
  EXPECT_FALSE(analysis::CheckCheckpointCut(frags, store, 1).HasErrors());
  // Resuming from the very beginning is trivially fine too.
  EXPECT_FALSE(analysis::CheckCheckpointCut(frags, store, 0).HasErrors());
}

TEST(CheckpointCut, RejectsMisalignedOrOverReleasedCuts) {
  auto plan = framework::MakeFragments(RedundantSecondExchange().node());
  ASSERT_TRUE(plan.ok());
  const framework::FragmentedPlan& frags = plan.ValueOrDie();

  mr::CheckpointStore misaligned;
  ASSERT_TRUE(misaligned.SaveStage(0, "some_other_cut", {}, {}).ok());
  AnalysisReport r1 = analysis::CheckCheckpointCut(frags, misaligned, 1);
  EXPECT_TRUE(r1.HasErrors());
  EXPECT_FALSE(r1.ForCheck("checkpoint-cut").empty());

  // Stage 0 claims to have released its own output, which fragment 1 (past
  // the resume point) still reads.
  mr::CheckpointStore released;
  ASSERT_TRUE(released
                  .SaveStage(0, frags.fragments[0].name, {},
                             {frags.fragments[0].name})
                  .ok());
  EXPECT_TRUE(analysis::CheckCheckpointCut(frags, released, 1).HasErrors());

  // Resume index beyond the checkpointed prefix.
  EXPECT_TRUE(analysis::CheckCheckpointCut(frags, released, 2).HasErrors());
}

TEST(StaleProperties, DetectsPlanMutationAfterInference) {
  Query q = KvInput().Window(10).Count();
  PropertyMap cached = InferProperties(q.node());
  EXPECT_FALSE(
      analysis::ValidatePropertySnapshot(q.node(), cached).HasErrors());

  // Mutate the plan underneath the cached snapshot: widen the window.
  q.node()->children[0]->alter = AlterLifetimeSpec::Window(20);
  AnalysisReport report = analysis::ValidatePropertySnapshot(q.node(), cached);
  EXPECT_TRUE(report.HasErrors());
  EXPECT_FALSE(report.ForCheck("stale-properties").empty());
}

// ---------------------------------------------------------------------------
// Columnar eligibility: warnings and executor agreement.
// ---------------------------------------------------------------------------

TEST(ColumnarDegradation, WarnsOnOpaqueClosuresOnly) {
  AnalysisReport opaque =
      analysis::CheckColumnarDegradation(MakePropertyPlan("select").node());
  EXPECT_FALSE(opaque.ForCheck("columnar-degradation").empty());
  EXPECT_FALSE(opaque.HasErrors());  // degradation is never fatal

  AnalysisReport spec = analysis::CheckColumnarDegradation(
      MakePropertyPlan("select_spec").node());
  EXPECT_TRUE(spec.diagnostics.empty());
}

/// The satellite acceptance check: for every kInput node the analysis's
/// columnar-ingest prediction must equal the executor's observed build-time
/// decision — the two must share one gating function, not two copies.
void ExpectColumnarAgreement(const std::string& label,
                             const PlanNodePtr& root) {
  PropertyMap props = InferProperties(root);
  auto exec = temporal::Executor::Create(root);
  ASSERT_TRUE(exec.ok()) << label << ": " << exec.status().ToString();
  ASSERT_FALSE(props.columnar_ingest.empty()) << label;
  for (const auto& [node, predicted] : props.columnar_ingest) {
    auto observed = exec.ValueOrDie()->InputPrefersColumnar(node->name);
    ASSERT_TRUE(observed.ok())
        << label << "/" << node->name << ": " << observed.status().ToString();
    EXPECT_EQ(predicted, observed.ValueOrDie())
        << label << ": prediction disagrees with the executor for input "
        << node->name;
  }
}

TEST(ColumnarAgreement, PredictionMatchesExecutorForAllPropertyPlans) {
  for (const std::string& name : PropertyPlanNames()) {
    ExpectColumnarAgreement(name, MakePropertyPlan(name).node());
  }
}

TEST(ColumnarAgreement, PredictionMatchesExecutorForTheBtPipeline) {
  // The exchange-free form runs on a single embedded engine, so the whole
  // pipeline's ingest decision is observable on one executor.
  ExpectColumnarAgreement(
      "bt_unannotated",
      bt::BtFeaturePipeline(testutil::SmallBtConfig(), bt::Annotation::kNone)
          .node());
}

}  // namespace
}  // namespace timr
