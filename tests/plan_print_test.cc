// Printing/round-trip coverage for the plan vocabulary: PartitionSpec::ToString
// and OpKindName. Diagnostics, fragment listings and the optimizer's Describe
// all lean on these renderings, so their shape is load-bearing.

#include <gtest/gtest.h>

#include <set>

#include "temporal/plan.h"

namespace timr::temporal {
namespace {

TEST(PartitionSpecPrint, KeyedSpec) {
  EXPECT_EQ(PartitionSpec::ByKeys({"UserId", "AdId"}).ToString(),
            "{UserId,AdId}");
  EXPECT_EQ(PartitionSpec::ByKeys({"K"}).ToString(), "{K}");
}

TEST(PartitionSpecPrint, SingletonSpec) {
  // Empty key set = everything in one partition.
  EXPECT_EQ(PartitionSpec::ByKeys({}).ToString(), "{}");
}

TEST(PartitionSpecPrint, TemporalSpec) {
  EXPECT_EQ(PartitionSpec::ByTime(3600, 600).ToString(),
            "TIME(span=3600,overlap=600)");
}

TEST(PartitionSpecPrint, DefaultIsSingleton) {
  PartitionSpec spec;
  EXPECT_EQ(spec.kind, PartitionSpec::Kind::kKeys);
  EXPECT_EQ(spec.ToString(), "{}");
}

TEST(OpKindPrint, EveryKindHasDistinctNonEmptyName) {
  const OpKind kinds[] = {
      OpKind::kInput,        OpKind::kSubplanInput, OpKind::kSelect,
      OpKind::kProject,      OpKind::kAlterLifetime, OpKind::kAggregate,
      OpKind::kGroupApply,   OpKind::kUnion,         OpKind::kTemporalJoin,
      OpKind::kAntiSemiJoin, OpKind::kUdo,           OpKind::kExchange,
      OpKind::kConformanceCheck,
  };
  std::set<std::string> seen;
  for (OpKind kind : kinds) {
    const std::string name = OpKindName(kind);
    EXPECT_FALSE(name.empty());
    EXPECT_NE(name, "?") << "unnamed kind " << static_cast<int>(kind);
    EXPECT_TRUE(seen.insert(name).second) << "duplicate name " << name;
  }
  EXPECT_EQ(seen.size(), std::size(kinds));
}

TEST(OpKindPrint, SpotCheckNames) {
  EXPECT_STREQ(OpKindName(OpKind::kGroupApply), "GroupApply");
  EXPECT_STREQ(OpKindName(OpKind::kExchange), "Exchange");
  EXPECT_STREQ(OpKindName(OpKind::kConformanceCheck), "ConformanceCheck");
}

TEST(PlanPrint, RenderingMentionsExchangeSpec) {
  auto input = std::make_shared<PlanNode>();
  input->kind = OpKind::kInput;
  input->name = "S";
  input->input_schema = Schema::Of({{"K", ValueType::kInt64}});
  auto ex = std::make_shared<PlanNode>();
  ex->kind = OpKind::kExchange;
  ex->exchange = PartitionSpec::ByKeys({"K"});
  ex->children = {input};
  const std::string rendered = ex->ToString();
  EXPECT_NE(rendered.find("Exchange"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("{K}"), std::string::npos) << rendered;
}

}  // namespace
}  // namespace timr::temporal
